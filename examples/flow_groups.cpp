// Aggregate congestion control for flow groups (§5 of the paper; compare
// the Congestion Manager in §4).
//
// A video-call host opens three flows — audio, video, and a screen
// share — toward the same remote site. Individually they would take
// three shares of the bottleneck from other traffic. Grouped in one
// AggregateGroup they compete as a single flow, while an internal 1:6:3
// weighting keeps audio small-but-protected and gives video the bulk.
#include <cstdio>

#include "agent/aggregate.hpp"
#include "algorithms/native/native_reno.hpp"
#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"
#include "util/units.hpp"

using namespace ccp;

int main() {
  sim::EventQueue events;
  auto net_cfg = sim::DumbbellConfig::make(40e6, Duration::from_millis(30), 1.0);
  sim::Dumbbell net(events, net_cfg);
  sim::SimCcpHost host(events, sim::CcpHostConfig{});

  agent::AggregateGroup call_group;
  host.agent().register_algorithm("call_audio", call_group.member_factory(1.0));
  host.agent().register_algorithm("call_video", call_group.member_factory(6.0));
  host.agent().register_algorithm("call_screen", call_group.member_factory(3.0));

  const TimePoint end = TimePoint::epoch() + Duration::from_secs(30);
  host.start(end);

  datapath::FlowConfig fcfg;
  fcfg.mss = 1460;
  fcfg.init_cwnd_bytes = 10 * 1460;
  auto& audio = host.create_flow(fcfg, "call_audio");
  auto& video = host.create_flow(fcfg, "call_video");
  auto& screen = host.create_flow(fcfg, "call_screen");

  auto& audio_snd = net.add_flow(sim::TcpSenderConfig{}, &audio, TimePoint::epoch());
  auto& video_snd = net.add_flow(sim::TcpSenderConfig{}, &video, TimePoint::epoch());
  auto& screen_snd = net.add_flow(sim::TcpSenderConfig{}, &screen, TimePoint::epoch());

  // Somebody else's download shares the bottleneck.
  algorithms::native::NativeReno other(1460, 10 * 1460);
  auto& other_snd = net.add_flow(sim::TcpSenderConfig{}, &other, TimePoint::epoch());

  events.run_until(end);

  auto mbps = [](const sim::TcpSender& s) {
    return s.delivered_bytes() * 8.0 / 30 / 1e6;
  };
  const double group =
      mbps(audio_snd) + mbps(video_snd) + mbps(screen_snd);
  std::printf("call group vs a competing download (40 Mbit/s bottleneck, 30 s):\n\n");
  std::printf("  %-22s %6.1f Mbit/s (weight 1)\n", "audio", mbps(audio_snd));
  std::printf("  %-22s %6.1f Mbit/s (weight 6)\n", "video", mbps(video_snd));
  std::printf("  %-22s %6.1f Mbit/s (weight 3)\n", "screen share", mbps(screen_snd));
  std::printf("  %-22s %6.1f Mbit/s (= one fair share)\n", "group total", group);
  std::printf("  %-22s %6.1f Mbit/s\n\n", "competing download", mbps(other_snd));
  std::printf("the group's aggregate window: %.1f packets across %zu flows,\n"
              "%llu loss episodes handled once per episode for the whole group.\n",
              call_group.aggregate_cwnd_bytes() / 1460.0, call_group.num_members(),
              static_cast<unsigned long long>(call_group.loss_episodes()));
  return 0;
}
