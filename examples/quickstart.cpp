// Quickstart: run a CCP-controlled TCP flow over a simulated link.
//
// This is the smallest end-to-end use of the library:
//   1. build a dumbbell network (one bottleneck link),
//   2. start a CCP host (agent + datapath, talking over simulated IPC),
//   3. create a flow running a built-in algorithm in the *agent*,
//   4. attach it to a TCP sender and run.
//
// Usage: quickstart [algorithm]     (default: cubic)
// Try: reno, cubic, vegas, bbr, dctcp, timely, pcc
#include <cstdio>
#include <string>

#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"
#include "util/units.hpp"

using namespace ccp;

int main(int argc, char** argv) {
  const std::string alg = argc > 1 ? argv[1] : "cubic";

  // A 100 Mbit/s bottleneck with a 20 ms RTT and one BDP of buffer.
  sim::EventQueue events;
  auto net_cfg = sim::DumbbellConfig::make(/*rate_bps=*/100e6,
                                           Duration::from_millis(20),
                                           /*buffer_bdp=*/1.0);
  sim::Dumbbell net(events, net_cfg);

  // The CCP side: a user-space agent with every built-in algorithm
  // registered, plus the datapath, wired through ~15 us of simulated IPC.
  sim::SimCcpHost host(events, sim::CcpHostConfig{});

  // One flow, congestion-controlled by `alg` running in the agent.
  datapath::FlowConfig flow_cfg;
  flow_cfg.mss = 1460;
  flow_cfg.init_cwnd_bytes = 10 * 1460;
  auto& flow = host.create_flow(flow_cfg, alg);

  const TimePoint end = TimePoint::epoch() + Duration::from_secs(10);
  host.start(end);

  sim::TcpSenderConfig sender_cfg;
  sender_cfg.record_rtt_samples = true;
  auto& sender = net.add_flow(sender_cfg, &flow, TimePoint::epoch());

  std::printf("running '%s' for 10 simulated seconds...\n", alg.c_str());
  events.run_until(end);

  std::printf("\nresults\n");
  std::printf("  throughput:   %s\n",
              format_bandwidth(sender.delivered_bytes() * 8.0 / 10.0).c_str());
  std::printf("  median RTT:   %.2f ms (base 20 ms)\n",
              sender.rtt_samples().quantile(0.5) / 1000.0);
  std::printf("  loss events:  %llu\n",
              static_cast<unsigned long long>(sender.stats().loss_events));
  std::printf("  reports:      %llu (one per RTT — not one per ACK; that is "
              "the point)\n",
              static_cast<unsigned long long>(flow.reports_sent()));
  std::printf("  final cwnd:   %.1f packets\n", flow.cwnd_bytes() / 1460.0);
  return 0;
}
