// Writing a new congestion control algorithm against the CCP API.
//
// This is the paper's "ease of programming" pitch (§2.2) made concrete:
// a complete delay-target algorithm — a miniature Copa/Vegas hybrid — in
// ~60 lines of ordinary user-space C++, with floating point, no kernel
// anywhere. It composes the three Table 3 handlers (init /
// on_measurement / on_urgent) with a datapath program written in the
// fluent builder API (§2.1's control language).
#include <algorithm>
#include <cstdio>

#include "lang/builder.hpp"
#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"
#include "util/units.hpp"

using namespace ccp;
using namespace ccp::lang;  // Expr, ProgramBuilder, v(), f(), pkt()

/// DelayTarget: keep the measured RTT within `target_ratio` of the
/// minimum RTT. MIMD on the window: multiplicative increase while under
/// target, multiplicative decrease when over.
class DelayTarget final : public agent::Algorithm {
 public:
  explicit DelayTarget(const agent::FlowInfo& info)
      : mss_(info.mss), cwnd_(static_cast<double>(info.init_cwnd_bytes)) {}

  std::string_view name() const override { return "delay_target"; }
  agent::AlgorithmTraits traits() const override { return {{"RTT"}, {"CWND"}}; }

  void init(agent::FlowControl& flow) override {
    // The datapath program: smooth the RTT, track the minimum, count
    // acked bytes, surface loss urgently, report once per RTT.
    Program p =
        ProgramBuilder()
            .def("srtt", Expr::c(0), ewma(f("srtt"), pkt(PktField::RttUs), 0.25))
            .def("minrtt", Expr::c(1e9),
                 if_(pkt(PktField::RttUs) > 0,
                     min(f("minrtt"), pkt(PktField::RttUs)), f("minrtt")))
            .def_counter("acked", f("acked") + pkt(PktField::BytesAcked))
            .def_counter("loss", f("loss") + pkt(PktField::LostPackets),
                         /*urgent=*/true)
            .cwnd(v("cwnd"))
            .wait_rtts(1.0)
            .report()
            .build();
    flow.install(p, std::vector<std::pair<std::string, double>>{{"cwnd", cwnd_}});
  }

  void on_measurement(agent::FlowControl& flow,
                      const agent::Measurement& m) override {
    const double srtt = m.get("srtt");
    const double minrtt = m.get("minrtt");
    if (srtt <= 0 || minrtt >= 1e9) return;
    if (srtt < kTargetRatio * minrtt) {
      cwnd_ *= 1.08;  // under the delay budget: claim more
    } else {
      cwnd_ *= 0.95;  // over budget: back off gently
    }
    cwnd_ = std::max(cwnd_, 2.0 * mss_);
    flow.update_fields(
        std::vector<std::pair<std::string, double>>{{"cwnd", cwnd_}});
  }

  void on_urgent(agent::FlowControl& flow, ipc::UrgentKind kind,
                 const agent::Measurement&) override {
    if (kind == ipc::UrgentKind::Loss || kind == ipc::UrgentKind::Timeout) {
      cwnd_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
      flow.update_fields(
          std::vector<std::pair<std::string, double>>{{"cwnd", cwnd_}});
    }
  }

 private:
  static constexpr double kTargetRatio = 1.25;  // allow 25% queueing delay
  double mss_;
  double cwnd_;
};

int main() {
  sim::EventQueue events;
  auto net_cfg =
      sim::DumbbellConfig::make(100e6, Duration::from_millis(20), 2.0);
  sim::Dumbbell net(events, net_cfg);
  sim::SimCcpHost host(events, sim::CcpHostConfig{});

  // Register the new algorithm — this one line is the whole deployment
  // story ("write once, run everywhere": any CCP datapath can run it).
  host.agent().register_algorithm("delay_target", [](const agent::FlowInfo& info) {
    return std::make_unique<DelayTarget>(info);
  });

  auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460},
                                "delay_target");
  const TimePoint end = TimePoint::epoch() + Duration::from_secs(12);
  host.start(end);
  sim::TcpSenderConfig scfg;
  scfg.record_rtt_samples = true;
  auto& sender = net.add_flow(scfg, &flow, TimePoint::epoch());
  events.run_until(end);

  const double tput = sender.delivered_bytes() * 8.0 / 12.0;
  std::printf("delay_target on 100 Mbit/s, 20 ms RTT, 2 BDP buffer:\n");
  std::printf("  throughput:  %s (%.0f%% of link)\n",
              format_bandwidth(tput).c_str(), tput / 100e6 * 100);
  std::printf("  median RTT:  %.2f ms (target <= %.2f ms)\n",
              sender.rtt_samples().quantile(0.5) / 1000.0, 20.0 * 1.25);
  std::printf("  p95 RTT:     %.2f ms\n",
              sender.rtt_samples().quantile(0.95) / 1000.0);
  std::printf("  losses:      %llu\n",
              static_cast<unsigned long long>(sender.stats().loss_events));
  std::printf("\nThe algorithm never touched a packet: the datapath enforced\n"
              "the window and summarized ACKs; user-space only saw one report\n"
              "per RTT (%llu total).\n",
              static_cast<unsigned long long>(flow.reports_sent()));
  return 0;
}
