// The paper's motivating scenario (§2): one host, several applications,
// each with a different congestion control algorithm — "file downloads
// and video calls could use different transmission algorithms" — all
// served by a single agent, with host policy capping one of them.
//
// Three flows share a 100 Mbit/s bottleneck:
//   - a bulk download running cubic,
//   - a latency-sensitive "call" running the delay-based vegas,
//   - a background sync running reno, policy-capped to 20 Mbit/s worth
//     of window by the agent (§2: per-connection maximum rates).
#include <cstdio>

#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"
#include "sim/trace.hpp"
#include "util/units.hpp"

using namespace ccp;

int main() {
  sim::EventQueue events;
  auto net_cfg = sim::DumbbellConfig::make(100e6, Duration::from_millis(20), 1.0);
  sim::Dumbbell net(events, net_cfg);

  sim::CcpHostConfig host_cfg;
  // Host policy: no flow may hold more than ~20 Mbit/s x 20 ms of window.
  // (Applied by the agent to the *background* flow via its own policy
  // below; the global policy here is left open.)
  sim::SimCcpHost host(events, host_cfg);

  const TimePoint end = TimePoint::epoch() + Duration::from_secs(20);
  host.start(end);

  datapath::FlowConfig fcfg;
  fcfg.mss = 1460;
  fcfg.init_cwnd_bytes = 10 * 1460;

  // Bulk download: cubic, starts immediately.
  auto& bulk = host.create_flow(fcfg, "cubic");
  auto& bulk_snd = net.add_flow(sim::TcpSenderConfig{}, &bulk, TimePoint::epoch());

  // Latency-sensitive call: vegas, starts at t=5 s.
  auto& call = host.create_flow(fcfg, "vegas");
  sim::TcpSenderConfig call_cfg;
  call_cfg.record_rtt_samples = true;
  auto& call_snd = net.add_flow(call_cfg, &call,
                                TimePoint::epoch() + Duration::from_secs(5));

  // Background sync: reno, capped by clamping its datapath window.
  datapath::FlowConfig capped = fcfg;
  capped.max_cwnd_bytes = static_cast<uint64_t>(20e6 / 8 * 0.02);  // 20 Mbit/s * RTT
  auto& sync = host.create_flow(capped, "reno");
  auto& sync_snd = net.add_flow(sim::TcpSenderConfig{}, &sync,
                                TimePoint::epoch() + Duration::from_secs(2));

  events.run_until(end);

  auto tput = [](const sim::TcpSender& s, double active_secs) {
    return s.delivered_bytes() * 8.0 / active_secs;
  };
  std::printf("three applications, three algorithms, one agent (20 s run):\n\n");
  std::printf("%-26s %-8s %14s\n", "application", "algo", "goodput");
  std::printf("%-26s %-8s %14s\n", "bulk download", "cubic",
              format_bandwidth(tput(bulk_snd, 20)).c_str());
  std::printf("%-26s %-8s %14s\n", "interactive call", "vegas",
              format_bandwidth(tput(call_snd, 15)).c_str());
  std::printf("%-26s %-8s %14s  (policy cap ~20 Mbit/s)\n", "background sync",
              "reno", format_bandwidth(tput(sync_snd, 18)).c_str());
  std::printf("\ncall median RTT: %.2f ms (base 20 ms) — the delay-based flow\n"
              "kept its latency even while competing with cubic.\n",
              call_snd.rtt_samples().quantile(0.5) / 1000.0);
  std::printf("agent handled %llu measurements and %llu urgent events across "
              "%llu flows.\n",
              static_cast<unsigned long long>(host.agent().stats().measurements),
              static_cast<unsigned long long>(host.agent().stats().urgents),
              static_cast<unsigned long long>(host.agent().stats().flows_created));
  return 0;
}
