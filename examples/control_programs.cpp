// A tour of the datapath program language (§2.1, Table 2).
//
// Shows the same program written three ways — text syntax, fluent C++
// builder, and the compiled bytecode — and runs the paper's BBR pulse
// program against a live datapath flow to show the control primitives
// sequencing *inside* the datapath, with no agent round trips.
#include <cstdio>

#include "datapath/flow.hpp"
#include "lang/builder.hpp"
#include "lang/compiler.hpp"
#include "lang/printer.hpp"

using namespace ccp;
using namespace ccp::lang;

int main() {
  // ---- 1. the paper's §2.1 BBR pulse program, text form ----
  const char* text = R"(
fold {
  volatile rate := max(rate, Pkt.rcv_rate) init 0;
}
control {
  Rate(1.25 * $r); WaitRtts(1.0); Report();
  Rate(0.75 * $r); WaitRtts(1.0); Report();
  Rate($r);        WaitRtts(6.0); Report();
}
)";
  std::printf("=== text form ===\n%s\n", text);

  // ---- 2. the same program via the fluent builder ----
  Program built = ProgramBuilder()
                      .def("rate", Expr::c(0),
                           max(f("rate"), pkt(PktField::RcvRateBps)),
                           ProgramBuilder::DefOpts{/*is_volatile=*/true, false})
                      .rate(1.25 * v("r")).wait_rtts(1.0).report()
                      .rate(0.75 * v("r")).wait_rtts(1.0).report()
                      .rate(v("r")).wait_rtts(6.0).report()
                      .build();
  std::printf("=== builder form (printed back) ===\n%s\n",
              print_program(built).c_str());

  // ---- 3. what the datapath actually executes ----
  CompiledProgram compiled = compile(built);
  std::printf("=== compiled ===\nfold block: %zu instructions, %zu registers\n"
              "control: %zu steps, %zu install-time variable(s)\n\n",
              compiled.fold_block.code.size(), compiled.num_folds(),
              compiled.control_ops.size(), compiled.num_vars());

  // ---- 4. run it on a real datapath flow and watch the pulses ----
  std::printf("=== execution trace (datapath alone, RTT = 10 ms) ===\n");
  int reports = 0;
  datapath::CcpFlow flow(
      1, datapath::FlowConfig{},
      [&reports](ipc::Message msg, bool) {
        if (std::holds_alternative<ipc::MeasurementMsg>(msg)) {
          const auto& m = std::get<ipc::MeasurementMsg>(msg);
          std::printf("    report #%d: max delivery rate this phase = %.1f Mbit/s\n",
                      ++reports, m.fields[0] * 8 / 1e6);
        }
      });

  ipc::InstallMsg install;
  install.flow_id = 1;
  install.program_text = text;
  install.var_names = {"r"};
  install.var_values = {12.5e6 / 8 * 8};  // 12.5 MB/s = 100 Mbit/s
  flow.install(install, TimePoint::epoch());

  // Drive ACKs for ~90 ms (one full 8-RTT pulse cycle at 10 ms RTT).
  double last_rate = -1;
  for (int ms = 1; ms <= 90; ++ms) {
    datapath::AckEvent ack;
    ack.now = TimePoint::epoch() + Duration::from_millis(ms);
    ack.bytes_acked = 12500;  // ~100 Mbit/s worth per ms
    ack.packets_acked = 9;
    ack.rtt_sample = Duration::from_millis(10);
    flow.on_ack(ack);
    if (flow.pacing_rate_bps() != last_rate) {
      last_rate = flow.pacing_rate_bps();
      std::printf("t=%2d ms: datapath pacing rate -> %6.1f Mbit/s\n", ms,
                  last_rate * 8 / 1e6);
    }
  }
  std::printf("\nThe 1.25x / 0.75x / 1.0x pulses and the report boundaries all\n"
              "happened inside the datapath — the agent was not involved after\n"
              "Install(). That synchronization is why control programs exist\n"
              "(§2.1): per-RTT measurement windows line up with rate changes.\n");
  return 0;
}
