// The deployment architecture with *real* IPC: the agent runs in its own
// thread and talks to the datapath over an actual Unix domain socket —
// exactly Figure 1, minus the simulator. The "datapath" here is driven
// by a synthetic ACK stream so the example has no network dependency;
// swap that loop for a kernel module / DPDK poll loop and nothing else
// changes.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "agent/transport_loop.hpp"
#include "algorithms/registry.hpp"
#include "datapath/datapath.hpp"
#include "ipc/transport.hpp"
#include "telemetry/stats_server.hpp"
#include "telemetry/telemetry.hpp"

using namespace ccp;

int main(int argc, char** argv) {
  // Run duration: default 3 s; pass seconds as argv[1] for a longer run
  // (useful for watching live rates with ccp_stats).
  const double run_secs = argc > 1 ? std::atof(argv[1]) : 3.0;

  // Live telemetry: set CCP_STATS_SOCK=/path to expose a stats socket
  // that `ccp_stats --socket /path` can attach to while this runs.
  telemetry::init_from_env();
  std::unique_ptr<telemetry::StatsServer> stats_server;
  if (const char* sock = std::getenv("CCP_STATS_SOCK")) {
    stats_server = std::make_unique<telemetry::StatsServer>(sock);
    std::printf("serving telemetry on %s (attach with ccp_stats)\n", sock);
  }

  // One bidirectional channel: endpoint a = datapath side, b = agent side.
  auto channel = ipc::make_unix_socket_pair();

  // --- agent side (its own thread, as in a real deployment) ---
  agent::AgentConfig agent_cfg;
  agent_cfg.default_algorithm = "reno";
  agent::CcpAgent the_agent(agent_cfg, [&](std::span<const uint8_t> frame) {
    channel.b->send_frame(frame);
  });
  algorithms::register_builtin_algorithms(the_agent);
  agent::TransportLoop agent_loop(*channel.b, [&](std::span<const uint8_t> frame) {
    the_agent.handle_frame(frame);
  });

  // --- datapath side (this thread) ---
  datapath::DatapathConfig dp_cfg;
  dp_cfg.flush_interval = Duration::from_micros(500);  // batch across flows
  datapath::CcpDatapath dp(dp_cfg, [&](std::span<const uint8_t> frame) {
    channel.a->send_frame(frame);
  });

  datapath::FlowConfig fcfg;
  fcfg.mss = 1460;
  fcfg.init_cwnd_bytes = 10 * 1460;
  auto& flow = dp.create_flow(fcfg, "reno", monotonic_now());

  // Synthetic ACK clock: ~one ACK per 100 us (a ~120 Mbit/s stream),
  // RTT 10 ms, with a loss episode at t=1 s.
  std::printf("driving the datapath with a synthetic ACK stream for %.0f s...\n",
              run_secs);
  const TimePoint start = monotonic_now();
  uint64_t acks = 0;
  bool loss_injected = false;
  while ((monotonic_now() - start) < Duration::from_secs_f(run_secs)) {
    // Pump agent -> datapath commands.
    while (auto frame = channel.a->try_recv_frame()) {
      dp.handle_frame(*frame, monotonic_now());
    }
    datapath::AckEvent ack;
    ack.now = monotonic_now();
    ack.bytes_acked = 1460;
    ack.packets_acked = 1;
    ack.rtt_sample = Duration::from_millis(10);
    ack.bytes_in_flight = flow.cwnd_bytes();
    flow.on_ack(ack);
    ++acks;

    if (!loss_injected && (monotonic_now() - start) > Duration::from_secs(1)) {
      loss_injected = true;
      const uint64_t before = flow.cwnd_bytes();
      flow.on_loss(datapath::LossEvent{monotonic_now(), 1, flow.cwnd_bytes()});
      // Give the urgent round trip a moment, then observe the halving.
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      while (auto frame = channel.a->try_recv_frame()) {
        dp.handle_frame(*frame, monotonic_now());
      }
      dp.tick(monotonic_now());
      std::printf("  t=1s: injected loss; urgent round trip halved cwnd "
                  "%llu -> %llu bytes\n",
                  static_cast<unsigned long long>(before),
                  static_cast<unsigned long long>(flow.cwnd_bytes()));
    }
    dp.tick(monotonic_now());
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  std::printf("\nafter %.0f s of real (socket) IPC:\n", run_secs);
  std::printf("  ACKs folded in the datapath: %llu\n",
              static_cast<unsigned long long>(flow.acks_folded_total()));
  std::printf("  reports sent to the agent:   %llu  (%.1f ACKs per report)\n",
              static_cast<unsigned long long>(flow.reports_sent()),
              static_cast<double>(flow.acks_folded_total()) /
                  static_cast<double>(flow.reports_sent()));
  std::printf("  agent measurements handled:  %llu, urgents: %llu\n",
              static_cast<unsigned long long>(the_agent.stats().measurements),
              static_cast<unsigned long long>(the_agent.stats().urgents));
  std::printf("  datapath frames sent: %llu (%llu bytes total)\n",
              static_cast<unsigned long long>(dp.stats().frames_sent),
              static_cast<unsigned long long>(dp.stats().bytes_sent));
  std::printf("  final cwnd: %llu bytes\n",
              static_cast<unsigned long long>(flow.cwnd_bytes()));

  agent_loop.stop();
  return 0;
}
