#include <gtest/gtest.h>

#include "lang/error.hpp"
#include "lang/parser.hpp"
#include "lang/sema.hpp"

namespace ccp::lang {
namespace {

bool has_error(const std::vector<SemaIssue>& issues) {
  for (const auto& i : issues) {
    if (i.severity == SemaIssue::Severity::Error) return true;
  }
  return false;
}

TEST(Sema, AcceptsWellFormedProgram) {
  auto prog = parse_program(R"(
    fold { acked := acked + Pkt.bytes_acked init 0; }
    control { Cwnd(acked * 2); WaitRtts(1.0); Report(); }
  )");
  EXPECT_FALSE(has_error(analyze(prog)));
  EXPECT_NO_THROW(check_or_throw(prog));
}

TEST(Sema, RejectsMissingControl) {
  auto prog = parse_program("fold { a := 1 init 0; }");
  EXPECT_TRUE(has_error(analyze(prog)));
  EXPECT_THROW(check_or_throw(prog), ProgramError);
}

TEST(Sema, RejectsControlWithoutReport) {
  auto prog = parse_program("control { Cwnd(10000); WaitRtts(1.0); }");
  EXPECT_TRUE(has_error(analyze(prog)));
}

TEST(Sema, RejectsNonPositiveConstantWaits) {
  EXPECT_THROW(check_or_throw(parse_program("control { Wait(0); Report(); }")),
               ProgramError);
  EXPECT_THROW(check_or_throw(parse_program("control { WaitRtts(-1); Report(); }")),
               ProgramError);
  EXPECT_NO_THROW(check_or_throw(parse_program("control { Wait(100); Report(); }")));
  // Non-constant waits are fine (checked at runtime by the VM clamp).
  EXPECT_NO_THROW(check_or_throw(parse_program("control { WaitRtts($a); Report(); }")));
}

TEST(Sema, RejectsDivisionByLiteralZero) {
  EXPECT_THROW(check_or_throw(parse_program("control { Rate(5 / 0); Report(); }")),
               ProgramError);
  // Division by an expression that might be zero is legal (VM yields 0).
  EXPECT_NO_THROW(
      check_or_throw(parse_program("control { Rate(5 / $x); Report(); }")));
}

TEST(Sema, RejectsBadEwmaGain) {
  EXPECT_THROW(check_or_throw(parse_program(
                   "fold { a := ewma(a, Pkt.rtt, 0) init 0; } control { Report(); }")),
               ProgramError);
  EXPECT_THROW(check_or_throw(parse_program(
                   "fold { a := ewma(a, Pkt.rtt, 1.5) init 0; } control { Report(); }")),
               ProgramError);
  EXPECT_NO_THROW(check_or_throw(parse_program(
      "fold { a := ewma(a, Pkt.rtt, 0.125) init 0; } control { Report(); }")));
}

TEST(Sema, WarnsOnUnreadRegister) {
  auto prog = parse_program(R"(
    fold { lonely := Pkt.rtt init 0; }
    control { Report(); }
  )");
  const auto issues = analyze(prog);
  bool warned = false;
  for (const auto& i : issues) {
    if (i.severity == SemaIssue::Severity::Warning &&
        i.message.find("lonely") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
  EXPECT_FALSE(has_error(issues));  // warning only
}

TEST(Sema, ErrorsAccumulate) {
  auto prog = parse_program("control { Wait(0); Rate(1/0); }");
  int errors = 0;
  for (const auto& i : analyze(prog)) {
    if (i.severity == SemaIssue::Severity::Error) ++errors;
  }
  EXPECT_GE(errors, 3);  // no Report, bad Wait, div by zero
}

}  // namespace
}  // namespace ccp::lang
