#include <gtest/gtest.h>

#include "lang/builder.hpp"
#include "lang/compiler.hpp"
#include "lang/error.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "lang/vm.hpp"

namespace ccp::lang {
namespace {

TEST(Builder, BuildsPaperBbrPulseProgram) {
  // The §2.1 example: Rate(1.25*r).WaitRtts(1.0).Report(). ...
  Program prog = ProgramBuilder()
                     .def("rate", Expr::c(0), max(f("rate"), pkt(PktField::RcvRateBps)),
                          ProgramBuilder::DefOpts{/*is_volatile=*/true, false})
                     .rate(1.25 * v("r"))
                     .wait_rtts(1.0)
                     .report()
                     .rate(0.75 * v("r"))
                     .wait_rtts(1.0)
                     .report()
                     .rate(v("r"))
                     .wait_rtts(6.0)
                     .report()
                     .build();
  ASSERT_EQ(prog.control.size(), 9u);
  EXPECT_EQ(prog.control[0].op, ControlInstr::Op::SetRate);
  EXPECT_EQ(prog.folds.size(), 1u);
  EXPECT_TRUE(prog.folds[0].is_volatile);
  EXPECT_NO_THROW(compile(prog));
}

TEST(Builder, EquivalentToParsedText) {
  // Build the same program both ways; they must print identically.
  const char* text = R"(
fold {
  volatile acked := acked + Pkt.bytes_acked init 0;
  minrtt := min(minrtt, Pkt.rtt) init 1000000;
}
control {
  Cwnd((2 * $cwnd));
  WaitRtts(1.0);
  Report();
}
)";
  Program from_text = parse_program(text);

  Program from_builder =
      ProgramBuilder()
          .def_counter("acked", f("acked") + pkt(PktField::BytesAcked))
          .def("minrtt", Expr::c(1000000), min(f("minrtt"), pkt(PktField::RttUs)))
          .cwnd(2 * v("cwnd"))
          .wait_rtts(1.0)
          .report()
          .build();

  EXPECT_EQ(print_program(from_text), print_program(from_builder));
}

TEST(Builder, NumericLiteralsPromote) {
  Program prog = ProgramBuilder()
                     .def("x", 0, f("x") + 1)
                     .cwnd(1.5 * v("c") + 2)
                     .wait_rtts(0.5)
                     .report()
                     .build();
  EXPECT_NO_THROW(compile(prog));
}

TEST(Builder, RejectsUnknownFoldReference) {
  ProgramBuilder b;
  b.cwnd(f("nope")).report();
  EXPECT_THROW(b.build(), ProgramError);
}

TEST(Builder, RejectsDuplicateRegister) {
  ProgramBuilder b;
  b.def("x", 0, 1).def("x", 0, 2).report();
  EXPECT_THROW(b.build(), ProgramError);
}

TEST(Builder, DefCounterIsVolatile) {
  Program prog = ProgramBuilder()
                     .def_counter("loss", f("loss") + pkt(PktField::LostPackets),
                                  /*urgent=*/true)
                     .cwnd(v("c"))
                     .wait_rtts(1.0)
                     .report()
                     .build();
  ASSERT_EQ(prog.folds.size(), 1u);
  EXPECT_TRUE(prog.folds[0].is_volatile);
  EXPECT_TRUE(prog.folds[0].urgent);
}

TEST(Builder, AllOperatorsCompileAndRun) {
  Program prog =
      ProgramBuilder()
          .def("a", 1,
               if_((f("a") > 0 && f("a") != 3) || f("a") <= -1,
                   sqrt(abs(f("a"))) + cbrt(pow(f("a"), 2)) - log(exp(f("a"))),
                   ewma(f("a"), pkt(PktField::RttUs), 0.5)))
          .cwnd(-v("c"))
          .wait(1000)
          .report()
          .build();
  CompiledProgram compiled = compile(prog);
  FoldMachine fm;
  fm.install(&compiled, {10000.0});
  PktInfo info;
  info.rtt_us = 500;
  EXPECT_NO_THROW(fm.on_packet(info));
}

}  // namespace
}  // namespace ccp::lang
