// Bounded LRU behavior of the compile_text_shared program cache:
// residency stays capped under algorithm churn, hot entries survive,
// evicted programs stay alive for flows still holding them, and the
// eviction counter / residency gauge tell the truth.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "lang/compiler.hpp"
#include "lang/error.hpp"
#include "lang/pkt_fields.hpp"
#include "lang/vm.hpp"
#include "telemetry/telemetry.hpp"

namespace ccp::lang {
namespace {

/// Each test starts from an empty cache at the default capacity and
/// leaves the process in that same state for whoever runs next.
class ProgramCache : public ::testing::Test {
 protected:
  void SetUp() override {
    set_program_cache_capacity(kDefaultProgramCacheCapacity);
    clear_program_cache();
  }
  void TearDown() override {
    set_program_cache_capacity(kDefaultProgramCacheCapacity);
    clear_program_cache();
  }
};

/// Distinct-but-valid program text per `n` — the shape a parameter tuner
/// produces when it re-emits its program with new constants each epoch.
std::string program_text(int n) {
  return "fold { acked := acked + Pkt.bytes_acked init " + std::to_string(n) +
         "; } control { WaitRtts(1.0); Report(); }";
}

TEST_F(ProgramCache, SameTextSharesOneCompilation) {
  auto a = compile_text_shared(program_text(1));
  auto b = compile_text_shared(program_text(1));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(program_cache_size(), 1u);
  EXPECT_NE(a.get(), compile_text_shared(program_text(2)).get());
}

TEST_F(ProgramCache, ChurnStaysBoundedAndCountsEvictions) {
  const uint64_t evicted_before =
      telemetry::metrics().lang_cache_evictions.value();
  set_program_cache_capacity(8);
  for (int i = 0; i < 40; ++i) compile_text_shared(program_text(i));
  EXPECT_EQ(program_cache_size(), 8u);
  EXPECT_EQ(telemetry::metrics().lang_cache_evictions.value() - evicted_before,
            32u);
  EXPECT_EQ(telemetry::metrics().lang_cache_programs.value(), 8);
}

TEST_F(ProgramCache, LruKeepsRecentlyUsedEntries) {
  set_program_cache_capacity(2);
  auto a = compile_text_shared(program_text(1));
  compile_text_shared(program_text(2));
  // Touch 1 so 2 becomes least recently used, then push a third entry.
  compile_text_shared(program_text(1));
  compile_text_shared(program_text(3));
  EXPECT_EQ(program_cache_size(), 2u);
  // 1 must still be the cached instance; 2 must have been evicted and
  // therefore recompiles to a fresh instance.
  EXPECT_EQ(a.get(), compile_text_shared(program_text(1)).get());
  // Re-adding 2 is a fresh compile (and evicts 3, the new LRU).
  auto b2 = compile_text_shared(program_text(2));
  EXPECT_EQ(program_cache_size(), 2u);
  EXPECT_NE(b2.get(), a.get());
}

TEST_F(ProgramCache, EvictionDoesNotKillProgramsFlowsStillRun) {
  set_program_cache_capacity(1);
  auto held = compile_text_shared(program_text(7));
  FoldMachine machine;
  machine.install(held.get(), {});

  // Churn the single-slot cache until 7 is long gone.
  for (int i = 100; i < 110; ++i) compile_text_shared(program_text(i));
  EXPECT_EQ(program_cache_size(), 1u);

  // The flow's program (and any native code attached to it) must still
  // be fully usable through the flow's own reference.
  PktInfo pkt;
  pkt.bytes_acked = 1448.0;
  for (int i = 0; i < 4; ++i) machine.on_packet(pkt);
  EXPECT_DOUBLE_EQ(machine.state()[0], 7.0 + 4 * 1448.0);
}

TEST_F(ProgramCache, ShrinkingCapacityEvictsDownToNewCap) {
  set_program_cache_capacity(16);
  for (int i = 0; i < 10; ++i) compile_text_shared(program_text(i));
  ASSERT_EQ(program_cache_size(), 10u);
  set_program_cache_capacity(3);
  EXPECT_EQ(program_cache_size(), 3u);
  EXPECT_EQ(program_cache_capacity(), 3u);
  EXPECT_EQ(telemetry::metrics().lang_cache_programs.value(), 3);
}

TEST_F(ProgramCache, ZeroCapacityDisablesCaching) {
  set_program_cache_capacity(0);
  auto a = compile_text_shared(program_text(1));
  auto b = compile_text_shared(program_text(1));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(program_cache_size(), 0u);
}

TEST_F(ProgramCache, MalformedTextThrowsWithoutPoisoningCache) {
  EXPECT_THROW(compile_text_shared("fold { x := / ; }"), ProgramError);
  EXPECT_EQ(program_cache_size(), 0u);
}

}  // namespace
}  // namespace ccp::lang
