// Property tests over the whole language pipeline: random programs must
// round-trip through the printer, compile deterministically, disassemble
// without crashing, and never crash the parser even on mangled input.
#include <gtest/gtest.h>

#include <cmath>

#include "lang/builder.hpp"
#include "lang/compiler.hpp"
#include "lang/disasm.hpp"
#include "lang/error.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "lang/vm.hpp"
#include "util/rng.hpp"

namespace ccp::lang {
namespace {

/// Random expression over `n_regs` fold registers and two variables.
Expr random_expr(ccp::Rng& rng, int depth, int n_regs) {
  if (depth <= 0 || rng.chance(0.35)) {
    switch (rng.next_below(4)) {
      case 0: return Expr::c(rng.uniform(-1000, 1000));
      case 1: return f("r" + std::to_string(rng.next_below(n_regs)));
      case 2: return rng.chance(0.5) ? v("x") : v("y");
      default:
        return pkt(static_cast<PktField>(rng.next_below(kNumPktFields)));
    }
  }
  switch (rng.next_below(8)) {
    case 0: return random_expr(rng, depth - 1, n_regs) + random_expr(rng, depth - 1, n_regs);
    case 1: return random_expr(rng, depth - 1, n_regs) - random_expr(rng, depth - 1, n_regs);
    case 2: return random_expr(rng, depth - 1, n_regs) * random_expr(rng, depth - 1, n_regs);
    case 3: return random_expr(rng, depth - 1, n_regs) / random_expr(rng, depth - 1, n_regs);
    case 4: return min(random_expr(rng, depth - 1, n_regs), random_expr(rng, depth - 1, n_regs));
    case 5: return max(random_expr(rng, depth - 1, n_regs), random_expr(rng, depth - 1, n_regs));
    case 6:
      return if_(random_expr(rng, depth - 1, n_regs) <
                     random_expr(rng, depth - 1, n_regs),
                 random_expr(rng, depth - 1, n_regs),
                 random_expr(rng, depth - 1, n_regs));
    default:
      return ewma(random_expr(rng, depth - 1, n_regs),
                  random_expr(rng, depth - 1, n_regs), Expr::c(0.25));
  }
}

Program random_program(ccp::Rng& rng) {
  const int n_regs = 1 + static_cast<int>(rng.next_below(4));
  ProgramBuilder b;
  for (int i = 0; i < n_regs; ++i) {
    b.def("r" + std::to_string(i), Expr::c(rng.uniform(-10, 10)),
          random_expr(rng, 3, n_regs),
          ProgramBuilder::DefOpts{rng.chance(0.5), rng.chance(0.2)});
  }
  const int steps = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < steps; ++i) {
    switch (rng.next_below(3)) {
      case 0: b.cwnd(random_expr(rng, 2, n_regs)); break;
      case 1: b.rate(random_expr(rng, 2, n_regs)); break;
      default: b.wait_rtts(Expr::c(rng.uniform(0.25, 4.0))); break;
    }
  }
  b.report();
  return b.build();
}

class LangProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LangProperty, PrinterRoundTripIsStable) {
  ccp::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    Program prog = random_program(rng);
    const std::string once = print_program(prog);
    Program reparsed = parse_program(once);
    const std::string twice = print_program(reparsed);
    EXPECT_EQ(once, twice) << "trial " << trial;
  }
}

TEST_P(LangProperty, RoundTripPreservesSemantics) {
  ccp::Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    Program prog = random_program(rng);
    Program reparsed = parse_program(print_program(prog));
    CompiledProgram a = compile(prog);
    CompiledProgram b = compile(reparsed);
    ASSERT_EQ(a.num_folds(), b.num_folds());
    ASSERT_EQ(a.num_vars(), b.num_vars());

    // Execute both on the same random packet stream; states must match
    // exactly at every step.
    FoldMachine ma, mb;
    std::vector<double> vars(a.num_vars());
    for (auto& value : vars) value = rng.uniform(-100, 100);
    // Variable order can differ; bind by name.
    std::vector<double> vars_b(b.num_vars());
    for (size_t i = 0; i < a.var_names.size(); ++i) {
      vars_b[static_cast<size_t>(b.var_index(a.var_names[i]))] = vars[i];
    }
    ma.install(&a, vars);
    mb.install(&b, vars_b);
    for (int step = 0; step < 20; ++step) {
      PktInfo pkt;
      pkt.rtt_us = rng.uniform(0, 1e5);
      pkt.bytes_acked = rng.uniform(0, 1e5);
      pkt.lost_packets = rng.chance(0.2) ? 1 : 0;
      pkt.rcv_rate_bps = rng.uniform(0, 1e9);
      ma.on_packet(pkt);
      mb.on_packet(pkt);
      for (size_t r = 0; r < ma.state().size(); ++r) {
        const double va = ma.state()[r];
        const double vb = mb.state()[r];
        if (std::isnan(va)) {
          EXPECT_TRUE(std::isnan(vb));
        } else {
          ASSERT_DOUBLE_EQ(va, vb) << "trial " << trial << " step " << step;
        }
      }
    }
  }
}

TEST_P(LangProperty, DisassemblerNeverEmitsUnknown) {
  ccp::Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 30; ++trial) {
    CompiledProgram compiled = compile(random_program(rng));
    const std::string listing = disassemble(compiled);
    EXPECT_EQ(listing.find("= ? "), std::string::npos);
    EXPECT_FALSE(listing.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LangProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(LangFuzz, MangledProgramsThrowCleanly) {
  const std::string base = R"(
fold {
  volatile acked := acked + Pkt.bytes_acked init 0;
  rtt := ewma(rtt, Pkt.rtt, 0.125) init 0;
}
control { Cwnd($c); WaitRtts(1.0); Report(); }
)";
  ccp::Rng rng(99);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mangled = base;
    const int edits = 1 + static_cast<int>(rng.next_below(4));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.next_below(mangled.size());
      switch (rng.next_below(3)) {
        case 0: mangled[pos] = static_cast<char>(32 + rng.next_below(95)); break;
        case 1: mangled.erase(pos, 1); break;
        default:
          mangled.insert(pos, 1, static_cast<char>(32 + rng.next_below(95)));
          break;
      }
    }
    try {
      (void)compile_text(mangled);  // often still valid; that's fine
    } catch (const ProgramError&) {
      // the only acceptable failure mode
    }
  }
}

TEST(LangFuzz, RandomTokenSoupThrowsCleanly) {
  static const char* kTokens[] = {"fold",  "control", "{",    "}",    "(",
                                  ")",     ";",       ":=",   "init", "volatile",
                                  "urgent", "Pkt.rtt", "$x",  "min",  "ewma",
                                  "Cwnd",  "Rate",    "Wait", "Report", "1.5",
                                  "+",     "*",       "/",    "<",    "&&"};
  ccp::Rng rng(7);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string soup;
    const int n = 1 + static_cast<int>(rng.next_below(40));
    for (int i = 0; i < n; ++i) {
      soup += kTokens[rng.next_below(std::size(kTokens))];
      soup += ' ';
    }
    try {
      (void)compile_text(soup);
    } catch (const ProgramError&) {
    }
  }
}

}  // namespace
}  // namespace ccp::lang
