// Control-loop span + cycle-profiler unit tests: span id allocation,
// stage histogram accounting in close_span, the SpanRing under wrap and
// concurrent writers, profiler sampling/attribution, the Trace Event
// Format exporter and binary dump round-trip, and the stats-server spans
// request — including a client that disconnects mid-dump and reconnects.
// Suites are named Telemetry*/TraceRing*/StatsServer* so CI's ASan/TSan
// jobs pick them up.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ipc/transport.hpp"
#include "ipc/wire.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/spans.hpp"
#include "telemetry/stats_server.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_export.hpp"
#include "telemetry/trace_ring.hpp"
#include "util/time.hpp"

namespace ccp::telemetry {
namespace {

void reset_loop_histograms() {
  Metrics& m = metrics();
  m.loop_emit_to_agent_ns.reset();
  m.loop_agent_handler_ns.reset();
  m.loop_agent_to_enqueue_ns.reset();
  m.loop_enqueue_to_apply_ns.reset();
  m.loop_total_ns.reset();
}

TEST(TelemetrySpans, NextSpanIdIsMonotonicallyIncreasing) {
  const uint64_t a = next_span_id();
  const uint64_t b = next_span_id();
  const uint64_t c = next_span_id();
  EXPECT_GT(a, 0u);
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(c, b + 1);
}

TEST(TelemetrySpans, CloseSpanRecordsEveryStageAndTotalTelescopes) {
  reset_loop_histograms();
  SpanStamp stamp;
  stamp.span_id = next_span_id();
  stamp.emit_ns = 1000;
  stamp.agent_recv_ns = 1500;   // emit_to_agent = 500
  stamp.agent_send_ns = 1900;   // agent_handler = 400
  close_span(stamp, /*enqueue_ns=*/2100, /*apply_ns=*/2400, /*flow=*/7,
             SpanCommand::UpdateFields);  // to_enqueue=200, to_apply=300

  Metrics& m = metrics();
  EXPECT_EQ(m.loop_emit_to_agent_ns.count(), 1u);
  EXPECT_EQ(m.loop_emit_to_agent_ns.sum(), 500u);
  EXPECT_EQ(m.loop_agent_handler_ns.count(), 1u);
  EXPECT_EQ(m.loop_agent_handler_ns.sum(), 400u);
  EXPECT_EQ(m.loop_agent_to_enqueue_ns.count(), 1u);
  EXPECT_EQ(m.loop_agent_to_enqueue_ns.sum(), 200u);
  EXPECT_EQ(m.loop_enqueue_to_apply_ns.count(), 1u);
  EXPECT_EQ(m.loop_enqueue_to_apply_ns.sum(), 300u);
  EXPECT_EQ(m.loop_total_ns.count(), 1u);
  // The stages are cut from the same five clock reads, so the stage sums
  // telescope to the total exactly.
  EXPECT_EQ(m.loop_total_ns.sum(),
            m.loop_emit_to_agent_ns.sum() + m.loop_agent_handler_ns.sum() +
                m.loop_agent_to_enqueue_ns.sum() +
                m.loop_enqueue_to_apply_ns.sum());
}

TEST(TelemetrySpans, ZeroSpanIdAndMissingStampsAreIgnored) {
  reset_loop_histograms();
  close_span(SpanStamp{}, 100, 200, 1, SpanCommand::Install);
  EXPECT_EQ(metrics().loop_total_ns.count(), 0u);

  // A span the agent never stamped (agent_recv_ns == 0) still records
  // the hops that did happen, and skips the ones it cannot compute.
  SpanStamp partial;
  partial.span_id = next_span_id();
  partial.emit_ns = 1000;
  close_span(partial, 0, 3000, 1, SpanCommand::Install);
  EXPECT_EQ(metrics().loop_emit_to_agent_ns.count(), 0u);
  EXPECT_EQ(metrics().loop_total_ns.count(), 1u);
  EXPECT_EQ(metrics().loop_total_ns.sum(), 2000u);
}

TEST(TelemetrySpanRing, KeepsMostRecentAfterWrap) {
  SpanRing ring(64);
  EXPECT_EQ(ring.capacity(), 64u);
  for (uint64_t i = 0; i < 200; ++i) {
    CompletedSpan sp;
    sp.span_id = i + 1;
    sp.emit_ns = 1000 + i;
    sp.apply_ns = 2000 + i;
    sp.flow = static_cast<uint32_t>(i);
    sp.command = SpanCommand::DirectControl;
    ring.record(sp);
  }
  EXPECT_EQ(ring.recorded(), 200u);
  const auto spans = ring.dump();
  ASSERT_EQ(spans.size(), 64u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].span_id, 136u + i + 1);
    EXPECT_EQ(spans[i].flow, 136u + i);
  }
}

TEST(TelemetrySpanRing, ConcurrentWritersWrapWithoutTearing) {
  SpanRing ring(128);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20'000;  // wraps the ring hundreds of times
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, &go, w] {
      while (!go.load(std::memory_order_acquire)) {}
      for (uint64_t i = 1; i <= kPerWriter; ++i) {
        CompletedSpan sp;
        sp.span_id = i;
        sp.emit_ns = i;
        sp.agent_recv_ns = i + 1;
        sp.agent_send_ns = i + 2;
        sp.enqueue_ns = i + 3;
        sp.apply_ns = i + 4;
        sp.flow = static_cast<uint32_t>(w);
        sp.command = SpanCommand::Install;
        ring.record(sp);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Dump while the writers lap the ring: torn slots must be skipped, so
  // every span the reader returns is internally consistent.
  for (int i = 0; i < 100; ++i) {
    for (const CompletedSpan& sp : ring.dump()) {
      EXPECT_LT(sp.flow, static_cast<uint32_t>(kWriters));
      EXPECT_EQ(sp.agent_recv_ns, sp.emit_ns + 1);
      EXPECT_EQ(sp.apply_ns, sp.emit_ns + 4);
      EXPECT_EQ(sp.command, SpanCommand::Install);
    }
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(ring.recorded(), uint64_t{kWriters} * kPerWriter);
  EXPECT_EQ(ring.dump().size(), ring.capacity());
}

TEST(TraceRing, WraparoundUnderConcurrentWritersKeepsOnlyValidRecentEvents) {
  // The satellite case for the trace ring proper: writers overflow the
  // capacity many times over while a reader dumps concurrently; after
  // the dust settles the ring holds exactly `capacity` fully-written
  // events and the overall recorded() tally is exact.
  TraceRing ring(128);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20'000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, &go, w] {
      while (!go.load(std::memory_order_acquire)) {}
      for (uint64_t i = 1; i <= kPerWriter; ++i) {
        ring.record(TraceKind::Report, static_cast<uint32_t>(w),
                    static_cast<double>(w), i);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int i = 0; i < 100; ++i) {
    for (const TraceEvent& ev : ring.dump()) {
      EXPECT_EQ(ev.kind, TraceKind::Report);
      ASSERT_LT(ev.flow, static_cast<uint32_t>(kWriters));
      EXPECT_EQ(ev.value, static_cast<double>(ev.flow));
      EXPECT_GE(ev.t_ns, 1u);
      EXPECT_LE(ev.t_ns, kPerWriter);
    }
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(ring.recorded(), uint64_t{kWriters} * kPerWriter);
  EXPECT_EQ(ring.dump().size(), ring.capacity());
}

TEST(TelemetrySpanRing, GlobalEnableDisable) {
  EXPECT_EQ(span_ring(), nullptr);
  enable_spans(64);
  ASSERT_NE(span_ring(), nullptr);
  SpanStamp stamp;
  stamp.span_id = next_span_id();
  stamp.emit_ns = 10;
  close_span(stamp, 20, 30, 3, SpanCommand::Install);
  EXPECT_EQ(span_ring()->recorded(), 1u);
  disable_spans();
  EXPECT_EQ(span_ring(), nullptr);
  close_span(stamp, 20, 30, 3, SpanCommand::Install);  // histograms only
}

TEST(TelemetryProfiler, SampleMaskRoundsToPowerOfTwo) {
  EXPECT_EQ(profile_sample_mask(), 0u);  // default off
  set_profile_sample(1000);
  EXPECT_EQ(profile_sample_n(), 1024u);
  EXPECT_EQ(profile_sample_mask(), 1023u);
  set_profile_sample(1);
  EXPECT_EQ(profile_sample_n(), 2u);
  set_profile_sample(0);
  EXPECT_EQ(profile_sample_mask(), 0u);
}

TEST(TelemetryProfiler, CommitAttributesCyclesToStages) {
  Metrics& m = metrics();
  const uint64_t measure0 = m.prof_cycles[size_t(ProfStage::Measure)].value();
  const uint64_t fold0 = m.prof_cycles[size_t(ProfStage::FoldJit)].value();
  const uint64_t emit0 = m.prof_cycles[size_t(ProfStage::ReportEmit)].value();
  const uint64_t wd0 = m.prof_cycles[size_t(ProfStage::Watchdog)].value();

  ProfSample s;
  s.entry = 100;
  s.measure = 140;   // Measure = 40
  s.watchdog = 150;  // Watchdog = 10
  s.fold = 250;      // Fold = 100
  s.done = 280;      // ReportEmit = 30
  prof_commit(s, /*jit=*/true);

  EXPECT_EQ(m.prof_cycles[size_t(ProfStage::Measure)].value() - measure0, 40u);
  EXPECT_EQ(m.prof_cycles[size_t(ProfStage::Watchdog)].value() - wd0, 10u);
  EXPECT_EQ(m.prof_cycles[size_t(ProfStage::FoldJit)].value() - fold0, 100u);
  EXPECT_EQ(m.prof_cycles[size_t(ProfStage::ReportEmit)].value() - emit0, 30u);

  // A sample whose later stamps never landed only credits the stages
  // that completed.
  const uint64_t interp0 =
      m.prof_cycles[size_t(ProfStage::FoldInterp)].value();
  ProfSample partial;
  partial.entry = 100;
  partial.measure = 130;
  prof_commit(partial, /*jit=*/false);
  EXPECT_EQ(m.prof_cycles[size_t(ProfStage::Measure)].value() - measure0,
            70u);
  EXPECT_EQ(m.prof_cycles[size_t(ProfStage::FoldInterp)].value(), interp0);
}

TEST(TelemetryProfiler, CyclesAreMonotonic) {
  const uint64_t a = prof_cycles();
  const uint64_t b = prof_cycles();
  EXPECT_GE(b, a);
}

TEST(TelemetryTraceExport, JsonContainsSpansEventsAndMetadata) {
  std::vector<TraceEvent> events;
  TraceEvent ev;
  ev.t_ns = 5000;
  ev.value = 1.25;
  ev.flow = 2;
  ev.kind = TraceKind::Report;
  events.push_back(ev);

  std::vector<CompletedSpan> spans;
  CompletedSpan sp;
  sp.span_id = 42;
  sp.emit_ns = 1000;
  sp.agent_recv_ns = 1500;
  sp.agent_send_ns = 1900;
  sp.enqueue_ns = 2100;
  sp.apply_ns = 2400;
  sp.flow = 7;
  sp.command = SpanCommand::Install;
  spans.push_back(sp);

  const std::string json = trace_events_json(events, spans);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"loop/install\""), std::string::npos);
  EXPECT_NE(json.find("\"emit_to_agent\""), std::string::npos);
  EXPECT_NE(json.find("\"agent_handler\""), std::string::npos);
  EXPECT_NE(json.find("\"agent_to_enqueue\""), std::string::npos);
  EXPECT_NE(json.find("\"enqueue_to_apply\""), std::string::npos);
  EXPECT_NE(json.find("\"span_id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Crude but effective structural check: balanced braces/brackets.
  int depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  // An unstamped hop is skipped rather than emitted with a bogus span.
  spans[0].agent_recv_ns = 0;
  const std::string partial = trace_events_json(events, spans);
  EXPECT_EQ(partial.find("\"emit_to_agent\""), std::string::npos);
  EXPECT_NE(partial.find("\"loop/install\""), std::string::npos);
}

TEST(TelemetryTraceExport, BinaryDumpRoundTrips) {
  std::vector<TraceEvent> events;
  for (uint64_t i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.t_ns = 100 + i;
    ev.value = 0.5 * static_cast<double>(i);
    ev.flow = static_cast<uint32_t>(i);
    ev.kind = TraceKind::SetCwnd;
    events.push_back(ev);
  }
  std::vector<CompletedSpan> spans;
  for (uint64_t i = 0; i < 5; ++i) {
    CompletedSpan sp;
    sp.span_id = i + 1;
    sp.emit_ns = 1000 * (i + 1);
    sp.agent_recv_ns = sp.emit_ns + 10;
    sp.agent_send_ns = sp.emit_ns + 20;
    sp.enqueue_ns = sp.emit_ns + 30;
    sp.apply_ns = sp.emit_ns + 40;
    sp.flow = static_cast<uint32_t>(i);
    sp.command = SpanCommand::UpdateFields;
    spans.push_back(sp);
  }

  const std::string path =
      "/tmp/ccp_trace_dump_test_" + std::to_string(::getpid()) + ".bin";
  ASSERT_TRUE(write_trace_dump(path, events, spans));
  std::vector<TraceEvent> events2;
  std::vector<CompletedSpan> spans2;
  ASSERT_TRUE(read_trace_dump(path, events2, spans2));
  std::remove(path.c_str());

  ASSERT_EQ(events2.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events2[i].t_ns, events[i].t_ns);
    EXPECT_EQ(events2[i].value, events[i].value);
    EXPECT_EQ(events2[i].flow, events[i].flow);
    EXPECT_EQ(events2[i].kind, events[i].kind);
  }
  ASSERT_EQ(spans2.size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans2[i].span_id, spans[i].span_id);
    EXPECT_EQ(spans2[i].emit_ns, spans[i].emit_ns);
    EXPECT_EQ(spans2[i].apply_ns, spans[i].apply_ns);
    EXPECT_EQ(spans2[i].flow, spans[i].flow);
    EXPECT_EQ(spans2[i].command, spans[i].command);
  }

  // A truncated or garbage file must fail cleanly, not crash or OOM.
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fwrite("nope", 1, 4, f);
  fclose(f);
  EXPECT_FALSE(read_trace_dump(path, events2, spans2));
  std::remove(path.c_str());
}

TEST(StatsServer, SpansRequestRoundTrip) {
  const std::string path =
      "/tmp/ccp_spans_test_" + std::to_string(::getpid()) + ".sock";
  enable_spans(64);
  SpanStamp stamp;
  stamp.span_id = 77;
  stamp.emit_ns = 100;
  stamp.agent_recv_ns = 200;
  stamp.agent_send_ns = 300;
  close_span(stamp, 400, 500, 9, SpanCommand::DirectControl);

  {
    StatsServer server(path);
    auto client = StatsClient::connect(path);
    ASSERT_NE(client, nullptr);
    const auto spans = client->spans();
    ASSERT_TRUE(spans.has_value());
    ASSERT_GE(spans->size(), 1u);
    const CompletedSpan& sp = spans->back();
    EXPECT_EQ(sp.span_id, 77u);
    EXPECT_EQ(sp.emit_ns, 100u);
    EXPECT_EQ(sp.agent_send_ns, 300u);
    EXPECT_EQ(sp.enqueue_ns, 400u);
    EXPECT_EQ(sp.apply_ns, 500u);
    EXPECT_EQ(sp.flow, 9u);
    EXPECT_EQ(sp.command, SpanCommand::DirectControl);
  }
  disable_spans();
}

TEST(StatsServer, ClientDisconnectMidDumpThenReconnectGetsFullDump) {
  const std::string path =
      "/tmp/ccp_reconnect_test_" + std::to_string(::getpid()) + ".sock";
  // Enough events for multiple reply chunks (kTraceChunk = 4096), so a
  // client can plausibly walk away mid-dump.
  enable_trace(16384);
  constexpr uint64_t kEvents = 10'000;
  for (uint64_t i = 0; i < kEvents; ++i) {
    trace(TraceKind::Report, static_cast<uint32_t>(i % 8),
          static_cast<double>(i));
  }

  {
    StatsServer server(path);

    // First client: request the dump, read a single chunk, then vanish.
    {
      auto raw = ipc::unix_connect(path);
      ASSERT_NE(raw, nullptr);
      ipc::Encoder enc;
      enc.u8(kStatsReqTrace);
      ASSERT_TRUE(raw->send_frame(enc.buffer()));
      const auto chunk = raw->recv_frame(Duration::from_millis(2000));
      ASSERT_TRUE(chunk.has_value());
      ipc::Decoder dec(*chunk);
      EXPECT_GT(dec.u32(), 0u);
      // Transport destructor closes the socket mid-dump here.
    }

    // Second client: the server must have shaken off the dead peer and
    // still serve a complete dump plus snapshots.
    auto client = StatsClient::connect(path);
    ASSERT_NE(client, nullptr);
    const auto events = client->trace();
    ASSERT_TRUE(events.has_value());
    EXPECT_EQ(events->size(), kEvents);  // no wrap: ring capacity > kEvents
    const auto snap = client->snapshot();
    ASSERT_TRUE(snap.has_value());
    EXPECT_GT(snap->wall_ns, 0u);
  }
  disable_trace();
}

}  // namespace
}  // namespace ccp::telemetry
