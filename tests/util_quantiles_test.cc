#include <gtest/gtest.h>

#include <algorithm>

#include "util/quantiles.hpp"
#include "util/rng.hpp"

namespace ccp {
namespace {

TEST(SampleSet, EmptyIsSafe) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleSet, ExactQuantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, StddevOfConstant) {
  SampleSet s;
  for (int i = 0; i < 10; ++i) s.add(7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleSet, CdfIsMonotone) {
  SampleSet s;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) s.add(rng.uniform(0, 100));
  auto cdf = s.cdf(50);
  ASSERT_EQ(cdf.size(), 50u);
  EXPECT_TRUE(std::is_sorted(cdf.begin(), cdf.end()));
  EXPECT_DOUBLE_EQ(cdf.back(), s.max());
}

TEST(SampleSet, InterleavedAddAndQuery) {
  SampleSet s;
  s.add(3);
  s.add(1);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  s.add(2);  // must re-sort transparently
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 2.0);
}

TEST(P2Quantile, RejectsBadQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile p(0.5);
  p.add(5);
  EXPECT_DOUBLE_EQ(p.value(), 5.0);
  p.add(1);
  p.add(9);
  EXPECT_DOUBLE_EQ(p.value(), 5.0);
}

class P2Accuracy : public ::testing::TestWithParam<double> {};

TEST_P(P2Accuracy, TracksExactQuantileOnUniform) {
  const double q = GetParam();
  P2Quantile p2(q);
  SampleSet exact;
  Rng rng(71);
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.uniform(0.0, 1000.0);
    p2.add(v);
    exact.add(v);
  }
  // P² is an approximation; 2% of the range is a comfortable bound on
  // uniform data.
  EXPECT_NEAR(p2.value(), exact.quantile(q), 20.0);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2Accuracy,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.99));

class P2Distributions : public ::testing::TestWithParam<int> {};

TEST_P(P2Distributions, MedianOnExponential) {
  Rng rng(100 + GetParam());
  P2Quantile p2(0.5);
  SampleSet exact;
  for (int i = 0; i < 30000; ++i) {
    const double v = rng.exponential(10.0);
    p2.add(v);
    exact.add(v);
  }
  EXPECT_NEAR(p2.value(), exact.quantile(0.5), exact.quantile(0.5) * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, P2Distributions, ::testing::Range(0, 5));

}  // namespace
}  // namespace ccp
