// Install-time optimizer tests: const-operand superinstruction fusion,
// compare+Select fusion, dead-code elimination, and the degenerate-block
// paths of eval_block. Semantic equivalence over random programs is
// covered end-to-end by lang_property_test (compile_text now optimizes);
// these tests pin the *shape* of the optimized code and the edge cases.
#include <gtest/gtest.h>

#include <algorithm>

#include "lang/compiler.hpp"
#include "lang/vm.hpp"

namespace ccp::lang {
namespace {

size_t count_op(const CodeBlock& b, OpCode op) {
  return static_cast<size_t>(
      std::count_if(b.code.begin(), b.code.end(),
                    [op](const Instr& i) { return i.op == op; }));
}

TEST(Optimizer, FusesConstRightOperand) {
  auto prog = compile_text(R"(
    fold { x := x + 1 init 0; }
    control { Report(); }
  )");
  const CodeBlock& f = prog.fold_block;
  // LoadFold x; AddC x, 1; StoreFold — the LoadConst is fused and swept.
  EXPECT_EQ(f.code.size(), 3u);
  EXPECT_EQ(count_op(f, OpCode::AddC), 1u);
  EXPECT_EQ(count_op(f, OpCode::Add), 0u);
  EXPECT_EQ(count_op(f, OpCode::LoadConst), 0u);
}

TEST(Optimizer, SwapsConstLeftOperandOfCommutativeOps) {
  auto prog = compile_text(R"(
    fold { x := 2 * Pkt.bytes_acked init 0; }
    control { Report(); }
  )");
  const CodeBlock& f = prog.fold_block;
  EXPECT_EQ(count_op(f, OpCode::MulC), 1u);
  EXPECT_EQ(count_op(f, OpCode::Mul), 0u);
  EXPECT_EQ(count_op(f, OpCode::LoadConst), 0u);
}

TEST(Optimizer, FlipsComparisonWithConstOnLeft) {
  auto prog = compile_text(R"(
    fold { x := if(0.5 < Pkt.rtt, 1, 2) init 0; }
    control { Report(); }
  )");
  const CodeBlock& f = prog.fold_block;
  // `0.5 < rtt` becomes `rtt > 0.5` with the const fused.
  EXPECT_EQ(count_op(f, OpCode::GtC), 1u);
  EXPECT_EQ(count_op(f, OpCode::Lt), 0u);
  EXPECT_EQ(count_op(f, OpCode::LtC), 0u);
}

TEST(Optimizer, FusesGuardIntoSelGtz) {
  auto prog = compile_text(R"(
    fold { x := if(Pkt.lost > 0, x + 1, x) init 0; }
    control { Report(); }
  )");
  const CodeBlock& f = prog.fold_block;
  EXPECT_EQ(count_op(f, OpCode::SelGtz), 1u);
  EXPECT_EQ(count_op(f, OpCode::Select), 0u);
  // The absorbed compare is dead after fusion and must be swept.
  EXPECT_EQ(count_op(f, OpCode::GtC), 0u);
  EXPECT_EQ(count_op(f, OpCode::Gt), 0u);

  // Semantics preserved: increments only when lost_pkts > 0.
  FoldMachine fm;
  fm.install(&prog, {});
  PktInfo pkt;
  fm.on_packet(pkt);
  EXPECT_DOUBLE_EQ(fm.state()[0], 0.0);
  pkt.lost_packets = 2;
  fm.on_packet(pkt);
  EXPECT_DOUBLE_EQ(fm.state()[0], 1.0);
}

TEST(Optimizer, FusesEwmaConstWeight) {
  auto prog = compile_text(R"(
    fold { srtt := ewma(srtt, Pkt.rtt, 0.125) init 0; }
    control { Report(); }
  )");
  const CodeBlock& f = prog.fold_block;
  EXPECT_EQ(count_op(f, OpCode::EwmaC), 1u);
  EXPECT_EQ(count_op(f, OpCode::Ewma), 0u);

  FoldMachine fm;
  fm.install(&prog, {});
  PktInfo pkt;
  pkt.rtt_us = 80.0;
  fm.on_packet(pkt);
  EXPECT_DOUBLE_EQ(fm.state()[0], 0.875 * 0.0 + 0.125 * 80.0);
}

TEST(Optimizer, ControlArgsAreOptimizedToo) {
  auto prog = compile_text(R"(
    fold { w := w + Pkt.bytes_acked init 1460; }
    control { Cwnd(w * 2); WaitRtts(1.0); Report(); }
  )");
  ASSERT_FALSE(prog.control_args.empty());
  const CodeBlock& arg = prog.control_args[0];
  EXPECT_EQ(count_op(arg, OpCode::MulC), 1u);
  EXPECT_EQ(count_op(arg, OpCode::Mul), 0u);
}

TEST(Optimizer, DeduplicatesRepeatedLoads) {
  // Pkt.rtt is read three times and minrtt twice; value numbering keeps
  // one load of each and rewrites the rest through it.
  auto prog = compile_text(R"(
    fold {
      srtt := ewma(srtt, Pkt.rtt, 0.125) init 0;
      minrtt := if(Pkt.rtt > 0, min(minrtt, Pkt.rtt), minrtt) init 1000000;
    }
    control { Report(); }
  )");
  const CodeBlock& f = prog.fold_block;
  EXPECT_EQ(count_op(f, OpCode::LoadPkt), 1u);
  EXPECT_EQ(count_op(f, OpCode::LoadFold), 2u);  // one per register

  FoldMachine fm;
  fm.install(&prog, {});
  PktInfo pkt;
  pkt.rtt_us = 80.0;
  fm.on_packet(pkt);
  EXPECT_DOUBLE_EQ(fm.state()[0], 0.125 * 80.0);
  EXPECT_DOUBLE_EQ(fm.state()[1], 80.0);
  pkt.rtt_us = 0.0;  // guard holds minrtt when no sample
  fm.on_packet(pkt);
  EXPECT_DOUBLE_EQ(fm.state()[1], 80.0);
}

TEST(Optimizer, ForwardsStoredRegisterToLaterLoads) {
  // `y`'s update reads `x` after x's StoreFold: the load forwards the
  // stored slot, so the block needs only the initial LoadFold of each
  // register it reads before writing.
  auto prog = compile_text(R"(
    fold {
      x := x + Pkt.bytes_acked init 0;
      y := x * 2 init 0;
    }
    control { Report(); }
  )");
  const CodeBlock& f = prog.fold_block;
  EXPECT_EQ(count_op(f, OpCode::LoadFold), 1u);  // only the pre-store x

  FoldMachine fm;
  fm.install(&prog, {});
  PktInfo pkt;
  pkt.bytes_acked = 10.0;
  fm.on_packet(pkt);
  // Sequential fold semantics: y sees the freshly stored x.
  EXPECT_DOUBLE_EQ(fm.state()[0], 10.0);
  EXPECT_DOUBLE_EQ(fm.state()[1], 20.0);
}

TEST(Optimizer, VarOperandsAreNotFused) {
  // $vars bind at install/update time, not compile time: no fusion.
  auto prog = compile_text(R"(
    fold { x := x + $step init 0; }
    control { Report(); }
  )");
  const CodeBlock& f = prog.fold_block;
  EXPECT_EQ(count_op(f, OpCode::Add), 1u);
  EXPECT_EQ(count_op(f, OpCode::AddC), 0u);
  EXPECT_EQ(count_op(f, OpCode::LoadVar), 1u);
}

TEST(Optimizer, DeadCodeSweepPreservesStores) {
  CodeBlock b;
  b.consts = {5.0};
  b.n_slots = 3;
  b.code = {
      {OpCode::LoadConst, 0, 0, 0, 0},  // dead after fusion below
      {OpCode::LoadFold, 1, 0, 0, 0},
      {OpCode::Add, 2, 1, 0, 0},  // fuses to AddC %1, 5
      {OpCode::StoreFold, 0, 0, 2, 0},
  };
  b.result_slot = 2;
  const CodeBlock opt = optimize_block(b);
  EXPECT_EQ(opt.code.size(), 3u);
  EXPECT_EQ(count_op(opt, OpCode::LoadConst), 0u);
  EXPECT_EQ(count_op(opt, OpCode::AddC), 1u);
  EXPECT_EQ(count_op(opt, OpCode::StoreFold), 1u);

  double fold[1] = {10.0};
  std::vector<double> scratch;
  const double r = eval_block(opt, fold, PktInfo{}, {}, scratch);
  EXPECT_DOUBLE_EQ(r, 15.0);
  EXPECT_DOUBLE_EQ(fold[0], 15.0);
}

TEST(Optimizer, UrgentIndicesMatchUrgentRegs) {
  auto prog = compile_text(R"(
    fold {
      a := a + 1 init 0;
      volatile loss := loss + Pkt.lost init 0 urgent;
      b := b + 1 init 0;
      volatile timeout := timeout + Pkt.was_timeout init 0 urgent;
    }
    control { Report(); }
  )");
  ASSERT_EQ(prog.urgent_indices.size(), 2u);
  EXPECT_EQ(prog.urgent_indices[0], 1u);
  EXPECT_EQ(prog.urgent_indices[1], 3u);
  for (size_t i = 0; i < prog.urgent_regs.size(); ++i) {
    const bool listed =
        std::find(prog.urgent_indices.begin(), prog.urgent_indices.end(),
                  static_cast<uint16_t>(i)) != prog.urgent_indices.end();
    EXPECT_EQ(listed, static_cast<bool>(prog.urgent_regs[i]));
  }
}

// --- eval_block degenerate paths ---

TEST(EvalBlockDegenerate, EmptyBlockYieldsZero) {
  CodeBlock b;
  std::vector<double> scratch;
  EXPECT_DOUBLE_EQ(eval_block(b, {}, PktInfo{}, {}, scratch), 0.0);
  EXPECT_TRUE(scratch.empty());  // no slots touched for empty blocks
}

TEST(EvalBlockDegenerate, NonEmptyCodeWithZeroSlotsIsRejected) {
  // Malformed by construction (every instruction touches a slot); the VM
  // must bail out instead of indexing an empty scratch file.
  CodeBlock b;
  b.code = {{OpCode::StoreFold, 0, 0, 0, 0}};
  b.n_slots = 0;
  double fold[1] = {7.0};
  std::vector<double> scratch;
  EXPECT_DOUBLE_EQ(eval_block(b, fold, PktInfo{}, {}, scratch), 0.0);
  EXPECT_DOUBLE_EQ(fold[0], 7.0);  // untouched
}

TEST(EvalBlockDegenerate, OutOfRangeResultSlotYieldsZero) {
  CodeBlock b;
  b.consts = {3.0};
  b.code = {{OpCode::LoadConst, 0, 0, 0, 0}};
  b.n_slots = 1;
  b.result_slot = 9;  // out of range
  std::vector<double> scratch;
  EXPECT_DOUBLE_EQ(eval_block(b, {}, PktInfo{}, {}, scratch), 0.0);
}

TEST(EvalBlockDegenerate, OptimizerPassesEmptyBlockThrough) {
  CodeBlock b;
  const CodeBlock opt = optimize_block(b);
  EXPECT_TRUE(opt.code.empty());
  EXPECT_EQ(opt.n_slots, 0);
}

}  // namespace
}  // namespace ccp::lang
