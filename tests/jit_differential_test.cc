// Differential fuzzing: JIT vs interpreter vs disassembler.
//
// Generates random well-typed fold programs over the full operator
// surface (arithmetic, total div/sqrt/log, pow, comparisons, boolean
// ops, select, ewma — the exp/0-division/overflow combinations
// organically produce inf and NaN mid-program) and replays random ACK
// traces through three engines per program:
//
//   1. a pure interpreter FoldMachine (JitMode::Off),
//   2. a native FoldMachine (JitMode::On),
//   3. a Verify FoldMachine (both engines per ACK, internal memcmp).
//
// After every ACK, fold state must match BIT FOR BIT between (1) and
// (2), the urgent/report trigger decisions must agree, and (3)'s global
// mismatch counter must stay untouched. Each program's disassembly must
// also be stable (same text when listed twice) and well-formed.
//
// The fixed seed corpus gives 4 seeds x 125 programs x 20 traces =
// 10,000 program x trace cases (ISSUE 5 acceptance floor), each trace
// 24 ACKs. On builds without a JIT (non-x86-64 or -DCCP_ENABLE_JIT=OFF)
// the same corpus still runs interpreter-vs-interpreter, keeping the
// suite green and the corpus honest.
//
// A second corpus (BatchDifferential below) extends the differential to
// the cross-flow batch engines: scalar batch interpreter and packed-SIMD
// batch kernel vs independent per-lane scalar machines, across batch
// sizes 1/2/odd/full-wave.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <string>
#include <vector>

#include "lang/builder.hpp"
#include "lang/compiler.hpp"
#include "lang/disasm.hpp"
#include "lang/error.hpp"
#include "lang/jit/jit.hpp"
#include "lang/vm.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace ccp::lang {
namespace {

namespace jit = ccp::lang::jit;

constexpr int kProgramsPerSeed = 125;
constexpr int kTracesPerProgram = 20;
constexpr int kAcksPerTrace = 24;

struct JitGuard {
  jit::JitMode saved = jit::mode();
  ~JitGuard() { jit::set_mode(saved); }
};

uint64_t bits(double v) { return std::bit_cast<uint64_t>(v); }

/// Random expression over `n_regs` fold registers, two vars, and the
/// whole packet-field and operator surface. Extreme constants are drawn
/// deliberately so intermediate inf/NaN values are common.
/// `pure` remaps the four libm-helper draws (pow, cbrt, log, exp) onto
/// packed-lowerable ops, yielding SIMD-eligible programs (same rng
/// consumption either way, so seeds stay deterministic).
Expr random_expr(ccp::Rng& rng, int depth, int n_regs, bool pure = false) {
  if (depth <= 0 || rng.chance(0.3)) {
    switch (rng.next_below(5)) {
      case 0: {
        const double extremes[] = {0.0,  -0.0,   1.0,   -1.0, 0.125,
                                   1e18, -1e18,  1e308, 1e-9, 745.0};
        return rng.chance(0.3) ? Expr::c(extremes[rng.next_below(10)])
                               : Expr::c(rng.uniform(-1000, 1000));
      }
      case 1: return f("r" + std::to_string(rng.next_below(n_regs)));
      case 2: return rng.chance(0.5) ? v("x") : v("y");
      default:
        return pkt(static_cast<PktField>(rng.next_below(kNumPktFields)));
    }
  }
  const auto sub = [&] { return random_expr(rng, depth - 1, n_regs, pure); };
  switch (rng.next_below(20)) {
    case 0: return sub() + sub();
    case 1: return sub() - sub();
    case 2: return sub() * sub();
    case 3: return sub() / sub();
    case 4: return min(sub(), sub());
    case 5: return max(sub(), sub());
    case 6: return pure ? max(sub(), sub()) : pow(sub(), sub());
    case 7: return -sub();
    case 8: return abs(sub());
    case 9: return sqrt(sub());
    case 10: return pure ? abs(sub()) : cbrt(sub());
    case 11: return pure ? -sub() : log(sub());
    case 12:
      // exp overflows to inf readily: NaN feedstock for the impure corpus.
      return pure ? sqrt(sub()) : exp(sub());
    case 13: return sub() < sub();
    case 14: return sub() <= sub();
    case 15: return sub() > sub();
    case 16: return sub() >= sub();
    case 17: return rng.chance(0.5) ? (sub() == sub()) : (sub() != sub());
    case 18: return rng.chance(0.5) ? (sub() && sub()) : (sub() || sub());
    default:
      return rng.chance(0.5)
                 ? if_(sub(), sub(), sub())
                 : ewma(sub(), sub(), rng.chance(0.5) ? Expr::c(0.125) : sub());
  }
}

Program random_program(ccp::Rng& rng, bool pure = false) {
  const int n_regs = 1 + static_cast<int>(rng.next_below(5));
  ProgramBuilder b;
  for (int i = 0; i < n_regs; ++i) {
    b.def("r" + std::to_string(i),
          rng.chance(0.2) ? random_expr(rng, 1, n_regs, pure)
                          : Expr::c(rng.uniform(-10, 10)),
          random_expr(rng, 3, n_regs, pure),
          ProgramBuilder::DefOpts{rng.chance(0.4), rng.chance(0.25)});
  }
  switch (rng.next_below(3)) {
    case 0: b.cwnd(random_expr(rng, 2, n_regs)); break;
    case 1: b.rate(random_expr(rng, 2, n_regs)); break;
    default: b.wait_rtts(Expr::c(rng.uniform(0.25, 4.0))); break;
  }
  b.report();
  return b.build();
}

/// Draws programs until sema accepts one. The generator can emit the two
/// constructs sema rejects outright — division by a literal zero and a
/// constant ewma gain outside (0, 1] — so rejected draws are simply
/// redrawn; the seeds stay deterministic either way.
CompiledProgram compile_valid(ccp::Rng& rng, bool pure = false) {
  for (;;) {
    try {
      return compile(random_program(rng, pure));
    } catch (const ProgramError&) {
    }
  }
}

PktInfo random_pkt(ccp::Rng& rng) {
  PktInfo p;
  p.rtt_us = rng.chance(0.1) ? 0.0 : rng.uniform(1, 2e5);
  p.bytes_acked = rng.chance(0.1) ? 0.0 : rng.uniform(0, 1e6);
  p.packets_acked = rng.uniform(0, 64);
  p.lost_packets = rng.chance(0.15) ? rng.uniform(1, 8) : 0.0;
  p.ecn = rng.chance(0.05) ? 1.0 : 0.0;
  p.was_timeout = rng.chance(0.02) ? 1.0 : 0.0;
  p.snd_rate_bps = rng.uniform(0, 1e10);
  p.rcv_rate_bps = rng.uniform(0, 1e10);
  p.bytes_in_flight = rng.uniform(0, 1e7);
  p.packets_in_flight = rng.uniform(0, 1e4);
  p.bytes_pending = rng.uniform(0, 1e8);
  p.now_us = rng.uniform(0, 1e12);
  p.mss = rng.chance(0.9) ? 1448.0 : rng.uniform(100, 9000);
  p.cwnd = rng.uniform(1448, 1e7);
  p.rate_bps = rng.uniform(0, 1e10);
  // Occasionally feed the fold truly hostile magnitudes.
  if (rng.chance(0.03)) p.rtt_us = 1e308;
  if (rng.chance(0.03)) p.rcv_rate_bps = 1e308;
  return p;
}

class JitDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JitDifferential, RandomProgramsAndTracesBitIdentical) {
  JitGuard guard;
  ccp::Rng rng(GetParam());
  const uint64_t mismatches_before =
      telemetry::metrics().jit_verify_mismatches.value();
  int jitted_programs = 0;

  for (int pi = 0; pi < kProgramsPerSeed; ++pi) {
    const CompiledProgram prog = compile_valid(rng);

    // Disassembler round-trip: listing a program is deterministic and
    // covers every block the engines are about to execute.
    const std::string listing = disassemble(prog);
    ASSERT_FALSE(listing.empty());
    ASSERT_EQ(listing, disassemble(prog)) << "program " << pi;

    std::vector<double> vars(prog.num_vars());

    for (int ti = 0; ti < kTracesPerProgram; ++ti) {
      for (auto& value : vars) value = rng.uniform(-100, 100);

      FoldMachine interp, native, checked;
      jit::set_mode(jit::JitMode::Off);
      interp.install(&prog, vars);
      jit::set_mode(jit::JitMode::On);
      native.install(&prog, vars);
      jit::set_mode(jit::JitMode::Verify);
      checked.install(&prog, vars);

      if (ti == 0 && native.jit_active()) ++jitted_programs;

      for (int ack = 0; ack < kAcksPerTrace; ++ack) {
        const PktInfo pkt = random_pkt(rng);
        const bool urgent_interp = interp.on_packet(pkt);
        const bool urgent_native = native.on_packet(pkt);
        const bool urgent_checked = checked.on_packet(pkt);
        ASSERT_EQ(urgent_interp, urgent_native)
            << "urgent trigger diverged: program " << pi << " trace " << ti
            << " ack " << ack;
        ASSERT_EQ(urgent_interp, urgent_checked);
        ASSERT_EQ(interp.state().size(), native.state().size());
        for (size_t r = 0; r < interp.state().size(); ++r) {
          ASSERT_EQ(bits(interp.state()[r]), bits(native.state()[r]))
              << "fold[" << r << "] (" << prog.fold_names[r]
              << ") diverged: program " << pi << " trace " << ti << " ack "
              << ack << " interp=" << interp.state()[r]
              << " jit=" << native.state()[r] << "\n"
              << listing;
          ASSERT_EQ(bits(interp.state()[r]), bits(checked.state()[r]));
        }
      }

      // Report-path state transitions must agree too.
      interp.reset_volatile();
      native.reset_volatile();
      checked.reset_volatile();
      for (size_t r = 0; r < interp.state().size(); ++r) {
        ASSERT_EQ(bits(interp.state()[r]), bits(native.state()[r]));
      }
    }
  }

  EXPECT_EQ(telemetry::metrics().jit_verify_mismatches.value(),
            mismatches_before)
      << "Verify-mode engines diverged somewhere in the corpus";
  if (jit::available()) {
    EXPECT_EQ(jitted_programs, kProgramsPerSeed)
        << "every generated program should lower to native code";
  } else {
    EXPECT_EQ(jitted_programs, 0);
  }
}

// 4 fixed seeds x 125 programs x 20 traces = 10,000 differential cases.
INSTANTIATE_TEST_SUITE_P(SeedCorpus, JitDifferential,
                         ::testing::Values(0x5eed0001u, 0x5eed0002u,
                                           0x5eed0003u, 0x5eed0004u));

// ---------------------------------------------------------------------------
// Cross-flow batch engines: eval_block_batch (scalar batch loop) and the
// packed-SIMD batch kernel vs per-lane scalar FoldMachines.
//
// Every lane of a batch must evolve BIT FOR BIT like a lone flow folding
// the same trace: for each program, N independent scalar interpreter
// machines are the reference, and the two batch engines run the same
// lanes through struct-of-arrays register files. Batch sizes cover the
// degenerate single lane, the exact SIMD pair, odd counts (ghost-lane
// padding), and a full kBatchLanes wave. Half the corpus is drawn from
// the pure-arithmetic generator so the SIMD kernel is exercised
// deliberately, the other half keeps libm helpers in to pin the
// kernel-declined (scalar-lane) classification. Mixed-program batches —
// the group-split logic — live one layer up in AckBatchTest, which
// drives the real runner.
// ---------------------------------------------------------------------------

constexpr size_t kBatchSizes[] = {1, 2, 3, 5, 8, kBatchLanes};
constexpr int kBatchProgramsPerSeed = 24;
constexpr int kBatchAcksPerTrace = 12;

class BatchDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchDifferential, BatchEnginesMatchScalarLanes) {
  JitGuard guard;
  ccp::Rng rng(GetParam() ^ 0xba7c8000u);
  int kernels = 0;

  for (int pi = 0; pi < kBatchProgramsPerSeed; ++pi) {
    const bool pure = (pi % 2) == 0;
    const CompiledProgram prog = compile_valid(rng, pure);
    const CodeBlock& block = prog.fold_block;
    const size_t nf = prog.num_folds();
    const size_t nv = prog.num_vars();

    auto handle = jit::get_or_compile(prog);
    jit::BatchFoldFn kernel =
        handle != nullptr ? jit::batch_entry(*handle) : nullptr;
    if (pure && jit::simd_available() && handle != nullptr) {
      ASSERT_NE(kernel, nullptr)
          << "pure-arithmetic program " << pi << " should batch-compile";
    }
    if (kernel != nullptr) ++kernels;

    for (const size_t n : kBatchSizes) {
      // Ghost lane: odd counts are padded by duplicating the last live
      // lane, so the kernel's pair loop always has two real columns.
      const bool ghost = (kernel != nullptr) && (n % 2 != 0);
      const size_t g = n;  // ghost column index when `ghost`

      std::vector<double> lane_vars(nv);
      std::vector<FoldMachine> ref(n);
      std::vector<double> vars_soa(std::max<size_t>(nv, 1) * kBatchLanes, 0.0);
      std::vector<double> fold_interp(nf * kBatchLanes, 0.0);
      std::vector<double> fold_simd(nf * kBatchLanes, 0.0);
      std::vector<double> pkt_soa(kNumPktFields * kBatchLanes, 0.0);
      std::vector<double> scratch(std::max<uint16_t>(block.n_slots, 1) *
                                  kBatchLanes);
      std::vector<double> scratch_simd(scratch.size());

      jit::set_mode(jit::JitMode::Off);
      for (size_t l = 0; l < n; ++l) {
        for (auto& value : lane_vars) value = rng.uniform(-100, 100);
        ref[l].install(&prog, lane_vars);
        for (size_t r = 0; r < nf; ++r) {
          fold_interp[r * kBatchLanes + l] = ref[l].state()[r];
          fold_simd[r * kBatchLanes + l] = ref[l].state()[r];
        }
        for (size_t i = 0; i < nv; ++i) {
          vars_soa[i * kBatchLanes + l] = lane_vars[i];
        }
      }
      if (ghost) {
        // Lockstep ghost: same fold/vars/pkt as the last live lane every
        // ACK, so its column evolves identically and needs no re-copy.
        for (size_t r = 0; r < nf; ++r) {
          fold_simd[r * kBatchLanes + g] = fold_simd[r * kBatchLanes + (n - 1)];
        }
        for (size_t i = 0; i < nv; ++i) {
          vars_soa[i * kBatchLanes + g] = vars_soa[i * kBatchLanes + (n - 1)];
        }
      }

      for (int ack = 0; ack < kBatchAcksPerTrace; ++ack) {
        for (size_t l = 0; l < n; ++l) {
          const PktInfo p = random_pkt(rng);
          const double* cols = jit::pkt_ptr(p);
          for (size_t f = 0; f < kNumPktFields; ++f) {
            pkt_soa[f * kBatchLanes + l] = cols[f];
          }
          ref[l].on_packet(p);
        }
        if (ghost) {
          for (size_t f = 0; f < kNumPktFields; ++f) {
            pkt_soa[f * kBatchLanes + g] = pkt_soa[f * kBatchLanes + (n - 1)];
          }
        }

        eval_block_batch(block, fold_interp.data(), pkt_soa.data(),
                         vars_soa.data(), scratch.data(), n);
        if (kernel != nullptr) {
          kernel(fold_simd.data(), pkt_soa.data(), vars_soa.data(),
                 scratch_simd.data(), (n + 1) / 2);
        }

        for (size_t l = 0; l < n; ++l) {
          for (size_t r = 0; r < nf; ++r) {
            ASSERT_EQ(bits(ref[l].state()[r]),
                      bits(fold_interp[r * kBatchLanes + l]))
                << "batch interpreter fold[" << r << "] ("
                << prog.fold_names[r] << ") diverged: program " << pi
                << " n=" << n << " lane " << l << " ack " << ack << "\n"
                << disassemble(prog);
            if (kernel != nullptr) {
              ASSERT_EQ(bits(ref[l].state()[r]),
                        bits(fold_simd[r * kBatchLanes + l]))
                  << "SIMD kernel fold[" << r << "] (" << prog.fold_names[r]
                  << ") diverged: program " << pi << " n=" << n << " lane "
                  << l << " ack " << ack << "\n"
                  << disassemble(prog);
            }
          }
        }
      }
    }
  }

  if (jit::simd_available()) {
    EXPECT_GE(kernels, kBatchProgramsPerSeed / 2)
        << "the pure half of the corpus should all carry batch kernels";
  } else {
    EXPECT_EQ(kernels, 0);
  }
}

// 4 seeds x 24 programs x 6 batch sizes x 12 ACKs, every lane compared.
INSTANTIATE_TEST_SUITE_P(SeedCorpus, BatchDifferential,
                         ::testing::Values(0x5eed0001u, 0x5eed0002u,
                                           0x5eed0003u, 0x5eed0004u));

}  // namespace
}  // namespace ccp::lang
