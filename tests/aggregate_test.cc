// Tests for the Congestion-Manager-style aggregate controller (§5).
#include <gtest/gtest.h>

#include "agent/aggregate.hpp"
#include "algorithms/native/native_reno.hpp"
#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"

namespace ccp {
namespace {

using namespace sim;

TimePoint at_s(double s) { return TimePoint::epoch() + Duration::from_secs_f(s); }

struct GroupRun {
  double group_tput_mbps = 0;       // combined, over group members
  double outsider_tput_mbps = 0;    // the competing standalone flow
  std::vector<double> member_tputs;
  uint64_t loss_episodes = 0;
};

/// `n_group` member flows (in one aggregate) vs one standalone reno flow
/// on a shared bottleneck.
GroupRun run_group(int n_group, std::vector<double> weights = {},
                   double secs = 25.0) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
  Dumbbell net(q, cfg);
  SimCcpHost host(q, CcpHostConfig{});

  agent::AggregateGroup group;
  if (weights.empty()) weights.assign(n_group, 1.0);
  for (int i = 0; i < n_group; ++i) {
    host.agent().register_algorithm("agg" + std::to_string(i),
                                    group.member_factory(weights[i]));
  }

  const TimePoint end = at_s(secs);
  host.start(end);

  std::vector<TcpSender*> members;
  for (int i = 0; i < n_group; ++i) {
    auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460},
                                  "agg" + std::to_string(i));
    members.push_back(&net.add_flow(TcpSenderConfig{}, &flow, TimePoint::epoch()));
  }
  algorithms::native::NativeReno outsider(1460, 10 * 1460);
  auto& out_snd = net.add_flow(TcpSenderConfig{}, &outsider, TimePoint::epoch());

  q.run_until(end);

  GroupRun result;
  for (auto* snd : members) {
    const double t = snd->delivered_bytes() * 8.0 / secs / 1e6;
    result.member_tputs.push_back(t);
    result.group_tput_mbps += t;
  }
  result.outsider_tput_mbps = out_snd.delivered_bytes() * 8.0 / secs / 1e6;
  result.loss_episodes = group.loss_episodes();
  return result;
}

TEST(Aggregate, GroupCompetesAsOneFlow) {
  // Three flows in one aggregate vs one standalone flow: the aggregate
  // should take ~one flow's share (CM ensemble sharing), not three.
  const GroupRun r = run_group(3);
  EXPECT_GT(r.group_tput_mbps + r.outsider_tput_mbps, 40.0);  // link used
  const double ratio = r.group_tput_mbps / r.outsider_tput_mbps;
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.2);  // far from the 3.0 of independent flows
}

TEST(Aggregate, MembersShareEqually) {
  const GroupRun r = run_group(3);
  ASSERT_EQ(r.member_tputs.size(), 3u);
  const double mean = r.group_tput_mbps / 3.0;
  for (double t : r.member_tputs) {
    EXPECT_NEAR(t, mean, mean * 0.3);
  }
}

TEST(Aggregate, WeightsSkewTheSplit) {
  const GroupRun r = run_group(2, {3.0, 1.0});
  ASSERT_EQ(r.member_tputs.size(), 2u);
  // Member 0 has 3x the weight: expect roughly 3x the goodput.
  const double ratio = r.member_tputs[0] / std::max(0.001, r.member_tputs[1]);
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 4.5);
}

TEST(Aggregate, SingleMemberBehavesLikeNormalFlow) {
  const GroupRun r = run_group(1);
  const double ratio = r.group_tput_mbps / r.outsider_tput_mbps;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(Aggregate, ReactsToLoss) {
  const GroupRun r = run_group(2);
  // A shared 50 Mbit bottleneck against reno guarantees loss episodes.
  EXPECT_GT(r.loss_episodes, 0u);
}

TEST(Aggregate, MemberChurnIsSafe) {
  agent::AggregateGroup group;
  auto factory = group.member_factory();
  agent::FlowInfo info;
  info.id = 1;
  info.mss = 1460;
  // Members can be created and destroyed without flows ever attaching.
  {
    auto a = factory(info);
    auto b = factory(info);
    EXPECT_EQ(group.num_members(), 0u);  // join happens at init()
  }
  EXPECT_EQ(group.num_members(), 0u);
}

}  // namespace
}  // namespace ccp
