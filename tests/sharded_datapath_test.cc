// Sharded datapath: flow-to-shard routing, epoch-based command
// publication, per-shard lanes, and concurrent install-while-processing.
//
// The concurrency tests here are the TSan targets for the multi-core
// datapath (CI runs them under -fsanitize=thread with 4 worker threads):
// shard workers fold ACKs lock-free while the control plane publishes
// compiled programs through the SPSC command queues.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "datapath/shard.hpp"
#include "datapath/sharded_datapath.hpp"
#include "ipc/lanes.hpp"
#include "ipc/message.hpp"
#include "ipc/wire.hpp"
#include "lang/jit/jit.hpp"
#include "telemetry/telemetry.hpp"
#include "util/flat_map.hpp"
#include "util/time.hpp"

namespace ccp::datapath {
namespace {

AckEvent make_ack(TimePoint now, uint64_t i) {
  AckEvent ev;
  ev.now = now;
  ev.bytes_acked = 1500;
  ev.packets_acked = 1;
  ev.bytes_in_flight = 64 * 1500;
  ev.packets_in_flight = 64;
  ev.rtt_sample = Duration::from_millis(10) +
                  Duration::from_nanos(static_cast<int64_t>(i % 1024) * 1000);
  return ev;
}

// --- command queue ---

TEST(CommandQueue, PublishesInOrderAndTracksEpochs) {
  CommandQueue q(4);
  EXPECT_FALSE(q.has_pending());
  for (uint32_t i = 0; i < 3; ++i) {
    ShardCommand cmd;
    cmd.kind = ShardCommand::Kind::DirectControl;
    cmd.flow_id = i;
    ASSERT_TRUE(q.push(std::move(cmd)));
  }
  EXPECT_EQ(q.publish_epoch(), 3u);
  EXPECT_EQ(q.applied_epoch(), 0u);
  EXPECT_TRUE(q.has_pending());

  std::vector<ipc::FlowId> seen;
  EXPECT_EQ(q.drain([&](ShardCommand& c) { seen.push_back(c.flow_id); }), 3u);
  EXPECT_EQ(seen, (std::vector<ipc::FlowId>{0, 1, 2}));
  EXPECT_EQ(q.applied_epoch(), 3u);
  EXPECT_FALSE(q.has_pending());
}

TEST(CommandQueue, RejectsWhenConsumerIsACapacityBehind) {
  CommandQueue q(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.push(ShardCommand{}));
  }
  EXPECT_FALSE(q.push(ShardCommand{}));  // full: consumer never drained
  q.drain([](ShardCommand&) {});
  EXPECT_TRUE(q.push(ShardCommand{}));  // space again after the drain
}

TEST(CommandQueue, OverflowIsCountedAndRetrySucceedsAfterDrain) {
  // Same overflow at the ShardedDatapath level: the control plane counts
  // the drop, the command is lost (not silently applied), and a retry
  // after the shard drains goes through — the agent-visible contract for
  // a slow shard (docs/RESILIENCE.md "forced ring-full").
  ipc::LaneSet lanes = ipc::make_inproc_lanes(1);
  std::vector<ShardedDatapath::FrameTx> txs;
  txs.push_back(ipc::make_lane_tx(*lanes.dp[0], 0));
  ShardedDatapath dp(DatapathConfig{}, std::move(txs),
                     /*command_queue_capacity=*/4);

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  const ipc::FlowId id = dp.alloc_flow_id(0);
  CcpFlow& fl = dp.shard(0).create_flow(id, FlowConfig{}, "test", now);

  ipc::DirectControlMsg dc;
  dc.flow_id = id;
  for (int i = 0; i < 6; ++i) {
    dc.cwnd_bytes = 50'000.0 + i;  // never applied before the drain
    dp.handle_frame(ipc::encode_frame(ipc::Message(dc)));
  }
  EXPECT_EQ(dp.control_stats().commands_routed, 4u);  // queue capacity
  EXPECT_EQ(dp.control_stats().commands_dropped, 2u);
  dp.shard(0).poll(now);  // consumer catches up

  // The retried command now fits and applies at the next poll.
  dc.cwnd_bytes = 6000.0;
  dp.handle_frame(ipc::encode_frame(ipc::Message(dc)));
  EXPECT_EQ(dp.control_stats().commands_routed, 5u);
  dp.shard(0).poll(now);
  EXPECT_EQ(fl.cwnd_bytes(), 6000u);
}

TEST(ShardedDatapath, ResyncFansOutAndRepliesPerShardLane) {
  constexpr uint32_t kShards = 2;
  ipc::LaneSet lanes = ipc::make_inproc_lanes(kShards);
  std::vector<ShardedDatapath::FrameTx> txs;
  for (size_t i = 0; i < lanes.size(); ++i) {
    txs.push_back(ipc::make_lane_tx(*lanes.dp[i], i));
  }
  ShardedDatapath dp(DatapathConfig{}, std::move(txs));

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<std::vector<ipc::FlowId>> ids(kShards);
  for (uint32_t s = 0; s < kShards; ++s) {
    for (int k = 0; k < 3; ++k) {
      const ipc::FlowId id = dp.alloc_flow_id(s);
      dp.shard(s).create_flow(id, FlowConfig{}, "test", now);
      ids[s].push_back(id);
    }
  }
  ipc::drain_lanes(lanes.agent, [](size_t, std::span<const uint8_t>) {});

  ipc::ResyncRequestMsg req;
  req.token = 42;
  dp.handle_frame(ipc::encode_frame(ipc::Message(req)));
  EXPECT_EQ(dp.control_stats().resyncs, 1u);
  for (uint32_t s = 0; s < kShards; ++s) dp.shard(s).poll(now);

  // Each shard replays exactly its own flows, echoing the token, on its
  // own lane.
  std::vector<std::vector<ipc::FlowId>> replayed(kShards);
  ipc::drain_lanes(lanes.agent, [&](size_t lane, std::span<const uint8_t> f) {
    for (const ipc::Message& msg : ipc::decode_frame(f)) {
      const auto* sum = std::get_if<ipc::FlowSummaryMsg>(&msg);
      if (sum == nullptr) continue;
      EXPECT_EQ(sum->token, 42u);
      replayed[lane].push_back(sum->flow_id);
    }
  });
  for (uint32_t s = 0; s < kShards; ++s) {
    ASSERT_EQ(replayed[s].size(), ids[s].size()) << "shard " << s;
    for (const ipc::FlowId id : replayed[s]) {
      EXPECT_EQ(dp.shard_of_flow(id), s);
    }
  }
}

// --- routing / flow table integrity ---

TEST(ShardRouting, MillionCollisionHeavyIdsNoCrossShardAliasing) {
  // One million flow ids that all share their low 12 bits — the worst
  // case for a routing function that just masks low bits, and exactly
  // what a stack handing out arena-allocated flow keys produces. Every
  // id must land on exactly one shard, be retrievable there, and be
  // absent everywhere else; churn (bulk erase + reinsert while looking
  // up) must not corrupt any shard's table.
  constexpr uint32_t kShards = 8;
  constexpr size_t kFlowCount = 1'000'000;
  // 11-bit shift: 1.1M ids (base set + churn wave) stay inside the
  // 32-bit FlowId space with no wraparound collisions.
  const auto make_id = [](size_t i) {
    return static_cast<ipc::FlowId>((i << 11) | 0x5BC);
  };
  const auto token = [](ipc::FlowId id) {
    return (static_cast<uint64_t>(id) << 17) ^ 0x5bd1e995u;
  };

  std::array<util::FlatMap<ipc::FlowId, uint64_t>, kShards> tables;
  for (size_t i = 0; i < kFlowCount; ++i) {
    const ipc::FlowId id = make_id(i);
    tables[shard_of(id, kShards)].insert_or_assign(id, token(id));
  }

  size_t total = 0;
  for (uint32_t s = 0; s < kShards; ++s) total += tables[s].size();
  ASSERT_EQ(total, kFlowCount) << "ids aliased across shards";

  // Routing balance: the splitmix-style hash should spread a maximally
  // collision-heavy id set to within a few percent of uniform.
  const size_t expect = kFlowCount / kShards;
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_GT(tables[s].size(), expect * 95 / 100) << "shard " << s;
    EXPECT_LT(tables[s].size(), expect * 105 / 100) << "shard " << s;
  }

  for (size_t i = 0; i < kFlowCount; ++i) {
    const ipc::FlowId id = make_id(i);
    const uint32_t s = shard_of(id, kShards);
    auto* found = tables[s].find(id);
    ASSERT_NE(found, nullptr) << "id " << id << " missing from its shard";
    ASSERT_EQ(*found, token(id)) << "id " << id << " value corrupted";
    // Absent from the neighboring shard's table (spot-check, not all 7).
    EXPECT_EQ(tables[(s + 1) % kShards].find(id), nullptr);
  }

  // Churn: remove every third id, look the survivors up as we go, then
  // add a fresh wave and re-verify end state.
  for (size_t i = 0; i < kFlowCount; ++i) {
    const ipc::FlowId id = make_id(i);
    const uint32_t s = shard_of(id, kShards);
    if (i % 3 == 0) {
      ASSERT_EQ(tables[s].erase(id), 1u);
    } else if (i % 7 == 1) {
      ASSERT_NE(tables[s].find(id), nullptr);
    }
  }
  for (size_t i = kFlowCount; i < kFlowCount + 100'000; ++i) {
    const ipc::FlowId id = make_id(i);
    tables[shard_of(id, kShards)].insert_or_assign(id, token(id));
  }
  for (size_t i = 0; i < kFlowCount + 100'000; ++i) {
    const ipc::FlowId id = make_id(i);
    auto* found = tables[shard_of(id, kShards)].find(id);
    const bool erased = i < kFlowCount && i % 3 == 0;
    if (erased) {
      ASSERT_EQ(found, nullptr) << "erased id " << id << " resurrected";
    } else {
      ASSERT_NE(found, nullptr);
      ASSERT_EQ(*found, token(id));
    }
  }
}

TEST(ShardRouting, AllocFlowIdRoutesToRequestedShard) {
  ipc::LaneSet lanes = ipc::make_inproc_lanes(4);
  std::vector<ShardedDatapath::FrameTx> txs;
  for (size_t i = 0; i < lanes.size(); ++i) {
    txs.push_back(ipc::make_lane_tx(*lanes.dp[i], i));
  }
  ShardedDatapath dp(DatapathConfig{}, std::move(txs));
  for (uint32_t s = 0; s < dp.num_shards(); ++s) {
    for (int k = 0; k < 100; ++k) {
      EXPECT_EQ(dp.shard_of_flow(dp.alloc_flow_id(s)), s);
    }
  }
}

// --- per-shard lanes ---

TEST(ShardedDatapath, ReportsLeaveOnTheOwningShardsLane) {
  constexpr uint32_t kShards = 4;
  ipc::LaneSet lanes = ipc::make_inproc_lanes(kShards);
  std::vector<ShardedDatapath::FrameTx> txs;
  for (size_t i = 0; i < lanes.size(); ++i) {
    txs.push_back(ipc::make_lane_tx(*lanes.dp[i], i));
  }
  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  ShardedDatapath dp(dcfg, std::move(txs));

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<std::vector<ipc::FlowId>> ids(kShards);
  for (uint32_t s = 0; s < kShards; ++s) {
    for (int k = 0; k < 4; ++k) {
      const ipc::FlowId id = dp.alloc_flow_id(s);
      dp.shard(s).create_flow(id, FlowConfig{}, "test", now);
      ids[s].push_back(id);
    }
  }
  for (uint64_t i = 0; i < 200'000; ++i) {
    now += Duration::from_micros(1);
    const uint32_t s = static_cast<uint32_t>(i % kShards);
    auto* fl = dp.shard(s).flow(ids[s][(i / kShards) % ids[s].size()]);
    fl->on_send(SendEvent{now, 1500});
    fl->on_ack(make_ack(now, i));
    if ((i & 255) == 255) dp.shard(s).poll(now);
  }
  for (uint32_t s = 0; s < kShards; ++s) dp.shard(s).flush();

  // Every frame on lane s must only carry messages for shard s's flows.
  size_t measurements = 0;
  const size_t drained = ipc::drain_lanes(
      lanes.agent, [&](size_t lane, std::span<const uint8_t> frame) {
        for (const ipc::Message& msg : ipc::decode_frame(frame)) {
          const auto* m = std::get_if<ipc::MeasurementMsg>(&msg);
          if (m == nullptr) continue;
          ++measurements;
          EXPECT_EQ(dp.shard_of_flow(m->flow_id), lane)
              << "flow " << m->flow_id << " reported on lane " << lane;
        }
      });
  EXPECT_GT(drained, 0u);
  EXPECT_GT(measurements, 0u);
}

// --- epoch install protocol ---

constexpr const char* kOneRegProgram = R"(
fold { r := r + Pkt.bytes_acked init 0; }
control { WaitRtts(1.0); Report(); }
)";

constexpr const char* kTwoRegProgram = R"(
fold {
  a := a + Pkt.bytes_acked init 0;
  b := ewma(b, Pkt.rtt, 0.125) init $b0;
}
control { WaitRtts(1.0); Report(); }
)";

ipc::InstallMsg make_install(ipc::FlowId id, const char* text) {
  ipc::InstallMsg msg;
  msg.flow_id = id;
  msg.program_text = text;
  if (text == kTwoRegProgram) {
    msg.var_names = {"b0"};
    msg.var_values = {42.0};
  }
  return msg;
}

TEST(ShardedDatapath, InstallAppliesOnlyAtTheQuiescentPoint) {
  ipc::LaneSet lanes = ipc::make_inproc_lanes(2);
  std::vector<ShardedDatapath::FrameTx> txs;
  for (size_t i = 0; i < lanes.size(); ++i) {
    txs.push_back(ipc::make_lane_tx(*lanes.dp[i], i));
  }
  ShardedDatapath dp(DatapathConfig{}, std::move(txs));

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  const ipc::FlowId id = dp.alloc_flow_id(0);
  CcpFlow& fl = dp.shard(0).create_flow(id, FlowConfig{}, "test", now);
  const size_t default_regs = fl.fold().state().size();

  dp.handle_frame(ipc::encode_frame(ipc::Message(make_install(id, kOneRegProgram))));
  EXPECT_EQ(dp.control_stats().commands_routed, 1u);
  EXPECT_EQ(dp.shard(0).commands().publish_epoch(), 1u);
  EXPECT_EQ(dp.shard(0).commands().applied_epoch(), 0u);

  // ACKs processed before the next quiescent point still run the old
  // program — publication is epoch-based, not immediate.
  for (uint64_t i = 0; i < 100; ++i) {
    now += Duration::from_micros(1);
    fl.on_ack(make_ack(now, i));
  }
  EXPECT_EQ(fl.fold().state().size(), default_regs);

  dp.shard(0).poll(now);  // the quiescent point
  EXPECT_EQ(dp.shard(0).commands().applied_epoch(), 1u);
  EXPECT_EQ(fl.fold().state().size(), 1u);
  EXPECT_EQ(dp.shard(0).commands_applied(), 1u);
}

TEST(ShardedDatapath, MalformedProgramIsRejectedAtTheControlPlane) {
  ipc::LaneSet lanes = ipc::make_inproc_lanes(2);
  std::vector<ShardedDatapath::FrameTx> txs;
  for (size_t i = 0; i < lanes.size(); ++i) {
    txs.push_back(ipc::make_lane_tx(*lanes.dp[i], i));
  }
  ShardedDatapath dp(DatapathConfig{}, std::move(txs));
  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  const ipc::FlowId id = dp.alloc_flow_id(0);
  dp.shard(0).create_flow(id, FlowConfig{}, "test", now);

  ipc::InstallMsg bad;
  bad.flow_id = id;
  bad.program_text = "fold { this is not a program }";
  dp.handle_frame(ipc::encode_frame(ipc::Message(bad)));
  EXPECT_EQ(dp.control_stats().install_errors, 1u);
  EXPECT_EQ(dp.control_stats().commands_routed, 0u);
  EXPECT_EQ(dp.shard(0).commands().publish_epoch(), 0u);
}

// --- concurrency (TSan targets) ---

struct WorkerState {
  std::vector<ipc::FlowId> ids;
  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  uint64_t acks = 0;
  // Progress is polled by the main thread while the worker runs.
  std::atomic<uint64_t> iterations{0};
};

TEST(ShardedDatapath, ConcurrentInstallWhileProcessingAcrossFourShards) {
  constexpr uint32_t kShards = 4;
  constexpr int kFlowsPerShard = 4;
  constexpr uint64_t kAckBatch = 256;

  ipc::LaneSet lanes = ipc::make_inproc_lanes(kShards);
  std::vector<ShardedDatapath::FrameTx> txs;
  for (size_t i = 0; i < lanes.size(); ++i) {
    txs.push_back(ipc::make_lane_tx(*lanes.dp[i], i));
  }
  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  ShardedDatapath dp(dcfg, std::move(txs));

  // Flow setup happens before any worker exists; ownership then passes
  // to the worker threads (one per shard).
  std::array<WorkerState, kShards> state;
  for (uint32_t s = 0; s < kShards; ++s) {
    for (int k = 0; k < kFlowsPerShard; ++k) {
      const ipc::FlowId id = dp.alloc_flow_id(s);
      dp.shard(s).create_flow(id, FlowConfig{}, "test", state[s].now);
      state[s].ids.push_back(id);
    }
  }

  dp.start_workers([&state](Shard& shard) {
    WorkerState& st = state[shard.index()];
    for (uint64_t i = 0; i < kAckBatch; ++i) {
      st.now += Duration::from_micros(1);
      auto* fl = shard.flow(st.ids[st.acks % st.ids.size()]);
      fl->on_send(SendEvent{st.now, 1500});
      fl->on_ack(make_ack(st.now, st.acks));
      ++st.acks;
    }
    shard.poll(st.now);  // quiescent point: pending installs apply here
    ++st.iterations;
  });

  // Control plane: publish alternating program installs (and direct
  // control) to every flow while all four workers fold ACKs.
  constexpr int kRounds = 150;
  for (int round = 0; round < kRounds; ++round) {
    for (uint32_t s = 0; s < kShards; ++s) {
      for (const ipc::FlowId id : state[s].ids) {
        const char* text = (round % 2 == 0) ? kOneRegProgram : kTwoRegProgram;
        dp.handle_frame(ipc::encode_frame(ipc::Message(make_install(id, text))));
        ipc::DirectControlMsg ctl;
        ctl.flow_id = id;
        ctl.cwnd_bytes = 20'000.0 + round;
        dp.handle_frame(ipc::encode_frame(ipc::Message(ctl)));
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  dp.stop_workers();

  // Apply anything still queued (ownership is back on this thread), then
  // check the installs really went through program swaps.
  for (uint32_t s = 0; s < kShards; ++s) {
    dp.shard(s).poll(state[s].now);
    EXPECT_GT(state[s].iterations, 0u) << "shard " << s << " never ran";
    EXPECT_GT(state[s].acks, 0u);
    const uint64_t applied = dp.shard(s).commands_applied();
    EXPECT_GT(applied, 0u) << "shard " << s << " applied no commands";
    for (const ipc::FlowId id : state[s].ids) {
      const size_t regs = dp.shard(s).flow(id)->fold().state().size();
      EXPECT_TRUE(regs == 1 || regs == 2)
          << "flow " << id << " runs neither installed program";
    }
  }
  EXPECT_EQ(dp.control_stats().install_errors, 0u);
  EXPECT_EQ(dp.control_stats().decode_errors, 0u);
  EXPECT_GT(dp.control_stats().commands_routed, 0u);
  // Commands may drop under queue pressure, but the protocol must apply
  // everything that was published.
  uint64_t applied_total = 0;
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(dp.shard(s).commands().applied_epoch(),
              dp.shard(s).commands().publish_epoch());
    applied_total += dp.shard(s).commands_applied();
  }
  EXPECT_EQ(applied_total, dp.control_stats().commands_routed);
}

TEST(ShardedDatapath, JitVerifyModeAcrossShardsWhileInstalling) {
  // End-to-end qualification run for the JIT: every flow on every shard
  // executes in JitMode::Verify (native code AND interpreter per ACK,
  // bitwise fold-state cross-check) while worker threads fold ACKs and
  // the control plane swaps programs — the shared native code regions
  // must stay race-free across shard threads (TSan covers this file),
  // and the two engines must never diverge.
  namespace jit = lang::jit;
  const jit::JitMode saved_mode = jit::mode();
  jit::set_mode(jit::JitMode::Verify);
  const uint64_t mismatches_before =
      telemetry::metrics().jit_verify_mismatches.value();

  constexpr uint32_t kShards = 2;
  ipc::LaneSet lanes = ipc::make_inproc_lanes(kShards);
  std::vector<ShardedDatapath::FrameTx> txs;
  for (size_t i = 0; i < lanes.size(); ++i) {
    txs.push_back(ipc::make_lane_tx(*lanes.dp[i], i));
  }
  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  ShardedDatapath dp(dcfg, std::move(txs));

  std::array<WorkerState, kShards> state;
  for (uint32_t s = 0; s < kShards; ++s) {
    for (int k = 0; k < 4; ++k) {
      const ipc::FlowId id = dp.alloc_flow_id(s);
      dp.shard(s).create_flow(id, FlowConfig{}, "test", state[s].now);
      state[s].ids.push_back(id);
    }
  }
  if (jit::available()) {
    for (uint32_t s = 0; s < kShards; ++s) {
      for (const ipc::FlowId id : state[s].ids) {
        ASSERT_TRUE(dp.shard(s).flow(id)->fold().jit_verifying())
            << "flow " << id << " should cross-check from install onward";
      }
    }
  }

  dp.start_workers([&state](Shard& shard) {
    WorkerState& st = state[shard.index()];
    for (uint64_t i = 0; i < 256; ++i) {
      st.now += Duration::from_micros(1);
      auto* fl = shard.flow(st.ids[st.acks % st.ids.size()]);
      fl->on_send(SendEvent{st.now, 1500});
      fl->on_ack(make_ack(st.now, st.acks));
      ++st.acks;
    }
    shard.poll(st.now);
    ++st.iterations;
  });
  for (int round = 0; round < 40; ++round) {
    for (uint32_t s = 0; s < kShards; ++s) {
      for (const ipc::FlowId id : state[s].ids) {
        const char* text = (round % 2 == 0) ? kOneRegProgram : kTwoRegProgram;
        dp.handle_frame(ipc::encode_frame(ipc::Message(make_install(id, text))));
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  dp.stop_workers();

  uint64_t acks_total = 0;
  for (uint32_t s = 0; s < kShards; ++s) {
    dp.shard(s).poll(state[s].now);
    EXPECT_GT(state[s].acks, 0u);
    acks_total += state[s].acks;
    if (jit::available()) {
      for (const ipc::FlowId id : state[s].ids) {
        EXPECT_TRUE(dp.shard(s).flow(id)->fold().jit_verifying())
            << "program swaps must land back in Verify mode";
      }
    }
  }
  jit::set_mode(saved_mode);
  ASSERT_GT(acks_total, 0u);
  EXPECT_EQ(dp.control_stats().install_errors, 0u);
  EXPECT_EQ(telemetry::metrics().jit_verify_mismatches.value(),
            mismatches_before)
      << "JIT diverged from the interpreter somewhere in " << acks_total
      << " verified ACKs";
}

TEST(ShardedDatapath, FlowChurnWhileProcessingAcrossFourShards) {
  constexpr uint32_t kShards = 4;
  ipc::LaneSet lanes = ipc::make_inproc_lanes(kShards);
  std::vector<ShardedDatapath::FrameTx> txs;
  for (size_t i = 0; i < lanes.size(); ++i) {
    txs.push_back(ipc::make_lane_tx(*lanes.dp[i], i));
  }
  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  ShardedDatapath dp(dcfg, std::move(txs));

  std::array<WorkerState, kShards> state;
  for (uint32_t s = 0; s < kShards; ++s) {
    for (int k = 0; k < 8; ++k) {
      const ipc::FlowId id = dp.alloc_flow_id(s);
      dp.shard(s).create_flow(id, FlowConfig{}, "test", state[s].now);
      state[s].ids.push_back(id);
    }
  }

  // Each worker adds a flow, folds ACKs across its live set, closes its
  // oldest flow, and polls — lookups must stay stable under the add /
  // remove churn while the control plane keeps sending commands (some to
  // already-closed flows, which must be dropped gracefully).
  constexpr uint64_t kIterationsPerShard = 400;
  dp.start_workers([&dp, &state](Shard& shard) {
    WorkerState& st = state[shard.index()];
    if (st.iterations >= kIterationsPerShard) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      return;
    }
    const ipc::FlowId fresh = dp.alloc_flow_id(shard.index());
    shard.create_flow(fresh, FlowConfig{}, "test", st.now);
    st.ids.push_back(fresh);
    for (uint64_t i = 0; i < 128; ++i) {
      st.now += Duration::from_micros(1);
      auto* fl = shard.flow(st.ids[st.acks % st.ids.size()]);
      EXPECT_NE(fl, nullptr);
      if (fl == nullptr) return;
      fl->on_send(SendEvent{st.now, 1500});
      fl->on_ack(make_ack(st.now, st.acks));
      ++st.acks;
    }
    shard.close_flow(st.ids.front(), st.now);
    st.ids.erase(st.ids.begin());
    shard.poll(st.now);
    ++st.iterations;
  });

  for (int round = 0; round < 100; ++round) {
    for (uint32_t s = 0; s < kShards; ++s) {
      // Race commands against churn: id may be alive, closed, or not yet
      // created from this thread's point of view.
      ipc::DirectControlMsg ctl;
      ctl.flow_id = static_cast<ipc::FlowId>(round * 7 + s);
      ctl.rate_bps = 1e9;
      dp.handle_frame(ipc::encode_frame(ipc::Message(ctl)));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  // Wait for every shard to finish its iterations, then stop. No fixed
  // wall-clock deadline — under TSan on a loaded single-core box the
  // workers are legitimately slow — but bail out if they stop making
  // progress entirely (a real hang).
  uint64_t last_total = 0;
  int stalled_ms = 0;
  for (;;) {
    uint64_t total = 0;
    bool done = true;
    for (uint32_t s = 0; s < kShards; ++s) {
      const uint64_t it = state[s].iterations;
      total += it;
      if (it < kIterationsPerShard) done = false;
    }
    if (done) break;
    if (total == last_total) {
      stalled_ms += 10;
      if (stalled_ms > 10'000) break;  // no progress for 10 s: give up
    } else {
      stalled_ms = 0;
      last_total = total;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  dp.stop_workers();

  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_GE(state[s].iterations, kIterationsPerShard) << "shard " << s;
    EXPECT_EQ(dp.shard(s).num_flows(), 8u) << "shard " << s;  // +1 -1 per iter
    for (const ipc::FlowId id : state[s].ids) {
      EXPECT_NE(dp.shard(s).flow(id), nullptr);
      EXPECT_EQ(dp.shard_of_flow(id), s);
    }
  }
  EXPECT_EQ(dp.control_stats().decode_errors, 0u);
}

}  // namespace
}  // namespace ccp::datapath
