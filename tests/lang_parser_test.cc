#include <gtest/gtest.h>

#include "lang/error.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"

namespace ccp::lang {
namespace {

TEST(Parser, MinimalProgram) {
  auto prog = parse_program("control { Report(); }");
  EXPECT_TRUE(prog.folds.empty());
  ASSERT_EQ(prog.control.size(), 1u);
  EXPECT_EQ(prog.control[0].op, ControlInstr::Op::Report);
}

TEST(Parser, FoldRegisters) {
  auto prog = parse_program(R"(
    fold {
      volatile acked := acked + Pkt.bytes_acked init 0;
      minrtt := min(minrtt, Pkt.rtt) init 0x7fffffff;
      loss := loss + Pkt.lost init 0 urgent;
    }
    control { Report(); }
  )");
  ASSERT_EQ(prog.folds.size(), 3u);
  EXPECT_EQ(prog.folds[0].name, "acked");
  EXPECT_TRUE(prog.folds[0].is_volatile);
  EXPECT_FALSE(prog.folds[0].urgent);
  EXPECT_EQ(prog.folds[1].name, "minrtt");
  EXPECT_FALSE(prog.folds[1].is_volatile);
  EXPECT_TRUE(prog.folds[2].urgent);
}

TEST(Parser, ControlInstructions) {
  auto prog = parse_program(R"(
    control {
      Rate(1.25 * $r);
      Cwnd($c);
      Wait(100);
      WaitRtts(6.0);
      Report();
    }
  )");
  ASSERT_EQ(prog.control.size(), 5u);
  EXPECT_EQ(prog.control[0].op, ControlInstr::Op::SetRate);
  EXPECT_EQ(prog.control[1].op, ControlInstr::Op::SetCwnd);
  EXPECT_EQ(prog.control[2].op, ControlInstr::Op::Wait);
  EXPECT_EQ(prog.control[3].op, ControlInstr::Op::WaitRtts);
  EXPECT_EQ(prog.control[4].op, ControlInstr::Op::Report);
  ASSERT_EQ(prog.vars.size(), 2u);
  EXPECT_EQ(prog.vars[0], "r");
  EXPECT_EQ(prog.vars[1], "c");
}

TEST(Parser, ForwardReferencesBetweenRegisters) {
  // `a` references `b`, declared later.
  auto prog = parse_program(R"(
    fold {
      a := b + 1 init 0;
      b := Pkt.bytes_acked init 0;
    }
    control { Report(); }
  )");
  ASSERT_EQ(prog.folds.size(), 2u);
  // a's update should reference fold index 1.
  const ExprNode& update = prog.arena.at(prog.folds[0].update);
  ASSERT_EQ(update.kind, ExprKind::Binary);
  const ExprNode& lhs = prog.arena.at(update.child[0]);
  EXPECT_EQ(lhs.kind, ExprKind::FoldRef);
  EXPECT_EQ(lhs.index, 1u);
}

TEST(Parser, PrecedenceMulOverAdd) {
  auto prog = parse_program("control { Rate(1 + 2 * 3); Report(); }");
  const ExprNode& root = prog.arena.at(prog.control[0].arg);
  ASSERT_EQ(root.kind, ExprKind::Binary);
  EXPECT_EQ(root.binary_op, BinaryOp::Add);
  const ExprNode& rhs = prog.arena.at(root.child[1]);
  EXPECT_EQ(rhs.binary_op, BinaryOp::Mul);
}

TEST(Parser, PrecedenceComparisonOverAnd) {
  auto prog =
      parse_program("control { Rate(if(1 < 2 && 3 > 2, 5, 6)); Report(); }");
  const ExprNode& cond =
      prog.arena.at(prog.arena.at(prog.control[0].arg).child[0]);
  EXPECT_EQ(cond.binary_op, BinaryOp::And);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  auto prog = parse_program("control { Rate((1 + 2) * 3); Report(); }");
  const ExprNode& root = prog.arena.at(prog.control[0].arg);
  EXPECT_EQ(root.binary_op, BinaryOp::Mul);
}

TEST(Parser, UnaryMinusAndNot) {
  auto prog = parse_program("control { Rate(-$r + !0); Report(); }");
  const ExprNode& add = prog.arena.at(prog.control[0].arg);
  EXPECT_EQ(prog.arena.at(add.child[0]).kind, ExprKind::Unary);
  EXPECT_EQ(prog.arena.at(add.child[0]).unary_op, UnaryOp::Neg);
  EXPECT_EQ(prog.arena.at(add.child[1]).unary_op, UnaryOp::Not);
}

TEST(Parser, AllFunctions) {
  EXPECT_NO_THROW(parse_program(R"(
    fold {
      a := min(1, max(2, abs(-3))) + sqrt(4) + cbrt(8) + log(2) + exp(1)
           + pow(2, 3) + ewma(a, Pkt.rtt, 0.1) + if(1 < 2, 1, 0) init 0;
    }
    control { Report(); }
  )"));
}

TEST(Parser, AllPacketFields) {
  EXPECT_NO_THROW(parse_program(R"(
    fold {
      x := Pkt.rtt + Pkt.bytes_acked + Pkt.packets_acked + Pkt.lost
         + Pkt.ecn + Pkt.was_timeout + Pkt.snd_rate + Pkt.rcv_rate
         + Pkt.bytes_in_flight + Pkt.packets_in_flight + Pkt.bytes_pending
         + Pkt.now + Pkt.mss + Pkt.cwnd + Pkt.rate init 0;
    }
    control { Report(); }
  )"));
}

TEST(Parser, Errors) {
  // Unknown packet field.
  EXPECT_THROW(parse_program("fold { a := Pkt.bogus init 0; } control { Report(); }"),
               ProgramError);
  // Unknown function.
  EXPECT_THROW(parse_program("fold { a := frobnicate(1) init 0; } control { Report(); }"),
               ProgramError);
  // Wrong arity.
  EXPECT_THROW(parse_program("fold { a := min(1) init 0; } control { Report(); }"),
               ProgramError);
  // Unknown identifier.
  EXPECT_THROW(parse_program("fold { a := nonexistent init 0; } control { Report(); }"),
               ProgramError);
  // Duplicate register.
  EXPECT_THROW(parse_program("fold { a := 1 init 0; a := 2 init 0; } control { Report(); }"),
               ProgramError);
  // Duplicate fold block.
  EXPECT_THROW(
      parse_program("fold { a := 1 init 0; } fold { b := 1 init 0; } control { Report(); }"),
      ProgramError);
  // Missing init.
  EXPECT_THROW(parse_program("fold { a := 1; } control { Report(); }"), ProgramError);
  // Unknown control primitive.
  EXPECT_THROW(parse_program("control { Fire(1); }"), ProgramError);
  // Missing semicolon.
  EXPECT_THROW(parse_program("control { Report() }"), ProgramError);
  // Garbage at top level.
  EXPECT_THROW(parse_program("hello { }"), ProgramError);
}

TEST(Parser, PrinterRoundTrip) {
  const char* src = R"(
    fold {
      volatile acked := acked + Pkt.bytes_acked init 0;
      rtt := ewma(rtt, Pkt.rtt, 0.125) init 0;
      loss := loss + Pkt.lost init 0 urgent;
    }
    control {
      Rate(1.25 * $r);
      WaitRtts(1.0);
      Report();
      Cwnd(min($c, 1000000));
      Wait(5000);
      Report();
    }
  )";
  auto prog = parse_program(src);
  const std::string printed = print_program(prog);
  auto reparsed = parse_program(printed);
  // Round trip must preserve structure exactly.
  EXPECT_EQ(print_program(reparsed), printed);
  ASSERT_EQ(reparsed.folds.size(), prog.folds.size());
  ASSERT_EQ(reparsed.control.size(), prog.control.size());
  for (size_t i = 0; i < prog.folds.size(); ++i) {
    EXPECT_EQ(reparsed.folds[i].name, prog.folds[i].name);
    EXPECT_EQ(reparsed.folds[i].is_volatile, prog.folds[i].is_volatile);
    EXPECT_EQ(reparsed.folds[i].urgent, prog.folds[i].urgent);
  }
}

TEST(Parser, PaperBbrPulseProgram) {
  // The §2.1 example, adapted to the text syntax.
  auto prog = parse_program(R"(
    fold { rate := max(rate, Pkt.rcv_rate) init 0; }
    control {
      Rate(1.25 * $r); WaitRtts(1.0); Report();
      Rate(0.75 * $r); WaitRtts(1.0); Report();
      Rate($r);        WaitRtts(6.0); Report();
    }
  )");
  EXPECT_EQ(prog.control.size(), 9u);
  EXPECT_EQ(prog.vars.size(), 1u);
}

}  // namespace
}  // namespace ccp::lang
