#include <gtest/gtest.h>

#include "datapath/datapath.hpp"

namespace ccp::datapath {
namespace {

TimePoint at_ms(int64_t ms) { return TimePoint::epoch() + Duration::from_millis(ms); }

struct FrameLog {
  std::vector<std::vector<ipc::Message>> frames;
  CcpDatapath::FrameTx tx() {
    return [this](std::span<const uint8_t> frame) {
      frames.push_back(ipc::decode_frame(frame));
    };
  }
  size_t total_msgs() const {
    size_t n = 0;
    for (const auto& f : frames) n += f.size();
    return n;
  }
};

TEST(CcpDatapath, CreateFlowAnnouncesToAgent) {
  FrameLog log;
  CcpDatapath dp(DatapathConfig{}, log.tx());
  FlowConfig cfg;
  cfg.mss = 1460;
  dp.create_flow(cfg, "cubic", at_ms(0));
  ASSERT_EQ(log.frames.size(), 1u);
  const auto& create = std::get<ipc::CreateMsg>(log.frames[0][0]);
  EXPECT_EQ(create.alg_hint, "cubic");
  EXPECT_EQ(create.mss, 1460u);
  EXPECT_EQ(dp.num_flows(), 1u);
}

TEST(CcpDatapath, FlowIdsAreUniqueAndLookupWorks) {
  FrameLog log;
  CcpDatapath dp(DatapathConfig{}, log.tx());
  auto& f1 = dp.create_flow(FlowConfig{}, "", at_ms(0));
  auto& f2 = dp.create_flow(FlowConfig{}, "", at_ms(0));
  EXPECT_NE(f1.id(), f2.id());
  EXPECT_EQ(dp.flow(f1.id()), &f1);
  EXPECT_EQ(dp.flow(f2.id()), &f2);
  EXPECT_EQ(dp.flow(9999), nullptr);
}

TEST(CcpDatapath, CloseFlowNotifiesAndRemoves) {
  FrameLog log;
  CcpDatapath dp(DatapathConfig{}, log.tx());
  auto& flow = dp.create_flow(FlowConfig{}, "", at_ms(0));
  const ipc::FlowId id = flow.id();
  dp.close_flow(id, at_ms(1));
  EXPECT_EQ(dp.num_flows(), 0u);
  EXPECT_EQ(dp.flow(id), nullptr);
  bool saw_close = false;
  for (const auto& frame : log.frames) {
    for (const auto& msg : frame) {
      if (std::holds_alternative<ipc::FlowCloseMsg>(msg)) saw_close = true;
    }
  }
  EXPECT_TRUE(saw_close);
  // Closing twice is harmless.
  dp.close_flow(id, at_ms(2));
}

TEST(CcpDatapath, ZeroFlushIntervalSendsImmediately) {
  FrameLog log;
  DatapathConfig cfg;
  cfg.flush_interval = Duration::zero();
  CcpDatapath dp(cfg, log.tx());
  auto& flow = dp.create_flow(FlowConfig{}, "", at_ms(0));
  const size_t frames_before = log.frames.size();
  // Drive ACKs through one RTT to force a report.
  for (int ms = 1; ms <= 15; ++ms) {
    AckEvent ev;
    ev.now = at_ms(ms);
    ev.bytes_acked = 1000;
    ev.packets_acked = 1;
    ev.rtt_sample = Duration::from_millis(10);
    flow.on_ack(ev);
  }
  EXPECT_GT(log.frames.size(), frames_before);
}

TEST(CcpDatapath, BatchingCoalescesReportsAcrossFlows) {
  FrameLog log;
  DatapathConfig cfg;
  cfg.flush_interval = Duration::from_millis(100);  // hold everything
  cfg.max_batch_msgs = 1000;
  CcpDatapath dp(cfg, log.tx());
  std::vector<CcpFlow*> flows;
  for (int i = 0; i < 5; ++i) {
    flows.push_back(&dp.create_flow(FlowConfig{}, "", at_ms(0)));
  }
  // Creates are urgent: they flushed immediately.
  const size_t frames_after_create = log.frames.size();

  dp.tick(at_ms(0));
  for (int ms = 1; ms <= 15; ++ms) {
    for (auto* flow : flows) {
      AckEvent ev;
      ev.now = at_ms(ms);
      ev.bytes_acked = 1000;
      ev.packets_acked = 1;
      ev.rtt_sample = Duration::from_millis(10);
      flow->on_ack(ev);
    }
    dp.tick(at_ms(ms));
  }
  // Reports are pending, none sent yet (within flush interval).
  EXPECT_EQ(log.frames.size(), frames_after_create);
  dp.tick(at_ms(200));  // past the flush interval
  ASSERT_GT(log.frames.size(), frames_after_create);
  // The flushed frame must contain multiple flows' reports.
  EXPECT_GE(log.frames.back().size(), 5u);
}

TEST(CcpDatapath, MaxBatchForcesFlush) {
  FrameLog log;
  DatapathConfig cfg;
  cfg.flush_interval = Duration::from_secs(10);
  cfg.max_batch_msgs = 3;
  CcpDatapath dp(cfg, log.tx());
  auto& flow = dp.create_flow(FlowConfig{}, "", at_ms(0));
  const size_t frames_before = log.frames.size();
  dp.tick(at_ms(0));
  for (int ms = 1; ms <= 100; ++ms) {
    AckEvent ev;
    ev.now = at_ms(ms);
    ev.bytes_acked = 1000;
    ev.packets_acked = 1;
    ev.rtt_sample = Duration::from_millis(10);
    flow.on_ack(ev);
    dp.tick(at_ms(ms));
  }
  // ~10 reports hit the 3-message cap: frames went out.
  EXPECT_GT(log.frames.size(), frames_before);
  for (size_t i = frames_before; i < log.frames.size(); ++i) {
    EXPECT_LE(log.frames[i].size(), 3u);
  }
}

TEST(CcpDatapath, UrgentBypassesBatching) {
  FrameLog log;
  DatapathConfig cfg;
  cfg.flush_interval = Duration::from_secs(10);
  CcpDatapath dp(cfg, log.tx());
  auto& flow = dp.create_flow(FlowConfig{}, "", at_ms(0));
  const size_t frames_before = log.frames.size();
  LossEvent loss;
  loss.now = at_ms(1);
  flow.on_loss(loss);
  ASSERT_GT(log.frames.size(), frames_before);
  bool saw_urgent = false;
  for (const auto& msg : log.frames.back()) {
    if (std::holds_alternative<ipc::UrgentMsg>(msg)) saw_urgent = true;
  }
  EXPECT_TRUE(saw_urgent);
}

TEST(CcpDatapath, MalformedFrameCountedAndDropped) {
  FrameLog log;
  CcpDatapath dp(DatapathConfig{}, log.tx());
  std::vector<uint8_t> junk = {0xff, 0xff, 0x00, 0x01};
  dp.handle_frame(junk, at_ms(0));
  EXPECT_EQ(dp.stats().decode_errors, 1u);
}

TEST(CcpDatapath, BadInstallCountedFlowSurvives) {
  FrameLog log;
  CcpDatapath dp(DatapathConfig{}, log.tx());
  auto& flow = dp.create_flow(FlowConfig{}, "", at_ms(0));
  ipc::InstallMsg bad;
  bad.flow_id = flow.id();
  bad.program_text = "this is not a program";
  dp.handle_frame(ipc::encode_frame(ipc::Message(bad)), at_ms(1));
  EXPECT_EQ(dp.stats().install_errors, 1u);
  EXPECT_EQ(dp.num_flows(), 1u);
}

TEST(CcpDatapath, InstallForUnknownFlowIgnored) {
  FrameLog log;
  CcpDatapath dp(DatapathConfig{}, log.tx());
  ipc::InstallMsg msg;
  msg.flow_id = 424242;
  msg.program_text = "control { Report(); }";
  EXPECT_NO_THROW(dp.handle_frame(ipc::encode_frame(ipc::Message(msg)), at_ms(0)));
}

TEST(CcpDatapath, DispatchesInstallToRightFlow) {
  FrameLog log;
  CcpDatapath dp(DatapathConfig{}, log.tx());
  FlowConfig fcfg;
  fcfg.smooth_cwnd = false;
  auto& f1 = dp.create_flow(fcfg, "", at_ms(0));
  auto& f2 = dp.create_flow(fcfg, "", at_ms(0));
  ipc::InstallMsg msg;
  msg.flow_id = f2.id();
  msg.program_text = "control { Cwnd(77000); WaitRtts(1.0); Report(); }";
  dp.handle_frame(ipc::encode_frame(ipc::Message(msg)), at_ms(1));
  EXPECT_EQ(f2.cwnd_bytes(), 77000u);
  EXPECT_NE(f1.cwnd_bytes(), 77000u);
}

TEST(CcpDatapath, StatsCountTraffic) {
  FrameLog log;
  CcpDatapath dp(DatapathConfig{}, log.tx());
  dp.create_flow(FlowConfig{}, "", at_ms(0));
  EXPECT_EQ(dp.stats().frames_sent, 1u);
  EXPECT_EQ(dp.stats().msgs_sent, 1u);
  EXPECT_GT(dp.stats().bytes_sent, 0u);
}

}  // namespace
}  // namespace ccp::datapath
