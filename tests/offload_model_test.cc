#include <gtest/gtest.h>

#include "offload/model.hpp"

namespace ccp::offload {
namespace {

TEST(OffloadModel, AllOffloadsOnSaturatesLink) {
  OffloadModel m;
  const auto kernel = m.evaluate({true, true}, CcArch::InDatapath);
  const auto ccp = m.evaluate({true, true}, CcArch::Ccp);
  EXPECT_EQ(kernel.bottleneck, "link");
  EXPECT_EQ(ccp.bottleneck, "link");
  EXPECT_NEAR(kernel.throughput_bps, 9.41e9, 0.05e9);
  EXPECT_DOUBLE_EQ(kernel.throughput_bps, ccp.throughput_bps);
}

TEST(OffloadModel, TsoOffCcpBeatsKernel) {
  // Figure 5's middle group: sender segmentation in software; CCP's
  // longer trains aggregate better and cut the ACK rate.
  OffloadModel m;
  const auto kernel = m.evaluate({false, true}, CcArch::InDatapath);
  const auto ccp = m.evaluate({false, true}, CcArch::Ccp);
  EXPECT_LT(kernel.throughput_bps, 9.41e9);
  EXPECT_GT(ccp.throughput_bps, kernel.throughput_bps);
  EXPECT_LT(ccp.throughput_bps / kernel.throughput_bps, 1.25);  // modest edge
}

TEST(OffloadModel, AllOffComparable) {
  OffloadModel m;
  const auto kernel = m.evaluate({false, false}, CcArch::InDatapath);
  const auto ccp = m.evaluate({false, false}, CcArch::Ccp);
  EXPECT_LT(kernel.throughput_bps, m.evaluate({false, true},
                                              CcArch::InDatapath).throughput_bps *
                                       1.05);
  EXPECT_NEAR(ccp.throughput_bps / kernel.throughput_bps, 1.0, 0.05);
}

TEST(OffloadModel, OrderingAcrossConfigs) {
  // More offloads can only help, for both architectures.
  OffloadModel m;
  for (auto arch : {CcArch::InDatapath, CcArch::Ccp}) {
    const double all_on = m.evaluate({true, true}, arch).throughput_bps;
    const double tso_off = m.evaluate({false, true}, arch).throughput_bps;
    const double all_off = m.evaluate({false, false}, arch).throughput_bps;
    EXPECT_GE(all_on, tso_off);
    EXPECT_GE(tso_off, all_off);
  }
}

TEST(OffloadModel, TrainLengths) {
  OffloadModel m;
  // TSO trains are hardware sized, identical for both architectures.
  EXPECT_DOUBLE_EQ(m.sender_train_packets({true, true}, CcArch::InDatapath),
                   m.sender_train_packets({true, true}, CcArch::Ccp));
  // Without TSO, CCP's per-RTT updates emit longer trains.
  EXPECT_GT(m.sender_train_packets({false, true}, CcArch::Ccp),
            m.sender_train_packets({false, true}, CcArch::InDatapath));
}

TEST(OffloadModel, GroAggregationBounded) {
  OffloadModel m;
  const auto r = m.evaluate({true, true}, CcArch::Ccp);
  EXPECT_LE(r.gro_packets_per_event, m.config().gro_max_packets);
  EXPECT_GE(r.gro_packets_per_event, 1.0);
}

TEST(OffloadModel, CcpIpcCostIsNegligibleAtHighBandwidth) {
  // §2.3: per-RTT batching makes the IPC term vanish relative to
  // per-packet work. Compare CCP against a hypothetical zero-cost CC.
  CpuModelConfig cfg;
  cfg.cc_per_ack = 0;
  cfg.fold_per_ack = 0;
  cfg.ipc_per_report = 0;
  cfg.agent_per_report = 0;
  OffloadModel free_cc(cfg);
  OffloadModel real;
  const double free_tput =
      free_cc.evaluate({false, true}, CcArch::Ccp).throughput_bps;
  const double ccp_tput = real.evaluate({false, true}, CcArch::Ccp).throughput_bps;
  EXPECT_GT(ccp_tput / free_tput, 0.95);
}

TEST(OffloadModel, FasterCpuShiftsBottleneckToLink) {
  CpuModelConfig cfg;
  cfg.cycles_per_sec = 100e9;  // absurd CPU
  OffloadModel m(cfg);
  for (auto arch : {CcArch::InDatapath, CcArch::Ccp}) {
    EXPECT_EQ(m.evaluate({false, false}, arch).bottleneck, "link");
  }
}

}  // namespace
}  // namespace ccp::offload
