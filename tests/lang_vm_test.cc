#include <gtest/gtest.h>

#include <cmath>

#include "lang/builder.hpp"
#include "lang/compiler.hpp"
#include "lang/parser.hpp"
#include "lang/vm.hpp"
#include "util/rng.hpp"

namespace ccp::lang {
namespace {

/// Compiles a single-register program whose update is `expr_text` and
/// evaluates it once against `pkt` and `vars`.
double eval_expr(const std::string& expr_text, const PktInfo& pkt = {},
                 const std::vector<std::pair<std::string, double>>& vars = {}) {
  std::string src = "fold { result := " + expr_text + " init 0; }\n";
  src += "control { Report(); }";
  auto compiled = compile_text(src);
  std::vector<double> var_values(compiled.num_vars(), 0.0);
  for (const auto& [name, value] : vars) {
    const int idx = compiled.var_index(name);
    if (idx >= 0) var_values[static_cast<size_t>(idx)] = value;
  }
  FoldMachine fm;
  fm.install(&compiled, var_values);
  fm.on_packet(pkt);
  return fm.state()[0];
}

TEST(Vm, Arithmetic) {
  EXPECT_DOUBLE_EQ(eval_expr("1 + 2"), 3.0);
  EXPECT_DOUBLE_EQ(eval_expr("10 - 4"), 6.0);
  EXPECT_DOUBLE_EQ(eval_expr("6 * 7"), 42.0);
  EXPECT_DOUBLE_EQ(eval_expr("10 / 4"), 2.5);
  EXPECT_DOUBLE_EQ(eval_expr("-(3)"), -3.0);
  EXPECT_DOUBLE_EQ(eval_expr("2 + 3 * 4"), 14.0);
  EXPECT_DOUBLE_EQ(eval_expr("(2 + 3) * 4"), 20.0);
}

TEST(Vm, TotalArithmeticNeverCrashes) {
  // §2.2: "exceptions from common errors (e.g., division by zero) will
  // crash the operating system" — our VM is total instead.
  EXPECT_DOUBLE_EQ(eval_expr("5 / $zero", {}, {{"zero", 0.0}}), 0.0);
  EXPECT_DOUBLE_EQ(eval_expr("sqrt(-4)"), 0.0);
  EXPECT_DOUBLE_EQ(eval_expr("log(-1)"), 0.0);
  EXPECT_DOUBLE_EQ(eval_expr("log($zero)", {}, {{"zero", 0.0}}), 0.0);
  EXPECT_DOUBLE_EQ(eval_expr("pow(-8, 0.5)"), 0.0);  // NaN clamped
}

TEST(Vm, Functions) {
  EXPECT_DOUBLE_EQ(eval_expr("min(3, 5)"), 3.0);
  EXPECT_DOUBLE_EQ(eval_expr("max(3, 5)"), 5.0);
  EXPECT_DOUBLE_EQ(eval_expr("abs(-7)"), 7.0);
  EXPECT_DOUBLE_EQ(eval_expr("sqrt(16)"), 4.0);
  EXPECT_DOUBLE_EQ(eval_expr("cbrt(27)"), 3.0);
  EXPECT_NEAR(eval_expr("log(exp(1))"), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(eval_expr("pow(2, 10)"), 1024.0);
  EXPECT_DOUBLE_EQ(eval_expr("ewma(10, 20, 0.25)"), 12.5);
  EXPECT_DOUBLE_EQ(eval_expr("if(1 < 2, 111, 222)"), 111.0);
  EXPECT_DOUBLE_EQ(eval_expr("if(2 < 1, 111, 222)"), 222.0);
}

TEST(Vm, Comparisons) {
  EXPECT_DOUBLE_EQ(eval_expr("3 < 4"), 1.0);
  EXPECT_DOUBLE_EQ(eval_expr("4 < 3"), 0.0);
  EXPECT_DOUBLE_EQ(eval_expr("3 <= 3"), 1.0);
  EXPECT_DOUBLE_EQ(eval_expr("3 >= 4"), 0.0);
  EXPECT_DOUBLE_EQ(eval_expr("3 == 3"), 1.0);
  EXPECT_DOUBLE_EQ(eval_expr("3 != 3"), 0.0);
  EXPECT_DOUBLE_EQ(eval_expr("1 && 0"), 0.0);
  EXPECT_DOUBLE_EQ(eval_expr("1 || 0"), 1.0);
  EXPECT_DOUBLE_EQ(eval_expr("!0"), 1.0);
  EXPECT_DOUBLE_EQ(eval_expr("!5"), 0.0);
}

TEST(Vm, PacketFieldAccess) {
  PktInfo pkt;
  pkt.rtt_us = 1234;
  pkt.bytes_acked = 2920;
  pkt.mss = 1460;
  EXPECT_DOUBLE_EQ(eval_expr("Pkt.rtt", pkt), 1234.0);
  EXPECT_DOUBLE_EQ(eval_expr("Pkt.bytes_acked / Pkt.mss", pkt), 2.0);
}

TEST(Vm, InstallVars) {
  EXPECT_DOUBLE_EQ(eval_expr("1.25 * $r", {}, {{"r", 8.0}}), 10.0);
}

// --- property test: VM vs a reference tree-walking evaluator ---

struct RefEval {
  const Program& prog;
  const PktInfo& pkt;
  const std::vector<double>& vars;
  const std::vector<double>& folds;

  double eval(ExprId id) const {
    const ExprNode& n = prog.arena.at(id);
    switch (n.kind) {
      case ExprKind::Const: return n.constant;
      case ExprKind::FoldRef: return folds[n.index];
      case ExprKind::PktRef: return pkt.get(n.field);
      case ExprKind::VarRef: return vars[n.index];
      case ExprKind::Unary: {
        const double a = eval(n.child[0]);
        switch (n.unary_op) {
          case UnaryOp::Neg: return -a;
          case UnaryOp::Not: return a == 0 ? 1 : 0;
          case UnaryOp::Sqrt: return a <= 0 ? 0 : std::sqrt(a);
          case UnaryOp::Abs: return std::fabs(a);
          case UnaryOp::Log: return a <= 0 ? 0 : std::log(a);
          case UnaryOp::Exp: return std::exp(a);
          case UnaryOp::Cbrt: return std::cbrt(a);
        }
        return 0;
      }
      case ExprKind::Binary: {
        const double a = eval(n.child[0]);
        const double b = eval(n.child[1]);
        switch (n.binary_op) {
          case BinaryOp::Add: return a + b;
          case BinaryOp::Sub: return a - b;
          case BinaryOp::Mul: return a * b;
          case BinaryOp::Div: return b == 0 ? 0 : a / b;
          case BinaryOp::Pow: {
            const double v = std::pow(a, b);
            return std::isfinite(v) ? v : 0;
          }
          case BinaryOp::Min: return std::min(a, b);
          case BinaryOp::Max: return std::max(a, b);
          case BinaryOp::Lt: return a < b;
          case BinaryOp::Le: return a <= b;
          case BinaryOp::Gt: return a > b;
          case BinaryOp::Ge: return a >= b;
          case BinaryOp::Eq: return a == b;
          case BinaryOp::Ne: return a != b;
          case BinaryOp::And: return (a != 0 && b != 0) ? 1 : 0;
          case BinaryOp::Or: return (a != 0 || b != 0) ? 1 : 0;
        }
        return 0;
      }
      case ExprKind::Ternary: {
        const double a = eval(n.child[0]);
        const double b = eval(n.child[1]);
        const double c = eval(n.child[2]);
        return n.ternary_op == TernaryOp::If ? (a != 0 ? b : c)
                                             : (1 - c) * a + c * b;
      }
    }
    return 0;
  }
};

/// Builds a random expression over one fold register, two vars, and
/// packet fields, with bounded depth.
Expr random_expr(ccp::Rng& rng, int depth) {
  if (depth <= 0 || rng.chance(0.3)) {
    switch (rng.next_below(4)) {
      case 0: return Expr::c(rng.uniform(-100.0, 100.0));
      case 1: return f("reg");
      case 2: return rng.chance(0.5) ? v("x") : v("y");
      default:
        return pkt(static_cast<PktField>(rng.next_below(kNumPktFields)));
    }
  }
  switch (rng.next_below(10)) {
    case 0: return random_expr(rng, depth - 1) + random_expr(rng, depth - 1);
    case 1: return random_expr(rng, depth - 1) - random_expr(rng, depth - 1);
    case 2: return random_expr(rng, depth - 1) * random_expr(rng, depth - 1);
    case 3: return random_expr(rng, depth - 1) / random_expr(rng, depth - 1);
    case 4: return min(random_expr(rng, depth - 1), random_expr(rng, depth - 1));
    case 5: return max(random_expr(rng, depth - 1), random_expr(rng, depth - 1));
    case 6: return abs(random_expr(rng, depth - 1));
    case 7: return random_expr(rng, depth - 1) < random_expr(rng, depth - 1);
    case 8:
      return if_(random_expr(rng, depth - 1), random_expr(rng, depth - 1),
                 random_expr(rng, depth - 1));
    default:
      return ewma(random_expr(rng, depth - 1), random_expr(rng, depth - 1),
                  Expr::c(0.25));
  }
}

class VmRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VmRandomized, MatchesReferenceEvaluator) {
  ccp::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    ProgramBuilder b;
    b.def("reg", Expr::c(rng.uniform(-10, 10)), random_expr(rng, 4));
    b.cwnd(v("x")).wait_rtts(1.0).report();
    Program prog = b.build();
    CompiledProgram compiled = compile(prog);

    PktInfo pkt_info;
    pkt_info.rtt_us = rng.uniform(0, 1e5);
    pkt_info.bytes_acked = rng.uniform(0, 1e5);
    pkt_info.snd_rate_bps = rng.uniform(0, 1e9);
    pkt_info.rcv_rate_bps = rng.uniform(0, 1e9);
    pkt_info.now_us = rng.uniform(0, 1e7);

    std::vector<double> vars(compiled.num_vars());
    for (auto& value : vars) value = rng.uniform(-50, 50);

    // Reference: evaluate init then update by tree walking.
    std::vector<double> ref_folds(1, 0.0);
    const PktInfo zero_pkt{};
    RefEval ref_init{prog, zero_pkt, vars, ref_folds};
    ref_folds[0] = ref_init.eval(prog.folds[0].init);
    RefEval ref_update{prog, pkt_info, vars, ref_folds};
    const double expected = ref_update.eval(prog.folds[0].update);

    FoldMachine fm;
    fm.install(&compiled, vars);
    fm.on_packet(pkt_info);
    const double actual = fm.state()[0];

    if (std::isnan(expected)) {
      EXPECT_TRUE(std::isnan(actual));
    } else {
      EXPECT_DOUBLE_EQ(actual, expected) << "trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmRandomized,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 77u, 1234u));

}  // namespace
}  // namespace ccp::lang
