#include <gtest/gtest.h>

#include "agent/agent.hpp"
#include "agent/transport_loop.hpp"
#include "lang/parser.hpp"
#include "telemetry/telemetry.hpp"

namespace ccp::agent {
namespace {

/// A scripted algorithm that records every callback.
class Probe final : public Algorithm {
 public:
  struct Shared {
    int inits = 0;
    int measurements = 0;
    int urgents = 0;
    std::vector<double> last_acked;
    ipc::UrgentKind last_kind{};
  };

  Probe(Shared* shared, std::string program,
        std::vector<std::pair<std::string, double>> vars)
      : shared_(shared), program_(std::move(program)), vars_(std::move(vars)) {}

  std::string_view name() const override { return "probe"; }
  AlgorithmTraits traits() const override { return {{"ACKs"}, {"CWND"}}; }

  void init(FlowControl& flow) override {
    ++shared_->inits;
    flow.install_text(program_, vars_);
  }
  void on_measurement(FlowControl&, const Measurement& m) override {
    ++shared_->measurements;
    shared_->last_acked.push_back(m.get("acked", -1));
  }
  void on_urgent(FlowControl&, ipc::UrgentKind kind, const Measurement&) override {
    ++shared_->urgents;
    shared_->last_kind = kind;
  }

 private:
  Shared* shared_;
  std::string program_;
  std::vector<std::pair<std::string, double>> vars_;
};

struct Harness {
  std::vector<std::vector<ipc::Message>> sent;
  Probe::Shared probe;
  AgentConfig config;
  std::unique_ptr<CcpAgent> agent;

  explicit Harness(AgentConfig cfg = {}) : config(std::move(cfg)) {
    config.default_algorithm = "probe";
    agent = std::make_unique<CcpAgent>(config, [this](std::span<const uint8_t> frame) {
      sent.push_back(ipc::decode_frame(frame));
    });
  }

  void register_probe(
      std::string program =
          "fold { volatile acked := acked + Pkt.bytes_acked init 0; }\n"
          "control { Cwnd($cwnd); WaitRtts(1.0); Report(); }",
      std::vector<std::pair<std::string, double>> vars = {{"cwnd", 14600.0}}) {
    agent->register_algorithm("probe", [this, program, vars](const FlowInfo&) {
      return std::make_unique<Probe>(&probe, program, vars);
    });
  }

  void deliver(const ipc::Message& msg) {
    agent->handle_frame(ipc::encode_frame(msg));
  }

  template <typename T>
  std::vector<T> sent_of() const {
    std::vector<T> out;
    for (const auto& frame : sent) {
      for (const auto& msg : frame) {
        if (auto* m = std::get_if<T>(&msg)) out.push_back(*m);
      }
    }
    return out;
  }
};

ipc::CreateMsg create(ipc::FlowId id, const std::string& hint = "") {
  ipc::CreateMsg m;
  m.flow_id = id;
  m.mss = 1460;
  m.init_cwnd_bytes = 14600;
  m.alg_hint = hint;
  return m;
}

TEST(Agent, CreateInstantiatesAlgorithmAndInstalls) {
  Harness h;
  h.register_probe();
  h.deliver(create(1));
  EXPECT_EQ(h.probe.inits, 1);
  EXPECT_EQ(h.agent->num_flows(), 1u);
  auto installs = h.sent_of<ipc::InstallMsg>();
  ASSERT_EQ(installs.size(), 1u);
  EXPECT_EQ(installs[0].flow_id, 1u);
  EXPECT_NO_THROW(lang::parse_program(installs[0].program_text));
}

TEST(Agent, MeasurementDispatchedByFieldName) {
  Harness h;
  h.register_probe();
  h.deliver(create(1));
  ipc::MeasurementMsg m;
  m.flow_id = 1;
  m.fields = {4321.0};  // positional: 'acked' is the only register
  h.deliver(m);
  EXPECT_EQ(h.probe.measurements, 1);
  ASSERT_EQ(h.probe.last_acked.size(), 1u);
  EXPECT_DOUBLE_EQ(h.probe.last_acked[0], 4321.0);
}

TEST(Agent, UrgentDispatched) {
  Harness h;
  h.register_probe();
  h.deliver(create(1));
  ipc::UrgentMsg u;
  u.flow_id = 1;
  u.kind = ipc::UrgentKind::Timeout;
  h.deliver(u);
  EXPECT_EQ(h.probe.urgents, 1);
  EXPECT_EQ(h.probe.last_kind, ipc::UrgentKind::Timeout);
}

TEST(Agent, UnknownFlowMessagesCounted) {
  Harness h;
  h.register_probe();
  ipc::MeasurementMsg m;
  m.flow_id = 404;
  h.deliver(m);
  EXPECT_EQ(h.agent->stats().unknown_flow_msgs, 1u);
  EXPECT_EQ(h.probe.measurements, 0);
}

TEST(Agent, UnknownAlgorithmCounted) {
  Harness h;
  h.register_probe();
  h.deliver(create(1, "quantum_tcp"));
  EXPECT_EQ(h.agent->stats().unknown_algorithm, 1u);
  EXPECT_EQ(h.agent->num_flows(), 0u);
}

TEST(Agent, FlowCloseDestroysState) {
  Harness h;
  h.register_probe();
  h.deliver(create(1));
  h.deliver(ipc::Message(ipc::FlowCloseMsg{1}));
  EXPECT_EQ(h.agent->num_flows(), 0u);
  // Subsequent measurements are orphaned, not crashes.
  ipc::MeasurementMsg m;
  m.flow_id = 1;
  h.deliver(m);
  EXPECT_EQ(h.agent->stats().unknown_flow_msgs, 1u);
}

TEST(Agent, MalformedFrameCounted) {
  Harness h;
  h.register_probe();
  std::vector<uint8_t> junk = {1, 2, 3};
  h.agent->handle_frame(junk);
  EXPECT_EQ(h.agent->stats().decode_errors, 1u);
}

TEST(Agent, PolicyCapsRateInInstalledProgram) {
  AgentConfig cfg;
  cfg.policy.max_rate_bps = 1e6;
  Harness h(cfg);
  h.register_probe("control { Rate($r); WaitRtts(1.0); Report(); }",
                   {{"r", 5e9}});
  h.deliver(create(1));
  auto installs = h.sent_of<ipc::InstallMsg>();
  ASSERT_EQ(installs.size(), 1u);
  // The cap must be baked into the program text as min(..., cap).
  EXPECT_NE(installs[0].program_text.find("min"), std::string::npos);
  EXPECT_NE(installs[0].program_text.find("1000000"), std::string::npos);
}

TEST(Agent, PolicyClampsCwndBothWays) {
  AgentConfig cfg;
  cfg.policy.min_cwnd_bytes = 3000;
  cfg.policy.max_cwnd_bytes = 50000;
  Harness h(cfg);
  h.register_probe();
  h.deliver(create(1));
  auto installs = h.sent_of<ipc::InstallMsg>();
  ASSERT_EQ(installs.size(), 1u);
  EXPECT_NE(installs[0].program_text.find("max"), std::string::npos);
  EXPECT_NE(installs[0].program_text.find("50000"), std::string::npos);
}

// Regression test for the positional update_fields bug: bindings given
// in a different order than the program's $-variable order must still
// land on the right variables.
TEST(Agent, UpdateFieldsUsesProgramVariableOrder) {
  Harness h;
  // Program order: $b first (in fold), then $a.
  h.register_probe(
      "fold { x := $b init 0; }\n"
      "control { Cwnd($a); WaitRtts(1.0); Report(); }",
      {{"a", 111.0}, {"b", 222.0}});

  class Updater final : public Algorithm {
   public:
    std::string_view name() const override { return "updater"; }
    AlgorithmTraits traits() const override { return {}; }
    void init(FlowControl& flow) override {
      flow.install_text(
          "fold { x := $b init 0; }\n"
          "control { Cwnd($a); WaitRtts(1.0); Report(); }",
          std::vector<std::pair<std::string, double>>{{"a", 111.0}, {"b", 222.0}});
    }
    void on_measurement(FlowControl& flow, const Measurement&) override {
      // Update only $a; $b must keep its old value.
      flow.update_fields(
          std::vector<std::pair<std::string, double>>{{"a", 333.0}});
    }
    void on_urgent(FlowControl&, ipc::UrgentKind, const Measurement&) override {}
  };
  h.agent->register_algorithm(
      "updater", [](const FlowInfo&) { return std::make_unique<Updater>(); });
  h.deliver(create(7, "updater"));
  ipc::MeasurementMsg m;
  m.flow_id = 7;
  m.fields = {0.0};
  h.deliver(m);

  auto updates = h.sent_of<ipc::UpdateFieldsMsg>();
  ASSERT_EQ(updates.size(), 1u);
  // Program variable order is [b, a] (b appears first in the fold).
  ASSERT_EQ(updates[0].var_values.size(), 2u);
  EXPECT_DOUBLE_EQ(updates[0].var_values[0], 222.0);  // $b preserved
  EXPECT_DOUBLE_EQ(updates[0].var_values[1], 333.0);  // $a updated
}

TEST(Agent, AlgorithmAccessorWorks) {
  Harness h;
  h.register_probe();
  h.deliver(create(1));
  ASSERT_NE(h.agent->algorithm(1), nullptr);
  EXPECT_EQ(h.agent->algorithm(1)->name(), "probe");
  EXPECT_EQ(h.agent->algorithm(2), nullptr);
}

TEST(Agent, VectorMeasurementSamplesDecoded) {
  Harness h;
  h.register_probe();
  h.deliver(create(1));
  ipc::MeasurementMsg m;
  m.flow_id = 1;
  m.is_vector = true;
  m.num_acks_folded = 2;
  m.fields = {100, 1460, 0, 0, 5e6, 6e6,   // sample 1
              200, 2920, 1, 1, 7e6, 8e6};  // sample 2
  Measurement meas(nullptr, &m);
  auto samples = meas.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].rtt_us, 100);
  EXPECT_DOUBLE_EQ(samples[1].bytes_acked, 2920);
  EXPECT_DOUBLE_EQ(samples[1].lost, 1);
}

TEST(Agent, ReportLatencyBeyondOldSaturationRecordsCorrectly) {
  // Regression for the p50 = 65.535 µs plateau in BENCH_hotpath.json.
  // The emitted_ns stamp was never the problem (it is a full u64 on the
  // wire); the latency histogram's quantile() returned raw bucket uppers
  // at 8-sub-bucket resolution, so everything at the top of the
  // distribution reported exactly 65535 ns. A synthetic latency three
  // orders of magnitude past that point must round-trip through the
  // stamp and come back within the histogram's documented 3.125% bucket
  // error — not clamp.
  telemetry::set_enabled(true);
  auto& hist = telemetry::metrics().report_latency_ns;
  hist.reset();

  Harness h;
  h.register_probe();
  h.deliver(create(1));

  constexpr uint64_t kSyntheticLatencyNs = 100'000'000;  // 100 ms
  for (int i = 0; i < 9; ++i) {
    ipc::MeasurementMsg m;
    m.flow_id = 1;
    m.fields = {1.0};
    m.emitted_ns = telemetry::now_ns() - kSyntheticLatencyNs;
    h.deliver(m);
  }
  telemetry::set_enabled(false);

  ASSERT_EQ(hist.count(), 9u);
  const double p50 = hist.quantile(0.5);
  EXPECT_GT(p50, 65'535'000.0) << "latency percentile still saturating";
  EXPECT_GE(p50, static_cast<double>(kSyntheticLatencyNs) * 0.96);
  // Handler overhead between now_ns() and the record is microseconds;
  // the upper slack is bucket error, not scheduling noise.
  EXPECT_LE(p50, static_cast<double>(kSyntheticLatencyNs) * 1.04);
}

// --- resync (docs/RESILIENCE.md) ---

ipc::FlowSummaryMsg summary(ipc::FlowId id, uint64_t token,
                            uint32_t cwnd = 30'000) {
  ipc::FlowSummaryMsg m;
  m.flow_id = id;
  m.mss = 1460;
  m.cwnd_bytes = cwnd;
  m.srtt_us = 12'000;
  m.in_fallback = true;
  m.alg_hint = "";  // falls back to the configured default algorithm
  m.token = token;
  return m;
}

TEST(Agent, FlowSummaryRebuildsFlowAndReinstalls) {
  Harness h;
  h.register_probe();
  h.agent->expect_resync(3);
  h.deliver(summary(9, /*token=*/3));
  EXPECT_EQ(h.agent->num_flows(), 1u);
  EXPECT_EQ(h.agent->stats().flows_resynced, 1u);
  EXPECT_EQ(h.probe.inits, 1);  // algorithm re-initialized the flow
  // init() installs the program — that very Install is what pulls the
  // datapath flow out of fallback.
  auto installs = h.sent_of<ipc::InstallMsg>();
  ASSERT_EQ(installs.size(), 1u);
  EXPECT_EQ(installs[0].flow_id, 9u);
}

TEST(Agent, FlowSummaryFromSupersededResyncDropped) {
  Harness h;
  h.register_probe();
  h.agent->expect_resync(5);
  h.deliver(summary(9, /*token=*/4));  // stale generation
  EXPECT_EQ(h.agent->num_flows(), 0u);
  EXPECT_EQ(h.agent->stats().flows_resynced, 0u);
  h.deliver(summary(9, /*token=*/5));
  EXPECT_EQ(h.agent->num_flows(), 1u);
}

TEST(Agent, FlowSummaryForKnownFlowIsIgnored) {
  Harness h;
  h.register_probe();
  h.deliver(create(1));
  ASSERT_EQ(h.probe.inits, 1);
  // Live local state is fresher than any replay: do not re-init.
  h.deliver(summary(1, /*token=*/0));
  EXPECT_EQ(h.probe.inits, 1);
  EXPECT_EQ(h.agent->stats().flows_resynced, 0u);
}

// --- adaptive idle backoff (transport_loop.hpp) ---

TEST(AdaptiveBackoff, DoublesFromFloorToCapAndResets) {
  AdaptiveBackoff b;  // 50 us floor, 1 ms cap
  using std::chrono::microseconds;
  EXPECT_EQ(b.next(), microseconds(50));
  EXPECT_EQ(b.next(), microseconds(100));
  EXPECT_EQ(b.next(), microseconds(200));
  EXPECT_EQ(b.next(), microseconds(400));
  EXPECT_EQ(b.next(), microseconds(800));
  EXPECT_EQ(b.next(), microseconds(1000));  // capped, not 1600
  EXPECT_EQ(b.next(), microseconds(1000));  // stays at the cap
  b.reset();  // traffic arrived: back to the floor
  EXPECT_EQ(b.next(), microseconds(50));
}

TEST(AdaptiveBackoff, CustomBounds) {
  AdaptiveBackoff b(std::chrono::microseconds(10),
                    std::chrono::microseconds(35));
  EXPECT_EQ(b.next(), std::chrono::microseconds(10));
  EXPECT_EQ(b.next(), std::chrono::microseconds(20));
  EXPECT_EQ(b.next(), std::chrono::microseconds(35));
  EXPECT_EQ(b.current(), std::chrono::microseconds(35));
}

}  // namespace
}  // namespace ccp::agent
