// Tests for the second datapath (the paper's §3 prototype) and the
// agent's capability translation — the executable form of "write once,
// run everywhere" (§1).
#include <gtest/gtest.h>

#include "algorithms/registry.hpp"
#include "datapath/prototype_datapath.hpp"
#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"

namespace ccp {
namespace {

using namespace sim;

TimePoint at_ms(int64_t ms) { return TimePoint::epoch() + Duration::from_millis(ms); }

datapath::AckEvent ack_at(TimePoint now, uint64_t bytes = 1000) {
  datapath::AckEvent ev;
  ev.now = now;
  ev.bytes_acked = bytes;
  ev.packets_acked = 1;
  ev.rtt_sample = Duration::from_millis(10);
  return ev;
}

TEST(PrototypeDatapath, AnnouncesLimitedCapability) {
  std::vector<ipc::Message> sent;
  datapath::PrototypeDatapath dp(
      datapath::DatapathConfig{},
      [&](std::span<const uint8_t> frame) {
        for (auto& m : ipc::decode_frame(frame)) sent.push_back(std::move(m));
      });
  dp.create_flow(datapath::FlowConfig{}, "reno", at_ms(0));
  ASSERT_FALSE(sent.empty());
  const auto& create = std::get<ipc::CreateMsg>(sent[0]);
  EXPECT_FALSE(create.supports_programs);
}

TEST(PrototypeDatapath, RejectsInstallAcceptsDirectControl) {
  std::vector<ipc::Message> sent;
  datapath::PrototypeDatapath dp(
      datapath::DatapathConfig{},
      [&](std::span<const uint8_t> frame) {
        for (auto& m : ipc::decode_frame(frame)) sent.push_back(std::move(m));
      });
  auto& flow = dp.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "", at_ms(0));

  ipc::InstallMsg install;
  install.flow_id = flow.id();
  install.program_text = "control { Report(); }";
  dp.handle_frame(ipc::encode_frame(ipc::Message(install)), at_ms(1));
  EXPECT_EQ(dp.unsupported_msgs(), 1u);

  ipc::DirectControlMsg dc;
  dc.flow_id = flow.id();
  dc.cwnd_bytes = 99 * 1460.0;
  dc.rate_bps = 5e6;
  dp.handle_frame(ipc::encode_frame(ipc::Message(dc)), at_ms(2));
  // Smooth increase: target set; ramp via ACKs.
  for (int ms = 3; ms < 200; ++ms) flow.on_ack(ack_at(at_ms(ms), 1460));
  EXPECT_EQ(flow.cwnd_bytes(), 99u * 1460u);
  EXPECT_DOUBLE_EQ(flow.pacing_rate_bps(), 5e6);
}

TEST(PrototypeDatapath, ReportsFixedLayoutOncePerRtt) {
  std::vector<ipc::MeasurementMsg> reports;
  datapath::PrototypeDatapath dp(
      datapath::DatapathConfig{},
      [&](std::span<const uint8_t> frame) {
        for (auto& m : ipc::decode_frame(frame)) {
          if (auto* meas = std::get_if<ipc::MeasurementMsg>(&m)) {
            reports.push_back(*meas);
          }
        }
      });
  auto& flow = dp.create_flow(datapath::FlowConfig{1000, 10000}, "", at_ms(0));
  for (int ms = 1; ms <= 60; ++ms) flow.on_ack(ack_at(at_ms(ms)));
  ASSERT_GE(reports.size(), 3u);
  ASSERT_LE(reports.size(), 8u);  // ~once per 10 ms RTT
  EXPECT_EQ(reports.back().fields.size(), ipc::prototype_field_names().size());
  // acked accumulates between reports and the rtt field carries the EWMA.
  EXPECT_GT(reports.back().fields[0], 0.0);
  EXPECT_NEAR(reports.back().fields[6], 10000.0, 500.0);
}

TEST(PrototypeDatapath, AgentTranslationDrivesReno) {
  // Full loop in the simulator: reno in the agent, prototype datapath on
  // the host. The agent never sends Install; everything arrives as
  // DirectControl, and the flow still does AIMD.
  EventQueue q;
  auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
  Dumbbell net(q, cfg);
  SimPrototypeHost host(q, CcpHostConfig{});
  auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno");
  const TimePoint end = TimePoint::epoch() + Duration::from_secs(8);
  host.start(end);
  auto& snd = net.add_flow(TcpSenderConfig{}, &flow, TimePoint::epoch());
  q.run_until(end);

  const double tput = snd.delivered_bytes() * 8.0 / 8 / 1e6;
  EXPECT_GT(tput, 30.0);  // the link is well used...
  EXPECT_GT(flow.reports_sent(), 100u);  // ...with per-RTT reporting
  EXPECT_EQ(host.datapath().unsupported_msgs(), 0u);  // agent never Installed
  EXPECT_GT(host.agent().stats().measurements, 100u);
}

TEST(PrototypeDatapath, SameAlgorithmBothDatapathsComparable) {
  auto run_full = [] {
    EventQueue q;
    auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
    Dumbbell net(q, cfg);
    SimCcpHost host(q, CcpHostConfig{});
    auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno");
    const TimePoint end = TimePoint::epoch() + Duration::from_secs(8);
    host.start(end);
    auto& snd = net.add_flow(TcpSenderConfig{}, &flow, TimePoint::epoch());
    q.run_until(end);
    return snd.delivered_bytes() * 8.0 / 8 / 1e6;
  };
  auto run_proto = [] {
    EventQueue q;
    auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
    Dumbbell net(q, cfg);
    SimPrototypeHost host(q, CcpHostConfig{});
    auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno");
    const TimePoint end = TimePoint::epoch() + Duration::from_secs(8);
    host.start(end);
    auto& snd = net.add_flow(TcpSenderConfig{}, &flow, TimePoint::epoch());
    q.run_until(end);
    return snd.delivered_bytes() * 8.0 / 8 / 1e6;
  };
  const double full = run_full();
  const double proto = run_proto();
  // Same algorithm, two datapaths: macroscopic behavior must agree.
  EXPECT_NEAR(proto, full, full * 0.25);
}

TEST(PrototypeDatapath, CloseFlowCleansUp) {
  std::vector<ipc::Message> sent;
  datapath::PrototypeDatapath dp(
      datapath::DatapathConfig{},
      [&](std::span<const uint8_t> frame) {
        for (auto& m : ipc::decode_frame(frame)) sent.push_back(std::move(m));
      });
  auto& flow = dp.create_flow(datapath::FlowConfig{}, "", at_ms(0));
  const ipc::FlowId id = flow.id();
  dp.close_flow(id, at_ms(1));
  EXPECT_EQ(dp.num_flows(), 0u);
  EXPECT_EQ(dp.flow(id), nullptr);
  bool saw_close = false;
  for (const auto& m : sent) {
    if (std::holds_alternative<ipc::FlowCloseMsg>(m)) saw_close = true;
  }
  EXPECT_TRUE(saw_close);
}

}  // namespace
}  // namespace ccp
