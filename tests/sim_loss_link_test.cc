// Random-loss and variable-rate link models: determinism (same seed ->
// identical drop/rate event sequence), statistics, and schedule math.
#include <gtest/gtest.h>

#include <vector>

#include "sim/link.hpp"

namespace ccp::sim {
namespace {

Packet data_pkt(uint32_t flow, uint64_t seq, uint32_t len) {
  Packet p;
  p.flow = flow;
  p.seq = seq;
  p.len = len;
  p.header_bytes = 40;
  return p;
}

/// Pushes `n` packets through a lossy link and returns the delivered
/// sequence numbers — the drop pattern, as a function of the seed.
std::vector<uint64_t> delivered_seqs(uint64_t seed, int n) {
  EventQueue q;
  LinkConfig cfg;
  cfg.rate_bps = 1e9;
  cfg.queue_capacity_bytes = UINT64_MAX;  // no tail drops: only random loss
  cfg.random_loss = 0.1;
  cfg.loss_seed = seed;
  std::vector<uint64_t> seqs;
  Link link(q, cfg, [&](Packet p) { seqs.push_back(p.seq); });
  for (int i = 0; i < n; ++i) link.enqueue(data_pkt(0, i, 960));
  q.run();
  return seqs;
}

TEST(RandomLoss, SameSeedSameDropSequence) {
  const auto a = delivered_seqs(7, 2000);
  const auto b = delivered_seqs(7, 2000);
  EXPECT_EQ(a, b);
  EXPECT_LT(a.size(), 2000u);  // some packets were actually dropped
}

TEST(RandomLoss, DifferentSeedDifferentDropSequence) {
  EXPECT_NE(delivered_seqs(7, 2000), delivered_seqs(8, 2000));
}

TEST(RandomLoss, DropRateApproximatesProbability) {
  EventQueue q;
  LinkConfig cfg;
  cfg.rate_bps = 1e9;
  cfg.queue_capacity_bytes = UINT64_MAX;
  cfg.random_loss = 0.1;
  cfg.loss_seed = 3;
  Link link(q, cfg, [](Packet) {});
  const int n = 20000;
  for (int i = 0; i < n; ++i) link.enqueue(data_pkt(0, i, 960));
  q.run();
  // 0.1 * 20000 = 2000 expected; allow +-25%.
  EXPECT_GT(link.stats().random_dropped_pkts, 1500u);
  EXPECT_LT(link.stats().random_dropped_pkts, 2500u);
  EXPECT_EQ(link.stats().delivered_pkts + link.stats().random_dropped_pkts,
            static_cast<uint64_t>(n));
}

TEST(RandomLoss, OffByDefault) {
  EventQueue q;
  LinkConfig cfg;
  cfg.rate_bps = 1e9;
  cfg.queue_capacity_bytes = UINT64_MAX;  // isolate random loss from drop-tail
  Link link(q, cfg, [](Packet) {});
  for (int i = 0; i < 1000; ++i) link.enqueue(data_pkt(0, i, 960));
  q.run();
  EXPECT_EQ(link.stats().random_dropped_pkts, 0u);
  EXPECT_EQ(link.stats().delivered_pkts, 1000u);
}

TEST(RandomLoss, CountedSeparatelyFromTailDrops) {
  EventQueue q;
  LinkConfig cfg;
  cfg.rate_bps = 1e3;  // very slow: everything queues
  cfg.queue_capacity_bytes = 3000;
  cfg.random_loss = 0.2;
  cfg.loss_seed = 11;
  Link link(q, cfg, [](Packet) {});
  for (int i = 0; i < 200; ++i) link.enqueue(data_pkt(0, i, 960));
  EXPECT_GT(link.stats().random_dropped_pkts, 0u);
  EXPECT_GT(link.stats().dropped_pkts, 0u);
  // A randomly dropped packet never counts as a tail drop and vice versa.
  EXPECT_EQ(link.stats().enqueued_pkts + link.stats().dropped_pkts +
                link.stats().random_dropped_pkts,
            200u);
}

TEST(RateSchedule, ChangesServiceRate) {
  EventQueue q;
  LinkConfig cfg;
  cfg.rate_bps = 8e6;  // 1000 wire bytes -> 1 ms
  cfg.prop_delay = Duration::zero();
  cfg.rate_schedule = {{Duration::from_millis(5), 4e6}};
  std::vector<TimePoint> arrivals;
  Link link(q, cfg, [&](Packet) { arrivals.push_back(q.now()); });
  link.enqueue(data_pkt(0, 0, 960));  // serialized at 8 Mbit/s
  q.schedule_at(TimePoint::epoch() + Duration::from_millis(10),
                [&] { link.enqueue(data_pkt(0, 1, 960)); });  // at 4 Mbit/s
  q.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ((arrivals[0] - TimePoint::epoch()).micros(), 1000);
  EXPECT_EQ((arrivals[1] - TimePoint::epoch()).micros(), 12000);
  EXPECT_EQ(link.stats().rate_changes_applied, 1u);
}

TEST(RateSchedule, DeterministicEventSequence) {
  auto run_once = [] {
    EventQueue q;
    LinkConfig cfg;
    cfg.rate_bps = 8e6;
    cfg.rate_schedule = {{Duration::from_millis(3), 2e6},
                         {Duration::from_millis(9), 8e6}};
    std::vector<int64_t> arrivals_us;
    Link link(q, cfg, [&](Packet) {
      arrivals_us.push_back((q.now() - TimePoint::epoch()).micros());
    });
    for (int i = 0; i < 20; ++i) link.enqueue(data_pkt(0, i, 960));
    q.run();
    return arrivals_us;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(RateSchedule, MeanRateIntegratesSchedule) {
  EventQueue q;
  LinkConfig cfg;
  cfg.rate_bps = 8e6;
  cfg.rate_schedule = {{Duration::from_secs(5), 4e6}};
  Link link(q, cfg, [](Packet) {});
  // First 5 s at 8 Mbit/s, next 5 s at 4 Mbit/s -> 6 Mbit/s mean.
  EXPECT_NEAR(link.mean_rate_bps(Duration::from_secs(10)), 6e6, 1.0);
  // Window entirely before the change: the initial rate.
  EXPECT_NEAR(link.mean_rate_bps(Duration::from_secs(4)), 8e6, 1.0);
}

}  // namespace
}  // namespace ccp::sim
