// Full-stack integration over *real* OS IPC: the agent runs in its own
// thread behind a Unix domain socket (or shm ring), exactly as deployed,
// while this thread drives the datapath with synthetic ACKs. This is the
// Figure 1 architecture with no simulator shortcuts.
#include <gtest/gtest.h>

#include <thread>

#include "agent/transport_loop.hpp"
#include "algorithms/registry.hpp"
#include "datapath/datapath.hpp"
#include "ipc/transport.hpp"

namespace ccp {
namespace {

struct RealStack {
  ipc::TransportPair channel;
  std::unique_ptr<agent::CcpAgent> agent;
  std::unique_ptr<agent::TransportLoop> agent_loop;
  std::unique_ptr<datapath::CcpDatapath> dp;

  explicit RealStack(ipc::TransportPair pair, const std::string& default_alg)
      : channel(std::move(pair)) {
    agent::AgentConfig cfg;
    cfg.default_algorithm = default_alg;
    agent = std::make_unique<agent::CcpAgent>(cfg, [this](std::span<const uint8_t> f) {
      channel.b->send_frame(f);
    });
    algorithms::register_builtin_algorithms(*agent);
    agent_loop = std::make_unique<agent::TransportLoop>(
        *channel.b, [this](std::span<const uint8_t> f) { agent->handle_frame(f); });
    dp = std::make_unique<datapath::CcpDatapath>(
        datapath::DatapathConfig{},
        [this](std::span<const uint8_t> f) { channel.a->send_frame(f); });
  }

  ~RealStack() { agent_loop->stop(); }

  void pump(TimePoint now) {
    while (auto frame = channel.a->try_recv_frame()) {
      dp->handle_frame(*frame, now);
    }
    dp->tick(now);
  }

  /// Waits (wall-clock) until `pred` holds, pumping commands, or fails.
  template <typename Pred>
  bool wait_for(Pred pred, Duration timeout = Duration::from_secs(5)) {
    const TimePoint deadline = monotonic_now() + timeout;
    while (monotonic_now() < deadline) {
      pump(monotonic_now());
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return false;
  }
};

datapath::AckEvent ack_now(uint64_t bytes = 1460) {
  datapath::AckEvent ev;
  ev.now = monotonic_now();
  ev.bytes_acked = bytes;
  ev.packets_acked = 1;
  ev.rtt_sample = Duration::from_millis(10);
  return ev;
}

class RealIpcTest : public ::testing::TestWithParam<int> {
 protected:
  ipc::TransportPair make_pair() {
    return GetParam() == 0
               ? ipc::make_unix_socket_pair()
               : ipc::make_shm_ring_pair(1 << 18, ipc::ShmWaitMode::Blocking);
  }
};

TEST_P(RealIpcTest, AgentInstallsProgramOverTheWire) {
  RealStack stack(make_pair(), "reno");
  auto& flow = stack.dp->create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno",
                                     monotonic_now());
  // Reno's init() Install travels agent -> socket -> datapath. The
  // default program also defines "acked", so distinguish by a register
  // only the default program has ("snd") having disappeared.
  ASSERT_TRUE(stack.wait_for([&] {
    return stack.agent->stats().installs_sent >= 1 &&
           flow.fold().program()->fold_index("snd") < 0;
  }));
  EXPECT_EQ(stack.agent->stats().flows_created, 1u);
  EXPECT_GE(flow.fold().program()->fold_index("acked"), 0);
}

TEST_P(RealIpcTest, SlowStartGrowsWindowEndToEnd) {
  RealStack stack(make_pair(), "reno");
  auto& flow = stack.dp->create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno",
                                     monotonic_now());
  ASSERT_TRUE(stack.wait_for([&] { return flow.fold().installed(); }));
  const uint64_t w0 = flow.cwnd_bytes();
  // Drive ~5 RTTs of ACKs; reports flow out, window updates flow back.
  const bool grew = stack.wait_for([&] {
    flow.on_ack(ack_now());
    return flow.cwnd_bytes() > 2 * w0;
  });
  EXPECT_TRUE(grew);
  EXPECT_GT(stack.agent->stats().measurements, 0u);
}

TEST_P(RealIpcTest, UrgentLossRoundTripCutsWindow) {
  // Vegas grows one packet per RTT, so its model tracks the (synthetic)
  // ACK-driven datapath window closely — which makes the halving after
  // an urgent loss observable at the datapath. (Reno's slow-start model
  // would race far ahead of this artificial ACK stream.)
  RealStack stack(make_pair(), "vegas");
  auto& flow = stack.dp->create_flow(datapath::FlowConfig{1460, 10 * 1460}, "vegas",
                                     monotonic_now());
  ASSERT_TRUE(stack.wait_for(
      [&] { return stack.agent->stats().installs_sent >= 1; }));
  // Grow to >20 packets (one packet per ~10 ms report)...
  ASSERT_TRUE(stack.wait_for(
      [&] {
        flow.on_ack(ack_now());
        return flow.cwnd_bytes() > 20 * 1460u;
      },
      Duration::from_secs(10)));
  // ...let in-flight updates land, then inject the loss.
  stack.wait_for([&] { return false; }, Duration::from_millis(200));
  const uint64_t before = flow.cwnd_bytes();
  flow.on_loss(datapath::LossEvent{monotonic_now(), 1, before});
  const bool halved = stack.wait_for(
      [&] { return flow.cwnd_bytes() < before * 3 / 4; });
  EXPECT_TRUE(halved);
  EXPECT_GT(stack.agent->stats().urgents, 0u);
}

TEST_P(RealIpcTest, FlowCloseReachesAgent) {
  RealStack stack(make_pair(), "reno");
  auto& flow = stack.dp->create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno",
                                     monotonic_now());
  ASSERT_TRUE(stack.wait_for([&] { return stack.agent->num_flows() == 1; }));
  stack.dp->close_flow(flow.id(), monotonic_now());
  EXPECT_TRUE(stack.wait_for([&] { return stack.agent->num_flows() == 0; }));
}

TEST_P(RealIpcTest, ManyFlowsMultiplexOneChannel) {
  RealStack stack(make_pair(), "reno");
  std::vector<datapath::CcpFlow*> flows;
  for (int i = 0; i < 10; ++i) {
    flows.push_back(&stack.dp->create_flow(datapath::FlowConfig{1460, 10 * 1460},
                                           i % 2 == 0 ? "reno" : "cubic",
                                           monotonic_now()));
  }
  ASSERT_TRUE(stack.wait_for([&] { return stack.agent->num_flows() == 10; }));
  // Every flow independently reaches an installed program and grows.
  for (auto* flow : flows) {
    ASSERT_TRUE(stack.wait_for([&] { return flow->fold().installed(); }));
  }
  const bool all_grew = stack.wait_for([&] {
    bool ok = true;
    for (auto* flow : flows) {
      flow->on_ack(ack_now());
      ok = ok && flow->cwnd_bytes() > 15 * 1460u;
    }
    return ok;
  });
  EXPECT_TRUE(all_grew);
}

INSTANTIATE_TEST_SUITE_P(Transports, RealIpcTest, ::testing::Values(0, 1),
                         [](const auto& info) {
                           return info.param == 0 ? "UnixSocket" : "ShmRing";
                         });

}  // namespace
}  // namespace ccp
