#include <gtest/gtest.h>

#include "util/ewma.hpp"
#include "util/rate_estimator.hpp"
#include "util/windowed_filter.hpp"

namespace ccp {
namespace {

TEST(Ewma, FirstSampleInitializesExactly) {
  Ewma e(0.125);
  EXPECT_FALSE(e.initialized());
  e.update(100.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 100.0);
}

TEST(Ewma, ConvergesTowardConstantInput) {
  Ewma e(0.5);
  e.update(0.0);
  for (int i = 0; i < 50; ++i) e.update(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-9);
}

TEST(Ewma, GainControlsSpeed) {
  Ewma slow(0.1), fast(0.9);
  slow.update(0);
  fast.update(0);
  slow.update(100);
  fast.update(100);
  EXPECT_LT(slow.value(), fast.value());
  EXPECT_DOUBLE_EQ(slow.value(), 10.0);
  EXPECT_DOUBLE_EQ(fast.value(), 90.0);
}

TEST(Ewma, ResetAndSet) {
  Ewma e(0.5);
  e.update(10);
  e.reset();
  EXPECT_FALSE(e.initialized());
  e.set(42.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(WindowedFilter, TracksMinimum) {
  WindowedFilter<double> f(FilterKind::Min, Duration::from_secs(10));
  TimePoint t = TimePoint::epoch();
  EXPECT_EQ(f.update(5.0, t), 5.0);
  EXPECT_EQ(f.update(7.0, t + Duration::from_secs(1)), 5.0);
  EXPECT_EQ(f.update(3.0, t + Duration::from_secs(2)), 3.0);
  EXPECT_EQ(f.update(9.0, t + Duration::from_secs(3)), 3.0);
}

TEST(WindowedFilter, ExpiresOldMinimum) {
  WindowedFilter<double> f(FilterKind::Min, Duration::from_secs(10));
  TimePoint t = TimePoint::epoch();
  f.update(1.0, t);
  // Feed larger samples past the window; the old min must age out.
  for (int i = 1; i <= 30; ++i) {
    f.update(5.0, t + Duration::from_secs(i));
  }
  EXPECT_EQ(f.get(), 5.0);
}

TEST(WindowedFilter, TracksMaximum) {
  WindowedFilter<double> f(FilterKind::Max, Duration::from_secs(10));
  TimePoint t = TimePoint::epoch();
  f.update(5.0, t);
  f.update(8.0, t + Duration::from_secs(1));
  f.update(2.0, t + Duration::from_secs(2));
  EXPECT_EQ(f.get(), 8.0);
  // Expire the 8.
  for (int i = 3; i <= 30; ++i) f.update(2.0, t + Duration::from_secs(i));
  EXPECT_EQ(f.get(), 2.0);
}

TEST(RateEstimator, ZeroUntilTwoEvents) {
  RateEstimator r(Duration::from_millis(100));
  TimePoint t = TimePoint::epoch();
  EXPECT_EQ(r.rate_bps(t), 0.0);
  r.on_bytes(1000, t);
  EXPECT_EQ(r.rate_bps(t), 0.0);  // single burst: no measurable span
}

TEST(RateEstimator, SteadyStreamRate) {
  RateEstimator r(Duration::from_millis(100));
  TimePoint t = TimePoint::epoch();
  // 1000 bytes every 1 ms = 1 MB/s.
  for (int i = 0; i <= 100; ++i) {
    r.on_bytes(1000, t + Duration::from_millis(i));
  }
  const double rate = r.rate_bps(t + Duration::from_millis(100));
  EXPECT_NEAR(rate, 1e6, 0.05e6);
}

TEST(RateEstimator, OldEventsExpire) {
  RateEstimator r(Duration::from_millis(10));
  TimePoint t = TimePoint::epoch();
  for (int i = 0; i < 10; ++i) r.on_bytes(100000, t + Duration::from_millis(i));
  // Much later, with a slow trickle, the rate must reflect the trickle.
  TimePoint late = t + Duration::from_secs(1);
  for (int i = 0; i < 10; ++i) r.on_bytes(10, late + Duration::from_millis(i));
  const double rate = r.rate_bps(late + Duration::from_millis(9));
  EXPECT_LT(rate, 50000.0);
}

TEST(RateEstimator, TotalBytesMonotone) {
  RateEstimator r;
  TimePoint t = TimePoint::epoch();
  r.on_bytes(10, t);
  r.on_bytes(20, t + Duration::from_millis(1));
  EXPECT_EQ(r.total_bytes(), 30u);
  r.reset();
  EXPECT_EQ(r.total_bytes(), 30u);  // monotone counter survives reset
}

TEST(RateEstimator, WindowAdjustable) {
  RateEstimator r(Duration::from_millis(100));
  r.set_window(Duration::from_millis(5));
  EXPECT_EQ(r.window(), Duration::from_millis(5));
}

}  // namespace
}  // namespace ccp
