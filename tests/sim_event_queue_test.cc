#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace ccp::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Duration::from_millis(30), [&] { order.push_back(3); });
  q.schedule(Duration::from_millis(10), [&] { order.push_back(1); });
  q.schedule(Duration::from_millis(20), [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  const TimePoint t = q.now() + Duration::from_millis(5);
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  TimePoint seen{};
  q.schedule(Duration::from_millis(7), [&] { seen = q.now(); });
  q.run();
  EXPECT_EQ(seen, TimePoint::epoch() + Duration::from_millis(7));
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule(Duration::from_millis(5), [&] { ++fired; });
  q.schedule(Duration::from_millis(15), [&] { ++fired; });
  const uint64_t executed = q.run_until(TimePoint::epoch() + Duration::from_millis(10));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), TimePoint::epoch() + Duration::from_millis(10));
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) q.schedule(Duration::from_micros(1), recurse);
  };
  q.schedule(Duration::from_micros(1), recurse);
  q.run();
  EXPECT_EQ(depth, 100);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule(Duration::from_millis(10), [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(TimePoint::epoch(), [] {}), std::logic_error);
}

TEST(EventQueue, DeterministicUnderRandomLoad) {
  auto run_once = [](uint64_t seed) {
    EventQueue q;
    Rng rng(seed);
    std::vector<uint64_t> trace;
    std::function<void(int)> spawn = [&](int depth) {
      trace.push_back(q.now().nanos());
      if (depth > 0) {
        const int children = 1 + static_cast<int>(rng.next_below(3));
        for (int i = 0; i < children; ++i) {
          q.schedule(Duration::from_nanos(static_cast<int64_t>(rng.next_below(1000))),
                     [&spawn, depth] { spawn(depth - 1); });
        }
      }
    };
    q.schedule(Duration::zero(), [&] { spawn(6); });
    q.run();
    return trace;
  };
  EXPECT_EQ(run_once(77), run_once(77));
  EXPECT_NE(run_once(77), run_once(78));
}

}  // namespace
}  // namespace ccp::sim
