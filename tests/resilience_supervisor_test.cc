// AgentSupervisor: reconnect with capped exponential backoff, resync on
// reconnect — plus the end-to-end deterministic fault scenario from
// docs/RESILIENCE.md (kill agent -> flows fall back -> supervisor
// reconnects -> resync restores state -> flows leave fallback).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "agent/agent.hpp"
#include "algorithms/registry.hpp"
#include "datapath/datapath.hpp"
#include "resilience/resilience.hpp"

namespace ccp::resilience {
namespace {

TimePoint at_ms(int64_t ms) {
  return TimePoint::epoch() + Duration::from_millis(ms);
}

AgentSupervisor::Config no_jitter(Duration floor, Duration cap) {
  AgentSupervisor::Config cfg;
  cfg.backoff_floor = floor;
  cfg.backoff_cap = cap;
  cfg.multiplier = 2.0;
  cfg.jitter_frac = 0.0;  // exact schedule for the assertions below
  cfg.seed = 1;
  return cfg;
}

TEST(AgentSupervisor, BackoffDoublesAndCaps) {
  EventLog log;
  AgentSupervisor sup(
      no_jitter(Duration::from_millis(10), Duration::from_millis(80)),
      [] { return std::unique_ptr<ipc::Transport>(); },  // always fails
      nullptr, &log);
  // Drive ticks every ms; attempts are paced by the schedule, not by us.
  int64_t ms = 0;
  std::vector<int64_t> backoffs_ms;
  uint64_t seen = 0;
  while (backoffs_ms.size() < 6 && ms < 2000) {
    sup.tick(at_ms(ms));
    if (sup.consecutive_failures() > seen) {
      seen = sup.consecutive_failures();
      backoffs_ms.push_back(sup.current_backoff().millis());
    }
    ++ms;
  }
  ASSERT_EQ(backoffs_ms.size(), 6u);
  EXPECT_EQ(backoffs_ms[0], 10);  // floor after the first failure
  EXPECT_EQ(backoffs_ms[1], 20);
  EXPECT_EQ(backoffs_ms[2], 40);
  EXPECT_EQ(backoffs_ms[3], 80);
  EXPECT_EQ(backoffs_ms[4], 80);  // capped
  EXPECT_EQ(backoffs_ms[5], 80);
  EXPECT_FALSE(sup.connected());
  EXPECT_EQ(log.count(ResilienceEvent::Kind::Backoff), 6u);
}

TEST(AgentSupervisor, JitterStaysWithinBounds) {
  AgentSupervisor::Config cfg =
      no_jitter(Duration::from_millis(100), Duration::from_secs(10));
  cfg.jitter_frac = 0.2;
  cfg.seed = 7;
  AgentSupervisor sup(cfg, [] { return std::unique_ptr<ipc::Transport>(); },
                      nullptr, nullptr);
  int64_t ms = 0;
  uint64_t seen = 0;
  while (sup.consecutive_failures() < 4 && ms < 60'000) {
    sup.tick(at_ms(ms));
    if (sup.consecutive_failures() > seen) {
      seen = sup.consecutive_failures();
      const double expected =
          100.0 * static_cast<double>(1ULL << (seen - 1));  // ms
      const double got = static_cast<double>(sup.current_backoff().millis());
      EXPECT_GE(got, expected * 0.8 - 1);
      EXPECT_LE(got, expected * 1.2 + 1);
    }
    ++ms;
  }
  EXPECT_EQ(seen, 4u);
}

TEST(AgentSupervisor, ReconnectSendsResyncRequestWithGeneration) {
  EventLog log;
  std::unique_ptr<ipc::Transport> peer;
  AgentSupervisor sup(
      no_jitter(Duration::from_millis(10), Duration::from_millis(80)),
      [&] {
        auto pair = ipc::make_inproc_pair();
        peer = std::move(pair.b);
        return std::move(pair.a);
      },
      nullptr, &log);
  EXPECT_TRUE(sup.tick(at_ms(0)));
  EXPECT_TRUE(sup.connected());
  EXPECT_EQ(sup.generation(), 1u);
  // The peer (playing the datapath) must see one ResyncRequest frame
  // carrying the generation as token.
  ASSERT_NE(peer, nullptr);
  auto frame = peer->try_recv_frame();
  ASSERT_TRUE(frame.has_value());
  const auto msgs = ipc::decode_frame(*frame);
  ASSERT_EQ(msgs.size(), 1u);
  const auto* req = std::get_if<ipc::ResyncRequestMsg>(&msgs[0]);
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->token, 1u);
  EXPECT_EQ(log.count(ResilienceEvent::Kind::ResyncRequested), 1u);
}

TEST(AgentSupervisor, DetectsDeadTransportAndRecovers) {
  EventLog log;
  FaultInjector injector(3, &log);
  FaultyTransport* live = nullptr;
  int attempts_allowed = 0;
  AgentSupervisor sup(
      no_jitter(Duration::from_millis(10), Duration::from_millis(80)),
      [&]() -> std::unique_ptr<ipc::Transport> {
        if (attempts_allowed <= 0) return nullptr;
        --attempts_allowed;
        auto pair = ipc::make_inproc_pair();
        auto t = injector.wrap(std::move(pair.a), FaultPlan{}, nullptr);
        live = t.get();
        return t;
      },
      nullptr, &log);
  attempts_allowed = 1;
  ASSERT_TRUE(sup.tick(at_ms(0)));
  ASSERT_NE(live, nullptr);
  live->kill();
  // Next tick notices the dead peer and immediately retries (which fails:
  // no attempts allowed), entering the backoff schedule.
  EXPECT_FALSE(sup.tick(at_ms(1)));
  EXPECT_FALSE(sup.connected());
  EXPECT_EQ(log.count(ResilienceEvent::Kind::Disconnect), 1u);
  // Allow the reconnect; it happens once the backoff expires.
  attempts_allowed = 1;
  EXPECT_FALSE(sup.tick(at_ms(5)));  // still inside the 10 ms backoff
  EXPECT_TRUE(sup.tick(at_ms(12)));
  EXPECT_EQ(sup.generation(), 2u);
  EXPECT_EQ(log.count(ResilienceEvent::Kind::Reconnected), 2u);
}

// ---------------------------------------------------------------------------
// End-to-end deterministic fault scenario.
//
// A real datapath and a real agent talk over inproc transports through a
// FaultyTransport. The agent is killed mid-run; every flow's watchdog
// must engage the in-datapath fallback within k RTTs; the supervisor
// reconnects with backoff, a *fresh* agent resyncs from replayed
// FlowSummary messages, re-installs its programs, and every flow leaves
// fallback. The entire sequence is virtual-time + seeded, so two runs
// produce identical event logs.
// ---------------------------------------------------------------------------

struct ScenarioResult {
  std::string events;       // EventLog::to_string()
  std::string transitions;  // per-ms fallback-count deltas
  uint64_t flows_resynced = 0;
  bool all_recovered = false;
  bool fell_back = false;
};

ScenarioResult run_scenario(uint64_t seed) {
  constexpr size_t kFlows = 3;
  EventLog log;
  FaultInjector injector(seed, &log);

  // Datapath side. Its tx always points at the *current* datapath-side
  // endpoint (replaced when the supervisor reconnects).
  std::unique_ptr<ipc::Transport> dp_end;
  datapath::DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  datapath::CcpDatapath dp(dcfg, [&](std::span<const uint8_t> f) {
    if (dp_end != nullptr) dp_end->send_frame(f);
  });

  // Agent side: the supervisor owns the agent's transport; the agent is
  // rebuilt from scratch on reconnect (a restarted process has no state).
  std::unique_ptr<agent::CcpAgent> agent;
  AgentSupervisor* sup_ptr = nullptr;
  auto make_agent = [&] {
    agent::AgentConfig acfg;
    agent = std::make_unique<agent::CcpAgent>(
        acfg, [&](std::span<const uint8_t> f) {
          if (sup_ptr != nullptr && sup_ptr->transport() != nullptr) {
            sup_ptr->transport()->send_frame(f);
          }
        });
    algorithms::register_builtin_algorithms(*agent);
  };

  FaultyTransport* faulty = nullptr;
  bool agent_process_up = true;
  auto connect = [&]() -> std::unique_ptr<ipc::Transport> {
    if (!agent_process_up) return nullptr;
    auto pair = ipc::make_inproc_pair();
    dp_end = std::move(pair.a);
    auto t = injector.wrap(std::move(pair.b), FaultPlan{}, nullptr);
    faulty = t.get();
    make_agent();
    return t;
  };

  AgentSupervisor::Config scfg;
  scfg.backoff_floor = Duration::from_millis(5);
  scfg.backoff_cap = Duration::from_millis(40);
  scfg.jitter_frac = 0.2;
  scfg.seed = seed + 1;
  AgentSupervisor sup(
      scfg, connect,
      [&](ipc::Transport&, uint64_t generation) {
        agent->expect_resync(generation);
      },
      &log);
  sup_ptr = &sup;

  TimePoint now = at_ms(1);
  sup.tick(now);  // initial connect, generation 1

  // Flows with a 4-RTT watchdog at 10 ms RTT.
  datapath::FlowConfig fcfg;
  fcfg.watchdog_rtts = 4.0;
  std::vector<ipc::FlowId> ids;
  for (size_t i = 0; i < kFlows; ++i) {
    ids.push_back(dp.create_flow(fcfg, "reno", now).id());
  }

  auto pump = [&] {
    // dp -> agent
    if (sup.transport() != nullptr && agent != nullptr) {
      sup.transport()->drain_frames(
          [&](std::span<const uint8_t> f) { agent->handle_frame(f); });
    }
    // agent -> dp
    if (dp_end != nullptr) {
      dp_end->drain_frames(
          [&](std::span<const uint8_t> f) { dp.handle_frame(f, now); });
    }
  };

  ScenarioResult result;
  size_t last_fallback_count = 0;
  auto step_ms = [&](int64_t count) {
    for (int64_t s = 0; s < count; ++s) {
      now += Duration::from_millis(1);
      for (const ipc::FlowId id : ids) {
        datapath::AckEvent ev;
        ev.now = now;
        ev.bytes_acked = 1500;
        ev.packets_acked = 1;
        ev.rtt_sample = Duration::from_millis(10);
        dp.flow(id)->on_ack(ev);
      }
      dp.tick(now);
      sup.tick(now);
      pump();
      pump();  // second pass delivers replies generated by the first
      size_t in_fb = 0;
      for (const ipc::FlowId id : ids) {
        in_fb += dp.flow(id)->in_fallback() ? 1 : 0;
      }
      if (in_fb != last_fallback_count) {
        result.transitions += std::to_string(now.nanos() / 1'000'000) + ":" +
                              std::to_string(in_fb) + ";";
        last_fallback_count = in_fb;
      }
    }
  };

  step_ms(100);  // steady state: agent installs reno, contact stays fresh
  for (const ipc::FlowId id : ids) {
    if (dp.flow(id)->in_fallback()) return result;  // premature fallback: fail
  }

  // Kill the agent process mid-run.
  agent_process_up = false;
  faulty->kill();
  agent.reset();
  step_ms(100);  // watchdogs trip (<= 4 RTTs + a report interval)
  result.fell_back = last_fallback_count == kFlows;

  // The "process" comes back; the supervisor's next attempt succeeds,
  // resyncs, and the rebuilt agent reclaims every flow.
  agent_process_up = true;
  step_ms(200);
  result.all_recovered = true;
  for (const ipc::FlowId id : ids) {
    if (dp.flow(id)->in_fallback()) result.all_recovered = false;
  }
  if (agent != nullptr) result.flows_resynced = agent->stats().flows_resynced;
  result.events = log.to_string();
  return result;
}

TEST(ResilienceE2E, KillFallbackReconnectResyncRecover) {
  const ScenarioResult r = run_scenario(2024);
  EXPECT_TRUE(r.fell_back) << "not all flows engaged fallback";
  EXPECT_TRUE(r.all_recovered) << "flows stuck in fallback after resync";
  EXPECT_EQ(r.flows_resynced, 3u);
  // The event log tells the whole story, in order.
  EXPECT_NE(r.events.find("kill"), std::string::npos);
  EXPECT_NE(r.events.find("disconnect"), std::string::npos);
  EXPECT_NE(r.events.find("reconnect_attempt"), std::string::npos);
  EXPECT_NE(r.events.find("backoff"), std::string::npos);
  EXPECT_NE(r.events.find("reconnected"), std::string::npos);
  EXPECT_NE(r.events.find("resync_requested"), std::string::npos);
}

TEST(ResilienceE2E, IdenticalEventSequenceAcrossSameSeedRuns) {
  const ScenarioResult a = run_scenario(77);
  const ScenarioResult b = run_scenario(77);
  EXPECT_TRUE(a.fell_back);
  EXPECT_TRUE(a.all_recovered);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_FALSE(a.events.empty());
  EXPECT_FALSE(a.transitions.empty());
}

}  // namespace
}  // namespace ccp::resilience
