// End-to-end tests of the full CCP stack: simulator <-> datapath <->
// (simulated IPC) <-> agent <-> algorithms. These are the system-level
// claims of the paper in miniature: CCP algorithms behave like their
// in-datapath counterparts (§3) while acting only a few times per RTT.
#include <gtest/gtest.h>

#include "algorithms/native/native_cubic.hpp"
#include "algorithms/native/native_dctcp.hpp"
#include "algorithms/native/native_reno.hpp"
#include "algorithms/native/native_vegas.hpp"
#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"

namespace ccp::sim {
namespace {

TimePoint at_s(double s) {
  return TimePoint::epoch() + Duration::from_secs_f(s);
}

struct RunResult {
  double tput_mbps = 0;
  uint64_t timeouts = 0;
  uint64_t reports = 0;
};

/// One flow on a 50 Mbit/s, 10 ms, 1-BDP dumbbell for `secs` seconds.
RunResult run_ccp(const std::string& alg, double secs = 8.0, bool ecn = false) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0,
                                  ecn ? 20000 : UINT64_MAX);
  Dumbbell net(q, cfg);
  SimCcpHost host(q, CcpHostConfig{});
  auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, alg);
  host.start(at_s(secs));
  TcpSenderConfig scfg;
  scfg.ecn_enabled = ecn;
  auto& snd = net.add_flow(scfg, &flow, TimePoint::epoch());
  q.run_until(at_s(secs));
  return {snd.delivered_bytes() * 8.0 / secs / 1e6, snd.stats().timeouts,
          flow.reports_sent()};
}

RunResult run_native(datapath::CcModule* cc, double secs = 8.0, bool ecn = false) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0,
                                  ecn ? 20000 : UINT64_MAX);
  Dumbbell net(q, cfg);
  TcpSenderConfig scfg;
  scfg.ecn_enabled = ecn;
  auto& snd = net.add_flow(scfg, cc, TimePoint::epoch());
  q.run_until(at_s(secs));
  return {snd.delivered_bytes() * 8.0 / secs / 1e6, snd.stats().timeouts, 0};
}

TEST(Integration, CcpRenoMatchesNativeReno) {
  algorithms::native::NativeReno native(1460, 10 * 1460);
  const RunResult n = run_native(&native);
  const RunResult c = run_ccp("reno");
  EXPECT_GT(n.tput_mbps, 35.0);
  EXPECT_GT(c.tput_mbps, 35.0);
  // §3's claim: CCP preserves macroscopic behavior. Within 15%.
  EXPECT_NEAR(c.tput_mbps, n.tput_mbps, n.tput_mbps * 0.15);
}

TEST(Integration, CcpCubicMatchesNativeCubic) {
  algorithms::native::NativeCubic native(1460, 10 * 1460);
  const RunResult n = run_native(&native);
  const RunResult c = run_ccp("cubic");
  EXPECT_GT(n.tput_mbps, 30.0);
  EXPECT_GT(c.tput_mbps, 30.0);
  EXPECT_NEAR(c.tput_mbps, n.tput_mbps, n.tput_mbps * 0.25);
}

TEST(Integration, CcpVegasMatchesNativeVegas) {
  algorithms::native::NativeVegas native(1460, 10 * 1460);
  const RunResult n = run_native(&native);
  const RunResult c = run_ccp("vegas");
  // Vegas keeps the queue nearly empty; both variants should be loss-free
  // and in the same throughput regime.
  EXPECT_EQ(n.timeouts, 0u);
  EXPECT_EQ(c.timeouts, 0u);
  EXPECT_GT(c.tput_mbps, n.tput_mbps * 0.5);
  EXPECT_LT(c.tput_mbps, n.tput_mbps * 2.0);
}

TEST(Integration, CcpDctcpWithEcnIsLossFreeAndFast) {
  const RunResult c = run_ccp("dctcp", 8.0, /*ecn=*/true);
  EXPECT_GT(c.tput_mbps, 40.0);
  EXPECT_EQ(c.timeouts, 0u);
}

TEST(Integration, CcpBbrKeepsQueueEmpty) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
  Dumbbell net(q, cfg);
  SimCcpHost host(q, CcpHostConfig{});
  auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "bbr");
  host.start(at_s(8));
  TcpSenderConfig scfg;
  scfg.record_rtt_samples = true;
  auto& snd = net.add_flow(scfg, &flow, TimePoint::epoch());
  q.run_until(at_s(8));
  EXPECT_GT(snd.delivered_bytes() * 8.0 / 8.0 / 1e6, 40.0);
  // BBR's signature: median RTT ~= base RTT (no standing queue).
  EXPECT_LT(snd.rtt_samples().quantile(0.5), 11500.0);  // us
}

TEST(Integration, ReportsArriveOncePerRttNotPerAck) {
  const double secs = 5.0;
  const RunResult c = run_ccp("reno", secs);
  // ~10 ms RTT (plus queueing) over 5 s => on the order of a few hundred
  // reports; per-ACK reporting would be tens of thousands (§2.3).
  EXPECT_GT(c.reports, 100u);
  EXPECT_LT(c.reports, 2000u);
}

TEST(Integration, TwoCcpFlowsShareFairly) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
  Dumbbell net(q, cfg);
  SimCcpHost host(q, CcpHostConfig{});
  auto& f1 = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno");
  auto& f2 = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno");
  host.start(at_s(20));
  auto& s1 = net.add_flow(TcpSenderConfig{}, &f1, TimePoint::epoch());
  auto& s2 = net.add_flow(TcpSenderConfig{}, &f2, TimePoint::epoch());
  q.run_until(at_s(20));
  const double t1 = s1.delivered_bytes() * 8.0 / 20 / 1e6;
  const double t2 = s2.delivered_bytes() * 8.0 / 20 / 1e6;
  EXPECT_GT(t1 + t2, 40.0);  // link well utilized
  // Jain fairness for two flows.
  const double jain = (t1 + t2) * (t1 + t2) / (2.0 * (t1 * t1 + t2 * t2));
  EXPECT_GT(jain, 0.9);
}

TEST(Integration, MixedCcpAndNativeCoexist) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
  Dumbbell net(q, cfg);
  SimCcpHost host(q, CcpHostConfig{});
  auto& ccp_flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno");
  algorithms::native::NativeReno native(1460, 10 * 1460);
  host.start(at_s(20));
  auto& s1 = net.add_flow(TcpSenderConfig{}, &ccp_flow, TimePoint::epoch());
  auto& s2 = net.add_flow(TcpSenderConfig{}, &native, TimePoint::epoch());
  q.run_until(at_s(20));
  const double t1 = s1.delivered_bytes() * 8.0 / 20 / 1e6;
  const double t2 = s2.delivered_bytes() * 8.0 / 20 / 1e6;
  // Neither starves: the CCP flow competes on equal terms (§3 Figure 4's
  // premise).
  EXPECT_GT(t1, 10.0);
  EXPECT_GT(t2, 10.0);
}

TEST(Integration, DifferentAlgorithmsPerFlowOnOneHost) {
  // §2: "it is possible to run multiple algorithms on the same host".
  EventQueue q;
  auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
  Dumbbell net(q, cfg);
  SimCcpHost host(q, CcpHostConfig{});
  auto& f1 = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "cubic");
  auto& f2 = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "bbr");
  host.start(at_s(10));
  auto& s1 = net.add_flow(TcpSenderConfig{}, &f1, TimePoint::epoch());
  auto& s2 = net.add_flow(TcpSenderConfig{}, &f2, TimePoint::epoch());
  q.run_until(at_s(10));
  EXPECT_GT(s1.delivered_bytes(), 0u);
  EXPECT_GT(s2.delivered_bytes(), 0u);
  EXPECT_EQ(host.agent().stats().flows_created, 2u);
}

TEST(Integration, AgentPolicyCapsRate) {
  // Host policy (§2): per-connection maximum transmission rate.
  EventQueue q;
  auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
  Dumbbell net(q, cfg);
  CcpHostConfig hcfg;
  hcfg.agent.policy.max_cwnd_bytes = 20 * 1460.0;  // ~23 Mbit/s at 10 ms
  SimCcpHost host(q, hcfg);
  auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno");
  host.start(at_s(8));
  auto& snd = net.add_flow(TcpSenderConfig{}, &flow, TimePoint::epoch());
  q.run_until(at_s(8));
  const double tput = snd.delivered_bytes() * 8.0 / 8 / 1e6;
  EXPECT_LT(tput, 30.0);  // visibly capped below the 50 Mbit/s link
  EXPECT_EQ(snd.stats().timeouts, 0u);
}

TEST(Integration, IpcDelaySensitivity) {
  // §5 "Could CCP work at low RTTs?": higher IPC delay must not break
  // the control loop on WAN-ish RTTs.
  for (int delay_us : {5, 50, 500}) {
    EventQueue q;
    auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
    Dumbbell net(q, cfg);
    CcpHostConfig hcfg;
    hcfg.ipc_delay = Duration::from_micros(delay_us);
    SimCcpHost host(q, hcfg);
    auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno");
    host.start(at_s(6));
    auto& snd = net.add_flow(TcpSenderConfig{}, &flow, TimePoint::epoch());
    q.run_until(at_s(6));
    EXPECT_GT(snd.delivered_bytes() * 8.0 / 6 / 1e6, 30.0) << delay_us << "us";
  }
}

TEST(Integration, FlowCloseCleansUpBothSides) {
  EventQueue q;
  SimCcpHost host(q, CcpHostConfig{});
  auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno");
  host.start(at_s(1));
  q.run_until(at_s(0.1));
  EXPECT_EQ(host.agent().num_flows(), 1u);
  host.datapath().close_flow(flow.id(), q.now());
  q.run_until(at_s(0.2));
  EXPECT_EQ(host.datapath().num_flows(), 0u);
  EXPECT_EQ(host.agent().num_flows(), 0u);
}

TEST(Integration, DeterministicWithFixedSeed) {
  auto run_once = [] {
    EventQueue q;
    auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
    Dumbbell net(q, cfg);
    CcpHostConfig hcfg;
    hcfg.seed = 7;
    SimCcpHost host(q, hcfg);
    auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "cubic");
    host.start(at_s(3));
    auto& snd = net.add_flow(TcpSenderConfig{}, &flow, TimePoint::epoch());
    q.run_until(at_s(3));
    return std::make_pair(snd.delivered_bytes(), flow.reports_sent());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ccp::sim
