#include <gtest/gtest.h>

#include "lang/compiler.hpp"
#include "lang/disasm.hpp"

namespace ccp::lang {
namespace {

TEST(Disasm, CoversEveryOpcode) {
  // A program whose expressions exercise every opcode the compiler can
  // emit; the disassembler must render all of them without "?".
  auto compiled = compile_text(R"(
    fold {
      a := if(((1 < 2) && (3 > 2)) || ((4 <= 4) == (5 >= 5)),
              min(1, max(2, abs(-3))) + sqrt(4) * cbrt(8) - log(2) / exp(1),
              pow(2, 3) + ewma(a, Pkt.rtt, 0.5)) init 0;
      b := if((a != 0) && !(a == 1), $v, Pkt.bytes_acked) init $v;
    }
    control { Cwnd(a); Rate(b); Wait(100); WaitRtts(1.0); Report(); }
  )");
  const std::string listing = disassemble(compiled);
  EXPECT_EQ(listing.find('?'), std::string::npos) << listing;
  // Key forms present.
  for (const char* needle :
       {"init", "fold (per ACK)", "control[0] Cwnd", "control[4] Report",
        "Pkt.rtt", "$var[0]", "fold[0] <-", "select", "ewma", "min", "max",
        "sqrt", "cbrt", "pow"}) {
    EXPECT_NE(listing.find(needle), std::string::npos) << needle;
  }
}

TEST(Disasm, InstructionCountsMatch) {
  auto compiled = compile_text(R"(
    fold { x := x + Pkt.bytes_acked init 0; }
    control { WaitRtts(1.0); Report(); }
  )");
  const std::string fold = disassemble_block("fold", compiled.fold_block);
  // Header + one line per instruction.
  const size_t lines = std::count(fold.begin(), fold.end(), '\n');
  EXPECT_EQ(lines, compiled.fold_block.code.size() + 1);
}

TEST(Disasm, ConstantsRenderedWithValues) {
  auto compiled = compile_text(R"(
    control { Cwnd(14600); WaitRtts(0.5); Report(); }
  )");
  const std::string listing = disassemble(compiled);
  EXPECT_NE(listing.find("const 14600"), std::string::npos);
  EXPECT_NE(listing.find("const 0.5"), std::string::npos);
}

}  // namespace
}  // namespace ccp::lang
