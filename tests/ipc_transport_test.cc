#include <gtest/gtest.h>

#include <thread>

#include "ipc/transport.hpp"

namespace ccp::ipc {
namespace {

std::vector<uint8_t> bytes(std::initializer_list<uint8_t> list) { return list; }

enum class Kind { Unix, InProc, ShmBlocking, ShmBusy };

TransportPair make(Kind kind) {
  switch (kind) {
    case Kind::Unix: return make_unix_socket_pair();
    case Kind::InProc: return make_inproc_pair();
    case Kind::ShmBlocking: return make_shm_ring_pair(1 << 16, ShmWaitMode::Blocking);
    case Kind::ShmBusy: return make_shm_ring_pair(1 << 16, ShmWaitMode::BusyPoll);
  }
  return {};
}

class TransportTest : public ::testing::TestWithParam<Kind> {};

TEST_P(TransportTest, SendThenReceive) {
  auto pair = make(GetParam());
  auto msg = bytes({1, 2, 3, 4, 5});
  ASSERT_TRUE(pair.a->send_frame(msg));
  auto got = pair.b->recv_frame(Duration::from_secs(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, msg);
}

TEST_P(TransportTest, BothDirections) {
  auto pair = make(GetParam());
  ASSERT_TRUE(pair.a->send_frame(bytes({1})));
  ASSERT_TRUE(pair.b->send_frame(bytes({2})));
  auto at_b = pair.b->recv_frame(Duration::from_secs(1));
  auto at_a = pair.a->recv_frame(Duration::from_secs(1));
  ASSERT_TRUE(at_b.has_value());
  ASSERT_TRUE(at_a.has_value());
  EXPECT_EQ((*at_b)[0], 1);
  EXPECT_EQ((*at_a)[0], 2);
}

TEST_P(TransportTest, PreservesBoundariesAndOrder) {
  auto pair = make(GetParam());
  for (uint8_t i = 0; i < 50; ++i) {
    std::vector<uint8_t> frame(i + 1, i);
    ASSERT_TRUE(pair.a->send_frame(frame));
  }
  for (uint8_t i = 0; i < 50; ++i) {
    auto got = pair.b->recv_frame(Duration::from_secs(1));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->size(), static_cast<size_t>(i + 1));
    EXPECT_EQ((*got)[0], i);
  }
}

TEST_P(TransportTest, TryRecvNonBlocking) {
  auto pair = make(GetParam());
  EXPECT_FALSE(pair.b->try_recv_frame().has_value());
  ASSERT_TRUE(pair.a->send_frame(bytes({9})));
  // A frame may take an instant to land on threaded transports.
  std::optional<std::vector<uint8_t>> got;
  for (int i = 0; i < 1000 && !got; ++i) {
    got = pair.b->try_recv_frame();
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ((*got)[0], 9);
}

TEST_P(TransportTest, RecvTimesOut) {
  auto pair = make(GetParam());
  const TimePoint before = monotonic_now();
  auto got = pair.b->recv_frame(Duration::from_millis(30));
  EXPECT_FALSE(got.has_value());
  EXPECT_GE((monotonic_now() - before).millis(), 25);
}

TEST_P(TransportTest, LargeFrame) {
  auto pair = make(GetParam());
  std::vector<uint8_t> big(32 * 1024);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i * 31);
  ASSERT_TRUE(pair.a->send_frame(big));
  auto got = pair.b->recv_frame(Duration::from_secs(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, big);
}

TEST_P(TransportTest, ThreadedPingPong) {
  auto pair = make(GetParam());
  constexpr int kRounds = 500;
  std::thread echo([&] {
    for (int i = 0; i < kRounds; ++i) {
      auto got = pair.b->recv_frame(Duration::from_secs(5));
      if (!got) break;
      pair.b->send_frame(*got);
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    std::vector<uint8_t> msg = {static_cast<uint8_t>(i), static_cast<uint8_t>(i >> 8)};
    ASSERT_TRUE(pair.a->send_frame(msg));
    auto got = pair.a->recv_frame(Duration::from_secs(5));
    ASSERT_TRUE(got.has_value()) << "round " << i;
    ASSERT_EQ(*got, msg);
  }
  echo.join();
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportTest,
                         ::testing::Values(Kind::Unix, Kind::InProc,
                                           Kind::ShmBlocking, Kind::ShmBusy),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::Unix: return "Unix";
                             case Kind::InProc: return "InProc";
                             case Kind::ShmBlocking: return "ShmBlocking";
                             case Kind::ShmBusy: return "ShmBusy";
                           }
                           return "?";
                         });

TEST(UnixTransport, PeerCloseUnblocksReceiver) {
  auto pair = make_unix_socket_pair();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pair.a.reset();
  });
  auto got = pair.b->recv_frame(Duration::from_secs(5));
  EXPECT_FALSE(got.has_value());
  EXPECT_TRUE(pair.b->closed());
  closer.join();
}

TEST(UnixTransport, PeerCloseReportsDisconnectedStatus) {
  // EOF from the peer must surface as an explicit PeerDisconnected
  // status, not a generic close — the supervisor keys its reconnect
  // logic off this distinction (docs/RESILIENCE.md).
  auto pair = make_unix_socket_pair();
  EXPECT_EQ(pair.b->status(), TransportStatus::Ok);
  pair.a.reset();
  // Status latches when the receive path observes the hangup.
  auto got = pair.b->recv_frame(Duration::from_secs(1));
  EXPECT_FALSE(got.has_value());
  EXPECT_TRUE(pair.b->closed());
  EXPECT_EQ(pair.b->status(), TransportStatus::PeerDisconnected);
}

TEST(UnixTransport, SendToGonePeerReportsDisconnectedStatus) {
  auto pair = make_unix_socket_pair();
  pair.b.reset();
  // EPIPE/ECONNRESET on send (possibly after a buffered success) must
  // latch PeerDisconnected too.
  bool any_failed = false;
  for (int i = 0; i < 64 && !any_failed; ++i) {
    any_failed = !pair.a->send_frame(bytes({1, 2, 3}));
  }
  EXPECT_TRUE(any_failed);
  EXPECT_EQ(pair.a->status(), TransportStatus::PeerDisconnected);
}

TEST(TransportStatusNames, AreStable) {
  EXPECT_STREQ(transport_status_name(TransportStatus::Ok), "ok");
  EXPECT_STREQ(transport_status_name(TransportStatus::PeerDisconnected),
               "peer_disconnected");
  EXPECT_STREQ(transport_status_name(TransportStatus::Error), "error");
}

TEST(ShmRing, FullRingRejectsWithoutCorruption) {
  auto pair = make_shm_ring_pair(4096, ShmWaitMode::BusyPoll);
  std::vector<uint8_t> frame(1000, 0x5a);
  int accepted = 0;
  while (pair.a->send_frame(frame)) ++accepted;
  EXPECT_GT(accepted, 1);
  // Drain and verify every accepted frame intact.
  for (int i = 0; i < accepted; ++i) {
    auto got = pair.b->try_recv_frame();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, frame);
  }
  EXPECT_FALSE(pair.b->try_recv_frame().has_value());
  // Space freed: sending works again.
  EXPECT_TRUE(pair.a->send_frame(frame));
}

TEST(InProcTransport, CloseDrainsRemainingFrames) {
  auto pair = make_inproc_pair();
  pair.a->send_frame(bytes({1}));
  pair.a->send_frame(bytes({2}));
  pair.a.reset();  // peer gone, but queued frames must still deliver
  auto f1 = pair.b->try_recv_frame();
  auto f2 = pair.b->try_recv_frame();
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_TRUE(pair.b->closed());
}

}  // namespace
}  // namespace ccp::ipc
