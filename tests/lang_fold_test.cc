#include <gtest/gtest.h>

#include "lang/compiler.hpp"
#include "lang/vm.hpp"

namespace ccp::lang {
namespace {

CompiledProgram compile_or_die(const char* src) { return compile_text(src); }

TEST(FoldMachine, InitEvaluatesAtInstall) {
  auto prog = compile_or_die(R"(
    fold { x := x + 1 init 41; }
    control { Report(); }
  )");
  FoldMachine fm;
  fm.install(&prog, {});
  EXPECT_DOUBLE_EQ(fm.state()[0], 41.0);
  fm.on_packet({});
  EXPECT_DOUBLE_EQ(fm.state()[0], 42.0);
}

TEST(FoldMachine, InitCanUseVars) {
  auto prog = compile_or_die(R"(
    fold { x := x init $start; }
    control { Report(); }
  )");
  FoldMachine fm;
  std::vector<double> vars(prog.num_vars());
  vars[static_cast<size_t>(prog.var_index("start"))] = 7.5;
  fm.install(&prog, vars);
  EXPECT_DOUBLE_EQ(fm.state()[0], 7.5);
}

TEST(FoldMachine, SequentialSemantics) {
  // Later registers see earlier registers' *new* values in the same
  // fold step — the paper's Vegas fold relies on this (inQ uses
  // new.baseRtt).
  auto prog = compile_or_die(R"(
    fold {
      a := Pkt.bytes_acked init 0;
      b := a * 2 init 0;
    }
    control { Report(); }
  )");
  FoldMachine fm;
  fm.install(&prog, {});
  PktInfo pkt_info;
  pkt_info.bytes_acked = 10;
  fm.on_packet(pkt_info);
  EXPECT_DOUBLE_EQ(fm.state()[0], 10.0);
  EXPECT_DOUBLE_EQ(fm.state()[1], 20.0);  // saw the new `a`
}

TEST(FoldMachine, VolatileResetsOnReport) {
  auto prog = compile_or_die(R"(
    fold {
      volatile counter := counter + 1 init 0;
      keeper := keeper + 1 init 100;
    }
    control { Report(); }
  )");
  FoldMachine fm;
  fm.install(&prog, {});
  fm.on_packet({});
  fm.on_packet({});
  EXPECT_DOUBLE_EQ(fm.state()[0], 2.0);
  EXPECT_DOUBLE_EQ(fm.state()[1], 102.0);
  fm.reset_volatile();
  EXPECT_DOUBLE_EQ(fm.state()[0], 0.0);    // volatile resets
  EXPECT_DOUBLE_EQ(fm.state()[1], 102.0);  // persistent survives
}

TEST(FoldMachine, UrgentFiresOnChangeOnly) {
  auto prog = compile_or_die(R"(
    fold {
      volatile loss := loss + Pkt.lost init 0 urgent;
      acked := acked + Pkt.bytes_acked init 0;
    }
    control { Report(); }
  )");
  FoldMachine fm;
  fm.install(&prog, {});
  PktInfo clean;
  clean.bytes_acked = 100;
  EXPECT_FALSE(fm.on_packet(clean));  // loss unchanged: no urgent
  PktInfo lossy;
  lossy.lost_packets = 1;
  EXPECT_TRUE(fm.on_packet(lossy));   // loss changed: urgent
  EXPECT_FALSE(fm.on_packet(clean));  // back to quiet
}

TEST(FoldMachine, UpdateVarsKeepsFoldState) {
  auto prog = compile_or_die(R"(
    fold { sum := sum + $inc init 0; }
    control { Cwnd(sum); WaitRtts(1.0); Report(); }
  )");
  FoldMachine fm;
  fm.install(&prog, {5.0});
  fm.on_packet({});
  EXPECT_DOUBLE_EQ(fm.state()[0], 5.0);
  fm.update_vars({3.0});
  fm.on_packet({});
  EXPECT_DOUBLE_EQ(fm.state()[0], 8.0);  // state survived the rebind
}

TEST(FoldMachine, UpdateVarsValidatesCount) {
  auto prog = compile_or_die(R"(
    fold { x := $a + $b init 0; }
    control { Report(); }
  )");
  FoldMachine fm;
  fm.install(&prog, {1.0, 2.0});
  EXPECT_THROW(fm.update_vars({1.0}), std::invalid_argument);
  EXPECT_THROW(fm.install(&prog, {1.0}), std::invalid_argument);
}

TEST(FoldMachine, ReinstallResetsState) {
  auto prog = compile_or_die(R"(
    fold { x := x + 1 init 0; }
    control { Report(); }
  )");
  FoldMachine fm;
  fm.install(&prog, {});
  fm.on_packet({});
  fm.on_packet({});
  EXPECT_DOUBLE_EQ(fm.state()[0], 2.0);
  fm.install(&prog, {});
  EXPECT_DOUBLE_EQ(fm.state()[0], 0.0);
}

TEST(FoldMachine, PaperVegasFold) {
  // The §2.4 fold listing: baseRtt min + delta accumulation.
  auto prog = compile_or_die(R"(
    fold {
      baseRtt := if(Pkt.rtt > 0, min(baseRtt, Pkt.rtt), baseRtt) init 1e9;
      volatile delta :=
          if((Pkt.rtt - baseRtt) * ($cwnd / Pkt.mss) / baseRtt < 2,
             delta + 1,
             if((Pkt.rtt - baseRtt) * ($cwnd / Pkt.mss) / baseRtt > 4,
                delta - 1,
                delta))
          init 0;
    }
    control { Cwnd($cwnd); WaitRtts(1.0); Report(); }
  )");
  FoldMachine fm;
  std::vector<double> vars(prog.num_vars(), 0.0);
  vars[static_cast<size_t>(prog.var_index("cwnd"))] = 10 * 1460.0;
  fm.install(&prog, vars);

  PktInfo pkt_info;
  pkt_info.mss = 1460;
  pkt_info.rtt_us = 10000;  // base
  fm.on_packet(pkt_info);
  EXPECT_DOUBLE_EQ(fm.state()[0], 10000.0);
  EXPECT_DOUBLE_EQ(fm.state()[1], 1.0);  // no queue: increase

  pkt_info.rtt_us = 20000;  // inQ = (10000/10000)*10 = 10 > 4: decrease
  fm.on_packet(pkt_info);
  EXPECT_DOUBLE_EQ(fm.state()[1], 0.0);

  pkt_info.rtt_us = 13000;  // inQ = 3: hold
  fm.on_packet(pkt_info);
  EXPECT_DOUBLE_EQ(fm.state()[1], 0.0);
}

TEST(FoldMachine, UninstalledIsInert) {
  FoldMachine fm;
  EXPECT_FALSE(fm.installed());
  EXPECT_FALSE(fm.on_packet({}));
  EXPECT_THROW(fm.update_vars({}), std::logic_error);
}

}  // namespace
}  // namespace ccp::lang
