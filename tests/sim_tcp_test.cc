#include <gtest/gtest.h>

#include "algorithms/native/native_reno.hpp"
#include "sim/dumbbell.hpp"
#include "sim/tcp.hpp"

namespace ccp::sim {
namespace {

TimePoint at_ms(int64_t ms) { return TimePoint::epoch() + Duration::from_millis(ms); }

// ------------------------------------------------------------- receiver

struct AckLog {
  std::vector<Packet> acks;
  TcpReceiver::Egress egress() {
    return [this](Packet p) { acks.push_back(p); };
  }
};

Packet seg(uint64_t seq, uint32_t len, TimePoint ts = {}) {
  Packet p;
  p.seq = seq;
  p.len = len;
  p.ts_val = ts;
  return p;
}

TEST(TcpReceiver, CumulativeAckAdvances) {
  EventQueue q;
  AckLog log;
  TcpReceiver rx(q, 0, {}, log.egress());
  rx.on_data(seg(0, 1000));
  rx.on_data(seg(1000, 1000));
  ASSERT_EQ(log.acks.size(), 2u);
  EXPECT_EQ(log.acks[0].ack_seq, 1000u);
  EXPECT_EQ(log.acks[1].ack_seq, 2000u);
  EXPECT_TRUE(log.acks[1].is_ack);
}

TEST(TcpReceiver, OutOfOrderBuffersAndSacks) {
  EventQueue q;
  AckLog log;
  TcpReceiver rx(q, 0, {}, log.egress());
  rx.on_data(seg(0, 1000));
  rx.on_data(seg(2000, 1000));  // hole at 1000
  ASSERT_EQ(log.acks.size(), 2u);
  EXPECT_EQ(log.acks[1].ack_seq, 1000u);  // dupack
  ASSERT_EQ(log.acks[1].num_sacks, 1);
  EXPECT_EQ(log.acks[1].sack_start[0], 2000u);
  EXPECT_EQ(log.acks[1].sack_end[0], 3000u);
  // Filling the hole advances past everything buffered.
  rx.on_data(seg(1000, 1000));
  EXPECT_EQ(log.acks[2].ack_seq, 3000u);
  EXPECT_EQ(log.acks[2].num_sacks, 0);
}

TEST(TcpReceiver, MergesAdjacentOooRanges) {
  EventQueue q;
  AckLog log;
  TcpReceiver rx(q, 0, {}, log.egress());
  rx.on_data(seg(2000, 1000));
  rx.on_data(seg(4000, 1000));
  rx.on_data(seg(3000, 1000));  // bridges the two ranges
  ASSERT_EQ(log.acks.size(), 3u);
  ASSERT_EQ(log.acks[2].num_sacks, 1);
  EXPECT_EQ(log.acks[2].sack_start[0], 2000u);
  EXPECT_EQ(log.acks[2].sack_end[0], 5000u);
}

TEST(TcpReceiver, DuplicateDataReAcked) {
  EventQueue q;
  AckLog log;
  TcpReceiver rx(q, 0, {}, log.egress());
  rx.on_data(seg(0, 1000));
  rx.on_data(seg(0, 1000));  // duplicate
  ASSERT_EQ(log.acks.size(), 2u);
  EXPECT_EQ(log.acks[1].ack_seq, 1000u);
}

TEST(TcpReceiver, EchoesTimestampAndCe) {
  EventQueue q;
  AckLog log;
  TcpReceiver rx(q, 0, {}, log.egress());
  Packet p = seg(0, 1000, at_ms(123));
  p.ce = true;
  rx.on_data(p);
  ASSERT_EQ(log.acks.size(), 1u);
  EXPECT_EQ(log.acks[0].ts_echo, at_ms(123));
  EXPECT_TRUE(log.acks[0].ece);
}

TEST(TcpReceiver, DelayedAckCoalesces) {
  EventQueue q;
  AckLog log;
  TcpReceiverConfig cfg;
  cfg.delayed_ack = true;
  TcpReceiver rx(q, 0, cfg, log.egress());
  rx.on_data(seg(0, 1000));
  EXPECT_TRUE(log.acks.empty());  // first segment held
  rx.on_data(seg(1000, 1000));
  ASSERT_EQ(log.acks.size(), 1u);  // 2nd forces the ACK
  EXPECT_EQ(log.acks[0].ack_seq, 2000u);
}

TEST(TcpReceiver, DelayedAckTimerFires) {
  EventQueue q;
  AckLog log;
  TcpReceiverConfig cfg;
  cfg.delayed_ack = true;
  TcpReceiver rx(q, 0, cfg, log.egress());
  rx.on_data(seg(0, 1000));
  q.run_until(at_ms(5));
  ASSERT_EQ(log.acks.size(), 1u);  // 1 ms delayed-ack timer
}

// --------------------------------------------------------------- sender

/// Fixed-window CC for driving the sender deterministically.
class FixedWindow final : public datapath::CcModule {
 public:
  explicit FixedWindow(uint64_t cwnd, double rate = 0) : cwnd_(cwnd), rate_(rate) {}
  void on_ack(const datapath::AckEvent& ev) override { acks.push_back(ev); }
  void on_loss(const datapath::LossEvent&) override { ++losses; }
  void on_timeout(const datapath::TimeoutEvent&) override { ++timeouts; }
  void on_send(const datapath::SendEvent&) override {}
  void tick(TimePoint) override {}
  uint64_t cwnd_bytes() const override { return cwnd_; }
  double pacing_rate_bps() const override { return rate_; }

  uint64_t cwnd_;
  double rate_;
  std::vector<datapath::AckEvent> acks;
  int losses = 0;
  int timeouts = 0;
};

struct SenderHarness {
  EventQueue q;
  FixedWindow cc;
  std::vector<Packet> wire;
  std::unique_ptr<TcpSender> snd;

  explicit SenderHarness(uint64_t cwnd, TcpSenderConfig cfg = {}, double rate = 0)
      : cc(cwnd, rate) {
    snd = std::make_unique<TcpSender>(q, 0, cfg, &cc,
                                      [this](Packet p) { wire.push_back(p); });
  }

  Packet ack_for(uint64_t ack_seq, TimePoint ts_echo = {}) {
    Packet a;
    a.is_ack = true;
    a.ack_seq = ack_seq;
    a.ts_echo = ts_echo;
    return a;
  }
};

TEST(TcpSender, RespectsWindow) {
  SenderHarness h(5 * 1460);
  h.snd->start();
  EXPECT_EQ(h.wire.size(), 5u);
  EXPECT_EQ(h.snd->bytes_in_flight(), 5u * 1460u);
}

TEST(TcpSender, AcksReleaseNewData) {
  SenderHarness h(5 * 1460);
  h.snd->start();
  h.snd->on_ack(h.ack_for(1460, h.wire[0].ts_val));
  EXPECT_EQ(h.wire.size(), 6u);
  EXPECT_EQ(h.snd->delivered_bytes(), 1460u);
  ASSERT_EQ(h.cc.acks.size(), 1u);
  EXPECT_EQ(h.cc.acks[0].bytes_acked, 1460u);
}

TEST(TcpSender, RttSampleFromTimestampEcho) {
  SenderHarness h(2 * 1460);
  h.snd->start();
  h.q.run_until(at_ms(7));
  h.snd->on_ack(h.ack_for(1460, h.wire[0].ts_val));
  EXPECT_EQ(h.snd->last_rtt().millis(), 7);
}

TEST(TcpSender, FiniteTransferCompletes) {
  TcpSenderConfig cfg;
  cfg.bytes_to_send = 10 * 1460;
  SenderHarness h(100 * 1460, cfg);
  h.snd->start();
  EXPECT_EQ(h.wire.size(), 10u);
  for (int i = 1; i <= 10; ++i) {
    h.snd->on_ack(h.ack_for(static_cast<uint64_t>(i) * 1460));
  }
  EXPECT_TRUE(h.snd->done());
  EXPECT_EQ(h.wire.size(), 10u);  // nothing extra sent
}

TEST(TcpSender, SackLossDetectionTriggersFastRetransmit) {
  SenderHarness h(10 * 1460);
  h.snd->start();
  ASSERT_EQ(h.wire.size(), 10u);
  // Segment 0 lost; segments 1..4 arrive and are SACKed.
  for (int i = 1; i <= 4; ++i) {
    Packet a = h.ack_for(0);
    a.num_sacks = 1;
    a.sack_start[0] = 1460;
    a.sack_end[0] = static_cast<uint64_t>(1 + i) * 1460;
    h.snd->on_ack(a);
  }
  EXPECT_EQ(h.cc.losses, 1);
  EXPECT_GE(h.snd->stats().fast_retransmits, 1u);
  // The retransmission of segment 0 went out.
  bool rexmit_zero = false;
  for (const auto& p : h.wire) {
    if (p.retransmit && p.seq == 0) rexmit_zero = true;
  }
  EXPECT_TRUE(rexmit_zero);
}

TEST(TcpSender, RtoFiresAndBacksOff) {
  TcpSenderConfig cfg;
  cfg.min_rto = Duration::from_millis(50);
  SenderHarness h(4 * 1460, cfg);
  h.snd->start();
  // Establish an RTT estimate (7 ms) so RTO clamps to min_rto.
  h.q.run_until(at_ms(7));
  h.snd->on_ack(h.ack_for(1460, h.wire[0].ts_val));
  // No further ACKs: the RTO (50 ms after the ack) must fire.
  h.q.run_until(at_ms(80));
  EXPECT_EQ(h.cc.timeouts, 1);
  EXPECT_GE(h.snd->stats().retransmits, 1u);
  // Exponential backoff: the next RTO takes ~100 ms more.
  h.q.run_until(at_ms(110));
  EXPECT_EQ(h.snd->stats().timeouts, 1u);
  h.q.run_until(at_ms(220));
  EXPECT_EQ(h.snd->stats().timeouts, 2u);
}

TEST(TcpSender, NoRtoWhenIdle) {
  TcpSenderConfig cfg;
  cfg.min_rto = Duration::from_millis(50);
  cfg.bytes_to_send = 1460;
  SenderHarness h(10 * 1460, cfg);
  h.snd->start();
  h.snd->on_ack(h.ack_for(1460));
  h.q.run_until(at_ms(500));
  EXPECT_EQ(h.cc.timeouts, 0);
}

TEST(TcpSender, PacingSpacesTransmissions) {
  // 1460+40 bytes per 10 ms => 150 kB/s.
  TcpSenderConfig cfg;
  SenderHarness h(100 * 1460, cfg, /*rate=*/150000.0);
  h.snd->start();
  h.q.run_until(at_ms(95));
  // Roughly one packet per 10 ms, not a window burst.
  EXPECT_GE(h.wire.size(), 8u);
  EXPECT_LE(h.wire.size(), 12u);
}

TEST(TcpSender, TailLossProbeElicitsRecovery) {
  TcpSenderConfig cfg;
  cfg.min_rto = Duration::from_millis(500);  // keep RTO out of the way
  SenderHarness h(10 * 1460, cfg);
  h.snd->start();
  // Establish an RTT estimate.
  h.q.run_until(at_ms(10));
  h.snd->on_ack(h.ack_for(1460, h.wire[0].ts_val));
  // Everything else (the tail) is lost: no more ACKs arrive.
  h.q.run_until(at_ms(120));
  EXPECT_GE(h.snd->stats().tail_loss_probes, 1u);
  EXPECT_EQ(h.cc.timeouts, 0);  // TLP beat the RTO
}

TEST(TcpSender, EcnEchoReachesCcModule) {
  SenderHarness h(5 * 1460);
  h.snd->start();
  Packet a = h.ack_for(1460);
  a.ece = true;
  h.snd->on_ack(a);
  ASSERT_EQ(h.cc.acks.size(), 1u);
  EXPECT_TRUE(h.cc.acks[0].ecn);
}

TEST(TcpSender, KarnRuleSkipsRetransmittedSamples) {
  SenderHarness h(2 * 1460);
  h.snd->start();
  h.q.run_until(at_ms(1100));  // default 1s RTO: segment 0 retransmitted
  ASSERT_GE(h.snd->stats().retransmits, 1u);
  // ACK covering the retransmitted range: no RTT sample taken.
  h.snd->on_ack(h.ack_for(1460, h.wire.back().ts_val));
  EXPECT_TRUE(h.snd->last_rtt().is_zero());
}

// ------------------------------------------------------- end-to-end loop

TEST(TcpEndToEnd, WindowLimitedTransferIsLossless) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(10e6, Duration::from_millis(10), 1.0);
  Dumbbell net(q, cfg);
  // A fixed window below BDP can never overflow the queue.
  FixedWindow cc(5 * 1460);
  TcpSenderConfig scfg;
  scfg.bytes_to_send = 500 * 1460;
  auto& snd = net.add_flow(scfg, &cc, TimePoint::epoch());
  q.run_until(at_ms(10000));
  EXPECT_TRUE(snd.done());
  EXPECT_EQ(net.receiver(0).received_bytes(), 500u * 1460u);
  EXPECT_EQ(snd.stats().timeouts, 0u);
  EXPECT_EQ(snd.stats().retransmits, 0u);
  EXPECT_EQ(net.bottleneck().stats().dropped_pkts, 0u);
}

TEST(TcpEndToEnd, SurvivesSevereBufferPressure) {
  EventQueue q;
  // A tiny ~2-packet buffer forces heavy loss; the transfer must still
  // complete correctly.
  auto cfg = DumbbellConfig::make(10e6, Duration::from_millis(10), 0.25);
  Dumbbell net(q, cfg);
  algorithms::native::NativeReno reno(1460, 10 * 1460);
  TcpSenderConfig scfg;
  scfg.bytes_to_send = 300 * 1460;
  auto& snd = net.add_flow(scfg, &reno, TimePoint::epoch());
  q.run_until(at_ms(30000));
  EXPECT_TRUE(snd.done());
  EXPECT_EQ(net.receiver(0).received_bytes(), 300u * 1460u);
  EXPECT_GT(snd.stats().retransmits, 0u);
}

TEST(TcpEndToEnd, DeterministicAcrossRuns) {
  auto run_once = [] {
    EventQueue q;
    auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
    Dumbbell net(q, cfg);
    algorithms::native::NativeReno reno(1460, 10 * 1460);
    auto& snd = net.add_flow(TcpSenderConfig{}, &reno, TimePoint::epoch());
    q.run_until(at_ms(2000));
    return std::make_tuple(snd.delivered_bytes(), snd.stats().retransmits,
                           snd.stats().segments_sent);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ccp::sim
