// Tests for the two-tier slab flow store (datapath/flow_table.hpp):
// generation-tagged handles, parked-slot recycling, hint interning, the
// incremental index rehash (bounded steps, wire-invisible), and a
// million-flow churn soak sized down under sanitizers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "datapath/datapath.hpp"
#include "datapath/flow_table.hpp"
#include "ipc/wire.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

#ifndef __has_feature
#define __has_feature(x) 0
#endif

namespace ccp::datapath {
namespace {

// The soak covers the same population the churn bench runs at; under
// ASan/TSan the shadow-memory cost of a multi-GB slab would dominate the
// suite, so sanitized builds soak a smaller (still multi-grow) table.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr size_t kSoakFlows = 65'536;
constexpr size_t kSoakChurnOps = 50'000;
#else
constexpr size_t kSoakFlows = 1'000'000;
constexpr size_t kSoakChurnOps = 200'000;
#endif

MessageSink null_sink() {
  return [](const ipc::Message&, bool) {};
}

FlowConfig small_cfg() {
  FlowConfig cfg;
  cfg.rate_ring_entries = 16;  // keep per-flow memory modest in the soak
  return cfg;
}

TEST(FlowTable, HandleGoesStaleOnCloseAndStaysStaleAfterRecycle) {
  FlowTable table;
  table.set_sink(null_sink());
  FlowConfig cfg;

  CcpFlow& a = table.create(7, cfg, "reno");
  const FlowHandle h = table.handle_of(7);
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(table.at(h), &a);

  ASSERT_TRUE(table.erase(7));
  EXPECT_EQ(table.at(h), nullptr) << "handle must die with its flow";

  // The LIFO free list recycles the slot for the next create. The old
  // handle names the same slot but the generation no longer matches, so
  // it must NOT resolve to the new tenant.
  CcpFlow& b = table.create(8, cfg, "reno");
  const FlowHandle h2 = table.handle_of(8);
  ASSERT_TRUE(h2.valid());
  ASSERT_EQ(h2.slot, h.slot) << "test premise: slot was recycled";
  EXPECT_NE(h2.generation, h.generation);
  EXPECT_EQ(table.at(h), nullptr);
  EXPECT_EQ(table.at(h2), &b);
}

TEST(FlowTable, RecycleReusesTheFlowObject) {
  FlowTable table;
  table.set_sink(null_sink());
  FlowConfig cfg;

  CcpFlow* first = &table.create(1, cfg, "reno");
  ASSERT_TRUE(table.erase(1));
  CcpFlow* second = &table.create(2, cfg, "cubic");
  EXPECT_EQ(first, second)
      << "a parked slot must recycle its CcpFlow, not construct a new one";
  EXPECT_EQ(second->id(), 2u);
  EXPECT_EQ(table.stats().recycles, 1u);
  EXPECT_EQ(table.stats().creates, 2u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, HintsAreInternedOnePooledStringPerName) {
  FlowTable table;
  table.set_sink(null_sink());
  FlowConfig cfg;
  for (ipc::FlowId id = 1; id <= 100; ++id) {
    table.create(id, cfg, (id % 2) == 0 ? "reno" : "cubic");
  }
  // Pool: "" (slot 0) + the two real names, regardless of flow count.
  EXPECT_EQ(table.distinct_hints(), 3u);
  EXPECT_EQ(table.hint_of(2), "reno");
  EXPECT_EQ(table.hint_of(3), "cubic");
  ASSERT_TRUE(table.erase(2));
  EXPECT_EQ(table.hint_of(2), "");
}

TEST(FlowTable, FindMarkReportsFreshOncePerStamp) {
  FlowTable table;
  table.set_sink(null_sink());
  FlowConfig cfg;
  CcpFlow& f = table.create(42, cfg, "reno");

  bool fresh = false;
  EXPECT_EQ(table.find_mark(42, 1, fresh), &f);
  EXPECT_TRUE(fresh) << "first resolve under a stamp is fresh";
  EXPECT_EQ(table.find_mark(42, 1, fresh), &f);
  EXPECT_FALSE(fresh) << "repeat resolve under the same stamp is deduped";
  EXPECT_EQ(table.find_mark(42, 2, fresh), &f);
  EXPECT_TRUE(fresh) << "a new stamp (new burst) starts over";

  EXPECT_EQ(table.find_mark(999, 2, fresh), nullptr);
  EXPECT_FALSE(fresh);
}

TEST(FlowTable, LookupsStayCorrectWhileARehashDrains) {
  FlowTable table;
  table.set_sink(null_sink());
  FlowConfig cfg;

  // Fill past several doublings with the drain throttled to tiny steps,
  // so lookups and erases run against a live cur_/old_ split.
  constexpr size_t kFlows = 4096;
  constexpr size_t kStepBudget = 16;
  size_t next_id = 1;
  bool saw_pending = false;
  std::vector<ipc::FlowId> live;
  for (size_t i = 0; i < kFlows; ++i) {
    const ipc::FlowId id = static_cast<ipc::FlowId>(next_id++);
    table.create(id, cfg, "reno");
    live.push_back(id);
    if (table.rehash_pending()) {
      saw_pending = true;
      table.rehash_step(kStepBudget);
      // Mid-drain: a recent insert, an old insert, and a miss.
      EXPECT_NE(table.find(id), nullptr);
      EXPECT_NE(table.find(live[live.size() / 2]), nullptr);
      EXPECT_EQ(table.find(0xdead0000u + static_cast<uint32_t>(i)), nullptr);
      // Erase an old entry mid-drain; it must not resurrect from old_.
      const ipc::FlowId victim = live[live.size() / 3];
      EXPECT_TRUE(table.erase(victim));
      EXPECT_EQ(table.find(victim), nullptr);
      live.erase(live.begin() + static_cast<long>(live.size() / 3));
    }
  }
  ASSERT_TRUE(saw_pending) << "test premise: growth must overlap traffic";

  while (table.rehash_pending()) table.rehash_step(kStepBudget);
  for (const ipc::FlowId id : live) {
    EXPECT_NE(table.find(id), nullptr);
  }
  EXPECT_EQ(table.size(), live.size());

  const FlowTable::Stats& st = table.stats();
  EXPECT_GT(st.grows, 0u);
  EXPECT_EQ(st.forced_drains, 0u)
      << "the insert-time budget must drain old_ before the next grow";
  EXPECT_LE(st.max_step_buckets, kStepBudget)
      << "no single migration step may exceed the largest budget given";
}

/// The agent-visible contract of the incremental rehash: a datapath that
/// starts small and grows through every doubling emits byte-for-byte the
/// same frames as one pre-sized for the whole population
/// (DatapathConfig::expected_flows), under an identical workload of
/// creates, installs, ACK bursts, closes, and ticks.
TEST(FlowTable, IncrementalRehashIsByteIdenticalOnTheWire) {
  constexpr size_t kFlows = 512;
  constexpr uint64_t kBursts = 400;

  // Reports stamp emitted_ns from the real monotonic clock when
  // telemetry is on; turn it off so both runs are fully deterministic
  // and the comparison pins the flow table, not the clock.
  const bool telemetry_was_on = telemetry::enabled();
  telemetry::set_enabled(false);

  const auto run = [&](size_t expected_flows) {
    std::vector<uint8_t> wire;
    DatapathConfig dcfg;
    dcfg.flush_interval = Duration::from_millis(1);
    dcfg.max_batch_msgs = 32;
    dcfg.expected_flows = expected_flows;
    dcfg.rehash_step_buckets = 32;  // growing side: drain in small steps
    CcpDatapath dp(dcfg, [&wire](std::span<const uint8_t> frame) {
      wire.insert(wire.end(), frame.begin(), frame.end());
    });

    TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
    Rng rng(1234);
    FlowConfig fcfg;
    std::vector<ipc::FlowId> ids;
    ipc::InstallMsg ins;
    ins.program_text =
        "fold { r := r + Pkt.bytes_acked init 0; }\n"
        "control { WaitRtts(1.0); Report(); }";
    for (size_t i = 0; i < kFlows; ++i) {
      now += Duration::from_micros(3);
      ids.push_back(dp.create_flow(fcfg, "reno", now).id());
      ins.flow_id = ids.back();
      dp.handle_frame(ipc::encode_frame(ipc::Message{ins}), now);
    }

    std::vector<FlowAck> burst(32);
    for (FlowAck& fa : burst) {
      fa.sent_bytes = 1500;
      fa.ev.bytes_acked = 1500;
      fa.ev.packets_acked = 1;
      fa.ev.bytes_in_flight = 64 * 1500;
      fa.ev.packets_in_flight = 64;
    }
    for (uint64_t b = 0; b < kBursts; ++b) {
      for (FlowAck& fa : burst) {
        now += Duration::from_micros(1);
        fa.flow_id = ids[rng.next_below(ids.size())];
        // No live flow may be missed or misresolved, drain or no drain.
        CcpFlow* f = dp.flow(fa.flow_id);
        EXPECT_NE(f, nullptr) << "live flow missed mid-drain, burst " << b;
        EXPECT_EQ(f->id(), fa.flow_id);
        fa.ev.now = now;
        fa.ev.rtt_sample = Duration::from_millis(10) +
                           Duration::from_nanos(static_cast<int64_t>(
                               rng.next_below(1024) * 1000));
      }
      dp.on_ack_batch(burst);
      // Steady churn keeps inserts landing while old_ drains.
      const size_t j = static_cast<size_t>(rng.next_below(ids.size()));
      dp.close_flow(ids[j], now);
      ids[j] = dp.create_flow(fcfg, "reno", now).id();
      ins.flow_id = ids[j];
      dp.handle_frame(ipc::encode_frame(ipc::Message{ins}), now);
      if ((b & 15) == 15) dp.tick(now);
    }
    dp.flush();
    return std::pair{std::move(wire), dp.flow_table().stats()};
  };

  auto [wire_presized, stats_presized] = run(kFlows * 2);
  auto [wire_grown, stats_grown] = run(0);

  ASSERT_EQ(stats_presized.grows, 0u)
      << "test premise: the pre-sized table must never grow";
  ASSERT_GT(stats_grown.grows, 2u)
      << "test premise: the growing table must rehash during traffic";
  EXPECT_EQ(stats_grown.forced_drains, 0u);
  EXPECT_LE(stats_grown.max_step_buckets, 32u);

  ASSERT_FALSE(wire_presized.empty());
  size_t first_diff = 0;
  const size_t common = std::min(wire_presized.size(), wire_grown.size());
  while (first_diff < common &&
         wire_presized[first_diff] == wire_grown[first_diff]) {
    ++first_diff;
  }
  EXPECT_EQ(wire_presized, wire_grown)
      << "incremental rehash must be invisible on the wire; sizes "
      << wire_presized.size() << " vs " << wire_grown.size()
      << ", first differing byte at offset " << first_diff;
  telemetry::set_enabled(telemetry_was_on);
}

TEST(FlowTable, MillionFlowChurnSoak) {
  FlowTable table;
  table.set_sink(null_sink());
  const FlowConfig cfg = small_cfg();

  // Build up: a fresh table grown incrementally through every doubling,
  // a few ids probed along the way.
  for (size_t i = 0; i < kSoakFlows; ++i) {
    table.create(static_cast<ipc::FlowId>(i + 1), cfg, "reno");
    if (table.rehash_pending()) table.rehash_step(128);
  }
  ASSERT_EQ(table.size(), kSoakFlows);
  EXPECT_EQ(table.stats().forced_drains, 0u);
  EXPECT_LE(table.stats().max_step_buckets, 128u);
  EXPECT_LE(table.load_factor(), 0.75);

  // Steady churn: uniform close->create over the whole population. The
  // table is at capacity, so every create must be served by a parked
  // slot (pure recycling) and the id index must stay exact.
  Rng rng(99);
  const uint64_t recycles_before = table.stats().recycles;
  ipc::FlowId next_id = static_cast<ipc::FlowId>(kSoakFlows + 1);
  std::vector<ipc::FlowId> resident(kSoakFlows);
  for (size_t i = 0; i < kSoakFlows; ++i) {
    resident[i] = static_cast<ipc::FlowId>(i + 1);
  }
  for (size_t op = 0; op < kSoakChurnOps; ++op) {
    const size_t j = static_cast<size_t>(rng.next_below(resident.size()));
    ASSERT_TRUE(table.erase(resident[j]));
    const ipc::FlowId id = next_id++;
    table.create(id, cfg, "reno");
    resident[j] = id;
    if (table.rehash_pending()) table.rehash_step(128);
  }
  EXPECT_EQ(table.size(), kSoakFlows);
  EXPECT_EQ(table.stats().recycles - recycles_before, kSoakChurnOps)
      << "churn at capacity must be 100% parked-slot recycling";
  EXPECT_EQ(table.stats().forced_drains, 0u);
  EXPECT_LE(table.stats().max_step_buckets, 128u);

  // Spot-check the index after churn: residents resolve, closed ids do
  // not, and handles taken now survive a find-heavy pass.
  for (size_t k = 0; k < 1000; ++k) {
    const size_t j = static_cast<size_t>(rng.next_below(resident.size()));
    CcpFlow* f = table.find(resident[j]);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->id(), resident[j]);
    EXPECT_NE(table.at(table.handle_of(resident[j])), nullptr);
  }
  EXPECT_EQ(table.find(0), nullptr);
}

}  // namespace
}  // namespace ccp::datapath
