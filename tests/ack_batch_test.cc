// End-to-end equivalence of the cross-flow batch ACK path.
//
// The contract (datapath/ack_batch.hpp): feeding a burst of ACKs through
// CcpDatapath::on_ack_batch produces the exact byte stream the scalar
// on_send/on_ack sequence produces in arrival order — same frames, same
// bytes — across every execution class (packed SIMD kernel, batch
// interpreter, per-lane scalar JIT, Verify dual-run, peeled lanes). The
// twin harness here drives two identically-configured datapaths with the
// same randomized workload, one per-ACK and one in bursts, and compares
// the captured frames byte for byte.
//
// Telemetry is disabled for the twin comparisons so emitted_ns/span_id
// are deterministic zeros; a separate test checks the batch occupancy
// counters with telemetry on.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "datapath/datapath.hpp"
#include "datapath/flow.hpp"
#include "lang/jit/jit.hpp"
#include "telemetry/telemetry.hpp"

namespace ccp::datapath {
namespace {

using lang::jit::JitMode;

/// Pure-arithmetic program (ewma/min/max/if only): eligible for the
/// JIT's packed-SIMD batch kernel. `loss` is urgent so batch urgency
/// judging gets exercised; `$gain` gives install-time vars a row in the
/// SoA gather.
constexpr const char* kPureProgram = R"(
fold {
  volatile acked := acked + Pkt.bytes_acked            init 0;
  rtt            := ewma(rtt, Pkt.rtt, 0.125)          init 0;
  minrtt         := if(Pkt.rtt > 0, min(minrtt, Pkt.rtt), minrtt) init 0x7fffffff;
  thr            := max(thr, Pkt.rcv_rate * $gain)     init 0;
  volatile loss  := loss + Pkt.lost                    init 0 urgent;
}
control {
  WaitRtts(1.0);
  Report();
}
)";

/// Same shape but with a pow() fold: the scalar JIT compiles it (libm
/// helper call) but the batch compiler declines, so these lanes run the
/// per-lane scalar path inside the runner.
constexpr const char* kLibmProgram = R"(
fold {
  volatile acked := acked + Pkt.bytes_acked  init 0;
  p              := pow(Pkt.rtt + 1, 0.5)    init 0;
  volatile loss  := loss + Pkt.lost          init 0 urgent;
}
control {
  WaitRtts(1.0);
  Report();
}
)";

struct TelemetryGuard {
  explicit TelemetryGuard(bool on) : saved(telemetry::enabled()) {
    telemetry::set_enabled(on);
  }
  ~TelemetryGuard() { telemetry::set_enabled(saved); }
  bool saved;
};

struct JitModeGuard {
  explicit JitModeGuard(JitMode m) : saved(lang::jit::mode()) {
    lang::jit::set_mode(m);
  }
  ~JitModeGuard() { lang::jit::set_mode(saved); }
  JitMode saved;
};

struct FrameLog {
  std::vector<std::vector<uint8_t>> frames;
  CcpDatapath::FrameTx tx() {
    return [this](std::span<const uint8_t> f) {
      frames.emplace_back(f.begin(), f.end());
    };
  }
};

TimePoint at_us(int64_t us) {
  return TimePoint::epoch() + Duration::from_micros(us);
}

ipc::InstallMsg install_msg(ipc::FlowId id, const char* text,
                            std::vector<std::string> names = {},
                            std::vector<double> values = {},
                            bool vector_mode = false) {
  ipc::InstallMsg msg;
  msg.flow_id = id;
  msg.program_text = text;
  msg.var_names = std::move(names);
  msg.var_values = std::move(values);
  msg.vector_mode = vector_mode;
  return msg;
}

/// Two identical datapaths: `scalar` is driven one ACK at a time,
/// `batch` through on_ack_batch. Any install/create applies to both.
struct Twin {
  FrameLog scalar_log, batch_log;
  CcpDatapath scalar{DatapathConfig{}, scalar_log.tx()};
  CcpDatapath batch{DatapathConfig{}, batch_log.tx()};

  void create(ipc::FlowId id, TimePoint now, double watchdog_rtts = 0) {
    FlowConfig cfg;
    cfg.mss = 1460;
    cfg.init_cwnd_bytes = 14600;
    cfg.min_cwnd_bytes = 2920;
    cfg.watchdog_rtts = watchdog_rtts;
    scalar.create_flow_with_id(id, cfg, "twin", now);
    batch.create_flow_with_id(id, cfg, "twin", now);
  }

  void install(const ipc::InstallMsg& msg, TimePoint now) {
    scalar.flow(msg.flow_id)->install(msg, now);
    batch.flow(msg.flow_id)->install(msg, now);
  }

  /// Replays one burst on both sides: the scalar side walks it in
  /// arrival order exactly as a per-ACK stack would.
  void drive(const std::vector<FlowAck>& burst) {
    for (const FlowAck& fa : burst) {
      CcpFlow* flow = scalar.flow(fa.flow_id);
      if (flow == nullptr) continue;
      if (fa.sent_bytes > 0) flow->on_send(SendEvent{fa.ev.now, fa.sent_bytes});
      flow->on_ack(fa.ev);
    }
    batch.on_ack_batch(burst);
  }

  void expect_equal_frames() {
    ASSERT_EQ(scalar_log.frames.size(), batch_log.frames.size());
    for (size_t i = 0; i < scalar_log.frames.size(); ++i) {
      ASSERT_EQ(scalar_log.frames[i], batch_log.frames[i])
          << "frame " << i << " diverged";
    }
  }
};

/// Randomized mixed workload: SIMD-able flows, a libm flow, default
/// programs, a vector-mode flow, different var bindings on a shared
/// program, unknown ids, same-flow duplicates within one burst, losses
/// and ECN marks to trip the urgent registers.
void run_mixed_workload(uint64_t seed, int rounds) {
  Twin twin;
  const TimePoint t0 = at_us(1000);
  for (ipc::FlowId id = 1; id <= 7; ++id) twin.create(id, t0);
  twin.install(install_msg(1, kPureProgram, {"gain"}, {1.0}), t0);
  twin.install(install_msg(2, kPureProgram, {"gain"}, {1.0}), t0);
  twin.install(install_msg(3, kLibmProgram), t0);
  // Flow 4 and 7 keep the default program. Flow 5 runs vector mode
  // (always peels). Flow 6 shares kPureProgram with different vars.
  twin.install(install_msg(5, kPureProgram, {"gain"}, {1.0}, true), t0);
  twin.install(install_msg(6, kPureProgram, {"gain"}, {2.5}), t0);

  std::mt19937_64 rng(seed);
  int64_t us = 2000;
  for (int round = 0; round < rounds; ++round) {
    std::vector<FlowAck> burst;
    const size_t n = 1 + rng() % 24;  // spans <1 wave and >1 wave
    for (size_t i = 0; i < n; ++i) {
      us += 1 + static_cast<int64_t>(rng() % 200);
      FlowAck fa;
      fa.flow_id = 1 + rng() % 8;  // id 8 does not exist: skipped
      fa.sent_bytes = (rng() % 3 == 0) ? 1460 * (1 + rng() % 4) : 0;
      fa.ev.now = at_us(us);
      fa.ev.bytes_acked = 1460 * (1 + rng() % 3);
      fa.ev.packets_acked = static_cast<uint32_t>(fa.ev.bytes_acked / 1460);
      fa.ev.rtt_sample = Duration::from_micros(8000 + rng() % 4000);
      fa.ev.ecn = rng() % 31 == 0;
      fa.ev.newly_lost_packets = rng() % 53 == 0 ? 1 : 0;
      fa.ev.bytes_in_flight = 14600 + rng() % 50000;
      fa.ev.packets_in_flight =
          static_cast<uint32_t>(fa.ev.bytes_in_flight / 1460);
      burst.push_back(fa);
    }
    twin.drive(burst);
  }
  twin.expect_equal_frames();
}

TEST(AckBatch, MatchesScalarPath_JitOn) {
  TelemetryGuard quiet(false);
  JitModeGuard jit(JitMode::On);
  run_mixed_workload(0xacce5501, 300);
}

TEST(AckBatch, MatchesScalarPath_Interpreter) {
  TelemetryGuard quiet(false);
  JitModeGuard jit(JitMode::Off);  // batch interpreter path
  run_mixed_workload(0xacce5502, 300);
}

TEST(AckBatch, MatchesScalarPath_Verify) {
  TelemetryGuard quiet(false);
  JitModeGuard jit(JitMode::Verify);
  const uint64_t before = telemetry::metrics().jit_verify_mismatches.value();
  run_mixed_workload(0xacce5503, 200);
  // Three engines ran every batch lane (batch kernel/interpreter shadow,
  // scalar JIT, scalar interpreter): all must agree bit for bit.
  EXPECT_EQ(telemetry::metrics().jit_verify_mismatches.value(), before);
}

TEST(AckBatch, SameFlowTwicePerBurstSplitsWaves) {
  TelemetryGuard quiet(false);
  JitModeGuard jit(JitMode::On);
  Twin twin;
  const TimePoint t0 = at_us(1000);
  twin.create(1, t0);
  twin.create(2, t0);
  twin.install(install_msg(1, kPureProgram, {"gain"}, {1.0}), t0);
  twin.install(install_msg(2, kPureProgram, {"gain"}, {1.0}), t0);
  // Flow 1 appears three times in one burst: each repeat must fold on
  // top of the previous repeat's registers (wave flush), not on a stale
  // gather of the original state.
  std::vector<FlowAck> burst;
  for (int i = 0; i < 3; ++i) {
    FlowAck fa;
    fa.flow_id = (i == 1) ? 2u : 1u;
    fa.ev.now = at_us(2000 + 100 * i);
    fa.ev.bytes_acked = 1460;
    fa.ev.packets_acked = 1;
    fa.ev.rtt_sample = Duration::from_micros(9000 + 10 * i);
    burst.push_back(fa);
  }
  // Duplicate flow 1 again, back to back.
  burst.push_back(burst[0]);
  burst.back().ev.now = at_us(2400);
  twin.drive(burst);
  twin.expect_equal_frames();

  // Fold state must match too, not just emitted frames.
  const auto& a = twin.scalar.flow(1)->fold_machine().state();
  const auto& b = twin.batch.flow(1)->fold_machine().state();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << "fold " << i;
}

TEST(AckBatch, WatchdogExpiryPeelsToScalarFallback) {
  TelemetryGuard quiet(false);
  JitModeGuard jit(JitMode::On);
  Twin twin;
  const TimePoint t0 = at_us(1000);
  twin.create(1, t0, /*watchdog_rtts=*/4);
  twin.create(2, t0, /*watchdog_rtts=*/4);
  twin.install(install_msg(1, kPureProgram, {"gain"}, {1.0}), t0);
  twin.install(install_msg(2, kPureProgram, {"gain"}, {1.0}), t0);
  // Warm up RTT estimates so the watchdog arms, then jump far past the
  // deadline: the batch runner must peel those lanes so fallback entry
  // (which emits mid-sequence) happens scalar-side, in arrival order.
  int64_t us = 2000;
  for (int i = 0; i < 20; ++i) {
    std::vector<FlowAck> burst;
    for (ipc::FlowId id = 1; id <= 2; ++id) {
      FlowAck fa;
      fa.flow_id = id;
      fa.ev.now = at_us(us += 500);
      fa.ev.bytes_acked = 1460;
      fa.ev.packets_acked = 1;
      fa.ev.rtt_sample = Duration::from_micros(10000);
      burst.push_back(fa);
    }
    twin.drive(burst);
  }
  us += 60'000'000;  // a minute of agent silence
  for (int i = 0; i < 10; ++i) {
    std::vector<FlowAck> burst;
    for (ipc::FlowId id = 1; id <= 2; ++id) {
      FlowAck fa;
      fa.flow_id = id;
      fa.ev.now = at_us(us += 500);
      fa.ev.bytes_acked = 1460;
      fa.ev.packets_acked = 1;
      fa.ev.rtt_sample = Duration::from_micros(10000);
      burst.push_back(fa);
    }
    twin.drive(burst);
  }
  twin.expect_equal_frames();
  EXPECT_TRUE(twin.batch.flow(1)->in_fallback());
  EXPECT_EQ(twin.scalar.flow(1)->in_fallback(),
            twin.batch.flow(1)->in_fallback());
}

TEST(AckBatch, OccupancyCountersAccount) {
  TelemetryGuard loud(true);
  JitModeGuard jit(JitMode::On);
  FrameLog log;
  CcpDatapath dp(DatapathConfig{}, log.tx());
  const TimePoint t0 = at_us(1000);
  FlowConfig cfg;
  cfg.mss = 1460;
  cfg.init_cwnd_bytes = 14600;
  for (ipc::FlowId id = 1; id <= lang::kBatchLanes; ++id) {
    dp.create_flow_with_id(id, cfg, "occ", t0);
    dp.flow(id)->install(install_msg(id, kPureProgram, {"gain"}, {1.0}), t0);
  }
  auto& m = telemetry::metrics();
  const uint64_t waves0 = m.dp_batch_waves.value();
  const uint64_t lanes0 = m.dp_batch_lanes_sum.value();
  const uint64_t simd0 = m.dp_batch_simd_lanes.value();

  std::vector<FlowAck> burst;
  for (ipc::FlowId id = 1; id <= lang::kBatchLanes; ++id) {
    FlowAck fa;
    fa.flow_id = id;
    fa.ev.now = at_us(2000 + id);
    fa.ev.bytes_acked = 1460;
    fa.ev.packets_acked = 1;
    fa.ev.rtt_sample = Duration::from_micros(10000);
    burst.push_back(fa);
  }
  dp.on_ack_batch(burst);

  EXPECT_EQ(m.dp_batch_waves.value() - waves0, 1u);
  EXPECT_EQ(m.dp_batch_lanes_sum.value() - lanes0, lang::kBatchLanes);
  if (lang::jit::simd_available()) {
    // All 16 lanes share one SIMD-eligible program: minus any lanes the
    // profiler sampled out (those peel), the wave runs packed.
    EXPECT_GE(m.dp_batch_simd_lanes.value() - simd0, lang::kBatchLanes - 2);
  }
}

}  // namespace
}  // namespace ccp::datapath
