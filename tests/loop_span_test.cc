// Deterministic end-to-end control-loop span tests: a real agent and a
// real datapath wired over inproc IPC, spans enabled, ACKs driven until
// reports flow and the agent's commands close spans back at the
// datapath. Asserts that every stage histogram is populated and that the
// stage sums telescope to the total — on both the single-threaded
// datapath (spans close synchronously at command handling) and the
// sharded datapath (spans close at the shard's quiescent-point apply).
// Suite names match the CI sanitizer/TSan -R filters.
#include <gtest/gtest.h>

#include <vector>

#include "agent/agent.hpp"
#include "algorithms/registry.hpp"
#include "datapath/datapath.hpp"
#include "datapath/shard.hpp"
#include "datapath/sharded_datapath.hpp"
#include "ipc/transport.hpp"
#include "ipc/wire.hpp"
#include "telemetry/telemetry.hpp"
#include "util/time.hpp"

namespace ccp {
namespace {

constexpr size_t kFlows = 2;
constexpr uint64_t kAcks = 100'000;  // ~10 virtual RTTs => several reports

void reset_loop_histograms() {
  telemetry::Metrics& m = telemetry::metrics();
  m.loop_emit_to_agent_ns.reset();
  m.loop_agent_handler_ns.reset();
  m.loop_agent_to_enqueue_ns.reset();
  m.loop_enqueue_to_apply_ns.reset();
  m.loop_total_ns.reset();
}

void check_loop_histograms() {
  telemetry::Metrics& m = telemetry::metrics();
  const telemetry::Histogram* stages[] = {
      &m.loop_emit_to_agent_ns, &m.loop_agent_handler_ns,
      &m.loop_agent_to_enqueue_ns, &m.loop_enqueue_to_apply_ns};
  // Every hop stamps with the same monotonic clock, so each close
  // records all four stages plus the total: equal counts everywhere.
  const uint64_t closes = m.loop_total_ns.count();
  ASSERT_GT(closes, 0u) << "no spans completed the full loop";
  uint64_t stage_sum = 0;
  for (const telemetry::Histogram* h : stages) {
    EXPECT_EQ(h->count(), closes);
    stage_sum += h->sum();
  }
  // The stages are differences of five reads of one clock, so they
  // telescope: sum(stages) == total, exactly.
  EXPECT_EQ(stage_sum, m.loop_total_ns.sum());
}

void check_span_ring_ordering() {
  ASSERT_NE(telemetry::span_ring(), nullptr);
  const auto spans = telemetry::span_ring()->dump();
  ASSERT_GT(spans.size(), 0u);
  for (const telemetry::CompletedSpan& sp : spans) {
    EXPECT_GT(sp.span_id, 0u);
    EXPECT_LE(sp.emit_ns, sp.agent_recv_ns);
    EXPECT_LE(sp.agent_recv_ns, sp.agent_send_ns);
    EXPECT_LE(sp.agent_send_ns, sp.enqueue_ns);
    EXPECT_LE(sp.enqueue_ns, sp.apply_ns);
  }
}

TEST(TelemetryLoopSpans, SingleDatapathFullLoopPopulatesEveryStage) {
  telemetry::set_enabled(true);
  telemetry::enable_spans(1024);
  reset_loop_histograms();

  auto pair = ipc::make_inproc_pair();
  datapath::DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  datapath::CcpDatapath dp(
      dcfg, [&](std::span<const uint8_t> f) { pair.a->send_frame(f); });
  agent::AgentConfig acfg;
  agent::CcpAgent agent(
      acfg, [&](std::span<const uint8_t> f) { pair.b->send_frame(f); });
  algorithms::register_builtin_algorithms(agent);

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  for (size_t i = 0; i < kFlows; ++i) {
    ids.push_back(dp.create_flow(datapath::FlowConfig{}, "reno", now).id());
  }
  const ipc::FrameSink agent_rx = [&](std::span<const uint8_t> f) {
    agent.handle_frame(f);
  };
  const ipc::FrameSink dp_rx = [&](std::span<const uint8_t> f) {
    dp.handle_frame(f, now);
  };
  pair.b->drain_frames(agent_rx);
  pair.a->drain_frames(dp_rx);

  datapath::AckEvent ev;
  ev.bytes_acked = 1500;
  ev.packets_acked = 1;
  ev.bytes_in_flight = 64 * 1500;
  ev.packets_in_flight = 64;
  for (uint64_t i = 0; i < kAcks; ++i) {
    now += Duration::from_micros(1);
    auto* fl = dp.flow(ids[i % kFlows]);
    ev.now = now;
    ev.rtt_sample = Duration::from_millis(10);
    fl->on_send(datapath::SendEvent{now, 1500});
    fl->on_ack(ev);
    if ((i & 255) == 255) {
      dp.tick(now);
      pair.b->drain_frames(agent_rx);
      pair.a->drain_frames(dp_rx);
    }
  }

  ASSERT_GT(telemetry::metrics().dp_reports.value(), 0u);
  check_loop_histograms();
  check_span_ring_ordering();
  telemetry::disable_spans();
}

TEST(ShardedDatapathSpans, FullLoopClosesAtShardQuiescentPoint) {
  telemetry::set_enabled(true);
  telemetry::enable_spans(1024);
  reset_loop_histograms();

  // Lane frames go straight into the agent; agent frames go to the
  // control plane, which routes commands into the shard's queue. The
  // whole loop runs on this one thread, so the test is deterministic:
  // commands published during poll()'s tick are applied (and their spans
  // closed) at the next poll().
  constexpr uint32_t kShards = 2;
  datapath::DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  agent::CcpAgent* agent_ptr = nullptr;
  std::vector<datapath::CcpDatapath::FrameTx> txs;
  for (uint32_t s = 0; s < kShards; ++s) {
    txs.push_back([&agent_ptr](std::span<const uint8_t> f) {
      if (agent_ptr != nullptr) agent_ptr->handle_frame(f);
    });
  }
  datapath::ShardedDatapath dp(dcfg, std::move(txs));
  agent::AgentConfig acfg;
  agent::CcpAgent agent(
      acfg, [&](std::span<const uint8_t> f) { dp.handle_frame(f); });
  algorithms::register_builtin_algorithms(agent);
  agent_ptr = &agent;

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<std::vector<ipc::FlowId>> ids(kShards);
  for (uint32_t s = 0; s < kShards; ++s) {
    const ipc::FlowId id = dp.alloc_flow_id(s);
    dp.shard(s).create_flow(id, datapath::FlowConfig{}, "reno", now);
    ids[s].push_back(id);
  }

  datapath::AckEvent ev;
  ev.bytes_acked = 1500;
  ev.packets_acked = 1;
  ev.bytes_in_flight = 64 * 1500;
  ev.packets_in_flight = 64;
  for (uint64_t i = 0; i < kAcks; ++i) {
    now += Duration::from_micros(1);
    datapath::Shard& shard = dp.shard(i % kShards);
    auto* fl = shard.flow(ids[i % kShards][0]);
    ev.now = now;
    ev.rtt_sample = Duration::from_millis(10);
    fl->on_send(datapath::SendEvent{now, 1500});
    fl->on_ack(ev);
    if ((i & 255) == 255) {
      for (uint32_t s = 0; s < kShards; ++s) dp.shard(s).poll(now);
    }
  }
  // One final poll pair so commands from the last tick's reports apply.
  for (uint32_t s = 0; s < kShards; ++s) dp.shard(s).poll(now);

  ASSERT_GT(dp.control_stats().commands_routed, 0u);
  check_loop_histograms();
  check_span_ring_ordering();
  telemetry::disable_spans();
}

}  // namespace
}  // namespace ccp
