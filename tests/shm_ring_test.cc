// ShmRing consumer-path tests: zero-copy peek/consume, batched drain,
// randomized wrap-around fuzzing against a reference queue, and full-ring
// backpressure. These exercise the ring directly (no transport on top) so
// wrap offsets and record boundaries can be controlled precisely.
#include "ipc/shm_ring.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <vector>

#include "util/rng.hpp"

namespace ccp::ipc {
namespace {

/// A ring over plain heap memory (producer and consumer in-process).
struct TestRing {
  explicit TestRing(size_t capacity)
      : mem(ShmRing::mapping_size(capacity)),
        ring(ShmRing::create_in(mem.data(), capacity)),
        data_begin(mem.data() + sizeof(RingHeader)),
        data_end(data_begin + capacity) {}

  std::vector<uint8_t> mem;
  ShmRing ring;
  const uint8_t* data_begin;
  const uint8_t* data_end;

  bool in_ring(const uint8_t* p) const { return p >= data_begin && p < data_end; }
};

std::vector<uint8_t> pattern(size_t len, uint8_t seed) {
  std::vector<uint8_t> v(len);
  for (size_t i = 0; i < len; ++i) v[i] = static_cast<uint8_t>(seed + i * 7);
  return v;
}

TEST(ShmRingPeek, PeekConsumeRoundTrip) {
  TestRing t(1 << 12);
  std::vector<uint8_t> scratch;
  EXPECT_FALSE(t.ring.peek(scratch).has_value());

  const auto a = pattern(100, 1);
  const auto b = pattern(333, 2);
  ASSERT_TRUE(t.ring.push(a));
  ASSERT_TRUE(t.ring.push(b));

  auto p1 = t.ring.peek(scratch);
  ASSERT_TRUE(p1.has_value());
  EXPECT_TRUE(std::equal(p1->begin(), p1->end(), a.begin(), a.end()));
  // Peek does not retire: peeking again sees the same record.
  auto p1again = t.ring.peek(scratch);
  ASSERT_TRUE(p1again.has_value());
  EXPECT_EQ(p1again->size(), a.size());
  t.ring.consume();

  auto p2 = t.ring.peek(scratch);
  ASSERT_TRUE(p2.has_value());
  EXPECT_TRUE(std::equal(p2->begin(), p2->end(), b.begin(), b.end()));
  t.ring.consume();
  EXPECT_TRUE(t.ring.empty());
}

TEST(ShmRingPeek, ContiguousRecordIsZeroCopy) {
  TestRing t(1 << 12);
  std::vector<uint8_t> scratch;
  const auto a = pattern(64, 3);
  ASSERT_TRUE(t.ring.push(a));
  auto p = t.ring.peek(scratch);
  ASSERT_TRUE(p.has_value());
  // The record sits at the start of a fresh ring: the span must point
  // into ring memory, not into scratch.
  EXPECT_TRUE(t.in_ring(p->data()));
  t.ring.consume();
}

TEST(ShmRingPeek, WrappedRecordIsStagedThroughScratch) {
  constexpr size_t kCap = 256;
  TestRing t(kCap);
  std::vector<uint8_t> scratch;

  // Advance head/tail so the next record straddles the wrap point:
  // push+consume a 200-byte record (offsets now at 204), then push a
  // 100-byte record (4-byte header ends at 208, payload runs past 256).
  const auto filler = pattern(200, 4);
  ASSERT_TRUE(t.ring.push(filler));
  ASSERT_TRUE(t.ring.peek(scratch).has_value());
  t.ring.consume();

  const auto wrapped = pattern(100, 5);
  ASSERT_TRUE(t.ring.push(wrapped));
  auto p = t.ring.peek(scratch);
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(t.in_ring(p->data()));  // staged through scratch
  EXPECT_TRUE(std::equal(p->begin(), p->end(), wrapped.begin(), wrapped.end()));
  t.ring.consume();
  EXPECT_TRUE(t.ring.empty());
}

TEST(ShmRingDrain, DrainsBacklogInOrder) {
  TestRing t(1 << 12);
  std::vector<uint8_t> scratch;
  std::vector<std::vector<uint8_t>> sent;
  for (int i = 0; i < 10; ++i) {
    sent.push_back(pattern(50 + static_cast<size_t>(i) * 13, static_cast<uint8_t>(i)));
    ASSERT_TRUE(t.ring.push(sent.back()));
  }
  size_t idx = 0;
  const size_t n = t.ring.drain(scratch, [&](std::span<const uint8_t> rec) {
    ASSERT_LT(idx, sent.size());
    EXPECT_TRUE(std::equal(rec.begin(), rec.end(), sent[idx].begin(), sent[idx].end()));
    ++idx;
  });
  EXPECT_EQ(n, sent.size());
  EXPECT_TRUE(t.ring.empty());
  EXPECT_EQ(t.ring.drain(scratch, [](std::span<const uint8_t>) {}), 0u);
}

TEST(ShmRingDrain, SpansStayValidForTheWholeDrain) {
  // drain() publishes the head update only after the loop, so a callback
  // that stashes spans may read them all at the end of its own pass —
  // the producer cannot overwrite unretired bytes mid-drain.
  TestRing t(1 << 10);
  std::vector<uint8_t> scratch;
  std::vector<std::vector<uint8_t>> sent;
  for (int i = 0; i < 4; ++i) {
    sent.push_back(pattern(64, static_cast<uint8_t>(0x40 + i)));
    ASSERT_TRUE(t.ring.push(sent.back()));
  }
  std::vector<std::span<const uint8_t>> views;
  t.ring.drain(scratch, [&](std::span<const uint8_t> rec) { views.push_back(rec); });
  ASSERT_EQ(views.size(), sent.size());
  for (size_t i = 0; i < views.size(); ++i) {
    // Contiguous records in a fresh ring: all views alias ring memory and
    // must still hold the original bytes after the drain loop finished.
    EXPECT_TRUE(std::equal(views[i].begin(), views[i].end(), sent[i].begin(),
                           sent[i].end()));
  }
}

TEST(ShmRingFuzz, RandomizedWrapAroundAgainstReferenceQueue) {
  // Small capacity forces frequent wrap-around; every consumer path
  // (pop, peek+consume, drain) is exercised against a reference deque.
  constexpr size_t kCap = 512;
  TestRing t(kCap);
  std::vector<uint8_t> scratch;
  std::deque<std::vector<uint8_t>> reference;
  Rng rng(0xc0ffee);

  uint64_t pushed = 0, popped = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    const uint64_t action = rng.next_below(10);
    if (action < 5) {  // produce
      const size_t len = rng.next_below(120);  // includes zero-length
      auto payload = pattern(len, static_cast<uint8_t>(rng.next_u64()));
      if (t.ring.push(payload)) {
        reference.push_back(std::move(payload));
        ++pushed;
      } else {
        // Backpressure must mean "genuinely not enough space".
        EXPECT_GT(t.ring.bytes_used() + 4 + len, kCap);
      }
    } else if (action < 7) {  // pop
      auto got = t.ring.pop();
      ASSERT_EQ(got.has_value(), !reference.empty());
      if (got) {
        EXPECT_EQ(*got, reference.front());
        reference.pop_front();
        ++popped;
      }
    } else if (action < 9) {  // peek + consume
      auto got = t.ring.peek(scratch);
      ASSERT_EQ(got.has_value(), !reference.empty());
      if (got) {
        ASSERT_EQ(got->size(), reference.front().size());
        EXPECT_TRUE(std::equal(got->begin(), got->end(), reference.front().begin(),
                               reference.front().end()));
        t.ring.consume();
        reference.pop_front();
        ++popped;
      }
    } else {  // drain everything
      const size_t expect = reference.size();
      const size_t n = t.ring.drain(scratch, [&](std::span<const uint8_t> rec) {
        ASSERT_FALSE(reference.empty());
        ASSERT_EQ(rec.size(), reference.front().size());
        EXPECT_TRUE(std::equal(rec.begin(), rec.end(), reference.front().begin(),
                               reference.front().end()));
        reference.pop_front();
        ++popped;
      });
      EXPECT_EQ(n, expect);
    }
  }
  // Sanity: the fuzz actually wrapped the ring many times.
  EXPECT_GT(pushed, 5000u);
  // Drain the leftovers and verify emptiness is consistent.
  while (auto got = t.ring.pop()) {
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(*got, reference.front());
    reference.pop_front();
  }
  EXPECT_TRUE(reference.empty());
  EXPECT_TRUE(t.ring.empty());
  EXPECT_EQ(t.ring.bytes_used(), 0u);
}

TEST(ShmRingBackpressure, FullRingRejectsUntilConsumerFreesSpace) {
  constexpr size_t kCap = 1 << 10;
  TestRing t(kCap);
  std::vector<uint8_t> scratch;
  const auto rec = pattern(100, 7);

  int accepted = 0;
  while (t.ring.push(rec)) ++accepted;
  EXPECT_GT(accepted, 1);
  // Ring is full for this record size; repeated pushes keep failing and
  // must not corrupt state.
  EXPECT_FALSE(t.ring.push(rec));
  EXPECT_FALSE(t.ring.push(rec));

  // Freeing one record admits exactly one more.
  auto got = t.ring.peek(scratch);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(std::equal(got->begin(), got->end(), rec.begin(), rec.end()));
  t.ring.consume();
  EXPECT_TRUE(t.ring.push(rec));
  EXPECT_FALSE(t.ring.push(rec));

  // Every queued record survives intact.
  size_t n = t.ring.drain(scratch, [&](std::span<const uint8_t> r) {
    EXPECT_TRUE(std::equal(r.begin(), r.end(), rec.begin(), rec.end()));
  });
  EXPECT_EQ(n, static_cast<size_t>(accepted));
  EXPECT_TRUE(t.ring.empty());
}

}  // namespace
}  // namespace ccp::ipc
