#include <gtest/gtest.h>

#include "lang/error.hpp"
#include "lang/lexer.hpp"

namespace ccp::lang {
namespace {

std::vector<TokKind> kinds(const std::string& src) {
  std::vector<TokKind> out;
  for (const auto& t : tokenize(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInput) {
  auto toks = tokenize("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokKind::End);
}

TEST(Lexer, Identifiers) {
  auto toks = tokenize("foo _bar baz123");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "foo");
  EXPECT_EQ(toks[1].text, "_bar");
  EXPECT_EQ(toks[2].text, "baz123");
}

TEST(Lexer, Numbers) {
  auto toks = tokenize("1 0.4 1e6 2.5e-3 0x7fffffff");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_DOUBLE_EQ(toks[0].number, 1.0);
  EXPECT_DOUBLE_EQ(toks[1].number, 0.4);
  EXPECT_DOUBLE_EQ(toks[2].number, 1e6);
  EXPECT_DOUBLE_EQ(toks[3].number, 2.5e-3);
  EXPECT_DOUBLE_EQ(toks[4].number, 2147483647.0);
}

TEST(Lexer, DollarVariables) {
  auto toks = tokenize("$rate $cwnd_cap");
  EXPECT_EQ(toks[0].kind, TokKind::Dollar);
  EXPECT_EQ(toks[0].text, "rate");
  EXPECT_EQ(toks[1].text, "cwnd_cap");
  EXPECT_THROW(tokenize("$ rate"), ProgramError);
  EXPECT_THROW(tokenize("$1"), ProgramError);
}

TEST(Lexer, Operators) {
  EXPECT_EQ(kinds("+ - * / < <= > >= == != && || ! := ( ) { } ; , ."),
            (std::vector<TokKind>{
                TokKind::Plus, TokKind::Minus, TokKind::Star, TokKind::Slash,
                TokKind::Lt, TokKind::Le, TokKind::Gt, TokKind::Ge,
                TokKind::EqEq, TokKind::Ne, TokKind::AndAnd, TokKind::OrOr,
                TokKind::Bang, TokKind::Assign, TokKind::LParen,
                TokKind::RParen, TokKind::LBrace, TokKind::RBrace,
                TokKind::Semi, TokKind::Comma, TokKind::Dot, TokKind::End}));
}

TEST(Lexer, CommentsSkipped) {
  auto toks = tokenize("a // comment with $stuff := ;\nb");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, LineAndColumnTracking) {
  auto toks = tokenize("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].col, 3);
}

TEST(Lexer, RejectsBadCharacters) {
  EXPECT_THROW(tokenize("a @ b"), ProgramError);
  EXPECT_THROW(tokenize("a # b"), ProgramError);
  EXPECT_THROW(tokenize("= b"), ProgramError);   // lone '='
  EXPECT_THROW(tokenize("a & b"), ProgramError);  // lone '&'
  EXPECT_THROW(tokenize("a | b"), ProgramError);  // lone '|'
  EXPECT_THROW(tokenize("a : b"), ProgramError);  // ':' without '='
}

TEST(Lexer, ErrorCarriesPosition) {
  try {
    tokenize("ok\n  @");
    FAIL() << "expected ProgramError";
  } catch (const ProgramError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.col(), 3);
  }
}

}  // namespace
}  // namespace ccp::lang
