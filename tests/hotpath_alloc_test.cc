// Proves the per-ACK hot path is allocation-free in steady state.
//
// A global operator-new hook counts heap allocations inside a counting
// window. After a warm-up phase (programs installed, encoder buffers and
// sample vectors grown to their steady-state capacity), driving ACKs,
// report batching, and frame flushes through the full datapath must
// perform ZERO allocations — the invariant the whole zero-alloc refactor
// (scratch messages, encode-into batcher, FlatMap flow tables, fixed-ring
// rate estimator) exists to uphold. See docs/PERF.md.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>

#include "datapath/datapath.hpp"
#include "datapath/prototype_datapath.hpp"
#include "datapath/shard.hpp"
#include "datapath/sharded_datapath.hpp"
#include "ipc/wire.hpp"
#include "lang/jit/jit.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_ring.hpp"
#include "util/time.hpp"

namespace {

std::atomic<uint64_t> g_allocs{0};
std::atomic<bool> g_counting{false};

void note_alloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

// Replaceable global allocation functions (all sized/aligned variants
// forward here). Deallocation is intentionally not counted.
void* operator new(std::size_t n) {
  note_alloc();
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  note_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ccp::datapath {
namespace {

constexpr size_t kFlows = 8;
constexpr uint64_t kWarmupAcks = 400'000;
constexpr uint64_t kMeasuredAcks = 100'000;

/// Drives `acks` round-robin ACKs (with sends, RTT samples, and periodic
/// ticks so reports batch and flush) through `dp`.
template <typename Datapath>
void drive(Datapath& dp, std::vector<ipc::FlowId>& ids, TimePoint& now,
           uint64_t acks) {
  AckEvent ev;
  ev.bytes_acked = 1500;
  ev.packets_acked = 1;
  ev.bytes_in_flight = 64 * 1500;
  ev.packets_in_flight = 64;
  const Duration kRtt = Duration::from_millis(10);
  for (uint64_t i = 0; i < acks; ++i) {
    now += Duration::from_micros(1);
    auto* fl = dp.flow(ids[i % ids.size()]);
    ev.now = now;
    ev.rtt_sample =
        kRtt + Duration::from_nanos(static_cast<int64_t>(i % 1024) * 1000);
    fl->on_send(SendEvent{now, 1500});
    fl->on_ack(ev);
    if ((i & 255) == 255) dp.tick(now);
  }
}

uint64_t count_allocs_during(const std::function<void()>& body) {
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  body();
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocs.load(std::memory_order_relaxed);
}

TEST(HotPathAlloc, FoldModeSteadyStateIsAllocationFree) {
  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  uint64_t frames = 0;
  // The frame sink borrows the bytes and must not need a copy: count only.
  CcpDatapath dp(dcfg, [&frames](std::span<const uint8_t>) { ++frames; });

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  FlowConfig fcfg;
  for (size_t i = 0; i < kFlows; ++i) {
    ids.push_back(dp.create_flow(fcfg, "reno", now).id());
  }
  drive(dp, ids, now, kWarmupAcks);
  ASSERT_GT(frames, 0u) << "warm-up must exercise the report/flush path";

  const uint64_t before_frames = frames;
  const uint64_t allocs =
      count_allocs_during([&] { drive(dp, ids, now, kMeasuredAcks); });
  EXPECT_EQ(allocs, 0u)
      << "per-ACK fold path allocated in steady state";
  EXPECT_GT(frames, before_frames)
      << "measured window must include report flushes, not just folds";
}

TEST(HotPathAlloc, TelemetryAndTraceEnabledStaysAllocationFree) {
  // Same workload as FoldModeSteadyStateIsAllocationFree, but with the
  // full telemetry layer explicitly on AND the trace ring installed —
  // counters, histograms, per-report clock stamps, 1/1024 VM sampling,
  // and trace events must all record without touching the heap.
  telemetry::set_enabled(true);
  telemetry::enable_trace(4096);
  // Touch the global metrics/registry singletons before counting so their
  // one-time lazy construction doesn't land in the measured window.
  (void)telemetry::metrics().dp_acks.value();

  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  uint64_t frames = 0;
  CcpDatapath dp(dcfg, [&frames](std::span<const uint8_t>) { ++frames; });

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  FlowConfig fcfg;
  for (size_t i = 0; i < kFlows; ++i) {
    ids.push_back(dp.create_flow(fcfg, "reno", now).id());
  }
  drive(dp, ids, now, kWarmupAcks);
  ASSERT_GT(frames, 0u);
  ASSERT_GT(telemetry::metrics().dp_reports.value(), 0u)
      << "telemetry must actually be recording in this configuration";
  ASSERT_GT(telemetry::trace_ring()->recorded(), 0u);

  const uint64_t allocs =
      count_allocs_during([&] { drive(dp, ids, now, kMeasuredAcks); });
  telemetry::disable_trace();
  EXPECT_EQ(allocs, 0u)
      << "telemetry recording allocated on the per-ACK hot path";
}

TEST(HotPathAlloc, SpansEnabledSteadyStateIsAllocationFree) {
  // Control-loop spans on: every report emit allocates a span id and
  // stamps it into the scratch message, and every close_span records
  // four stage histograms + the total and a SpanRing slot. None of that
  // may touch the heap — the ring is sized at enable time and the stamps
  // ride by value. The close side is driven explicitly since no agent is
  // attached in this harness.
  telemetry::set_enabled(true);
  telemetry::enable_spans(4096);
  (void)telemetry::metrics().dp_acks.value();

  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  uint64_t frames = 0;
  CcpDatapath dp(dcfg, [&frames](std::span<const uint8_t>) { ++frames; });

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  FlowConfig fcfg;
  for (size_t i = 0; i < kFlows; ++i) {
    ids.push_back(dp.create_flow(fcfg, "reno", now).id());
  }
  drive(dp, ids, now, kWarmupAcks);
  ASSERT_GT(frames, 0u);

  const uint64_t allocs = count_allocs_during([&] {
    drive(dp, ids, now, kMeasuredAcks);
    telemetry::SpanStamp stamp;
    for (uint64_t i = 1; i <= 10'000; ++i) {
      stamp.span_id = i;
      stamp.emit_ns = i * 10;
      stamp.agent_recv_ns = i * 10 + 2;
      stamp.agent_send_ns = i * 10 + 4;
      telemetry::close_span(stamp, i * 10 + 6, i * 10 + 8,
                            static_cast<uint32_t>(i % kFlows),
                            telemetry::SpanCommand::UpdateFields);
    }
  });
  telemetry::disable_spans();
  EXPECT_EQ(allocs, 0u)
      << "span stamping or close_span allocated in steady state";
  EXPECT_GT(telemetry::metrics().loop_total_ns.count(), 0u);
}

TEST(HotPathAlloc, ProfilerEnabledSteadyStateIsAllocationFree) {
  // The sampled cycle profiler armed at a hot 1-in-64 rate: the per-ACK
  // gate, the rdtsc stamps on sampled ACKs, and prof_commit's counter
  // increments must all run without heap traffic.
  telemetry::set_enabled(true);
  telemetry::set_profile_sample(64);
  (void)telemetry::metrics().dp_acks.value();

  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  uint64_t frames = 0;
  CcpDatapath dp(dcfg, [&frames](std::span<const uint8_t>) { ++frames; });

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  FlowConfig fcfg;
  for (size_t i = 0; i < kFlows; ++i) {
    ids.push_back(dp.create_flow(fcfg, "reno", now).id());
  }
  drive(dp, ids, now, kWarmupAcks);
  ASSERT_GT(frames, 0u);
  const uint64_t samples_before =
      telemetry::metrics()
          .prof_samples[size_t(telemetry::ProfStage::Measure)]
          .value();
  ASSERT_GT(samples_before, 0u)
      << "profiler must actually be sampling in this configuration";

  const uint64_t allocs =
      count_allocs_during([&] { drive(dp, ids, now, kMeasuredAcks); });
  telemetry::set_profile_sample(0);
  EXPECT_EQ(allocs, 0u)
      << "sampled cycle profiler allocated on the per-ACK path";
  EXPECT_GT(telemetry::metrics()
                .prof_samples[size_t(telemetry::ProfStage::Measure)]
                .value(),
            samples_before)
      << "measured window must include profiler samples";
}

TEST(HotPathAlloc, VectorModeSteadyStateIsAllocationFree) {
  DatapathConfig dcfg;
  // Flush each vector report in its own frame. Batching them would make
  // the frame size depend on how many flows' report phases coincide in a
  // flush window; a once-in-a-blue-moon deeper coincidence legitimately
  // grows the encoder buffer (amortized-zero, not strictly zero), which
  // is not what this test is pinning down.
  dcfg.flush_interval = Duration::zero();
  dcfg.max_batch_msgs = 32;
  uint64_t frames = 0;
  CcpDatapath dp(dcfg, [&frames](std::span<const uint8_t>) { ++frames; });

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  FlowConfig fcfg;
  for (size_t i = 0; i < kFlows; ++i) {
    auto& fl = dp.create_flow(fcfg, "reno", now);
    fl.set_vector_mode(true);
    ids.push_back(fl.id());
  }
  drive(dp, ids, now, kWarmupAcks);
  ASSERT_GT(frames, 0u);

  const uint64_t before_frames = frames;
  const uint64_t allocs =
      count_allocs_during([&] { drive(dp, ids, now, kMeasuredAcks); });
  EXPECT_EQ(allocs, 0u)
      << "per-ACK vector-sample path allocated in steady state";
  EXPECT_GT(frames, before_frames);
}

TEST(HotPathAlloc, ShardedSteadyStateIsAllocationFree) {
  // The per-ACK path with the flow table partitioned across shards, the
  // full telemetry layer (per-shard counters included) on, and the trace
  // ring installed. Each shard is driven through its own flow table and
  // lane; poll() — the quiescent point where installs would be picked up
  // — runs inside the measured window with an empty command queue, so
  // the epoch check itself is also covered by the zero-alloc invariant.
  telemetry::set_enabled(true);
  telemetry::enable_trace(4096);
  (void)telemetry::metrics().dp_acks.value();

  constexpr uint32_t kShards = 2;
  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  uint64_t frames = 0;
  std::vector<CcpDatapath::FrameTx> lane_txs;
  for (uint32_t s = 0; s < kShards; ++s) {
    lane_txs.push_back([&frames](std::span<const uint8_t>) { ++frames; });
  }
  ShardedDatapath dp(dcfg, std::move(lane_txs));
  ASSERT_EQ(dp.num_shards(), kShards);

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::array<std::vector<ipc::FlowId>, kShards> ids;
  FlowConfig fcfg;
  for (uint32_t s = 0; s < kShards; ++s) {
    for (size_t i = 0; i < kFlows / kShards; ++i) {
      const ipc::FlowId id = dp.alloc_flow_id(s);
      dp.shard(s).create_flow(id, fcfg, "reno", now);
      ids[s].push_back(id);
    }
  }

  // Drives `acks` ACKs round-robin across both shards' flows, polling
  // each shard every 256 of its ACKs (same cadence as drive()).
  const auto drive_shards = [&](uint64_t acks) {
    AckEvent ev;
    ev.bytes_acked = 1500;
    ev.packets_acked = 1;
    ev.bytes_in_flight = 64 * 1500;
    ev.packets_in_flight = 64;
    const Duration kRtt = Duration::from_millis(10);
    for (uint64_t i = 0; i < acks; ++i) {
      now += Duration::from_micros(1);
      Shard& shard = dp.shard(i % kShards);
      auto* fl = shard.flow(ids[i % kShards][(i / kShards) % ids[0].size()]);
      ev.now = now;
      ev.rtt_sample =
          kRtt + Duration::from_nanos(static_cast<int64_t>(i % 1024) * 1000);
      fl->on_send(SendEvent{now, 1500});
      fl->on_ack(ev);
      if ((i & 255) == 255) {
        dp.shard(0).poll(now);
        dp.shard(1).poll(now);
      }
    }
  };

  // Warm-up includes a real install on every flow so command application
  // (program swap, fold reset) happens before the measured window — the
  // steady state being pinned down is "programs installed, ACKs folding".
  drive_shards(kWarmupAcks / 2);
  ipc::InstallMsg ins;
  ins.program_text =
      "fold { r := r + Pkt.bytes_acked init 0; }\n"
      "control { WaitRtts(1.0); Report(); }";
  for (uint32_t s = 0; s < kShards; ++s) {
    for (const ipc::FlowId id : ids[s]) {
      ins.flow_id = id;
      dp.handle_frame(ipc::encode_frame(ipc::Message{ins}));
    }
  }
  drive_shards(kWarmupAcks / 2);
  ASSERT_GT(frames, 0u);
  ASSERT_EQ(dp.control_stats().commands_routed, kFlows);
  ASSERT_EQ(dp.shard(0).commands_applied() + dp.shard(1).commands_applied(),
            kFlows)
      << "installs must have been applied at a poll() before measuring";
  ASSERT_GT(telemetry::shard_stats(0).acks.value(), 0u);
  ASSERT_GT(telemetry::shard_stats(1).acks.value(), 0u);

  const uint64_t allocs = count_allocs_during([&] { drive_shards(kMeasuredAcks); });
  telemetry::disable_trace();
  EXPECT_EQ(allocs, 0u)
      << "sharded per-ACK path allocated in steady state";
}

TEST(HotPathAlloc, JitSteadyStateIsAllocationFree) {
  // Native fold execution: compilation happens once at install (and may
  // allocate — it's a rare event), but the JIT steady state afterwards —
  // ACKs dispatched straight into generated code, including the 1/1024
  // jit_exec_ns sampling — must be exactly as allocation-free as the
  // interpreter. On builds without a JIT this degrades to the
  // interpreter path and must still hold.
  const lang::jit::JitMode saved_mode = lang::jit::mode();
  lang::jit::set_mode(lang::jit::JitMode::On);
  telemetry::set_enabled(true);
  (void)telemetry::metrics().dp_acks.value();

  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  uint64_t frames = 0;
  CcpDatapath dp(dcfg, [&frames](std::span<const uint8_t>) { ++frames; });

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  FlowConfig fcfg;
  for (size_t i = 0; i < kFlows; ++i) {
    ids.push_back(dp.create_flow(fcfg, "reno", now).id());
  }
  if (lang::jit::available()) {
    for (const ipc::FlowId id : ids) {
      ASSERT_TRUE(dp.flow(id)->jit_active())
          << "default program must lower to native code when a JIT exists";
    }
  }
  drive(dp, ids, now, kWarmupAcks);
  ASSERT_GT(frames, 0u);

  const uint64_t allocs =
      count_allocs_during([&] { drive(dp, ids, now, kMeasuredAcks); });
  lang::jit::set_mode(saved_mode);
  EXPECT_EQ(allocs, 0u) << "JIT-dispatched per-ACK path allocated in steady state";
}

TEST(HotPathAlloc, BatchModeSteadyStateIsAllocationFree) {
  // Cross-flow batch intake (on_ack_batch): the runner's SoA staging
  // buffers grow to the largest program during warm-up and are then
  // reused forever. Steady state — 32-ACK bursts over two program groups,
  // gathered, folded by the packed batch kernel (or batch interpreter),
  // scattered, finished — must be exactly as allocation-free as the
  // scalar per-ACK path, with full telemetry (per-wave counters) on.
  const lang::jit::JitMode saved_mode = lang::jit::mode();
  lang::jit::set_mode(lang::jit::JitMode::On);
  telemetry::set_enabled(true);
  (void)telemetry::metrics().dp_acks.value();

  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  uint64_t frames = 0;
  CcpDatapath dp(dcfg, [&frames](std::span<const uint8_t>) { ++frames; });

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  FlowConfig fcfg;
  for (size_t i = 0; i < kFlows; ++i) {
    ids.push_back(dp.create_flow(fcfg, "reno", now).id());
  }
  // Half the flows get a second program so every wave carries two groups
  // (group-split bookkeeping is part of what must stay alloc-free).
  ipc::InstallMsg ins;
  ins.program_text =
      "fold { r := r + Pkt.bytes_acked init 0;\n"
      "       m := ewma(m, Pkt.rtt, 0.25) init 0; }\n"
      "control { WaitRtts(1.0); Report(); }";
  for (size_t i = 0; i < kFlows / 2; ++i) {
    ins.flow_id = ids[i];
    dp.handle_frame(ipc::encode_frame(ipc::Message{ins}), now);
  }

  // Burst buffer preallocated outside the counting window; clear() keeps
  // capacity, so refilling it is heap-silent.
  std::vector<FlowAck> burst;
  burst.reserve(32);
  const auto drive_batch = [&](uint64_t acks) {
    const Duration kRtt = Duration::from_millis(10);
    for (uint64_t i = 0; i < acks;) {
      burst.clear();
      for (size_t b = 0; b < 32 && i < acks; ++b, ++i) {
        now += Duration::from_micros(1);
        FlowAck fa;
        fa.flow_id = ids[i % ids.size()];
        fa.sent_bytes = 1500;
        fa.ev.now = now;
        fa.ev.bytes_acked = 1500;
        fa.ev.packets_acked = 1;
        fa.ev.bytes_in_flight = 64 * 1500;
        fa.ev.packets_in_flight = 64;
        fa.ev.rtt_sample =
            kRtt + Duration::from_nanos(static_cast<int64_t>(i % 1024) * 1000);
        burst.push_back(fa);
      }
      dp.on_ack_batch(burst);
      if ((i & 255) == 0) dp.tick(now);
    }
  };

  drive_batch(kWarmupAcks);
  ASSERT_GT(frames, 0u);
  ASSERT_GT(telemetry::metrics().dp_batch_waves.value(), 0u)
      << "workload must actually run through the batch runner";
  if (lang::jit::simd_available()) {
    ASSERT_GT(telemetry::metrics().dp_batch_simd_lanes.value(), 0u)
        << "pure-arithmetic groups must fold in the packed kernel";
  }

  const uint64_t allocs =
      count_allocs_during([&] { drive_batch(kMeasuredAcks); });
  lang::jit::set_mode(saved_mode);
  EXPECT_EQ(allocs, 0u)
      << "batch SoA gather/fold/scatter allocated in steady state";
}

TEST(HotPathAlloc, BatchInterpreterSteadyStateIsAllocationFree) {
  // Same batch workload with the JIT off: groups execute through
  // eval_block_batch instead of the packed kernel. The interpreter path
  // shares the SoA staging, so it must hold the same invariant.
  const lang::jit::JitMode saved_mode = lang::jit::mode();
  lang::jit::set_mode(lang::jit::JitMode::Off);

  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  uint64_t frames = 0;
  CcpDatapath dp(dcfg, [&frames](std::span<const uint8_t>) { ++frames; });

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  FlowConfig fcfg;
  for (size_t i = 0; i < kFlows; ++i) {
    ids.push_back(dp.create_flow(fcfg, "reno", now).id());
  }

  std::vector<FlowAck> burst;
  burst.reserve(32);
  const auto drive_batch = [&](uint64_t acks) {
    const Duration kRtt = Duration::from_millis(10);
    for (uint64_t i = 0; i < acks;) {
      burst.clear();
      for (size_t b = 0; b < 32 && i < acks; ++b, ++i) {
        now += Duration::from_micros(1);
        FlowAck fa;
        fa.flow_id = ids[i % ids.size()];
        fa.sent_bytes = 1500;
        fa.ev.now = now;
        fa.ev.bytes_acked = 1500;
        fa.ev.packets_acked = 1;
        fa.ev.bytes_in_flight = 64 * 1500;
        fa.ev.packets_in_flight = 64;
        fa.ev.rtt_sample =
            kRtt + Duration::from_nanos(static_cast<int64_t>(i % 1024) * 1000);
        burst.push_back(fa);
      }
      dp.on_ack_batch(burst);
      if ((i & 255) == 0) dp.tick(now);
    }
  };

  drive_batch(kWarmupAcks);
  ASSERT_GT(frames, 0u);

  const uint64_t allocs =
      count_allocs_during([&] { drive_batch(kMeasuredAcks); });
  lang::jit::set_mode(saved_mode);
  EXPECT_EQ(allocs, 0u)
      << "batch interpreter path allocated in steady state";
}

TEST(HotPathAlloc, JitVerifySteadyStateIsAllocationFree) {
  // Belt-and-braces mode: every ACK runs BOTH engines and bit-compares
  // the fold state into shadow buffers presized at install. Even this
  // must not touch the heap per ACK — Verify is meant to be deployable
  // on live traffic while qualifying the JIT.
  const lang::jit::JitMode saved_mode = lang::jit::mode();
  lang::jit::set_mode(lang::jit::JitMode::Verify);
  telemetry::set_enabled(true);
  (void)telemetry::metrics().dp_acks.value();
  const uint64_t mismatches_before =
      telemetry::metrics().jit_verify_mismatches.value();

  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  uint64_t frames = 0;
  CcpDatapath dp(dcfg, [&frames](std::span<const uint8_t>) { ++frames; });

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  FlowConfig fcfg;
  for (size_t i = 0; i < kFlows; ++i) {
    ids.push_back(dp.create_flow(fcfg, "reno", now).id());
  }
  if (lang::jit::available()) {
    for (const ipc::FlowId id : ids) {
      ASSERT_TRUE(dp.flow(id)->fold().jit_verifying());
    }
  }
  drive(dp, ids, now, kWarmupAcks);
  ASSERT_GT(frames, 0u);

  const uint64_t allocs =
      count_allocs_during([&] { drive(dp, ids, now, kMeasuredAcks); });
  lang::jit::set_mode(saved_mode);
  EXPECT_EQ(allocs, 0u) << "Verify-mode cross-check allocated in steady state";
  EXPECT_EQ(telemetry::metrics().jit_verify_mismatches.value(),
            mismatches_before)
      << "JIT and interpreter diverged while driving the default program";
}

TEST(HotPathAlloc, WatchdogEnabledSteadyStateIsAllocationFree) {
  // The resilience watchdog armed on every flow (both knobs set), with
  // thresholds the workload never reaches: the per-ACK staleness check —
  // idle computation included — must not cost an allocation. This is the
  // configuration the <2% bench_hotpath overhead target measures.
  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  uint64_t frames = 0;
  CcpDatapath dp(dcfg, [&frames](std::span<const uint8_t>) { ++frames; });

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  FlowConfig fcfg;
  fcfg.agent_timeout = Duration::from_secs(10);  // > the whole virtual run
  fcfg.watchdog_rtts = 4.0;
  for (size_t i = 0; i < kFlows; ++i) {
    ids.push_back(dp.create_flow(fcfg, "reno", now).id());
  }
  // An agent install arms the watchdog (it only guards agent-programmed
  // flows); after this the agent goes silent but the timeout never fires.
  ipc::InstallMsg ins;
  ins.program_text =
      "fold { r := r + Pkt.bytes_acked init 0; }\n"
      "control { WaitRtts(1.0); Report(); }";
  for (const ipc::FlowId id : ids) {
    ins.flow_id = id;
    dp.handle_frame(ipc::encode_frame(ipc::Message{ins}), now);
  }

  drive(dp, ids, now, kWarmupAcks);
  ASSERT_GT(frames, 0u);
  for (const ipc::FlowId id : ids) {
    ASSERT_FALSE(dp.flow(id)->in_fallback())
        << "watchdog must stay armed-but-quiet in this configuration";
  }

  const uint64_t allocs =
      count_allocs_during([&] { drive(dp, ids, now, kMeasuredAcks); });
  EXPECT_EQ(allocs, 0u)
      << "armed watchdog check allocated on the per-ACK path";
}

TEST(HotPathAlloc, FallbackSteadyStateIsAllocationFree) {
  // Flows *inside* the watchdog fallback: the transition itself may
  // allocate (it is a rare install), but the NewReno fallback program's
  // steady per-ACK fold/control execution must be as allocation-free as
  // any agent program.
  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  uint64_t frames = 0;
  CcpDatapath dp(dcfg, [&frames](std::span<const uint8_t>) { ++frames; });

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  FlowConfig fcfg;
  fcfg.agent_timeout = Duration::from_millis(50);
  for (size_t i = 0; i < kFlows; ++i) {
    ids.push_back(dp.create_flow(fcfg, "reno", now).id());
  }
  ipc::InstallMsg ins;
  ins.program_text =
      "fold { r := r + Pkt.bytes_acked init 0; }\n"
      "control { WaitRtts(1.0); Report(); }";
  for (const ipc::FlowId id : ids) {
    ins.flow_id = id;
    dp.handle_frame(ipc::encode_frame(ipc::Message{ins}), now);
  }

  // Warm-up: the agent never speaks again, so every flow trips the 50 ms
  // watchdog early in the run and spends the rest in fallback.
  drive(dp, ids, now, kWarmupAcks);
  for (const ipc::FlowId id : ids) {
    ASSERT_TRUE(dp.flow(id)->in_fallback());
  }

  const uint64_t allocs =
      count_allocs_during([&] { drive(dp, ids, now, kMeasuredAcks); });
  EXPECT_EQ(allocs, 0u)
      << "in-fallback NewReno path allocated in steady state";
  for (const ipc::FlowId id : ids) {
    EXPECT_TRUE(dp.flow(id)->in_fallback());
  }
}

TEST(HotPathAlloc, SteadyChurnIsAllocationFree) {
  // Flow churn at capacity: the op mix of bench_hotpath's churn engine
  // (Zipf-ish batch ACKs + close->create->install cycles) must allocate
  // nothing once the table's slots, free list, and index have settled —
  // every create is served by a parked slot (CcpFlow::reset_for_reuse),
  // the hint stays interned, and the index neither grows nor shrinks.
  // The test's own frame construction reuses one Encoder so the counting
  // window sees only datapath work.
  DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  uint64_t frames = 0;
  CcpDatapath dp(dcfg, [&frames](std::span<const uint8_t>) { ++frames; });

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  FlowConfig fcfg;
  for (size_t i = 0; i < kFlows; ++i) {
    ids.push_back(dp.create_flow(fcfg, "reno", now).id());
  }
  // The install message and its frame encoder live outside the loop and
  // are mutated/reused in place — Message holds the program text by
  // value, so rebuilding it per op would charge a string copy to the
  // counting window that the datapath never performs.
  ipc::Message install_msg{ipc::InstallMsg{}};
  auto& ins = std::get<ipc::InstallMsg>(install_msg);
  ins.program_text =
      "fold { r := r + Pkt.bytes_acked init 0; }\n"
      "control { WaitRtts(1.0); Report(); }";
  ipc::Encoder enc;

  std::vector<FlowAck> burst;
  burst.reserve(32);
  uint64_t seq = 0;
  const auto drive_churn = [&](uint64_t acks) {
    const Duration kRtt = Duration::from_millis(10);
    for (uint64_t i = 0; i < acks;) {
      burst.clear();
      for (size_t b = 0; b < 32 && i < acks; ++b, ++i) {
        now += Duration::from_micros(1);
        FlowAck fa;
        fa.flow_id = ids[i % ids.size()];
        fa.sent_bytes = 1500;
        fa.ev.now = now;
        fa.ev.bytes_acked = 1500;
        fa.ev.packets_acked = 1;
        fa.ev.bytes_in_flight = 64 * 1500;
        fa.ev.packets_in_flight = 64;
        fa.ev.rtt_sample =
            kRtt + Duration::from_nanos(static_cast<int64_t>(i % 1024) * 1000);
        burst.push_back(fa);
      }
      dp.on_ack_batch(burst);
      // One close->create->install op per burst, round-robin victims.
      const size_t j = static_cast<size_t>(++seq % ids.size());
      dp.close_flow(ids[j], now);
      ids[j] = dp.create_flow(fcfg, "reno", now).id();
      ins.flow_id = ids[j];
      enc.clear();
      ipc::encode_frame_into(enc, install_msg);
      dp.handle_frame(enc.buffer(), now);
      if ((i & 255) == 0) dp.tick(now);
    }
  };

  drive_churn(kWarmupAcks);
  ASSERT_GT(frames, 0u);
  const uint64_t recycles_before = dp.flow_table().stats().recycles;

  const uint64_t allocs =
      count_allocs_during([&] { drive_churn(kMeasuredAcks); });
  EXPECT_EQ(allocs, 0u)
      << "steady close->create->install churn allocated";
  EXPECT_GT(dp.flow_table().stats().recycles, recycles_before)
      << "measured window must include recycled creates";
  EXPECT_EQ(dp.flow_table().stats().recycles,
            dp.flow_table().stats().closes)
      << "every churn create must be served by a parked slot";
}

TEST(HotPathAlloc, PrototypeDatapathSteadyStateIsAllocationFree) {
  DatapathConfig dcfg;
  uint64_t frames = 0;
  PrototypeDatapath dp(dcfg, [&frames](std::span<const uint8_t>) { ++frames; });

  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  FlowConfig fcfg;
  for (size_t i = 0; i < kFlows; ++i) {
    ids.push_back(dp.create_flow(fcfg, "reno", now).id());
  }
  drive(dp, ids, now, kWarmupAcks);
  ASSERT_GT(frames, 0u);

  const uint64_t allocs =
      count_allocs_during([&] { drive(dp, ids, now, kMeasuredAcks); });
  EXPECT_EQ(allocs, 0u);
}

}  // namespace
}  // namespace ccp::datapath
