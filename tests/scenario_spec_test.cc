// ScenarioSpec text format: parsing, validation, round-tripping, and the
// shared fairness/summary helpers in util/series.hpp.
#include <gtest/gtest.h>

#include <stdexcept>

#include "scenario/library.hpp"
#include "scenario/spec.hpp"
#include "util/series.hpp"

namespace ccp::scenario {
namespace {

TEST(ScenarioSpecParse, FullSpec) {
  const ScenarioSpec spec = parse_spec(R"(
# a parking lot with an impaired middle hop
scenario pl_demo
describe three hops, lossy middle
topology parking_lot
duration 12
seed 99
ipc 25us
sample_interval 0.25
link rate=48Mbps delay=5ms buffer=1.5
link rate=24Mbps delay=10ms buffer=1.0 loss=0.01 rate@4s=12Mbps rate@8s=24Mbps
link rate=48Mbps delay=5ms queue_bytes=30000 ecn=0.5
group name=long alg=cubic count=2 start=1 stagger=0.5 hops=0-2 rtt_step=10ms
group name=cross alg=native:reno hops=1 stop=10
group name=mp alg=bbr count=4 coupled=2 ecn=1
)");
  EXPECT_EQ(spec.name, "pl_demo");
  EXPECT_EQ(spec.description, "three hops, lossy middle");
  EXPECT_EQ(spec.topology, Topology::kParkingLot);
  EXPECT_DOUBLE_EQ(spec.duration_secs, 12);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.ipc_delay.micros(), 25);
  EXPECT_DOUBLE_EQ(spec.sample_interval_secs, 0.25);

  ASSERT_EQ(spec.links.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.links[0].rate_bps, 48e6);
  EXPECT_EQ(spec.links[0].delay.millis(), 5);
  EXPECT_DOUBLE_EQ(spec.links[1].random_loss, 0.01);
  ASSERT_EQ(spec.links[1].rate_schedule.size(), 2u);
  EXPECT_EQ(spec.links[1].rate_schedule[0].at.millis(), 4000);
  EXPECT_DOUBLE_EQ(spec.links[1].rate_schedule[0].rate_bps, 12e6);
  EXPECT_EQ(spec.links[2].queue_bytes, 30000u);
  EXPECT_DOUBLE_EQ(spec.links[2].ecn_threshold_bdp, 0.5);

  ASSERT_EQ(spec.groups.size(), 3u);
  EXPECT_EQ(spec.groups[0].count, 2u);
  EXPECT_DOUBLE_EQ(spec.groups[0].start_secs, 1);
  EXPECT_DOUBLE_EQ(spec.groups[0].stagger_secs, 0.5);
  EXPECT_EQ(spec.groups[0].hop_first, 0u);
  EXPECT_EQ(spec.groups[0].hop_last, 2u);
  EXPECT_EQ(spec.groups[0].rtt_step.millis(), 10);
  EXPECT_EQ(spec.groups[1].alg, "native:reno");
  EXPECT_EQ(spec.groups[1].hop_first, 1u);
  EXPECT_EQ(spec.groups[1].hop_last, 1u);
  EXPECT_DOUBLE_EQ(spec.groups[1].stop_secs, 10);
  EXPECT_EQ(spec.groups[2].coupled_subflows, 2u);
  EXPECT_TRUE(spec.groups[2].ecn);
}

TEST(ScenarioSpecParse, GroupNameDefaultsToAlg) {
  const ScenarioSpec spec = parse_spec(
      "scenario s\nlink rate=10Mbps delay=5ms\ngroup alg=bbr\n");
  EXPECT_EQ(spec.groups[0].name, "bbr");
}

TEST(ScenarioSpecParse, RejectsMalformedInput) {
  EXPECT_THROW(parse_spec("frobnicate 3\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("scenario s\nlink speed=1Mbps\ngroup alg=cubic\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_spec("scenario s\nlink rate\ngroup alg=cubic\n"),
               std::invalid_argument);
}

TEST(ScenarioSpecValidate, RejectsBadFields) {
  // Loss probability out of range.
  EXPECT_THROW(parse_spec("scenario s\nlink loss=1.5\ngroup alg=cubic\n"),
               std::invalid_argument);
  // Dumbbell with two links.
  EXPECT_THROW(
      parse_spec("scenario s\nlink rate=1Mbps\nlink rate=1Mbps\n"
                 "group alg=cubic\n"),
      std::invalid_argument);
  // Rate schedule not ascending in time.
  EXPECT_THROW(
      parse_spec("scenario s\nlink rate@8s=1Mbps rate@4s=2Mbps\n"
                 "group alg=cubic\n"),
      std::invalid_argument);
  // Bundle size must divide the flow count.
  EXPECT_THROW(
      parse_spec("scenario s\nlink rate=1Mbps\n"
                 "group alg=cubic count=3 coupled=2\n"),
      std::invalid_argument);
  // Stop before start.
  EXPECT_THROW(
      parse_spec("scenario s\nlink rate=1Mbps\n"
                 "group alg=cubic start=5 stop=2\n"),
      std::invalid_argument);
  // Path beyond the last hop.
  EXPECT_THROW(
      parse_spec("scenario s\ntopology parking_lot\nlink rate=1Mbps\n"
                 "group alg=cubic hops=3-3\n"),
      std::invalid_argument);
}

TEST(ScenarioSpecFormat, RoundTripsEveryBuiltin) {
  for (const std::string& name : builtin_scenario_names()) {
    const ScenarioSpec spec = builtin_scenario(name);
    const std::string text = format_spec(spec);
    const ScenarioSpec reparsed = parse_spec(text);
    EXPECT_EQ(format_spec(reparsed), text) << "builtin " << name;
    EXPECT_EQ(reparsed.name, spec.name);
    EXPECT_EQ(reparsed.links.size(), spec.links.size());
    EXPECT_EQ(reparsed.groups.size(), spec.groups.size());
  }
}

TEST(LinkSpec, QueueCapacityDerivesFromBdp) {
  LinkSpec link;
  link.rate_bps = 96e6;
  link.delay = Duration::from_millis(5);  // BDP = 96e6/8 * 10ms = 120000 B
  link.buffer_bdp = 1.0;
  EXPECT_EQ(link.queue_capacity_bytes(), 120000u);
  link.buffer_bdp = 0.5;
  EXPECT_EQ(link.queue_capacity_bytes(), 60000u);
  link.queue_bytes = 4242;  // explicit override wins
  EXPECT_EQ(link.queue_capacity_bytes(), 4242u);
  link.queue_bytes = 0;
  link.buffer_bdp = 1e-9;  // never below one MTU
  EXPECT_EQ(link.queue_capacity_bytes(), 1500u);
}

TEST(JainIndex, KnownValues) {
  EXPECT_DOUBLE_EQ(util::jain_index({}), 0.0);
  EXPECT_DOUBLE_EQ(util::jain_index({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(util::jain_index({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(util::jain_index({3.0, 3.0, 3.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(util::jain_index({1.0, 0.0}), 0.5);
  // Scale invariance.
  EXPECT_DOUBLE_EQ(util::jain_index({1.0, 2.0, 3.0}),
                   util::jain_index({10.0, 20.0, 30.0}));
}

}  // namespace
}  // namespace ccp::scenario
