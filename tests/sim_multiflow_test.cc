// Multi-flow behavioral and invariant tests: fairness at scale,
// conservation, ECN under contention, RTT unfairness shape, and
// determinism with many interacting components.
#include <gtest/gtest.h>

#include <numeric>

#include "algorithms/native/native_dctcp.hpp"
#include "algorithms/native/native_reno.hpp"
#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"

namespace ccp::sim {
namespace {

TimePoint at_s(double s) { return TimePoint::epoch() + Duration::from_secs_f(s); }

double jain(const std::vector<double>& xs) {
  double sum = 0, sq = 0;
  for (double x : xs) {
    sum += x;
    sq += x * x;
  }
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

TEST(MultiFlow, EightCcpRenoFlowsShareFairly) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(80e6, Duration::from_millis(10), 1.0);
  Dumbbell net(q, cfg);
  SimCcpHost host(q, CcpHostConfig{});
  std::vector<TcpSender*> senders;
  for (int i = 0; i < 8; ++i) {
    auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno");
    senders.push_back(&net.add_flow(TcpSenderConfig{}, &flow, TimePoint::epoch()));
  }
  host.start(at_s(30));
  q.run_until(at_s(30));

  std::vector<double> tputs;
  double total = 0;
  for (auto* snd : senders) {
    tputs.push_back(snd->delivered_bytes() * 8.0 / 30 / 1e6);
    total += tputs.back();
  }
  EXPECT_GT(total, 60.0);        // >75% utilization with 8 flows
  EXPECT_GT(jain(tputs), 0.85);  // near-fair
}

TEST(MultiFlow, ConservationOfBytes) {
  // What the receiver holds never exceeds what the sender transmitted,
  // and everything cumulatively acked was genuinely received.
  EventQueue q;
  auto cfg = DumbbellConfig::make(20e6, Duration::from_millis(10), 0.5);
  Dumbbell net(q, cfg);
  SimCcpHost host(q, CcpHostConfig{});
  std::vector<TcpSender*> senders;
  for (int i = 0; i < 3; ++i) {
    auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "cubic");
    senders.push_back(&net.add_flow(TcpSenderConfig{}, &flow, TimePoint::epoch()));
  }
  host.start(at_s(10));
  q.run_until(at_s(10));
  for (int i = 0; i < 3; ++i) {
    EXPECT_LE(net.receiver(i).received_bytes(), senders[i]->sent_bytes());
    EXPECT_LE(senders[i]->delivered_bytes(), net.receiver(i).received_bytes());
    EXPECT_GT(senders[i]->delivered_bytes(), 0u);
  }
}

TEST(MultiFlow, DctcpEcnKeepsQueueShortUnderContention) {
  EventQueue q;
  // ECN threshold at ~0.15 BDP: DCTCP flows should hold the queue there.
  const double bdp = 50e6 / 8 * 0.01;
  auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 2.0,
                                  static_cast<uint64_t>(bdp * 0.15));
  Dumbbell net(q, cfg);
  SimCcpHost host(q, CcpHostConfig{});
  std::vector<TcpSender*> senders;
  for (int i = 0; i < 4; ++i) {
    auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "dctcp");
    TcpSenderConfig scfg;
    scfg.ecn_enabled = true;
    scfg.record_rtt_samples = true;
    senders.push_back(&net.add_flow(scfg, &flow, TimePoint::epoch()));
  }
  host.start(at_s(15));
  q.run_until(at_s(15));

  double total = 0;
  for (auto* snd : senders) total += snd->delivered_bytes() * 8.0 / 15 / 1e6;
  EXPECT_GT(total, 35.0);  // well-utilized
  EXPECT_GT(net.bottleneck().stats().marked_pkts, 0u);
  // The whole point of DCTCP: losses stay rare because ECN acts first.
  uint64_t timeouts = 0;
  for (auto* snd : senders) timeouts += snd->stats().timeouts;
  EXPECT_EQ(timeouts, 0u);
  // Median RTT stays near base: the 2-BDP buffer is never filled.
  EXPECT_LT(senders[0]->rtt_samples().quantile(0.5), 13000.0);
}

TEST(MultiFlow, LateJoinerGetsItsShare) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
  Dumbbell net(q, cfg);
  SimCcpHost host(q, CcpHostConfig{});
  auto& f1 = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno");
  auto& f2 = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno");
  auto& s1 = net.add_flow(TcpSenderConfig{}, &f1, TimePoint::epoch());
  auto& s2 = net.add_flow(TcpSenderConfig{}, &f2, at_s(10));
  host.start(at_s(30));
  q.run_until(at_s(30));
  // Measure only the contended window (last 15 s).
  // (delivered_bytes is cumulative; approximate by overall averages.)
  const double t1 = s1.delivered_bytes() * 8.0 / 30 / 1e6;
  const double t2 = s2.delivered_bytes() * 8.0 / 20 / 1e6;
  EXPECT_GT(t2, t1 * 0.3);  // the joiner is not starved
}

TEST(MultiFlow, ManyFlowsDeterministic) {
  auto run_once = [] {
    EventQueue q;
    auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
    Dumbbell net(q, cfg);
    CcpHostConfig hcfg;
    hcfg.seed = 1234;
    SimCcpHost host(q, hcfg);
    std::vector<TcpSender*> senders;
    const char* algs[] = {"reno", "cubic", "bbr", "vegas"};
    for (int i = 0; i < 4; ++i) {
      auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, algs[i]);
      senders.push_back(
          &net.add_flow(TcpSenderConfig{}, &flow, at_s(0.5 * i)));
    }
    host.start(at_s(10));
    q.run_until(at_s(10));
    std::vector<uint64_t> out;
    for (auto* snd : senders) out.push_back(snd->delivered_bytes());
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(MultiFlow, NativeAndCcpDctcpCoexistOnEcn) {
  EventQueue q;
  const double bdp = 50e6 / 8 * 0.01;
  auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 2.0,
                                  static_cast<uint64_t>(bdp * 0.2));
  Dumbbell net(q, cfg);
  SimCcpHost host(q, CcpHostConfig{});
  auto& ccp_flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "dctcp");
  algorithms::native::NativeDctcp native(1460, 10 * 1460);
  TcpSenderConfig scfg;
  scfg.ecn_enabled = true;
  auto& s1 = net.add_flow(scfg, &ccp_flow, TimePoint::epoch());
  auto& s2 = net.add_flow(scfg, &native, TimePoint::epoch());
  host.start(at_s(15));
  q.run_until(at_s(15));
  const double t1 = s1.delivered_bytes() * 8.0 / 15 / 1e6;
  const double t2 = s2.delivered_bytes() * 8.0 / 15 / 1e6;
  EXPECT_GT(t1, 10.0);
  EXPECT_GT(t2, 10.0);
  EXPECT_NEAR(t1, t2, std::max(t1, t2) * 0.5);
}

}  // namespace
}  // namespace ccp::sim
