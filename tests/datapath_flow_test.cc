#include <gtest/gtest.h>

#include "datapath/flow.hpp"
#include "lang/error.hpp"

namespace ccp::datapath {
namespace {

/// Collects everything a flow emits.
struct SinkLog {
  std::vector<ipc::MeasurementMsg> reports;
  std::vector<ipc::UrgentMsg> urgents;

  MessageSink sink() {
    return [this](ipc::Message msg, bool) {
      if (auto* m = std::get_if<ipc::MeasurementMsg>(&msg)) reports.push_back(*m);
      if (auto* u = std::get_if<ipc::UrgentMsg>(&msg)) urgents.push_back(*u);
    };
  }
};

FlowConfig config() {
  FlowConfig cfg;
  cfg.mss = 1000;
  cfg.init_cwnd_bytes = 10000;
  cfg.min_cwnd_bytes = 2000;
  return cfg;
}

AckEvent ack_at(TimePoint now, uint64_t bytes = 1000,
                Duration rtt = Duration::from_millis(10)) {
  AckEvent ev;
  ev.now = now;
  ev.bytes_acked = bytes;
  ev.packets_acked = 1;
  ev.rtt_sample = rtt;
  return ev;
}

TimePoint at_ms(int64_t ms) { return TimePoint::epoch() + Duration::from_millis(ms); }

ipc::InstallMsg install_msg(ipc::FlowId id, const std::string& text,
                            std::vector<std::string> names = {},
                            std::vector<double> values = {}) {
  ipc::InstallMsg msg;
  msg.flow_id = id;
  msg.program_text = text;
  msg.var_names = std::move(names);
  msg.var_values = std::move(values);
  return msg;
}

TEST(CcpFlow, DefaultProgramReportsOncePerRtt) {
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());
  // Feed one ACK per ms for 50 ms at RTT 10 ms.
  for (int ms = 1; ms <= 50; ++ms) {
    flow.on_ack(ack_at(at_ms(ms)));
  }
  // ~5 RTTs elapsed: expect roughly 4-6 reports.
  EXPECT_GE(log.reports.size(), 3u);
  EXPECT_LE(log.reports.size(), 7u);
  // Reports carry the default program's fields; acked sums ~10 ACKs.
  EXPECT_GT(log.reports.back().num_acks_folded, 5u);
}

TEST(CcpFlow, ReportSeqIncrements) {
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());
  for (int ms = 1; ms <= 100; ++ms) flow.on_ack(ack_at(at_ms(ms)));
  ASSERT_GE(log.reports.size(), 2u);
  for (size_t i = 1; i < log.reports.size(); ++i) {
    EXPECT_EQ(log.reports[i].report_seq, log.reports[i - 1].report_seq + 1);
  }
}

TEST(CcpFlow, LossTriggersUrgent) {
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());
  flow.on_ack(ack_at(at_ms(1)));
  LossEvent loss;
  loss.now = at_ms(2);
  loss.lost_packets = 1;
  flow.on_loss(loss);
  ASSERT_EQ(log.urgents.size(), 1u);
  EXPECT_EQ(log.urgents[0].kind, ipc::UrgentKind::Loss);
}

TEST(CcpFlow, TimeoutTriggersUrgent) {
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());
  flow.on_ack(ack_at(at_ms(1)));
  flow.on_timeout(TimeoutEvent{at_ms(300)});
  ASSERT_GE(log.urgents.size(), 1u);
  EXPECT_EQ(log.urgents.back().kind, ipc::UrgentKind::Timeout);
}

TEST(CcpFlow, InstallAppliesCwndImmediately) {
  SinkLog log;
  FlowConfig cfg = config();
  cfg.smooth_cwnd = false;
  CcpFlow flow(1, cfg, log.sink());
  flow.install(install_msg(1, R"(
    control { Cwnd($c); WaitRtts(1.0); Report(); }
  )", {"c"}, {50000.0}), at_ms(1));
  EXPECT_EQ(flow.cwnd_bytes(), 50000u);
}

TEST(CcpFlow, SmoothCwndRampsAckClocked) {
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());  // smooth_cwnd default on
  flow.install(install_msg(1, R"(
    control { Cwnd($c); WaitRtts(1.0); Report(); }
  )", {"c"}, {50000.0}), at_ms(1));
  // Increase is a target, not a jump.
  EXPECT_EQ(flow.cwnd_bytes(), 10000u);
  flow.on_ack(ack_at(at_ms(2), 3000));
  EXPECT_EQ(flow.cwnd_bytes(), 13000u);
  flow.on_ack(ack_at(at_ms(3), 40000));
  EXPECT_EQ(flow.cwnd_bytes(), 50000u);  // clamped at target
}

TEST(CcpFlow, CwndDecreaseIsImmediate) {
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());
  flow.install(install_msg(1, R"(
    control { Cwnd($c); WaitRtts(1.0); Report(); }
  )", {"c"}, {4000.0}), at_ms(1));
  EXPECT_EQ(flow.cwnd_bytes(), 4000u);
}

TEST(CcpFlow, CwndClampsToConfiguredBounds) {
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());
  flow.install(install_msg(1, R"(
    control { Cwnd(1); WaitRtts(1.0); Report(); }
  )"), at_ms(1));
  EXPECT_EQ(flow.cwnd_bytes(), 2000u);  // min_cwnd_bytes
}

TEST(CcpFlow, RateApplied) {
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());
  flow.install(install_msg(1, R"(
    control { Rate($r); WaitRtts(1.0); Report(); }
  )", {"r"}, {1.25e6}), at_ms(1));
  EXPECT_DOUBLE_EQ(flow.pacing_rate_bps(), 1.25e6);
}

TEST(CcpFlow, BadProgramRejectedOldKeepsRunning) {
  SinkLog log;
  FlowConfig cfg = config();
  cfg.smooth_cwnd = false;
  CcpFlow flow(1, cfg, log.sink());
  flow.install(install_msg(1, "control { Cwnd(30000); WaitRtts(1.0); Report(); }"),
               at_ms(1));
  EXPECT_EQ(flow.cwnd_bytes(), 30000u);
  EXPECT_THROW(flow.install(install_msg(1, "control { Cwnd(1 }"), at_ms(2)),
               lang::ProgramError);
  EXPECT_THROW(flow.install(install_msg(1, "control { Cwnd(9999999); }"), at_ms(2)),
               lang::ProgramError);  // no Report
  // Old program still enforced.
  EXPECT_EQ(flow.cwnd_bytes(), 30000u);
  for (int ms = 2; ms < 30; ++ms) flow.on_ack(ack_at(at_ms(ms)));
  EXPECT_FALSE(log.reports.empty());
}

TEST(CcpFlow, UnboundVariableRejected) {
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());
  EXPECT_THROW(
      flow.install(install_msg(1, "control { Cwnd($c); WaitRtts(1.0); Report(); }"),
                   at_ms(1)),
      lang::ProgramError);
  EXPECT_THROW(
      flow.install(install_msg(1, "control { Cwnd($c); WaitRtts(1.0); Report(); }",
                               {"nope"}, {1.0}),
                   at_ms(1)),
      lang::ProgramError);
}

TEST(CcpFlow, WaitUsesAbsoluteTime) {
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());
  flow.install(install_msg(1, R"(
    control { Wait(5000); Report(); }
  )"), at_ms(0));  // 5 ms wait
  flow.tick(at_ms(4));
  EXPECT_TRUE(log.reports.empty());
  flow.tick(at_ms(6));
  EXPECT_EQ(log.reports.size(), 1u);
  // Program loops: another report ~5 ms later.
  flow.tick(at_ms(12));
  EXPECT_EQ(log.reports.size(), 2u);
}

TEST(CcpFlow, WaitRttsScalesWithMeasuredRtt) {
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());
  // Prime the RTT estimate at 20 ms.
  for (int i = 1; i <= 5; ++i) {
    flow.on_ack(ack_at(at_ms(i), 1000, Duration::from_millis(20)));
  }
  log.reports.clear();
  flow.install(install_msg(1, R"(
    control { WaitRtts(2.0); Report(); }
  )"), at_ms(10));
  flow.tick(at_ms(30));  // 20 ms < 2 RTTs (40 ms)
  EXPECT_TRUE(log.reports.empty());
  flow.tick(at_ms(55));
  EXPECT_EQ(log.reports.size(), 1u);
}

TEST(CcpFlow, ControlProgramPulsePattern) {
  // The paper's BBR pulse: verify rates actually alternate in the
  // datapath without agent involvement.
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());
  flow.install(install_msg(1, R"(
    control {
      Rate(1.25 * $r); WaitRtts(1.0); Report();
      Rate(0.75 * $r); WaitRtts(1.0); Report();
      Rate($r);        WaitRtts(6.0); Report();
    }
  )", {"r"}, {1e6}), at_ms(0));
  // RTT defaults to 10 ms (default_report_interval) before samples.
  EXPECT_DOUBLE_EQ(flow.pacing_rate_bps(), 1.25e6);
  flow.tick(at_ms(11));
  EXPECT_DOUBLE_EQ(flow.pacing_rate_bps(), 0.75e6);
  EXPECT_EQ(log.reports.size(), 1u);
  flow.tick(at_ms(22));
  EXPECT_DOUBLE_EQ(flow.pacing_rate_bps(), 1e6);
  EXPECT_EQ(log.reports.size(), 2u);
  flow.tick(at_ms(83));  // 6 RTTs later
  EXPECT_DOUBLE_EQ(flow.pacing_rate_bps(), 1.25e6);  // looped
  EXPECT_EQ(log.reports.size(), 3u);
}

TEST(CcpFlow, UpdateFieldsTakesEffect) {
  SinkLog log;
  FlowConfig cfg = config();
  cfg.smooth_cwnd = false;
  CcpFlow flow(1, cfg, log.sink());
  flow.install(install_msg(1, R"(
    control { Cwnd($c); WaitRtts(1.0); Report(); }
  )", {"c"}, {20000.0}), at_ms(0));
  EXPECT_EQ(flow.cwnd_bytes(), 20000u);
  ipc::UpdateFieldsMsg upd;
  upd.flow_id = 1;
  upd.var_values = {40000.0};
  flow.update_fields(upd, at_ms(10));
  // Applied at the next control-loop pass (per-RTT cadence).
  flow.tick(at_ms(15));
  EXPECT_EQ(flow.cwnd_bytes(), 40000u);
}

TEST(CcpFlow, DirectControlOverrides) {
  SinkLog log;
  FlowConfig cfg = config();
  cfg.smooth_cwnd = false;
  CcpFlow flow(1, cfg, log.sink());
  ipc::DirectControlMsg msg;
  msg.flow_id = 1;
  msg.cwnd_bytes = 123000.0;
  msg.rate_bps = 5e6;
  flow.direct_control(msg, at_ms(1));
  EXPECT_EQ(flow.cwnd_bytes(), 123000u);
  EXPECT_DOUBLE_EQ(flow.pacing_rate_bps(), 5e6);
}

TEST(CcpFlow, VectorModeShipsRawSamples) {
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());
  auto msg = install_msg(1, R"(
    control { Cwnd($c); WaitRtts(1.0); Report(); }
  )", {"c"}, {20000.0});
  msg.vector_mode = true;
  flow.install(msg, at_ms(0));
  for (int ms = 1; ms <= 12; ++ms) flow.on_ack(ack_at(at_ms(ms)));
  ASSERT_FALSE(log.reports.empty());
  const auto& report = log.reports[0];
  EXPECT_TRUE(report.is_vector);
  EXPECT_EQ(report.fields.size(),
            report.num_acks_folded * CcpFlow::kVectorFieldsPerPkt);
}

TEST(CcpFlow, UrgentFoldRegisterFires) {
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());
  flow.install(install_msg(1, R"(
    fold { ecn := ecn + Pkt.ecn init 0 urgent; }
    control { Cwnd(20000); WaitRtts(1.0); Report(); }
  )"), at_ms(0));
  AckEvent ev = ack_at(at_ms(1));
  ev.ecn = true;
  flow.on_ack(ev);
  ASSERT_EQ(log.urgents.size(), 1u);
  EXPECT_EQ(log.urgents[0].kind, ipc::UrgentKind::Ecn);
}

TEST(CcpFlow, SrttTracksSamples) {
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());
  for (int i = 1; i <= 30; ++i) {
    flow.on_ack(ack_at(at_ms(i), 1000, Duration::from_millis(25)));
  }
  EXPECT_NEAR(flow.srtt().millis(), 25, 2);
}

TEST(CcpFlowWatchdog, FallsBackWhenAgentGoesSilent) {
  SinkLog log;
  FlowConfig cfg = config();
  cfg.agent_timeout = Duration::from_millis(100);
  CcpFlow flow(1, cfg, log.sink());
  // Agent programs the flow once...
  flow.install(install_msg(1, R"(
    control { Cwnd($c); WaitRtts(1.0); Report(); }
  )", {"c"}, {50000.0}), at_ms(0));
  EXPECT_FALSE(flow.in_fallback());
  // ...then goes silent while ACKs keep arriving.
  for (int ms = 1; ms <= 150; ++ms) flow.on_ack(ack_at(at_ms(ms)));
  EXPECT_TRUE(flow.in_fallback());
}

TEST(CcpFlowWatchdog, FallbackRunsAimdWithoutAgent) {
  SinkLog log;
  FlowConfig cfg = config();
  cfg.agent_timeout = Duration::from_millis(50);
  cfg.smooth_cwnd = false;
  CcpFlow flow(1, cfg, log.sink());
  flow.install(install_msg(1, R"(
    control { Cwnd($c); WaitRtts(1.0); Report(); }
  )", {"c"}, {40000.0}), at_ms(0));
  for (int ms = 1; ms <= 80; ++ms) flow.on_ack(ack_at(at_ms(ms)));
  ASSERT_TRUE(flow.in_fallback());
  const uint64_t before_growth = flow.cwnd_bytes();
  // The fallback grows additively on clean ACKs, applied once per RTT.
  for (int ms = 81; ms <= 130; ++ms) flow.on_ack(ack_at(at_ms(ms)));
  EXPECT_GT(flow.cwnd_bytes(), before_growth);
  // ...and halves (at the next control pass) after loss.
  const uint64_t before_loss = flow.cwnd_bytes();
  LossEvent loss;
  loss.now = at_ms(131);
  loss.lost_packets = 3;
  flow.on_loss(loss);
  for (int ms = 132; ms <= 155; ++ms) flow.on_ack(ack_at(at_ms(ms)));
  EXPECT_LT(flow.cwnd_bytes(), before_loss);
}

TEST(CcpFlowWatchdog, AgentContactClearsFallback) {
  SinkLog log;
  FlowConfig cfg = config();
  cfg.agent_timeout = Duration::from_millis(50);
  cfg.smooth_cwnd = false;
  CcpFlow flow(1, cfg, log.sink());
  flow.install(install_msg(1, R"(
    control { Cwnd($c); WaitRtts(1.0); Report(); }
  )", {"c"}, {40000.0}), at_ms(0));
  for (int ms = 1; ms <= 80; ++ms) flow.on_ack(ack_at(at_ms(ms)));
  ASSERT_TRUE(flow.in_fallback());
  // The agent comes back and reinstalls: fallback ends.
  flow.install(install_msg(1, R"(
    control { Cwnd($c); WaitRtts(1.0); Report(); }
  )", {"c"}, {30000.0}), at_ms(90));
  EXPECT_FALSE(flow.in_fallback());
  EXPECT_EQ(flow.cwnd_bytes(), 30000u);
}

TEST(CcpFlowWatchdog, NeverTriggersBeforeFirstProgram) {
  // The default program is agentless by design; the watchdog must not
  // "fall back" from it.
  SinkLog log;
  FlowConfig cfg = config();
  cfg.agent_timeout = Duration::from_millis(50);
  CcpFlow flow(1, cfg, log.sink());
  for (int ms = 1; ms <= 200; ++ms) flow.on_ack(ack_at(at_ms(ms)));
  EXPECT_FALSE(flow.in_fallback());
}

TEST(CcpFlowWatchdog, DisabledByDefault) {
  SinkLog log;
  CcpFlow flow(1, config(), log.sink());
  flow.install(install_msg(1, R"(
    control { Cwnd($c); WaitRtts(1.0); Report(); }
  )", {"c"}, {40000.0}), at_ms(0));
  for (int ms = 1; ms <= 10000; ms += 10) flow.on_ack(ack_at(at_ms(ms)));
  EXPECT_FALSE(flow.in_fallback());
}

}  // namespace
}  // namespace ccp::datapath
