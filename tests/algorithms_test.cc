#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/cubic.hpp"
#include "algorithms/dctcp.hpp"
#include "algorithms/htcp.hpp"
#include "algorithms/native/kernel_cbrt.hpp"
#include "algorithms/pcc.hpp"
#include "algorithms/registry.hpp"
#include "algorithms/reno.hpp"
#include "algorithms/sprout.hpp"
#include "algorithms/timely.hpp"
#include "algorithms/vegas.hpp"
#include "lang/parser.hpp"
#include "util/rng.hpp"

namespace ccp::algorithms {
namespace {

/// Stand-in FlowControl that records commands instead of sending them.
class FakeFlow final : public agent::FlowControl {
 public:
  explicit FakeFlow(agent::FlowInfo info) : info_(info) {}

  const agent::FlowInfo& info() const override { return info_; }
  void install(const lang::Program&,
               std::span<const std::pair<std::string, double>> vars) override {
    ++installs;
    capture(vars);
  }
  void install_text(std::string program_text,
                    std::span<const std::pair<std::string, double>> vars) override {
    ++installs;
    last_program = std::move(program_text);
    // Programs written by algorithms must always parse.
    EXPECT_NO_THROW(lang::parse_program(last_program));
    capture(vars);
  }
  void update_fields(std::span<const std::pair<std::string, double>> vars) override {
    ++updates;
    capture(vars);
  }
  void set_cwnd(double bytes) override { direct_cwnd = bytes; }
  void set_rate(double bps) override { direct_rate = bps; }
  void set_vector_mode(bool enabled) override { vector_mode = enabled; }

  double var(const std::string& name, double fallback = -1) const {
    auto it = vars_seen.find(name);
    return it == vars_seen.end() ? fallback : it->second;
  }

  int installs = 0;
  int updates = 0;
  double direct_cwnd = -1;
  double direct_rate = -1;
  bool vector_mode = false;
  std::string last_program;
  std::map<std::string, double> vars_seen;

 private:
  void capture(std::span<const std::pair<std::string, double>> vars) {
    for (const auto& [name, value] : vars) vars_seen[name] = value;
  }

  agent::FlowInfo info_;
};

agent::FlowInfo info() {
  agent::FlowInfo i;
  i.id = 1;
  i.mss = 1000;
  i.init_cwnd_bytes = 10000;
  return i;
}

/// Builds a MeasurementMsg matching kWindowProgram's register order.
ipc::MeasurementMsg window_report(double acked, double rtt_us, double now_us,
                                  double loss = 0) {
  ipc::MeasurementMsg m;
  m.flow_id = 1;
  // acked, loss, timeout, rtt, minrtt, now, inflight
  m.fields = {acked, loss, 0, rtt_us, rtt_us, now_us, 0};
  return m;
}

const std::vector<std::string> kWindowFields = {"acked", "loss",    "timeout", "rtt",
                                                "minrtt", "now", "inflight"};

TEST(Reno, SlowStartDoublesPerWindow) {
  FakeFlow flow(info());
  Reno reno(info());
  reno.init(flow);
  EXPECT_EQ(flow.installs, 1);
  auto msg = window_report(10000, 10000, 1e6);
  agent::Measurement m(&kWindowFields, &msg);
  reno.on_measurement(flow, m);
  EXPECT_DOUBLE_EQ(reno.cwnd_bytes(), 20000.0);  // doubled
  EXPECT_TRUE(reno.in_slow_start());
}

TEST(Reno, LossHalvesOncePerEpisode) {
  FakeFlow flow(info());
  Reno reno(info());
  reno.init(flow);
  ipc::MeasurementMsg empty;
  agent::Measurement m(&kWindowFields, &empty);
  reno.on_urgent(flow, ipc::UrgentKind::Loss, m);
  const double after_first = reno.cwnd_bytes();
  EXPECT_LT(after_first, 10000.0 + 3001.0);  // halved (+3 MSS inflate)
  reno.on_urgent(flow, ipc::UrgentKind::Loss, m);
  EXPECT_DOUBLE_EQ(reno.cwnd_bytes(), after_first);  // same episode: no-op
}

TEST(Reno, TimeoutCollapsesToOneMss) {
  FakeFlow flow(info());
  Reno reno(info());
  reno.init(flow);
  ipc::MeasurementMsg empty;
  agent::Measurement m(&kWindowFields, &empty);
  reno.on_urgent(flow, ipc::UrgentKind::Timeout, m);
  EXPECT_DOUBLE_EQ(reno.cwnd_bytes(), 1000.0);
  EXPECT_TRUE(reno.in_slow_start());
}

TEST(Reno, CongestionAvoidanceLinearGrowth) {
  FakeFlow flow(info());
  Reno reno(info());
  reno.init(flow);
  ipc::MeasurementMsg empty;
  agent::Measurement urgent(&kWindowFields, &empty);
  reno.on_urgent(flow, ipc::UrgentKind::Loss, urgent);  // exit slow start
  const double w0 = reno.cwnd_bytes();
  auto msg = window_report(w0, 10000, 1e6);
  agent::Measurement m(&kWindowFields, &msg);
  reno.on_measurement(flow, m);  // one full window acked
  EXPECT_NEAR(reno.cwnd_bytes(), w0 + 1000.0, 1.0);  // +1 MSS per RTT
}

TEST(Cubic, CubeRootMatchesKernelFixedPoint) {
  // §2.2: user-space float math vs the kernel's Newton-Raphson table.
  for (uint64_t v : {1ull, 8ull, 27ull, 64ull, 1000ull, 123456ull,
                     99999999ull, 1ull << 40}) {
    const double exact = std::cbrt(static_cast<double>(v));
    const double kernel = native::kernel_cubic_root(v);
    EXPECT_NEAR(kernel, exact, std::max(1.0, exact * 0.005)) << "v=" << v;
  }
}

TEST(Cubic, WindowFunctionShape) {
  // W(t) = C(t-K)^3 + Wmax: at t=K the window equals Wmax; it is concave
  // below and convex above.
  const double wmax = 100.0;
  const double k = Cubic::cubic_k(wmax, 70.0);  // after beta reduction
  EXPECT_NEAR(Cubic::cubic_window(k, wmax, k), wmax, 1e-9);
  EXPECT_LT(Cubic::cubic_window(k * 0.5, wmax, k), wmax);
  EXPECT_GT(Cubic::cubic_window(k * 1.5, wmax, k), wmax);
  // K = cbrt(Wmax*(1-beta)/C).
  EXPECT_NEAR(k, std::cbrt((wmax - 70.0) / 0.4), 1e-9);
}

TEST(Cubic, LossSetsEpochAndReducesWindow) {
  FakeFlow flow(info());
  Cubic cubic(info());
  cubic.init(flow);
  ipc::MeasurementMsg empty;
  agent::Measurement m(&kWindowFields, &empty);
  const double w0 = cubic.cwnd_bytes();
  cubic.on_urgent(flow, ipc::UrgentKind::Loss, m);
  EXPECT_NEAR(cubic.cwnd_bytes(), w0 * Cubic::kBeta, 1.0);
}

TEST(Cubic, GrowsTowardWmaxAfterLoss) {
  FakeFlow flow(info());
  Cubic cubic(info());
  cubic.init(flow);
  ipc::MeasurementMsg empty;
  agent::Measurement urgent(&kWindowFields, &empty);
  // Build some window first.
  double now_us = 0;
  for (int i = 0; i < 5; ++i) {
    auto msg = window_report(cubic.cwnd_bytes(), 10000, now_us += 10000);
    agent::Measurement m(&kWindowFields, &msg);
    cubic.on_measurement(flow, m);
  }
  cubic.on_urgent(flow, ipc::UrgentKind::Loss, urgent);
  const double after_loss = cubic.cwnd_bytes();
  for (int i = 0; i < 60; ++i) {
    auto msg = window_report(cubic.cwnd_bytes(), 10000, now_us += 10000);
    agent::Measurement m(&kWindowFields, &msg);
    cubic.on_measurement(flow, m);
  }
  EXPECT_GT(cubic.cwnd_bytes(), after_loss * 1.1);
}

TEST(Dctcp, AlphaTracksMarkingRate) {
  FakeFlow flow(info());
  Dctcp dctcp(info());
  dctcp.init(flow);
  // Deliver windows with 50% marking; alpha converges toward 0.5.
  const std::vector<std::string> fields = {"acked", "acked_pkts", "marked",
                                           "loss", "timeout", "rtt"};
  for (int i = 0; i < 200; ++i) {
    ipc::MeasurementMsg msg;
    msg.fields = {10000, 10, 5, 0, 0, 100};
    agent::Measurement m(&fields, &msg);
    dctcp.on_measurement(flow, m);
  }
  EXPECT_NEAR(dctcp.alpha(), 0.5, 0.05);
}

TEST(Dctcp, NoMarksGrowsLikeReno) {
  FakeFlow flow(info());
  Dctcp dctcp(info());
  dctcp.init(flow);
  const std::vector<std::string> fields = {"acked", "acked_pkts", "marked",
                                           "loss", "timeout", "rtt"};
  const double w0 = dctcp.cwnd_bytes();
  ipc::MeasurementMsg msg;
  msg.fields = {w0, 10, 0, 0, 0, 100};
  agent::Measurement m(&fields, &msg);
  dctcp.on_measurement(flow, m);
  EXPECT_GT(dctcp.cwnd_bytes(), w0);
}

TEST(Dctcp, FullMarkingHalves) {
  FakeFlow flow(info());
  Dctcp dctcp(info());
  dctcp.init(flow);
  const std::vector<std::string> fields = {"acked", "acked_pkts", "marked",
                                           "loss", "timeout", "rtt"};
  const double w0 = dctcp.cwnd_bytes();
  ipc::MeasurementMsg msg;
  msg.fields = {w0, 10, 10, 0, 0, 100};  // 100% marked, alpha starts at 1
  agent::Measurement m(&fields, &msg);
  dctcp.on_measurement(flow, m);
  EXPECT_NEAR(dctcp.cwnd_bytes(), w0 * 0.5, w0 * 0.05);
}

TEST(Timely, GradientControlsDirection) {
  FakeFlow flow(info());
  TimelyParams params;
  params.t_low_us = 50;
  params.t_high_us = 1e6;
  Timely timely(info(), params);
  timely.init(flow);
  const std::vector<std::string> fields = {"rtt", "minrtt", "loss", "timeout"};
  auto report = [&](double rtt) {
    ipc::MeasurementMsg msg;
    msg.fields = {rtt, 100, 0, 0};
    agent::Measurement m(&fields, &msg);
    timely.on_measurement(flow, m);
  };
  report(200);  // primes prev_rtt
  const double r0 = timely.rate_bps();
  report(150);  // falling RTT: increase
  EXPECT_GT(timely.rate_bps(), r0);
  const double r1 = timely.rate_bps();
  report(400);
  report(800);  // rising RTT: decrease
  EXPECT_LT(timely.rate_bps(), r1 + 2 * params.add_step_bps);
}

TEST(Timely, BelowTlowAlwaysIncreases) {
  FakeFlow flow(info());
  Timely timely(info());
  timely.init(flow);
  const std::vector<std::string> fields = {"rtt", "minrtt", "loss", "timeout"};
  auto report = [&](double rtt) {
    ipc::MeasurementMsg msg;
    msg.fields = {rtt, 50, 0, 0};
    agent::Measurement m(&fields, &msg);
    timely.on_measurement(flow, m);
  };
  report(100);
  const double r0 = timely.rate_bps();
  report(400);  // rising but still below t_low (500): additive increase
  EXPECT_GT(timely.rate_bps(), r0);
}

TEST(Pcc, UtilityPenalizesLoss) {
  const double t = 1e9;
  EXPECT_GT(Pcc::utility(t, 0.0, 11.35), Pcc::utility(t, 0.1, 11.35));
  EXPECT_GT(Pcc::utility(t, 0.0, 11.35), 0);
  EXPECT_LT(Pcc::utility(t, 0.5, 11.35), 0);
  // More throughput is better at equal loss.
  EXPECT_GT(Pcc::utility(2 * t, 0.01, 11.35), Pcc::utility(t, 0.01, 11.35));
}

TEST(Pcc, MovesTowardBetterUtility)  {
  FakeFlow flow(info());
  Pcc pcc(info());
  pcc.init(flow);
  const std::vector<std::string> fields = {"acked", "lost", "timeout",
                                           "interval", "rcv"};
  const double r0 = pcc.rate_bps();
  // Up-probe delivers more without loss; down-probe delivers less:
  // the rate must move up.
  for (int i = 0; i < 10; ++i) {
    ipc::MeasurementMsg up;
    up.fields = {100000, 0, 0, 10000, pcc.rate_bps() * 1.05};
    agent::Measurement mu(&fields, &up);
    pcc.on_measurement(flow, mu);  // consumes the up phase
    ipc::MeasurementMsg down;
    down.fields = {100000, 0, 0, 10000, pcc.rate_bps() * 0.95};
    agent::Measurement md(&fields, &down);
    pcc.on_measurement(flow, md);  // consumes the down phase, decides
  }
  EXPECT_GT(pcc.rate_bps(), r0);
}

TEST(VegasBothVariants, AgreeOnIdenticalTraces) {
  // §2.4: fold and vector batching must implement the same algorithm.
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    FakeFlow flow_f(info());
    FakeFlow flow_v(info());
    VegasFold fold_alg(info());
    VegasVector vec_alg(info());
    fold_alg.init(flow_f);
    vec_alg.init(flow_v);
    EXPECT_TRUE(flow_v.vector_mode);

    const std::vector<std::string> fold_fields = {"baseRtt", "delta", "loss",
                                                  "timeout"};
    double base = rng.uniform(5000, 20000);

    for (int round = 0; round < 30; ++round) {
      // Generate one RTT worth of per-ACK samples.
      const int n_acks = 1 + static_cast<int>(rng.next_below(10));
      std::vector<double> rtts;
      for (int i = 0; i < n_acks; ++i) {
        rtts.push_back(base + rng.uniform(0, 3000));
      }

      // Vector variant sees raw samples.
      ipc::MeasurementMsg vec_msg;
      vec_msg.is_vector = true;
      vec_msg.num_acks_folded = n_acks;
      for (double rtt : rtts) {
        vec_msg.fields.insert(vec_msg.fields.end(), {rtt, 1000, 0, 0, 0, 0});
      }
      agent::Measurement mv(nullptr, &vec_msg);
      vec_alg.on_measurement(flow_v, mv);

      // Fold variant: emulate the datapath fold (sequential semantics,
      // using the fold program's own cwnd binding from the last update).
      double fold_base = fold_alg.base_rtt_us();
      double delta = 0;
      const double cwnd_pkts = fold_alg.cwnd_bytes() / 1000.0;
      for (double rtt : rtts) {
        fold_base = std::min(fold_base, rtt);
        const double in_queue = (rtt - fold_base) * cwnd_pkts / fold_base;
        if (in_queue < 2) {
          delta += 1;
        } else if (in_queue > 4) {
          delta -= 1;
        }
      }
      ipc::MeasurementMsg fold_msg;
      fold_msg.fields = {fold_base, delta, 0, 0};
      agent::Measurement mf(&fold_fields, &fold_msg);
      fold_alg.on_measurement(flow_f, mf);
    }
    // The two batching styles are *semantically close but not identical*
    // (§2.4: the vector loop sees its own within-batch cwnd updates,
    // the fold uses the install-time binding). Identical traces must
    // produce the same base RTT and windows within a small drift.
    EXPECT_NEAR(fold_alg.base_rtt_us(), vec_alg.base_rtt_us(), 1e-6);
    const double rel_gap =
        std::fabs(fold_alg.cwnd_bytes() - vec_alg.cwnd_bytes()) /
        std::max(fold_alg.cwnd_bytes(), vec_alg.cwnd_bytes());
    EXPECT_LT(rel_gap, 0.25) << "trial " << trial << " fold="
                             << fold_alg.cwnd_bytes()
                             << " vec=" << vec_alg.cwnd_bytes();
  }
}

TEST(Htcp, AlphaGrowsWithTimeSinceLoss) {
  EXPECT_DOUBLE_EQ(Htcp::alpha(0.5), 1.0);   // low-speed regime: plain AIMD
  EXPECT_DOUBLE_EQ(Htcp::alpha(1.0), 1.0);
  EXPECT_GT(Htcp::alpha(2.0), 10.0);         // 1 + 10*1 + 0.25
  EXPECT_GT(Htcp::alpha(5.0), Htcp::alpha(2.0));
}

TEST(Htcp, IncreaseAcceleratesOverTime) {
  FakeFlow flow(info());
  Htcp htcp(info());
  htcp.init(flow);
  ipc::MeasurementMsg empty;
  agent::Measurement urgent(&kWindowFields, &empty);
  htcp.on_urgent(flow, ipc::UrgentKind::Loss, urgent);  // leave slow start

  auto growth_at = [&](double t_us) {
    const double before = htcp.cwnd_bytes();
    auto msg = window_report(before, 10000, t_us);
    agent::Measurement m(&kWindowFields, &msg);
    htcp.on_measurement(flow, m);
    return htcp.cwnd_bytes() - before;
  };
  const double early = growth_at(0.5e6);   // 0.5 s after loss epoch starts
  const double late = growth_at(4e6);      // 4 s after
  EXPECT_GT(late, early * 5);
}

TEST(Htcp, AdaptiveBackoffUsesRttRatio) {
  FakeFlow flow(info());
  Htcp htcp(info());
  htcp.init(flow);
  // Short-queue regime: rtt stays near minrtt -> beta clamps to 0.8.
  const std::vector<std::string>& fields = kWindowFields;
  for (int i = 0; i < 3; ++i) {
    ipc::MeasurementMsg msg;
    msg.fields = {10000, 0, 0, 10500, 10000, 1e6 * (i + 1), 0};
    agent::Measurement m(&fields, &msg);
    htcp.on_measurement(flow, m);
  }
  const double before = htcp.cwnd_bytes();
  ipc::MeasurementMsg empty;
  agent::Measurement urgent(&fields, &empty);
  htcp.on_urgent(flow, ipc::UrgentKind::Loss, urgent);
  EXPECT_NEAR(htcp.cwnd_bytes(), before * 0.8, before * 0.02);
}

TEST(Sprout, ForecastTracksCapacity) {
  FakeFlow flow(info());
  Sprout sprout(info());
  sprout.init(flow);
  // The install must use Wait (fixed grid), not WaitRtts.
  EXPECT_NE(flow.last_program.find("Wait($tick)"), std::string::npos);

  const std::vector<std::string> fields = {"delivered", "loss", "timeout",
                                           "rtt", "minrtt"};
  // Steady 10 Mbit/s delivery at low delay: the model converges near it
  // and probes above.
  const double tick_s = 0.02;
  for (int i = 0; i < 60; ++i) {
    ipc::MeasurementMsg msg;
    msg.fields = {10e6 / 8 * tick_s, 0, 0, 10000, 10000};
    agent::Measurement m(&fields, &msg);
    sprout.on_measurement(flow, m);
  }
  EXPECT_NEAR(sprout.forecast_mean_bps(), 10e6 / 8, 10e6 / 8 * 0.1);
  EXPECT_GT(sprout.rate_bps(), 10e6 / 8);  // low delay: probing upward
}

TEST(Sprout, HighDelayStopsProbing) {
  FakeFlow flow(info());
  Sprout sprout(info());
  sprout.init(flow);
  const std::vector<std::string> fields = {"delivered", "loss", "timeout",
                                           "rtt", "minrtt"};
  const double tick_s = 0.02;
  for (int i = 0; i < 60; ++i) {
    ipc::MeasurementMsg msg;
    // RTT 2x the minimum: a standing queue; no probe allowed.
    msg.fields = {10e6 / 8 * tick_s, 0, 0, 20000, 10000};
    agent::Measurement m(&fields, &msg);
    sprout.on_measurement(flow, m);
  }
  EXPECT_LE(sprout.rate_bps(), 10e6 / 8 * 1.05);
}

TEST(Sprout, LossDampsTheModel) {
  FakeFlow flow(info());
  Sprout sprout(info());
  sprout.init(flow);
  const std::vector<std::string> fields = {"delivered", "loss", "timeout",
                                           "rtt", "minrtt"};
  ipc::MeasurementMsg msg;
  msg.fields = {10e6 / 8 * 0.02, 0, 0, 10000, 10000};
  agent::Measurement m(&fields, &msg);
  sprout.on_measurement(flow, m);
  const double before = sprout.forecast_mean_bps();
  sprout.on_urgent(flow, ipc::UrgentKind::Loss, m);
  EXPECT_LT(sprout.forecast_mean_bps(), before);
}

TEST(Registry, AllBuiltinsInstantiate) {
  for (const auto& name : builtin_algorithm_names()) {
    auto alg = make_algorithm(name, info());
    ASSERT_NE(alg, nullptr) << name;
    EXPECT_EQ(alg->name(), name == "vegas" ? "vegas" : alg->name());
    // Every algorithm declares its Table 1 row.
    const auto traits = alg->traits();
    EXPECT_FALSE(traits.measurements.empty()) << name;
    EXPECT_FALSE(traits.control_knobs.empty()) << name;
    // And can initialize against a fake flow without crashing.
    FakeFlow flow(info());
    EXPECT_NO_THROW(alg->init(flow)) << name;
    EXPECT_GE(flow.installs, 1) << name;
  }
  EXPECT_THROW(make_algorithm("nope", info()), std::out_of_range);
}

}  // namespace
}  // namespace ccp::algorithms
