// Scenario harness end-to-end: parking-lot routing, RTT spread, flow
// stop semantics, runner determinism, and the qualitative behavior of
// the built-in scenario library.
#include <gtest/gtest.h>

#include <string>

#include "algorithms/native/native_cubic.hpp"
#include "scenario/library.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "scenario/topology.hpp"

namespace ccp::scenario {
namespace {

ScenarioSpec three_hop_spec() {
  ScenarioSpec spec;
  spec.name = "t";
  spec.topology = Topology::kParkingLot;
  for (int i = 0; i < 3; ++i) {
    LinkSpec link;
    link.rate_bps = 48e6;
    link.delay = Duration::from_millis(1);
    spec.links.push_back(link);
  }
  FlowGroupSpec g;
  g.alg = "native:cubic";
  g.name = "g";
  spec.groups.push_back(g);
  return spec;
}

TEST(Network, ParkingLotRoutesOnlyThroughPathHops) {
  sim::EventQueue q;
  ScenarioSpec spec = three_hop_spec();
  Network net(q, spec, 1);

  algorithms::native::NativeCubic long_cc(1460, 10 * 1460);
  algorithms::native::NativeCubic cross_cc(1460, 10 * 1460);
  sim::TcpSenderConfig scfg;
  auto& long_snd =
      net.add_flow(scfg, &long_cc, TimePoint::epoch(), {0, 2});
  auto& cross_snd =
      net.add_flow(scfg, &cross_cc, TimePoint::epoch(), {1, 1});
  q.run_until(TimePoint::epoch() + Duration::from_secs(2));

  EXPECT_GT(long_snd.delivered_bytes(), 0u);
  EXPECT_GT(cross_snd.delivered_bytes(), 0u);
  // The cross flow enters at hop 1 and exits after it: hops 0 and 2
  // carry only the long flow, hop 1 carries both.
  EXPECT_GT(net.hop(1).stats().delivered_pkts,
            net.hop(0).stats().delivered_pkts);
  EXPECT_GT(net.hop(1).stats().delivered_pkts,
            net.hop(2).stats().delivered_pkts);
}

TEST(Network, BaseRttSumsPathAndExtra) {
  sim::EventQueue q;
  ScenarioSpec spec = three_hop_spec();
  spec.links.pop_back();  // two hops, 1 ms each
  Network net(q, spec, 1);
  algorithms::native::NativeCubic cc(1460, 10 * 1460);
  sim::TcpSenderConfig scfg;
  net.add_flow(scfg, &cc, TimePoint::epoch(),
               {0, 1, Duration::from_millis(10)});
  net.add_flow(scfg, &cc, TimePoint::epoch(), {1, 1});
  // Flow 0: 10 ms extra + 2 x (1 + 1) ms propagation.
  EXPECT_EQ(net.base_rtt(0).millis(), 14);
  // Flow 1: single hop, no extra.
  EXPECT_EQ(net.base_rtt(1).millis(), 2);
}

TEST(Runner, StoppedFlowGoesQuietButKeepsItsStats) {
  ScenarioSpec spec = parse_spec(
      "scenario stop_test\n"
      "duration 6\n"
      "link rate=48Mbps delay=5ms\n"
      "group name=a alg=cubic stop=2\n"
      "group name=b alg=cubic\n");
  const Scorecard card = run_scenario(spec);
  ASSERT_EQ(card.flows.size(), 2u);
  const FlowScore& stopped = card.flows[0];
  EXPECT_DOUBLE_EQ(stopped.stop_secs, 2.0);
  EXPECT_GT(stopped.throughput_mbps, 0.0);
  // After the stop (allowing one RTT of drain), the flow delivers nothing.
  for (const util::SeriesPoint& p : stopped.tput_mbps) {
    if (p.t_secs > 3.0) EXPECT_DOUBLE_EQ(p.value, 0.0) << "t=" << p.t_secs;
  }
  // The survivor takes over the link.
  EXPECT_GT(card.flows[1].throughput_mbps, stopped.throughput_mbps);
}

TEST(Runner, DeterministicForSameSeed) {
  ScenarioSpec spec = parse_spec(
      "scenario det\n"
      "duration 4\n"
      "seed 13\n"
      "link rate=24Mbps delay=10ms loss=0.005 rate@2s=12Mbps\n"
      "group name=c alg=cubic\n"
      "group name=b alg=bbr\n");
  const std::string a = run_scenario(spec).json();
  const std::string b = run_scenario(spec).json();
  EXPECT_EQ(a, b);

  spec.seed = 14;
  EXPECT_NE(run_scenario(spec).json(), a);
}

TEST(Runner, ScorecardAccounting) {
  const Scorecard card = run_scenario(builtin_scenario("wireless_loss"));
  EXPECT_EQ(card.scenario, "wireless_loss");
  ASSERT_EQ(card.hops.size(), 1u);
  EXPECT_GT(card.hops[0].random_drops, 0u);  // the lossy link actually lost
  EXPECT_GT(card.aggregate_mbps, 0.0);
  EXPECT_GT(card.jain, 0.0);
  EXPECT_LE(card.jain, 1.0);
  uint64_t rexmits = 0;
  double share = 0;
  for (const FlowScore& f : card.flows) {
    rexmits += f.retransmits;
    share += f.share;
    EXPECT_GE(f.rtt_p50_ms, 40.0);  // never below the base RTT
    EXPECT_GE(f.qdelay_p95_ms, f.qdelay_p50_ms);
  }
  EXPECT_EQ(card.total_retransmits, rexmits);
  EXPECT_NEAR(share, 1.0, 1e-9);
  EXPECT_NE(card.json().find("\"scenario\""), std::string::npos);
  EXPECT_EQ(card.summary_rows().size(), card.flows.size());
}

double group_share(const Scorecard& card, const std::string& group) {
  double share = 0;
  for (const FlowScore& f : card.flows) {
    if (f.group == group) share += f.share;
  }
  return share;
}

TEST(Library, BbrBeatsCubicInShallowBuffers) {
  const Scorecard card = run_scenario(builtin_scenario("cubic_vs_bbr"));
  EXPECT_GT(group_share(card, "bbr"), 0.6);
}

TEST(Library, CubicBeatsBbrInDeepBuffers) {
  const Scorecard card = run_scenario(builtin_scenario("cubic_vs_bbr_deep"));
  EXPECT_GT(group_share(card, "cubic"), 0.6);
}

TEST(Library, RttUnfairnessFavorsShortRtt) {
  const Scorecard card = run_scenario(builtin_scenario("rtt_unfairness"));
  ASSERT_EQ(card.flows.size(), 4u);
  // Flow 0 has the shortest RTT (10 ms), flow 3 the longest (70 ms).
  EXPECT_GT(card.flows[0].share, card.flows[3].share);
  EXPECT_GT(card.flows[0].rtt_p50_ms, 9.0);
  EXPECT_GT(card.flows[3].rtt_p50_ms, 69.0);
}

TEST(Library, CoupledBundleCompetesLikeOneFlow) {
  const Scorecard card = run_scenario(builtin_scenario("multipath_coupled"));
  const double bundle = group_share(card, "mp");
  EXPECT_GT(bundle, 0.35);
  EXPECT_LT(bundle, 0.65);
}

TEST(Library, ParkingLotLongFlowPaysMultiBottleneckToll) {
  const Scorecard card = run_scenario(builtin_scenario("parking_lot"));
  const double long_share = group_share(card, "long");
  // Each hop's fair split is 1/2; the long flow traverses three lossy
  // queues and lands well below any single cross flow.
  for (int hop = 0; hop < 3; ++hop) {
    EXPECT_LT(long_share,
              group_share(card, "cross" + std::to_string(hop)));
  }
}

TEST(Library, TwoSameCcaFlowsConverge) {
  ScenarioSpec spec = parse_spec(
      "scenario conv\n"
      "duration 12\n"
      "link rate=48Mbps delay=5ms\n"
      "group name=a alg=cubic\n"
      "group name=b alg=cubic start=2\n");
  const Scorecard card = run_scenario(spec);
  EXPECT_GE(card.convergence_secs, 0.0);
  EXPECT_LT(card.convergence_secs, 10.0);
}

}  // namespace
}  // namespace ccp::scenario
