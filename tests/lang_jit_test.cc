// Unit tests for the fold-program JIT (src/lang/jit/).
//
// The core of this file is a per-opcode differential battery: for every
// bytecode op, hand-built one-instruction CodeBlocks run through both
// the interpreter (eval_block) and the JIT over a sweep of adversarial
// double values (±0, ±inf, NaN, denormals, huge magnitudes), in both
// slot-allocation modes, and every result must match BIT FOR BIT. The
// whole-program differential fuzzer lives in jit_differential_test.cc;
// this file owns the opcode-level and machinery-level (cache, fallback
// latch, Verify, trace) coverage.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "lang/builder.hpp"
#include "lang/compiler.hpp"
#include "lang/jit/jit.hpp"
#include "lang/vm.hpp"
#include "telemetry/telemetry.hpp"

#if defined(__x86_64__)
#include "lang/jit/code_cache.hpp"
#include "lang/jit/codegen.hpp"
#define CCP_TEST_X86_64 1
#endif

namespace ccp::lang {
namespace {

namespace jit = ccp::lang::jit;

/// Restores global JIT state no matter how a test exits; every test
/// that flips the mode or the failure hook holds one. (Tests share a
/// process — leaking JitMode::Verify into the next suite would be rude.)
struct JitGuard {
  jit::JitMode saved = jit::mode();
  ~JitGuard() {
    jit::set_mode(saved);
    jit::set_force_emit_failure(false);
  }
};

uint64_t bits(double v) { return std::bit_cast<uint64_t>(v); }

const double kInf = std::numeric_limits<double>::infinity();
const double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Adversarial operand sweep: signed zeros, infinities, NaN, denormal,
/// near-overflow, plus ordinary values.
const std::vector<double> kEdgeValues = {
    0.0,   -0.0,  1.0,    -1.0,   0.5,    -2.5,  3.0,
    1e308, -1e308, 5e-324, 2.2e-308, 1e-9, kInf,  -kInf, kNaN,
};

#if CCP_TEST_X86_64

/// Compiles `block` to native code and runs it once, mirroring the
/// interpreter call shape. Asserts the block actually lowered.
double run_jit_block(const CodeBlock& block, std::vector<double>& fold,
                     const PktInfo& pkt, const std::vector<double>& vars) {
  auto cb = jit::compile_block(block);
  EXPECT_TRUE(cb.has_value());
  auto region = jit::CodeRegion::create(cb->code, cb->pool, cb->pool_patch_at);
  EXPECT_TRUE(region.has_value());
  auto fn = reinterpret_cast<jit::FoldFn>(const_cast<void*>(region->entry()));
  std::vector<double> scratch(block.n_slots, 0.0);
  return fn(fold.data(), jit::pkt_ptr(pkt), vars.data(), scratch.data());
}

/// Runs `block` through both engines on the same inputs; fold state and
/// the result value must match bitwise.
void expect_engines_agree(const CodeBlock& block,
                          const std::vector<double>& fold_init,
                          const std::vector<double>& vars,
                          const PktInfo& pkt = PktInfo{}) {
  std::vector<double> fold_vm = fold_init;
  std::vector<double> fold_jit = fold_init;
  std::vector<double> scratch;
  const double vm = eval_block(block, fold_vm, pkt, vars, scratch);
  const double native = run_jit_block(block, fold_jit, pkt, vars);
  ASSERT_EQ(bits(vm), bits(native))
      << "result: vm=" << vm << " jit=" << native;
  ASSERT_EQ(fold_vm.size(), fold_jit.size());
  for (size_t i = 0; i < fold_vm.size(); ++i) {
    ASSERT_EQ(bits(fold_vm[i]), bits(fold_jit[i]))
        << "fold[" << i << "]: vm=" << fold_vm[i] << " jit=" << fold_jit[i];
  }
}

/// One binary instruction over two vars, stored to fold[0]. With
/// `force_memory_mode`, n_slots is padded past the register budget so
/// the same semantics get exercised through the scratch-array lowering.
CodeBlock binary_block(OpCode op, bool force_memory_mode) {
  CodeBlock b;
  b.code = {
      {OpCode::LoadVar, 0, 0, 0, 0},
      {OpCode::LoadVar, 1, 1, 0, 0},
      {op, 2, 0, 1, 0},
      {OpCode::StoreFold, 0, 0, 2, 0},
  };
  b.n_slots = force_memory_mode ? 14 : 3;
  b.result_slot = 2;
  return b;
}

CodeBlock binary_const_block(OpCode op, double k, bool force_memory_mode) {
  CodeBlock b;
  b.code = {
      {OpCode::LoadVar, 0, 0, 0, 0},
      {op, 1, 0, 0, 0},  // rhs = consts[0]
      {OpCode::StoreFold, 0, 0, 1, 0},
  };
  b.consts = {k};
  b.n_slots = force_memory_mode ? 14 : 2;
  b.result_slot = 1;
  return b;
}

CodeBlock unary_block(OpCode op, bool force_memory_mode) {
  CodeBlock b;
  b.code = {
      {OpCode::LoadVar, 0, 0, 0, 0},
      {op, 1, 0, 0, 0},
      {OpCode::StoreFold, 0, 0, 1, 0},
  };
  b.n_slots = force_memory_mode ? 14 : 2;
  b.result_slot = 1;
  return b;
}

class JitOpcodes : public ::testing::TestWithParam<bool> {};  // memory mode?

TEST_P(JitOpcodes, BinaryOpsBitIdentical) {
  const bool mem = GetParam();
  const OpCode ops[] = {OpCode::Add, OpCode::Sub, OpCode::Mul, OpCode::Div,
                        OpCode::Pow, OpCode::Min, OpCode::Max, OpCode::Lt,
                        OpCode::Le,  OpCode::Gt,  OpCode::Ge,  OpCode::Eq,
                        OpCode::Ne,  OpCode::And, OpCode::Or};
  for (OpCode op : ops) {
    const CodeBlock b = binary_block(op, mem);
    for (double x : kEdgeValues) {
      for (double y : kEdgeValues) {
        SCOPED_TRACE(testing::Message() << "op=" << static_cast<int>(op)
                                        << " x=" << x << " y=" << y);
        expect_engines_agree(b, {0.0}, {x, y});
      }
    }
  }
}

TEST_P(JitOpcodes, ConstOperandSuperinstructionsBitIdentical) {
  const bool mem = GetParam();
  const OpCode ops[] = {OpCode::AddC, OpCode::SubC, OpCode::MulC, OpCode::DivC,
                        OpCode::MinC, OpCode::MaxC, OpCode::LtC,  OpCode::LeC,
                        OpCode::GtC,  OpCode::GeC,  OpCode::EqC,  OpCode::NeC};
  for (OpCode op : ops) {
    for (double k : kEdgeValues) {
      const CodeBlock b = binary_const_block(op, k, mem);
      for (double x : kEdgeValues) {
        SCOPED_TRACE(testing::Message() << "op=" << static_cast<int>(op)
                                        << " x=" << x << " k=" << k);
        expect_engines_agree(b, {0.0}, {x});
      }
    }
  }
}

TEST_P(JitOpcodes, UnaryOpsBitIdentical) {
  const bool mem = GetParam();
  const OpCode ops[] = {OpCode::Neg, OpCode::Not,  OpCode::Sqrt, OpCode::Abs,
                        OpCode::Log, OpCode::Exp,  OpCode::Cbrt};
  for (OpCode op : ops) {
    const CodeBlock b = unary_block(op, mem);
    for (double x : kEdgeValues) {
      SCOPED_TRACE(testing::Message()
                   << "op=" << static_cast<int>(op) << " x=" << x);
      expect_engines_agree(b, {0.0}, {x});
    }
  }
}

TEST_P(JitOpcodes, SelectAndEwmaBitIdentical) {
  const bool mem = GetParam();
  for (OpCode op : {OpCode::Select, OpCode::SelGtz, OpCode::Ewma}) {
    CodeBlock b;
    b.code = {
        {OpCode::LoadVar, 0, 0, 0, 0},
        {OpCode::LoadVar, 1, 1, 0, 0},
        {OpCode::LoadVar, 2, 2, 0, 0},
        {op, 3, 0, 1, 2},
        {OpCode::StoreFold, 0, 0, 3, 0},
    };
    b.n_slots = mem ? 14 : 4;
    b.result_slot = 3;
    for (double x : kEdgeValues) {
      for (double y : {0.0, -1.0, kNaN, kInf}) {
        for (double z : {1.0, -0.0, kNaN, 1e308}) {
          SCOPED_TRACE(testing::Message() << "op=" << static_cast<int>(op)
                                          << " a=" << x << " b=" << y
                                          << " c=" << z);
          expect_engines_agree(b, {0.0}, {x, y, z});
        }
      }
    }
  }
}

TEST_P(JitOpcodes, EwmaCBitIdentical) {
  const bool mem = GetParam();
  for (double gain : {0.0, 0.125, 1.0, -0.5, kNaN}) {
    CodeBlock b;
    b.code = {
        {OpCode::LoadVar, 0, 0, 0, 0},
        {OpCode::LoadVar, 1, 1, 0, 0},
        {OpCode::EwmaC, 2, 0, 1, 0},  // c = consts[0]
        {OpCode::StoreFold, 0, 0, 2, 0},
    };
    b.consts = {gain};
    b.n_slots = mem ? 14 : 3;
    b.result_slot = 2;
    for (double x : kEdgeValues) {
      for (double y : {0.0, 42.0, kNaN, kInf, -kInf}) {
        SCOPED_TRACE(testing::Message()
                     << "gain=" << gain << " x=" << x << " y=" << y);
        expect_engines_agree(b, {0.0}, {x, y});
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SlotModes, JitOpcodes, ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "MemorySlots" : "RegCached";
                         });

TEST(JitCodegen, LoadsReadEverySource) {
  // fold, pkt, var, and const loads all feed the result.
  CodeBlock b;
  b.code = {
      {OpCode::LoadFold, 0, 1, 0, 0},
      {OpCode::LoadPkt, 1, static_cast<uint16_t>(PktField::RttUs), 0, 0},
      {OpCode::LoadVar, 2, 0, 0, 0},
      {OpCode::LoadConst, 3, 0, 0, 0},
      {OpCode::Add, 4, 0, 1, 0},
      {OpCode::Add, 5, 4, 2, 0},
      {OpCode::Add, 6, 5, 3, 0},
      {OpCode::StoreFold, 0, 0, 6, 0},
  };
  b.consts = {1000.0};
  b.n_slots = 7;
  b.result_slot = 6;
  PktInfo pkt;
  pkt.rtt_us = 250.5;
  expect_engines_agree(b, {0.0, 7.25}, {-3.5}, pkt);
}

TEST(JitCodegen, EveryPktFieldOffsetMatches) {
  // LoadPkt lowers to [pkt + 8*field]; sweep all 15 fields against the
  // interpreter's PktInfo::get to pin the struct layout.
  PktInfo pkt;
  pkt.rtt_us = 1;
  pkt.bytes_acked = 2;
  pkt.packets_acked = 3;
  pkt.lost_packets = 4;
  pkt.ecn = 5;
  pkt.was_timeout = 6;
  pkt.snd_rate_bps = 7;
  pkt.rcv_rate_bps = 8;
  pkt.bytes_in_flight = 9;
  pkt.packets_in_flight = 10;
  pkt.bytes_pending = 11;
  pkt.now_us = 12;
  pkt.mss = 13;
  pkt.cwnd = 14;
  pkt.rate_bps = 15;
  for (uint8_t f = 0; f < kNumPktFields; ++f) {
    CodeBlock b;
    b.code = {
        {OpCode::LoadPkt, 0, f, 0, 0},
        {OpCode::StoreFold, 0, 0, 0, 0},
    };
    b.n_slots = 1;
    b.result_slot = 0;
    SCOPED_TRACE(testing::Message() << "field " << int(f));
    expect_engines_agree(b, {0.0}, {}, pkt);
  }
}

TEST(JitCodegen, RegisterBudgetSelectsSlotMode) {
  CodeBlock small = binary_block(OpCode::Add, false);
  auto cb_small = jit::compile_block(small);
  ASSERT_TRUE(cb_small.has_value());
  EXPECT_TRUE(cb_small->reg_cached);

  CodeBlock big = binary_block(OpCode::Add, true);  // n_slots = 14
  auto cb_big = jit::compile_block(big);
  ASSERT_TRUE(cb_big.has_value());
  EXPECT_FALSE(cb_big->reg_cached);

  // Helper-calling programs must spill: the call clobbers every xmm.
  CodeBlock calls = unary_block(OpCode::Log, false);
  auto cb_calls = jit::compile_block(calls);
  ASSERT_TRUE(cb_calls.has_value());
  EXPECT_FALSE(cb_calls->reg_cached);
}

TEST(JitCodegen, DegenerateBlocksReturnZero) {
  CodeBlock empty;  // no code, no slots — interpreter yields 0.0
  std::vector<double> fold = {3.0};
  const double r = run_jit_block(empty, fold, PktInfo{}, {});
  EXPECT_EQ(bits(r), bits(0.0));
  EXPECT_EQ(fold[0], 3.0);

  CodeBlock bad_result = binary_block(OpCode::Add, false);
  bad_result.result_slot = 100;  // out of range: interpreter yields 0.0
  expect_engines_agree(bad_result, {0.0}, {1.0, 2.0});
}

TEST(JitCodegen, CodeRegionRejectsBadPatchOffset) {
  EXPECT_FALSE(jit::CodeRegion::create({}, {}, 0).has_value());
  EXPECT_FALSE(jit::CodeRegion::create({0xC3}, {}, 0).has_value());
}

#endif  // CCP_TEST_X86_64

// --- install-path behavior (valid on every arch: gates on available())

CompiledProgram compile_counter_program(const std::string& reg) {
  ProgramBuilder b;
  b.def(reg, Expr::c(0), f(reg) + pkt(PktField::BytesAcked));
  b.wait_rtts(Expr::c(1.0));
  b.report();
  return compile(b.build());
}

TEST(JitInstall, ModeOnUsesNativeCode) {
  JitGuard guard;
  jit::set_mode(jit::JitMode::On);
  CompiledProgram prog = compile_counter_program("acked");
  FoldMachine m;
  m.install(&prog, {});
  EXPECT_EQ(m.jit_active(), jit::available());
  EXPECT_FALSE(m.jit_verifying());
  PktInfo pkt;
  pkt.bytes_acked = 1448;
  m.on_packet(pkt);
  m.on_packet(pkt);
  EXPECT_EQ(m.state()[0], 2896.0);
  if (jit::available()) {
    ASSERT_TRUE(prog.jit_handle != nullptr);
    EXPECT_GT(jit::code_bytes(*prog.jit_handle), 0u);
  }
}

TEST(JitInstall, ModeOffInterprets) {
  JitGuard guard;
  jit::set_mode(jit::JitMode::Off);
  CompiledProgram prog = compile_counter_program("acked");
  FoldMachine m;
  m.install(&prog, {});
  EXPECT_FALSE(m.jit_active());
  PktInfo pkt;
  pkt.bytes_acked = 10;
  m.on_packet(pkt);
  EXPECT_EQ(m.state()[0], 10.0);
}

TEST(JitInstall, CompilationIsSharedAcrossMachines) {
  if (!jit::available()) GTEST_SKIP() << "JIT not available in this build";
  JitGuard guard;
  jit::set_mode(jit::JitMode::On);
  CompiledProgram prog = compile_counter_program("acked");
  const uint64_t compiles_before = telemetry::metrics().jit_compiles.value();
  FoldMachine a, b, c;
  a.install(&prog, {});
  b.install(&prog, {});
  c.install(&prog, {});
  EXPECT_TRUE(a.jit_active() && b.jit_active() && c.jit_active());
  EXPECT_EQ(telemetry::metrics().jit_compiles.value(), compiles_before + 1)
      << "three machines sharing one program must share one compilation";
}

TEST(JitFallback, ForcedEmitFailureLatchesPerProgram) {
  if (!jit::available()) GTEST_SKIP() << "JIT not available in this build";
  JitGuard guard;
  jit::set_mode(jit::JitMode::On);
  const uint64_t fallbacks_before = telemetry::metrics().jit_fallbacks.value();

  jit::set_force_emit_failure(true);
  CompiledProgram prog = compile_counter_program("acked");
  FoldMachine m;
  m.install(&prog, {});
  EXPECT_FALSE(m.jit_active());
  EXPECT_EQ(telemetry::metrics().jit_fallbacks.value(), fallbacks_before + 1);

  // The failure latches on the program: clearing the hook and
  // reinstalling must neither retry the compile nor flip to native.
  jit::set_force_emit_failure(false);
  m.install(&prog, {});
  EXPECT_FALSE(m.jit_active());
  EXPECT_EQ(telemetry::metrics().jit_fallbacks.value(), fallbacks_before + 1);

  // The interpreter fallback still computes correctly.
  PktInfo pkt;
  pkt.bytes_acked = 5;
  m.on_packet(pkt);
  EXPECT_EQ(m.state()[0], 5.0);

  // A fresh program (new latch slot) compiles fine again.
  CompiledProgram fresh = compile_counter_program("acked2");
  FoldMachine m2;
  m2.install(&fresh, {});
  EXPECT_TRUE(m2.jit_active());
}

TEST(JitVerify, RunsBothEnginesAndAgrees) {
  if (!jit::available()) GTEST_SKIP() << "JIT not available in this build";
  JitGuard guard;
  jit::set_mode(jit::JitMode::Verify);
  // The stock datapath program: ewma, min-tracking, urgent loss counters.
  auto prog = compile_text_shared(R"(
fold {
  volatile acked := acked + Pkt.bytes_acked   init 0;
  rtt            := ewma(rtt, Pkt.rtt, 0.125) init 0;
  minrtt         := if(Pkt.rtt > 0, min(minrtt, Pkt.rtt), minrtt) init 1e9;
  volatile loss  := loss + Pkt.lost           init 0 urgent;
}
control { WaitRtts(1.0); Report(); }
)");
  FoldMachine verify_m, interp_m;
  verify_m.install(prog.get(), {});
  EXPECT_TRUE(verify_m.jit_active());
  EXPECT_TRUE(verify_m.jit_verifying());

  jit::set_mode(jit::JitMode::Off);
  interp_m.install(prog.get(), {});

  const uint64_t mismatches_before =
      telemetry::metrics().jit_verify_mismatches.value();
  PktInfo pkt;
  for (int i = 0; i < 2000; ++i) {
    pkt.rtt_us = 100.0 + (i % 37) * 13.5;
    pkt.bytes_acked = 1448.0 * (1 + i % 3);
    pkt.lost_packets = (i % 97 == 0) ? 1.0 : 0.0;
    const bool urgent_v = verify_m.on_packet(pkt);
    const bool urgent_i = interp_m.on_packet(pkt);
    ASSERT_EQ(urgent_v, urgent_i) << "ack " << i;
  }
  EXPECT_EQ(telemetry::metrics().jit_verify_mismatches.value(),
            mismatches_before);
  ASSERT_EQ(verify_m.state().size(), interp_m.state().size());
  for (size_t r = 0; r < verify_m.state().size(); ++r) {
    EXPECT_EQ(bits(verify_m.state()[r]), bits(interp_m.state()[r]));
  }
}

TEST(JitTelemetry, CompileEmitsTraceEventWithLatencyAndSize) {
  if (!jit::available()) GTEST_SKIP() << "JIT not available in this build";
  JitGuard guard;
  jit::set_mode(jit::JitMode::On);
  telemetry::enable_trace(256);
  CompiledProgram prog = compile_counter_program("traced");
  FoldMachine m;
  m.install(&prog, {});
  ASSERT_TRUE(m.jit_active());

  bool found = false;
  for (const auto& ev : telemetry::trace_ring()->dump()) {
    if (ev.kind == telemetry::TraceKind::JitCompile) {
      found = true;
      EXPECT_GT(ev.value, 0.0) << "value carries compile latency in ns";
      EXPECT_GT(ev.flow, 0u) << "flow field carries code size in bytes";
      EXPECT_EQ(ev.flow, jit::code_bytes(*prog.jit_handle));
    }
  }
  EXPECT_TRUE(found);
  EXPECT_STREQ(telemetry::trace_kind_name(telemetry::TraceKind::JitCompile),
               "jit_compile");
  telemetry::disable_trace();
}

TEST(JitTelemetry, CodeBytesGaugeTracksLiveRegions) {
  if (!jit::available()) GTEST_SKIP() << "JIT not available in this build";
  JitGuard guard;
  jit::set_mode(jit::JitMode::On);
  const int64_t before = telemetry::metrics().jit_code_bytes.value();
  {
    CompiledProgram prog = compile_counter_program("gauged");
    FoldMachine m;
    m.install(&prog, {});
    ASSERT_TRUE(m.jit_active());
    EXPECT_GE(telemetry::metrics().jit_code_bytes.value(),
              before + static_cast<int64_t>(jit::code_bytes(*prog.jit_handle)));
  }
  // Program destroyed -> its handle and code region released.
  EXPECT_EQ(telemetry::metrics().jit_code_bytes.value(), before);
}

TEST(JitMode, SetAndGetRoundTrip) {
  JitGuard guard;
  jit::set_mode(jit::JitMode::Verify);
  EXPECT_EQ(jit::mode(), jit::JitMode::Verify);
  jit::set_mode(jit::JitMode::Off);
  EXPECT_EQ(jit::mode(), jit::JitMode::Off);
  jit::set_mode(jit::JitMode::On);
  EXPECT_EQ(jit::mode(), jit::JitMode::On);
}

}  // namespace
}  // namespace ccp::lang
