#include <gtest/gtest.h>

#include "ipc/wire.hpp"
#include "util/rng.hpp"

namespace ccp::ipc {
namespace {

template <typename T>
T roundtrip(const T& msg) {
  auto frame = encode_frame(Message(msg));
  auto decoded = decode_frame(frame);
  EXPECT_EQ(decoded.size(), 1u);
  return std::get<T>(decoded[0]);
}

TEST(Wire, CreateRoundTrip) {
  CreateMsg m;
  m.flow_id = 42;
  m.init_cwnd_bytes = 14600;
  m.mss = 1460;
  m.src_port = 1234;
  m.dst_port = 80;
  m.alg_hint = "cubic";
  auto r = roundtrip(m);
  EXPECT_EQ(r.flow_id, 42u);
  EXPECT_EQ(r.init_cwnd_bytes, 14600u);
  EXPECT_EQ(r.mss, 1460u);
  EXPECT_EQ(r.src_port, 1234u);
  EXPECT_EQ(r.dst_port, 80u);
  EXPECT_EQ(r.alg_hint, "cubic");
}

TEST(Wire, MeasurementRoundTrip) {
  MeasurementMsg m;
  m.flow_id = 7;
  m.report_seq = 123456789012345ull;
  m.num_acks_folded = 250;
  m.is_vector = true;
  m.fields = {1.5, -2.25, 0.0, 1e300, -1e-300};
  auto r = roundtrip(m);
  EXPECT_EQ(r.flow_id, 7u);
  EXPECT_EQ(r.report_seq, 123456789012345ull);
  EXPECT_EQ(r.num_acks_folded, 250u);
  EXPECT_TRUE(r.is_vector);
  EXPECT_EQ(r.fields, m.fields);
}

TEST(Wire, UrgentRoundTrip) {
  for (auto kind : {UrgentKind::Loss, UrgentKind::Timeout, UrgentKind::Ecn,
                    UrgentKind::FoldUrgent}) {
    UrgentMsg m;
    m.flow_id = 3;
    m.kind = kind;
    m.fields = {42.0};
    auto r = roundtrip(m);
    EXPECT_EQ(r.kind, kind);
    EXPECT_EQ(r.fields, m.fields);
  }
}

TEST(Wire, InstallRoundTrip) {
  InstallMsg m;
  m.flow_id = 9;
  m.program_text = "fold { x := x + 1 init 0; }\ncontrol { Report(); }";
  m.var_names = {"cwnd", "rate"};
  m.var_values = {14600.0, 1.25e9};
  m.vector_mode = true;
  auto r = roundtrip(m);
  EXPECT_EQ(r.program_text, m.program_text);
  EXPECT_EQ(r.var_names, m.var_names);
  EXPECT_EQ(r.var_values, m.var_values);
  EXPECT_TRUE(r.vector_mode);
}

TEST(Wire, UpdateFieldsRoundTrip) {
  UpdateFieldsMsg m;
  m.flow_id = 1;
  m.var_values = {1.0, 2.0, 3.0};
  auto r = roundtrip(m);
  EXPECT_EQ(r.var_values, m.var_values);
}

TEST(Wire, DirectControlRoundTrip) {
  DirectControlMsg m;
  m.flow_id = 5;
  m.cwnd_bytes = 29200.0;
  auto r = roundtrip(m);
  EXPECT_TRUE(r.cwnd_bytes.has_value());
  EXPECT_DOUBLE_EQ(*r.cwnd_bytes, 29200.0);
  EXPECT_FALSE(r.rate_bps.has_value());

  DirectControlMsg m2;
  m2.rate_bps = 1e9;
  auto r2 = roundtrip(m2);
  EXPECT_FALSE(r2.cwnd_bytes.has_value());
  EXPECT_DOUBLE_EQ(*r2.rate_bps, 1e9);
}

TEST(Wire, FlowCloseRoundTrip) {
  FlowCloseMsg m;
  m.flow_id = 77;
  EXPECT_EQ(roundtrip(m).flow_id, 77u);
}

TEST(Wire, ResyncRequestRoundTrip) {
  ResyncRequestMsg m;
  m.token = 0xdeadbeefcafef00dull;
  auto r = roundtrip(m);
  EXPECT_EQ(r.token, 0xdeadbeefcafef00dull);
}

TEST(Wire, FlowSummaryRoundTrip) {
  FlowSummaryMsg m;
  m.flow_id = 99;
  m.mss = 1460;
  m.cwnd_bytes = 123456;
  m.srtt_us = 25000;
  m.in_fallback = true;
  m.alg_hint = "cubic";
  m.token = 7;
  auto r = roundtrip(m);
  EXPECT_EQ(r.flow_id, 99u);
  EXPECT_EQ(r.mss, 1460u);
  EXPECT_EQ(r.cwnd_bytes, 123456u);
  EXPECT_EQ(r.srtt_us, 25000u);
  EXPECT_TRUE(r.in_fallback);
  EXPECT_EQ(r.alg_hint, "cubic");
  EXPECT_EQ(r.token, 7u);
}

TEST(Wire, MultiMessageFrame) {
  std::vector<Message> msgs;
  msgs.push_back(CreateMsg{1, 100, 1460, 0, 0, "reno"});
  MeasurementMsg meas;
  meas.flow_id = 1;
  meas.fields = {1.0, 2.0};
  msgs.push_back(meas);
  msgs.push_back(FlowCloseMsg{1});
  auto frame = encode_frame(msgs);
  auto decoded = decode_frame(frame);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(message_type(decoded[0]), MsgType::Create);
  EXPECT_EQ(message_type(decoded[1]), MsgType::Measurement);
  EXPECT_EQ(message_type(decoded[2]), MsgType::FlowClose);
}

TEST(Wire, EmptyFrame) {
  auto frame = encode_frame(std::span<const Message>{});
  EXPECT_TRUE(decode_frame(frame).empty());
}

TEST(Wire, RejectsTruncatedFrame) {
  auto frame = encode_frame(Message(FlowCloseMsg{1}));
  for (size_t cut = 1; cut < frame.size(); ++cut) {
    std::span<const uint8_t> prefix(frame.data(), frame.size() - cut);
    EXPECT_THROW(decode_frame(prefix), WireError) << "cut=" << cut;
  }
}

TEST(Wire, RejectsTrailingGarbage) {
  auto frame = encode_frame(Message(FlowCloseMsg{1}));
  frame.push_back(0xab);
  EXPECT_THROW(decode_frame(frame), WireError);
}

TEST(Wire, RejectsBadMessageType) {
  auto frame = encode_frame(Message(FlowCloseMsg{1}));
  frame[6] = 0xee;  // type byte of the first message
  EXPECT_THROW(decode_frame(frame), WireError);
}

TEST(Wire, RejectsBadUrgentKind) {
  UrgentMsg m;
  m.kind = UrgentKind::Loss;
  auto frame = encode_frame(Message(m));
  // Patch the kind byte (2 frame hdr + 4 len + 1 type + 4 flow_id).
  frame[11] = 200;
  EXPECT_THROW(decode_frame(frame), WireError);
}

TEST(Wire, RejectsAbsurdLengths) {
  // Hand-craft a frame claiming a giant string.
  Encoder e;
  e.u16(1);
  const size_t len_at = e.size();
  e.u32(0);
  e.u8(static_cast<uint8_t>(MsgType::Create));
  e.u32(1);            // flow
  e.u32(0);            // init cwnd
  e.u32(0);            // mss
  e.u32(0);            // src
  e.u32(0);            // dst
  e.u32(0x7fffffff);   // alg_hint length: absurd
  e.patch_u32(len_at, static_cast<uint32_t>(e.size() - len_at));
  EXPECT_THROW(decode_frame(e.buffer()), WireError);
}

TEST(Wire, FuzzRandomBytesNeverCrash) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> junk(rng.next_below(200));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.next_below(256));
    try {
      (void)decode_frame(junk);
    } catch (const WireError&) {
      // expected for most inputs
    }
  }
}

TEST(Wire, FuzzBitFlipsNeverCrash) {
  MeasurementMsg m;
  m.flow_id = 1;
  m.fields = {1, 2, 3, 4};
  auto frame = encode_frame(Message(m));
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    auto copy = frame;
    copy[rng.next_below(copy.size())] ^=
        static_cast<uint8_t>(1u << rng.next_below(8));
    try {
      (void)decode_frame(copy);
    } catch (const WireError&) {
    }
  }
}

}  // namespace
}  // namespace ccp::ipc
