// FaultyTransport: deterministic seed-driven fault injection at the IPC
// boundary (docs/RESILIENCE.md).
#include <gtest/gtest.h>

#include <vector>

#include "resilience/fault_injector.hpp"

namespace ccp::resilience {
namespace {

std::vector<uint8_t> frame_bytes(uint8_t fill, size_t n = 16) {
  return std::vector<uint8_t>(n, fill);
}

/// Collects every frame the peer endpoint receives.
std::vector<std::vector<uint8_t>> drain_all(ipc::Transport& t) {
  std::vector<std::vector<uint8_t>> got;
  t.drain_frames([&](std::span<const uint8_t> f) {
    got.emplace_back(f.begin(), f.end());
  });
  return got;
}

struct Harness {
  explicit Harness(FaultPlan plan, uint64_t seed = 42) : injector(seed, &log) {
    auto pair = ipc::make_inproc_pair();
    peer = std::move(pair.b);
    clock_now = TimePoint::epoch();
    faulty = injector.wrap(std::move(pair.a), plan,
                           [this] { return clock_now; });
  }

  EventLog log;
  FaultInjector injector;
  TimePoint clock_now;
  std::unique_ptr<FaultyTransport> faulty;
  std::unique_ptr<ipc::Transport> peer;
};

TEST(FaultyTransport, CleanPlanPassesFramesThrough) {
  Harness h(FaultPlan{});
  const auto f = frame_bytes(7);
  EXPECT_TRUE(h.faulty->send_frame(f));
  const auto got = drain_all(*h.peer);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], f);
  EXPECT_EQ(h.log.size(), 0u);
}

TEST(FaultyTransport, DropsAreSilentSuccesses) {
  FaultPlan plan;
  plan.drop_prob = 1.0;
  Harness h(plan);
  EXPECT_TRUE(h.faulty->send_frame(frame_bytes(1)));  // sender never learns
  EXPECT_TRUE(drain_all(*h.peer).empty());
  EXPECT_EQ(h.log.count(ResilienceEvent::Kind::Drop), 1u);
}

TEST(FaultyTransport, ForcedFullFailsExactlyNSends) {
  Harness h(FaultPlan{});
  h.faulty->force_full(3);
  EXPECT_FALSE(h.faulty->send_frame(frame_bytes(1)));
  EXPECT_FALSE(h.faulty->send_frame(frame_bytes(2)));
  EXPECT_FALSE(h.faulty->send_frame(frame_bytes(3)));
  EXPECT_TRUE(h.faulty->send_frame(frame_bytes(4)));
  EXPECT_EQ(h.log.count(ResilienceEvent::Kind::ForcedFull), 3u);
  const auto got = drain_all(*h.peer);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], frame_bytes(4));
}

TEST(FaultyTransport, CorruptionMutatesExactlyOneFrame) {
  FaultPlan plan;
  plan.corrupt_prob = 1.0;
  Harness h(plan);
  const auto f = frame_bytes(0xAA);
  EXPECT_TRUE(h.faulty->send_frame(f));
  const auto got = drain_all(*h.peer);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].size(), f.size());
  EXPECT_NE(got[0], f);  // the XOR mask is never a no-op
  // Exactly one byte differs.
  size_t diffs = 0;
  for (size_t i = 0; i < f.size(); ++i) diffs += (got[0][i] != f[i]) ? 1 : 0;
  EXPECT_EQ(diffs, 1u);
  EXPECT_EQ(h.log.count(ResilienceEvent::Kind::Corrupt), 1u);
}

TEST(FaultyTransport, DelayHoldsFramesUntilClockAdvances) {
  FaultPlan plan;
  plan.delay_prob = 1.0;
  plan.delay = Duration::from_millis(5);
  Harness h(plan);
  EXPECT_TRUE(h.faulty->send_frame(frame_bytes(9)));
  EXPECT_EQ(h.faulty->delayed_pending(), 1u);
  EXPECT_EQ(h.faulty->flush_due(), 0u);  // not due yet
  EXPECT_TRUE(drain_all(*h.peer).empty());
  h.clock_now += Duration::from_millis(6);
  EXPECT_EQ(h.faulty->flush_due(), 1u);
  const auto got = drain_all(*h.peer);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], frame_bytes(9));
}

TEST(FaultyTransport, LaterSendsQueueBehindDelayedFrames) {
  // A delayed frame must not be overtaken: SOCK_SEQPACKET never reorders.
  FaultPlan plan;
  plan.delay_prob = 0.5;
  plan.delay = Duration::from_millis(5);
  // Send until one frame gets delayed, then send a clean follower.
  Harness h(plan, /*seed=*/7);
  uint8_t fill = 0;
  while (h.faulty->delayed_pending() == 0) {
    h.faulty->send_frame(frame_bytes(++fill));
  }
  const uint8_t delayed_fill = fill;
  h.faulty->send_frame(frame_bytes(++fill));  // must queue behind
  auto got = drain_all(*h.peer);
  for (const auto& f : got) EXPECT_LT(f[0], delayed_fill);
  h.clock_now += Duration::from_millis(6);
  EXPECT_EQ(h.faulty->flush_due(), 2u);
  got = drain_all(*h.peer);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], frame_bytes(delayed_fill));
  EXPECT_EQ(got[1], frame_bytes(fill));
}

TEST(FaultyTransport, StallBlocksReceiveUntilClockAdvances) {
  Harness h(FaultPlan{});
  h.peer->send_frame(frame_bytes(3));  // inbound toward the faulty end
  h.faulty->stall_for(Duration::from_millis(10));
  EXPECT_TRUE(h.faulty->stalled());
  EXPECT_FALSE(h.faulty->try_recv_frame().has_value());
  EXPECT_EQ(drain_all(*h.faulty).size(), 0u);
  h.clock_now += Duration::from_millis(11);
  EXPECT_FALSE(h.faulty->stalled());
  const auto got = drain_all(*h.faulty);
  ASSERT_EQ(got.size(), 1u);  // queued frames survive the stall
  EXPECT_EQ(got[0], frame_bytes(3));
}

TEST(FaultyTransport, KillLooksLikePeerDisconnect) {
  Harness h(FaultPlan{});
  EXPECT_EQ(h.faulty->status(), ipc::TransportStatus::Ok);
  h.faulty->kill();
  EXPECT_TRUE(h.faulty->killed());
  EXPECT_TRUE(h.faulty->closed());
  EXPECT_EQ(h.faulty->status(), ipc::TransportStatus::PeerDisconnected);
  EXPECT_FALSE(h.faulty->send_frame(frame_bytes(1)));
  EXPECT_FALSE(h.faulty->try_recv_frame().has_value());
  EXPECT_EQ(h.log.count(ResilienceEvent::Kind::Kill), 1u);
}

TEST(FaultyTransport, SameSeedSameFaultSequence) {
  FaultPlan plan;
  plan.drop_prob = 0.3;
  plan.corrupt_prob = 0.2;
  plan.delay_prob = 0.2;
  auto run = [&](uint64_t seed) {
    Harness h(plan, seed);
    for (int i = 0; i < 200; ++i) {
      h.faulty->send_frame(frame_bytes(static_cast<uint8_t>(i)));
      if (i % 16 == 15) {
        h.clock_now += Duration::from_millis(2);
        h.faulty->flush_due();
      }
    }
    return h.log.to_string();
  };
  const std::string a = run(1234);
  const std::string b = run(1234);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  const std::string c = run(5678);
  EXPECT_NE(a, c);  // different seed, different sequence
}

TEST(FaultInjector, SplitStreamsAreIndependent) {
  // Adding a second wrapped transport must not perturb the first one's
  // fault sequence: each wrap() gets its own split Rng stream.
  FaultPlan plan;
  plan.drop_prob = 0.5;
  auto run = [&](bool extra_transport) {
    EventLog log;
    FaultInjector inj(99, &log);
    auto pair1 = ipc::make_inproc_pair();
    auto peer1 = std::move(pair1.b);
    auto t1 = inj.wrap(std::move(pair1.a), plan, nullptr);
    std::unique_ptr<FaultyTransport> t2;
    if (extra_transport) {
      auto pair2 = ipc::make_inproc_pair();
      t2 = inj.wrap(std::move(pair2.a), plan, nullptr);
    }
    for (int i = 0; i < 64; ++i) {
      t1->send_frame(frame_bytes(static_cast<uint8_t>(i)));
    }
    // Drops are silent, so the observable is which frames got through.
    std::string pattern;
    for (const auto& f : drain_all(*peer1)) {
      pattern += static_cast<char>('a' + f[0] % 26);
    }
    return pattern;
  };
  // t1 was wrapped first both times, so its stream is identical whether
  // or not t2 exists.
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace ccp::resilience
