#include <gtest/gtest.h>

#include "sim/link.hpp"

namespace ccp::sim {
namespace {

Packet data_pkt(uint32_t flow, uint64_t seq, uint32_t len, bool ect = false) {
  Packet p;
  p.flow = flow;
  p.seq = seq;
  p.len = len;
  p.ect = ect;
  p.header_bytes = 40;
  return p;
}

TEST(Link, DeliversAfterSerializationPlusPropagation) {
  EventQueue q;
  LinkConfig cfg;
  cfg.rate_bps = 8e6;  // 1 byte per microsecond
  cfg.prop_delay = Duration::from_millis(1);
  std::vector<TimePoint> arrivals;
  Link link(q, cfg, [&](Packet) { arrivals.push_back(q.now()); });
  link.enqueue(data_pkt(0, 0, 960));  // 1000 wire bytes -> 1 ms tx
  q.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ((arrivals[0] - TimePoint::epoch()).micros(), 2000);  // 1ms tx + 1ms prop
}

TEST(Link, BackToBackPacketsSpacedByServiceTime) {
  EventQueue q;
  LinkConfig cfg;
  cfg.rate_bps = 8e6;
  cfg.prop_delay = Duration::zero();
  std::vector<TimePoint> arrivals;
  Link link(q, cfg, [&](Packet) { arrivals.push_back(q.now()); });
  for (int i = 0; i < 3; ++i) link.enqueue(data_pkt(0, i * 960, 960));
  q.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ((arrivals[1] - arrivals[0]).micros(), 1000);
  EXPECT_EQ((arrivals[2] - arrivals[1]).micros(), 1000);
}

TEST(Link, PreservesFifoOrder) {
  EventQueue q;
  LinkConfig cfg;
  std::vector<uint64_t> seqs;
  Link link(q, cfg, [&](Packet p) { seqs.push_back(p.seq); });
  for (uint64_t i = 0; i < 50; ++i) link.enqueue(data_pkt(0, i, 100));
  q.run();
  ASSERT_EQ(seqs.size(), 50u);
  EXPECT_TRUE(std::is_sorted(seqs.begin(), seqs.end()));
}

TEST(Link, DropTailWhenFull) {
  EventQueue q;
  LinkConfig cfg;
  cfg.rate_bps = 1e3;  // very slow: everything queues
  cfg.queue_capacity_bytes = 3000;
  int delivered = 0;
  Link link(q, cfg, [&](Packet) { ++delivered; });
  for (int i = 0; i < 10; ++i) link.enqueue(data_pkt(0, i, 960));  // 1000 wire
  EXPECT_GT(link.stats().dropped_pkts, 0u);
  // Capacity admits 3 packets; the first starts transmitting immediately
  // so a 4th may slip in as the queue drains — but never more than the
  // byte budget allows at once.
  EXPECT_LE(link.queue_bytes(), cfg.queue_capacity_bytes);
}

TEST(Link, EcnMarksAboveThreshold) {
  EventQueue q;
  LinkConfig cfg;
  cfg.rate_bps = 1e3;
  cfg.queue_capacity_bytes = 100000;
  cfg.ecn_threshold_bytes = 2000;
  std::vector<bool> ce;
  Link link(q, cfg, [&](Packet p) { ce.push_back(p.ce); });
  for (int i = 0; i < 5; ++i) link.enqueue(data_pkt(0, i, 960, /*ect=*/true));
  q.run();
  ASSERT_EQ(ce.size(), 5u);
  EXPECT_FALSE(ce[0]);  // queue below threshold on arrival
  EXPECT_TRUE(ce[3]);   // standing queue above threshold
  EXPECT_TRUE(ce[4]);
  EXPECT_GT(link.stats().marked_pkts, 0u);
}

TEST(Link, NonEctPacketsAreNotMarked) {
  EventQueue q;
  LinkConfig cfg;
  cfg.rate_bps = 1e3;
  cfg.ecn_threshold_bytes = 500;
  cfg.queue_capacity_bytes = 100000;
  std::vector<bool> ce;
  Link link(q, cfg, [&](Packet p) { ce.push_back(p.ce); });
  for (int i = 0; i < 5; ++i) link.enqueue(data_pkt(0, i, 960, /*ect=*/false));
  q.run();
  for (bool marked : ce) EXPECT_FALSE(marked);
}

TEST(Link, StatsAccounting) {
  EventQueue q;
  LinkConfig cfg;
  Link link(q, cfg, [](Packet) {});
  link.enqueue(data_pkt(0, 0, 960));
  link.enqueue(data_pkt(0, 960, 960));
  q.run();
  EXPECT_EQ(link.stats().enqueued_pkts, 2u);
  EXPECT_EQ(link.stats().delivered_pkts, 2u);
  EXPECT_EQ(link.stats().delivered_bytes, 2000u);
}

TEST(DelayPipe, PureDelay) {
  EventQueue q;
  std::vector<TimePoint> arrivals;
  DelayPipe pipe(q, Duration::from_millis(5), [&](Packet) { arrivals.push_back(q.now()); });
  pipe.enqueue(data_pkt(0, 0, 100));
  pipe.enqueue(data_pkt(0, 100, 100));
  q.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ((arrivals[0] - TimePoint::epoch()).millis(), 5);
  EXPECT_EQ((arrivals[1] - TimePoint::epoch()).millis(), 5);  // no serialization
}

}  // namespace
}  // namespace ccp::sim
