// Logger tests: format_log stack/heap paths and the truncation cap, plus
// the pluggable sink — including the contract that warnings for shm
// ring-full and frame decode errors are observable through it without
// scraping stderr.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "datapath/datapath.hpp"
#include "ipc/transport.hpp"
#include "util/logging.hpp"

namespace ccp {
namespace {

using detail::format_log;

/// Installs a capturing sink for the duration of a test.
class SinkCapture {
 public:
  struct Record {
    LogLevel level;
    std::string file;
    int line;
    std::string msg;
  };

  SinkCapture() {
    set_log_sink([this](LogLevel level, const char* file, int line,
                        std::string_view msg) {
      records_.push_back({level, file, line, std::string(msg)});
    });
  }
  ~SinkCapture() { set_log_sink(nullptr); }

  const std::vector<Record>& records() const { return records_; }
  bool contains(const std::string& needle) const {
    for (const auto& r : records_) {
      if (r.msg.find(needle) != std::string::npos) return true;
    }
    return false;
  }

 private:
  std::vector<Record> records_;
};

TEST(FormatLog, ShortMessageExact) {
  EXPECT_EQ(format_log("hello %d %s", 42, "world"), "hello 42 world");
  EXPECT_EQ(format_log("%s", ""), "");
}

TEST(FormatLog, ExactlyAtStackBoundary) {
  // 511 chars fits the 512-byte stack buffer; 512 and beyond take the
  // heap path. All must come back unmangled.
  for (const size_t len : {511u, 512u, 513u, 4096u}) {
    const std::string payload(len, 'x');
    const std::string out = format_log("%s", payload.c_str());
    EXPECT_EQ(out, payload) << "len=" << len;
  }
}

TEST(FormatLog, LongMessageNotSilentlyTruncated) {
  // Far larger than any stack buffer (but under the cap): the full text
  // must survive.
  const std::string payload(50'000, 'y');
  const std::string out = format_log("<%s>", payload.c_str());
  EXPECT_EQ(out.size(), payload.size() + 2);
  EXPECT_EQ(out.front(), '<');
  EXPECT_EQ(out.back(), '>');
}

TEST(FormatLog, CapAppendsEllipsisMarker) {
  // Messages beyond the 64 KiB cap are cut, but visibly: the result ends
  // with the U+2026 ellipsis instead of pretending to be complete.
  const std::string payload(200'000, 'z');
  const std::string out = format_log("%s", payload.c_str());
  constexpr size_t kCap = 64 * 1024;
  const std::string ellipsis = "\xE2\x80\xA6";
  ASSERT_EQ(out.size(), kCap + ellipsis.size());
  EXPECT_EQ(out.substr(kCap), ellipsis);
  EXPECT_EQ(out[kCap - 1], 'z');
}

TEST(LogSink, CapturesRecordsAndRestores) {
  set_log_level(LogLevel::Warn);
  {
    SinkCapture capture;
    CCP_WARN("sink test %d", 7);
    CCP_DEBUG("below threshold");  // filtered before reaching the sink
    ASSERT_EQ(capture.records().size(), 1u);
    const auto& r = capture.records()[0];
    EXPECT_EQ(r.level, LogLevel::Warn);
    EXPECT_EQ(r.msg, "sink test 7");
    EXPECT_EQ(r.file, "util_logging_test.cc");  // path already stripped
    EXPECT_GT(r.line, 0);
  }
  // Sink removed: this must not crash (falls back to stderr).
  CCP_WARN("after sink removal");
}

TEST(LogSink, SeesDatapathDecodeErrorWarning) {
  set_log_level(LogLevel::Warn);
  SinkCapture capture;
  datapath::DatapathConfig cfg;
  datapath::CcpDatapath dp(cfg, [](std::span<const uint8_t>) {});
  const uint8_t garbage[] = {0xde, 0xad, 0xbe, 0xef, 0x01};
  dp.handle_frame(garbage, TimePoint::epoch());
  EXPECT_TRUE(capture.contains("malformed frame"));
  EXPECT_EQ(dp.stats().decode_errors, 1u);
}

TEST(LogSink, SeesAgentDecodeErrorWarning) {
  set_log_level(LogLevel::Warn);
  SinkCapture capture;
  agent::AgentConfig cfg;
  agent::CcpAgent the_agent(cfg, [](std::span<const uint8_t>) {});
  const uint8_t garbage[] = {0xff, 0xff, 0xff};
  the_agent.handle_frame(garbage);
  EXPECT_TRUE(capture.contains("malformed frame"));
}

TEST(LogSink, SeesShmRingFullWarning) {
  set_log_level(LogLevel::Warn);
  SinkCapture capture;
  // Tiny ring, no reader: once the ring is full the next frame cannot
  // fit and must be dropped with a warning routed through the sink.
  auto pair = ipc::make_shm_ring_pair(1024, ipc::ShmWaitMode::BusyPoll);
  std::vector<uint8_t> frame(700, 0xab);
  while (pair.a->send_frame(frame)) {
  }
  EXPECT_TRUE(capture.contains("ring full"));
}

}  // namespace
}  // namespace ccp
