#include <gtest/gtest.h>

#include "util/time.hpp"
#include "util/units.hpp"

namespace ccp {
namespace {

TEST(Duration, Constructors) {
  EXPECT_EQ(Duration::from_nanos(1500).nanos(), 1500);
  EXPECT_EQ(Duration::from_micros(3).nanos(), 3000);
  EXPECT_EQ(Duration::from_millis(2).micros(), 2000);
  EXPECT_EQ(Duration::from_secs(1).millis(), 1000);
  EXPECT_DOUBLE_EQ(Duration::from_secs_f(0.25).secs(), 0.25);
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_FALSE(Duration::from_nanos(1).is_zero());
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::from_millis(10);
  const Duration b = Duration::from_millis(4);
  EXPECT_EQ((a + b).millis(), 14);
  EXPECT_EQ((a - b).millis(), 6);
  EXPECT_TRUE((b - a).is_negative());
  EXPECT_EQ((a * 2.5).millis(), 25);
  EXPECT_EQ((a / 2).millis(), 5);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::from_micros(1), Duration::from_micros(2));
  EXPECT_EQ(Duration::from_micros(1000), Duration::from_millis(1));
  EXPECT_GT(Duration::max(), Duration::from_secs(1'000'000));
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::from_millis(1);
  d += Duration::from_millis(2);
  EXPECT_EQ(d.millis(), 3);
  d -= Duration::from_millis(1);
  EXPECT_EQ(d.millis(), 2);
}

TEST(TimePoint, Arithmetic) {
  const TimePoint t0 = TimePoint::epoch();
  const TimePoint t1 = t0 + Duration::from_millis(5);
  EXPECT_EQ((t1 - t0).millis(), 5);
  EXPECT_EQ((t1 - Duration::from_millis(5)), t0);
  EXPECT_LT(t0, t1);
  TimePoint t2 = t0;
  t2 += Duration::from_secs(1);
  EXPECT_DOUBLE_EQ(t2.secs(), 1.0);
}

TEST(TimePoint, MonotonicNowAdvances) {
  const TimePoint a = monotonic_now();
  const TimePoint b = monotonic_now();
  EXPECT_GE(b.nanos(), a.nanos());
}

TEST(Units, ParseBandwidth) {
  EXPECT_DOUBLE_EQ(parse_bandwidth_bps("10Gbps"), 10e9);
  EXPECT_DOUBLE_EQ(parse_bandwidth_bps("1 Gbit/s"), 1e9);
  EXPECT_DOUBLE_EQ(parse_bandwidth_bps("250Mbps"), 250e6);
  EXPECT_DOUBLE_EQ(parse_bandwidth_bps("64kbps"), 64e3);
  EXPECT_DOUBLE_EQ(parse_bandwidth_bps("1e9 bps"), 1e9);
  EXPECT_DOUBLE_EQ(parse_bandwidth_bps("100"), 100.0);
  EXPECT_THROW(parse_bandwidth_bps("10 potatoes"), std::invalid_argument);
  EXPECT_THROW(parse_bandwidth_bps("fast"), std::invalid_argument);
}

TEST(Units, ParseDuration) {
  EXPECT_EQ(parse_duration("10ms").millis(), 10);
  EXPECT_EQ(parse_duration("48us").micros(), 48);
  EXPECT_EQ(parse_duration("100ns").nanos(), 100);
  EXPECT_EQ(parse_duration("2s").millis(), 2000);
  EXPECT_EQ(parse_duration("1.5ms").micros(), 1500);
  EXPECT_THROW(parse_duration("10 fortnights"), std::invalid_argument);
}

TEST(Units, ParseBytes) {
  EXPECT_EQ(parse_bytes("1500B"), 1500u);
  EXPECT_EQ(parse_bytes("64KB"), 64'000u);
  EXPECT_EQ(parse_bytes("1.5MB"), 1'500'000u);
  EXPECT_THROW(parse_bytes("12 parsecs"), std::invalid_argument);
}

TEST(Units, Format) {
  EXPECT_EQ(format_bandwidth(9.41e9), "9.41 Gbit/s");
  EXPECT_EQ(format_bandwidth(250e6), "250.00 Mbit/s");
  EXPECT_EQ(format_duration(Duration::from_micros(48)), "48.0 us");
  EXPECT_EQ(format_duration(Duration::from_millis(10)), "10.00 ms");
  EXPECT_EQ(format_bytes(1500), "1.50 KB");
}

struct RoundTripCase {
  const char* text;
  double bps;
};

class BandwidthRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(BandwidthRoundTrip, ParsesToExpected) {
  EXPECT_DOUBLE_EQ(parse_bandwidth_bps(GetParam().text), GetParam().bps);
}

INSTANTIATE_TEST_SUITE_P(
    AllUnits, BandwidthRoundTrip,
    ::testing::Values(RoundTripCase{"1bps", 1.0}, RoundTripCase{"1kbps", 1e3},
                      RoundTripCase{"1Mbps", 1e6}, RoundTripCase{"1Gbps", 1e9},
                      RoundTripCase{"2.5Gbit", 2.5e9},
                      RoundTripCase{"0.5 Mbit/s", 0.5e6}));

}  // namespace
}  // namespace ccp
