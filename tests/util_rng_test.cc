#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace ccp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMoments) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(2.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(19);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(23);
  Rng child = parent.split();
  // The child stream should not replay the parent's output.
  Rng parent2(23);
  (void)parent2.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == parent.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0u, 1u, 42u, 0xdeadbeefu,
                                           UINT64_MAX));

}  // namespace
}  // namespace ccp
