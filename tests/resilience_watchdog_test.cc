// Datapath watchdog: flows whose agent goes silent for k RTTs fall back
// to the in-datapath NewReno program and recover when the agent returns
// (docs/RESILIENCE.md).
#include <gtest/gtest.h>

#include "datapath/flow.hpp"

namespace ccp::datapath {
namespace {

struct SinkLog {
  std::vector<ipc::MeasurementMsg> reports;

  MessageSink sink() {
    return [this](const ipc::Message& msg, bool) {
      if (const auto* m = std::get_if<ipc::MeasurementMsg>(&msg)) {
        reports.push_back(*m);
      }
    };
  }
};

TimePoint at_ms(int64_t ms) {
  return TimePoint::epoch() + Duration::from_millis(ms);
}

FlowConfig watchdog_config(double rtts, Duration floor = Duration::zero()) {
  FlowConfig cfg;
  cfg.mss = 1000;
  cfg.init_cwnd_bytes = 20000;
  cfg.min_cwnd_bytes = 2000;
  cfg.smooth_cwnd = false;  // crisp cwnd assertions
  cfg.watchdog_rtts = rtts;
  cfg.agent_timeout = floor;
  return cfg;
}

ipc::InstallMsg agent_program(ipc::FlowId id) {
  ipc::InstallMsg msg;
  msg.flow_id = id;
  msg.program_text = R"(
    fold { acked := acked + Pkt.bytes_acked init 0; }
    control { Cwnd($cwnd); WaitRtts(1.0); Report(); }
  )";
  msg.var_names = {"cwnd"};
  msg.var_values = {20000.0};
  return msg;
}

/// Feeds one 10 ms-RTT ACK per ms over (from_ms, to_ms].
void ack_span(CcpFlow& flow, int64_t from_ms, int64_t to_ms) {
  for (int64_t ms = from_ms + 1; ms <= to_ms; ++ms) {
    AckEvent ev;
    ev.now = at_ms(ms);
    ev.bytes_acked = 1000;
    ev.packets_acked = 1;
    ev.rtt_sample = Duration::from_millis(10);
    flow.on_ack(ev);
  }
}

TEST(Watchdog, DisabledByDefaultNeverFallsBack) {
  SinkLog log;
  FlowConfig cfg = watchdog_config(0);  // both knobs zero
  CcpFlow flow(1, cfg, log.sink());
  flow.install(agent_program(1), at_ms(1));
  ack_span(flow, 1, 10'000);  // 10 s of agent silence
  EXPECT_FALSE(flow.in_fallback());
}

TEST(Watchdog, EntersFallbackAfterKRtts) {
  SinkLog log;
  CcpFlow flow(1, watchdog_config(4.0), log.sink());
  flow.install(agent_program(1), at_ms(1));
  // 4 RTTs at 10 ms = 40 ms of silence allowed.
  ack_span(flow, 1, 35);
  EXPECT_FALSE(flow.in_fallback());
  ack_span(flow, 35, 60);
  EXPECT_TRUE(flow.in_fallback());
}

TEST(Watchdog, NotArmedUntilAgentPrograms) {
  SinkLog log;
  CcpFlow flow(1, watchdog_config(4.0), log.sink());
  // No agent install at all: the default program keeps running forever.
  ack_span(flow, 0, 1000);
  EXPECT_FALSE(flow.in_fallback());
}

TEST(Watchdog, FixedTimeoutActsAsFloor) {
  SinkLog log;
  // 1 RTT (10 ms) staleness, but a 200 ms floor: both must be exceeded.
  CcpFlow flow(1, watchdog_config(1.0, Duration::from_millis(200)),
               log.sink());
  flow.install(agent_program(1), at_ms(1));
  ack_span(flow, 1, 150);
  EXPECT_FALSE(flow.in_fallback());
  ack_span(flow, 150, 250);
  EXPECT_TRUE(flow.in_fallback());
}

TEST(Watchdog, FixedTimeoutAloneWorks) {
  SinkLog log;
  CcpFlow flow(1, watchdog_config(0, Duration::from_millis(50)), log.sink());
  flow.install(agent_program(1), at_ms(1));
  ack_span(flow, 1, 40);
  EXPECT_FALSE(flow.in_fallback());
  ack_span(flow, 40, 80);
  EXPECT_TRUE(flow.in_fallback());
}

TEST(Watchdog, TickAloneTriggersFallback) {
  // An idle flow (no ACKs arriving — e.g. the path is dead too) still
  // falls back via the periodic tick.
  SinkLog log;
  CcpFlow flow(1, watchdog_config(4.0), log.sink());
  flow.install(agent_program(1), at_ms(1));
  ack_span(flow, 1, 5);  // seed srtt
  flow.tick(at_ms(500));
  EXPECT_TRUE(flow.in_fallback());
}

TEST(Watchdog, FallbackHalvesWindowOnEntry) {
  SinkLog log;
  CcpFlow flow(1, watchdog_config(4.0), log.sink());
  flow.install(agent_program(1), at_ms(1));
  ack_span(flow, 1, 30);
  ASSERT_FALSE(flow.in_fallback());
  const uint64_t before = flow.cwnd_bytes();
  // Step one ms at a time so the window is sampled right at entry,
  // before the fallback's own growth moves it again.
  int64_t ms = 30;
  while (!flow.in_fallback() && ms < 100) {
    ack_span(flow, ms, ms + 1);
    ++ms;
  }
  ASSERT_TRUE(flow.in_fallback());
  EXPECT_EQ(flow.cwnd_bytes(), before / 2);
  EXPECT_GE(flow.cwnd_bytes(), 2000u);  // respects min_cwnd
}

TEST(Watchdog, FallbackGrowsWindowWithoutAgent) {
  SinkLog log;
  CcpFlow flow(1, watchdog_config(4.0), log.sink());
  flow.install(agent_program(1), at_ms(1));
  ack_span(flow, 1, 60);
  ASSERT_TRUE(flow.in_fallback());
  const uint64_t entry_cwnd = flow.cwnd_bytes();
  // Several RTTs of clean ACKs: NewReno congestion avoidance must grow
  // the window with no agent in the loop at all.
  ack_span(flow, 60, 160);
  EXPECT_TRUE(flow.in_fallback());
  EXPECT_GT(flow.cwnd_bytes(), entry_cwnd);
}

TEST(Watchdog, FallbackReducesWindowOnLoss) {
  SinkLog log;
  CcpFlow flow(1, watchdog_config(4.0), log.sink());
  flow.install(agent_program(1), at_ms(1));
  ack_span(flow, 1, 160);
  ASSERT_TRUE(flow.in_fallback());
  const uint64_t before = flow.cwnd_bytes();
  LossEvent loss;
  loss.now = at_ms(161);
  loss.lost_packets = 3;
  flow.on_loss(loss);
  // The halving lands at the next control pass (once per RTT).
  ack_span(flow, 161, 185);
  EXPECT_LT(flow.cwnd_bytes(), before);
}

TEST(Watchdog, InstallRecoversAndRearms) {
  SinkLog log;
  CcpFlow flow(1, watchdog_config(4.0), log.sink());
  flow.install(agent_program(1), at_ms(1));
  ack_span(flow, 1, 60);
  ASSERT_TRUE(flow.in_fallback());
  // Agent comes back with a fresh Install: flow is its again.
  flow.install(agent_program(1), at_ms(61));
  EXPECT_FALSE(flow.in_fallback());
  // Watchdog is re-armed: a second silence falls back again.
  ack_span(flow, 61, 130);
  EXPECT_TRUE(flow.in_fallback());
}

TEST(Watchdog, UpdateFieldsRecoveryDropsStaleValues) {
  SinkLog log;
  CcpFlow flow(1, watchdog_config(4.0), log.sink());
  flow.install(agent_program(1), at_ms(1));
  ack_span(flow, 1, 60);
  ASSERT_TRUE(flow.in_fallback());
  const uint64_t fallback_cwnd = flow.cwnd_bytes();
  // The agent's update targets the program the fallback replaced; its
  // positional values must not rebind the fallback's own variables.
  ipc::UpdateFieldsMsg upd;
  upd.flow_id = 1;
  upd.var_values = {90000.0};
  flow.update_fields(upd, at_ms(61));
  EXPECT_FALSE(flow.in_fallback());
  EXPECT_EQ(flow.cwnd_bytes(), fallback_cwnd);  // stale value dropped
}

TEST(Watchdog, DirectControlRecoversAndApplies) {
  SinkLog log;
  CcpFlow flow(1, watchdog_config(4.0), log.sink());
  flow.install(agent_program(1), at_ms(1));
  ack_span(flow, 1, 60);
  ASSERT_TRUE(flow.in_fallback());
  ipc::DirectControlMsg dc;
  dc.flow_id = 1;
  dc.cwnd_bytes = 12345.0;
  flow.direct_control(dc, at_ms(61));
  EXPECT_FALSE(flow.in_fallback());
  EXPECT_EQ(flow.cwnd_bytes(), 12345u);
}

TEST(Watchdog, FallbackKeepsReporting) {
  // Reports keep flowing in fallback, so a reconnected agent immediately
  // sees fresh measurements even before it re-installs.
  SinkLog log;
  CcpFlow flow(1, watchdog_config(4.0), log.sink());
  flow.install(agent_program(1), at_ms(1));
  ack_span(flow, 1, 60);
  ASSERT_TRUE(flow.in_fallback());
  const size_t before = log.reports.size();
  ack_span(flow, 60, 160);
  EXPECT_GT(log.reports.size(), before);
}

}  // namespace
}  // namespace ccp::datapath
