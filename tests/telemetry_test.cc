// Telemetry layer unit tests: counter sharding exactness under threads,
// histogram bucket geometry and percentile error bounds, registry
// snapshots racing live recording, the trace ring, exporters, and a
// stats-socket round trip. This suite runs under ASan/UBSan in CI and
// has a dedicated TSan job (the counters, histograms, and trace ring are
// all written from concurrent threads here on purpose).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ipc/wire.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/stats_server.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_ring.hpp"

namespace ccp::telemetry {
namespace {

TEST(Counter, SingleThreadExact) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  for (int i = 0; i < 1000; ++i) c.inc();
  EXPECT_EQ(c.value(), 1000u);
  c.inc(42);
  EXPECT_EQ(c.value(), 1042u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ShardedAcrossThreadsExact) {
  // More threads than shards: early threads get exclusive cells
  // (load+store), later ones share the overflow cell (fetch_add). Either
  // way no increment may be lost.
  constexpr int kThreads = 32;
  constexpr uint64_t kIncsPerThread = 100'000;
  Counter c;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kIncsPerThread; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kIncsPerThread);
}

TEST(Gauge, SetAddSub) {
  Gauge g;
  g.set(10);
  EXPECT_EQ(g.value(), 10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(Histogram, ValuesBelowSubBucketsAreExact) {
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::index_of(v), v);
    EXPECT_EQ(Histogram::bucket_lower(v), v);
    EXPECT_EQ(Histogram::bucket_upper(v), v);
  }
}

TEST(Histogram, BucketBoundsContainValue) {
  // Sweep power-of-two edges and in-between values across the full range.
  std::vector<uint64_t> values;
  for (int e = 3; e < 63; ++e) {
    const uint64_t p = 1ull << e;
    values.push_back(p - 1);
    values.push_back(p);
    values.push_back(p + 1);
    values.push_back(p + p / 3);
    values.push_back(p + p / 2);
  }
  for (const uint64_t v : values) {
    const size_t idx = Histogram::index_of(v);
    ASSERT_LT(idx, Histogram::kBuckets) << "v=" << v;
    EXPECT_LE(Histogram::bucket_lower(idx), v) << "v=" << v;
    EXPECT_GE(Histogram::bucket_upper(idx), v) << "v=" << v;
    // Relative error bound: bucket width <= lower/kSubBuckets (3.125%).
    const uint64_t lower = Histogram::bucket_lower(idx);
    const uint64_t width = Histogram::bucket_upper(idx) - lower + 1;
    EXPECT_LE(width, lower / Histogram::kSubBuckets + 1) << "v=" << v;
  }
}

TEST(Histogram, BucketsPartitionTheRange) {
  // Consecutive buckets tile the value space with no gaps or overlaps.
  for (size_t idx = 1; idx < 200; ++idx) {
    EXPECT_EQ(Histogram::bucket_lower(idx), Histogram::bucket_upper(idx - 1) + 1)
        << "idx=" << idx;
  }
}

TEST(Histogram, QuantilesWithinRelativeErrorBound) {
  Histogram h;
  constexpr uint64_t kN = 10'000;
  uint64_t sum = 0;
  for (uint64_t v = 1; v <= kN; ++v) {
    h.record(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), kN);
  EXPECT_EQ(h.sum(), sum);
  // Quantiles resolve to a bucket and interpolate within it; with 32
  // sub-buckets per octave the estimate is within ~3.2% of the true value.
  const double q50 = h.quantile(0.5);
  const double q99 = h.quantile(0.99);
  EXPECT_GE(q50, 0.5 * kN * 0.97);
  EXPECT_LE(q50, 0.5 * kN * 1.04 + 1);
  EXPECT_GE(q99, 0.99 * kN * 0.97);
  EXPECT_LE(q99, 0.99 * kN * 1.04 + 1);
  EXPECT_GE(h.quantile(1.0), static_cast<double>(kN));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, SnapshotQuantileMatchesLiveQuantile) {
  Histogram h;
  for (uint64_t v = 1; v <= 5000; ++v) h.record(v * 7);
  HistogramSample sample;
  h.collect(sample);
  EXPECT_EQ(sample.count, 5000u);
  EXPECT_EQ(sample.sum, h.sum());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(sample.quantile(q), h.quantile(q)) << "q=" << q;
  }
  EXPECT_GT(sample.mean(), 0.0);
  EXPECT_GE(sample.max(), 5000.0 * 7);
}

TEST(Registry, AddSnapshotRemove) {
  Counter c;
  Gauge g;
  Histogram h;
  auto& reg = MetricsRegistry::global();
  reg.add("test_registry_counter", &c);
  reg.add("test_registry_gauge", &g);
  reg.add("test_registry_hist", &h);
  c.inc(3);
  g.set(-4);
  h.record(100);

  const Snapshot snap = reg.snapshot();
  ASSERT_NE(snap.counter("test_registry_counter"), nullptr);
  EXPECT_EQ(snap.counter("test_registry_counter")->value, 3u);
  ASSERT_NE(snap.gauge("test_registry_gauge"), nullptr);
  EXPECT_EQ(snap.gauge("test_registry_gauge")->value, -4);
  ASSERT_NE(snap.histogram("test_registry_hist"), nullptr);
  EXPECT_EQ(snap.histogram("test_registry_hist")->count, 1u);

  reg.remove("test_registry_counter");
  reg.remove("test_registry_gauge");
  reg.remove("test_registry_hist");
  const Snapshot after = reg.snapshot();
  EXPECT_EQ(after.counter("test_registry_counter"), nullptr);
  EXPECT_EQ(after.gauge("test_registry_gauge"), nullptr);
  EXPECT_EQ(after.histogram("test_registry_hist"), nullptr);
}

TEST(Registry, SnapshotWhileRecordingIsConsistent) {
  // Writers hammer a counter and histogram while the main thread
  // snapshots in a loop. Snapshot values must be monotonic across
  // snapshots (counters never go backwards) and the final totals exact.
  Counter c;
  Histogram h;
  auto& reg = MetricsRegistry::global();
  reg.add("test_race_counter", &c);
  reg.add("test_race_hist", &h);

  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 200'000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {}
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        c.inc();
        h.record(i & 0xFFFF);
      }
    });
  }
  go.store(true, std::memory_order_release);

  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const Snapshot snap = reg.snapshot();
    const auto* cs = snap.counter("test_race_counter");
    ASSERT_NE(cs, nullptr);
    EXPECT_GE(cs->value, last);
    last = cs->value;
    const auto* hs = snap.histogram("test_race_hist");
    ASSERT_NE(hs, nullptr);
    uint64_t bucket_total = 0;
    for (const auto& b : hs->buckets) bucket_total += b.count;
    // Bucket reads race the count_ read, so allow skew but no nonsense.
    EXPECT_LE(bucket_total, kWriters * kPerWriter);
  }
  for (auto& th : writers) th.join();

  EXPECT_EQ(c.value(), kWriters * kPerWriter);
  EXPECT_EQ(h.count(), kWriters * kPerWriter);
  reg.remove("test_race_counter");
  reg.remove("test_race_hist");
}

TEST(Snapshot, JsonAndPrometheusExporters) {
  Counter c;
  Histogram h;
  auto& reg = MetricsRegistry::global();
  reg.add("test_export_counter", &c);
  reg.add("test_export_hist", &h);
  c.inc(7);
  h.record(1000);

  const Snapshot snap = reg.snapshot();
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"test_export_counter\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test_export_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ns\""), std::string::npos);

  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("test_export_counter 7"), std::string::npos) << prom;
  EXPECT_NE(prom.find("test_export_hist_count 1"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);

  reg.remove("test_export_counter");
  reg.remove("test_export_hist");
}

TEST(TraceRing, KeepsMostRecentAfterWrap) {
  TraceRing ring(64);
  EXPECT_EQ(ring.capacity(), 64u);
  for (uint64_t i = 0; i < 200; ++i) {
    ring.record(TraceKind::Report, static_cast<uint32_t>(i), double(i), 1000 + i);
  }
  EXPECT_EQ(ring.recorded(), 200u);
  const auto events = ring.dump();
  ASSERT_EQ(events.size(), 64u);
  // Oldest surviving event is #136 (200 - 64), newest is #199, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].t_ns, 1000u + 136 + i);
    EXPECT_EQ(events[i].flow, 136u + i);
  }
}

TEST(TraceRing, ConcurrentWritersProduceOnlyValidEvents) {
  TraceRing ring(256);
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  std::atomic<bool> stop{false};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, &stop, w] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ring.record(TraceKind::SetCwnd, static_cast<uint32_t>(w), 1.5, ++i);
      }
    });
  }
  // Dump repeatedly while writers lap the ring; every event the reader
  // returns must be fully-written (kind/flow sane), never torn garbage.
  for (int i = 0; i < 200; ++i) {
    for (const auto& ev : ring.dump()) {
      EXPECT_EQ(ev.kind, TraceKind::SetCwnd);
      EXPECT_LT(ev.flow, static_cast<uint32_t>(kWriters));
      EXPECT_EQ(ev.value, 1.5);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writers) th.join();
}

TEST(TraceRing, GlobalEnableDisable) {
  EXPECT_EQ(trace_ring(), nullptr);
  enable_trace(128);
  ASSERT_NE(trace_ring(), nullptr);
  trace(TraceKind::FlowCreate, 1, 14600.0);
  EXPECT_EQ(trace_ring()->recorded(), 1u);
  disable_trace();
  EXPECT_EQ(trace_ring(), nullptr);
  trace(TraceKind::FlowCreate, 1, 14600.0);  // no-op when disabled
}

TEST(Telemetry, EnableDisableToggle) {
  EXPECT_TRUE(enabled());  // default on
  set_enabled(false);
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
}

TEST(StatsServer, SnapshotAndTraceRoundTrip) {
  const std::string path =
      "/tmp/ccp_telemetry_test_" + std::to_string(::getpid()) + ".sock";
  Counter c;
  MetricsRegistry::global().add("test_stats_rt_counter", &c);
  c.inc(99);
  enable_trace(64);
  trace(TraceKind::Report, 5, 1.0);
  trace(TraceKind::Urgent, 5, 2.0);

  {
    StatsServer server(path);
    auto client = StatsClient::connect(path);
    ASSERT_NE(client, nullptr);

    const auto snap = client->snapshot();
    ASSERT_TRUE(snap.has_value());
    EXPECT_GT(snap->wall_ns, 0u);
    const auto* cs = snap->counter("test_stats_rt_counter");
    ASSERT_NE(cs, nullptr);
    EXPECT_EQ(cs->value, 99u);

    const auto events = client->trace();
    ASSERT_TRUE(events.has_value());
    ASSERT_GE(events->size(), 2u);
    EXPECT_EQ((*events)[events->size() - 2].kind, TraceKind::Report);
    EXPECT_EQ(events->back().kind, TraceKind::Urgent);
    EXPECT_EQ(events->back().flow, 5u);
    EXPECT_EQ(events->back().value, 2.0);
  }
  disable_trace();
  MetricsRegistry::global().remove("test_stats_rt_counter");
  EXPECT_EQ(StatsClient::connect(path), nullptr) << "server gone after dtor";
}

TEST(StatsServer, EncodeDecodeSnapshotRoundTrip) {
  Snapshot in;
  in.wall_ns = 123456789;
  in.counters.push_back({"a_total", 42});
  in.gauges.push_back({"g", -17});
  HistogramSample hs;
  hs.name = "h_ns";
  hs.count = 2;
  hs.sum = 300;
  hs.buckets.push_back({127, 1});
  hs.buckets.push_back({255, 1});
  in.histograms.push_back(hs);

  ipc::Encoder enc;
  encode_snapshot(enc, in);
  ipc::Decoder dec(enc.buffer());
  const Snapshot out = decode_snapshot(dec);
  EXPECT_EQ(out.wall_ns, in.wall_ns);
  ASSERT_EQ(out.counters.size(), 1u);
  EXPECT_EQ(out.counters[0].name, "a_total");
  EXPECT_EQ(out.counters[0].value, 42u);
  ASSERT_EQ(out.gauges.size(), 1u);
  EXPECT_EQ(out.gauges[0].value, -17);
  ASSERT_EQ(out.histograms.size(), 1u);
  EXPECT_EQ(out.histograms[0].sum, 300u);
  ASSERT_EQ(out.histograms[0].buckets.size(), 2u);
  EXPECT_EQ(out.histograms[0].buckets[1].upper, 255u);
}

}  // namespace
}  // namespace ccp::telemetry
