// Shared output helpers for the figure/table reproduction benches.
//
// Every bench prints: a header naming the paper artifact it regenerates,
// the workload parameters, and the rows/series the paper reports. The
// EXPERIMENTS.md file records these outputs next to the paper's values.
#pragma once

#include <cstdio>
#include <string>

namespace ccp::bench {

inline void banner(const char* artifact, const char* description) {
  std::printf("\n");
  std::printf("==============================================================\n");
  std::printf("%s\n", artifact);
  std::printf("  %s\n", description);
  std::printf("==============================================================\n");
}

inline void section(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

}  // namespace ccp::bench
