// Reproduces Figure 2: "CDF of RTT between a Linux kernel module and
// user-space (using Netlink sockets) and between two user-space processes
// (using Unix domain sockets)."
//
// Substitutions (see DESIGN.md): we cannot load a kernel module, so the
// Netlink role — a lower-overhead channel than Unix sockets — is played
// by a shared-memory ring with an eventfd doorbell. The paper's second
// effect (IPC gets *faster* under high CPU utilization, because Intel
// TurboBoost keeps the core clocked up and the receiver never takes a
// scheduler wakeup) is reproduced by eliminating the wakeup: busy-poll
// receivers when a second CPU exists, otherwise a same-thread
// send/receive alternation that measures the pure mechanism cost.
//
// Method (matches the paper): 60,000 ping-pong round trips per
// configuration; report the CDF.
#include <cstdio>
#include <thread>

#include "bench/bench_common.hpp"
#include "ipc/transport.hpp"
#include "util/quantiles.hpp"

namespace {

using namespace ccp;

constexpr int kSamples = 60000;

SampleSet measure_threaded(ipc::Transport& client, ipc::Transport& server,
                           int samples) {
  std::thread echo([&server, samples] {
    for (int i = 0; i < samples; ++i) {
      auto frame = server.recv_frame(Duration::from_secs(10));
      if (!frame) break;
      server.send_frame(*frame);
    }
  });

  SampleSet rtts;
  rtts.reserve(samples);
  // A CCP report-sized payload: 8 fold registers plus headers.
  std::vector<uint8_t> payload(96, 0x42);
  for (int i = 0; i < samples; ++i) {
    const TimePoint start = monotonic_now();
    client.send_frame(payload);
    auto reply = client.recv_frame(Duration::from_secs(10));
    const TimePoint end = monotonic_now();
    if (!reply) break;
    rtts.add(static_cast<double>((end - start).nanos()) / 1000.0);  // us
  }
  echo.join();
  return rtts;
}

/// Same-thread alternation: client sends, "server" side echoes inline,
/// client receives. No scheduler involvement at all — the mechanism-only
/// floor, analogous to the paper's hot-core measurements.
SampleSet measure_inline(ipc::Transport& client, ipc::Transport& server,
                         int samples) {
  SampleSet rtts;
  rtts.reserve(samples);
  std::vector<uint8_t> payload(96, 0x42);
  for (int i = 0; i < samples; ++i) {
    const TimePoint start = monotonic_now();
    client.send_frame(payload);
    auto at_server = server.try_recv_frame();
    if (at_server) server.send_frame(*at_server);
    auto reply = client.try_recv_frame();
    const TimePoint end = monotonic_now();
    if (!reply) break;
    rtts.add(static_cast<double>((end - start).nanos()) / 1000.0);
  }
  return rtts;
}

void report(const char* name, const SampleSet& rtts) {
  std::printf("%-40s n=%zu min=%6.1f p50=%6.1f p90=%6.1f p99=%6.1f max=%8.1f (us)\n",
              name, rtts.count(), rtts.min(), rtts.quantile(0.5),
              rtts.quantile(0.9), rtts.quantile(0.99), rtts.max());
}

void print_cdf(const char* name, const SampleSet& rtts) {
  std::printf("\nCDF points for %s (percentile, us):\n", name);
  for (int p : {1, 5, 10, 25, 50, 75, 90, 95, 99}) {
    std::printf("  %3d%%  %8.2f\n", p, rtts.quantile(p / 100.0));
  }
}

}  // namespace

int main() {
  bench::banner("Figure 2 (reproduction)",
                "CDF of IPC round-trip time across transports and wait modes");
  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf("host: %u cpu(s); %d samples per configuration\n", cpus, kSamples);

  bench::section("blocking receivers (paper: 'CPU is idle' — wakeup included)");
  auto unix_pair = ipc::make_unix_socket_pair();
  const SampleSet unix_blocking =
      measure_threaded(*unix_pair.a, *unix_pair.b, kSamples);
  report("unix socket, blocking", unix_blocking);

  auto shm_block = ipc::make_shm_ring_pair(1 << 20, ipc::ShmWaitMode::Blocking);
  const SampleSet shm_blocking =
      measure_threaded(*shm_block.a, *shm_block.b, kSamples);
  report("shm ring + eventfd (netlink role)", shm_blocking);

  bench::section("no scheduler wakeup (paper: 'high CPU utilization + TurboBoost')");
  SampleSet hot_unix, hot_shm;
  if (cpus >= 2) {
    // Genuine cross-core busy polling.
    auto shm_spin = ipc::make_shm_ring_pair(1 << 20, ipc::ShmWaitMode::BusyPoll);
    hot_shm = measure_threaded(*shm_spin.a, *shm_spin.b, kSamples);
    report("shm ring, busy-poll (cross-core)", hot_shm);
    auto unix_pair2 = ipc::make_unix_socket_pair();
    hot_unix = measure_inline(*unix_pair2.a, *unix_pair2.b, kSamples);
    report("unix socket, no-wakeup (inline)", hot_unix);
  } else {
    // Single CPU: two spinning threads would measure the scheduler
    // quantum, not IPC. Measure the wakeup-free mechanism cost inline.
    auto unix_pair2 = ipc::make_unix_socket_pair();
    hot_unix = measure_inline(*unix_pair2.a, *unix_pair2.b, kSamples);
    report("unix socket, no-wakeup (inline)", hot_unix);
    auto shm_inline = ipc::make_shm_ring_pair(1 << 20, ipc::ShmWaitMode::BusyPoll);
    hot_shm = measure_inline(*shm_inline.a, *shm_inline.b, kSamples);
    report("shm ring, no-wakeup (inline)", hot_shm);
  }

  print_cdf("unix socket, blocking", unix_blocking);
  print_cdf("shm ring + eventfd, blocking", shm_blocking);
  print_cdf("unix socket, no-wakeup", hot_unix);
  print_cdf("shm ring, no-wakeup", hot_shm);

  bench::section("paper comparison");
  std::printf(
      "Paper: idle-CPU p99 was 48 us (netlink) / 80 us (unix sockets); under\n"
      "load with TurboBoost, p99 dropped to 18 us / 35 us. Shape to check:\n"
      "(1) the cheaper channel beats unix sockets at the tail;\n"
      "(2) removing the scheduler wakeup shrinks the tail further;\n"
      "(3) everything is negligible vs a 10 ms WAN RTT (S2.3).\n");
  std::printf("Measured p99: unix %.1f -> %.1f us; shm %.1f -> %.1f us "
              "(blocking -> no-wakeup)\n",
              unix_blocking.quantile(0.99), hot_unix.quantile(0.99),
              shm_blocking.quantile(0.99), hot_shm.quantile(0.99));
  return 0;
}
