// Extension bench: one agent, one algorithm implementation, two
// datapaths — the §1 "write once, run everywhere" claim, and the cost of
// limited datapath capability (§4/§5 discussion about which datapaths
// can support which primitives).
//
//   full datapath       programs: fold + control language + urgent specs
//   prototype datapath  the paper's §3 prototype: fixed EWMA reports once
//                       per RTT, DirectControl only
//
// Window algorithms translate almost losslessly; BBR loses its in-
// datapath pulse synchronization (the agent can only set one rate per
// report) — exactly the fidelity/capability trade the paper discusses.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"

namespace {

using namespace ccp;
using namespace ccp::sim;

struct RunOutput {
  double tput_mbps = 0;
  double median_rtt_ms = 0;
  uint64_t timeouts = 0;
};

template <typename Host>
RunOutput run(const std::string& alg) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
  Dumbbell net(q, cfg);
  Host host(q, CcpHostConfig{});
  auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, alg);
  const TimePoint end = TimePoint::epoch() + Duration::from_secs(12);
  host.start(end);
  TcpSenderConfig scfg;
  scfg.record_rtt_samples = true;
  auto& snd = net.add_flow(scfg, &flow, TimePoint::epoch());
  q.run_until(end);
  return {snd.delivered_bytes() * 8.0 / 12 / 1e6,
          snd.rtt_samples().quantile(0.5) / 1000.0, snd.stats().timeouts};
}

}  // namespace

int main() {
  bench::banner("Extension: datapath capability",
                "Identical algorithms on the full vs the §3 prototype datapath");
  std::printf("workload: 50 Mbit/s, 10 ms RTT, 1 BDP buffer, 12 s per run\n\n");

  std::printf("%-10s | %21s | %21s\n", "", "full datapath", "prototype datapath");
  std::printf("%-10s | %10s %10s | %10s %10s\n", "algorithm", "Mbit/s", "medRTT",
              "Mbit/s", "medRTT");
  for (const char* alg : {"reno", "cubic", "dctcp", "vegas", "bbr", "timely", "pcc"}) {
    const RunOutput full = run<SimCcpHost>(alg);
    const RunOutput proto = run<SimPrototypeHost>(alg);
    std::printf("%-10s | %10.1f %8.2fms | %10.1f %8.2fms\n", alg, full.tput_mbps,
                full.median_rtt_ms, proto.tput_mbps, proto.median_rtt_ms);
  }
  std::printf(
      "\nReading: window algorithms (reno, cubic, dctcp) translate losslessly\n"
      "to DirectControl commands, and vegas falls back to computing its queue\n"
      "estimate from the prototype's fixed EWMA fields. The algorithms that\n"
      "*need* control programs are the ones that suffer: bbr loses its\n"
      "in-datapath pulse pattern, and pcc's micro-experiments collapse\n"
      "because measurement windows no longer align with rate changes —\n"
      "precisely why §2.1 argues datapaths should execute control programs\n"
      "rather than leave timing to the agent. (timely's thresholds are\n"
      "datacenter-scale; it floors on this WAN profile on both datapaths.)\n");
  return 0;
}
