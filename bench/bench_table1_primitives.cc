// Reproduces Table 1: "Measurement and control primitives used by
// classic and modern congestion control algorithms" — generated from the
// implemented algorithms' declared traits, so the table can never drift
// from the code.
#include <cstdio>
#include <string>

#include "algorithms/registry.hpp"
#include "bench/bench_common.hpp"

namespace {

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}

}  // namespace

int main() {
  using namespace ccp;
  bench::banner("Table 1 (reproduction)",
                "Measurement and control primitives per implemented algorithm");

  agent::FlowInfo info;
  info.id = 1;
  info.mss = 1460;
  info.init_cwnd_bytes = 10 * 1460;

  std::printf("%-14s | %-45s | %s\n", "Protocol", "Measurement", "Control Knobs");
  std::printf("%-14s-+-%-45s-+-%s\n", "--------------",
              "---------------------------------------------",
              "----------------------");
  for (const auto& name : algorithms::builtin_algorithm_names()) {
    auto alg = algorithms::make_algorithm(name, info);
    const auto traits = alg->traits();
    std::printf("%-14s | %-45s | %s\n", name.c_str(),
                join(traits.measurements).c_str(), join(traits.control_knobs).c_str());
  }
  std::printf(
      "\nAll rows are CCP implementations running against the same datapath\n"
      "primitives of §2.1: cwnd, pacing rate, and per-packet statistics.\n");
  return 0;
}
