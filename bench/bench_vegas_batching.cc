// Reproduces the §2.4 comparison: TCP Vegas implemented with a *vector
// of measurements* vs a *fold function over measurements*, run on the
// same simulated path. The paper's takeaway: vectors are more flexible
// but cost per-packet memory and shipping; folds use constant datapath
// state. We measure behavior (window trajectory, throughput) and the
// report-message bytes each approach moves across the IPC boundary.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"
#include "sim/trace.hpp"

namespace {

using namespace ccp;
using namespace ccp::sim;

struct RunOutput {
  double tput_mbps = 0;
  double median_rtt_ms = 0;
  uint64_t report_msgs = 0;
  uint64_t report_bytes = 0;
  std::vector<TracePoint> cwnd;
};

RunOutput run(const std::string& alg) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(100e6, Duration::from_millis(10), 1.0);
  Dumbbell net(q, cfg);
  const TimePoint end = TimePoint::epoch() + Duration::from_secs(20);
  SimCcpHost host(q, CcpHostConfig{});
  auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, alg);
  host.start(end);
  TcpSenderConfig scfg;
  scfg.record_rtt_samples = true;
  auto& snd = net.add_flow(scfg, &flow, TimePoint::epoch());
  Tracer tracer(q);
  tracer.sample_every("cwnd", Duration::from_millis(100), end,
                      [&flow] { return flow.cwnd_bytes() / 1460.0; });
  q.run_until(end);

  RunOutput out;
  out.tput_mbps = snd.delivered_bytes() * 8.0 / 20 / 1e6;
  out.median_rtt_ms = snd.rtt_samples().quantile(0.5) / 1000.0;
  out.report_msgs = flow.reports_sent();
  out.report_bytes = host.datapath().stats().bytes_sent;
  out.cwnd = tracer.series("cwnd");
  return out;
}

}  // namespace

int main() {
  bench::banner("§2.4 (reproduction)",
                "Vegas: vector-of-measurements vs fold-function batching");
  std::printf("workload: 100 Mbit/s bottleneck, 10 ms RTT, 1 BDP buffer, 20 s\n");

  const RunOutput fold = run("vegas");
  const RunOutput vec = run("vegas_vector");

  bench::section("behavior (must match: same algorithm, different batching)");
  std::printf("%-18s %12s %16s\n", "variant", "tput Mbit/s", "median RTT (ms)");
  std::printf("%-18s %12.1f %16.2f\n", "fold", fold.tput_mbps, fold.median_rtt_ms);
  std::printf("%-18s %12.1f %16.2f\n", "vector", vec.tput_mbps, vec.median_rtt_ms);

  bench::section("datapath -> agent traffic (the cost axis of §2.4)");
  std::printf("%-18s %10s %14s %16s\n", "variant", "reports", "total bytes",
              "bytes/report");
  std::printf("%-18s %10llu %14llu %16.1f\n", "fold",
              static_cast<unsigned long long>(fold.report_msgs),
              static_cast<unsigned long long>(fold.report_bytes),
              static_cast<double>(fold.report_bytes) / fold.report_msgs);
  std::printf("%-18s %10llu %14llu %16.1f\n", "vector",
              static_cast<unsigned long long>(vec.report_msgs),
              static_cast<unsigned long long>(vec.report_bytes),
              static_cast<double>(vec.report_bytes) / vec.report_msgs);
  std::printf("\nfold state is constant per flow; the vector grows with the\n"
              "per-RTT ACK count (~%.0fx more bytes here), which is the paper's\n"
              "trade-off: flexibility vs per-packet memory and shipping cost.\n",
              static_cast<double>(vec.report_bytes) / fold.report_bytes);

  bench::section("cwnd trajectories (t_secs pkts; 1 s grid)");
  std::printf("%8s %12s %12s\n", "t", "fold", "vector");
  for (size_t i = 0; i < fold.cwnd.size() && i < vec.cwnd.size(); i += 10) {
    std::printf("%8.1f %12.1f %12.1f\n", fold.cwnd[i].t_secs, fold.cwnd[i].value,
                vec.cwnd[i].value);
  }
  return 0;
}
