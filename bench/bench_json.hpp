// Machine-readable bench output: BENCH_hotpath.json at the repo root.
//
// The file is one JSON object with one section per bench:
//
//   {
//     "hotpath": { "full_acks_per_sec": 1.23e7, ... },
//     "batching_rates": { ... }
//   }
//
// Each bench rewrites only its own keys and preserves everything else,
// so successive runs (and different benches) accumulate into one file
// that future PRs can diff for regressions. The parser below only needs
// to understand the canonical format this writer produces.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/series.hpp"

namespace ccp::bench {

#ifndef CCP_REPO_ROOT
#define CCP_REPO_ROOT "."
#endif

inline std::string bench_json_path() {
  return std::string(CCP_REPO_ROOT) + "/BENCH_hotpath.json";
}

namespace detail {

using Section = std::vector<std::pair<std::string, std::string>>;
using Sections = std::vector<std::pair<std::string, Section>>;

inline std::string trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r\n,");
  return s.substr(b, e - b + 1);
}

/// Parses the canonical two-level format written by write_sections().
inline Sections parse_sections(std::istream& in) {
  Sections out;
  std::string line;
  Section* current = nullptr;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty() || t == "{" || t == "}") continue;
    if (t == "},") { current = nullptr; continue; }
    const size_t q1 = t.find('"');
    const size_t q2 = t.find('"', q1 + 1);
    if (q1 == std::string::npos || q2 == std::string::npos) continue;
    const std::string key = t.substr(q1 + 1, q2 - q1 - 1);
    const size_t colon = t.find(':', q2);
    if (colon == std::string::npos) continue;
    const std::string value = trim(t.substr(colon + 1));
    if (value == "{") {
      out.emplace_back(key, Section{});
      current = &out.back().second;
    } else if (current != nullptr) {
      current->emplace_back(key, value);
    }
  }
  return out;
}

inline void write_sections(std::ostream& os, const Sections& sections) {
  os << "{\n";
  for (size_t i = 0; i < sections.size(); ++i) {
    os << "  \"" << sections[i].first << "\": {\n";
    const Section& sec = sections[i].second;
    for (size_t j = 0; j < sec.size(); ++j) {
      os << "    \"" << sec[j].first << "\": " << sec[j].second
         << (j + 1 < sec.size() ? "," : "") << "\n";
    }
    os << "  }" << (i + 1 < sections.size() ? "," : "") << "\n";
  }
  os << "}\n";
}

}  // namespace detail

/// Formats a (t, value) series as a JSON array value ("[[t,v],...]") so
/// figure benches store the same schema util/series.hpp emits as CSV.
template <typename Point>
std::string json_series(const std::vector<Point>& pts) {
  return util::series_json_value(pts);
}

/// Formats a double as a JSON number.
inline std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Reads one numeric value out of the bench JSON file (the committed
/// baseline, when called before this run's update). Returns false if the
/// file, section, or key is absent or non-numeric.
inline bool read_json_num(const std::string& path, const std::string& section,
                          const std::string& key, double* out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  const detail::Sections sections = detail::parse_sections(in);
  for (const auto& [name, sec] : sections) {
    if (name != section) continue;
    for (const auto& [k, v] : sec) {
      if (k != key) continue;
      char* end = nullptr;
      const double parsed = std::strtod(v.c_str(), &end);
      if (end == v.c_str()) return false;
      *out = parsed;
      return true;
    }
  }
  return false;
}

/// Upserts `kv` into `section` of the bench JSON file, preserving every
/// other section and any keys in this section not being rewritten.
inline void update_json_section(
    const std::string& path, const std::string& section,
    const std::vector<std::pair<std::string, std::string>>& kv) {
  detail::Sections sections;
  {
    std::ifstream in(path);
    if (in.good()) sections = detail::parse_sections(in);
  }
  detail::Section* target = nullptr;
  for (auto& [name, sec] : sections) {
    if (name == section) { target = &sec; break; }
  }
  if (target == nullptr) {
    sections.emplace_back(section, detail::Section{});
    target = &sections.back().second;
  }
  for (const auto& [k, v] : kv) {
    bool found = false;
    for (auto& [ek, ev] : *target) {
      if (ek == k) { ev = v; found = true; break; }
    }
    if (!found) target->emplace_back(k, v);
  }
  std::ofstream os(path, std::ios::trunc);
  detail::write_sections(os, sections);
  std::printf("[bench json] updated %s section '%s'\n", path.c_str(),
              section.c_str());
}

}  // namespace ccp::bench
