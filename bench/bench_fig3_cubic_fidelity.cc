// Reproduces Figure 3: "Comparison of window dynamics of a CCP-based
// Cubic implementation and the Linux kernel implementation", plus the
// §3 summary metrics (utilization and median RTT).
//
// Paper setup: 1 Gbit/s link, 10 ms RTT, 1 BDP of buffer. The paper
// reports Linux achieving 94.4% utilization / 15.8 ms median RTT vs
// CCP's 95.4% / 16.1 ms, with matching microscopic window evolution.
//
// Substitution: the Linux kernel baseline is our in-datapath NativeCubic
// (same cubic function, per-ACK execution); the network is simulated
// with identical parameters.
#include <cstdio>
#include <cstring>
#include <map>

#include "algorithms/native/native_cubic.hpp"
#include "bench/bench_common.hpp"
#include "bench/bench_json.hpp"
#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"
#include "sim/trace.hpp"
#include "util/series.hpp"

namespace {

using namespace ccp;
using namespace ccp::sim;

constexpr double kRateBps = 1e9;
constexpr double kDurationSecs = 40.0;
const Duration kRtt = Duration::from_millis(10);

struct RunOutput {
  std::vector<TracePoint> cwnd;
  double utilization = 0;
  double median_rtt_ms = 0;
  uint64_t loss_events = 0;
  util::FlowSummaryRow summary;  // scorecard-schema per-flow row
};

RunOutput run(bool use_ccp, uint64_t seed) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(kRateBps, kRtt, 1.0);
  Dumbbell net(q, cfg);
  const TimePoint end = TimePoint::epoch() + Duration::from_secs_f(kDurationSecs);

  TcpSenderConfig scfg;
  scfg.record_rtt_samples = true;

  Tracer tracer(q);
  RunOutput out;

  // Measure utilization after the 2s startup transient, like the paper's
  // steady-state figures.
  const TimePoint measure_from = TimePoint::epoch() + Duration::from_secs(2);

  auto finish = [&](TcpSender& snd, const char* name) {
    q.run_until(measure_from);
    net.mark_utilization_epoch();
    q.run_until(end);
    out.utilization = net.utilization(measure_from, end);
    out.median_rtt_ms = snd.rtt_samples().quantile(0.5) / 1000.0;
    out.loss_events = snd.stats().loss_events;
    out.summary.name = name;
    out.summary.throughput_mbps =
        snd.delivered_bytes() * 8.0 / kDurationSecs / 1e6;
    out.summary.share = 1.0;  // single flow per run
    out.summary.retransmits = static_cast<double>(snd.stats().retransmits);
    out.summary.timeouts = static_cast<double>(snd.stats().timeouts);
    out.summary.rtt_p50_ms = out.median_rtt_ms;
    out.summary.rtt_p95_ms = snd.rtt_samples().quantile(0.95) / 1000.0;
  };

  if (use_ccp) {
    CcpHostConfig host_cfg;
    host_cfg.seed = seed;
    SimCcpHost host(q, host_cfg);
    auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "cubic");
    host.start(end);
    auto& snd = net.add_flow(scfg, &flow, TimePoint::epoch());
    tracer.sample_every("cwnd", Duration::from_millis(50), end,
                        [&flow] { return flow.cwnd_bytes() / 1460.0; });
    finish(snd, "ccp_cubic");
  } else {
    algorithms::native::NativeCubic cubic(1460, 10 * 1460);
    auto& snd = net.add_flow(scfg, &cubic, TimePoint::epoch());
    tracer.sample_every("cwnd", Duration::from_millis(50), end,
                        [&cubic] { return cubic.cwnd_bytes() / 1460.0; });
    finish(snd, "native_cubic");
  }
  out.cwnd = tracer.series("cwnd");
  return out;
}

/// Every 10th sample: the 50 ms trace decimated to the 0.5 s figure grid.
std::vector<TracePoint> decimate(const std::vector<TracePoint>& series) {
  std::vector<TracePoint> out;
  for (size_t i = 0; i < series.size(); i += 10) out.push_back(series[i]);
  return out;
}

void print_series(const char* name, const std::vector<TracePoint>& series) {
  std::printf("\ncwnd evolution, %s (cwnd_pkts; 0.5 s grid):\n", name);
  const std::map<std::string, std::vector<TracePoint>> columns{
      {"cwnd_pkts", decimate(series)}};
  util::write_series_csv(stdout, columns);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    }
  }

  bench::banner("Figure 3 (reproduction)",
                "Cubic window dynamics: CCP vs in-datapath ('Linux') baseline");
  std::printf("workload: 1 Gbit/s bottleneck, 10 ms RTT, 1 BDP buffer, "
              "%.0f s flow; seed %llu\n", kDurationSecs,
              static_cast<unsigned long long>(seed));

  const RunOutput native = run(/*use_ccp=*/false, seed);
  const RunOutput ccp = run(/*use_ccp=*/true, seed);

  bench::section("summary (paper: Linux 94.4% util / 15.8 ms; CCP 95.4% / 16.1 ms)");
  std::printf("%-22s %12s %16s %12s\n", "implementation", "utilization",
              "median RTT (ms)", "loss events");
  std::printf("%-22s %11.1f%% %16.2f %12llu\n", "native cubic (Linux)",
              native.utilization * 100.0, native.median_rtt_ms,
              static_cast<unsigned long long>(native.loss_events));
  std::printf("%-22s %11.1f%% %16.2f %12llu\n", "CCP cubic",
              ccp.utilization * 100.0, ccp.median_rtt_ms,
              static_cast<unsigned long long>(ccp.loss_events));

  print_series("native cubic (Linux baseline, Fig 3b)", native.cwnd);
  print_series("CCP cubic (Fig 3a)", ccp.cwnd);

  bench::section("per-flow scorecard rows");
  util::write_flow_summary_csv(stdout, {native.summary, ccp.summary});

  bench::update_json_section(
      bench::bench_json_path(), "fig3_cubic_fidelity",
      {{"native_utilization", bench::json_num(native.utilization)},
       {"native_median_rtt_ms", bench::json_num(native.median_rtt_ms)},
       {"native_retransmits", bench::json_num(native.summary.retransmits)},
       {"ccp_utilization", bench::json_num(ccp.utilization)},
       {"ccp_median_rtt_ms", bench::json_num(ccp.median_rtt_ms)},
       {"ccp_retransmits", bench::json_num(ccp.summary.retransmits)},
       {"native_cwnd_pkts", bench::json_series(decimate(native.cwnd))},
       {"ccp_cwnd_pkts", bench::json_series(decimate(ccp.cwnd))}});
  return 0;
}
