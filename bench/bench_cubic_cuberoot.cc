// Reproduces the §2.2 comparison: "the Linux kernel implements TCP
// Cubic's cube-root calculation in 42 lines of C using a lookup table
// followed by an iteration of the Newton-Raphson algorithm. We show the
// same per-packet OnMeasurement operation in CCP below, which can take
// advantage of convenient user-space floating point arithmetic packages
// and is thus simpler."
//
// We measure both accuracy and speed of the kernel's fixed-point cube
// root against the user-space floating-point expression the paper's CCP
// listing uses — and run the full cubic window computation through the
// CCP expression VM to show it fits in a few straight-line instructions.
#include <cmath>
#include <cstdio>

#include "algorithms/cubic.hpp"
#include "algorithms/native/kernel_cbrt.hpp"
#include "bench/bench_common.hpp"
#include "lang/compiler.hpp"
#include "lang/vm.hpp"
#include "util/quantiles.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

int main() {
  using namespace ccp;
  using namespace ccp::algorithms;
  bench::banner("§2.2 (reproduction)",
                "Cubic's cube root: kernel fixed-point vs user-space float");

  bench::section("accuracy over the cubic operating range");
  SampleSet rel_err;
  Rng rng(7);
  for (int i = 0; i < 200000; ++i) {
    // Typical cubic argument: W_max*(1-beta)/C in 'packets << 10' fixed
    // point — spans ~1e3..1e10 for real windows.
    const uint64_t a = 1000 + rng.next_below(10'000'000'000ull);
    const double exact = std::cbrt(static_cast<double>(a));
    const double kernel = native::kernel_cubic_root(a);
    rel_err.add(std::fabs(kernel - exact) / exact);
  }
  std::printf("kernel cubic_root relative error: p50=%.4f%% p99=%.4f%% max=%.4f%%\n",
              rel_err.quantile(0.5) * 100, rel_err.quantile(0.99) * 100,
              rel_err.max() * 100);
  std::printf("user-space cbrt(): exact to double precision (the CCP listing's\n"
              "pow(x, 1/3) runs in the agent, §2.2).\n");

  bench::section("speed (100M evaluations each)");
  constexpr int kIters = 100'000'000;
  uint64_t sink = 0;
  TimePoint t0 = monotonic_now();
  for (int i = 0; i < kIters; ++i) {
    sink += native::kernel_cubic_root(static_cast<uint64_t>(i) * 1315423911u + 7);
  }
  // Publish through a volatile store so the loops cannot be elided.
  volatile uint64_t sink_out = sink;
  (void)sink_out;
  TimePoint t1 = monotonic_now();
  double fsink = 0;
  for (int i = 0; i < kIters; ++i) {
    fsink += std::cbrt(static_cast<double>(static_cast<uint64_t>(i) * 1315423911u + 7));
  }
  volatile double fsink_out = fsink;
  (void)fsink_out;
  TimePoint t2 = monotonic_now();
  std::printf("kernel fixed-point: %6.2f ns/op\n",
              (t1 - t0).nanos() / static_cast<double>(kIters));
  std::printf("user-space cbrt():  %6.2f ns/op\n",
              (t2 - t1).nanos() / static_cast<double>(kIters));

  bench::section("the paper's CCP listing, run through the datapath VM");
  // K = cbrt(max(0, (WlastMax - cwnd)/0.4)); cwnd = WlastMax + 0.4*(t-K)^3
  auto compiled = lang::compile_text(R"(
    fold {
      k := cbrt(max(0, ($wlastmax - $cwnd) / 0.4)) init 0;
      target := $wlastmax + 0.4 * pow($t - k, 3) init 0;
    }
    control { Cwnd(target * $mss); WaitRtts(1.0); Report(); }
  )");
  lang::FoldMachine fm;
  std::vector<double> vars(compiled.num_vars(), 0.0);
  vars[static_cast<size_t>(compiled.var_index("wlastmax"))] = 100.0;
  vars[static_cast<size_t>(compiled.var_index("cwnd"))] = 70.0;
  vars[static_cast<size_t>(compiled.var_index("t"))] = 2.0;
  vars[static_cast<size_t>(compiled.var_index("mss"))] = 1460.0;
  fm.install(&compiled, vars);
  fm.on_packet({});
  const double k = fm.state()[0];
  const double target = fm.state()[1];
  std::printf("K = %.4f s, W(t=2s) = %.2f packets "
              "(reference: K=%.4f, W=%.2f)\n",
              k, target, Cubic::cubic_k(100.0, 70.0),
              Cubic::cubic_window(2.0, 100.0, Cubic::cubic_k(100.0, 70.0)));
  std::printf("fold block compiles to %zu straight-line VM instructions.\n",
              compiled.fold_block.code.size());
  return 0;
}
