// Google-benchmark microbenchmarks for the hot paths of the CCP stack:
// the fold VM (runs per ACK in the datapath), program compilation (runs
// per Install), wire encode/decode (runs per report/frame), and the
// shared-memory ring (runs per frame). These bound the per-packet and
// per-report costs the §2.3 argument rests on.
#include <benchmark/benchmark.h>

#include "ipc/shm_ring.hpp"
#include "ipc/transport.hpp"
#include "ipc/wire.hpp"
#include "lang/compiler.hpp"
#include "lang/vm.hpp"

namespace {

using namespace ccp;

constexpr const char* kTypicalProgram = R"(
fold {
  volatile acked := acked + Pkt.bytes_acked init 0;
  rtt := ewma(rtt, Pkt.rtt, 0.125) init 0;
  minrtt := if(Pkt.rtt > 0, min(minrtt, Pkt.rtt), minrtt) init 0x7fffffff;
  volatile loss := loss + Pkt.lost init 0 urgent;
  rcv := Pkt.rcv_rate init 0;
}
control { Cwnd($cwnd); WaitRtts(1.0); Report(); }
)";

void BM_FoldVmPerAck(benchmark::State& state) {
  auto compiled = lang::compile_text(kTypicalProgram);
  lang::FoldMachine fm;
  std::vector<double> vars(compiled.num_vars(), 14600.0);
  fm.install(&compiled, vars);
  lang::PktInfo pkt;
  pkt.rtt_us = 10000;
  pkt.bytes_acked = 1460;
  pkt.rcv_rate_bps = 1.25e9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fm.on_packet(pkt));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FoldVmPerAck);

void BM_ProgramCompile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(lang::compile_text(kTypicalProgram));
  }
}
BENCHMARK(BM_ProgramCompile);

void BM_EncodeMeasurement(benchmark::State& state) {
  ipc::MeasurementMsg msg;
  msg.flow_id = 1;
  msg.report_seq = 123;
  msg.num_acks_folded = 100;
  msg.fields = {1.0, 2.0, 3.0, 4.0, 5.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ipc::encode_frame(ipc::Message(msg)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeMeasurement);

void BM_DecodeMeasurement(benchmark::State& state) {
  ipc::MeasurementMsg msg;
  msg.flow_id = 1;
  msg.fields = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto frame = ipc::encode_frame(ipc::Message(msg));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ipc::decode_frame(frame));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeMeasurement);

void BM_ShmRingRoundTrip(benchmark::State& state) {
  std::vector<uint8_t> mem(ipc::ShmRing::mapping_size(1 << 16));
  auto ring = ipc::ShmRing::create_in(mem.data(), 1 << 16);
  std::vector<uint8_t> frame(96, 0x42);
  for (auto _ : state) {
    ring.push(frame);
    benchmark::DoNotOptimize(ring.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShmRingRoundTrip);

void BM_InstallRoundTrip(benchmark::State& state) {
  // Full Install path: encode the message, decode it, compile the text.
  ipc::InstallMsg msg;
  msg.flow_id = 1;
  msg.program_text = kTypicalProgram;
  msg.var_names = {"cwnd"};
  msg.var_values = {14600.0};
  for (auto _ : state) {
    auto frame = ipc::encode_frame(ipc::Message(msg));
    auto decoded = ipc::decode_frame(frame);
    const auto& install = std::get<ipc::InstallMsg>(decoded[0]);
    benchmark::DoNotOptimize(lang::compile_text(install.program_text));
  }
}
BENCHMARK(BM_InstallRoundTrip);

}  // namespace

BENCHMARK_MAIN();
