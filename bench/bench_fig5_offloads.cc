// Reproduces Figure 5: "Comparison of achieved throughput with NIC
// offloads (TSO, GRO, and GSO) enabled and disabled, respectively. Each
// value is the average across four runs."
//
// Substitution (see DESIGN.md): a calibrated CPU/offload cost model
// replaces the 10 Gbit/s testbed. The three mechanisms that give the
// figure its shape are modeled explicitly; per-run measurement noise is
// added and four runs are averaged, as in the paper.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "offload/model.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ccp;
  using namespace ccp::offload;
  bench::banner("Figure 5 (reproduction)",
                "Throughput with NIC offloads enabled/disabled, kernel vs CCP");
  std::printf("model: 10 Gbit/s link, 3 GHz stack core, MTU 1448, 100 us RTT;\n"
              "4 runs averaged with 1%% measurement noise\n");

  OffloadModel model;
  Rng rng(2017);

  struct Case {
    const char* name;
    OffloadConfig cfg;
  };
  const Case cases[] = {
      {"offloads enabled (TSO+GRO)", {true, true}},
      {"segmentation off (GRO only)", {false, true}},
      {"all offloads disabled", {false, false}},
  };

  bench::section("throughput (Gbit/s), average of 4 runs");
  std::printf("%-30s %10s %10s %12s\n", "configuration", "kernel", "ccp",
              "ccp/kernel");
  for (const auto& c : cases) {
    double kernel_sum = 0, ccp_sum = 0;
    for (int run = 0; run < 4; ++run) {
      const double noise_k = rng.uniform(0.99, 1.01);
      const double noise_c = rng.uniform(0.99, 1.01);
      kernel_sum += model.evaluate(c.cfg, CcArch::InDatapath).throughput_bps * noise_k;
      ccp_sum += model.evaluate(c.cfg, CcArch::Ccp).throughput_bps * noise_c;
    }
    const double kernel = kernel_sum / 4 / 1e9;
    const double ccp = ccp_sum / 4 / 1e9;
    std::printf("%-30s %10.2f %10.2f %11.3fx\n", c.name, kernel, ccp, ccp / kernel);
  }

  bench::section("mechanism detail (single run, no noise)");
  std::printf("%-30s %-8s %14s %14s %12s %10s\n", "configuration", "arch",
              "snd-cpu-limit", "rcv-cpu-limit", "train(pkts)", "bottleneck");
  for (const auto& c : cases) {
    for (auto arch : {CcArch::InDatapath, CcArch::Ccp}) {
      const auto r = model.evaluate(c.cfg, arch);
      std::printf("%-30s %-8s %13.2fG %13.2fG %12.1f %10s\n", c.name,
                  arch == CcArch::Ccp ? "ccp" : "kernel",
                  r.sender_cpu_limit_bps / 1e9, r.receiver_cpu_limit_bps / 1e9,
                  r.sender_train_packets, r.bottleneck.c_str());
    }
  }

  bench::section("paper comparison");
  std::printf(
      "Paper shape: offloads on -> both saturate the NIC (~9.4); TSO off ->\n"
      "CCP slightly ahead of the kernel (larger bursts aggregate better under\n"
      "GRO and halve the ACK rate); all off -> comparable. The absolute\n"
      "numbers depend on the modeled CPU, the ordering and ratios are the\n"
      "reproduced result.\n");
  return 0;
}
