// Ablation: "Could CCP work at low RTTs?" (§5).
//
// The paper argues per-RTT control is fine when IPC latency << RTT and
// asks what happens when RTTs approach IPC latency (1-10 us datacenter
// fabrics). We sweep the modeled IPC delay against several path RTTs and
// report utilization — mapping out where off-datapath control starts to
// lag the control loop it is driving.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"

namespace {

using namespace ccp;
using namespace ccp::sim;

double run(Duration rtt, Duration ipc_delay, double rate_bps) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(rate_bps, rtt, 1.0);
  Dumbbell net(q, cfg);
  const double secs = std::max(4.0, rtt.secs() * 2000);
  const TimePoint end = TimePoint::epoch() + Duration::from_secs_f(secs);
  CcpHostConfig hcfg;
  hcfg.ipc_delay = ipc_delay;
  hcfg.datapath_tick = std::min(Duration::from_micros(100), rtt / 4);
  SimCcpHost host(q, hcfg);
  auto& flow = host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno");
  host.start(end);
  auto& snd = net.add_flow(TcpSenderConfig{}, &flow, TimePoint::epoch());
  q.run_until(end);
  return snd.delivered_bytes() * 8.0 / secs / rate_bps;
}

}  // namespace

int main() {
  bench::banner("Ablation (§5 'Could CCP work at low RTTs?')",
                "Utilization vs IPC delay across path RTTs (CCP reno)");

  const struct {
    const char* name;
    Duration rtt;
    double rate;
  } paths[] = {
      {"datacenter 100us", Duration::from_micros(100), 1e9},
      {"metro 1ms", Duration::from_millis(1), 1e9},
      {"WAN 10ms", Duration::from_millis(10), 100e6},
  };
  const Duration delays[] = {Duration::from_micros(1), Duration::from_micros(15),
                             Duration::from_micros(50), Duration::from_micros(200),
                             Duration::from_millis(1)};

  std::printf("%-18s", "path \\ ipc delay");
  for (const auto& d : delays) std::printf(" %9lldus", (long long)d.micros());
  std::printf("\n");
  for (const auto& p : paths) {
    std::printf("%-18s", p.name);
    for (const auto& d : delays) {
      std::printf(" %10.1f%%", run(p.rtt, d, p.rate) * 100.0);
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: on WAN paths even 1 ms of IPC delay is invisible (the\n"
      "paper's Figure 2 argument). As the path RTT approaches the IPC\n"
      "delay, the per-RTT control loop falls behind — the regime where the\n"
      "paper suggests dedicating a core or synthesizing the controller into\n"
      "the datapath (§5).\n");
  return 0;
}
