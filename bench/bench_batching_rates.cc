// Reproduces the §2.3 batching arithmetic and backs it with measured
// numbers from this implementation:
//
//   "processing each acknowledgment (without batching) for a 100 Gbit/s
//    stream with MTU sized packets requires processing 8 million
//    acknowledgments per second. However, with per-RTT batching of
//    acknowledgments, CCP only needs to process 100,000 batches per
//    second at an RTT of 10 us ... With an RTT of 100 ms ... 10."
//
// We print the analytic table, then measure (a) how fast the datapath
// fold VM actually digests ACKs, and (b) how fast the agent side handles
// batched reports — demonstrating the per-ACK path is datapath-local and
// cheap while the cross-boundary work scales with RTTs, not packets.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "bench/bench_json.hpp"
#include "ipc/wire.hpp"
#include "lang/compiler.hpp"
#include "lang/vm.hpp"
#include "util/time.hpp"

namespace {

using namespace ccp;

constexpr const char* kFoldProgram = R"(
fold {
  volatile acked := acked + Pkt.bytes_acked init 0;
  rtt := ewma(rtt, Pkt.rtt, 0.125) init 0;
  minrtt := if(Pkt.rtt > 0, min(minrtt, Pkt.rtt), minrtt) init 0x7fffffff;
  volatile loss := loss + Pkt.lost init 0 urgent;
  rcv := Pkt.rcv_rate init 0;
}
control { WaitRtts(1.0); Report(); }
)";

}  // namespace

int main() {
  bench::banner("§2.3 (reproduction)",
                "Why batch measurements: ACK rates vs batch rates");

  bench::section("analytic table (the paper's arithmetic)");
  std::printf("%-18s %20s\n", "link rate", "ACKs/sec (MTU 1500, 1 ACK/pkt)");
  for (double gbps : {1.0, 10.0, 40.0, 100.0}) {
    const double acks = gbps * 1e9 / 8.0 / 1500.0;
    std::printf("%15.0f G %20.3e\n", gbps, acks);
  }
  std::printf("\n%-18s %20s\n", "RTT", "batches/sec (1 report per RTT)");
  for (double rtt_us : {10.0, 100.0, 1000.0, 10000.0, 100000.0}) {
    std::printf("%15.0f us %20.1f\n", rtt_us, 1e6 / rtt_us);
  }
  std::printf("\npaper: 8M ACKs/s at 100 Gbit/s vs 1e5 batches/s (10 us RTT)\n"
              "and 10 batches/s (100 ms RTT).\n");

  bench::section("measured: datapath fold VM throughput (per-ACK work)");
  auto compiled = lang::compile_text(kFoldProgram);
  lang::FoldMachine fm;
  fm.install(&compiled, {});
  lang::PktInfo pkt;
  pkt.rtt_us = 10000;
  pkt.bytes_acked = 1500;
  pkt.rcv_rate_bps = 1.25e9;
  constexpr int kAcks = 5'000'000;
  const TimePoint t0 = monotonic_now();
  for (int i = 0; i < kAcks; ++i) {
    pkt.rtt_us = 10000 + (i & 1023);
    fm.on_packet(pkt);
  }
  const TimePoint t1 = monotonic_now();
  const double fold_rate = kAcks / (t1 - t0).secs();
  std::printf("fold program over %d ACKs: %.2f M ACKs/sec on one core\n",
              kAcks, fold_rate / 1e6);
  std::printf("=> a software datapath folds a 100 Gbit/s ACK stream (8.3 M/s)\n"
              "   using ~%.0f%% of a core; the agent sees none of it.\n",
              8.33e6 / fold_rate * 100.0);

  bench::section("measured: agent-side report handling (per-RTT work)");
  ipc::MeasurementMsg msg;
  msg.flow_id = 1;
  msg.fields = {1500.0 * 100, 10500, 10000, 0, 1.2e9};
  constexpr int kReports = 2'000'000;
  const TimePoint t2 = monotonic_now();
  uint64_t bytes = 0;
  for (int i = 0; i < kReports; ++i) {
    msg.report_seq = static_cast<uint64_t>(i);
    auto frame = ipc::encode_frame(ipc::Message(msg));
    auto decoded = ipc::decode_frame(frame);
    bytes += frame.size();
  }
  const TimePoint t3 = monotonic_now();
  const double report_rate = kReports / (t3 - t2).secs();
  std::printf("encode+decode of %d reports: %.2f M reports/sec (%.1f B each)\n",
              kReports, report_rate / 1e6,
              static_cast<double>(bytes) / kReports);
  std::printf("=> per-RTT reporting at 10 us RTTs (1e5/s) costs ~%.2f%% of a "
              "core.\n",
              1e5 / report_rate * 100.0);

  bench::update_json_section(
      bench::bench_json_path(), "batching_rates",
      {{"fold_acks_per_sec", bench::json_num(fold_rate)},
       {"report_roundtrips_per_sec", bench::json_num(report_rate)}});
  return 0;
}
