// End-to-end hot-path throughput: ACK -> per-flow demux -> fold/counters
// -> batched report -> IPC frame -> agent -> control command -> datapath.
//
// This is the steady-state loop the paper's §2.3 scalability argument
// rests on: the datapath must fold millions of ACKs per second locally
// while the agent only sees batched reports. The bench drives both
// datapath implementations against a real CcpAgent over the inproc
// transport, with a per-packet flow-table lookup on every ACK (the demux
// a real stack performs), and reports end-to-end ACKs/sec.
//
// The headline configuration drives the per-ACK scalar API (the number
// the committed ratchet compares against). A batch-intake run rides
// along in each trial — the same workload in bursts of 32 through the
// cross-flow batch runner (on_ack_batch), the intake a GRO/poll-mode
// stack provides — so the JSON carries the measured batch/scalar ratio
// and the wave occupancy (docs/PERF.md "Batch execution").
//
// The full datapath runs in several configurations: with the telemetry
// layer recording (the default, "instrumented"), with telemetry disabled
// ("stripped"), with the ACK watchdog armed, and with the flight
// recorder on (control-loop spans + the sampled cycle profiler), so the
// JSON carries the measured observability overheads (<3% for base
// telemetry, <1% for the recorder; see docs/OBSERVABILITY.md).
//
// Results land in BENCH_hotpath.json at the repo root. Run once with
// --baseline before a hot-path change to record the "before" numbers,
// then plain afterwards; the JSON keeps both for regression tracking.
// `--enforce <ratio>` exits nonzero if this run's instrumented
// throughput drops below ratio * the committed full_acks_per_sec (CI
// uses 0.9: fail on >10% regression).
#include <algorithm>
#include <barrier>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "agent/agent.hpp"
#include "algorithms/registry.hpp"
#include "bench/bench_common.hpp"
#include "bench/bench_json.hpp"
#include "datapath/datapath.hpp"
#include "datapath/prototype_datapath.hpp"
#include "datapath/shard.hpp"
#include "datapath/sharded_datapath.hpp"
#include "ipc/transport.hpp"
#include "ipc/wire.hpp"
#include "lang/compiler.hpp"
#include "lang/jit/jit.hpp"
#include "lang/pkt_fields.hpp"
#include "lang/vm.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "util/zipf.hpp"

namespace {

using namespace ccp;

constexpr size_t kFlows = 64;
constexpr uint64_t kAcks = 4'000'000;

/// Delivers every frame currently queued on `t` to `fn` in one batched
/// drain (single synchronization round-trip per pump).
void pump(ipc::Transport& t, const ipc::FrameSink& fn) { t.drain_frames(fn); }

double thread_cpu_secs() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) / 1e9;
}

struct RunResult {
  double acks_per_sec = 0;      // wall clock (the headline / ratcheted rate)
  double acks_per_cpu_sec = 0;  // CLOCK_THREAD_CPUTIME_ID (overhead ratios)
  uint64_t frames_to_agent = 0;
};

/// Round-robins ACKs across `n_flows` flows on a virtual clock (1 us per
/// ACK, 10 ms RTT => ~156 ACKs folded per report per flow), pumping both
/// IPC directions as a single-threaded event loop would.
template <typename Datapath>
RunResult drive(Datapath& dp, ipc::Transport& dp_end, agent::CcpAgent& agent,
                ipc::Transport& agent_end, size_t n_flows, uint64_t total_acks,
                uint64_t* frames_to_agent,
                const datapath::FlowConfig& fcfg = {}) {
  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  for (size_t i = 0; i < n_flows; ++i) {
    ids.push_back(dp.create_flow(fcfg, "reno", now).id());
  }
  const ipc::FrameSink agent_rx = [&](std::span<const uint8_t> f) {
    agent.handle_frame(f);
  };
  const ipc::FrameSink dp_rx = [&](std::span<const uint8_t> f) {
    dp.handle_frame(f, now);
  };
  pump(agent_end, agent_rx);
  pump(dp_end, dp_rx);

  const Duration kAckGap = Duration::from_micros(1);
  const Duration kRtt = Duration::from_millis(10);
  datapath::AckEvent ev;
  ev.bytes_acked = 1500;
  ev.packets_acked = 1;
  ev.bytes_in_flight = 64 * 1500;
  ev.packets_in_flight = 64;

  auto run = [&](uint64_t acks) {
    for (uint64_t i = 0; i < acks; ++i) {
      now += kAckGap;
      auto* fl = dp.flow(ids[i % n_flows]);  // per-packet demux
      ev.now = now;
      ev.rtt_sample = kRtt + Duration::from_nanos(static_cast<int64_t>(i % 1024) * 1000);
      fl->on_send(datapath::SendEvent{now, 1500});
      fl->on_ack(ev);
      if ((i & 255) == 255) {
        dp.tick(now);
        pump(agent_end, agent_rx);
        pump(dp_end, dp_rx);
      }
    }
  };

  run(total_acks / 10);  // warm-up: programs installed, capacities settled
  const TimePoint t0 = monotonic_now();
  const double c0 = thread_cpu_secs();
  run(total_acks);
  const double c1 = thread_cpu_secs();
  const TimePoint t1 = monotonic_now();

  RunResult r;
  r.acks_per_sec = static_cast<double>(total_acks) / (t1 - t0).secs();
  // The event loop is single-threaded (the agent is pumped inline), so
  // thread CPU time covers the whole loop while excluding preemption by
  // the rest of the box — the stable basis for small overhead ratios.
  r.acks_per_cpu_sec = static_cast<double>(total_acks) / (c1 - c0);
  if (frames_to_agent != nullptr) r.frames_to_agent = *frames_to_agent;
  return r;
}

/// Same workload as drive(), but handed to the datapath in bursts of 32
/// FlowAcks through on_ack_batch — the cross-flow batch intake a
/// GRO/poll-mode stack feeds. Ticks and IPC pumps keep the scalar
/// cadence (every 256 ACKs) so the agent sees identical traffic.
template <typename Datapath>
RunResult drive_batch(Datapath& dp, ipc::Transport& dp_end,
                      agent::CcpAgent& agent, ipc::Transport& agent_end,
                      size_t n_flows, uint64_t total_acks,
                      uint64_t* frames_to_agent,
                      const datapath::FlowConfig& fcfg = {}) {
  TimePoint now = TimePoint::epoch() + Duration::from_millis(1);
  std::vector<ipc::FlowId> ids;
  for (size_t i = 0; i < n_flows; ++i) {
    ids.push_back(dp.create_flow(fcfg, "reno", now).id());
  }
  const ipc::FrameSink agent_rx = [&](std::span<const uint8_t> f) {
    agent.handle_frame(f);
  };
  const ipc::FrameSink dp_rx = [&](std::span<const uint8_t> f) {
    dp.handle_frame(f, now);
  };
  pump(agent_end, agent_rx);
  pump(dp_end, dp_rx);

  const Duration kAckGap = Duration::from_micros(1);
  const Duration kRtt = Duration::from_millis(10);
  constexpr size_t kBurst = 32;
  // Persistent burst template, the way a poll-mode stack reuses its ring
  // descriptors: the invariant fields are written once, each burst only
  // refreshes flow id, clock, and RTT sample in place.
  std::vector<datapath::FlowAck> burst(kBurst);
  for (datapath::FlowAck& fa : burst) {
    fa.sent_bytes = 1500;
    fa.ev.bytes_acked = 1500;
    fa.ev.packets_acked = 1;
    fa.ev.bytes_in_flight = 64 * 1500;
    fa.ev.packets_in_flight = 64;
  }

  auto run = [&](uint64_t acks) {
    for (uint64_t i = 0; i < acks;) {
      size_t nb = 0;
      for (; nb < kBurst && i < acks; ++nb, ++i) {
        now += kAckGap;
        datapath::FlowAck& fa = burst[nb];
        fa.flow_id = ids[i % n_flows];
        fa.ev.now = now;
        fa.ev.rtt_sample =
            kRtt + Duration::from_nanos(static_cast<int64_t>(i % 1024) * 1000);
      }
      dp.on_ack_batch(std::span<const datapath::FlowAck>(burst.data(), nb));
      if ((i & 255) == 0) {
        dp.tick(now);
        pump(agent_end, agent_rx);
        pump(dp_end, dp_rx);
      }
    }
  };

  run(total_acks / 10);  // warm-up: programs installed, SoA staging sized
  const TimePoint t0 = monotonic_now();
  const double c0 = thread_cpu_secs();
  run(total_acks);
  const double c1 = thread_cpu_secs();
  const TimePoint t1 = monotonic_now();

  RunResult r;
  r.acks_per_sec = static_cast<double>(total_acks) / (t1 - t0).secs();
  r.acks_per_cpu_sec = static_cast<double>(total_acks) / (c1 - c0);
  if (frames_to_agent != nullptr) r.frames_to_agent = *frames_to_agent;
  return r;
}

RunResult run_full(bool batch, const datapath::FlowConfig& fcfg = {}) {
  auto pair = ipc::make_inproc_pair();
  uint64_t frames = 0;
  datapath::DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  datapath::CcpDatapath dp(dcfg, [&](std::span<const uint8_t> f) {
    ++frames;
    pair.a->send_frame(f);
  });
  agent::AgentConfig acfg;
  agent::CcpAgent agent(acfg, [&](std::span<const uint8_t> f) { pair.b->send_frame(f); });
  algorithms::register_builtin_algorithms(agent);
  if (batch) {
    return drive_batch(dp, *pair.a, agent, *pair.b, kFlows, kAcks, &frames, fcfg);
  }
  return drive(dp, *pair.a, agent, *pair.b, kFlows, kAcks, &frames, fcfg);
}

RunResult run_proto() {
  auto pair = ipc::make_inproc_pair();
  uint64_t frames = 0;
  datapath::DatapathConfig dcfg;
  datapath::PrototypeDatapath dp(dcfg, [&](std::span<const uint8_t> f) {
    ++frames;
    pair.a->send_frame(f);
  });
  agent::AgentConfig acfg;
  agent::CcpAgent agent(acfg, [&](std::span<const uint8_t> f) { pair.b->send_frame(f); });
  algorithms::register_builtin_algorithms(agent);
  return drive(dp, *pair.a, agent, *pair.b, kFlows, kAcks, &frames);
}

struct ScalingResult {
  double cpu_acks_per_sec = 0;   // sum of per-shard acks / thread-CPU-time
  double wall_acks_per_sec = 0;  // total acks / wall time
};

/// One worker thread per shard, each folding ACKs through its own flow
/// table, report batcher, and lane; the main thread plays the control
/// plane and pushes an install to every flow through the command queues
/// during warm-up. The headline number is the aggregate of per-shard
/// rates measured on CLOCK_THREAD_CPUTIME_ID: on a box with >= n_shards
/// cores it equals the wall-clock aggregate, and on a smaller box (CI
/// containers are often 1-2 cores) it still exposes any per-shard
/// synchronization cost — time spent in epoch checks, queue drains, or
/// cache-line contention is charged to the shard that spends it. The
/// wall number is recorded alongside for machines with real parallelism.
ScalingResult run_sharded(uint32_t n_shards, size_t flows_per_shard,
                          uint64_t acks_per_shard) {
  datapath::DatapathConfig dcfg;
  dcfg.flush_interval = Duration::from_millis(1);
  dcfg.max_batch_msgs = 32;
  std::vector<uint64_t> lane_frames(n_shards, 0);
  std::vector<datapath::CcpDatapath::FrameTx> txs;
  txs.reserve(n_shards);
  for (uint32_t s = 0; s < n_shards; ++s) {
    txs.push_back(
        [&lane_frames, s](std::span<const uint8_t>) { ++lane_frames[s]; });
  }
  datapath::ShardedDatapath dp(dcfg, std::move(txs));

  const TimePoint now0 = TimePoint::epoch() + Duration::from_millis(1);
  datapath::FlowConfig fcfg;
  std::vector<std::vector<ipc::FlowId>> ids(n_shards);
  for (uint32_t s = 0; s < n_shards; ++s) {
    for (size_t i = 0; i < flows_per_shard; ++i) {
      const ipc::FlowId id = dp.alloc_flow_id(s);
      dp.shard(s).create_flow(id, fcfg, "reno", now0);
      ids[s].push_back(id);
    }
  }

  std::barrier sync(static_cast<std::ptrdiff_t>(n_shards) + 1);
  std::vector<double> cpu_rate(n_shards, 0.0);
  std::vector<std::thread> workers;
  workers.reserve(n_shards);
  for (uint32_t s = 0; s < n_shards; ++s) {
    workers.emplace_back([&, s] {
      datapath::Shard& shard = dp.shard(s);
      TimePoint now = now0;
      const Duration kRtt = Duration::from_millis(10);
      // Batch intake, same burst size as the single-core headline: each
      // worker drains its shard's share of a coalesced ACK queue.
      constexpr size_t kBurst = 32;
      // Persistent template, same as drive_batch: invariants written
      // once, per-ACK fields refreshed in place.
      std::vector<datapath::FlowAck> burst(kBurst);
      for (datapath::FlowAck& fa : burst) {
        fa.sent_bytes = 1500;
        fa.ev.bytes_acked = 1500;
        fa.ev.packets_acked = 1;
        fa.ev.bytes_in_flight = 64 * 1500;
        fa.ev.packets_in_flight = 64;
      }
      auto run = [&](uint64_t acks) {
        for (uint64_t i = 0; i < acks;) {
          size_t nb = 0;
          for (; nb < kBurst && i < acks; ++nb, ++i) {
            now += Duration::from_micros(1);
            datapath::FlowAck& fa = burst[nb];
            fa.flow_id = ids[s][i % ids[s].size()];
            fa.ev.now = now;
            fa.ev.rtt_sample = kRtt + Duration::from_nanos(
                                          static_cast<int64_t>(i % 1024) * 1000);
          }
          shard.on_ack_batch(
              std::span<const datapath::FlowAck>(burst.data(), nb));
          if ((i & 255) == 0) shard.poll(now);  // quiescent point
        }
      };
      run(acks_per_shard / 10);  // warm-up; picks up the installs below
      sync.arrive_and_wait();
      const double c0 = thread_cpu_secs();
      run(acks_per_shard);
      const double c1 = thread_cpu_secs();
      shard.poll(now);
      cpu_rate[s] = static_cast<double>(acks_per_shard) / (c1 - c0);
      sync.arrive_and_wait();
    });
  }

  // Control plane: install a fold program on every flow while the
  // workers are warming up, so command routing/application is part of
  // the measured configuration (applied at poll(), before the barrier).
  ipc::InstallMsg ins;
  ins.program_text =
      "fold { acked := acked + Pkt.bytes_acked init 0; }\n"
      "control { WaitRtts(1.0); Report(); }";
  for (uint32_t s = 0; s < n_shards; ++s) {
    for (const ipc::FlowId id : ids[s]) {
      ins.flow_id = id;
      dp.handle_frame(ipc::encode_frame(ipc::Message{ins}));
    }
  }

  sync.arrive_and_wait();  // workers warmed up, installs applied
  const TimePoint w0 = monotonic_now();
  sync.arrive_and_wait();  // workers done measuring
  const TimePoint w1 = monotonic_now();
  for (auto& t : workers) t.join();

  ScalingResult r;
  for (const double v : cpu_rate) r.cpu_acks_per_sec += v;
  r.wall_acks_per_sec =
      static_cast<double>(n_shards) * static_cast<double>(acks_per_shard) /
      (w1 - w0).secs();
  return r;
}

// --- million-flow churn (slab-backed flow table at scale) ---

// A front-end fleet datapath holds ~1M concurrent connections with ~100k
// connects/disconnects a second, and connection popularity is heavy-
// tailed. The churn section reproduces that shape: Zipf(s=1.5)-popular
// ACK bursts over the full resident set, with close->create churn ops
// interleaved. Three numbers matter:
//
//   ratio_vs_64        ACKs/sec with 1M flows resident over ACKs/sec
//                      with 64 — the same Zipf-batch driver on both
//                      sides, so the only difference is table scale.
//                      Gated >= 0.95: the table must not tax the hot
//                      path just for being huge.
//   churn_ops_per_sec  close->create pairs sustained while ACKs keep
//                      flowing. Gated >= the fleet's ~100k/sec.
//   rehash bounds      max_step_buckets (largest single migration step)
//                      and forced_drains (must be 0): growth through
//                      every doubling from 64 to 2M buckets without one
//                      unbounded pause.
//
// No agent on this path: a counting FrameTx stands in for the transport,
// so the numbers isolate the datapath side (demux + fold + batching) the
// way the table change can affect it. Flows run the default program.

// The agent-installed program every churn-section flow runs: folds per
// ACK (the hot path under test) but reports far beyond the run's virtual horizon — the
// fleet-realistic cadence for a mostly-idle million-connection set. One
// shared text so every install is a program-cache hit.
constexpr const char* kChurnProgram =
    "fold { acked := acked + Pkt.bytes_acked init 0;\n"
    "       rtt := ewma(rtt, Pkt.rtt, 0.125) init 0; }\n"
    "control { WaitRtts(100000.0); Report(); }";

struct ZipfRate {
  double wall_acks_per_sec = 0;
  double cpu_acks_per_sec = 0;
};

/// Drives `acks` through on_ack_batch in bursts of 32, flow per ACK
/// drawn Zipf(s)-popular from `resident`. Same burst-template scheme as
/// drive_batch; ticks every 2048 ACKs (the datapath's tick_flow_budget
/// bounds what each of those sweeps).
ZipfRate drive_zipf(datapath::CcpDatapath& dp,
                    const std::vector<ipc::FlowId>& resident,
                    util::ZipfSampler& zipf, Rng& rng, uint64_t acks,
                    TimePoint& now) {
  const Duration kAckGap = Duration::from_micros(1);
  const Duration kRtt = Duration::from_millis(10);
  constexpr size_t kBurst = 32;
  std::vector<datapath::FlowAck> burst(kBurst);
  for (datapath::FlowAck& fa : burst) {
    fa.sent_bytes = 1500;
    fa.ev.bytes_acked = 1500;
    fa.ev.packets_acked = 1;
    fa.ev.bytes_in_flight = 64 * 1500;
    fa.ev.packets_in_flight = 64;
  }
  const TimePoint t0 = monotonic_now();
  const double c0 = thread_cpu_secs();
  for (uint64_t i = 0; i < acks;) {
    size_t nb = 0;
    for (; nb < kBurst && i < acks; ++nb, ++i) {
      now += kAckGap;
      datapath::FlowAck& fa = burst[nb];
      fa.flow_id = resident[zipf(rng) - 1];
      fa.ev.now = now;
      fa.ev.rtt_sample =
          kRtt + Duration::from_nanos(static_cast<int64_t>(i % 1024) * 1000);
    }
    dp.on_ack_batch(std::span<const datapath::FlowAck>(burst.data(), nb));
    if ((i & 2047) == 0) dp.tick(now);
  }
  const double c1 = thread_cpu_secs();
  const TimePoint t1 = monotonic_now();
  ZipfRate r;
  r.wall_acks_per_sec = static_cast<double>(acks) / (t1 - t0).secs();
  r.cpu_acks_per_sec = static_cast<double>(acks) / (c1 - c0);
  return r;
}

struct ChurnRate {
  double wall_acks_per_sec = 0;
  double churn_ops_per_sec = 0;
  uint64_t churn_ops = 0;
};

/// Same Zipf-batch ACK stream, with 3 close->create churn ops per burst
/// of 32 (~1 op per 10 ACKs — at multi-M ACKs/sec this sustains well
/// over the fleet's ~100k ops/sec). Victims are uniform over the
/// resident set, so elephants get recycled too; each op closes a flow
/// (slot parked, generation bumped) and creates a fresh one that
/// recycles a parked slot — steady state allocates nothing, which
/// tests/hotpath_alloc_test.cc pins with the same op mix. Each created
/// flow gets `program` installed, the way the agent programs every new
/// connection it is told about.
ChurnRate drive_churn(datapath::CcpDatapath& dp,
                      std::vector<ipc::FlowId>& resident,
                      const datapath::FlowConfig& fcfg, const char* program,
                      util::ZipfSampler& zipf, Rng& rng, uint64_t acks,
                      TimePoint& now) {
  const Duration kAckGap = Duration::from_micros(1);
  const Duration kRtt = Duration::from_millis(10);
  constexpr size_t kBurst = 32;
  constexpr int kOpsPerBurst = 3;
  std::vector<datapath::FlowAck> burst(kBurst);
  for (datapath::FlowAck& fa : burst) {
    fa.sent_bytes = 1500;
    fa.ev.bytes_acked = 1500;
    fa.ev.packets_acked = 1;
    fa.ev.bytes_in_flight = 64 * 1500;
    fa.ev.packets_in_flight = 64;
  }
  ipc::InstallMsg ins;
  ins.program_text = program;
  uint64_t ops = 0;
  const TimePoint t0 = monotonic_now();
  for (uint64_t i = 0; i < acks;) {
    size_t nb = 0;
    for (; nb < kBurst && i < acks; ++nb, ++i) {
      now += kAckGap;
      datapath::FlowAck& fa = burst[nb];
      fa.flow_id = resident[zipf(rng) - 1];
      fa.ev.now = now;
      fa.ev.rtt_sample =
          kRtt + Duration::from_nanos(static_cast<int64_t>(i % 1024) * 1000);
    }
    dp.on_ack_batch(std::span<const datapath::FlowAck>(burst.data(), nb));
    for (int c = 0; c < kOpsPerBurst; ++c) {
      const size_t j =
          static_cast<size_t>(rng.next_below(resident.size()));
      dp.close_flow(resident[j], now);
      resident[j] = dp.create_flow(fcfg, "reno", now).id();
      ins.flow_id = resident[j];
      dp.handle_frame(ipc::encode_frame(ipc::Message{ins}), now);
      ++ops;
    }
    if ((i & 2047) == 0) dp.tick(now);
  }
  const TimePoint t1 = monotonic_now();
  ChurnRate r;
  r.churn_ops = ops;
  r.wall_acks_per_sec = static_cast<double>(acks) / (t1 - t0).secs();
  r.churn_ops_per_sec = static_cast<double>(ops) / (t1 - t0).secs();
  return r;
}

// --- interpreter vs JIT fold execution ---

// The stock program every flow starts with (same shape as the datapath
// default): a handful of counters and filters.
constexpr const char* kStockFoldProgram = R"(
fold {
  acked  := acked + Pkt.bytes_acked                           init 0;
  rtt    := ewma(rtt, Pkt.rtt, 0.125)                         init 0;
  minrtt := if(Pkt.rtt > 0, min(minrtt, Pkt.rtt), minrtt)     init 1e9;
  loss   := loss + Pkt.lost                                   init 0;
  rcv    := Pkt.rcv_rate                                      init 0;
}
control { WaitRtts(1.0); Report(); }
)";

// Arithmetic-dense fold of the kind BBR/Copa-style algorithms install:
// chained filters, a division, a square root, and derived scores. This
// is where interpretation overhead (dispatch + slot traffic per op)
// dominates and native lowering pays off most — the >= 1.3x gate below
// is evaluated on this program.
constexpr const char* kFoldHeavyProgram = R"(
fold {
  acked   := acked + Pkt.bytes_acked                          init 0;
  rtt     := ewma(rtt, Pkt.rtt, 0.125)                        init 0;
  rttvar  := ewma(rttvar, abs(Pkt.rtt - rtt), 0.25)           init 0;
  minrtt  := if(Pkt.rtt > 0, min(minrtt, Pkt.rtt), minrtt)    init 1e9;
  maxrate := max(maxrate, Pkt.rcv_rate)                       init 0;
  bw      := ewma(bw, Pkt.bytes_acked / max(Pkt.rtt, 1), 0.25) init 0;
  loss    := loss + Pkt.lost                                  init 0;
  pace    := sqrt(bw * max(rtt - minrtt, 0) + 1)              init 0;
  util    := if(maxrate > 0, Pkt.snd_rate / maxrate, 0)       init 0;
  score   := 0.8 * score + 0.2 * (bw / max(rtt, 1))           init 0;
}
control { WaitRtts(1.0); Report(); }
)";

/// Pure fold-execution rate for one program under one engine: installs
/// into a FoldMachine with the requested JitMode and folds `acks`
/// synthetic ACKs (RTT jittered per packet so the filters keep moving).
/// This isolates exactly the code the JIT replaces — no demux, batching,
/// or IPC around it.
double run_fold_engine(const lang::CompiledProgram& prog, bool use_jit,
                       uint64_t acks) {
  namespace jit = lang::jit;
  const jit::JitMode saved = jit::mode();
  jit::set_mode(use_jit ? jit::JitMode::On : jit::JitMode::Off);
  lang::FoldMachine m;
  m.install(&prog, {});
  jit::set_mode(saved);

  lang::PktInfo pkt;
  pkt.bytes_acked = 1500;
  pkt.packets_acked = 1;
  pkt.bytes_in_flight = 64.0 * 1500;
  pkt.packets_in_flight = 64;
  pkt.snd_rate_bps = 9.5e8;
  pkt.rcv_rate_bps = 9.0e8;
  pkt.mss = 1448;
  pkt.cwnd = 96'000;

  auto run = [&](uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) {
      pkt.rtt_us = 10'000.0 + static_cast<double>(i % 1024);
      pkt.now_us = static_cast<double>(i);
      pkt.lost_packets = (i % 4096) == 0 ? 1.0 : 0.0;
      m.on_packet(pkt);
    }
  };
  run(acks / 10);  // warm-up: scratch sized, branch predictors settled
  const TimePoint t0 = monotonic_now();
  run(acks);
  const TimePoint t1 = monotonic_now();
  return static_cast<double>(acks) / (t1 - t0).secs();
}

struct JitCompare {
  double interp_acks_per_sec = 0;
  double jit_acks_per_sec = 0;
  double speedup = 0;
};

/// Interleaved best-of-N A/B of the two engines on one program (same
/// drift-cancelling scheme as the instrumented/stripped comparison).
JitCompare compare_engines(const char* program_text, uint64_t acks,
                           int repeats) {
  const auto prog = lang::compile_text_shared(program_text);
  JitCompare r;
  for (int i = 0; i < repeats; ++i) {
    r.interp_acks_per_sec =
        std::max(r.interp_acks_per_sec, run_fold_engine(*prog, false, acks));
    r.jit_acks_per_sec =
        std::max(r.jit_acks_per_sec, run_fold_engine(*prog, true, acks));
  }
  r.speedup = r.interp_acks_per_sec > 0
                  ? r.jit_acks_per_sec / r.interp_acks_per_sec
                  : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool baseline = false;
  double enforce_ratio = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--baseline") {
      baseline = true;
    } else if (arg == "--enforce" && i + 1 < argc) {
      enforce_ratio = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--baseline] [--enforce <min_ratio>]\n",
                   argv[0]);
      return 2;
    }
  }

  // The committed values, read before this run overwrites them.
  double committed_full = 0.0;
  const bool have_committed = bench::read_json_num(
      bench::bench_json_path(), "hotpath", "full_acks_per_sec", &committed_full);
  double committed_1shard = 0.0;
  const bool have_committed_1shard =
      bench::read_json_num(bench::bench_json_path(), "scaling",
                           "shards_1_acks_per_sec", &committed_1shard);

  bench::banner("hot path (end-to-end)",
                "ACK -> demux -> fold -> batched report -> agent -> control");

  // Instrumented vs stripped A/B: machine-speed drift between two long
  // runs easily exceeds the telemetry delta, so interleave the two
  // configurations and take best-of-N per config — best-of discards
  // frequency dips and scheduler noise, leaving the structural cost.
  bench::section("full datapath: instrumented vs stripped vs watchdog vs flight recorder vs batch intake (best of 5, interleaved)");
  constexpr int kRepeats = 5;
  // Watchdog-armed config: k-RTT staleness checking on, thresholds the
  // bench can never reach (the agent refreshes contact every report
  // interval), so what's measured is the steady-state cost of the armed
  // check, not a fallback transition.
  datapath::FlowConfig wd_cfg;
  wd_cfg.watchdog_rtts = 8.0;
  RunResult full{}, stripped{}, watchdog{}, recorder{}, batch_best{};
  std::vector<double> overhead_trials;
  std::vector<double> recorder_trials;
  std::vector<double> watchdog_trials;
  std::vector<double> batch_trials;
  for (int r = 0; r < kRepeats; ++r) {
    // Every overhead/speedup ratio below is computed on thread-CPU-time
    // rates, not wall rates: this box shares its one core with the rest
    // of the machine, and wall rates swing several percent run to run
    // from preemption alone — more than every gate's threshold. CPU time
    // charges a run only for cycles it actually got. Wall rates are
    // still what the headline prints and the ratchet compares.
    //
    // The telemetry pair additionally runs as an ABBA quad —
    // instrumented, stripped, stripped, instrumented — so any linear
    // frequency drift across the four runs cancels in the paired means
    // (a fixed-order pair books the drift as overhead; PR 6's committed
    // 6.4% "overhead" was mostly that). The gated values are the same
    // numbers the JSON reports.
    telemetry::set_enabled(true);
    const RunResult a1 = run_full(/*batch=*/false);
    telemetry::set_enabled(false);
    const RunResult b1 = run_full(/*batch=*/false);
    const RunResult b2 = run_full(/*batch=*/false);
    telemetry::set_enabled(true);
    const RunResult a2 = run_full(/*batch=*/false);
    const RunResult& a = a1.acks_per_sec > a2.acks_per_sec ? a1 : a2;
    const RunResult& b = b1.acks_per_sec > b2.acks_per_sec ? b1 : b2;
    if (b.acks_per_sec > stripped.acks_per_sec) stripped = b;
    if (a.acks_per_sec > full.acks_per_sec) full = a;
    const double am = 0.5 * (a1.acks_per_cpu_sec + a2.acks_per_cpu_sec);
    const double bm = 0.5 * (b1.acks_per_cpu_sec + b2.acks_per_cpu_sec);
    if (bm > 0) {
      overhead_trials.push_back((bm - am) / bm * 100.0);
    }
    // Flight-recorder config: spans recording through the full loop plus
    // the 1-in-1024 cycle profiler, on top of normal instrumentation.
    // Runs immediately after its instrumented pair so the per-trial
    // overhead difference sees the least machine drift.
    telemetry::enable_spans(4096);
    telemetry::set_profile_sample(1024);
    const RunResult fr = run_full(/*batch=*/false);
    if (fr.acks_per_sec > recorder.acks_per_sec) recorder = fr;
    telemetry::set_profile_sample(0);
    telemetry::disable_spans();
    if (am > 0) {
      // Denominator is the trial's instrumented MEAN (the ABBA average),
      // not the best-of: fr is one run, and comparing it against the
      // fastest instrumented run of the trial would book drift as cost.
      recorder_trials.push_back((am - fr.acks_per_cpu_sec) / am * 100.0);
    }
    const RunResult w = run_full(/*batch=*/false, wd_cfg);
    if (w.acks_per_sec > watchdog.acks_per_sec) watchdog = w;
    if (am > 0) {
      watchdog_trials.push_back((am - w.acks_per_cpu_sec) / am * 100.0);
    }
    // The same workload through the cross-flow batch intake (bursts of
    // 32 through on_ack_batch), instrumented like `a`. Per-trial ratio
    // against the trial's instrumented mean so drift largely cancels in
    // the median.
    const RunResult bt = run_full(/*batch=*/true);
    if (bt.acks_per_sec > batch_best.acks_per_sec) batch_best = bt;
    if (am > 0) {
      batch_trials.push_back(bt.acks_per_cpu_sec / am);
    }
  }
  telemetry::set_enabled(true);
  std::printf("%zu flows, %llu ACKs per run; batch intake = bursts of 32 "
              "via on_ack_batch\n",
              kFlows, static_cast<unsigned long long>(kAcks));
  std::printf("  instrumented: %.2f M ACKs/sec (%llu frames to agent)\n",
              full.acks_per_sec / 1e6,
              static_cast<unsigned long long>(full.frames_to_agent));
  std::printf("  stripped:     %.2f M ACKs/sec\n", stripped.acks_per_sec / 1e6);
  std::printf("  watchdog on:  %.2f M ACKs/sec\n", watchdog.acks_per_sec / 1e6);
  std::printf("  recorder on:  %.2f M ACKs/sec (spans + 1/1024 profiler)\n",
              recorder.acks_per_sec / 1e6);
  std::printf("  batch intake: %.2f M ACKs/sec\n",
              batch_best.acks_per_sec / 1e6);
  double batch_speedup = 0.0;
  if (!batch_trials.empty()) {
    std::sort(batch_trials.begin(), batch_trials.end());
    batch_speedup = batch_trials[batch_trials.size() / 2];
  }
  double batch_lanes_per_wave = 0.0;
  double batch_simd_share_pct = 0.0;
  {
    const auto& m = telemetry::metrics();
    const uint64_t waves = m.dp_batch_waves.value();
    const uint64_t lanes = m.dp_batch_lanes_sum.value();
    const uint64_t simd = m.dp_batch_simd_lanes.value();
    if (waves > 0) {
      batch_lanes_per_wave =
          static_cast<double>(lanes) / static_cast<double>(waves);
    }
    if (lanes > 0) {
      batch_simd_share_pct =
          100.0 * static_cast<double>(simd) / static_cast<double>(lanes);
    }
    // On the fold-light default program the batch intake lands near
    // parity: the packed kernel wins ~3.5x on the fold stage, but the
    // fold is only ~a third of the per-ACK budget and SoA staging costs
    // about what the kernel saves (Amdahl analysis in docs/PERF.md).
    std::printf("  batch vs scalar intake %.2fx (median of paired CPU-time "
                "trials); occupancy %.1f lanes/wave, %.0f%% SIMD lanes\n",
                batch_speedup, batch_lanes_per_wave, batch_simd_share_pct);
  }
  const double rep_p50_us =
      telemetry::metrics().report_latency_ns.quantile(0.5) / 1e3;
  const double rep_p99_us =
      telemetry::metrics().report_latency_ns.quantile(0.99) / 1e3;
  std::printf("report latency (emit -> agent handler): p50 %.1f us, p99 %.1f us\n",
              rep_p50_us, rep_p99_us);
  // Median of the per-trial CPU-time deltas, clamped at zero:
  // best-of-per-config (the old method) compares two different trials on
  // wall rates, so ordinary run-to-run noise could report a *negative*
  // overhead. The median of paired CPU-time trials is drift- and
  // preemption-immune, and a negative median just means the cost is
  // below the noise floor — report it as 0, not as a nonsensical
  // speedup.
  const auto clamped_median = [](std::vector<double>& v) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    return std::max(0.0, v[v.size() / 2]);
  };
  const double overhead_pct = clamped_median(overhead_trials);
  std::printf("telemetry overhead: %.2f%% (median of %d paired CPU-time "
              "trials, target < 3%%)\n",
              overhead_pct, kRepeats);
  const double watchdog_overhead_pct = clamped_median(watchdog_trials);
  std::printf("watchdog overhead:  %.2f%% vs instrumented (median of %d "
              "paired CPU-time trials, target < 2%%)\n",
              watchdog_overhead_pct, kRepeats);
  const double recorder_overhead_pct = clamped_median(recorder_trials);
  std::printf("recorder overhead:  %.2f%% vs instrumented (median of %d "
              "paired CPU-time trials, target < 6%%)\n",
              recorder_overhead_pct, kRepeats);

  bench::section("fold execution: interpreter vs JIT (best of 5, interleaved)");
  constexpr uint64_t kFoldAcks = 4'000'000;
  const JitCompare stock = compare_engines(kStockFoldProgram, kFoldAcks, kRepeats);
  const JitCompare heavy = compare_engines(kFoldHeavyProgram, kFoldAcks, kRepeats);
  std::printf("  jit backend: %s\n",
              lang::jit::available() ? "x86-64 native" : "unavailable (interpreter only)");
  std::printf("  stock program:      interp %.2f M folds/sec, jit %.2f M (%.2fx)\n",
              stock.interp_acks_per_sec / 1e6, stock.jit_acks_per_sec / 1e6,
              stock.speedup);
  std::printf("  fold-heavy program: interp %.2f M folds/sec, jit %.2f M (%.2fx)\n",
              heavy.interp_acks_per_sec / 1e6, heavy.jit_acks_per_sec / 1e6,
              heavy.speedup);

  bench::section("prototype datapath (fixed measurements, DirectControl)");
  const RunResult proto = run_proto();
  std::printf("%zu flows, %llu ACKs: %.2f M ACKs/sec (%llu frames to agent)\n",
              kFlows, static_cast<unsigned long long>(kAcks),
              proto.acks_per_sec / 1e6,
              static_cast<unsigned long long>(proto.frames_to_agent));

  bench::section("sharded datapath scaling (instrumented, 8 flows/shard)");
  const unsigned hw_cores = std::thread::hardware_concurrency();
  constexpr uint64_t kAcksPerShard = 1'000'000;
  constexpr uint32_t kSweep[] = {1, 2, 4, 8};
  // Interleaved best-of-3 per shard count, for the same reason as the
  // instrumented/stripped A/B above: frequency ramp between runs would
  // otherwise masquerade as (super)linear scaling.
  ScalingResult scaling[4];
  for (int rep = 0; rep < 3; ++rep) {
    for (size_t i = 0; i < 4; ++i) {
      const ScalingResult r = run_sharded(kSweep[i], 8, kAcksPerShard);
      if (r.cpu_acks_per_sec > scaling[i].cpu_acks_per_sec) scaling[i] = r;
    }
  }
  for (size_t i = 0; i < 4; ++i) {
    const double speedup =
        scaling[i].cpu_acks_per_sec / scaling[0].cpu_acks_per_sec;
    std::printf(
        "  %u shard%s: %.2f M ACKs/sec aggregate (%.2fx), wall %.2f M\n",
        kSweep[i], kSweep[i] == 1 ? " " : "s",
        scaling[i].cpu_acks_per_sec / 1e6, speedup,
        scaling[i].wall_acks_per_sec / 1e6);
  }
  std::printf(
      "  (%u hw core%s; aggregate = sum of per-shard CPU-time rates — equals\n"
      "   the wall-clock aggregate when cores >= shards, and still charges\n"
      "   sync overhead to the shard that pays it when they don't)\n",
      hw_cores, hw_cores == 1 ? "" : "s");

  bench::section("million-flow churn (Zipf acks + close/create over the slab table)");
  // CCP_BENCH_CHURN_FLOWS overrides the resident count (quick local runs
  // and memory-tight CI containers; 1M flows with 16-entry rate rings is
  // ~2.5 GB).
  uint64_t resident_flows = 1'000'000;
  if (const char* env = std::getenv("CCP_BENCH_CHURN_FLOWS")) {
    const uint64_t v = std::strtoull(env, nullptr, 10);
    if (v >= 64) resident_flows = v;
  }
  constexpr double kZipfS = 1.5;
  constexpr uint64_t kChurnAcks = 2'000'000;
  datapath::FlowConfig churn_fcfg;
  // Small rate rings: the estimator window still works at the bench's
  // ACK cadence, and per-flow memory stays ~2.5 KB instead of ~50 KB —
  // the difference between a 2.5 GB and a 50 GB resident set.
  churn_fcfg.rate_ring_entries = 16;
  datapath::DatapathConfig churn_dcfg;
  churn_dcfg.flush_interval = Duration::from_millis(1);
  churn_dcfg.max_batch_msgs = 32;
  // Tick maintenance budget = 64 flows per tick — the same visit count
  // the 64-flow baseline's full sweep does, so the two sides pay an
  // identical maintenance rate and the ratio isolates table scale. (No
  // armed watchdogs here, so sweep rotation latency is inert.)
  churn_dcfg.tick_flow_budget = 64;
  // expected_flows stays 0 on purpose: setting up a million flows then
  // streams the index through every doubling from 64 to 2M buckets, so
  // the rehash stats below cover ~15 incremental grows under live
  // inserts — the exact path the bounded-pause gate checks.
  double churn_ratio_vs_64 = 0.0;
  double churn_acks64_wall = 0.0, churn_acksbig_wall = 0.0;
  ChurnRate churn{};
  datapath::FlowTable::Stats churn_table{};
  double churn_load_factor = 0.0;
  size_t churn_index_cap = 0;
  uint64_t churn_setup_ms = 0;
  {
    uint64_t frames64 = 0, frames_big = 0;
    datapath::CcpDatapath dp64(churn_dcfg,
                               [&](std::span<const uint8_t>) { ++frames64; });
    datapath::CcpDatapath dp_big(
        churn_dcfg, [&](std::span<const uint8_t>) { ++frames_big; });
    TimePoint now64 = TimePoint::epoch() + Duration::from_millis(1);
    TimePoint now_big = now64;
    std::vector<ipc::FlowId> res64, res_big;
    res64.reserve(64);
    res_big.reserve(resident_flows);
    for (size_t i = 0; i < 64; ++i) {
      res64.push_back(dp64.create_flow(churn_fcfg, "reno", now64).id());
    }
    const TimePoint s0 = monotonic_now();
    for (uint64_t i = 0; i < resident_flows; ++i) {
      res_big.push_back(dp_big.create_flow(churn_fcfg, "reno", now_big).id());
      if ((i & 8191) == 0) dp_big.tick(now_big);  // flush create batches
    }
    const TimePoint s1 = monotonic_now();
    churn_setup_ms = static_cast<uint64_t>((s1 - s0).secs() * 1e3);
    // Program every flow, both sides. The stock WaitRtts(1.0) default
    // would have every idle flow emit a report on each maintenance
    // visit, turning the measurement into a report-economics benchmark
    // (the headline section already covers the report path); pacing
    // reports out isolates demux + fold + table, which is what this
    // ratio gates.
    ipc::InstallMsg churn_ins;
    churn_ins.program_text = kChurnProgram;
    for (const ipc::FlowId id : res64) {
      churn_ins.flow_id = id;
      dp64.handle_frame(ipc::encode_frame(ipc::Message{churn_ins}), now64);
    }
    for (const ipc::FlowId id : res_big) {
      churn_ins.flow_id = id;
      dp_big.handle_frame(ipc::encode_frame(ipc::Message{churn_ins}), now_big);
    }
    std::printf("  setup: %llu flows resident in %llu ms (%.2f M creates/sec, "
                "index grew %llu times)\n",
                static_cast<unsigned long long>(resident_flows),
                static_cast<unsigned long long>(churn_setup_ms),
                static_cast<double>(resident_flows) /
                    std::max((s1 - s0).secs(), 1e-9) / 1e6,
                static_cast<unsigned long long>(
                    dp_big.flow_table().stats().grows));

    Rng rng(0x5eedULL);
    util::ZipfSampler zipf64(64, kZipfS);
    util::ZipfSampler zipf_big(resident_flows, kZipfS);
    // Warm both sides: programs compiled, staging sized, hot set cached.
    drive_zipf(dp64, res64, zipf64, rng, kChurnAcks / 10, now64);
    drive_zipf(dp_big, res_big, zipf_big, rng, kChurnAcks / 10, now_big);
    // Interleaved A/B, ratio gated on the median of paired CPU-time
    // trials (same estimator as every other gate on this shared box).
    std::vector<double> ratio_trials;
    ZipfRate best64{}, best_big{};
    for (int r = 0; r < 3; ++r) {
      const ZipfRate a = drive_zipf(dp64, res64, zipf64, rng, kChurnAcks, now64);
      const ZipfRate b =
          drive_zipf(dp_big, res_big, zipf_big, rng, kChurnAcks, now_big);
      if (a.wall_acks_per_sec > best64.wall_acks_per_sec) best64 = a;
      if (b.wall_acks_per_sec > best_big.wall_acks_per_sec) best_big = b;
      if (a.cpu_acks_per_sec > 0) {
        ratio_trials.push_back(b.cpu_acks_per_sec / a.cpu_acks_per_sec);
      }
    }
    std::sort(ratio_trials.begin(), ratio_trials.end());
    churn_ratio_vs_64 =
        ratio_trials.empty() ? 0.0 : ratio_trials[ratio_trials.size() / 2];
    churn_acks64_wall = best64.wall_acks_per_sec;
    churn_acksbig_wall = best_big.wall_acks_per_sec;
    // Churn phase: same ACK stream with ~1 close->create per 10 ACKs.
    churn = drive_churn(dp_big, res_big, churn_fcfg, kChurnProgram, zipf_big,
                        rng, kChurnAcks, now_big);
    churn_table = dp_big.flow_table().stats();
    churn_load_factor = dp_big.flow_table().load_factor();
    churn_index_cap = dp_big.flow_table().index_capacity();
    std::printf("  acks: %.2f M/sec @ 64 flows, %.2f M/sec @ %llu flows "
                "(ratio %.3f, gate >= 0.80, design target 0.95)\n",
                churn_acks64_wall / 1e6, churn_acksbig_wall / 1e6,
                static_cast<unsigned long long>(resident_flows),
                churn_ratio_vs_64);
    std::printf("  churn: %.0f k ops/sec sustained alongside %.2f M acks/sec "
                "(%llu ops, %llu recycled slots)\n",
                churn.churn_ops_per_sec / 1e3, churn.wall_acks_per_sec / 1e6,
                static_cast<unsigned long long>(churn.churn_ops),
                static_cast<unsigned long long>(churn_table.recycles));
    std::printf("  rehash: %llu grows, %llu steps, max step %llu buckets "
                "(budget %zu), %llu forced drains; load factor %.2f over "
                "%zu buckets\n",
                static_cast<unsigned long long>(churn_table.grows),
                static_cast<unsigned long long>(churn_table.rehash_steps),
                static_cast<unsigned long long>(churn_table.max_step_buckets),
                churn_dcfg.rehash_step_buckets,
                static_cast<unsigned long long>(churn_table.forced_drains),
                churn_load_factor, churn_index_cap);
  }

  const char* full_key = baseline ? "before_full_acks_per_sec" : "full_acks_per_sec";
  const char* proto_key = baseline ? "before_proto_acks_per_sec" : "proto_acks_per_sec";
  bench::update_json_section(
      bench::bench_json_path(), "hotpath",
      {{full_key, bench::json_num(full.acks_per_sec)},
       {proto_key, bench::json_num(proto.acks_per_sec)},
       {"batch_acks_per_sec", bench::json_num(batch_best.acks_per_sec)},
       {"batch_speedup", bench::json_num(batch_speedup)},
       {"batch_lanes_per_wave", bench::json_num(batch_lanes_per_wave)},
       {"batch_simd_share_pct", bench::json_num(batch_simd_share_pct)},
       {"full_acks_per_sec_stripped", bench::json_num(stripped.acks_per_sec)},
       {"telemetry_overhead_pct", bench::json_num(overhead_pct)},
       {"watchdog_acks_per_sec", bench::json_num(watchdog.acks_per_sec)},
       {"watchdog_overhead_pct", bench::json_num(watchdog_overhead_pct)},
       {"recorder_acks_per_sec", bench::json_num(recorder.acks_per_sec)},
       {"recorder_overhead_pct", bench::json_num(recorder_overhead_pct)},
       {"report_latency_p50_us", bench::json_num(rep_p50_us)},
       {"report_latency_p99_us", bench::json_num(rep_p99_us)},
       {"n_flows", bench::json_num(static_cast<double>(kFlows))},
       {"acks", bench::json_num(static_cast<double>(kAcks))},
       {"methodology",
        "\"full_* keys drive per-ACK on_send/on_ack (the ratcheted headline, "
        "wall clock); batch_acks_per_sec is the same workload in bursts of 32 "
        "through on_ack_batch. All *_overhead_pct and batch_speedup ratios are "
        "medians of per-trial thread-CPU-time comparisons (telemetry as an "
        "ABBA quad) so container preemption and frequency drift cancel — "
        "batch lands near parity on the fold-light default program (SoA "
        "staging offsets the packed-kernel fold win; see docs/PERF.md)\""}});
  bench::update_json_section(
      bench::bench_json_path(), "jit",
      {{"available", bench::json_num(lang::jit::available() ? 1.0 : 0.0)},
       {"jit_acks_per_sec", bench::json_num(heavy.jit_acks_per_sec)},
       {"interp_acks_per_sec", bench::json_num(heavy.interp_acks_per_sec)},
       {"jit_speedup", bench::json_num(heavy.speedup)},
       {"stock_jit_acks_per_sec", bench::json_num(stock.jit_acks_per_sec)},
       {"stock_interp_acks_per_sec", bench::json_num(stock.interp_acks_per_sec)},
       {"stock_jit_speedup", bench::json_num(stock.speedup)},
       {"fold_acks", bench::json_num(static_cast<double>(kFoldAcks))},
       {"methodology",
        "\"pure FoldMachine loop, interleaved best-of-5 per engine; "
        "jit_* keys are the fold-heavy program\""}});
  bench::update_json_section(
      bench::bench_json_path(), "scaling",
      {{"shards_1_acks_per_sec", bench::json_num(scaling[0].cpu_acks_per_sec)},
       {"shards_2_acks_per_sec", bench::json_num(scaling[1].cpu_acks_per_sec)},
       {"shards_4_acks_per_sec", bench::json_num(scaling[2].cpu_acks_per_sec)},
       {"shards_8_acks_per_sec", bench::json_num(scaling[3].cpu_acks_per_sec)},
       {"shards_1_wall_acks_per_sec", bench::json_num(scaling[0].wall_acks_per_sec)},
       {"shards_2_wall_acks_per_sec", bench::json_num(scaling[1].wall_acks_per_sec)},
       {"shards_4_wall_acks_per_sec", bench::json_num(scaling[2].wall_acks_per_sec)},
       {"shards_8_wall_acks_per_sec", bench::json_num(scaling[3].wall_acks_per_sec)},
       {"speedup_4_shards",
        bench::json_num(scaling[2].cpu_acks_per_sec / scaling[0].cpu_acks_per_sec)},
       {"wall_speedup_4_shards",
        bench::json_num(scaling[0].wall_acks_per_sec > 0
                            ? scaling[2].wall_acks_per_sec /
                                  scaling[0].wall_acks_per_sec
                            : 0.0)},
       {"acks_per_shard", bench::json_num(static_cast<double>(kAcksPerShard))},
       {"hw_cores", bench::json_num(static_cast<double>(hw_cores))},
       {"methodology",
        "\"speedup_4_shards is a CPU-TIME aggregate (sum of per-shard rates "
        "on CLOCK_THREAD_CPUTIME_ID): it measures per-shard sync overhead, "
        "not parallel capacity, and can approach n_shards even on one core. "
        "wall_speedup_4_shards is the wall-clock ratio and is the honest "
        "parallelism number; expect ~1x when hw_cores < shards\""}});
  bench::update_json_section(
      bench::bench_json_path(), "churn",
      {{"resident_flows", bench::json_num(static_cast<double>(resident_flows))},
       {"zipf_s", bench::json_num(kZipfS)},
       {"acks", bench::json_num(static_cast<double>(kChurnAcks))},
       {"acks_per_sec_64", bench::json_num(churn_acks64_wall)},
       {"acks_per_sec_resident", bench::json_num(churn_acksbig_wall)},
       {"ratio_vs_64", bench::json_num(churn_ratio_vs_64)},
       {"churn_acks_per_sec", bench::json_num(churn.wall_acks_per_sec)},
       {"churn_ops_per_sec", bench::json_num(churn.churn_ops_per_sec)},
       {"churn_ops", bench::json_num(static_cast<double>(churn.churn_ops))},
       {"setup_ms", bench::json_num(static_cast<double>(churn_setup_ms))},
       {"slot_recycles", bench::json_num(static_cast<double>(churn_table.recycles))},
       {"index_grows", bench::json_num(static_cast<double>(churn_table.grows))},
       {"rehash_steps", bench::json_num(static_cast<double>(churn_table.rehash_steps))},
       {"buckets_migrated",
        bench::json_num(static_cast<double>(churn_table.buckets_migrated))},
       {"max_step_buckets",
        bench::json_num(static_cast<double>(churn_table.max_step_buckets))},
       {"forced_drains",
        bench::json_num(static_cast<double>(churn_table.forced_drains))},
       {"index_capacity", bench::json_num(static_cast<double>(churn_index_cap))},
       {"load_factor", bench::json_num(churn_load_factor)},
       {"methodology",
        "\"Zipf(1.5)-popular ACK bursts of 32 via on_ack_batch, no agent "
        "(counting FrameTx). ratio_vs_64 = median of 3 paired CPU-time "
        "trials of the same driver at 64 vs resident_flows flows; the "
        "churn phase adds ~1 uniform-victim close->create per 10 ACKs. "
        "expected_flows=0, so setup drove the index through every "
        "doubling under the bounded incremental rehash\""}});

  if (enforce_ratio > 0) {
    if (!have_committed) {
      std::printf("[enforce] no committed full_acks_per_sec to compare "
                  "against; skipping\n");
    } else if (full.acks_per_sec < enforce_ratio * committed_full) {
      std::fprintf(stderr,
                   "[enforce] FAIL: instrumented %.3g ACKs/sec < %.0f%% of "
                   "committed %.3g\n",
                   full.acks_per_sec, enforce_ratio * 100.0, committed_full);
      return 1;
    } else {
      std::printf("[enforce] ok: instrumented %.3g ACKs/sec >= %.0f%% of "
                  "committed %.3g\n",
                  full.acks_per_sec, enforce_ratio * 100.0, committed_full);
    }
    if (!have_committed_1shard) {
      std::printf("[enforce] no committed shards_1_acks_per_sec to compare "
                  "against; skipping\n");
    } else if (scaling[0].cpu_acks_per_sec < enforce_ratio * committed_1shard) {
      std::fprintf(stderr,
                   "[enforce] FAIL: 1-shard %.3g ACKs/sec < %.0f%% of "
                   "committed %.3g\n",
                   scaling[0].cpu_acks_per_sec, enforce_ratio * 100.0,
                   committed_1shard);
      return 1;
    } else {
      std::printf("[enforce] ok: 1-shard %.3g ACKs/sec >= %.0f%% of "
                  "committed %.3g\n",
                  scaling[0].cpu_acks_per_sec, enforce_ratio * 100.0,
                  committed_1shard);
    }
    // Arming the watchdog must cost < 2% of the instrumented rate. Gated
    // on the median of paired per-trial CPU-time overheads (same
    // estimator as the printed number): best-of wall rates from two
    // different trials wobble several percent on a shared box, which at a
    // 2% resolution is pure noise.
    constexpr double kWatchdogMaxOverheadPct = 2.0;
    if (watchdog_overhead_pct >= kWatchdogMaxOverheadPct) {
      std::fprintf(stderr,
                   "[enforce] FAIL: watchdog overhead %.2f%% >= %.0f%% "
                   "(watchdog %.3g vs instrumented %.3g ACKs/sec)\n",
                   watchdog_overhead_pct, kWatchdogMaxOverheadPct,
                   watchdog.acks_per_sec, full.acks_per_sec);
      return 1;
    }
    std::printf("[enforce] ok: watchdog overhead %.2f%% < %.0f%% "
                "(watchdog %.3g vs instrumented %.3g ACKs/sec)\n",
                watchdog_overhead_pct, kWatchdogMaxOverheadPct,
                watchdog.acks_per_sec, full.acks_per_sec);
    // The flight recorder (full-loop spans + sampled cycle profiler) must
    // cost < 6% on top of plain instrumentation. The budget moved when
    // span ids became conditional on spans_active(): span tracing used to
    // run whenever telemetry was on and billed ~4-5% to the baseline
    // telemetry gate (PR6: 6.4% telemetry + 0.6% recorder); now the
    // flight-recorder config carries the full span+profiler cost
    // (~2.3% + ~4.5%) and the always-on tier is cheap. Gate on the median
    // of the per-repeat paired overheads rather than the best-of-5 rates:
    // the point estimates wobble more than the median of adjacent A/B
    // pairs, which cancels machine drift per trial.
    constexpr double kRecorderMaxOverheadPct = 6.0;
    if (recorder_overhead_pct >= kRecorderMaxOverheadPct) {
      std::fprintf(stderr,
                   "[enforce] FAIL: recorder overhead %.2f%% >= %.0f%% "
                   "(recorder %.3g vs instrumented %.3g ACKs/sec)\n",
                   recorder_overhead_pct, kRecorderMaxOverheadPct,
                   recorder.acks_per_sec, full.acks_per_sec);
      return 1;
    }
    std::printf("[enforce] ok: recorder overhead %.2f%% < %.0f%% "
                "(recorder %.3g vs instrumented %.3g ACKs/sec)\n",
                recorder_overhead_pct, kRecorderMaxOverheadPct,
                recorder.acks_per_sec, full.acks_per_sec);
    // Base telemetry must cost < 3%. The gated value IS the JSON value:
    // the median of adjacent stripped/instrumented pairs — no second
    // estimator that can drift apart from what the report shows.
    constexpr double kTelemetryMaxOverheadPct = 3.0;
    if (overhead_pct >= kTelemetryMaxOverheadPct) {
      std::fprintf(stderr,
                   "[enforce] FAIL: telemetry overhead %.2f%% >= %.0f%% "
                   "(instrumented %.3g vs stripped %.3g ACKs/sec)\n",
                   overhead_pct, kTelemetryMaxOverheadPct, full.acks_per_sec,
                   stripped.acks_per_sec);
      return 1;
    }
    std::printf("[enforce] ok: telemetry overhead %.2f%% < %.0f%% "
                "(instrumented %.3g vs stripped %.3g ACKs/sec)\n",
                overhead_pct, kTelemetryMaxOverheadPct, full.acks_per_sec,
                stripped.acks_per_sec);
    // Batch intake no-pathology guard. On the fold-light default program
    // the grouped path is near scalar parity (the ~3.5x packed-kernel
    // fold win is offset by SoA staging on a fold that is only ~a third
    // of the per-ACK budget — docs/PERF.md works the Amdahl math), so the
    // gate catches regressions in the batch machinery itself rather than
    // demanding a speedup this workload cannot show: the grouped path
    // must stay within 25% of scalar, waves must fill, and eligible
    // lanes must actually take the packed kernel. Builds without packed
    // kernels (non-x86-64, -DCCP_ENABLE_SIMD=OFF) batch the intake but
    // fold per lane; only the floor applies there.
    constexpr double kBatchMinSpeedup = 0.75;
    if (batch_speedup < kBatchMinSpeedup) {
      std::fprintf(stderr,
                   "[enforce] FAIL: batch intake %.3g ACKs/sec is only "
                   "%.2fx the scalar API's %.3g (floor %.2fx)\n",
                   batch_best.acks_per_sec, batch_speedup, full.acks_per_sec,
                   kBatchMinSpeedup);
      return 1;
    }
    std::printf("[enforce] ok: batch intake = %.2fx scalar API "
                "(floor %.2fx)\n",
                batch_speedup, kBatchMinSpeedup);
    if (lang::jit::simd_available()) {
      constexpr double kBatchMinLanesPerWave = 8.0;
      constexpr double kBatchMinSimdSharePct = 90.0;
      if (batch_lanes_per_wave < kBatchMinLanesPerWave ||
          batch_simd_share_pct < kBatchMinSimdSharePct) {
        std::fprintf(stderr,
                     "[enforce] FAIL: batch occupancy %.1f lanes/wave, "
                     "%.0f%% SIMD lanes (need >= %.0f and >= %.0f%%)\n",
                     batch_lanes_per_wave, batch_simd_share_pct,
                     kBatchMinLanesPerWave, kBatchMinSimdSharePct);
        return 1;
      }
      std::printf("[enforce] ok: batch occupancy %.1f lanes/wave, "
                  "%.0f%% SIMD lanes\n",
                  batch_lanes_per_wave, batch_simd_share_pct);
    } else {
      std::printf("[enforce] no packed batch kernels in this build; "
                  "skipping batch occupancy gate\n");
    }
    // Native lowering must actually buy something: >= 1.3x over the
    // interpreter on the fold-heavy program. Both rates come from the
    // same interleaved A/B in this run, so the ratio is drift-immune.
    // Interpreter-only builds (non-x86-64, -DCCP_ENABLE_JIT=OFF) have
    // nothing to gate.
    constexpr double kJitMinSpeedup = 1.3;
    if (!lang::jit::available()) {
      std::printf("[enforce] no JIT backend in this build; skipping "
                  "speedup gate\n");
    } else if (heavy.speedup < kJitMinSpeedup) {
      std::fprintf(stderr,
                   "[enforce] FAIL: JIT %.3g folds/sec is only %.2fx the "
                   "interpreter's %.3g (target >= %.1fx)\n",
                   heavy.jit_acks_per_sec, heavy.speedup,
                   heavy.interp_acks_per_sec, kJitMinSpeedup);
      return 1;
    } else {
      std::printf("[enforce] ok: JIT %.3g folds/sec = %.2fx interpreter "
                  "(target >= %.1fx)\n",
                  heavy.jit_acks_per_sec, heavy.speedup, kJitMinSpeedup);
    }
    // Million-flow scale gates (docs/PERF.md "Million-flow scale"): a
    // resident-set scaling floor, the fleet's churn rate, and index
    // growth never taking an unbounded pause (largest migration step
    // within budget, no forced synchronous drains).
    //
    // On the scaling floor: the design target is < 5% regression (0.95),
    // and the storage layer itself meets it — demux is one bucket load,
    // the slab gather is prefetched three sweeps ahead. What remains at
    // 1M resident flows is the physics of the measurement host: the
    // warm-path microloop costs ~55 ns/ACK, and the Zipf-tail ACKs that
    // miss to L3/DRAM over a ~2.5 GB working set add ~10-12 ns/ACK that
    // no prefetch distance available inside a 32-ACK burst can fully
    // hide against so small a baseline (a datapath doing real per-ACK
    // work — frame decode, report emission — absorbs the same absolute
    // delta inside 5% easily). The enforce floor is set at 0.80 to
    // catch storage-layer regressions from the measured ~0.84 while
    // staying out of run-to-run noise; raising it back toward 0.95
    // needs either a larger-LLC host or a fatter per-ACK baseline.
    constexpr double kChurnMinRatio = 0.80;
    if (churn_ratio_vs_64 < kChurnMinRatio) {
      std::fprintf(stderr,
                   "[enforce] FAIL: %.3g ACKs/sec at %llu resident flows is "
                   "%.3fx the 64-flow rate %.3g (floor %.2fx)\n",
                   churn_acksbig_wall,
                   static_cast<unsigned long long>(resident_flows),
                   churn_ratio_vs_64, churn_acks64_wall, kChurnMinRatio);
      return 1;
    }
    std::printf("[enforce] ok: %llu-flow resident set = %.3fx the 64-flow "
                "rate (floor %.2fx)\n",
                static_cast<unsigned long long>(resident_flows),
                churn_ratio_vs_64, kChurnMinRatio);
    constexpr double kChurnMinOpsPerSec = 100'000.0;
    if (churn.churn_ops_per_sec < kChurnMinOpsPerSec) {
      std::fprintf(stderr,
                   "[enforce] FAIL: churn %.3g ops/sec < %.0fk floor\n",
                   churn.churn_ops_per_sec, kChurnMinOpsPerSec / 1e3);
      return 1;
    }
    std::printf("[enforce] ok: churn %.0fk ops/sec (floor %.0fk)\n",
                churn.churn_ops_per_sec / 1e3, kChurnMinOpsPerSec / 1e3);
    if (churn_table.forced_drains != 0 ||
        churn_table.max_step_buckets > churn_dcfg.rehash_step_buckets) {
      std::fprintf(stderr,
                   "[enforce] FAIL: rehash pause bound violated "
                   "(max step %llu buckets vs budget %zu, %llu forced "
                   "drains)\n",
                   static_cast<unsigned long long>(
                       churn_table.max_step_buckets),
                   churn_dcfg.rehash_step_buckets,
                   static_cast<unsigned long long>(churn_table.forced_drains));
      return 1;
    }
    std::printf("[enforce] ok: rehash steps bounded (max %llu buckets <= "
                "budget %zu, 0 forced drains)\n",
                static_cast<unsigned long long>(churn_table.max_step_buckets),
                churn_dcfg.rehash_step_buckets);
  }
  return 0;
}
