// Reproduces Figure 4: "Comparison of the reactivity of a CCP-based
// NewReno implementation and the Linux kernel implementation."
//
// Paper setup: a 60-second NewReno flow starts at t=0; at t=20 s a second
// flow of the same type joins. Both implementations should show the same
// convergence dynamics: the first flow cedes roughly half the link within
// a few seconds and the two flows share fairly thereafter.
#include <cstdio>
#include <cstring>
#include <map>

#include "algorithms/native/native_reno.hpp"
#include "bench/bench_common.hpp"
#include "bench/bench_json.hpp"
#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"
#include "sim/trace.hpp"
#include "util/series.hpp"

namespace {

using namespace ccp;
using namespace ccp::sim;

constexpr double kRateBps = 1e9;
constexpr double kDurationSecs = 60.0;
constexpr double kSecondFlowStart = 20.0;
const Duration kRtt = Duration::from_millis(10);

struct RunOutput {
  // Per-second goodput of each flow, Mbit/s.
  std::vector<double> tput1, tput2;
  double converge_secs = -1;  // time after t=20 s until within 25% of fair share
  double jain_last20 = 0;
  std::vector<util::FlowSummaryRow> flows;  // scorecard-schema rows
};

RunOutput run(bool use_ccp, uint64_t seed) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(kRateBps, kRtt, 1.0);
  Dumbbell net(q, cfg);
  const TimePoint end = TimePoint::epoch() + Duration::from_secs_f(kDurationSecs);

  algorithms::native::NativeReno native1(1460, 10 * 1460);
  algorithms::native::NativeReno native2(1460, 10 * 1460);
  std::unique_ptr<SimCcpHost> host;
  datapath::CcModule* cc1 = &native1;
  datapath::CcModule* cc2 = &native2;
  if (use_ccp) {
    CcpHostConfig host_cfg;
    host_cfg.seed = seed;
    host = std::make_unique<SimCcpHost>(q, host_cfg);
    cc1 = &host->create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno");
    cc2 = &host->create_flow(datapath::FlowConfig{1460, 10 * 1460}, "reno");
    host->start(end);
  }

  TcpSenderConfig scfg;
  scfg.record_rtt_samples = true;
  auto& s1 = net.add_flow(scfg, cc1, TimePoint::epoch());
  auto& s2 = net.add_flow(scfg, cc2,
                          TimePoint::epoch() + Duration::from_secs_f(kSecondFlowStart));

  RunOutput out;
  uint64_t last1 = 0, last2 = 0;
  for (int sec = 1; sec <= static_cast<int>(kDurationSecs); ++sec) {
    q.run_until(TimePoint::epoch() + Duration::from_secs(sec));
    out.tput1.push_back((s1.delivered_bytes() - last1) * 8.0 / 1e6);
    out.tput2.push_back((s2.delivered_bytes() - last2) * 8.0 / 1e6);
    last1 = s1.delivered_bytes();
    last2 = s2.delivered_bytes();
  }

  // Convergence time: first second after the join where flow 2 reaches
  // 75% of its fair share (half the link).
  const double fair = kRateBps / 2e6;
  for (size_t i = static_cast<size_t>(kSecondFlowStart); i < out.tput2.size(); ++i) {
    if (out.tput2[i] >= 0.75 * fair) {
      out.converge_secs = static_cast<double>(i + 1) - kSecondFlowStart;
      break;
    }
  }
  // Jain fairness over the final 20 seconds.
  double sum1 = 0, sum2 = 0;
  for (size_t i = 40; i < out.tput1.size(); ++i) {
    sum1 += out.tput1[i];
    sum2 += out.tput2[i];
  }
  out.jain_last20 = util::jain_index({sum1, sum2});

  const double total_mbps =
      (s1.delivered_bytes() + s2.delivered_bytes()) * 8.0 / 1e6;
  auto flow_row = [&](TcpSender& snd, const char* name,
                      double active_secs) {
    util::FlowSummaryRow row;
    row.name = name;
    row.throughput_mbps = snd.delivered_bytes() * 8.0 / active_secs / 1e6;
    row.share =
        total_mbps > 0 ? snd.delivered_bytes() * 8.0 / 1e6 / total_mbps : 0;
    row.retransmits = static_cast<double>(snd.stats().retransmits);
    row.timeouts = static_cast<double>(snd.stats().timeouts);
    row.rtt_p50_ms = snd.rtt_samples().quantile(0.5) / 1000.0;
    row.rtt_p95_ms = snd.rtt_samples().quantile(0.95) / 1000.0;
    return row;
  };
  out.flows.push_back(flow_row(s1, "flow1", kDurationSecs));
  out.flows.push_back(flow_row(s2, "flow2", kDurationSecs - kSecondFlowStart));
  return out;
}

void print_series(const char* name, const RunOutput& out) {
  std::printf("\nper-second goodput, %s (Mbit/s; 2 s grid):\n", name);
  // Samples are per-second ending at t = 1, 2, ...; decimate to the 2 s grid.
  std::map<std::string, std::vector<util::SeriesPoint>> series;
  auto full1 = util::make_series(out.tput1, 1.0, 1.0);
  auto full2 = util::make_series(out.tput2, 1.0, 1.0);
  for (size_t i = 1; i < full1.size(); i += 2) {
    series["flow1_mbps"].push_back(full1[i]);
    series["flow2_mbps"].push_back(full2[i]);
  }
  util::write_series_csv(stdout, series);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    }
  }

  bench::banner("Figure 4 (reproduction)",
                "NewReno reactivity: competing flow joins at t=20 s");
  std::printf("workload: 1 Gbit/s bottleneck, 10 ms RTT, 1 BDP buffer, 60 s;\n"
              "flow 2 starts at t=20 s; seed %llu\n",
              static_cast<unsigned long long>(seed));

  const RunOutput native = run(/*use_ccp=*/false, seed);
  const RunOutput ccp = run(/*use_ccp=*/true, seed);

  bench::section("summary (paper: 'Both implementations exhibit similar "
                 "convergence dynamics')");
  std::printf("%-22s %22s %20s\n", "implementation", "convergence time (s)",
              "Jain index (40-60 s)");
  std::printf("%-22s %22.0f %20.3f\n", "native newreno (Linux)",
              native.converge_secs, native.jain_last20);
  std::printf("%-22s %22.0f %20.3f\n", "CCP newreno", ccp.converge_secs,
              ccp.jain_last20);

  print_series("native newreno (Fig 4b)", native);
  print_series("CCP newreno (Fig 4a)", ccp);

  bench::section("per-flow scorecard rows (native, then CCP)");
  std::vector<util::FlowSummaryRow> rows = native.flows;
  rows.insert(rows.end(), ccp.flows.begin(), ccp.flows.end());
  rows[0].name = "native/flow1";
  rows[1].name = "native/flow2";
  rows[2].name = "ccp/flow1";
  rows[3].name = "ccp/flow2";
  util::write_flow_summary_csv(stdout, rows);

  bench::update_json_section(
      bench::bench_json_path(), "fig4_convergence",
      {{"native_converge_secs", bench::json_num(native.converge_secs)},
       {"native_jain_last20", bench::json_num(native.jain_last20)},
       {"native_retransmits",
        bench::json_num(native.flows[0].retransmits + native.flows[1].retransmits)},
       {"ccp_converge_secs", bench::json_num(ccp.converge_secs)},
       {"ccp_jain_last20", bench::json_num(ccp.jain_last20)},
       {"ccp_retransmits",
        bench::json_num(ccp.flows[0].retransmits + ccp.flows[1].retransmits)},
       {"native_flow2_mbps",
        bench::json_series(util::make_series(native.tput2, 1.0, 1.0))},
       {"ccp_flow2_mbps",
        bench::json_series(util::make_series(ccp.tput2, 1.0, 1.0))}});
  return 0;
}
