// Ablation: smooth congestion window transitions in the datapath.
//
// §3 of the paper observes that per-RTT cwnd updates cause packet bursts
// and says: "In future work, we plan to implement smooth congestion
// window transitions in the datapath to avoid packet bursts due to
// per-RTT congestion window updates." We implemented that future work
// (FlowConfig::smooth_cwnd, ACK-clocked increase toward the target);
// this bench quantifies what it buys.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"

namespace {

using namespace ccp;
using namespace ccp::sim;

struct RunOutput {
  double tput_mbps = 0;
  uint64_t timeouts = 0;
  uint64_t drops = 0;
  double max_queue_pkts = 0;
};

RunOutput run(const std::string& alg, bool smooth, double rate_bps,
              double buffer_bdp) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(rate_bps, Duration::from_millis(10), buffer_bdp);
  Dumbbell net(q, cfg);
  const TimePoint end = TimePoint::epoch() + Duration::from_secs(15);
  SimCcpHost host(q, CcpHostConfig{});
  datapath::FlowConfig fcfg{};
  fcfg.mss = 1460;
  fcfg.init_cwnd_bytes = 10 * 1460;
  fcfg.smooth_cwnd = smooth;
  auto& flow = host.create_flow(fcfg, alg);
  host.start(end);
  auto& snd = net.add_flow(TcpSenderConfig{}, &flow, TimePoint::epoch());
  q.run_until(end);
  return {snd.delivered_bytes() * 8.0 / 15 / 1e6, snd.stats().timeouts,
          net.bottleneck().stats().dropped_pkts,
          net.bottleneck().stats().max_queue_bytes / 1500.0};
}

}  // namespace

int main() {
  bench::banner("Ablation (the §3 future work, implemented)",
                "Smooth cwnd transitions in the datapath: on vs off");
  std::printf("workload: 10 ms RTT, 15 s, one CCP flow. Shallow buffers make\n"
              "burst absorption the binding constraint — exactly where the\n"
              "paper observed per-RTT window updates causing packet bursts.\n\n");

  std::printf("%-8s %-11s %-7s %-7s %12s %9s %8s %10s\n", "algo", "link",
              "buffer", "smooth", "tput Mbit/s", "timeouts", "drops",
              "maxQ pkts");
  for (const char* alg : {"reno", "cubic"}) {
    for (double rate : {100e6, 1e9}) {
      for (double buffer : {0.25, 1.0}) {
        for (bool smooth : {false, true}) {
          const RunOutput r = run(alg, smooth, rate, buffer);
          std::printf("%-8s %-11s %-7.2f %-7s %12.1f %9llu %8llu %10.0f\n", alg,
                      rate >= 1e9 ? "1 Gbit/s" : "100 Mbit/s", buffer,
                      smooth ? "on" : "off", r.tput_mbps,
                      static_cast<unsigned long long>(r.timeouts),
                      static_cast<unsigned long long>(r.drops),
                      r.max_queue_pkts);
        }
      }
    }
  }
  std::printf(
      "\nHonest reading: with modern loss recovery (SACK + RACK + tail-loss\n"
      "probes) in the transport, burstiness from per-RTT window jumps costs\n"
      "little at the macro level — smoothing trims drops in the shallow-\n"
      "buffer high-BDP case (1 Gbit/s, 0.25 BDP) and is roughly neutral or\n"
      "even drop-increasing elsewhere (gentler probing lingers at the cliff\n"
      "longer). The feature mattered far more during bring-up: before this\n"
      "repo's sender grew RACK/TLP, unsmoothed window jumps caused tail-drop\n"
      "RTO collapses — the precise failure mode §3 anticipates. Where it\n"
      "still earns its keep is burst shaping for offload hardware (Figure 5:\n"
      "bursts change GRO behavior), not loss avoidance.\n");
  return 0;
}
