// Extension bench (§5 / §4-CM): aggregate congestion control for flow
// groups sharing a bottleneck.
//
// Scenario: three application flows from one host plus one competing
// standalone reno flow, all through a 50 Mbit/s bottleneck.
//   independent: the three flows each run their own reno -> together they
//                grab ~3/4 of the link (N shares for N flows).
//   aggregated:  the three flows join one AggregateGroup -> the group
//                competes as ONE flow (~1/2 of the link), and an internal
//                3:2:1 weighting divides the group's share — bandwidth
//                policy without touching the network.
#include <cstdio>

#include "agent/aggregate.hpp"
#include "algorithms/native/native_reno.hpp"
#include "bench/bench_common.hpp"
#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"

namespace {

using namespace ccp;
using namespace ccp::sim;

constexpr double kSecs = 30.0;

struct Result {
  std::vector<double> member_tputs;
  double outsider = 0;
};

Result run(bool aggregated, std::vector<double> weights) {
  EventQueue q;
  auto cfg = DumbbellConfig::make(50e6, Duration::from_millis(10), 1.0);
  Dumbbell net(q, cfg);
  SimCcpHost host(q, CcpHostConfig{});

  agent::AggregateGroup group;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "member" + std::to_string(i);
    if (aggregated) {
      host.agent().register_algorithm(name, group.member_factory(weights[i]));
    }
  }
  const TimePoint end = TimePoint::epoch() + Duration::from_secs_f(kSecs);
  host.start(end);

  std::vector<TcpSender*> members;
  for (int i = 0; i < 3; ++i) {
    auto& flow = host.create_flow(
        datapath::FlowConfig{1460, 10 * 1460},
        aggregated ? "member" + std::to_string(i) : std::string("reno"));
    members.push_back(&net.add_flow(TcpSenderConfig{}, &flow, TimePoint::epoch()));
  }
  algorithms::native::NativeReno outsider(1460, 10 * 1460);
  auto& out_snd = net.add_flow(TcpSenderConfig{}, &outsider, TimePoint::epoch());
  q.run_until(end);

  Result r;
  for (auto* snd : members) {
    r.member_tputs.push_back(snd->delivered_bytes() * 8.0 / kSecs / 1e6);
  }
  r.outsider = out_snd.delivered_bytes() * 8.0 / kSecs / 1e6;
  return r;
}

void print(const char* name, const Result& r) {
  double group = 0;
  for (double t : r.member_tputs) group += t;
  std::printf("%-28s members: %5.1f %5.1f %5.1f  group=%5.1f  outsider=%5.1f  "
              "group/outsider=%.2f\n",
              name, r.member_tputs[0], r.member_tputs[1], r.member_tputs[2],
              group, r.outsider, group / r.outsider);
}

}  // namespace

int main() {
  bench::banner("Extension: aggregate congestion control (§5, cf. CM in §4)",
                "3 host flows + 1 competing reno flow, 50 Mbit/s bottleneck");
  std::printf("all numbers Mbit/s over %.0f s\n\n", kSecs);

  print("independent (3x reno)", run(false, {1, 1, 1}));
  print("aggregated, equal weights", run(true, {1, 1, 1}));
  print("aggregated, weights 3:2:1", run(true, {3, 2, 1}));

  std::printf(
      "\nReading: independent flows take ~3 shares of 4; the aggregate takes\n"
      "~1 share of 2 regardless of member count (the Congestion Manager's\n"
      "ensemble behavior), and weights divide the group's share as host\n"
      "policy dictates. All of it is ordinary user-space agent code over\n"
      "the unchanged per-flow datapath API.\n");
  return 0;
}
