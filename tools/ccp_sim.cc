// ccp_sim — command-line experiment driver.
//
// Runs N flows over a single bottleneck with per-flow congestion control
// (any registered CCP algorithm, or native:<reno|cubic|vegas|dctcp>
// baselines), and emits either a human summary or CSV time series for
// plotting.
//
// Examples:
//   ccp_sim --rate 1Gbps --rtt 10ms --buffer 1.0 --time 30
//           --flow cubic --flow native:cubic
//   ccp_sim --rate 50Mbps --rtt 20ms --flow bbr --flow reno@5 --csv cwnd
//   ccp_sim --list
//
// Flow syntax: <alg>[@start_secs]. CSV series: cwnd | tput | queue.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/native/native_cubic.hpp"
#include "algorithms/native/native_dctcp.hpp"
#include "algorithms/native/native_reno.hpp"
#include "algorithms/native/native_vegas.hpp"
#include "algorithms/registry.hpp"
#include "sim/ccp_host.hpp"
#include "sim/dumbbell.hpp"
#include "sim/trace.hpp"
#include "telemetry/stats_server.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_export.hpp"
#include "util/rng.hpp"
#include "util/series.hpp"
#include "util/units.hpp"

namespace {

using namespace ccp;
using namespace ccp::sim;

struct FlowSpec {
  std::string alg;
  double start_secs = 0;
  bool native = false;
};

struct Options {
  double rate_bps = 100e6;
  Duration rtt = Duration::from_millis(10);
  double buffer_bdp = 1.0;
  double ecn_threshold_bdp = -1;  // <0: ECN off
  double loss = 0.0;              // bottleneck random (non-congestive) loss
  double secs = 20;
  Duration ipc_delay = Duration::from_micros(15);
  std::vector<FlowSpec> flows;
  std::string csv;  // empty = human summary
  std::string stats_sock;  // empty = no stats server
  std::string trace_dump;  // empty = no dump at exit
  uint64_t seed = 42;
};

[[noreturn]] void usage(int code) {
  std::printf(R"(usage: ccp_sim [options] --flow <alg>[@start] [--flow ...]

options:
  --rate <bw>         bottleneck rate, e.g. 100Mbps, 1Gbps   [100Mbps]
  --rtt <dur>         base round-trip time, e.g. 10ms        [10ms]
  --buffer <bdp>      queue size in BDP units                [1.0]
  --ecn <bdp>         ECN marking threshold in BDP (enables ECN)
  --loss <p>          bottleneck random loss probability      [0]
  --time <secs>       simulated seconds                      [20]
  --ipc <dur>         simulated agent IPC delay              [15us]
  --seed <n>          RNG seed                               [42]
  --flow <spec>       algorithm name (repeatable); prefix "native:" for
                      in-datapath baselines; optional @start_secs
  --csv <series>      emit CSV instead of a summary: cwnd | tput | queue
  --stats <path>      serve live telemetry on a unix socket (see ccp_stats)
  --trace-dump <file> write trace + span rings at exit (for ccp_trace_export)
  --list              list available algorithms and exit
)");
  std::exit(code);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(1);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    try {
      if (std::strcmp(arg, "--rate") == 0) {
        opt.rate_bps = parse_bandwidth_bps(need_value(i));
      } else if (std::strcmp(arg, "--rtt") == 0) {
        opt.rtt = parse_duration(need_value(i));
      } else if (std::strcmp(arg, "--buffer") == 0) {
        opt.buffer_bdp = std::stod(need_value(i));
      } else if (std::strcmp(arg, "--ecn") == 0) {
        opt.ecn_threshold_bdp = std::stod(need_value(i));
      } else if (std::strcmp(arg, "--loss") == 0) {
        opt.loss = std::stod(need_value(i));
      } else if (std::strcmp(arg, "--time") == 0) {
        opt.secs = std::stod(need_value(i));
      } else if (std::strcmp(arg, "--ipc") == 0) {
        opt.ipc_delay = parse_duration(need_value(i));
      } else if (std::strcmp(arg, "--seed") == 0) {
        opt.seed = std::stoull(need_value(i));
      } else if (std::strcmp(arg, "--csv") == 0) {
        opt.csv = need_value(i);
      } else if (std::strcmp(arg, "--stats") == 0) {
        opt.stats_sock = need_value(i);
      } else if (std::strcmp(arg, "--trace-dump") == 0) {
        opt.trace_dump = need_value(i);
      } else if (std::strcmp(arg, "--flow") == 0) {
        std::string spec = need_value(i);
        FlowSpec flow;
        if (const auto at = spec.find('@'); at != std::string::npos) {
          flow.start_secs = std::stod(spec.substr(at + 1));
          spec = spec.substr(0, at);
        }
        if (spec.rfind("native:", 0) == 0) {
          flow.native = true;
          spec = spec.substr(7);
        }
        flow.alg = spec;
        opt.flows.push_back(flow);
      } else if (std::strcmp(arg, "--list") == 0) {
        std::printf("CCP algorithms:");
        for (const auto& name : algorithms::builtin_algorithm_names()) {
          std::printf(" %s", name.c_str());
        }
        std::printf("\nnative baselines: native:reno native:cubic native:vegas "
                    "native:dctcp\n");
        std::exit(0);
      } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
        usage(0);
      } else {
        std::fprintf(stderr, "unknown option: %s\n", arg);
        usage(1);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad value for %s: %s\n", arg, e.what());
      std::exit(1);
    }
  }
  if (opt.flows.empty()) usage(1);
  return opt;
}

std::unique_ptr<datapath::CcModule> make_native(const std::string& name,
                                                uint32_t mss, uint64_t init_cwnd) {
  if (name == "reno") {
    return std::make_unique<algorithms::native::NativeReno>(mss, init_cwnd);
  }
  if (name == "cubic") {
    return std::make_unique<algorithms::native::NativeCubic>(mss, init_cwnd);
  }
  if (name == "vegas") {
    return std::make_unique<algorithms::native::NativeVegas>(mss, init_cwnd);
  }
  if (name == "dctcp") {
    return std::make_unique<algorithms::native::NativeDctcp>(mss, init_cwnd);
  }
  std::fprintf(stderr, "unknown native baseline: %s\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  telemetry::init_from_env();
  std::unique_ptr<telemetry::StatsServer> stats_server;
  if (!opt.stats_sock.empty()) {
    stats_server = std::make_unique<telemetry::StatsServer>(opt.stats_sock);
    std::fprintf(stderr, "serving telemetry on %s (attach with ccp_stats)\n",
                 opt.stats_sock.c_str());
  }

  EventQueue events;
  const double bdp_bytes = opt.rate_bps / 8.0 * opt.rtt.secs();
  auto net_cfg = DumbbellConfig::make(
      opt.rate_bps, opt.rtt, opt.buffer_bdp,
      opt.ecn_threshold_bdp >= 0
          ? static_cast<uint64_t>(bdp_bytes * opt.ecn_threshold_bdp)
          : UINT64_MAX);
  net_cfg.bottleneck.random_loss = opt.loss;
  // The loss stream forks off --seed so a run replays bit-for-bit, but is
  // decorrelated from the host's IPC-jitter stream (same parent seed).
  net_cfg.bottleneck.loss_seed = Rng(opt.seed).next_u64();
  Dumbbell net(events, net_cfg);

  CcpHostConfig host_cfg;
  host_cfg.ipc_delay = opt.ipc_delay;
  host_cfg.seed = opt.seed;
  SimCcpHost host(events, host_cfg);

  const TimePoint end = TimePoint::epoch() + Duration::from_secs_f(opt.secs);
  host.start(end);

  std::vector<std::unique_ptr<datapath::CcModule>> natives;
  std::vector<datapath::CcModule*> ccs;
  std::vector<TcpSender*> senders;
  for (const auto& spec : opt.flows) {
    datapath::CcModule* cc;
    if (spec.native) {
      natives.push_back(make_native(spec.alg, 1460, 10 * 1460));
      cc = natives.back().get();
    } else {
      cc = &host.create_flow(datapath::FlowConfig{1460, 10 * 1460}, spec.alg);
    }
    ccs.push_back(cc);
    TcpSenderConfig scfg;
    scfg.record_rtt_samples = true;
    scfg.ecn_enabled = opt.ecn_threshold_bdp >= 0;
    senders.push_back(&net.add_flow(
        scfg, cc, TimePoint::epoch() + Duration::from_secs_f(spec.start_secs)));
  }

  Tracer tracer(events);
  if (!opt.csv.empty()) {
    for (size_t i = 0; i < ccs.size(); ++i) {
      if (opt.csv == "cwnd") {
        tracer.sample_every("f" + std::to_string(i), Duration::from_millis(50), end,
                            [cc = ccs[i]] { return cc->cwnd_bytes() / 1460.0; });
      } else if (opt.csv == "tput") {
        tracer.sample_every(
            "f" + std::to_string(i), Duration::from_millis(250), end,
            [snd = senders[i], last = uint64_t{0}]() mutable {
              const uint64_t now_bytes = snd->delivered_bytes();
              const double mbps = (now_bytes - last) * 8.0 / 0.25 / 1e6;
              last = now_bytes;
              return mbps;
            });
      } else if (opt.csv == "queue") {
        tracer.sample_every("queue", Duration::from_millis(50), end,
                            [&net] { return net.bottleneck().queue_bytes() / 1500.0; });
      } else {
        std::fprintf(stderr, "unknown csv series: %s\n", opt.csv.c_str());
        return 1;
      }
    }
  }

  events.run_until(end);

  if (!opt.trace_dump.empty()) {
    if (!telemetry::write_current_trace_dump(opt.trace_dump)) {
      std::fprintf(stderr, "ccp_sim: cannot write trace dump %s\n",
                   opt.trace_dump.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote trace dump to %s (convert with "
                 "ccp_trace_export)\n",
                 opt.trace_dump.c_str());
  }

  if (!opt.csv.empty()) {
    tracer.write_csv(stdout);
    return 0;
  }

  std::printf("%-4s %-14s %-8s %12s %12s %10s %9s %8s\n", "id", "algorithm",
              "start", "goodput", "medianRTT", "p95RTT", "rexmits", "timeouts");
  for (size_t i = 0; i < senders.size(); ++i) {
    const auto& spec = opt.flows[i];
    const double active = opt.secs - spec.start_secs;
    std::printf("%-4zu %-14s %6.1fs %12s %10.2fms %8.2fms %9llu %8llu\n", i,
                (spec.native ? "native:" + spec.alg : spec.alg).c_str(),
                spec.start_secs,
                format_bandwidth(senders[i]->delivered_bytes() * 8.0 / active).c_str(),
                senders[i]->rtt_samples().quantile(0.5) / 1000.0,
                senders[i]->rtt_samples().quantile(0.95) / 1000.0,
                static_cast<unsigned long long>(senders[i]->stats().retransmits),
                static_cast<unsigned long long>(senders[i]->stats().timeouts));
  }
  const auto& link = net.bottleneck().stats();
  std::printf("\nbottleneck: %llu pkts delivered, %llu dropped (%llu random), "
              "%llu ECN-marked, max queue %.1f pkts\n",
              static_cast<unsigned long long>(link.delivered_pkts),
              static_cast<unsigned long long>(link.dropped_pkts +
                                              link.random_dropped_pkts),
              static_cast<unsigned long long>(link.random_dropped_pkts),
              static_cast<unsigned long long>(link.marked_pkts),
              link.max_queue_bytes / 1500.0);
  return 0;
}
