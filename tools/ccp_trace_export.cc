// ccp_trace_export: convert CCP trace data to Chromium Trace Event
// Format JSON for Perfetto / chrome://tracing.
//
// Two sources:
//   ccp_trace_export DUMP_FILE            # offline: binary dump written by
//                                         #   ccp_sim --trace-dump FILE
//   ccp_trace_export --socket PATH        # live: pull the trace + span
//                                         #   rings from a running process
//
// Output goes to stdout (or --out FILE). Load the result at
// https://ui.perfetto.dev or chrome://tracing. Completed control-loop
// spans render as nested slices per flow track; trace-ring events as
// instants. See docs/OBSERVABILITY.md "Control-loop spans".
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "telemetry/stats_server.hpp"
#include "telemetry/trace_export.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s DUMP_FILE [--out FILE]\n"
               "       %s --socket PATH [--out FILE]\n",
               argv0, argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dump_path, socket_path, out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") socket_path = next();
    else if (arg == "--out") out_path = next();
    else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
      return 2;
    } else {
      dump_path = arg;
    }
  }
  if (dump_path.empty() == socket_path.empty()) {  // exactly one source
    usage(argv[0]);
    return 2;
  }

  std::vector<ccp::telemetry::TraceEvent> events;
  std::vector<ccp::telemetry::CompletedSpan> spans;
  if (!dump_path.empty()) {
    if (!ccp::telemetry::read_trace_dump(dump_path, events, spans)) {
      std::fprintf(stderr, "ccp_trace_export: cannot read dump %s\n",
                   dump_path.c_str());
      return 1;
    }
  } else {
    auto client = ccp::telemetry::StatsClient::connect(socket_path);
    if (client == nullptr) {
      std::fprintf(stderr,
                   "ccp_trace_export: cannot connect to %s (is the process "
                   "running with a stats server?)\n",
                   socket_path.c_str());
      return 1;
    }
    auto ev = client->trace();
    auto sp = client->spans();
    if (!ev.has_value() || !sp.has_value()) {
      std::fprintf(stderr, "ccp_trace_export: dump request failed\n");
      return 1;
    }
    events = std::move(*ev);
    spans = std::move(*sp);
  }

  const std::string json = ccp::telemetry::trace_events_json(events, spans);
  FILE* out = stdout;
  if (!out_path.empty()) {
    out = fopen(out_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "ccp_trace_export: cannot open %s\n",
                   out_path.c_str());
      return 1;
    }
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), out) == json.size();
  if (out != stdout && fclose(out) != 0) return 1;
  return ok ? 0 : 1;
}
