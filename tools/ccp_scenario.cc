// ccp_scenario — declarative scenario driver.
//
// Runs one named built-in scenario, a spec file in the declarative text
// format (docs/SCENARIOS.md), or the whole built-in matrix, and emits
// the fairness/latency/retransmit scorecard as a human table, the
// shared-series CSV schema, and/or JSON.
//
// Examples:
//   ccp_scenario --list
//   ccp_scenario cubic_vs_bbr
//   ccp_scenario rtt_unfairness --seed 7 --json -
//   ccp_scenario --spec my_scenario.txt --csv out
//   ccp_scenario --matrix --json scorecard.json --csv scorecard
//
// --csv writes <prefix>_<scenario>_series.csv (per-flow goodput on the
// sample grid, util/series.hpp schema) and <prefix>_<scenario>_summary.csv
// (the shared flow-summary schema); "-" streams the summary to stdout.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/library.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace {

using namespace ccp;
using namespace ccp::scenario;

struct Options {
  std::vector<std::string> names;  // built-in scenario names to run
  std::string spec_path;           // --spec file (exclusive with names)
  bool matrix = false;
  bool have_seed = false;
  uint64_t seed = 0;
  double time_override = -1;
  std::string csv;   // prefix, or "-" for stdout summary
  std::string json;  // path, or "-" for stdout
};

[[noreturn]] void usage(int code) {
  std::printf(R"(usage: ccp_scenario <name> [...] | --matrix | --spec <file>

options:
  --matrix            run every built-in scenario
  --spec <file>       run a declarative spec file (see docs/SCENARIOS.md)
  --seed <n>          override the spec seed (bit-reproducible runs)
  --time <secs>       override the spec duration
  --csv <prefix|->    write <prefix>_<name>_{series,summary}.csv; '-' streams
                      summaries to stdout
  --json <file|->     write one JSON object with a "scenarios" array
  --list              list built-in scenarios and exit
)");
  std::exit(code);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(1);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    try {
      if (std::strcmp(arg, "--matrix") == 0) {
        opt.matrix = true;
      } else if (std::strcmp(arg, "--spec") == 0) {
        opt.spec_path = need_value(i);
      } else if (std::strcmp(arg, "--seed") == 0) {
        opt.seed = std::stoull(need_value(i));
        opt.have_seed = true;
      } else if (std::strcmp(arg, "--time") == 0) {
        opt.time_override = std::stod(need_value(i));
      } else if (std::strcmp(arg, "--csv") == 0) {
        opt.csv = need_value(i);
      } else if (std::strcmp(arg, "--json") == 0) {
        opt.json = need_value(i);
      } else if (std::strcmp(arg, "--list") == 0) {
        for (const auto& name : builtin_scenario_names()) {
          const ScenarioSpec spec = builtin_scenario(name);
          std::printf("%-18s %s\n", name.c_str(), spec.description.c_str());
        }
        std::exit(0);
      } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
        usage(0);
      } else if (arg[0] == '-') {
        std::fprintf(stderr, "unknown option: %s\n", arg);
        usage(1);
      } else {
        opt.names.push_back(arg);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad value for %s: %s\n", arg, e.what());
      std::exit(1);
    }
  }
  if (opt.matrix + !opt.spec_path.empty() + !opt.names.empty() != 1) usage(1);
  return opt;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "ccp_scenario: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), out);
  std::fclose(out);
  return true;
}

bool emit_csv(const Options& opt, const Scorecard& card) {
  if (opt.csv == "-") {
    card.write_summary_csv(stdout);
    return true;
  }
  const std::string base = opt.csv + "_" + card.scenario;
  std::FILE* series = std::fopen((base + "_series.csv").c_str(), "w");
  std::FILE* summary = std::fopen((base + "_summary.csv").c_str(), "w");
  if (series == nullptr || summary == nullptr) {
    std::fprintf(stderr, "ccp_scenario: cannot write %s_*.csv\n", base.c_str());
    if (series) std::fclose(series);
    if (summary) std::fclose(summary);
    return false;
  }
  card.write_series_csv(series);
  card.write_summary_csv(summary);
  std::fclose(series);
  std::fclose(summary);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  std::vector<ScenarioSpec> specs;
  try {
    if (opt.matrix) {
      for (const auto& name : builtin_scenario_names()) {
        specs.push_back(builtin_scenario(name));
      }
    } else if (!opt.spec_path.empty()) {
      std::ifstream in(opt.spec_path);
      if (!in) {
        std::fprintf(stderr, "ccp_scenario: cannot read %s\n",
                     opt.spec_path.c_str());
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      specs.push_back(parse_spec(text.str()));
    } else {
      for (const auto& name : opt.names) {
        specs.push_back(builtin_scenario(name));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ccp_scenario: %s\n", e.what());
    return 1;
  }

  std::string json = "{\"scenarios\":[";
  bool first = true;
  for (ScenarioSpec& spec : specs) {
    if (opt.have_seed) spec.seed = opt.seed;
    if (opt.time_override > 0) spec.duration_secs = opt.time_override;
    Scorecard card;
    try {
      card = run_scenario(spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ccp_scenario: %s: %s\n", spec.name.c_str(), e.what());
      return 1;
    }
    if (opt.json != "-" && opt.csv != "-") {
      card.print(stdout);
      std::printf("\n");
    }
    if (!opt.csv.empty() && !emit_csv(opt, card)) return 1;
    if (!opt.json.empty()) {
      if (!first) json += ",";
      json += card.json();
      first = false;
    }
  }
  json += "]}";

  if (!opt.json.empty()) {
    if (opt.json == "-") {
      std::printf("%s\n", json.c_str());
    } else if (!write_file(opt.json, json + "\n")) {
      return 1;
    }
  }
  return 0;
}
