// ccp_lang_check — compiler front-end for the datapath program language.
//
// Usage:
//   ccp_lang_check <program.ccp>       check + pretty-print + disassemble
//   ccp_lang_check -                   read the program from stdin
//   ccp_lang_check --print <file>      canonical pretty-print only
//   ccp_lang_check --disasm <file>     bytecode listing only
//
// Exit status: 0 if the program compiles cleanly, 1 on any error —
// suitable for CI checks of algorithm program strings.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "lang/compiler.hpp"
#include "lang/disasm.hpp"
#include "lang/error.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "lang/sema.hpp"

namespace {

std::string read_all(const std::string& path) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "ccp_lang_check: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool print_only = false;
  bool disasm_only = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--print") == 0) print_only = true;
    else if (std::strcmp(argv[i], "--disasm") == 0) disasm_only = true;
    else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: ccp_lang_check [--print|--disasm] <program.ccp | ->\n");
      return 0;
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: ccp_lang_check [--print|--disasm] <program.ccp | ->\n");
    return 1;
  }

  const std::string src = read_all(path);
  try {
    ccp::lang::Program prog = ccp::lang::parse_program(src);

    int warnings = 0;
    for (const auto& issue : ccp::lang::analyze(prog)) {
      const bool is_error = issue.severity == ccp::lang::SemaIssue::Severity::Error;
      std::fprintf(stderr, "%s: %s\n", is_error ? "error" : "warning",
                   issue.message.c_str());
      if (!is_error) ++warnings;
    }

    auto compiled = ccp::lang::compile(prog);  // throws on sema errors

    if (print_only) {
      std::printf("%s", ccp::lang::print_program(prog).c_str());
      return 0;
    }
    if (disasm_only) {
      std::printf("%s", ccp::lang::disassemble(compiled).c_str());
      return 0;
    }
    std::printf("OK: %zu fold register(s), %zu control step(s), %zu variable(s), "
                "%zu fold instr(s)%s\n",
                compiled.num_folds(), compiled.control_ops.size(),
                compiled.num_vars(), compiled.fold_block.code.size(),
                warnings > 0 ? " (with warnings)" : "");
    std::printf("\n-- canonical form --\n%s",
                ccp::lang::print_program(prog).c_str());
    std::printf("\n-- bytecode --\n%s", ccp::lang::disassemble(compiled).c_str());
    return 0;
  } catch (const ccp::lang::ProgramError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
