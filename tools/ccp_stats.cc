// ccp_stats: attach to a running CCP process and print live telemetry.
//
// The target process runs a telemetry::StatsServer (ccp_sim --stats,
// examples/real_ipc with CCP_STATS_SOCK set, or any embedder). This tool
// connects over the stats unix socket and either streams a live-rate
// view (default), emits one snapshot as JSON/Prometheus text, or dumps
// the control-loop trace ring.
//
// Usage:
//   ccp_stats --socket /tmp/ccp_stats.sock             # live rates, 1s cadence
//   ccp_stats --socket PATH --interval 0.25            # faster refresh
//   ccp_stats --socket PATH --once                     # one table, then exit
//   ccp_stats --socket PATH --json                     # one JSON snapshot
//   ccp_stats --socket PATH --prom                     # Prometheus text format
//   ccp_stats --socket PATH --trace                    # dump the trace ring
//   ccp_stats --socket PATH --shards                   # per-shard breakdown
//   ccp_stats --socket PATH --resilience               # fallback/fault/supervisor view
//   ccp_stats --socket PATH --table                    # flow-table (slab + index) view
//   ccp_stats --socket PATH --jit                      # native-execution (JIT) view
//   ccp_stats --socket PATH --profile                  # per-stage cycle profiler view
//   ccp_stats --socket PATH --loop                     # control-loop span latencies
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "telemetry/stats_server.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using ccp::telemetry::Snapshot;
using ccp::telemetry::StatsClient;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--interval SECS] [--once] [--json] "
               "[--prom] [--trace] [--shards] [--resilience] [--table] "
               "[--jit] [--profile] [--loop]\n",
               argv0);
}

uint64_t counter_value(const Snapshot& s, const char* name) {
  const auto* c = s.counter(name);
  return c != nullptr ? c->value : 0;
}

/// Counter delta per second between two snapshots.
double rate(const Snapshot& prev, const Snapshot& cur, const char* name) {
  const double dt_secs =
      static_cast<double>(cur.wall_ns - prev.wall_ns) / 1e9;
  if (dt_secs <= 0) return 0.0;
  const uint64_t a = counter_value(prev, name);
  const uint64_t b = counter_value(cur, name);
  return b >= a ? static_cast<double>(b - a) / dt_secs : 0.0;
}

void print_live_header() {
  std::printf("%12s %12s %12s %10s %10s %11s %10s %8s\n", "acks/s",
              "reports/s", "urgents/s", "rep_p50us", "rep_p99us",
              "rep_p999us", "vm_p50ns", "flows");
}

void print_live_row(const Snapshot& prev, const Snapshot& cur) {
  const auto* rep = cur.histogram("ccp_report_latency_ns");
  const auto* vm = cur.histogram("ccp_vm_exec_ns");
  const auto* flows = cur.gauge("ccp_active_flows");
  std::printf("%12.0f %12.0f %12.0f %10.1f %10.1f %11.1f %10.0f %8" PRId64
              "\n",
              rate(prev, cur, "ccp_dp_acks_total"),
              rate(prev, cur, "ccp_dp_reports_total"),
              rate(prev, cur, "ccp_dp_urgents_total"),
              rep != nullptr ? rep->quantile(0.5) / 1e3 : 0.0,
              rep != nullptr ? rep->quantile(0.99) / 1e3 : 0.0,
              rep != nullptr ? rep->quantile(0.999) / 1e3 : 0.0,
              vm != nullptr ? vm->quantile(0.5) : 0.0,
              flows != nullptr ? flows->value : 0);
  std::fflush(stdout);
}

int dump_trace(StatsClient& client) {
  auto events = client.trace();
  if (!events.has_value()) {
    std::fprintf(stderr, "ccp_stats: trace request failed\n");
    return 1;
  }
  std::printf("t_ns,flow,kind,value\n");
  for (const auto& ev : *events) {
    std::printf("%" PRIu64 ",%u,%s,%.17g\n", ev.t_ns, ev.flow,
                ccp::telemetry::trace_kind_name(ev.kind), ev.value);
  }
  return 0;
}

/// Per-shard counter breakdown (sharded datapath; docs/PERF.md
/// "Threading model"). Shards with no recorded activity are elided, so
/// a single-core process prints one row and an 8-shard one prints eight.
int dump_shards(StatsClient& client) {
  auto snap = client.snapshot();
  if (!snap.has_value()) {
    std::fprintf(stderr, "ccp_stats: snapshot request failed\n");
    return 1;
  }
  std::printf("%6s %16s %12s %10s %10s %10s %8s\n", "shard", "acks",
              "reports", "urgents", "ring_full", "commands", "flows");
  uint64_t total[6] = {0, 0, 0, 0, 0, 0};
  bool any = false;
  for (size_t s = 0; s < ccp::telemetry::kMaxShards; ++s) {
    char name[64];
    const auto get = [&](const char* what) {
      std::snprintf(name, sizeof(name), "ccp_shard%zu_%s_total", s, what);
      return counter_value(*snap, name);
    };
    std::snprintf(name, sizeof(name), "ccp_shard%zu_flows", s);
    const auto* fl = snap->gauge(name);
    const uint64_t flows =
        fl != nullptr && fl->value > 0 ? static_cast<uint64_t>(fl->value) : 0;
    const uint64_t row[6] = {get("acks"),      get("reports"),
                             get("urgents"),   get("ring_full"),
                             get("commands"),  flows};
    if ((row[0] | row[1] | row[2] | row[3] | row[4] | row[5]) == 0) continue;
    any = true;
    for (size_t k = 0; k < 6; ++k) total[k] += row[k];
    std::printf("%6zu %16" PRIu64 " %12" PRIu64 " %10" PRIu64 " %10" PRIu64
                " %10" PRIu64 " %8" PRIu64 "\n",
                s, row[0], row[1], row[2], row[3], row[4], row[5]);
  }
  if (!any) {
    std::printf("(no per-shard activity recorded; is the process running a "
                "sharded datapath with telemetry on?)\n");
    return 0;
  }
  std::printf("%6s %16" PRIu64 " %12" PRIu64 " %10" PRIu64 " %10" PRIu64
              " %10" PRIu64 " %8" PRIu64 "\n",
              "total", total[0], total[1], total[2], total[3], total[4],
              total[5]);
  return 0;
}

/// Flow-table view: slab/index occupancy and churn tallies for the
/// two-tier flow store (docs/PERF.md "Million-flow scale"). Load factor
/// is exported as a gauge in basis points; rehash_steps counts bounded
/// incremental-migration steps, so a rising value under churn is normal
/// — what matters is that it rises in small increments, not bursts.
int dump_table(StatsClient& client) {
  auto snap = client.snapshot();
  if (!snap.has_value()) {
    std::fprintf(stderr, "ccp_stats: snapshot request failed\n");
    return 1;
  }
  const auto* flows = snap->gauge("ccp_dp_flows");
  const auto* load_bp = snap->gauge("ccp_dp_table_load_factor");
  const uint64_t creates = counter_value(*snap, "ccp_dp_flow_creates_total");
  const uint64_t closes = counter_value(*snap, "ccp_dp_flow_closes_total");
  std::printf("flow table:\n");
  std::printf("  flows_live          %" PRId64 "\n",
              flows != nullptr ? flows->value : 0);
  std::printf("  index_load_factor   %.2f%%\n",
              load_bp != nullptr
                  ? static_cast<double>(load_bp->value) / 100.0
                  : 0.0);
  std::printf("churn:\n");
  std::printf("  creates             %" PRIu64 "\n", creates);
  std::printf("  closes              %" PRIu64 "\n", closes);
  std::printf("  rehash_steps        %" PRIu64 "\n",
              counter_value(*snap, "ccp_dp_flow_rehash_steps_total"));
  return 0;
}

/// Resilience view: fallback state, fault-injection tallies, and
/// supervisor reconnect history (docs/RESILIENCE.md). All of these are
/// cold-path counters, so one snapshot is enough — no rate view needed.
int dump_resilience(StatsClient& client) {
  auto snap = client.snapshot();
  if (!snap.has_value()) {
    std::fprintf(stderr, "ccp_stats: snapshot request failed\n");
    return 1;
  }
  const auto* in_fb = snap->gauge("ccp_flows_in_fallback");
  const auto* rec = snap->histogram("ccp_fallback_recovery_ns");
  std::printf("fallback:\n");
  std::printf("  flows_in_fallback   %" PRId64 "\n",
              in_fb != nullptr ? in_fb->value : 0);
  std::printf("  entries             %" PRIu64 "\n",
              counter_value(*snap, "ccp_dp_fallbacks_total"));
  std::printf("  recoveries          %" PRIu64 "\n",
              counter_value(*snap, "ccp_dp_fallback_recoveries_total"));
  if (rec != nullptr && rec->count > 0) {
    std::printf("  recovery_ms p50/p99 %.2f / %.2f\n",
                rec->quantile(0.5) / 1e6, rec->quantile(0.99) / 1e6);
  }
  std::printf("  flows_resynced_dp   %" PRIu64 "\n",
              counter_value(*snap, "ccp_dp_resync_flows_total"));
  std::printf("faults injected:\n");
  std::printf("  drops               %" PRIu64 "\n",
              counter_value(*snap, "ccp_fault_drops_total"));
  std::printf("  corruptions         %" PRIu64 "\n",
              counter_value(*snap, "ccp_fault_corruptions_total"));
  std::printf("  delays              %" PRIu64 "\n",
              counter_value(*snap, "ccp_fault_delays_total"));
  std::printf("  stalls              %" PRIu64 "\n",
              counter_value(*snap, "ccp_fault_stalls_total"));
  std::printf("  kills               %" PRIu64 "\n",
              counter_value(*snap, "ccp_fault_kills_total"));
  std::printf("  forced_ring_full    %" PRIu64 "\n",
              counter_value(*snap, "ccp_fault_forced_full_total"));
  std::printf("supervisor:\n");
  std::printf("  disconnects         %" PRIu64 "\n",
              counter_value(*snap, "ccp_sup_disconnects_total"));
  std::printf("  reconnect_attempts  %" PRIu64 "\n",
              counter_value(*snap, "ccp_sup_reconnect_attempts_total"));
  std::printf("  reconnects          %" PRIu64 "\n",
              counter_value(*snap, "ccp_sup_reconnects_total"));
  std::printf("  resyncs             %" PRIu64 "\n",
              counter_value(*snap, "ccp_sup_resyncs_total"));
  std::printf("  flows_resynced_agt  %" PRIu64 "\n",
              counter_value(*snap, "ccp_agent_flows_resynced_total"));
  return 0;
}

/// Native-execution view: how many programs compiled vs fell back to
/// the interpreter, resident code size, compile latency, per-fold
/// execution time for both engines side by side, and the Verify-mode
/// divergence count (which must read 0 on a healthy deployment).
/// Includes batch-execution occupancy (average lanes per wave and the
/// SIMD/scalar lane split; see docs/PERF.md "Batch execution"). Also
/// reports program-cache residency/evictions since compiles are driven
/// by cache misses. See docs/PERF.md "Native execution (JIT)".
int dump_jit(StatsClient& client) {
  auto snap = client.snapshot();
  if (!snap.has_value()) {
    std::fprintf(stderr, "ccp_stats: snapshot request failed\n");
    return 1;
  }
  const uint64_t compiles = counter_value(*snap, "ccp_jit_compiles_total");
  const uint64_t fallbacks = counter_value(*snap, "ccp_jit_fallbacks_total");
  const auto* code_bytes = snap->gauge("ccp_jit_code_bytes");
  const auto* compile_ns = snap->histogram("ccp_jit_compile_ns");
  const auto* jit_ns = snap->histogram("ccp_jit_exec_ns");
  const auto* vm_ns = snap->histogram("ccp_vm_exec_ns");
  std::printf("native execution:\n");
  std::printf("  programs_compiled   %" PRIu64 "\n", compiles);
  std::printf("  interpreter_fallbk  %" PRIu64 "\n", fallbacks);
  std::printf("  code_bytes_live     %" PRId64 "\n",
              code_bytes != nullptr ? code_bytes->value : 0);
  if (compile_ns != nullptr && compile_ns->count > 0) {
    std::printf("  compile_us p50/p99  %.1f / %.1f\n",
                compile_ns->quantile(0.5) / 1e3,
                compile_ns->quantile(0.99) / 1e3);
  }
  std::printf("  verify_mismatches   %" PRIu64 "\n",
              counter_value(*snap, "ccp_jit_verify_mismatches_total"));
  const uint64_t waves = counter_value(*snap, "ccp_dp_batch_lanes_total");
  const uint64_t lanes = counter_value(*snap, "ccp_dp_batch_lanes_sum");
  const uint64_t simd_lanes =
      counter_value(*snap, "ccp_dp_batch_simd_lanes_total");
  const uint64_t scalar_lanes =
      counter_value(*snap, "ccp_dp_batch_scalar_lanes_total");
  std::printf("batch execution:\n");
  std::printf("  waves               %" PRIu64 "\n", waves);
  std::printf("  lanes_per_wave      %.2f\n",
              waves > 0 ? static_cast<double>(lanes) / static_cast<double>(waves)
                        : 0.0);
  std::printf("  simd_lanes          %" PRIu64 "\n", simd_lanes);
  std::printf("  scalar_lanes        %" PRIu64 "\n", scalar_lanes);
  std::printf("fold latency (sampled 1/1024):\n");
  std::printf("  jit_ns p50/p99      %.0f / %.0f\n",
              jit_ns != nullptr ? jit_ns->quantile(0.5) : 0.0,
              jit_ns != nullptr ? jit_ns->quantile(0.99) : 0.0);
  std::printf("  interp_ns p50/p99   %.0f / %.0f\n",
              vm_ns != nullptr ? vm_ns->quantile(0.5) : 0.0,
              vm_ns != nullptr ? vm_ns->quantile(0.99) : 0.0);
  const auto* resident = snap->gauge("ccp_lang_cache_programs");
  std::printf("program cache:\n");
  std::printf("  programs_resident   %" PRId64 "\n",
              resident != nullptr ? resident->value : 0);
  std::printf("  evictions           %" PRIu64 "\n",
              counter_value(*snap, "ccp_lang_cache_evictions_total"));
  return 0;
}

/// Cycle-profiler view: where sampled ACKs spend their time in the shard
/// loop (docs/OBSERVABILITY.md "Cycle profiler"). Values are raw rdtsc
/// cycles; shares are relative to the total sampled cycles, so they show
/// the stage mix even without knowing the TSC frequency.
int dump_profile(StatsClient& client) {
  auto snap = client.snapshot();
  if (!snap.has_value()) {
    std::fprintf(stderr, "ccp_stats: snapshot request failed\n");
    return 1;
  }
  uint64_t cycles[ccp::telemetry::kProfStages] = {};
  uint64_t samples[ccp::telemetry::kProfStages] = {};
  uint64_t total_cycles = 0;
  for (size_t i = 0; i < ccp::telemetry::kProfStages; ++i) {
    char name[64];
    const char* stage = ccp::telemetry::prof_stage_name(
        static_cast<ccp::telemetry::ProfStage>(i));
    std::snprintf(name, sizeof(name), "ccp_prof_%s_cycles_total", stage);
    cycles[i] = counter_value(*snap, name);
    std::snprintf(name, sizeof(name), "ccp_prof_%s_samples_total", stage);
    samples[i] = counter_value(*snap, name);
    total_cycles += cycles[i];
  }
  if (total_cycles == 0) {
    std::printf("(no profiler samples recorded; set CCP_PROFILE_SAMPLE=N "
                "in the target process to enable 1-in-N sampling)\n");
    return 0;
  }
  std::printf("%-12s %16s %12s %12s %8s\n", "stage", "cycles", "samples",
              "cyc/sample", "share");
  for (size_t i = 0; i < ccp::telemetry::kProfStages; ++i) {
    if (samples[i] == 0 && cycles[i] == 0) continue;
    std::printf("%-12s %16" PRIu64 " %12" PRIu64 " %12.1f %7.1f%%\n",
                ccp::telemetry::prof_stage_name(
                    static_cast<ccp::telemetry::ProfStage>(i)),
                cycles[i], samples[i],
                samples[i] > 0
                    ? static_cast<double>(cycles[i]) /
                          static_cast<double>(samples[i])
                    : 0.0,
                100.0 * static_cast<double>(cycles[i]) /
                    static_cast<double>(total_cycles));
  }
  return 0;
}

/// Control-loop span view: end-to-end report->decide->apply latency and
/// its per-stage breakdown (docs/OBSERVABILITY.md "Control-loop spans").
int dump_loop(StatsClient& client) {
  auto snap = client.snapshot();
  if (!snap.has_value()) {
    std::fprintf(stderr, "ccp_stats: snapshot request failed\n");
    return 1;
  }
  static constexpr struct { const char* metric; const char* label; } kStages[] = {
      {"ccp_loop_emit_to_agent_ns", "emit_to_agent"},
      {"ccp_loop_agent_handler_ns", "agent_handler"},
      {"ccp_loop_agent_to_enqueue_ns", "agent_to_enqueue"},
      {"ccp_loop_enqueue_to_apply_ns", "enqueue_to_apply"},
      {"ccp_loop_total_ns", "total"},
  };
  bool any = false;
  std::printf("%-18s %10s %10s %10s %10s %10s\n", "stage", "count", "p50_us",
              "p90_us", "p99_us", "p99.9_us");
  for (const auto& st : kStages) {
    const auto* h = snap->histogram(st.metric);
    if (h == nullptr || h->count == 0) continue;
    any = true;
    std::printf("%-18s %10" PRIu64 " %10.1f %10.1f %10.1f %10.1f\n", st.label,
                h->count, h->quantile(0.5) / 1e3, h->quantile(0.9) / 1e3,
                h->quantile(0.99) / 1e3, h->quantile(0.999) / 1e3);
  }
  if (!any) {
    std::printf("(no completed spans recorded; spans need telemetry enabled "
                "and close at the datapath's command apply)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  double interval_secs = 1.0;
  bool once = false, json = false, prom = false, trace = false, shards = false;
  bool resilience = false, table = false, jit = false, profile = false;
  bool loop = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") socket_path = next();
    else if (arg == "--interval") interval_secs = std::atof(next());
    else if (arg == "--once") once = true;
    else if (arg == "--json") json = true;
    else if (arg == "--prom") prom = true;
    else if (arg == "--trace") trace = true;
    else if (arg == "--shards") shards = true;
    else if (arg == "--resilience") resilience = true;
    else if (arg == "--table") table = true;
    else if (arg == "--jit") jit = true;
    else if (arg == "--profile") profile = true;
    else if (arg == "--loop") loop = true;
    else {
      usage(argv[0]);
      return 2;
    }
  }
  if (socket_path.empty()) {
    if (const char* env = std::getenv("CCP_STATS_SOCK")) socket_path = env;
  }
  if (socket_path.empty() || interval_secs <= 0) {
    usage(argv[0]);
    return 2;
  }

  auto client = StatsClient::connect(socket_path);
  if (client == nullptr) {
    std::fprintf(stderr, "ccp_stats: cannot connect to %s (is the process "
                         "running with a stats server?)\n",
                 socket_path.c_str());
    return 1;
  }

  if (trace) return dump_trace(*client);
  if (shards) return dump_shards(*client);
  if (resilience) return dump_resilience(*client);
  if (table) return dump_table(*client);
  if (jit) return dump_jit(*client);
  if (profile) return dump_profile(*client);
  if (loop) return dump_loop(*client);

  if (json || prom) {
    auto snap = client->snapshot();
    if (!snap.has_value()) {
      std::fprintf(stderr, "ccp_stats: snapshot request failed\n");
      return 1;
    }
    const std::string text = json ? snap->to_json() : snap->to_prometheus();
    std::fwrite(text.data(), 1, text.size(), stdout);
    if (json) std::fputc('\n', stdout);
    return 0;
  }

  auto prev = client->snapshot();
  if (!prev.has_value()) {
    std::fprintf(stderr, "ccp_stats: snapshot request failed\n");
    return 1;
  }
  print_live_header();
  const auto delay = std::chrono::duration<double>(interval_secs);
  for (;;) {
    std::this_thread::sleep_for(delay);
    auto cur = client->snapshot();
    if (!cur.has_value()) {
      std::fprintf(stderr, "ccp_stats: peer went away\n");
      return once ? 1 : 0;
    }
    print_live_row(*prev, *cur);
    if (once) return 0;
    prev = std::move(cur);
  }
}
