#include <sys/eventfd.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <poll.h>
#include <stdexcept>

#include "ipc/shm_ring.hpp"
#include "ipc/transport.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace ccp::ipc {
namespace {

size_t round_up_pow2(size_t v) {
  size_t p = 64;
  while (p < v) p <<= 1;
  return p;
}

/// Shared channel state: two rings (a->b and b->a) plus one eventfd
/// doorbell per direction for blocking waits. Mapped MAP_SHARED so both
/// sides of a fork see the same memory. Reference-counted by the two
/// transport endpoints within one process; across processes each side
/// holds its own mapping of the same pages.
struct ShmChannel {
  void* mem = nullptr;
  size_t mem_size = 0;
  ShmRing ring_ab;
  ShmRing ring_ba;
  int event_ab = -1;  // signaled when ring_ab gains data
  int event_ba = -1;
  std::atomic<bool>* closed = nullptr;  // lives in the shared mapping

  ~ShmChannel() {
    if (event_ab >= 0) ::close(event_ab);
    if (event_ba >= 0) ::close(event_ba);
    if (mem != nullptr) ::munmap(mem, mem_size);
  }
};

class ShmTransport final : public Transport {
 public:
  ShmTransport(std::shared_ptr<ShmChannel> ch, bool is_a, ShmWaitMode mode)
      : ch_(std::move(ch)), is_a_(is_a), mode_(mode) {}

  ~ShmTransport() override {
    ch_->closed->store(true, std::memory_order_release);
    ring_doorbell(tx_event());
  }

  bool send_frame(std::span<const uint8_t> frame) override {
    if (ch_->closed->load(std::memory_order_acquire)) return false;
    if (!tx().push(frame)) {  // ring full: caller drops/retries
      if (telemetry::enabled()) telemetry::metrics().ipc_ring_full.inc();
      CCP_WARN("shm ring full: dropping %zu-byte frame (backpressure)",
               frame.size());
      return false;
    }
    if (telemetry::enabled()) {
      telemetry::metrics().ipc_ring_used_bytes.set(
          static_cast<int64_t>(tx().bytes_used()));
    }
    ring_doorbell(tx_event());
    return true;
  }

  std::optional<std::vector<uint8_t>> recv_frame(
      std::optional<Duration> timeout) override {
    const TimePoint deadline =
        timeout.has_value() ? monotonic_now() + *timeout : TimePoint::max();
    for (;;) {
      if (auto frame = rx().pop()) return frame;
      if (ch_->closed->load(std::memory_order_acquire)) return std::nullopt;
      if (mode_ == ShmWaitMode::BusyPoll) {
        if (monotonic_now() >= deadline) return std::nullopt;
        // Spin: models a dedicated core polling the ring (§2.3's
        // low-latency option; also how TurboBoost keeps the core hot).
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
        continue;
      }
      // Blocking: wait on the doorbell with the remaining timeout.
      const Duration remain = deadline - monotonic_now();
      if (timeout.has_value() && remain <= Duration::zero()) return std::nullopt;
      struct pollfd pfd{rx_event(), POLLIN, 0};
      const int ms = timeout.has_value()
                         ? static_cast<int>(std::max<int64_t>(1, remain.millis()))
                         : -1;
      int r;
      do {
        r = ::poll(&pfd, 1, ms);
      } while (r < 0 && errno == EINTR);
      if (r == 0) {
        // Timed out waiting for the doorbell; one more opportunistic pop.
        if (auto frame = rx().pop()) return frame;
        if (timeout.has_value()) return std::nullopt;
      }
      if (r > 0) drain_doorbell(rx_event());
    }
  }

  std::optional<std::vector<uint8_t>> try_recv_frame() override {
    auto frame = rx().pop();
    if (frame.has_value() && mode_ == ShmWaitMode::Blocking) {
      drain_doorbell(rx_event());
    }
    return frame;
  }

  size_t drain_frames(const FrameSink& sink) override {
    const size_t n = rx().drain(drain_scratch_, sink);
    if (n > 0) {
      if (mode_ == ShmWaitMode::Blocking) drain_doorbell(rx_event());
      if (telemetry::enabled()) telemetry::metrics().ipc_drain_batch.record(n);
    }
    return n;
  }

  bool closed() const override {
    return ch_->closed->load(std::memory_order_acquire) && rx().empty();
  }

 private:
  ShmRing& tx() { return is_a_ ? ch_->ring_ab : ch_->ring_ba; }
  ShmRing& rx() { return is_a_ ? ch_->ring_ba : ch_->ring_ab; }
  const ShmRing& rx() const { return is_a_ ? ch_->ring_ba : ch_->ring_ab; }
  int tx_event() const { return is_a_ ? ch_->event_ab : ch_->event_ba; }
  int rx_event() const { return is_a_ ? ch_->event_ba : ch_->event_ab; }

  static void ring_doorbell(int fd) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(fd, &one, sizeof(one));
  }
  static void drain_doorbell(int fd) {
    uint64_t counter;
    [[maybe_unused]] ssize_t n = ::read(fd, &counter, sizeof(counter));
  }

  std::shared_ptr<ShmChannel> ch_;
  bool is_a_;
  ShmWaitMode mode_;
  std::vector<uint8_t> drain_scratch_;  // staging for wrap-point records
};

}  // namespace

TransportPair make_shm_ring_pair(size_t capacity_bytes, ShmWaitMode mode) {
  const size_t cap = round_up_pow2(std::max<size_t>(capacity_bytes, 4096));
  const size_t ring_bytes = ShmRing::mapping_size(cap);
  // Layout: [ring a->b][ring b->a][closed flag]
  const size_t total = 2 * ring_bytes + sizeof(std::atomic<bool>);

  void* mem = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    throw std::runtime_error(std::string("mmap: ") + std::strerror(errno));
  }

  auto ch = std::make_shared<ShmChannel>();
  ch->mem = mem;
  ch->mem_size = total;
  ch->ring_ab = ShmRing::create_in(mem, cap);
  ch->ring_ba = ShmRing::create_in(static_cast<uint8_t*>(mem) + ring_bytes, cap);
  ch->closed = new (static_cast<uint8_t*>(mem) + 2 * ring_bytes) std::atomic<bool>(false);
  ch->event_ab = ::eventfd(0, EFD_NONBLOCK);
  ch->event_ba = ::eventfd(0, EFD_NONBLOCK);
  if (ch->event_ab < 0 || ch->event_ba < 0) {
    throw std::runtime_error(std::string("eventfd: ") + std::strerror(errno));
  }

  // NOTE: the two endpoints share one ShmChannel (and its fds). Across a
  // fork both processes inherit the fds and the shared mapping, so each
  // process simply uses its own endpoint and destroys the other.
  return TransportPair{std::make_unique<ShmTransport>(ch, /*is_a=*/true, mode),
                       std::make_unique<ShmTransport>(ch, /*is_a=*/false, mode)};
}

}  // namespace ccp::ipc
