#include "ipc/wire.hpp"

#include <cstring>
#include <limits>

namespace ccp::ipc {

namespace {
// Sanity caps so a corrupt length field can't trigger a giant allocation.
constexpr uint32_t kMaxVecLen = 1 << 20;
constexpr uint32_t kMaxStrLen = 1 << 20;
constexpr uint32_t kMaxMsgLen = 1 << 24;
}  // namespace

const std::vector<std::string>& prototype_field_names() {
  static const std::vector<std::string> kNames = {
      "acked", "acked_pkts", "marked", "loss", "lost",  "timeout",
      "rtt",   "minrtt",     "snd",    "rcv",  "now",   "inflight"};
  return kNames;
}

MsgType message_type(const Message& m) {
  return std::visit(
      [](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, CreateMsg>) return MsgType::Create;
        else if constexpr (std::is_same_v<T, MeasurementMsg>) return MsgType::Measurement;
        else if constexpr (std::is_same_v<T, UrgentMsg>) return MsgType::Urgent;
        else if constexpr (std::is_same_v<T, FlowCloseMsg>) return MsgType::FlowClose;
        else if constexpr (std::is_same_v<T, InstallMsg>) return MsgType::Install;
        else if constexpr (std::is_same_v<T, UpdateFieldsMsg>) return MsgType::UpdateFields;
        else if constexpr (std::is_same_v<T, DirectControlMsg>) return MsgType::DirectControl;
        else if constexpr (std::is_same_v<T, ResyncRequestMsg>) return MsgType::ResyncRequest;
        else return MsgType::FlowSummary;
      },
      m);
}

void Encoder::u8(uint8_t v) { buf_.push_back(v); }
void Encoder::u16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}
void Encoder::u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void Encoder::u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void Encoder::f64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}
void Encoder::str(const std::string& s) {
  u32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}
void Encoder::f64_vec(const std::vector<double>& v) {
  u32(static_cast<uint32_t>(v.size()));
  for (double d : v) f64(d);
}
void Encoder::str_vec(const std::vector<std::string>& v) {
  u32(static_cast<uint32_t>(v.size()));
  for (const auto& s : v) str(s);
}
void Encoder::patch_u32(size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_[offset + i] = static_cast<uint8_t>(v >> (8 * i));
}
void Encoder::patch_u16(size_t offset, uint16_t v) {
  buf_[offset] = static_cast<uint8_t>(v);
  buf_[offset + 1] = static_cast<uint8_t>(v >> 8);
}

void Decoder::need(size_t n) const {
  if (pos_ + n > data_.size()) throw WireError("truncated message");
}
uint8_t Decoder::u8() {
  need(1);
  return data_[pos_++];
}
uint16_t Decoder::u16() {
  need(2);
  uint16_t v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}
uint32_t Decoder::u32() {
  need(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}
uint64_t Decoder::u64() {
  need(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}
double Decoder::f64() {
  const uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}
std::string Decoder::str() {
  const uint32_t len = u32();
  if (len > kMaxStrLen) throw WireError("string too long");
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}
std::vector<double> Decoder::f64_vec() {
  const uint32_t count = u32();
  if (count > kMaxVecLen) throw WireError("vector too long");
  need(count * 8);
  std::vector<double> v;
  v.reserve(count);
  for (uint32_t i = 0; i < count; ++i) v.push_back(f64());
  return v;
}
std::vector<std::string> Decoder::str_vec() {
  const uint32_t count = u32();
  if (count > kMaxVecLen) throw WireError("vector too long");
  std::vector<std::string> v;
  v.reserve(count);
  for (uint32_t i = 0; i < count; ++i) v.push_back(str());
  return v;
}
void Decoder::skip(size_t n) {
  need(n);
  pos_ += n;
}
void Decoder::str_into(std::string& out) {
  const uint32_t len = u32();
  if (len > kMaxStrLen) throw WireError("string too long");
  need(len);
  out.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
}
void Decoder::f64_vec_into(std::vector<double>& out) {
  const uint32_t count = u32();
  if (count > kMaxVecLen) throw WireError("vector too long");
  need(count * 8);
  out.clear();
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) out.push_back(f64());
}
void Decoder::str_vec_into(std::vector<std::string>& out) {
  const uint32_t count = u32();
  if (count > kMaxVecLen) throw WireError("vector too long");
  // Reuse existing string slots (and their heap buffers) where possible.
  if (out.size() > count) out.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (i < out.size()) {
      str_into(out[i]);
    } else {
      out.push_back(str());
    }
  }
}

namespace {

// Span context rides at the end of command payloads (four u64s); a zero
// span_id still encodes, keeping every payload fixed-shape.
void encode_span(Encoder& e, const SpanStamp& s) {
  e.u64(s.span_id);
  e.u64(s.emit_ns);
  e.u64(s.agent_recv_ns);
  e.u64(s.agent_send_ns);
}
void decode_span(Decoder& d, SpanStamp& s) {
  s.span_id = d.u64();
  s.emit_ns = d.u64();
  s.agent_recv_ns = d.u64();
  s.agent_send_ns = d.u64();
}

void encode_payload(Encoder& e, const CreateMsg& m) {
  e.u32(m.flow_id);
  e.u32(m.init_cwnd_bytes);
  e.u32(m.mss);
  e.u32(m.src_port);
  e.u32(m.dst_port);
  e.str(m.alg_hint);
  e.u8(m.supports_programs ? 1 : 0);
}
void encode_payload(Encoder& e, const MeasurementMsg& m) {
  e.u32(m.flow_id);
  e.u64(m.report_seq);
  e.u32(m.num_acks_folded);
  e.u8(m.is_vector ? 1 : 0);
  e.f64_vec(m.fields);
  e.u64(m.emitted_ns);
  e.u64(m.span_id);
}
void encode_payload(Encoder& e, const UrgentMsg& m) {
  e.u32(m.flow_id);
  e.u8(static_cast<uint8_t>(m.kind));
  e.f64_vec(m.fields);
  e.u64(m.emitted_ns);
  e.u64(m.span_id);
}
void encode_payload(Encoder& e, const FlowCloseMsg& m) { e.u32(m.flow_id); }
void encode_payload(Encoder& e, const InstallMsg& m) {
  e.u32(m.flow_id);
  e.str(m.program_text);
  e.str_vec(m.var_names);
  e.f64_vec(m.var_values);
  e.u8(m.vector_mode ? 1 : 0);
  e.u64(m.emitted_ns);
  encode_span(e, m.span);
}
void encode_payload(Encoder& e, const UpdateFieldsMsg& m) {
  e.u32(m.flow_id);
  e.f64_vec(m.var_values);
  encode_span(e, m.span);
}
void encode_payload(Encoder& e, const DirectControlMsg& m) {
  e.u32(m.flow_id);
  e.u8(m.cwnd_bytes.has_value() ? 1 : 0);
  e.f64(m.cwnd_bytes.value_or(0));
  e.u8(m.rate_bps.has_value() ? 1 : 0);
  e.f64(m.rate_bps.value_or(0));
  encode_span(e, m.span);
}
void encode_payload(Encoder& e, const ResyncRequestMsg& m) { e.u64(m.token); }
void encode_payload(Encoder& e, const FlowSummaryMsg& m) {
  e.u32(m.flow_id);
  e.u32(m.mss);
  e.u32(m.cwnd_bytes);
  e.u64(m.srtt_us);
  e.u8(m.in_fallback ? 1 : 0);
  e.str(m.alg_hint);
  e.u64(m.token);
}

Message decode_payload(MsgType type, Decoder& d) {
  switch (type) {
    case MsgType::Create: {
      CreateMsg m;
      m.flow_id = d.u32();
      m.init_cwnd_bytes = d.u32();
      m.mss = d.u32();
      m.src_port = d.u32();
      m.dst_port = d.u32();
      m.alg_hint = d.str();
      m.supports_programs = d.u8() != 0;
      return m;
    }
    case MsgType::Measurement: {
      MeasurementMsg m;
      m.flow_id = d.u32();
      m.report_seq = d.u64();
      m.num_acks_folded = d.u32();
      m.is_vector = d.u8() != 0;
      m.fields = d.f64_vec();
      m.emitted_ns = d.u64();
      m.span_id = d.u64();
      return m;
    }
    case MsgType::Urgent: {
      UrgentMsg m;
      m.flow_id = d.u32();
      const uint8_t kind = d.u8();
      if (kind > static_cast<uint8_t>(UrgentKind::FoldUrgent)) {
        throw WireError("bad urgent kind");
      }
      m.kind = static_cast<UrgentKind>(kind);
      m.fields = d.f64_vec();
      m.emitted_ns = d.u64();
      m.span_id = d.u64();
      return m;
    }
    case MsgType::FlowClose: {
      FlowCloseMsg m;
      m.flow_id = d.u32();
      return m;
    }
    case MsgType::Install: {
      InstallMsg m;
      m.flow_id = d.u32();
      m.program_text = d.str();
      m.var_names = d.str_vec();
      m.var_values = d.f64_vec();
      m.vector_mode = d.u8() != 0;
      m.emitted_ns = d.u64();
      decode_span(d, m.span);
      return m;
    }
    case MsgType::UpdateFields: {
      UpdateFieldsMsg m;
      m.flow_id = d.u32();
      m.var_values = d.f64_vec();
      decode_span(d, m.span);
      return m;
    }
    case MsgType::DirectControl: {
      DirectControlMsg m;
      m.flow_id = d.u32();
      const bool has_cwnd = d.u8() != 0;
      const double cwnd = d.f64();
      const bool has_rate = d.u8() != 0;
      const double rate = d.f64();
      if (has_cwnd) m.cwnd_bytes = cwnd;
      if (has_rate) m.rate_bps = rate;
      decode_span(d, m.span);
      return m;
    }
    case MsgType::ResyncRequest: {
      ResyncRequestMsg m;
      m.token = d.u64();
      return m;
    }
    case MsgType::FlowSummary: {
      FlowSummaryMsg m;
      m.flow_id = d.u32();
      m.mss = d.u32();
      m.cwnd_bytes = d.u32();
      m.srtt_us = d.u64();
      m.in_fallback = d.u8() != 0;
      m.alg_hint = d.str();
      m.token = d.u64();
      return m;
    }
  }
  throw WireError("unknown message type " + std::to_string(static_cast<int>(type)));
}

// In-place payload decoders: overwrite an existing struct, reusing its
// vectors' capacity. Scalar fields are all assigned, so no stale state
// survives.
void decode_payload_into(Decoder& d, CreateMsg& m) {
  m.flow_id = d.u32();
  m.init_cwnd_bytes = d.u32();
  m.mss = d.u32();
  m.src_port = d.u32();
  m.dst_port = d.u32();
  d.str_into(m.alg_hint);
  m.supports_programs = d.u8() != 0;
}
void decode_payload_into(Decoder& d, MeasurementMsg& m) {
  m.flow_id = d.u32();
  m.report_seq = d.u64();
  m.num_acks_folded = d.u32();
  m.is_vector = d.u8() != 0;
  d.f64_vec_into(m.fields);
  m.emitted_ns = d.u64();
  m.span_id = d.u64();
}
void decode_payload_into(Decoder& d, UrgentMsg& m) {
  m.flow_id = d.u32();
  const uint8_t kind = d.u8();
  if (kind > static_cast<uint8_t>(UrgentKind::FoldUrgent)) {
    throw WireError("bad urgent kind");
  }
  m.kind = static_cast<UrgentKind>(kind);
  d.f64_vec_into(m.fields);
  m.emitted_ns = d.u64();
  m.span_id = d.u64();
}
void decode_payload_into(Decoder& d, FlowCloseMsg& m) { m.flow_id = d.u32(); }
void decode_payload_into(Decoder& d, InstallMsg& m) {
  m.flow_id = d.u32();
  d.str_into(m.program_text);
  d.str_vec_into(m.var_names);
  d.f64_vec_into(m.var_values);
  m.vector_mode = d.u8() != 0;
  m.emitted_ns = d.u64();
  decode_span(d, m.span);
}
void decode_payload_into(Decoder& d, UpdateFieldsMsg& m) {
  m.flow_id = d.u32();
  d.f64_vec_into(m.var_values);
  decode_span(d, m.span);
}
void decode_payload_into(Decoder& d, DirectControlMsg& m) {
  m.flow_id = d.u32();
  const bool has_cwnd = d.u8() != 0;
  const double cwnd = d.f64();
  const bool has_rate = d.u8() != 0;
  const double rate = d.f64();
  m.cwnd_bytes = has_cwnd ? std::optional<double>(cwnd) : std::nullopt;
  m.rate_bps = has_rate ? std::optional<double>(rate) : std::nullopt;
  decode_span(d, m.span);
}
void decode_payload_into(Decoder& d, ResyncRequestMsg& m) { m.token = d.u64(); }
void decode_payload_into(Decoder& d, FlowSummaryMsg& m) {
  m.flow_id = d.u32();
  m.mss = d.u32();
  m.cwnd_bytes = d.u32();
  m.srtt_us = d.u64();
  m.in_fallback = d.u8() != 0;
  d.str_into(m.alg_hint);
  m.token = d.u64();
}

/// Decodes into `slot`, keeping the current variant alternative (and its
/// heap buffers) when the wire type matches; otherwise switches the
/// alternative with emplace (one-time cost per type change).
template <typename T>
void reuse_or_emplace(Decoder& d, Message& slot) {
  T* m = std::get_if<T>(&slot);
  if (m == nullptr) m = &slot.emplace<T>();
  decode_payload_into(d, *m);
}

void decode_message_into(MsgType type, Decoder& d, Message& slot) {
  switch (type) {
    case MsgType::Create: reuse_or_emplace<CreateMsg>(d, slot); return;
    case MsgType::Measurement: reuse_or_emplace<MeasurementMsg>(d, slot); return;
    case MsgType::Urgent: reuse_or_emplace<UrgentMsg>(d, slot); return;
    case MsgType::FlowClose: reuse_or_emplace<FlowCloseMsg>(d, slot); return;
    case MsgType::Install: reuse_or_emplace<InstallMsg>(d, slot); return;
    case MsgType::UpdateFields: reuse_or_emplace<UpdateFieldsMsg>(d, slot); return;
    case MsgType::DirectControl: reuse_or_emplace<DirectControlMsg>(d, slot); return;
    case MsgType::ResyncRequest: reuse_or_emplace<ResyncRequestMsg>(d, slot); return;
    case MsgType::FlowSummary: reuse_or_emplace<FlowSummaryMsg>(d, slot); return;
  }
  throw WireError("unknown message type " + std::to_string(static_cast<int>(type)));
}

}  // namespace

void encode_message(Encoder& enc, const Message& m) {
  const size_t len_at = enc.size();
  enc.u32(0);  // placeholder msg_len
  enc.u8(static_cast<uint8_t>(message_type(m)));
  std::visit([&enc](const auto& msg) { encode_payload(enc, msg); }, m);
  enc.patch_u32(len_at, static_cast<uint32_t>(enc.size() - len_at));
}

void encode_frame_into(Encoder& enc, std::span<const Message> msgs) {
  if (msgs.size() > std::numeric_limits<uint16_t>::max()) {
    throw WireError("too many messages in one frame");
  }
  enc.u16(static_cast<uint16_t>(msgs.size()));
  for (const auto& m : msgs) encode_message(enc, m);
}

void encode_frame_into(Encoder& enc, const Message& msg) {
  encode_frame_into(enc, std::span<const Message>(&msg, 1));
}

std::vector<uint8_t> encode_frame(std::span<const Message> msgs) {
  Encoder enc;
  encode_frame_into(enc, msgs);
  return std::move(enc.buffer());
}

std::vector<uint8_t> encode_frame(const Message& msg) {
  return encode_frame(std::span<const Message>(&msg, 1));
}

size_t decode_frame_into(std::span<const uint8_t> frame, std::vector<Message>& out) {
  Decoder d(frame);
  const uint16_t n = d.u16();
  if (out.size() < n) out.resize(n);
  for (uint16_t i = 0; i < n; ++i) {
    const size_t msg_start = d.position();
    const uint32_t msg_len = d.u32();
    if (msg_len < 5 || msg_len > kMaxMsgLen) throw WireError("bad message length");
    const uint8_t type = d.u8();
    decode_message_into(static_cast<MsgType>(type), d, out[i]);
    if (d.position() != msg_start + msg_len) {
      throw WireError("message length mismatch");
    }
  }
  if (d.remaining() != 0) throw WireError("trailing bytes in frame");
  return n;
}

std::vector<Message> decode_frame(std::span<const uint8_t> frame) {
  Decoder d(frame);
  const uint16_t n = d.u16();
  std::vector<Message> out;
  out.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    const size_t msg_start = d.position();
    const uint32_t msg_len = d.u32();
    if (msg_len < 5 || msg_len > kMaxMsgLen) throw WireError("bad message length");
    const uint8_t type = d.u8();
    Message m = decode_payload(static_cast<MsgType>(type), d);
    if (d.position() != msg_start + msg_len) {
      throw WireError("message length mismatch");
    }
    out.push_back(std::move(m));
  }
  if (d.remaining() != 0) throw WireError("trailing bytes in frame");
  return out;
}

}  // namespace ccp::ipc
