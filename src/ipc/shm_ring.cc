#include "ipc/shm_ring.hpp"

#include <cstring>
#include <new>

namespace ccp::ipc {

ShmRing ShmRing::create_in(void* mem, size_t capacity) {
  auto* hdr = new (mem) RingHeader();
  hdr->capacity = capacity;
  return ShmRing(hdr, static_cast<uint8_t*>(mem) + sizeof(RingHeader));
}

ShmRing ShmRing::attach(void* mem) {
  auto* hdr = static_cast<RingHeader*>(mem);
  return ShmRing(hdr, static_cast<uint8_t*>(mem) + sizeof(RingHeader));
}

void ShmRing::copy_in(uint64_t at, std::span<const uint8_t> src) {
  if (src.empty()) return;  // zero-length payloads are legal records
  const uint64_t cap = hdr_->capacity;
  const uint64_t off = at & (cap - 1);
  const uint64_t first = std::min<uint64_t>(src.size(), cap - off);
  std::memcpy(data_ + off, src.data(), first);
  if (first < src.size()) {
    std::memcpy(data_, src.data() + first, src.size() - first);
  }
}

void ShmRing::copy_out(uint64_t at, std::span<uint8_t> dst) const {
  if (dst.empty()) return;
  const uint64_t cap = hdr_->capacity;
  const uint64_t off = at & (cap - 1);
  const uint64_t first = std::min<uint64_t>(dst.size(), cap - off);
  std::memcpy(dst.data(), data_ + off, first);
  if (first < dst.size()) {
    std::memcpy(dst.data() + first, data_, dst.size() - first);
  }
}

bool ShmRing::push(std::span<const uint8_t> payload) {
  const uint64_t need = 4 + payload.size();
  const uint64_t tail = hdr_->tail.load(std::memory_order_relaxed);
  const uint64_t head = hdr_->head.load(std::memory_order_acquire);
  if (hdr_->capacity - (tail - head) < need) return false;

  uint8_t len_bytes[4];
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(len_bytes, &len, 4);
  copy_in(tail, len_bytes);
  copy_in(tail + 4, payload);
  hdr_->tail.store(tail + need, std::memory_order_release);
  return true;
}

std::optional<std::vector<uint8_t>> ShmRing::pop() {
  const uint64_t head = hdr_->head.load(std::memory_order_relaxed);
  const uint64_t tail = hdr_->tail.load(std::memory_order_acquire);
  if (tail == head) return std::nullopt;

  uint8_t len_bytes[4];
  copy_out(head, len_bytes);
  uint32_t len;
  std::memcpy(&len, len_bytes, 4);
  std::vector<uint8_t> out(len);
  copy_out(head + 4, out);
  hdr_->head.store(head + 4 + len, std::memory_order_release);
  return out;
}

std::span<const uint8_t> ShmRing::record_at(uint64_t head,
                                            std::vector<uint8_t>& scratch) const {
  uint8_t len_bytes[4];
  copy_out(head, len_bytes);
  uint32_t len;
  std::memcpy(&len, len_bytes, 4);

  const uint64_t cap = hdr_->capacity;
  const uint64_t off = (head + 4) & (cap - 1);
  if (off + len <= cap) {
    return std::span<const uint8_t>(data_ + off, len);  // zero-copy
  }
  if (scratch.size() < len) scratch.resize(len);
  copy_out(head + 4, std::span<uint8_t>(scratch.data(), len));
  return std::span<const uint8_t>(scratch.data(), len);
}

std::optional<std::span<const uint8_t>> ShmRing::peek(std::vector<uint8_t>& scratch) {
  const uint64_t head = hdr_->head.load(std::memory_order_relaxed);
  const uint64_t tail = hdr_->tail.load(std::memory_order_acquire);
  if (tail == head) return std::nullopt;
  const std::span<const uint8_t> rec = record_at(head, scratch);
  peeked_bytes_ = 4 + rec.size();
  return rec;
}

void ShmRing::consume() {
  const uint64_t head = hdr_->head.load(std::memory_order_relaxed);
  hdr_->head.store(head + peeked_bytes_, std::memory_order_release);
  peeked_bytes_ = 0;
}

}  // namespace ccp::ipc
