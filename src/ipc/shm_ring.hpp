// Shared-memory SPSC byte ring used by the shm transport.
//
// Layout in the shared mapping (one per direction):
//
//   [ RingHeader | data bytes ... ]
//
// The producer writes [u32 len][payload] records; head/tail are byte
// offsets that only ever increase (mod 2^64) so empty/full is
// unambiguous. Single producer, single consumer, both possibly in
// different processes (the mapping is MAP_SHARED|MAP_ANONYMOUS, created
// before fork()).
//
// This is the stand-in for the paper's Netlink channel: a syscall-free
// data plane with an optional eventfd doorbell for blocking waits.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ccp::ipc {

struct RingHeader {
  std::atomic<uint64_t> head{0};  // next byte the consumer will read
  std::atomic<uint64_t> tail{0};  // next byte the producer will write
  uint64_t capacity = 0;          // power of two
};

/// Non-owning view over a ring in shared memory. The owner (ShmChannel)
/// manages the mapping's lifetime.
class ShmRing {
 public:
  ShmRing() = default;
  ShmRing(RingHeader* header, uint8_t* data) : hdr_(header), data_(data) {}

  /// Producer side: appends one record. Returns false if there is not
  /// enough free space (caller may retry or drop).
  bool push(std::span<const uint8_t> payload);

  /// Consumer side: pops one record if available.
  std::optional<std::vector<uint8_t>> pop();

  bool empty() const {
    return hdr_->head.load(std::memory_order_acquire) ==
           hdr_->tail.load(std::memory_order_acquire);
  }

  uint64_t bytes_used() const {
    return hdr_->tail.load(std::memory_order_acquire) -
           hdr_->head.load(std::memory_order_acquire);
  }

  uint64_t capacity() const { return hdr_->capacity; }

  /// Total size of the shared mapping needed for a ring of `capacity`.
  static size_t mapping_size(size_t capacity) {
    return sizeof(RingHeader) + capacity;
  }

  /// Initializes a header+data region in place (producer side, once).
  static ShmRing create_in(void* mem, size_t capacity);

  /// Attaches to an already-initialized region.
  static ShmRing attach(void* mem);

 private:
  void copy_in(uint64_t at, std::span<const uint8_t> src);
  void copy_out(uint64_t at, std::span<uint8_t> dst) const;

  RingHeader* hdr_ = nullptr;
  uint8_t* data_ = nullptr;
};

}  // namespace ccp::ipc
