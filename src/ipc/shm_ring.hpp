// Shared-memory SPSC byte ring used by the shm transport.
//
// Layout in the shared mapping (one per direction):
//
//   [ RingHeader | data bytes ... ]
//
// The producer writes [u32 len][payload] records; head/tail are byte
// offsets that only ever increase (mod 2^64) so empty/full is
// unambiguous. Single producer, single consumer, both possibly in
// different processes (the mapping is MAP_SHARED|MAP_ANONYMOUS, created
// before fork()).
//
// This is the stand-in for the paper's Netlink channel: a syscall-free
// data plane with an optional eventfd doorbell for blocking waits.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ccp::ipc {

struct RingHeader {
  std::atomic<uint64_t> head{0};  // next byte the consumer will read
  std::atomic<uint64_t> tail{0};  // next byte the producer will write
  uint64_t capacity = 0;          // power of two
};

/// Non-owning view over a ring in shared memory. The owner (ShmChannel)
/// manages the mapping's lifetime.
class ShmRing {
 public:
  ShmRing() = default;
  ShmRing(RingHeader* header, uint8_t* data) : hdr_(header), data_(data) {}

  /// Producer side: appends one record. Returns false if there is not
  /// enough free space (caller may retry or drop).
  bool push(std::span<const uint8_t> payload);

  /// Consumer side: pops one record if available.
  std::optional<std::vector<uint8_t>> pop();

  /// Zero-copy consumer path: exposes the next record's payload without
  /// retiring it. The span points directly into ring memory when the
  /// record is contiguous; a record that straddles the wrap point is
  /// staged through `scratch` (whose capacity is reused across calls).
  /// The span is invalidated by consume()/pop()/drain().
  std::optional<std::span<const uint8_t>> peek(std::vector<uint8_t>& scratch);

  /// Retires the record returned by the last successful peek().
  void consume();

  /// Batched consumer: invokes fn(payload) for every record present when
  /// the drain began, publishing ONE head update at the end — a single
  /// head/tail synchronization round-trip (two loads + one store) no
  /// matter how deep the backlog. Returns the number of records drained.
  template <typename Fn>
  size_t drain(std::vector<uint8_t>& scratch, Fn&& fn) {
    uint64_t head = hdr_->head.load(std::memory_order_relaxed);
    const uint64_t tail = hdr_->tail.load(std::memory_order_acquire);
    size_t n = 0;
    while (head != tail) {
      const std::span<const uint8_t> rec = record_at(head, scratch);
      head += 4 + rec.size();
      fn(rec);
      ++n;
    }
    if (n > 0) hdr_->head.store(head, std::memory_order_release);
    return n;
  }

  bool empty() const {
    return hdr_->head.load(std::memory_order_acquire) ==
           hdr_->tail.load(std::memory_order_acquire);
  }

  uint64_t bytes_used() const {
    return hdr_->tail.load(std::memory_order_acquire) -
           hdr_->head.load(std::memory_order_acquire);
  }

  uint64_t capacity() const { return hdr_->capacity; }

  /// Total size of the shared mapping needed for a ring of `capacity`.
  static size_t mapping_size(size_t capacity) {
    return sizeof(RingHeader) + capacity;
  }

  /// Initializes a header+data region in place (producer side, once).
  static ShmRing create_in(void* mem, size_t capacity);

  /// Attaches to an already-initialized region.
  static ShmRing attach(void* mem);

 private:
  void copy_in(uint64_t at, std::span<const uint8_t> src);
  void copy_out(uint64_t at, std::span<uint8_t> dst) const;

  /// Payload view of the record at byte offset `head` — zero-copy when
  /// contiguous, staged through `scratch` when it wraps.
  std::span<const uint8_t> record_at(uint64_t head, std::vector<uint8_t>& scratch) const;

  RingHeader* hdr_ = nullptr;
  uint8_t* data_ = nullptr;
  uint64_t peeked_bytes_ = 0;  // total record bytes of the last peek()
};

}  // namespace ccp::ipc
