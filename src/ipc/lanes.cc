#include "ipc/lanes.hpp"

#include "telemetry/telemetry.hpp"

namespace ccp::ipc {

LaneSet make_inproc_lanes(size_t n) {
  LaneSet lanes;
  lanes.dp.reserve(n);
  lanes.agent.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    TransportPair pair = make_inproc_pair();
    lanes.dp.push_back(std::move(pair.a));
    lanes.agent.push_back(std::move(pair.b));
  }
  return lanes;
}

LaneSet make_shm_ring_lanes(size_t n, size_t capacity_bytes, ShmWaitMode mode) {
  LaneSet lanes;
  lanes.dp.reserve(n);
  lanes.agent.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    TransportPair pair = make_shm_ring_pair(capacity_bytes, mode);
    lanes.dp.push_back(std::move(pair.a));
    lanes.agent.push_back(std::move(pair.b));
  }
  return lanes;
}

size_t drain_lanes(std::span<const std::unique_ptr<Transport>> lanes,
                   const LaneFrameSink& sink, size_t first_lane) {
  size_t total = 0;
  const size_t n = lanes.size();
  if (n == 0) return 0;
  for (size_t k = 0; k < n; ++k) {
    const size_t lane = (first_lane + k) % n;
    total += lanes[lane]->drain_frames(
        [&](std::span<const uint8_t> frame) { sink(lane, frame); });
  }
  return total;
}

std::function<void(std::span<const uint8_t>)> make_lane_tx(Transport& lane,
                                                           size_t shard_index) {
  return [&lane, shard_index](std::span<const uint8_t> frame) {
    if (!lane.send_frame(frame) && telemetry::enabled()) {
      telemetry::shard_stats(shard_index).ring_full.inc();
    }
  };
}

}  // namespace ccp::ipc
