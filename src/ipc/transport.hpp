// Transport abstraction between the CCP agent and a datapath.
//
// A transport carries whole frames (message boundaries preserved). Three
// implementations:
//   - UnixSocketTransport: SOCK_SEQPACKET socketpair, works across fork();
//     this is the paper's "Unix domain socket" IPC (Figure 2).
//   - ShmRingTransport: shared-memory SPSC ring with either busy-poll or
//     eventfd-blocking receive; stands in for the paper's Netlink channel
//     (see DESIGN.md substitutions).
//   - InProcTransport: lock-protected queue pair for tests and for
//     threads within one process.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace ccp::ipc {

/// Callback receiving one frame's bytes during drain_frames(). The span
/// is only valid for the duration of the call.
using FrameSink = std::function<void(std::span<const uint8_t>)>;

/// Why a transport stopped working. `closed()` collapses both failure
/// states to true; status() lets a supervisor distinguish "the peer went
/// away, reconnect with backoff" (PeerDisconnected) from "the channel
/// itself broke" (Error).
enum class TransportStatus : uint8_t {
  Ok = 0,
  PeerDisconnected = 1,  // orderly close / EPIPE / ECONNRESET
  Error = 2,             // unexpected socket or channel failure
};

const char* transport_status_name(TransportStatus s);

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one frame. Returns false if the peer is gone or the channel is
  /// full beyond recovery; the caller decides whether to drop or retry.
  virtual bool send_frame(std::span<const uint8_t> frame) = 0;

  /// Blocks until a frame arrives, the timeout elapses (nullopt result),
  /// or the peer closes (also nullopt; use `closed()` to distinguish).
  virtual std::optional<std::vector<uint8_t>> recv_frame(
      std::optional<Duration> timeout) = 0;

  /// Non-blocking receive.
  virtual std::optional<std::vector<uint8_t>> try_recv_frame() = 0;

  /// Non-blocking batched receive: invokes `sink` on every frame already
  /// queued and returns the count. Unlike try_recv_frame() in a loop this
  /// pays the channel's synchronization cost once per batch (one
  /// lock/unlock, one head/tail round-trip, ...), and hands frames out as
  /// borrowed spans instead of fresh vectors — the steady-state receive
  /// path allocates nothing once scratch capacities settle.
  virtual size_t drain_frames(const FrameSink& sink) = 0;

  virtual bool closed() const = 0;

  /// Health of the channel. The default derives it from closed(); concrete
  /// transports override to report *why* they closed.
  virtual TransportStatus status() const {
    return closed() ? TransportStatus::PeerDisconnected : TransportStatus::Ok;
  }
};

/// Pass-through decorator owning an inner transport. Every call forwards
/// verbatim; subclasses override the calls they want to intercept. This is
/// the injection seam the resilience FaultInjector uses to drop, delay,
/// or corrupt frames without the wrapped transport knowing.
class FilterTransport : public Transport {
 public:
  explicit FilterTransport(std::unique_ptr<Transport> inner)
      : inner_(std::move(inner)) {}

  bool send_frame(std::span<const uint8_t> frame) override {
    return inner_->send_frame(frame);
  }
  std::optional<std::vector<uint8_t>> recv_frame(
      std::optional<Duration> timeout) override {
    return inner_->recv_frame(timeout);
  }
  std::optional<std::vector<uint8_t>> try_recv_frame() override {
    return inner_->try_recv_frame();
  }
  size_t drain_frames(const FrameSink& sink) override {
    return inner_->drain_frames(sink);
  }
  bool closed() const override { return inner_->closed(); }
  TransportStatus status() const override { return inner_->status(); }

  Transport& inner() { return *inner_; }
  const Transport& inner() const { return *inner_; }

 protected:
  std::unique_ptr<Transport> inner_;
};

/// Both ends of a bidirectional channel.
struct TransportPair {
  std::unique_ptr<Transport> a;
  std::unique_ptr<Transport> b;
};

/// SOCK_SEQPACKET Unix socketpair. Endpoints remain usable in parent and
/// child after fork() (each side must close the end it does not use by
/// simply destroying it).
TransportPair make_unix_socket_pair();

/// In-process queue pair (thread-safe).
TransportPair make_inproc_pair();

/// How the receiving side of a shm ring waits for data.
enum class ShmWaitMode {
  Blocking,  // eventfd wakeup: sleeps in the kernel, like Netlink recv
  BusyPoll,  // spins on the ring head: models a dedicated/hot core (§2.3)
};

/// Shared-memory ring channel (anonymous shared mapping; usable across
/// fork()). `capacity_bytes` is per direction and rounded up to a power
/// of two.
TransportPair make_shm_ring_pair(size_t capacity_bytes, ShmWaitMode mode);

/// Path-based SOCK_SEQPACKET listener, so out-of-process tools (e.g.
/// ccp_stats) can attach to a running agent/datapath. accept() wraps each
/// connection in the same frame-preserving transport as the socketpair.
class UnixListener {
 public:
  /// Binds and listens on `path` (unlinking any stale socket first).
  /// Throws std::runtime_error on failure.
  explicit UnixListener(std::string path);
  ~UnixListener();
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Waits up to `timeout` (forever if nullopt) for a connection; returns
  /// nullptr on timeout or after close().
  std::unique_ptr<Transport> accept(std::optional<Duration> timeout);

  const std::string& path() const { return path_; }
  /// Unblocks any accept() in progress and stops accepting.
  void close();

 private:
  std::string path_;
  // Atomic: close() may run on another thread to unblock accept().
  std::atomic<int> fd_{-1};
};

/// Connects to a UnixListener at `path`; nullptr if nobody is listening.
std::unique_ptr<Transport> unix_connect(const std::string& path);

}  // namespace ccp::ipc
