// Messages exchanged between the datapath and the CCP agent (Figure 1).
//
// Datapath -> agent:  Create, Measurement (batched), Urgent, FlowClose
// Agent -> datapath:  Install (a program), UpdateFields (rebind $vars),
//                     DirectControl (one-shot cwnd/rate override)
//
// Measurements carry the fold register file by position; the agent knows
// the field names because it installed the program. This keeps the hot
// message small and fixed-layout, like the real CCP's netlink messages.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "telemetry/spans.hpp"

namespace ccp::ipc {

using FlowId = uint32_t;

/// Control-loop span context (telemetry/spans.hpp) carried by command
/// messages; span_id 0 = no span. Encoded at the end of each payload,
/// like MeasurementMsg::emitted_ns, so fixed-offset consumers of the
/// leading fields are unaffected.
using SpanStamp = telemetry::SpanStamp;

/// Why an Urgent message fired. Loss/Timeout/Ecn come from the datapath's
/// own congestion detection; FoldUrgent means a register declared
/// `urgent` changed (§2.1 "urgent measurements").
enum class UrgentKind : uint8_t { Loss = 0, Timeout = 1, Ecn = 2, FoldUrgent = 3 };

/// A new flow appeared in the datapath.
struct CreateMsg {
  FlowId flow_id = 0;
  uint32_t init_cwnd_bytes = 0;
  uint32_t mss = 1500;
  uint32_t src_port = 0;
  uint32_t dst_port = 0;
  std::string alg_hint;  // which algorithm the host policy wants, may be empty

  /// Datapath capability flag. Full datapaths compile and run installed
  /// programs; limited ones (the paper's §3 prototype: "reports only the
  /// most recent ACK and an EWMA-filtered RTT, sending rate, and
  /// receiving rate") accept only DirectControl and report a fixed field
  /// layout (prototype_field_names()). The agent translates for them —
  /// "it is also possible to support programs purely by issuing commands
  /// from the CCP each RTT" (§2.1).
  bool supports_programs = true;
};

/// The fixed measurement layout limited datapaths report, in order.
/// (Includes both "loss" and "lost" spellings so algorithms written
/// against either name translate cleanly.)
const std::vector<std::string>& prototype_field_names();

/// One batched report: the fold register file at Report() time.
struct MeasurementMsg {
  FlowId flow_id = 0;
  uint64_t report_seq = 0;  // per-flow, increments every report
  uint32_t num_acks_folded = 0;  // how many ACKs this batch summarizes
  bool is_vector = false;   // §2.4: raw per-ACK samples instead of fold state
  std::vector<double> fields;    // fold registers in program order, or
                                 // num_acks_folded * kVectorFieldsPerPkt samples
  uint64_t emitted_ns = 0;  // sender's monotonic clock at emit; 0 = unstamped.
                            // Feeds the report->OnMeasurement latency
                            // histogram (telemetry); near the end of the
                            // wire payload so fixed-offset consumers of
                            // the leading fields are unaffected.
  uint64_t span_id = 0;     // control-loop span opened at emit; 0 = none.
                            // The agent copies it (with emitted_ns) onto
                            // any command this report provokes.
};

/// Immediate notification of a congestion event (§2.1).
struct UrgentMsg {
  FlowId flow_id = 0;
  UrgentKind kind = UrgentKind::Loss;
  std::vector<double> fields;  // fold register snapshot at the event
  uint64_t emitted_ns = 0;     // see MeasurementMsg::emitted_ns
  uint64_t span_id = 0;        // see MeasurementMsg::span_id
};

struct FlowCloseMsg {
  FlowId flow_id = 0;
};

/// Install a new datapath program (Table 3's Install()). The program is
/// shipped as text and compiled by the datapath, so a datapath can reject
/// programs it cannot support.
struct InstallMsg {
  FlowId flow_id = 0;
  std::string program_text;
  std::vector<std::string> var_names;
  std::vector<double> var_values;
  bool vector_mode = false;  // §2.4: request per-ACK vector reports
  uint64_t emitted_ns = 0;   // see MeasurementMsg::emitted_ns (install RTT)
  SpanStamp span;            // control-loop span this install closes
};

/// Rebind install-time variables of the running program without resetting
/// fold state — the cheap per-report control message.
struct UpdateFieldsMsg {
  FlowId flow_id = 0;
  std::vector<double> var_values;  // positional, must match installed program
  SpanStamp span;                  // control-loop span this update closes
};

/// One-shot override used by simple window/rate algorithms and by agent
/// policy enforcement (Figure 1's CWND(c) / RATE(r) arrows).
struct DirectControlMsg {
  FlowId flow_id = 0;
  std::optional<double> cwnd_bytes;
  std::optional<double> rate_bps;
  SpanStamp span;  // control-loop span this override closes
};

/// A (re)started agent asks the datapath to replay summaries of every
/// active flow so it can rebuild per-flow state. `token` identifies the
/// agent generation; the datapath echoes it in each FlowSummaryMsg so the
/// agent can discard replays from a superseded request.
struct ResyncRequestMsg {
  uint64_t token = 0;
};

/// Datapath -> agent replay of one active flow's state in response to a
/// ResyncRequest. Carries what CreateMsg carried plus the live window and
/// smoothed RTT, so the restarted agent resumes near where the flow is
/// rather than from init_cwnd.
struct FlowSummaryMsg {
  FlowId flow_id = 0;
  uint32_t mss = 1500;
  uint32_t cwnd_bytes = 0;   // current enforced window
  uint64_t srtt_us = 0;      // smoothed RTT estimate, 0 if unmeasured
  bool in_fallback = false;  // flow is running the safe-mode program
  std::string alg_hint;      // from the original CreateMsg
  uint64_t token = 0;        // echoes ResyncRequestMsg::token
};

using Message = std::variant<CreateMsg, MeasurementMsg, UrgentMsg, FlowCloseMsg,
                             InstallMsg, UpdateFieldsMsg, DirectControlMsg,
                             ResyncRequestMsg, FlowSummaryMsg>;

/// Stable on-wire discriminators (never reorder).
enum class MsgType : uint8_t {
  Create = 1,
  Measurement = 2,
  Urgent = 3,
  FlowClose = 4,
  Install = 5,
  UpdateFields = 6,
  DirectControl = 7,
  ResyncRequest = 8,
  FlowSummary = 9,
};

MsgType message_type(const Message& m);

}  // namespace ccp::ipc
