// Binary wire format for CCP messages.
//
// All integers little-endian. A *frame* is the unit a transport carries;
// it may coalesce many messages (the batching path of §2.3 — one syscall
// flushes every flow's pending reports):
//
//   frame   := u16 n_msgs | msg*
//   msg     := u32 msg_len | u8 type | payload(msg_len-5 bytes)
//
// Decoding is defensive end to end: a malformed or truncated frame raises
// WireError, which the receiving side logs and drops — a corrupt datapath
// message must never take down the agent, and vice versa (§5 "Is CCP safe
// to deploy?").
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "ipc/message.hpp"

namespace ccp::ipc {

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error("wire: " + what) {}
};

/// Append-only byte buffer writer.
class Encoder {
 public:
  void u8(uint8_t v);
  void u16(uint16_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void f64(double v);
  void str(const std::string& s);              // u32 len + bytes
  void f64_vec(const std::vector<double>& v);  // u32 count + doubles
  void str_vec(const std::vector<std::string>& v);

  std::vector<uint8_t>& buffer() { return buf_; }
  const std::vector<uint8_t>& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }

  /// Resets to empty, keeping the underlying capacity — lets one Encoder
  /// be reused across frames without re-allocating the buffer.
  void clear() { buf_.clear(); }

  /// Patch a previously written u32 at `offset` (for length prefixes).
  void patch_u32(size_t offset, uint32_t v);

  /// Patch a previously written u16 at `offset` (for frame msg counts).
  void patch_u16(size_t offset, uint16_t v);

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked reader; throws WireError past the end.
class Decoder {
 public:
  explicit Decoder(std::span<const uint8_t> data) : data_(data) {}

  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  double f64();
  std::string str();
  std::vector<double> f64_vec();
  std::vector<std::string> str_vec();

  // In-place variants: overwrite `out` reusing its existing capacity.
  // These are the steady-state decode path — after warm-up no per-message
  // allocation happens as long as capacities have settled.
  void str_into(std::string& out);
  void f64_vec_into(std::vector<double>& out);
  void str_vec_into(std::vector<std::string>& out);

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  void skip(size_t n);

 private:
  void need(size_t n) const;
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// Serializes one message (without frame header).
void encode_message(Encoder& enc, const Message& m);

/// Builds a complete frame from one or more messages.
std::vector<uint8_t> encode_frame(std::span<const Message> msgs);
std::vector<uint8_t> encode_frame(const Message& msg);

/// Appends a complete frame to `enc` (which the caller clears between
/// frames). The allocation-free sibling of encode_frame().
void encode_frame_into(Encoder& enc, std::span<const Message> msgs);
void encode_frame_into(Encoder& enc, const Message& msg);

/// Parses a frame into messages. Throws WireError on malformed input.
std::vector<Message> decode_frame(std::span<const uint8_t> frame);

/// In-place frame decode: messages land in `out[0..n)`, reusing each
/// slot's existing variant alternative (and therefore its vectors'
/// capacity) when the incoming type matches. `out` only grows when the
/// frame has more messages than any previous one; it is NOT shrunk —
/// the returned count says how many slots are valid.
size_t decode_frame_into(std::span<const uint8_t> frame, std::vector<Message>& out);

}  // namespace ccp::ipc
