#include <condition_variable>
#include <deque>
#include <mutex>

#include "ipc/transport.hpp"
#include "telemetry/telemetry.hpp"

namespace ccp::ipc {
namespace {

/// One direction of the in-process channel.
struct Queue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::vector<uint8_t>> frames;
  bool closed = false;

  void close() {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
    cv.notify_all();
  }
};

class InProcTransport final : public Transport {
 public:
  InProcTransport(std::shared_ptr<Queue> tx, std::shared_ptr<Queue> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  ~InProcTransport() override {
    tx_->close();
    rx_->close();
  }

  bool send_frame(std::span<const uint8_t> frame) override {
    std::lock_guard<std::mutex> lock(tx_->mu);
    if (tx_->closed) return false;
    tx_->frames.emplace_back(frame.begin(), frame.end());
    tx_->cv.notify_one();
    return true;
  }

  std::optional<std::vector<uint8_t>> recv_frame(
      std::optional<Duration> timeout) override {
    std::unique_lock<std::mutex> lock(rx_->mu);
    auto ready = [this] { return !rx_->frames.empty() || rx_->closed; };
    if (timeout.has_value()) {
      if (!rx_->cv.wait_for(lock, std::chrono::nanoseconds(timeout->nanos()), ready)) {
        return std::nullopt;
      }
    } else {
      rx_->cv.wait(lock, ready);
    }
    if (rx_->frames.empty()) return std::nullopt;  // closed
    auto frame = std::move(rx_->frames.front());
    rx_->frames.pop_front();
    return frame;
  }

  std::optional<std::vector<uint8_t>> try_recv_frame() override {
    std::lock_guard<std::mutex> lock(rx_->mu);
    if (rx_->frames.empty()) return std::nullopt;
    auto frame = std::move(rx_->frames.front());
    rx_->frames.pop_front();
    return frame;
  }

  size_t drain_frames(const FrameSink& sink) override {
    // One lock round-trip for the whole backlog: swap it out, deliver
    // outside the lock (the sink may send on this channel's other
    // direction, which takes the peer queue's lock).
    {
      std::lock_guard<std::mutex> lock(rx_->mu);
      if (rx_->frames.empty()) return 0;
      drain_scratch_.swap(rx_->frames);
    }
    const size_t n = drain_scratch_.size();
    for (auto& frame : drain_scratch_) sink(frame);
    drain_scratch_.clear();
    if (telemetry::enabled()) telemetry::metrics().ipc_drain_batch.record(n);
    return n;
  }

  bool closed() const override {
    std::lock_guard<std::mutex> lock(rx_->mu);
    return rx_->closed && rx_->frames.empty();
  }

 private:
  std::shared_ptr<Queue> tx_;
  mutable std::shared_ptr<Queue> rx_;
  std::deque<std::vector<uint8_t>> drain_scratch_;  // reused across drains
};

}  // namespace

TransportPair make_inproc_pair() {
  auto ab = std::make_shared<Queue>();
  auto ba = std::make_shared<Queue>();
  return TransportPair{std::make_unique<InProcTransport>(ab, ba),
                       std::make_unique<InProcTransport>(ba, ab)};
}

}  // namespace ccp::ipc
