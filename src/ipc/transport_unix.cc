#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "ipc/transport.hpp"
#include "util/logging.hpp"

namespace ccp::ipc {
namespace {

class UnixSocketTransport final : public Transport {
 public:
  explicit UnixSocketTransport(int fd) : fd_(fd) {}
  ~UnixSocketTransport() override {
    if (fd_ >= 0) ::close(fd_);
  }
  UnixSocketTransport(const UnixSocketTransport&) = delete;
  UnixSocketTransport& operator=(const UnixSocketTransport&) = delete;

  bool send_frame(std::span<const uint8_t> frame) override {
    if (closed_) return false;
    for (;;) {
      const ssize_t n = ::send(fd_, frame.data(), frame.size(), MSG_NOSIGNAL);
      if (n == static_cast<ssize_t>(frame.size())) return true;
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
        closed_ = true;
        return false;
      }
      CCP_WARN("unix socket send failed: %s", std::strerror(errno));
      return false;
    }
  }

  std::optional<std::vector<uint8_t>> recv_frame(
      std::optional<Duration> timeout) override {
    if (closed_) return std::nullopt;
    if (timeout.has_value()) {
      struct pollfd pfd{fd_, POLLIN, 0};
      const int timeout_ms =
          static_cast<int>((timeout->millis() > 0) ? timeout->millis() : 0);
      int r;
      do {
        r = ::poll(&pfd, 1, timeout_ms);
      } while (r < 0 && errno == EINTR);
      if (r <= 0) return std::nullopt;
    }
    return do_recv(/*blocking=*/true);
  }

  std::optional<std::vector<uint8_t>> try_recv_frame() override {
    if (closed_) return std::nullopt;
    return do_recv(/*blocking=*/false);
  }

  size_t drain_frames(const FrameSink& sink) override {
    if (closed_) return 0;
    if (scratch_.size() != kMaxFrame) scratch_.resize(kMaxFrame);
    size_t count = 0;
    for (;;) {
      const ssize_t n = ::recv(fd_, scratch_.data(), scratch_.size(), MSG_DONTWAIT);
      if (n > 0) {
        sink(std::span<const uint8_t>(scratch_.data(), static_cast<size_t>(n)));
        ++count;
        continue;
      }
      if (n == 0) {  // peer closed
        closed_ = true;
        return count;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return count;
      CCP_WARN("unix socket recv failed: %s", std::strerror(errno));
      closed_ = true;
      return count;
    }
  }

  bool closed() const override { return closed_; }

 private:
  std::optional<std::vector<uint8_t>> do_recv(bool blocking) {
    // Reused scratch: zero-filling a fresh max-size buffer per receive
    // would dwarf the actual IPC cost being measured.
    if (scratch_.size() != kMaxFrame) scratch_.resize(kMaxFrame);
    for (;;) {
      const ssize_t n =
          ::recv(fd_, scratch_.data(), scratch_.size(), blocking ? 0 : MSG_DONTWAIT);
      if (n > 0) {
        return std::vector<uint8_t>(scratch_.begin(), scratch_.begin() + n);
      }
      if (n == 0) {  // peer closed
        closed_ = true;
        return std::nullopt;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
      CCP_WARN("unix socket recv failed: %s", std::strerror(errno));
      closed_ = true;
      return std::nullopt;
    }
  }

  static constexpr size_t kMaxFrame = 1 << 20;
  int fd_;
  bool closed_ = false;
  std::vector<uint8_t> scratch_;
};

}  // namespace

TransportPair make_unix_socket_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_SEQPACKET, 0, fds) != 0) {
    throw std::runtime_error(std::string("socketpair: ") + std::strerror(errno));
  }
  // Large buffers so per-RTT report bursts never block the datapath.
  const int buf = 1 << 21;
  for (int fd : fds) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  }
  return TransportPair{std::make_unique<UnixSocketTransport>(fds[0]),
                       std::make_unique<UnixSocketTransport>(fds[1])};
}

}  // namespace ccp::ipc
