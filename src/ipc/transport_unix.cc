#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "ipc/transport.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace ccp::ipc {

const char* transport_status_name(TransportStatus s) {
  switch (s) {
    case TransportStatus::Ok: return "ok";
    case TransportStatus::PeerDisconnected: return "peer_disconnected";
    case TransportStatus::Error: return "error";
  }
  return "unknown";
}

namespace {

class UnixSocketTransport final : public Transport {
 public:
  explicit UnixSocketTransport(int fd) : fd_(fd) {}
  ~UnixSocketTransport() override {
    if (fd_ >= 0) ::close(fd_);
  }
  UnixSocketTransport(const UnixSocketTransport&) = delete;
  UnixSocketTransport& operator=(const UnixSocketTransport&) = delete;

  bool send_frame(std::span<const uint8_t> frame) override {
    if (closed_) return false;
    for (;;) {
      const ssize_t n = ::send(fd_, frame.data(), frame.size(), MSG_NOSIGNAL);
      if (n == static_cast<ssize_t>(frame.size())) return true;
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
        close_with(TransportStatus::PeerDisconnected);
        if (telemetry::enabled()) telemetry::metrics().ipc_send_failures.inc();
        return false;
      }
      if (telemetry::enabled()) telemetry::metrics().ipc_send_failures.inc();
      CCP_WARN("unix socket send failed: %s", std::strerror(errno));
      return false;
    }
  }

  std::optional<std::vector<uint8_t>> recv_frame(
      std::optional<Duration> timeout) override {
    if (closed_) return std::nullopt;
    if (timeout.has_value()) {
      struct pollfd pfd{fd_, POLLIN, 0};
      const int timeout_ms =
          static_cast<int>((timeout->millis() > 0) ? timeout->millis() : 0);
      int r;
      do {
        r = ::poll(&pfd, 1, timeout_ms);
      } while (r < 0 && errno == EINTR);
      if (r <= 0) return std::nullopt;
    }
    return do_recv(/*blocking=*/true);
  }

  std::optional<std::vector<uint8_t>> try_recv_frame() override {
    if (closed_) return std::nullopt;
    return do_recv(/*blocking=*/false);
  }

  size_t drain_frames(const FrameSink& sink) override {
    if (closed_) return 0;
    if (scratch_.size() != kMaxFrame) scratch_.resize(kMaxFrame);
    size_t count = 0;
    for (;;) {
      const ssize_t n = ::recv(fd_, scratch_.data(), scratch_.size(), MSG_DONTWAIT);
      if (n > 0) {
        sink(std::span<const uint8_t>(scratch_.data(), static_cast<size_t>(n)));
        ++count;
        continue;
      }
      if (n == 0) {  // peer closed
        close_with(TransportStatus::PeerDisconnected);
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == ECONNRESET) {
        close_with(TransportStatus::PeerDisconnected);
        break;
      }
      CCP_WARN("unix socket recv failed: %s", std::strerror(errno));
      close_with(TransportStatus::Error);
      break;
    }
    if (count > 0 && telemetry::enabled()) {
      telemetry::metrics().ipc_drain_batch.record(count);
    }
    return count;
  }

  bool closed() const override { return closed_; }
  TransportStatus status() const override { return status_; }

 private:
  void close_with(TransportStatus why) {
    closed_ = true;
    if (status_ == TransportStatus::Ok) status_ = why;
  }

  std::optional<std::vector<uint8_t>> do_recv(bool blocking) {
    // Reused scratch: zero-filling a fresh max-size buffer per receive
    // would dwarf the actual IPC cost being measured.
    if (scratch_.size() != kMaxFrame) scratch_.resize(kMaxFrame);
    for (;;) {
      const ssize_t n =
          ::recv(fd_, scratch_.data(), scratch_.size(), blocking ? 0 : MSG_DONTWAIT);
      if (n > 0) {
        return std::vector<uint8_t>(scratch_.begin(), scratch_.begin() + n);
      }
      if (n == 0) {  // peer closed
        close_with(TransportStatus::PeerDisconnected);
        return std::nullopt;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
      if (errno == ECONNRESET) {
        close_with(TransportStatus::PeerDisconnected);
        return std::nullopt;
      }
      CCP_WARN("unix socket recv failed: %s", std::strerror(errno));
      close_with(TransportStatus::Error);
      return std::nullopt;
    }
  }

  static constexpr size_t kMaxFrame = 1 << 20;
  int fd_;
  bool closed_ = false;
  TransportStatus status_ = TransportStatus::Ok;
  std::vector<uint8_t> scratch_;
};

}  // namespace

TransportPair make_unix_socket_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_SEQPACKET, 0, fds) != 0) {
    throw std::runtime_error(std::string("socketpair: ") + std::strerror(errno));
  }
  // Large buffers so per-RTT report bursts never block the datapath.
  const int buf = 1 << 21;
  for (int fd : fds) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  }
  return TransportPair{std::make_unique<UnixSocketTransport>(fds[0]),
                       std::make_unique<UnixSocketTransport>(fds[1])};
}

namespace {

bool fill_sockaddr_un(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return false;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

UnixListener::UnixListener(std::string path) : path_(std::move(path)) {
  sockaddr_un addr;
  if (!fill_sockaddr_un(path_, addr)) {
    throw std::runtime_error("unix listener: bad socket path: " + path_);
  }
  const int fd = ::socket(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("unix listener socket: ") +
                             std::strerror(errno));
  }
  ::unlink(path_.c_str());  // drop a stale socket from a crashed run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 4) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("unix listener bind/listen " + path_ + ": " +
                             std::strerror(err));
  }
  fd_.store(fd, std::memory_order_release);
}

UnixListener::~UnixListener() {
  close();
  ::unlink(path_.c_str());
}

std::unique_ptr<Transport> UnixListener::accept(std::optional<Duration> timeout) {
  // One load per call: close() on another thread swaps in -1 and then
  // shuts the old fd down, so a stale local either polls/accepts a
  // shut-down socket (immediate return) or gets EBADF -> nullptr.
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return nullptr;
  if (timeout.has_value()) {
    struct pollfd pfd{fd, POLLIN, 0};
    const int timeout_ms =
        static_cast<int>((timeout->millis() > 0) ? timeout->millis() : 0);
    int r;
    do {
      r = ::poll(&pfd, 1, timeout_ms);
    } while (r < 0 && errno == EINTR);
    if (r <= 0) return nullptr;
  }
  for (;;) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) return std::make_unique<UnixSocketTransport>(conn);
    if (errno == EINTR) continue;
    return nullptr;
  }
}

void UnixListener::close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() first so a blocked accept() in another thread returns.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

std::unique_ptr<Transport> unix_connect(const std::string& path) {
  sockaddr_un addr;
  if (!fill_sockaddr_un(path, addr)) return nullptr;
  const int fd = ::socket(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<UnixSocketTransport>(fd);
}

}  // namespace ccp::ipc
