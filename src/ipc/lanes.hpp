// Multi-lane IPC: one transport lane per datapath shard.
//
// Each shard of the sharded datapath (src/datapath/shard.hpp) sends its
// reports and urgent events on its own lane, so shard workers never
// contend on a shared ring. The agent side drains every lane from one
// ingest loop (agent::MultiLaneLoop), preserving the paper's single
// OnMeasurement serialization point while keeping ingest lane-parallel.
// Lane 0's reverse direction doubles as the control lane: the agent's
// commands travel agent->datapath on it, into the sharded control plane.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "ipc/transport.hpp"

namespace ccp::ipc {

/// Both ends of an n-lane channel: dp[i] is shard i's endpoint, agent[i]
/// the agent's endpoint of the same lane.
struct LaneSet {
  std::vector<std::unique_ptr<Transport>> dp;
  std::vector<std::unique_ptr<Transport>> agent;

  size_t size() const { return dp.size(); }
};

/// In-process lanes (tests, single-process embedders, the bench).
LaneSet make_inproc_lanes(size_t n);

/// Shared-memory ring lanes; `capacity_bytes` is per direction per lane.
LaneSet make_shm_ring_lanes(size_t n, size_t capacity_bytes, ShmWaitMode mode);

/// Frame sink receiving (lane index, frame bytes); the span is only
/// valid for the duration of the call.
using LaneFrameSink = std::function<void(size_t lane, std::span<const uint8_t>)>;

/// Drains every lane once (non-blocking, batched per lane) and returns
/// the total frame count. Lane order is round-robin from `first_lane` so
/// a persistently busy low lane cannot starve the others.
size_t drain_lanes(std::span<const std::unique_ptr<Transport>> lanes,
                   const LaneFrameSink& sink, size_t first_lane = 0);

/// Frame-sending callback for one shard's lane, with per-shard drop
/// accounting: a full/closed lane increments that shard's ring_full
/// counter (and the global ipc counters) instead of blocking the worker
/// — backpressure on a lane must never stall the ACK path.
std::function<void(std::span<const uint8_t>)> make_lane_tx(Transport& lane,
                                                           size_t shard_index);

}  // namespace ccp::ipc
