#include "agent/aggregate.hpp"

#include <algorithm>
#include <limits>

#include "util/logging.hpp"

namespace ccp::agent {

namespace {
/// Member flows run the ordinary window program: the datapath enforces
/// their share and reports per RTT; losses surface urgently.
constexpr const char* kMemberProgram = R"(
fold {
  volatile acked   := acked + Pkt.bytes_acked       init 0;
  volatile loss    := loss + Pkt.lost               init 0 urgent;
  volatile timeout := max(timeout, Pkt.was_timeout) init 0 urgent;
  rtt              := ewma(rtt, Pkt.rtt, 0.125)     init 0;
}
control {
  Cwnd($cwnd);
  WaitRtts(1.0);
  Report();
}
)";
}  // namespace

/// The per-flow Algorithm instance: pure glue between one flow and the
/// group. All policy lives in the shared state; members hold it via
/// shared_ptr so group-handle and agent teardown order cannot dangle.
class AggregateGroup::Member final : public Algorithm {
 public:
  Member(std::shared_ptr<State> state, double weight)
      : state_(std::move(state)), weight_(weight) {}
  ~Member() override;

  std::string_view name() const override { return "aggregate_member"; }
  AlgorithmTraits traits() const override {
    return {{"ACKs", "Loss"}, {"CWND (shared)"}};
  }

  void init(FlowControl& flow) override;
  void on_measurement(FlowControl&, const Measurement& m) override;
  void on_urgent(FlowControl&, ipc::UrgentKind kind, const Measurement&) override;

  /// Called by the group to apply this member's share.
  void set_share(double bytes) {
    share_ = bytes;
    if (flow_ == nullptr) return;
    // Direct-applied: decreases take effect at once; increases become a
    // smooth-transition target in the datapath (never a burst).
    flow_->set_cwnd(bytes);
    flow_->update_fields(VarBindings{{"cwnd", bytes}});
  }

  double weight() const { return weight_; }

 private:
  using VarBindings = std::vector<std::pair<std::string, double>>;

  std::shared_ptr<State> state_;
  double weight_;
  FlowControl* flow_ = nullptr;
  double share_ = 2 * 1460.0;
};

/// Shared group state: the aggregate AIMD law and the member roster.
struct AggregateGroup::State {
  explicit State(AggregateConfig cfg)
      : config(cfg),
        cwnd(cfg.init_cwnd_bytes),
        ssthresh(std::numeric_limits<double>::max()) {}

  void add_member(Member* member) {
    reported_this_round[member] = false;
    redistribute();
  }

  void remove_member(Member* member) { reported_this_round.erase(member); }

  void on_member_report(Member* member, double acked_bytes) {
    if (acked_bytes > 0) round_acked += acked_bytes;
    reported_this_round[member] = true;
    const bool all_reported = std::all_of(
        reported_this_round.begin(), reported_this_round.end(),
        [](const auto& kv) { return kv.second; });
    if (!all_reported) return;
    for (auto& [m, seen] : reported_this_round) seen = false;
    ++rounds_seen;

    if (round_acked <= 0) return;
    if (cwnd < ssthresh) {
      cwnd += std::min(round_acked, cwnd);  // aggregate slow start
      if (cwnd > ssthresh) cwnd = ssthresh;
    } else {
      cwnd += round_acked * config.mss / cwnd;  // aggregate AIMD
    }
    round_acked = 0;
    redistribute();
  }

  void on_member_loss() {
    // One reduction per episode, across the whole group (see
    // Reno::on_urgent for the two-round guard rationale).
    if (rounds_seen < next_cut_allowed) return;
    next_cut_allowed = rounds_seen + 2;
    ++loss_episodes;
    ssthresh = std::max(cwnd / 2.0, config.min_cwnd_bytes);
    cwnd = ssthresh;
    redistribute();
  }

  void on_member_timeout() {
    next_cut_allowed = rounds_seen + 2;
    ++loss_episodes;
    ssthresh = std::max(cwnd / 2.0, config.min_cwnd_bytes);
    cwnd = std::max(config.min_cwnd_bytes, 2.0 * config.mss);
    redistribute();
  }

  void redistribute() {
    if (reported_this_round.empty()) return;
    double total_weight = 0;
    for (const auto& [member, seen] : reported_this_round) {
      total_weight += member->weight();
    }
    if (total_weight <= 0) return;
    for (auto& [member, seen] : reported_this_round) {
      member->set_share(
          std::max(cwnd * member->weight() / total_weight, 2.0 * config.mss));
    }
  }

  AggregateConfig config;
  double cwnd;
  double ssthresh;
  double round_acked = 0;
  uint64_t rounds_seen = 0;
  uint64_t next_cut_allowed = 0;
  uint64_t loss_episodes = 0;
  std::map<Member*, bool> reported_this_round;
};

AggregateGroup::Member::~Member() { state_->remove_member(this); }

void AggregateGroup::Member::init(FlowControl& flow) {
  flow_ = &flow;
  // Install first so $cwnd exists before the group pushes shares.
  flow.install_text(kMemberProgram, VarBindings{{"cwnd", share_}});
  state_->add_member(this);
}

void AggregateGroup::Member::on_measurement(FlowControl&, const Measurement& m) {
  state_->on_member_report(this, m.get("acked"));
}

void AggregateGroup::Member::on_urgent(FlowControl&, ipc::UrgentKind kind,
                                       const Measurement&) {
  if (kind == ipc::UrgentKind::Timeout) {
    state_->on_member_timeout();
  } else if (kind == ipc::UrgentKind::Loss || kind == ipc::UrgentKind::Ecn) {
    state_->on_member_loss();
  }
}

AggregateGroup::AggregateGroup(AggregateConfig config)
    : state_(std::make_shared<State>(config)) {}

AggregateGroup::~AggregateGroup() = default;

AlgorithmFactory AggregateGroup::member_factory(double weight) {
  return [state = state_, weight](const FlowInfo&) {
    return std::make_unique<Member>(state, weight);
  };
}

double AggregateGroup::aggregate_cwnd_bytes() const { return state_->cwnd; }
size_t AggregateGroup::num_members() const {
  return state_->reported_this_round.size();
}
uint64_t AggregateGroup::loss_episodes() const { return state_->loss_episodes; }

}  // namespace ccp::agent
