#include "agent/agent.hpp"

#include <utility>

#include "lang/error.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "lang/sema.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace ccp::agent {

namespace {

/// Applies host policy by rewriting the program AST: every Rate(x)
/// becomes Rate(min(x, cap)) and every Cwnd(x) becomes
/// Cwnd(min(max(x, lo), hi)). The clamps travel *with* the program into
/// the datapath, so policy holds even between agent round trips.
void apply_policy(lang::Program& prog, const Policy& policy) {
  for (auto& instr : prog.control) {
    if (instr.op == lang::ControlInstr::Op::SetRate && policy.max_rate_bps) {
      instr.arg = prog.arena.add_binary(lang::BinaryOp::Min, instr.arg,
                                        prog.arena.add_const(*policy.max_rate_bps));
    }
    if (instr.op == lang::ControlInstr::Op::SetCwnd) {
      if (policy.min_cwnd_bytes) {
        instr.arg = prog.arena.add_binary(lang::BinaryOp::Max, instr.arg,
                                          prog.arena.add_const(*policy.min_cwnd_bytes));
      }
      if (policy.max_cwnd_bytes) {
        instr.arg = prog.arena.add_binary(lang::BinaryOp::Min, instr.arg,
                                          prog.arena.add_const(*policy.max_cwnd_bytes));
      }
    }
  }
}

double clamp_opt(double v, const std::optional<double>& lo,
                 const std::optional<double>& hi) {
  if (lo && v < *lo) v = *lo;
  if (hi && v > *hi) v = *hi;
  return v;
}

}  // namespace

double Measurement::get(std::string_view name, double fallback) const {
  if (names_ == nullptr) return fallback;
  for (size_t i = 0; i < names_->size() && i < msg_->fields.size(); ++i) {
    if ((*names_)[i] == name) return msg_->fields[i];
  }
  return fallback;
}

bool Measurement::has(std::string_view name) const {
  if (names_ == nullptr) return false;
  for (size_t i = 0; i < names_->size() && i < msg_->fields.size(); ++i) {
    if ((*names_)[i] == name) return true;
  }
  return false;
}

std::vector<PktSample> Measurement::samples() const {
  std::vector<PktSample> out;
  if (!msg_->is_vector) return out;
  constexpr size_t kFields = 6;
  const size_t n = msg_->fields.size() / kFields;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double* f = msg_->fields.data() + i * kFields;
    out.push_back(PktSample{f[0], f[1], f[2], f[3], f[4], f[5]});
  }
  return out;
}

/// Per-flow bookkeeping in the agent: the algorithm instance, the field
/// names of the installed program (to decode positional reports), and the
/// FlowControl implementation handed to the algorithm.
class CcpAgent::FlowEntry final : public FlowControl {
 public:
  FlowEntry(CcpAgent* agent, FlowInfo info, std::unique_ptr<Algorithm> alg,
            bool supports_programs)
      : agent_(agent),
        info_(info),
        alg_(std::move(alg)),
        supports_programs_(supports_programs) {}

  Algorithm& alg() { return *alg_; }
  const std::vector<std::string>& field_names() const { return field_names_; }

  /// Install round-trip bookkeeping: do_install() stamps, the first
  /// report that arrives afterwards closes the loop (there is no
  /// install-ack message; the next report proves the program is live).
  uint64_t take_install_sent_ns() {
    const uint64_t t = install_sent_ns_;
    install_sent_ns_ = 0;
    return t;
  }

  // --- FlowControl ---

  const FlowInfo& info() const override { return info_; }

  void install(const lang::Program& program,
               std::span<const std::pair<std::string, double>> vars) override {
    // Copy so policy rewriting does not mutate the caller's AST.
    lang::Program rewritten = program;
    do_install(std::move(rewritten), vars);
  }

  void install_text(std::string program_text,
                    std::span<const std::pair<std::string, double>> vars) override {
    do_install(lang::parse_program(program_text), vars);
  }

  void update_fields(std::span<const std::pair<std::string, double>> vars) override {
    if (!supports_programs_) {
      // Refresh the remembered bindings, then issue direct commands.
      for (const auto& [name, value] : vars) {
        for (size_t i = 0; i < installed_var_names_.size(); ++i) {
          if (installed_var_names_[i] == name) {
            last_var_values_[i] = value;
            break;
          }
        }
      }
      translate_to_direct(vars);
      return;
    }
    ipc::UpdateFieldsMsg msg;
    msg.flow_id = info_.id;
    msg.var_values.assign(installed_var_names_.size(), 0.0);
    for (size_t i = 0; i < installed_var_names_.size(); ++i) {
      bool found = false;
      for (const auto& [name, value] : vars) {
        if (name == installed_var_names_[i]) {
          msg.var_values[i] = value;
          found = true;
          break;
        }
      }
      if (!found) msg.var_values[i] = last_var_values_[i];
    }
    last_var_values_ = msg.var_values;
    agent_->stamp_span(msg.span);
    agent_->send(ipc::Message(std::move(msg)));
  }

  void set_cwnd(double bytes) override {
    ipc::DirectControlMsg msg;
    msg.flow_id = info_.id;
    msg.cwnd_bytes = clamp_opt(bytes, agent_->config_.policy.min_cwnd_bytes,
                               agent_->config_.policy.max_cwnd_bytes);
    agent_->stamp_span(msg.span);
    agent_->send(msg);
  }

  void set_rate(double bps) override {
    ipc::DirectControlMsg msg;
    msg.flow_id = info_.id;
    msg.rate_bps = clamp_opt(bps, std::nullopt, agent_->config_.policy.max_rate_bps);
    agent_->stamp_span(msg.span);
    agent_->send(msg);
  }

  void set_vector_mode(bool enabled) override {
    vector_mode_requested_ = enabled;
  }
  bool vector_mode_requested() const { return vector_mode_requested_; }

 private:
  /// Capability translation for program-less datapaths (§2.1: "it is
  /// also possible to support programs purely by issuing commands from
  /// the CCP each RTT"): by convention, algorithm programs bind their
  /// window as $cwnd (or $cwnd_cap) and their rate as $rate; those
  /// bindings become DirectControl commands. Everything else the program
  /// would have computed is lost — the fidelity cost of a limited
  /// datapath, quantified by bench_datapath_capability.
  void translate_to_direct(std::span<const std::pair<std::string, double>> vars) {
    ipc::DirectControlMsg msg;
    msg.flow_id = info_.id;
    for (const auto& [name, value] : vars) {
      if (name == "cwnd") {
        msg.cwnd_bytes = clamp_opt(value, agent_->config_.policy.min_cwnd_bytes,
                                   agent_->config_.policy.max_cwnd_bytes);
      } else if (name == "cwnd_cap" && !msg.cwnd_bytes.has_value()) {
        msg.cwnd_bytes = clamp_opt(value, agent_->config_.policy.min_cwnd_bytes,
                                   agent_->config_.policy.max_cwnd_bytes);
      } else if (name == "rate") {
        msg.rate_bps =
            clamp_opt(value, std::nullopt, agent_->config_.policy.max_rate_bps);
      }
    }
    if (msg.cwnd_bytes.has_value() || msg.rate_bps.has_value()) {
      agent_->stamp_span(msg.span);
      agent_->send(msg);
    }
  }

  void do_install(lang::Program prog,
                  std::span<const std::pair<std::string, double>> vars) {
    if (!supports_programs_) {
      // Limited datapath: fixed report layout, direct control only.
      field_names_ = ipc::prototype_field_names();
      installed_var_names_.clear();
      for (const auto& [name, value] : vars) {
        installed_var_names_.push_back(name);
      }
      last_var_values_.clear();
      for (const auto& [name, value] : vars) last_var_values_.push_back(value);
      translate_to_direct(vars);
      return;
    }
    apply_policy(prog, agent_->config_.policy);
    // Reject bad programs here, before they ever reach the datapath.
    lang::check_or_throw(prog);

    ipc::InstallMsg msg;
    msg.flow_id = info_.id;
    msg.program_text = lang::print_program(prog);
    msg.vector_mode = vector_mode_requested_;
    for (const auto& [name, value] : vars) {
      msg.var_names.push_back(name);
      msg.var_values.push_back(value);
    }

    // Remember layout for decoding subsequent reports. Crucially,
    // installed_var_names_ must follow the *program's* variable order
    // (prog.vars), because UpdateFieldsMsg is positional in that order —
    // not in whatever order the algorithm happened to list bindings.
    field_names_.clear();
    for (const auto& reg : prog.folds) field_names_.push_back(reg.name);
    installed_var_names_ = prog.vars;
    last_var_values_.assign(installed_var_names_.size(), 0.0);
    for (size_t i = 0; i < installed_var_names_.size(); ++i) {
      for (const auto& [name, value] : vars) {
        if (name == installed_var_names_[i]) {
          last_var_values_[i] = value;
          break;
        }
      }
    }

    ++agent_->stats_.installs_sent;
    if (telemetry::enabled()) {
      telemetry::metrics().agent_installs.inc();
      install_sent_ns_ = telemetry::now_ns();
      msg.emitted_ns = install_sent_ns_;
      telemetry::trace(telemetry::TraceKind::InstallSent, info_.id, 0.0);
    }
    agent_->stamp_span(msg.span);
    agent_->send(ipc::Message(std::move(msg)));
  }

  CcpAgent* agent_;
  FlowInfo info_;
  std::unique_ptr<Algorithm> alg_;
  bool supports_programs_;
  std::vector<std::string> field_names_;
  std::vector<std::string> installed_var_names_;
  std::vector<double> last_var_values_;
  bool vector_mode_requested_ = false;
  uint64_t install_sent_ns_ = 0;
};

CcpAgent::CcpAgent(AgentConfig config, FrameTx tx)
    : config_(std::move(config)), tx_(std::move(tx)) {}

CcpAgent::~CcpAgent() = default;

void CcpAgent::register_algorithm(const std::string& name, AlgorithmFactory factory) {
  registry_[name] = std::move(factory);
}

Algorithm* CcpAgent::algorithm(ipc::FlowId id) {
  auto* slot = flows_.find(id);
  return slot == nullptr ? nullptr : &(*slot)->alg();
}

void CcpAgent::send(const ipc::Message& msg) {
  send_enc_.clear();
  ipc::encode_frame_into(send_enc_, msg);
  tx_(send_enc_.buffer());
}

void CcpAgent::stamp_span(telemetry::SpanStamp& span) {
  if (current_span_.span_id == 0) return;
  span = current_span_;
  span.agent_send_ns = telemetry::now_ns();
}

void CcpAgent::handle_frame(std::span<const uint8_t> frame) {
  const bool use_scratch = !rx_busy_;
  std::vector<ipc::Message> local;
  std::vector<ipc::Message>& msgs = use_scratch ? rx_scratch_ : local;
  if (use_scratch) rx_busy_ = true;
  size_t n_msgs = 0;
  try {
    n_msgs = ipc::decode_frame_into(frame, msgs);
  } catch (const ipc::WireError& e) {
    if (use_scratch) rx_busy_ = false;
    ++stats_.decode_errors;
    if (telemetry::enabled()) telemetry::metrics().agent_decode_errors.inc();
    CCP_WARN("agent: dropping malformed frame: %s", e.what());
    return;
  }
  for (size_t i = 0; i < n_msgs; ++i) {
    const auto& msg = msgs[i];
    std::visit(
        [this](const auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, ipc::CreateMsg>) on_create(m);
          else if constexpr (std::is_same_v<T, ipc::MeasurementMsg>) on_measurement(m);
          else if constexpr (std::is_same_v<T, ipc::UrgentMsg>) on_urgent(m);
          else if constexpr (std::is_same_v<T, ipc::FlowCloseMsg>) on_close(m);
          else if constexpr (std::is_same_v<T, ipc::FlowSummaryMsg>) on_flow_summary(m);
          else {
            CCP_WARN("agent: unexpected message type from datapath");
          }
        },
        msg);
  }
  if (use_scratch) rx_busy_ = false;
}

void CcpAgent::on_create(const ipc::CreateMsg& msg) {
  const std::string& alg_name =
      msg.alg_hint.empty() ? config_.default_algorithm : msg.alg_hint;
  auto factory_it = registry_.find(alg_name);
  if (factory_it == registry_.end()) {
    ++stats_.unknown_algorithm;
    CCP_WARN("agent: no algorithm '%s' registered for flow %u; flow will run the "
             "datapath default program",
             alg_name.c_str(), msg.flow_id);
    return;
  }
  FlowInfo info;
  info.id = msg.flow_id;
  info.mss = msg.mss;
  info.init_cwnd_bytes = msg.init_cwnd_bytes;

  auto entry = std::make_unique<FlowEntry>(this, info, factory_it->second(info),
                                           msg.supports_programs);
  FlowEntry& ref = *entry;
  flows_.insert_or_assign(msg.flow_id, std::move(entry));
  ++stats_.flows_created;
  try {
    ref.alg().init(ref);
  } catch (const lang::ProgramError& e) {
    CCP_ERROR("agent: algorithm '%s' failed to initialize flow %u: %s",
              alg_name.c_str(), msg.flow_id, e.what());
  }
}

void CcpAgent::on_flow_summary(const ipc::FlowSummaryMsg& msg) {
  if (expected_resync_token_ != 0 && msg.token != expected_resync_token_) {
    return;  // replay from a superseded resync request
  }
  if (flows_.find(msg.flow_id) != nullptr) {
    return;  // flow already known; our state is fresher than the replay
  }
  const std::string& alg_name =
      msg.alg_hint.empty() ? config_.default_algorithm : msg.alg_hint;
  auto factory_it = registry_.find(alg_name);
  if (factory_it == registry_.end()) {
    ++stats_.unknown_algorithm;
    CCP_WARN("agent: no algorithm '%s' registered for resynced flow %u",
             alg_name.c_str(), msg.flow_id);
    return;
  }
  FlowInfo info;
  info.id = msg.flow_id;
  info.mss = msg.mss;
  // Resume near where the flow actually is (the live enforced window),
  // not from the original init_cwnd — a restarted agent must not reset
  // every flow to slow start.
  info.init_cwnd_bytes = msg.cwnd_bytes != 0 ? msg.cwnd_bytes : 10 * msg.mss;

  auto entry = std::make_unique<FlowEntry>(this, info, factory_it->second(info),
                                           /*supports_programs=*/true);
  FlowEntry& ref = *entry;
  flows_.insert_or_assign(msg.flow_id, std::move(entry));
  ++stats_.flows_resynced;
  if (telemetry::enabled()) telemetry::metrics().agent_flows_resynced.inc();
  try {
    // init() installs the algorithm's program, which is what pulls the
    // flow out of the datapath's safe-mode fallback.
    ref.alg().init(ref);
  } catch (const lang::ProgramError& e) {
    CCP_ERROR("agent: algorithm '%s' failed to resync flow %u: %s",
              alg_name.c_str(), msg.flow_id, e.what());
  }
}

void CcpAgent::on_measurement(const ipc::MeasurementMsg& msg) {
  auto* slot = flows_.find(msg.flow_id);
  if (slot == nullptr) {
    ++stats_.unknown_flow_msgs;
    if (telemetry::enabled()) telemetry::metrics().agent_unknown_flow.inc();
    return;
  }
  ++stats_.measurements;
  FlowEntry& entry = **slot;
  uint64_t t0 = 0;
  if (telemetry::enabled()) {
    auto& tm = telemetry::metrics();
    tm.agent_measurements.inc();
    t0 = telemetry::now_ns();
    // One clock read covers both: report->handler latency ends where the
    // handler-duration window begins.
    if (msg.emitted_ns != 0 && t0 > msg.emitted_ns) {
      tm.report_latency_ns.record(t0 - msg.emitted_ns);
    }
    if (const uint64_t sent = entry.take_install_sent_ns();
        sent != 0 && t0 > sent) {
      tm.install_rtt_ns.record(t0 - sent);
    }
    telemetry::trace(telemetry::TraceKind::Measurement, msg.flow_id,
                     static_cast<double>(msg.report_seq));
    // Open the span context for the handler: any command the algorithm
    // issues from on_measurement inherits this report's span.
    current_span_.span_id = msg.span_id;
    current_span_.emit_ns = msg.emitted_ns;
    current_span_.agent_recv_ns = t0;
  }
  Measurement m(&entry.field_names(), &msg);
  entry.alg().on_measurement(entry, m);
  current_span_ = telemetry::SpanStamp{};
  if (t0 != 0) {
    telemetry::metrics().agent_measurement_handler_ns.record(
        telemetry::now_ns() - t0);
  }
}

void CcpAgent::on_urgent(const ipc::UrgentMsg& msg) {
  auto* slot = flows_.find(msg.flow_id);
  if (slot == nullptr) {
    ++stats_.unknown_flow_msgs;
    if (telemetry::enabled()) telemetry::metrics().agent_unknown_flow.inc();
    return;
  }
  ++stats_.urgents;
  uint64_t t0 = 0;
  if (telemetry::enabled()) {
    auto& tm = telemetry::metrics();
    tm.agent_urgents.inc();
    t0 = telemetry::now_ns();
    if (msg.emitted_ns != 0 && t0 > msg.emitted_ns) {
      tm.urgent_latency_ns.record(t0 - msg.emitted_ns);
    }
    current_span_.span_id = msg.span_id;
    current_span_.emit_ns = msg.emitted_ns;
    current_span_.agent_recv_ns = t0;
  }
  FlowEntry& entry = **slot;
  // Urgent snapshots share the fold layout with measurements. The view
  // struct is a reused member: fields are copied (capacity reused), not
  // reallocated, per urgent.
  urgent_view_.flow_id = msg.flow_id;
  urgent_view_.fields.assign(msg.fields.begin(), msg.fields.end());
  Measurement m(&entry.field_names(), &urgent_view_);
  entry.alg().on_urgent(entry, msg.kind, m);
  current_span_ = telemetry::SpanStamp{};
  if (t0 != 0) {
    telemetry::metrics().agent_urgent_handler_ns.record(telemetry::now_ns() - t0);
  }
}

void CcpAgent::on_close(const ipc::FlowCloseMsg& msg) {
  if (flows_.erase(msg.flow_id) > 0) ++stats_.flows_closed;
}

}  // namespace ccp::agent
