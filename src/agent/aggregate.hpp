// Aggregate congestion control: one controller for a *group* of flows
// sharing a bottleneck.
//
// §5 of the paper: "CCP makes it possible to implement congestion
// control outside the sending hosts, for example to manage congestion
// for groups of flows that share common bottlenecks. Such offloads could
// allow efficient use of shared resources." §4 relates this to the
// Congestion Manager (CM) — but unlike CM, the controller here lives in
// the agent, off the datapath, and uses the ordinary CCP per-flow API:
// each member flow runs a normal window program; the group divides one
// aggregate AIMD window among members by weight.
//
// The observable consequence (tested and benched): N flows in one group
// compete like ONE flow against outside traffic, instead of taking N
// shares — CM's ensemble-sharing behavior, recreated in ~150 lines of
// user-space code on top of the unchanged datapath API.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "agent/algorithm.hpp"

namespace ccp::agent {

struct AggregateConfig {
  double init_cwnd_bytes = 10 * 1460.0;
  double min_cwnd_bytes = 4 * 1460.0;  // the group floor (>= 2 MSS per member)
  double mss = 1460.0;
};

/// Shared state for one group of flows. Create one per bottleneck/group,
/// register `member_factory()` with the agent under a name, and give
/// every member flow that algorithm name.
class AggregateGroup {
 public:
  explicit AggregateGroup(AggregateConfig config = {});
  ~AggregateGroup();

  AggregateGroup(const AggregateGroup&) = delete;
  AggregateGroup& operator=(const AggregateGroup&) = delete;

  /// Factory producing member algorithms bound to this group's shared
  /// state (held by shared_ptr, so the group handle and the agent's
  /// flows may be destroyed in any order).
  AlgorithmFactory member_factory(double weight = 1.0);

  double aggregate_cwnd_bytes() const;
  size_t num_members() const;
  uint64_t loss_episodes() const;

 private:
  class Member;
  struct State;

  std::shared_ptr<State> state_;
};

}  // namespace ccp::agent
