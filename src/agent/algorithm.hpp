// The congestion control algorithm API (Table 3 of the paper):
//
//   Init(seq, flow)    -> Algorithm::init()
//   OnMeasurement(m)   -> Algorithm::on_measurement()
//   OnUrgent(type)     -> Algorithm::on_urgent()
//   Install(p)         -> FlowControl::install() / install_text()
//
// Algorithms run in the agent (user space), never on the datapath fast
// path. They receive batched measurements once or a few times per RTT and
// program the datapath with control programs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ipc/message.hpp"
#include "lang/ast.hpp"

namespace ccp::agent {

/// Static facts about a flow, delivered at Init time.
struct FlowInfo {
  ipc::FlowId id = 0;
  uint32_t mss = 1500;
  uint64_t init_cwnd_bytes = 0;
};

/// One per-ACK sample from a vector-mode report (§2.4, first approach).
struct PktSample {
  double rtt_us = 0;
  double bytes_acked = 0;
  double lost = 0;
  double ecn = 0;
  double snd_rate_bps = 0;
  double rcv_rate_bps = 0;
};

/// A batched measurement as seen by the algorithm: fold registers by
/// name, or a vector of per-ACK samples, depending on the installed
/// program's batching mode.
class Measurement {
 public:
  Measurement(const std::vector<std::string>* field_names,
              const ipc::MeasurementMsg* msg)
      : names_(field_names), msg_(msg) {}

  uint64_t report_seq() const { return msg_->report_seq; }
  uint32_t num_acks() const { return msg_->num_acks_folded; }
  bool is_vector() const { return msg_->is_vector; }

  /// Fold register by name; `fallback` if absent (e.g. after reinstall).
  double get(std::string_view name, double fallback = 0.0) const;
  bool has(std::string_view name) const;

  /// Raw fields, positionally (fold order / flattened samples).
  const std::vector<double>& raw() const { return msg_->fields; }

  /// Vector-mode access; empty unless is_vector().
  std::vector<PktSample> samples() const;

 private:
  const std::vector<std::string>* names_;
  const ipc::MeasurementMsg* msg_;
};

/// Handle an algorithm uses to program the datapath for one flow.
/// Implemented by the agent; all calls route through the policy layer.
class FlowControl {
 public:
  virtual ~FlowControl() = default;

  virtual const FlowInfo& info() const = 0;

  /// Installs a program built with lang::ProgramBuilder (or hand-built
  /// AST). Variables are bound by name.
  virtual void install(const lang::Program& program,
                       std::span<const std::pair<std::string, double>> vars) = 0;

  /// Installs program text directly.
  virtual void install_text(std::string program_text,
                            std::span<const std::pair<std::string, double>> vars) = 0;

  /// Rebinds the installed program's variables (cheap, keeps fold state).
  virtual void update_fields(std::span<const std::pair<std::string, double>> vars) = 0;

  /// One-shot overrides (Figure 1's CWND(c)/RATE(r) arrows).
  virtual void set_cwnd(double bytes) = 0;
  virtual void set_rate(double bytes_per_sec) = 0;

  /// Ask the datapath for vector-of-measurements reports (§2.4).
  virtual void set_vector_mode(bool enabled) = 0;
};

/// Declarative capability description, used to regenerate Table 1.
struct AlgorithmTraits {
  std::vector<std::string> measurements;  // e.g. {"RTT", "Loss"}
  std::vector<std::string> control_knobs; // e.g. {"CWND"} or {"Rate"}
};

/// Base class for congestion control algorithms (one instance per flow).
class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual std::string_view name() const = 0;
  virtual AlgorithmTraits traits() const = 0;

  /// Called once when the flow appears. Install the initial program here.
  virtual void init(FlowControl& flow) = 0;

  /// A batched report arrived.
  virtual void on_measurement(FlowControl& flow, const Measurement& m) = 0;

  /// An urgent event arrived (loss, timeout, ECN, urgent fold change).
  /// `m` is the fold snapshot at the event.
  virtual void on_urgent(FlowControl& flow, ipc::UrgentKind kind,
                         const Measurement& m) = 0;
};

using AlgorithmFactory =
    std::function<std::unique_ptr<Algorithm>(const FlowInfo& info)>;

}  // namespace ccp::agent
