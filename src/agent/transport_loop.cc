#include "agent/transport_loop.hpp"

namespace ccp::agent {

TransportLoop::TransportLoop(ipc::Transport& transport, FrameHandler handler)
    : transport_(transport), handler_(std::move(handler)) {
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

TransportLoop::~TransportLoop() { stop(); }

void TransportLoop::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void TransportLoop::run() {
  // Short timeout so stop() is honored promptly without a wakeup channel.
  const Duration poll_interval = Duration::from_millis(10);
  while (!stop_.load(std::memory_order_acquire)) {
    auto frame = transport_.recv_frame(poll_interval);
    if (frame.has_value()) {
      handler_(*frame);
      // A burst usually arrives together (one flush covers many flows);
      // drain the backlog in one batch before sleeping again.
      transport_.drain_frames(handler_);
      continue;
    }
    if (transport_.closed()) break;
  }
  running_.store(false, std::memory_order_release);
}

}  // namespace ccp::agent
