#include "agent/transport_loop.hpp"

#include <chrono>

#include "ipc/lanes.hpp"

namespace ccp::agent {

TransportLoop::TransportLoop(ipc::Transport& transport, FrameHandler handler)
    : transport_(transport), handler_(std::move(handler)) {
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

TransportLoop::~TransportLoop() { stop(); }

void TransportLoop::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void TransportLoop::run() {
  // Short timeout so stop() is honored promptly without a wakeup channel.
  const Duration poll_interval = Duration::from_millis(10);
  while (!stop_.load(std::memory_order_acquire)) {
    auto frame = transport_.recv_frame(poll_interval);
    if (frame.has_value()) {
      handler_(*frame);
      // A burst usually arrives together (one flush covers many flows);
      // drain the backlog in one batch before sleeping again.
      transport_.drain_frames(handler_);
      continue;
    }
    if (transport_.closed()) break;
  }
  running_.store(false, std::memory_order_release);
}

MultiLaneLoop::MultiLaneLoop(
    std::span<const std::unique_ptr<ipc::Transport>> lanes,
    LaneFrameHandler handler)
    : lanes_(lanes), handler_(std::move(handler)) {
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

MultiLaneLoop::~MultiLaneLoop() { stop(); }

void MultiLaneLoop::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void MultiLaneLoop::run() {
  // recv_frame on one lane would block the others, so this loop is
  // poll-based: drain every lane (round-robin start, so a hot lane 0
  // can't starve lane 7), then back off when all were idle. The backoff
  // adapts — 50 µs after the first idle round, doubling to 1 ms while
  // the lanes stay quiet — so an idle multi-lane agent stops burning
  // CPU, yet a busy loop never sleeps and a briefly-idle one wakes fast.
  AdaptiveBackoff backoff;
  size_t first_lane = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    const size_t n = ipc::drain_lanes(lanes_, handler_, first_lane);
    first_lane = lanes_.empty() ? 0 : (first_lane + 1) % lanes_.size();
    if (n == 0) {
      bool all_closed = !lanes_.empty();
      for (const auto& lane : lanes_) {
        if (!lane->closed()) { all_closed = false; break; }
      }
      if (all_closed) break;
      std::this_thread::sleep_for(backoff.next());
    } else {
      backoff.reset();
    }
  }
  running_.store(false, std::memory_order_release);
}

}  // namespace ccp::agent
