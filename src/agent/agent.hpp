// The CCP agent: the user-space "glue" between congestion control
// algorithms and datapaths (§2). It demultiplexes datapath messages to
// per-flow algorithm instances, ships Install/UpdateFields/DirectControl
// commands back, and imposes host policy (per-connection rate/cwnd caps)
// on every decision an algorithm makes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "agent/algorithm.hpp"
#include "ipc/wire.hpp"
#include "util/flat_map.hpp"

namespace ccp::agent {

/// Host policy applied to all algorithm decisions (§2: "imposes policies
/// on the decisions of the congestion control algorithms, e.g.,
/// per-connection maximum transmission rates").
struct Policy {
  std::optional<double> max_rate_bps;
  std::optional<double> max_cwnd_bytes;
  std::optional<double> min_cwnd_bytes;
};

struct AgentConfig {
  std::string default_algorithm = "reno";
  Policy policy;
};

struct AgentStats {
  uint64_t flows_created = 0;
  uint64_t flows_closed = 0;
  uint64_t measurements = 0;
  uint64_t urgents = 0;
  uint64_t installs_sent = 0;
  uint64_t decode_errors = 0;
  uint64_t unknown_flow_msgs = 0;
  uint64_t unknown_algorithm = 0;
  uint64_t flows_resynced = 0;  // rebuilt from replayed FlowSummary msgs
};

class CcpAgent {
 public:
  /// Outgoing-frame callback; bytes are borrowed (copy to keep).
  using FrameTx = std::function<void(std::span<const uint8_t>)>;

  CcpAgent(AgentConfig config, FrameTx tx);
  ~CcpAgent();

  /// Registers an algorithm under `name`. Flows whose Create carries that
  /// name as alg_hint (or the configured default) use this factory.
  void register_algorithm(const std::string& name, AlgorithmFactory factory);

  /// Feeds one frame from the datapath. Malformed frames are dropped.
  void handle_frame(std::span<const uint8_t> frame);

  const AgentStats& stats() const { return stats_; }
  size_t num_flows() const { return flows_.size(); }

  /// Resync filter: accept replayed FlowSummary messages only when they
  /// echo `token` (the supervisor's connection generation). Summaries
  /// from a superseded request are dropped. Zero = accept any token.
  void expect_resync(uint64_t token) { expected_resync_token_ = token; }

  /// Algorithm instance for a flow (tests/introspection); null if absent.
  Algorithm* algorithm(ipc::FlowId id);

 private:
  class FlowEntry;

  void on_create(const ipc::CreateMsg& msg);
  void on_measurement(const ipc::MeasurementMsg& msg);
  void on_urgent(const ipc::UrgentMsg& msg);
  void on_close(const ipc::FlowCloseMsg& msg);
  void on_flow_summary(const ipc::FlowSummaryMsg& msg);
  void send(const ipc::Message& msg);
  /// Copies the active control-loop span (the report/urgent currently
  /// being handled) onto an outgoing command, stamping the send time.
  /// No-op outside a handler or when the report carried no span.
  void stamp_span(telemetry::SpanStamp& span);

  AgentConfig config_;
  FrameTx tx_;
  std::map<std::string, AlgorithmFactory> registry_;  // cold: lookups at Create only
  util::FlatMap<ipc::FlowId, std::unique_ptr<FlowEntry>> flows_;
  AgentStats stats_;
  uint64_t expected_resync_token_ = 0;  // 0 = accept any

  // Hot-path scratch, reused across frames (see CcpDatapath for the
  // reentrancy discipline around rx_busy_).
  ipc::Encoder send_enc_;
  std::vector<ipc::Message> rx_scratch_;
  bool rx_busy_ = false;
  ipc::MeasurementMsg urgent_view_;  // urgent fields presented as a measurement

  // Span context of the report/urgent being handled right now; zero
  // span_id outside handlers. Commands issued from inside a handler
  // inherit it via stamp_span(), which is what links a datapath report
  // to the command it provoked.
  telemetry::SpanStamp current_span_;

  friend class FlowEntry;
};

}  // namespace ccp::agent
