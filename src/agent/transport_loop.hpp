// Thread that pumps frames from a Transport into a handler. Used to run
// the agent (or a datapath) against a real OS transport; the simulator
// does not need this (it delivers frames through its event queue).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <thread>

#include "ipc/transport.hpp"

namespace ccp::agent {

class TransportLoop {
 public:
  using FrameHandler = std::function<void(std::span<const uint8_t>)>;

  /// Starts a thread that calls `handler` for every received frame until
  /// stop() or the peer closes. The transport must outlive the loop.
  TransportLoop(ipc::Transport& transport, FrameHandler handler);
  ~TransportLoop();

  TransportLoop(const TransportLoop&) = delete;
  TransportLoop& operator=(const TransportLoop&) = delete;

  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void run();

  ipc::Transport& transport_;
  FrameHandler handler_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

/// Thread that pumps frames from every lane of a sharded datapath into
/// one handler — the agent's multi-lane ingest. Every shard's reports
/// funnel through this single thread, so the paper's one-agent
/// serialization point (one OnMeasurement at a time) survives sharding;
/// only the datapath side is parallel. Lanes are drained round-robin
/// from a rotating start so no lane starves the rest.
class MultiLaneLoop {
 public:
  /// `handler` receives (lane index, frame). The lane transports must
  /// outlive the loop.
  using LaneFrameHandler =
      std::function<void(size_t lane, std::span<const uint8_t>)>;

  MultiLaneLoop(std::span<const std::unique_ptr<ipc::Transport>> lanes,
                LaneFrameHandler handler);
  ~MultiLaneLoop();

  MultiLaneLoop(const MultiLaneLoop&) = delete;
  MultiLaneLoop& operator=(const MultiLaneLoop&) = delete;

  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void run();

  std::span<const std::unique_ptr<ipc::Transport>> lanes_;
  LaneFrameHandler handler_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace ccp::agent
