// Thread that pumps frames from a Transport into a handler. Used to run
// the agent (or a datapath) against a real OS transport; the simulator
// does not need this (it delivers frames through its event queue).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <thread>

#include "ipc/transport.hpp"

namespace ccp::agent {

/// Adaptive idle backoff for poll loops: starts at `floor`, doubles on
/// every consecutive idle round up to `cap`, and resets to the floor the
/// moment work arrives. A briefly-idle loop stays responsive (first
/// sleeps are 50 µs) while a long-idle one converges to ~1 ms sleeps —
/// roughly 20x less wakeup CPU than a fixed 50 µs poll.
class AdaptiveBackoff {
 public:
  explicit AdaptiveBackoff(
      std::chrono::microseconds floor = std::chrono::microseconds(50),
      std::chrono::microseconds cap = std::chrono::microseconds(1000))
      : floor_(floor), cap_(cap), current_(floor) {}

  /// The delay to sleep for this idle round; doubles the next one.
  std::chrono::microseconds next() {
    const auto delay = current_;
    current_ = std::min(current_ * 2, cap_);
    return delay;
  }

  /// Call when work was found: the next idle sleep restarts at the floor.
  void reset() { current_ = floor_; }

  std::chrono::microseconds current() const { return current_; }

 private:
  std::chrono::microseconds floor_;
  std::chrono::microseconds cap_;
  std::chrono::microseconds current_;
};

class TransportLoop {
 public:
  using FrameHandler = std::function<void(std::span<const uint8_t>)>;

  /// Starts a thread that calls `handler` for every received frame until
  /// stop() or the peer closes. The transport must outlive the loop.
  TransportLoop(ipc::Transport& transport, FrameHandler handler);
  ~TransportLoop();

  TransportLoop(const TransportLoop&) = delete;
  TransportLoop& operator=(const TransportLoop&) = delete;

  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void run();

  ipc::Transport& transport_;
  FrameHandler handler_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

/// Thread that pumps frames from every lane of a sharded datapath into
/// one handler — the agent's multi-lane ingest. Every shard's reports
/// funnel through this single thread, so the paper's one-agent
/// serialization point (one OnMeasurement at a time) survives sharding;
/// only the datapath side is parallel. Lanes are drained round-robin
/// from a rotating start so no lane starves the rest.
class MultiLaneLoop {
 public:
  /// `handler` receives (lane index, frame). The lane transports must
  /// outlive the loop.
  using LaneFrameHandler =
      std::function<void(size_t lane, std::span<const uint8_t>)>;

  MultiLaneLoop(std::span<const std::unique_ptr<ipc::Transport>> lanes,
                LaneFrameHandler handler);
  ~MultiLaneLoop();

  MultiLaneLoop(const MultiLaneLoop&) = delete;
  MultiLaneLoop& operator=(const MultiLaneLoop&) = delete;

  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void run();

  std::span<const std::unique_ptr<ipc::Transport>> lanes_;
  LaneFrameHandler handler_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace ccp::agent
