// Thread that pumps frames from a Transport into a handler. Used to run
// the agent (or a datapath) against a real OS transport; the simulator
// does not need this (it delivers frames through its event queue).
#pragma once

#include <atomic>
#include <functional>
#include <span>
#include <thread>

#include "ipc/transport.hpp"

namespace ccp::agent {

class TransportLoop {
 public:
  using FrameHandler = std::function<void(std::span<const uint8_t>)>;

  /// Starts a thread that calls `handler` for every received frame until
  /// stop() or the peer closes. The transport must outlive the loop.
  TransportLoop(ipc::Transport& transport, FrameHandler handler);
  ~TransportLoop();

  TransportLoop(const TransportLoop&) = delete;
  TransportLoop& operator=(const TransportLoop&) = delete;

  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void run();

  ipc::Transport& transport_;
  FrameHandler handler_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace ccp::agent
