#include "offload/model.hpp"

#include <algorithm>

namespace ccp::offload {

OffloadModel::OffloadModel(CpuModelConfig config) : config_(config) {}

double OffloadModel::sender_train_packets(OffloadConfig offloads, CcArch arch) const {
  if (offloads.tso) {
    // The NIC segments 64 KB chunks; trains are hardware-sized.
    return static_cast<double>(config_.tso_segment_bytes) / config_.mtu_payload;
  }
  // ACK clocking releases ~1/delayed_ack_factor packets per ACK.
  const double ack_clocked = 1.0 / config_.delayed_ack_factor;
  if (arch == CcArch::InDatapath) return ack_clocked;
  // CCP applies one RTT's worth of window growth in a chunk when the
  // agent's update lands (the bursts §3 observed). In congestion
  // avoidance the window grows ~1 MSS per RTT, but slow-start phases and
  // rate changes produce larger steps; empirically a few packets extra
  // per update. Model: the update chunk rides on top of ACK clocking.
  const double update_chunk = 4.0;
  return ack_clocked + update_chunk;
}

ThroughputBreakdown OffloadModel::evaluate(OffloadConfig offloads, CcArch arch) const {
  const CpuModelConfig& c = config_;
  ThroughputBreakdown out;
  out.link_limit_bps = c.link_rate_bps * c.framing_efficiency;

  const double train = sender_train_packets(offloads, arch);
  out.sender_train_packets = train;

  // ---- receiver aggregation, which also sets the ACK rate ----
  double merged = 1.0;  // packets per receive event
  double rx_cycles_per_byte = c.per_byte_rx;
  if (offloads.gro) {
    // GRO merges back-to-back trains (up to the 64 KB limit) into one
    // stack traversal.
    merged = std::clamp(train, 1.0, static_cast<double>(c.gro_max_packets));
    rx_cycles_per_byte += c.per_event_rx / (merged * c.mtu_payload);
  } else {
    // Full per-packet cost; NIC interrupt coalescing still saves a
    // little on longer trains (the residual CCP edge the paper
    // mentions), modeled as up to 8% amortization.
    const double coalesce = 1.0 - std::min(0.08, (train - 1.0) * 0.01);
    rx_cycles_per_byte += c.per_packet_rx * coalesce / c.mtu_payload;
  }
  out.gro_packets_per_event = merged;
  out.receiver_cpu_limit_bps = c.cycles_per_sec / rx_cycles_per_byte * 8.0;

  // One ACK per receive event (times the delayed-ACK factor): longer
  // GRO trains mean fewer ACKs arriving back at the sender.
  const double acks_per_packet = c.delayed_ack_factor / merged;
  const double acks_per_byte = acks_per_packet / c.mtu_payload;

  // ---- sender CPU cost per payload byte ----
  double tx_cycles_per_byte = c.per_byte_tx;
  if (offloads.tso) {
    tx_cycles_per_byte += c.per_segment_tx / c.tso_segment_bytes;
  } else {
    tx_cycles_per_byte += c.per_packet_tx / c.mtu_payload;
  }
  // ACK processing + congestion control, charged per ACK.
  tx_cycles_per_byte += c.per_ack_tx * acks_per_byte;
  if (arch == CcArch::InDatapath) {
    tx_cycles_per_byte += c.cc_per_ack * acks_per_byte;
  } else {
    tx_cycles_per_byte += c.fold_per_ack * acks_per_byte;
    // One report per RTT, amortized over the bytes a saturated 10G link
    // moves in one RTT. (Tiny — that is the point of §2.3.)
    const double bytes_per_rtt =
        std::max(1.0, out.link_limit_bps / 8.0 * c.rtt_secs);
    tx_cycles_per_byte += (c.ipc_per_report + c.agent_per_report) / bytes_per_rtt;
  }
  out.sender_cpu_limit_bps = c.cycles_per_sec / tx_cycles_per_byte * 8.0;

  out.throughput_bps = std::min({out.link_limit_bps, out.sender_cpu_limit_bps,
                                 out.receiver_cpu_limit_bps});
  out.bottleneck = out.throughput_bps == out.link_limit_bps ? "link"
                   : out.throughput_bps == out.sender_cpu_limit_bps
                       ? "sender-cpu"
                       : "receiver-cpu";
  return out;
}

}  // namespace ccp::offload
