// NIC-offload and CPU cost model for the Figure 5 reproduction.
//
// The paper measured iperf-style throughput on a 10 Gbit/s NIC with
// TSO/GSO (sender segmentation) and GRO (receiver aggregation) toggled,
// comparing in-kernel congestion control against CCP. We cannot toggle a
// real NIC here, so this module models the three mechanisms that produce
// Figure 5's shape:
//
//  1. With offloads on, per-packet CPU work amortizes over 64 KB
//     super-segments: the NIC, not the CPU, is the bottleneck, and both
//     systems saturate the link (~9.4 Gbit/s after framing overhead).
//  2. With sender segmentation off, the sender pays per-MTU-packet costs
//     and the receiver's efficiency depends on GRO aggregation, which
//     grows with the size of back-to-back packet trains. CCP updates
//     cwnd in per-RTT chunks and therefore emits *longer trains* than
//     the kernel's per-ACK clocking — so GRO merges more packets per
//     receive event and CCP comes out slightly ahead (§3's explanation).
//  3. With receive offloads also off, every packet costs the receiver
//     full stack traversal; trains no longer matter and the two systems
//     converge (the paper attributes the residual gap to NIC interrupt
//     coalescing, which we model as a small train-dependent saving).
//
// Congestion control CPU cost is also charged: the kernel runs the CC
// algorithm on every ACK; CCP folds per ACK in the datapath (cheap) and
// crosses IPC once per RTT (the §2.3 batching argument).
#pragma once

#include <cstdint>
#include <string>

namespace ccp::offload {

struct OffloadConfig {
  bool tso = true;  // sender-side segmentation offload (TSO/GSO)
  bool gro = true;  // receiver-side aggregation (GRO) + interrupt coalescing
};

/// Which congestion control architecture drives the sender.
enum class CcArch {
  InDatapath,  // kernel-style: CC logic runs on every ACK in the stack
  Ccp,         // datapath folds per ACK; agent acts once per RTT over IPC
};

struct CpuModelConfig {
  double cycles_per_sec = 3.0e9;   // one core for the transport stack

  // Stack traversal costs (cycles). Calibrated so a 3 GHz core tops out
  // near 650 kpps of full per-packet TX processing — typical for a
  // single-core Linux stack of the paper's era.
  double per_packet_tx = 4500;     // software segmentation + qdisc + driver
  double per_segment_tx = 3500;    // one TSO super-segment handoff
  double per_byte_tx = 0.30;       // copy + checksum per byte
  double per_packet_rx = 2600;     // per delivered packet, no aggregation
  double per_event_rx = 3000;      // per GRO event (merged train)
  double per_byte_rx = 0.35;
  double per_ack_tx = 1500;        // sender-side processing of one ACK

  // Congestion control costs.
  double cc_per_ack = 450;         // kernel CC callback per ACK
  double fold_per_ack = 120;       // CCP datapath fold program per ACK
  double ipc_per_report = 12000;   // serialize + syscall + wakeup, amortized
  double agent_per_report = 3000;  // user-space handler

  // Link & framing.
  double link_rate_bps = 10e9;     // bits/sec
  double framing_efficiency = 0.941;  // Ethernet+IP+TCP overhead at MTU 1500
  uint32_t mtu_payload = 1448;
  uint32_t tso_segment_bytes = 65160;  // 45 MTU packets per super-segment
  uint32_t gro_max_packets = 45;

  double rtt_secs = 100e-6;        // datacenter-ish 100 us path of Figure 5

  /// The receiver ACKs every *receive event*, halved by delayed ACKs.
  /// With GRO on, one event covers a whole merged train — this is the
  /// coupling that makes CCP's longer trains pay off at the sender too
  /// (fewer ACKs to process). Figure 5's TSO-off gap comes from here.
  double delayed_ack_factor = 0.5;
};

struct ThroughputBreakdown {
  double throughput_bps = 0;       // achieved goodput, bits/sec
  double link_limit_bps = 0;
  double sender_cpu_limit_bps = 0;
  double receiver_cpu_limit_bps = 0;
  double sender_train_packets = 0; // mean back-to-back train length
  double gro_packets_per_event = 0;
  std::string bottleneck;          // "link" | "sender-cpu" | "receiver-cpu"
};

class OffloadModel {
 public:
  explicit OffloadModel(CpuModelConfig config = {});

  /// Steady-state achievable throughput for one bulk flow.
  ThroughputBreakdown evaluate(OffloadConfig offloads, CcArch arch) const;

  /// Mean back-to-back train length the sender emits. Per-ACK clocking
  /// releases ~2 packets per ACK (delayed ACKs); per-RTT window updates
  /// release the whole RTT increment at once, on top of ACK clocking.
  double sender_train_packets(OffloadConfig offloads, CcArch arch) const;

  const CpuModelConfig& config() const { return config_; }

 private:
  CpuModelConfig config_;
};

}  // namespace ccp::offload
