// Registration of all built-in CCP algorithms with an agent, plus the
// capability table used to regenerate the paper's Table 1.
#pragma once

#include <string>
#include <vector>

#include "agent/agent.hpp"

namespace ccp::algorithms {

/// Registers reno, cubic, vegas, vegas_vector, bbr, dctcp, timely, pcc.
void register_builtin_algorithms(agent::CcpAgent& agent);

/// Names of all built-in algorithms, in Table 1 order.
std::vector<std::string> builtin_algorithm_names();

/// Instantiates an algorithm by name (without an agent), for tests and
/// for the Table 1 bench. Throws std::out_of_range on unknown names.
std::unique_ptr<agent::Algorithm> make_algorithm(const std::string& name,
                                                 const agent::FlowInfo& info);

}  // namespace ccp::algorithms
