// DCTCP (Alizadeh et al., SIGCOMM 2010) as a CCP algorithm: the datapath
// counts ECN-marked bytes per window; the agent maintains the marking
// EWMA `alpha` and scales the window by alpha/2 each marked window.
#pragma once

#include "algorithms/common.hpp"

namespace ccp::algorithms {

class Dctcp final : public Algorithm {
 public:
  explicit Dctcp(const FlowInfo& info);

  std::string_view name() const override { return "dctcp"; }
  AlgorithmTraits traits() const override {
    return {{"ECN", "ACKs", "Loss"}, {"CWND"}};
  }

  void init(FlowControl& flow) override;
  void on_measurement(FlowControl& flow, const Measurement& m) override;
  void on_urgent(FlowControl& flow, ipc::UrgentKind kind,
                 const Measurement& m) override;

  double alpha() const { return alpha_; }
  double cwnd_bytes() const { return cwnd_; }

  static constexpr double kG = 1.0 / 16.0;  // alpha gain, as in the paper

 private:
  void push_cwnd(FlowControl& flow);

  double mss_;
  double cwnd_;
  double ssthresh_;
  double alpha_ = 1.0;  // start conservative, as Linux does
  uint64_t reports_seen_ = 0;
  uint64_t next_cut_allowed_ = 0;
};

}  // namespace ccp::algorithms
