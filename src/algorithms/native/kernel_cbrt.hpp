// The Linux kernel's fixed-point cube root (net/ipv4/tcp_cubic.c,
// cubic_root()): a 6-bit lookup table followed by one Newton-Raphson
// iteration, all in integer arithmetic because the kernel cannot use
// floating point (§2.2 of the paper). Reimplemented here as the
// comparison point for the user-space floating-point version.
#pragma once

#include <cstdint>

namespace ccp::algorithms::native {

/// Calculates the cube root of a 64-bit value, rounded. Matches the
/// kernel's cubic_root() algorithm (error < ~0.2% over the useful range).
uint32_t kernel_cubic_root(uint64_t a);

}  // namespace ccp::algorithms::native
