#include "algorithms/native/native_cubic.hpp"

#include <cmath>

namespace ccp::algorithms::native {

void NativeCubic::on_ack(const datapath::AckEvent& ev) {
  if (!ev.rtt_sample.is_zero()) {
    srtt_ = srtt_.is_zero()
                ? ev.rtt_sample
                : Duration::from_nanos(srtt_.nanos() +
                                       (ev.rtt_sample - srtt_).nanos() / 8);
  }
  if (ev.newly_lost_packets > 0 || ev.bytes_acked == 0) return;
  in_recovery_ = false;
  const double acked = static_cast<double>(ev.bytes_acked);
  const double acked_pkts = acked / mss_;

  if (cwnd_ < ssthresh_) {
    cwnd_ += acked;
    if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;
    return;
  }

  const double cwnd_pkts = cwnd_ / mss_;
  if (!epoch_valid_) {
    epoch_valid_ = true;
    epoch_start_ = ev.now;
    if (w_last_max_pkts_ <= 0) w_last_max_pkts_ = cwnd_pkts;
    k_ = std::cbrt(std::max(0.0, (w_last_max_pkts_ - cwnd_pkts) / kC));
    w_est_pkts_ = cwnd_pkts;
  }

  const double t = (ev.now - epoch_start_ + srtt_).secs();
  double target = w_last_max_pkts_ + kC * std::pow(t - k_, 3.0);

  // TCP-friendly region.
  w_est_pkts_ +=
      0.5 * 3.0 * (1.0 - kBeta) / (1.0 + kBeta) * acked_pkts / cwnd_pkts;
  target = std::max(target, w_est_pkts_);

  if (target > cwnd_pkts) {
    // Linux: cwnd grows toward target over one RTT => per-ACK step is
    // (target - cwnd)/cwnd packets per acked packet.
    cwnd_ += (target - cwnd_pkts) / cwnd_pkts * acked_pkts * mss_;
  } else {
    cwnd_ += 0.01 * acked_pkts / cwnd_pkts * mss_;  // above curve: crawl
  }
}

void NativeCubic::on_loss(const datapath::LossEvent&) {
  if (in_recovery_) return;
  in_recovery_ = true;
  epoch_valid_ = false;
  const double cwnd_pkts = cwnd_ / mss_;
  if (cwnd_pkts < w_last_max_pkts_) {
    w_last_max_pkts_ = cwnd_pkts * (2.0 - kBeta) / 2.0;  // fast convergence
  } else {
    w_last_max_pkts_ = cwnd_pkts;
  }
  cwnd_ = std::max(cwnd_ * kBeta, 2.0 * mss_);
  ssthresh_ = cwnd_;
}

void NativeCubic::on_timeout(const datapath::TimeoutEvent&) {
  ssthresh_ = std::max(cwnd_ * kBeta, 2.0 * mss_);
  cwnd_ = mss_;
  epoch_valid_ = false;
  w_last_max_pkts_ = 0;
  in_recovery_ = false;
}

}  // namespace ccp::algorithms::native
