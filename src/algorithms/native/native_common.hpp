// Base class for native (in-datapath) congestion control baselines.
//
// These process *every* ACK synchronously inside the datapath, exactly
// like kernel TCP modules — they are the "Linux" side of Figures 3-5.
// They share the simulator-facing CcModule interface with CcpFlow, so an
// experiment can swap CCP and native implementations with one line.
#pragma once

#include <algorithm>
#include <limits>

#include "datapath/cc_module.hpp"

namespace ccp::algorithms::native {

class NativeCcBase : public datapath::CcModule {
 public:
  explicit NativeCcBase(uint32_t mss, uint64_t init_cwnd_bytes)
      : mss_(mss),
        cwnd_(static_cast<double>(init_cwnd_bytes > 0 ? init_cwnd_bytes
                                                      : 10ull * mss)) {}

  void on_send(const datapath::SendEvent&) override {}
  void tick(TimePoint) override {}

  uint64_t cwnd_bytes() const override {
    return static_cast<uint64_t>(std::max(cwnd_, 2.0 * mss_));
  }
  double pacing_rate_bps() const override { return 0.0; }  // window-limited

  bool in_slow_start() const { return cwnd_ < ssthresh_; }

 protected:
  double mss_;
  double cwnd_;
  double ssthresh_ = std::numeric_limits<double>::max();
  bool in_recovery_ = false;
};

}  // namespace ccp::algorithms::native
