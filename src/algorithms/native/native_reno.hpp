// In-datapath NewReno: per-ACK slow start / AIMD, the classic kernel
// behavior (RFC 5681/6582). Baseline for Figure 4.
#pragma once

#include "algorithms/native/native_common.hpp"

namespace ccp::algorithms::native {

class NativeReno final : public NativeCcBase {
 public:
  using NativeCcBase::NativeCcBase;

  void on_ack(const datapath::AckEvent& ev) override {
    // Pure-SACK delivery notifications and loss-marked ACKs don't move
    // the window.
    if (ev.newly_lost_packets > 0 || ev.bytes_acked == 0) return;
    in_recovery_ = false;
    const double acked = static_cast<double>(ev.bytes_acked);
    if (cwnd_ < ssthresh_) {
      cwnd_ += acked;
      if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;
    } else {
      cwnd_ += acked * mss_ / cwnd_;
    }
  }

  void on_loss(const datapath::LossEvent&) override {
    if (in_recovery_) return;
    in_recovery_ = true;
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
    cwnd_ = ssthresh_ + 3.0 * mss_;
  }

  void on_timeout(const datapath::TimeoutEvent&) override {
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
    cwnd_ = mss_;
    in_recovery_ = false;
  }
};

}  // namespace ccp::algorithms::native
