#include "algorithms/native/kernel_cbrt.hpp"

namespace ccp::algorithms::native {
namespace {

inline int fls64(uint64_t x) {
  if (x == 0) return 0;
  return 64 - __builtin_clzll(x);
}

}  // namespace

uint32_t kernel_cubic_root(uint64_t a) {
  // Exactly the kernel's table: v[x] = 2^(x*0.3333 + 0.5) for the top
  // bits of the argument.
  static const uint8_t v[] = {
      0,   54,  54,  54,  118, 118, 118, 118, 123, 129, 134, 138, 143, 147,
      151, 156, 157, 161, 164, 168, 170, 173, 176, 179, 181, 185, 187, 190,
      192, 194, 197, 199, 200, 202, 204, 206, 209, 211, 213, 215, 217, 219,
      221, 222, 224, 225, 227, 229, 231, 232, 234, 236, 237, 239, 240, 242,
      244, 245, 246, 248, 250, 251, 252, 254,
  };

  int b = fls64(a);
  if (b < 7) {
    // a in [0..63]: table lookup with rounding.
    return (static_cast<uint32_t>(v[a]) + 35) >> 6;
  }

  b = ((b * 84) >> 8) - 1;  // ~ (bits-1)/3
  const uint32_t shift = static_cast<uint32_t>(a >> (b * 3));
  uint32_t x = ((static_cast<uint32_t>(v[shift]) + 10) << b) >> 6;

  // One Newton-Raphson iteration: x' = (2x + a/x^2) / 3, with the
  // kernel's x*(x-1) denominator that biases the estimate upward.
  x = 2 * x + static_cast<uint32_t>(a / (static_cast<uint64_t>(x) *
                                         static_cast<uint64_t>(x - 1)));
  x = (x * 341) >> 10;  // divide by 3 via multiply
  return x;
}

}  // namespace ccp::algorithms::native
