// In-datapath Vegas: per-ACK queue estimation, mirroring the Linux
// tcp_vegas module's structure (the paper notes its vector-mode CCP
// listing "is similar to the Linux implementation").
#pragma once

#include <algorithm>

#include "algorithms/native/native_common.hpp"

namespace ccp::algorithms::native {

class NativeVegas final : public NativeCcBase {
 public:
  NativeVegas(uint32_t mss, uint64_t init_cwnd_bytes, double alpha = 2.0,
              double beta = 4.0)
      : NativeCcBase(mss, init_cwnd_bytes), alpha_(alpha), beta_(beta) {}

  void on_ack(const datapath::AckEvent& ev) override {
    if (ev.rtt_sample.is_zero() || ev.newly_lost_packets > 0) return;
    const double rtt_us = static_cast<double>(ev.rtt_sample.micros());
    base_rtt_us_ = std::min(base_rtt_us_, rtt_us);
    // Like tcp_vegas.c: evaluate the queue estimate and move the window
    // by at most one segment once per RTT (one cwnd of acked bytes).
    window_acked_ += static_cast<double>(ev.bytes_acked);
    const double in_queue =
        (rtt_us - base_rtt_us_) * (cwnd_ / mss_) / base_rtt_us_;
    if (in_queue < alpha_) ++delta_;
    else if (in_queue > beta_) --delta_;
    if (window_acked_ >= cwnd_) {
      if (delta_ > 0) cwnd_ += mss_;
      else if (delta_ < 0) cwnd_ -= mss_;
      window_acked_ = 0;
      delta_ = 0;
      cwnd_ = std::max(cwnd_, 2.0 * mss_);
    }
  }

  void on_loss(const datapath::LossEvent&) override {
    if (in_recovery_) return;
    in_recovery_ = true;
    cwnd_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
  }

  void on_timeout(const datapath::TimeoutEvent&) override {
    cwnd_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
    in_recovery_ = false;
  }

  double base_rtt_us() const { return base_rtt_us_; }

 private:
  double alpha_;
  double beta_;
  double base_rtt_us_ = 1e9;
  double window_acked_ = 0;
  int delta_ = 0;
};

}  // namespace ccp::algorithms::native
