// In-datapath Cubic: per-ACK window updates following the Linux
// implementation's structure (epoch state, target window one RTT ahead,
// TCP-friendly region, fast convergence). Baseline for Figure 3.
#pragma once

#include "algorithms/native/native_common.hpp"

namespace ccp::algorithms::native {

class NativeCubic final : public NativeCcBase {
 public:
  using NativeCcBase::NativeCcBase;

  static constexpr double kC = 0.4;
  static constexpr double kBeta = 0.7;

  void on_ack(const datapath::AckEvent& ev) override;
  void on_loss(const datapath::LossEvent& ev) override;
  void on_timeout(const datapath::TimeoutEvent& ev) override;

 private:
  double w_last_max_pkts_ = 0;
  TimePoint epoch_start_{};
  bool epoch_valid_ = false;
  double k_ = 0;
  double w_est_pkts_ = 0;
  Duration srtt_ = Duration::zero();
};

}  // namespace ccp::algorithms::native
