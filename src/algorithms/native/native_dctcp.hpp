// In-datapath DCTCP: per-ACK ECN accounting with per-window alpha update.
#pragma once

#include <algorithm>

#include "algorithms/native/native_common.hpp"

namespace ccp::algorithms::native {

class NativeDctcp final : public NativeCcBase {
 public:
  using NativeCcBase::NativeCcBase;

  static constexpr double kG = 1.0 / 16.0;

  void on_ack(const datapath::AckEvent& ev) override {
    if (ev.newly_lost_packets > 0 || ev.bytes_acked == 0) return;
    in_recovery_ = false;
    acked_pkts_ += ev.packets_acked;
    if (ev.ecn) marked_pkts_ += ev.packets_acked;
    window_acked_ += static_cast<double>(ev.bytes_acked);

    // One "window" of ACKs completes when we've acked a cwnd of data.
    if (window_acked_ >= cwnd_) {
      const double f =
          acked_pkts_ > 0 ? std::min(1.0, marked_pkts_ / acked_pkts_) : 0.0;
      alpha_ = (1.0 - kG) * alpha_ + kG * f;
      if (f > 0) {
        cwnd_ = std::max(cwnd_ * (1.0 - alpha_ / 2.0), 2.0 * mss_);
        ssthresh_ = cwnd_;
      }
      window_acked_ = 0;
      acked_pkts_ = 0;
      marked_pkts_ = 0;
    }
    if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(ev.bytes_acked);
      if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;
    } else {
      cwnd_ += static_cast<double>(ev.bytes_acked) * mss_ / cwnd_;
    }
  }

  void on_loss(const datapath::LossEvent&) override {
    if (in_recovery_) return;
    in_recovery_ = true;
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
    cwnd_ = ssthresh_;
  }

  void on_timeout(const datapath::TimeoutEvent&) override {
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
    cwnd_ = mss_;
    in_recovery_ = false;
  }

  double alpha() const { return alpha_; }

 private:
  double alpha_ = 1.0;
  double window_acked_ = 0;
  double acked_pkts_ = 0;
  double marked_pkts_ = 0;
};

}  // namespace ccp::algorithms::native
