#include "algorithms/timely.hpp"

#include <algorithm>

namespace ccp::algorithms {
namespace {

constexpr const char* kTimelyProgram = R"(
fold {
  rtt              := ewma(rtt, Pkt.rtt, 0.5)       init 0;
  minrtt           := if(Pkt.rtt > 0, min(minrtt, Pkt.rtt), minrtt) init 0x7fffffff;
  volatile loss    := loss + Pkt.lost               init 0 urgent;
  volatile timeout := max(timeout, Pkt.was_timeout) init 0 urgent;
}
control {
  Rate($rate);
  Cwnd($cwnd_cap);
  WaitRtts(1.0);
  Report();
}
)";

}  // namespace

Timely::Timely(const FlowInfo& info, TimelyParams params)
    : params_(params),
      mss_(info.mss),
      rate_bps_(10.0 * info.mss / 0.01) {}  // 10 pkts / 10 ms until samples arrive

namespace {
/// Rate-based algorithms still need a window so the datapath never
/// releases an unbounded line-rate burst: cap at 2x the rate-delay
/// product (a generous ceiling; pacing provides the real control).
double cwnd_cap_for(double rate_bps, double rtt_us, double mss) {
  const double rtt_s = rtt_us > 0 ? rtt_us / 1e6 : 0.01;
  return std::max(2.0 * rate_bps * rtt_s, 10.0 * mss);
}
}  // namespace

void Timely::init(FlowControl& flow) {
  flow.install_text(kTimelyProgram,
                    VarBindings{{"rate", rate_bps_},
                                {"cwnd_cap", cwnd_cap_for(rate_bps_, 0, mss_)}});
}

void Timely::on_measurement(FlowControl& flow, const Measurement& m) {
  const double rtt = m.get("rtt");
  if (rtt <= 0) return;
  const double minrtt = m.get("minrtt");
  if (minrtt > 0 && minrtt < 1e9) min_rtt_us_ = std::min(min_rtt_us_, minrtt);

  if (prev_rtt_us_ <= 0) {
    prev_rtt_us_ = rtt;
    return;
  }
  const double new_diff = rtt - prev_rtt_us_;
  prev_rtt_us_ = rtt;
  rtt_diff_us_ =
      (1.0 - params_.ewma_alpha) * rtt_diff_us_ + params_.ewma_alpha * new_diff;
  // Gradient normalized by the minimum RTT, per the paper.
  const double norm_minrtt = min_rtt_us_ < 1e9 ? min_rtt_us_ : rtt;
  const double gradient = rtt_diff_us_ / std::max(1.0, norm_minrtt);

  if (rtt < params_.t_low_us) {
    rate_bps_ += params_.add_step_bps;
  } else if (rtt > params_.t_high_us) {
    rate_bps_ *= 1.0 - params_.beta * (1.0 - params_.t_high_us / rtt);
  } else if (gradient <= 0) {
    rate_bps_ += params_.add_step_bps;
  } else {
    rate_bps_ *= 1.0 - params_.beta * std::min(1.0, gradient);
  }
  rate_bps_ = std::max(rate_bps_, 2.0 * mss_ / 0.1);  // floor: 2 pkts / 100 ms
  flow.update_fields(VarBindings{
      {"rate", rate_bps_}, {"cwnd_cap", cwnd_cap_for(rate_bps_, rtt, mss_)}});
}

void Timely::on_urgent(FlowControl& flow, ipc::UrgentKind kind, const Measurement&) {
  if (kind == ipc::UrgentKind::Timeout) {
    rate_bps_ = std::max(rate_bps_ * 0.5, 2.0 * mss_ / 0.1);
    flow.update_fields(VarBindings{
        {"rate", rate_bps_},
        {"cwnd_cap", cwnd_cap_for(rate_bps_, prev_rtt_us_, mss_)}});
  }
}

}  // namespace ccp::algorithms
