// TCP Vegas in both batching styles of §2.4 of the paper.
//
// VegasFold pushes the queue-estimate computation *into the datapath* as
// a fold function: the datapath accumulates `delta` (the net window
// adjustment) per ACK, and the agent just applies it — the paper's
// "fold function over measurements" listing, verbatim.
//
// VegasVector asks the datapath for the raw per-ACK vector and runs the
// same loop in user space — the paper's "vector of measurements" listing.
//
// Both must compute identical windows on identical traces; a property
// test asserts that equivalence.
#pragma once

#include "algorithms/common.hpp"

namespace ccp::algorithms {

/// Shared Vegas parameters (packets of queueing): increase below alpha,
/// decrease above beta.
struct VegasParams {
  double alpha = 2.0;
  double beta = 4.0;
};

class VegasFold final : public Algorithm {
 public:
  explicit VegasFold(const FlowInfo& info, VegasParams params = {});

  std::string_view name() const override { return "vegas"; }
  AlgorithmTraits traits() const override { return {{"RTT"}, {"CWND"}}; }

  void init(FlowControl& flow) override;
  void on_measurement(FlowControl& flow, const Measurement& m) override;
  void on_urgent(FlowControl& flow, ipc::UrgentKind kind,
                 const Measurement& m) override;

  double cwnd_bytes() const { return cwnd_; }
  double base_rtt_us() const { return base_rtt_us_; }

 private:
  void install(FlowControl& flow);

  double mss_;
  double cwnd_;
  VegasParams params_;
  double base_rtt_us_ = 1e9;
};

class VegasVector final : public Algorithm {
 public:
  explicit VegasVector(const FlowInfo& info, VegasParams params = {});

  std::string_view name() const override { return "vegas_vector"; }
  AlgorithmTraits traits() const override { return {{"RTT"}, {"CWND"}}; }

  void init(FlowControl& flow) override;
  void on_measurement(FlowControl& flow, const Measurement& m) override;
  void on_urgent(FlowControl& flow, ipc::UrgentKind kind,
                 const Measurement& m) override;

  double cwnd_bytes() const { return cwnd_; }
  double base_rtt_us() const { return base_rtt_us_; }

 private:
  double mss_;
  double cwnd_;
  VegasParams params_;
  double base_rtt_us_ = 1e9;
};

}  // namespace ccp::algorithms
