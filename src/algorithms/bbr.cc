#include "algorithms/bbr.hpp"

#include <algorithm>

namespace ccp::algorithms {
namespace {

/// Startup: exponential rate growth, report every RTT.
constexpr const char* kStartupProgram = R"(
fold {
  volatile rcv     := max(rcv, Pkt.rcv_rate)        init 0;
  volatile snd     := max(snd, Pkt.snd_rate)        init 0;
  minrtt           := if(Pkt.rtt > 0, min(minrtt, Pkt.rtt), minrtt) init 0x7fffffff;
  volatile loss    := loss + Pkt.lost               init 0 urgent;
  volatile timeout := max(timeout, Pkt.was_timeout) init 0 urgent;
}
control {
  Rate($rate);
  Cwnd($cwnd_cap);
  WaitRtts(1.0);
  Report();
}
)";

/// ProbeBW: the paper's §2.1 pulse program, verbatim in structure. The
/// datapath holds 1.25x for exactly one RTT and reports the delivery
/// rate measured *during that window*, which is what lets the agent see
/// whether extra capacity exists.
constexpr const char* kProbeBwProgram = R"(
fold {
  volatile rcv     := max(rcv, Pkt.rcv_rate)        init 0;
  minrtt           := if(Pkt.rtt > 0, min(minrtt, Pkt.rtt), minrtt) init 0x7fffffff;
  volatile loss    := loss + Pkt.lost               init 0 urgent;
  volatile timeout := max(timeout, Pkt.was_timeout) init 0 urgent;
}
control {
  Cwnd($cwnd_cap);
  Rate(1.25 * $rate);
  WaitRtts(1.0);
  Report();
  Rate(0.75 * $rate);
  WaitRtts(1.0);
  Report();
  Rate($rate);
  WaitRtts(6.0);
  Report();
}
)";

}  // namespace

Bbr::Bbr(const FlowInfo& info)
    : mss_(info.mss),
      // Until the first delivery-rate sample: 10 packets per 10 ms.
      pacing_rate_bps_(10.0 * info.mss / 0.01) {}

double Bbr::bdp_bytes() const {
  if (btl_bw_bps_ <= 0 || min_rtt_us_ >= 1e9) return 10 * mss_;
  return btl_bw_bps_ * (min_rtt_us_ / 1e6);
}

void Bbr::init(FlowControl& flow) {
  flow.install_text(
      kStartupProgram,
      VarBindings{{"rate", pacing_rate_bps_},
                  {"cwnd_cap", kCwndGain * std::max(bdp_bytes(), 10.0 * mss_)}});
}

void Bbr::push_rate(FlowControl& flow) {
  flow.update_fields(
      VarBindings{{"rate", pacing_rate_bps_},
                  {"cwnd_cap", std::max(kCwndGain * bdp_bytes(), 4.0 * mss_)}});
}

void Bbr::enter_probe_bw(FlowControl& flow) {
  state_ = State::ProbeBw;
  pacing_rate_bps_ = std::max(btl_bw_bps_, 2.0 * mss_ / 0.01);
  flow.install_text(
      kProbeBwProgram,
      VarBindings{{"rate", pacing_rate_bps_},
                  {"cwnd_cap", std::max(kCwndGain * bdp_bytes(), 4.0 * mss_)}});
}

void Bbr::on_measurement(FlowControl& flow, const Measurement& m) {
  const double rcv = m.get("rcv");
  const double minrtt = m.get("minrtt");
  if (minrtt > 0 && minrtt < 1e9) min_rtt_us_ = std::min(min_rtt_us_, minrtt);
  if (rcv > btl_bw_bps_) btl_bw_bps_ = rcv;

  switch (state_) {
    case State::Startup: {
      // Plateau detection: bottleneck estimate grew <25% for 3 rounds.
      if (btl_bw_bps_ < 1.25 * prev_btl_bw_bps_) {
        ++plateau_rounds_;
      } else {
        plateau_rounds_ = 0;
        prev_btl_bw_bps_ = btl_bw_bps_;
      }
      if (plateau_rounds_ >= 3 && btl_bw_bps_ > 0) {
        // Drain: one RTT at reduced gain to empty the startup queue.
        state_ = State::Drain;
        pacing_rate_bps_ = btl_bw_bps_ / kStartupGain;
        push_rate(flow);
        return;
      }
      pacing_rate_bps_ =
          std::max(kStartupGain * btl_bw_bps_, pacing_rate_bps_);
      push_rate(flow);
      return;
    }
    case State::Drain:
      enter_probe_bw(flow);
      return;
    case State::ProbeBw: {
      // One report per pulse phase. If the 1.25x phase discovered more
      // bandwidth, btl_bw_bps_ already absorbed it; track downward drift
      // slowly by decaying toward the recent max.
      btl_bw_bps_ = std::max(rcv, 0.98 * btl_bw_bps_);
      pacing_rate_bps_ = std::max(btl_bw_bps_, 2.0 * mss_ / 0.01);
      push_rate(flow);
      return;
    }
  }
}

void Bbr::on_urgent(FlowControl& flow, ipc::UrgentKind kind, const Measurement&) {
  // BBR is deliberately loss-agnostic except for timeouts, which signal
  // that the path estimate is badly stale.
  if (kind == ipc::UrgentKind::Timeout) {
    btl_bw_bps_ = 0;
    prev_btl_bw_bps_ = 0;
    plateau_rounds_ = 0;
    state_ = State::Startup;
    pacing_rate_bps_ = 10.0 * mss_ / 0.01;
    flow.install_text(kStartupProgram,
                      VarBindings{{"rate", pacing_rate_bps_},
                                  {"cwnd_cap", 10.0 * mss_}});
  }
}

}  // namespace ccp::algorithms
