#include "algorithms/vegas.hpp"

#include <algorithm>

namespace ccp::algorithms {
namespace {

/// The fold-function program from §2.4: the datapath tracks the minimum
/// RTT and accumulates the window increment `delta` (in packets) per ACK.
/// $cwnd, $alpha, $beta, and $baseRtt are bound by the agent.
///
/// inQ = (rtt - baseRtt) * cwnd_pkts / baseRtt, the Vegas queue estimate.
constexpr const char* kVegasFoldProgram = R"(
fold {
  baseRtt := if(Pkt.rtt > 0, min(baseRtt, Pkt.rtt), baseRtt) init $baseRtt;
  volatile delta :=
      if((Pkt.rtt - baseRtt) * ($cwnd / Pkt.mss) / baseRtt < $alpha,
         delta + 1,
         if((Pkt.rtt - baseRtt) * ($cwnd / Pkt.mss) / baseRtt > $beta,
            delta - 1,
            delta))
      init 0;
  volatile loss    := loss + Pkt.lost               init 0 urgent;
  volatile timeout := max(timeout, Pkt.was_timeout) init 0 urgent;
}
control {
  Cwnd($cwnd);
  WaitRtts(1.0);
  Report();
}
)";

/// Vector mode: the datapath only needs to time reports; all computation
/// happens in the agent over the raw samples.
constexpr const char* kVegasVectorProgram = R"(
fold {
  volatile loss    := loss + Pkt.lost               init 0 urgent;
  volatile timeout := max(timeout, Pkt.was_timeout) init 0 urgent;
}
control {
  Cwnd($cwnd);
  WaitRtts(1.0);
  Report();
}
)";

}  // namespace

// --- fold variant ---

VegasFold::VegasFold(const FlowInfo& info, VegasParams params)
    : mss_(info.mss),
      cwnd_(static_cast<double>(info.init_cwnd_bytes > 0 ? info.init_cwnd_bytes
                                                         : 10 * info.mss)),
      params_(params) {}

void VegasFold::install(FlowControl& flow) {
  flow.install_text(kVegasFoldProgram,
                    VarBindings{{"cwnd", cwnd_},
                                {"alpha", params_.alpha},
                                {"beta", params_.beta},
                                {"baseRtt", base_rtt_us_}});
}

void VegasFold::init(FlowControl& flow) { install(flow); }

void VegasFold::on_measurement(FlowControl& flow, const Measurement& m) {
  double delta;
  if (m.has("delta")) {
    // The datapath did the per-ACK work (the §2.4 fold program).
    delta = m.get("delta");
    base_rtt_us_ = std::min(base_rtt_us_, m.get("baseRtt", base_rtt_us_));
  } else {
    // Capability fallback: a limited datapath (no fold programs) only
    // reports smoothed RTT statistics; compute the queue estimate in
    // user space from those. Coarser — one sample per RTT instead of
    // per ACK — but the same control law.
    const double rtt = m.get("rtt");
    const double minrtt = m.get("minrtt");
    if (rtt <= 0) return;
    if (minrtt > 0) base_rtt_us_ = std::min(base_rtt_us_, minrtt);
    if (base_rtt_us_ >= 1e9) return;
    const double in_queue =
        (rtt - base_rtt_us_) * (cwnd_ / mss_) / base_rtt_us_;
    delta = in_queue < params_.alpha ? 1 : in_queue > params_.beta ? -1 : 0;
  }
  // Apply the *sign* of the adjustment: Vegas proper moves the window by
  // one segment per RTT (tcp_vegas.c does the same). Applying the raw
  // per-ACK sum in one per-RTT chunk, as a naive reading of the §2.4
  // listing would, oscillates: every sample in the batch predates the
  // previous window change. See DESIGN.md.
  if (delta > 0) cwnd_ += mss_;
  else if (delta < 0) cwnd_ -= mss_;
  cwnd_ = std::max(cwnd_, 2.0 * mss_);
  flow.update_fields(VarBindings{{"cwnd", cwnd_}, {"baseRtt", base_rtt_us_}});
}

void VegasFold::on_urgent(FlowControl& flow, ipc::UrgentKind kind,
                          const Measurement&) {
  if (kind == ipc::UrgentKind::Loss || kind == ipc::UrgentKind::Timeout) {
    cwnd_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
    flow.set_cwnd(cwnd_);  // immediate, then rebind
    flow.update_fields(VarBindings{{"cwnd", cwnd_}});
  }
}

// --- vector variant ---

VegasVector::VegasVector(const FlowInfo& info, VegasParams params)
    : mss_(info.mss),
      cwnd_(static_cast<double>(info.init_cwnd_bytes > 0 ? info.init_cwnd_bytes
                                                         : 10 * info.mss)),
      params_(params) {}

void VegasVector::init(FlowControl& flow) {
  flow.set_vector_mode(true);
  flow.install_text(kVegasVectorProgram, VarBindings{{"cwnd", cwnd_}});
}

void VegasVector::on_measurement(FlowControl& flow, const Measurement& m) {
  // The paper's §2.4 vector listing, one iteration per raw ACK sample,
  // accumulating the adjustment; applied once per RTT (sign rule, same
  // as the fold variant — see VegasFold::on_measurement).
  double delta = 0;
  for (const agent::PktSample& p : m.samples()) {
    if (p.rtt_us <= 0) continue;
    base_rtt_us_ = std::min(base_rtt_us_, p.rtt_us);
    const double in_queue =
        (p.rtt_us - base_rtt_us_) * (cwnd_ / mss_) / base_rtt_us_;
    if (in_queue < params_.alpha) {
      delta += 1;
    } else if (in_queue > params_.beta) {
      delta -= 1;
    }
  }
  if (delta > 0) cwnd_ += mss_;
  else if (delta < 0) cwnd_ -= mss_;
  cwnd_ = std::max(cwnd_, 2.0 * mss_);
  flow.update_fields(VarBindings{{"cwnd", cwnd_}});
}

void VegasVector::on_urgent(FlowControl& flow, ipc::UrgentKind kind,
                            const Measurement&) {
  if (kind == ipc::UrgentKind::Loss || kind == ipc::UrgentKind::Timeout) {
    cwnd_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
    flow.set_cwnd(cwnd_);  // immediate, then rebind
    flow.update_fields(VarBindings{{"cwnd", cwnd_}});
  }
}

}  // namespace ccp::algorithms
