// Shared helpers for CCP algorithm implementations.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "agent/algorithm.hpp"

namespace ccp::algorithms {

using agent::Algorithm;
using agent::AlgorithmTraits;
using agent::FlowControl;
using agent::FlowInfo;
using agent::Measurement;

using VarBindings = std::vector<std::pair<std::string, double>>;

/// The standard window-algorithm program: apply $cwnd, report once per
/// RTT, count acked bytes, surface loss/timeout urgently. Shared by
/// Reno, Cubic, and DCTCP (DCTCP adds an ECN register).
///
/// Register semantics:
///   acked   - bytes newly acked since last report (volatile)
///   loss    - packets newly lost since last report (volatile, urgent)
///   timeout - 1 if an RTO fired since last report (volatile, urgent)
///   rtt     - EWMA RTT in us
///   now     - datapath clock at the last event, us
///   inflight- bytes in flight at the last event
inline const char* kWindowProgram = R"(
fold {
  volatile acked   := acked + Pkt.bytes_acked       init 0;
  volatile loss    := loss + Pkt.lost               init 0 urgent;
  volatile timeout := max(timeout, Pkt.was_timeout) init 0 urgent;
  rtt              := ewma(rtt, Pkt.rtt, 0.125)     init 0;
  minrtt           := if(Pkt.rtt > 0, min(minrtt, Pkt.rtt), minrtt)
                                                    init 0x7fffffff;
  now              := Pkt.now                       init 0;
  inflight         := Pkt.bytes_in_flight           init 0;
}
control {
  Cwnd($cwnd);
  WaitRtts(1.0);
  Report();
}
)";

}  // namespace ccp::algorithms
