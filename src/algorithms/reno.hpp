// TCP NewReno as a CCP algorithm (Table 1 row "Reno": measures ACKs,
// controls CWND). Slow start, AIMD congestion avoidance, fast recovery
// on triple-dupack loss, window collapse on timeout.
#pragma once

#include "algorithms/common.hpp"

namespace ccp::algorithms {

class Reno final : public Algorithm {
 public:
  explicit Reno(const FlowInfo& info);

  std::string_view name() const override { return "reno"; }
  AlgorithmTraits traits() const override {
    return {{"ACKs", "Loss"}, {"CWND"}};
  }

  void init(FlowControl& flow) override;
  void on_measurement(FlowControl& flow, const Measurement& m) override;
  void on_urgent(FlowControl& flow, ipc::UrgentKind kind,
                 const Measurement& m) override;

  double cwnd_bytes() const { return cwnd_; }
  double ssthresh_bytes() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  void push_cwnd(FlowControl& flow);
  void cut_cwnd(FlowControl& flow);  // immediate (direct-control) reduction

  double mss_;
  double cwnd_;
  double ssthresh_;
  uint64_t reports_seen_ = 0;
  uint64_t next_cut_allowed_ = 0;  // in reports_seen_ units
};

}  // namespace ccp::algorithms
