#include "algorithms/dctcp.hpp"

#include <algorithm>
#include <limits>

namespace ccp::algorithms {
namespace {

/// The window program plus per-window ECN accounting: `marked` counts
/// ECN-echoed acked packets, `acked_pkts` all acked packets, so the agent
/// can form F = marked/acked per window.
constexpr const char* kDctcpProgram = R"(
fold {
  volatile acked      := acked + Pkt.bytes_acked       init 0;
  volatile acked_pkts := acked_pkts + Pkt.packets_acked init 0;
  volatile marked     := marked + Pkt.ecn * Pkt.packets_acked init 0;
  volatile loss       := loss + Pkt.lost               init 0 urgent;
  volatile timeout    := max(timeout, Pkt.was_timeout) init 0 urgent;
  rtt                 := ewma(rtt, Pkt.rtt, 0.125)     init 0;
}
control {
  Cwnd($cwnd);
  WaitRtts(1.0);
  Report();
}
)";

}  // namespace

Dctcp::Dctcp(const FlowInfo& info)
    : mss_(info.mss),
      cwnd_(static_cast<double>(info.init_cwnd_bytes > 0 ? info.init_cwnd_bytes
                                                         : 10 * info.mss)),
      ssthresh_(std::numeric_limits<double>::max()) {}

void Dctcp::init(FlowControl& flow) {
  flow.install_text(kDctcpProgram, VarBindings{{"cwnd", cwnd_}});
}

void Dctcp::push_cwnd(FlowControl& flow) {
  flow.update_fields(VarBindings{{"cwnd", cwnd_}});
}

void Dctcp::on_measurement(FlowControl& flow, const Measurement& m) {
  const double acked = m.get("acked");
  const double acked_pkts = m.get("acked_pkts");
  const double marked = m.get("marked");
  ++reports_seen_;
  if (acked <= 0) return;

  const double f = acked_pkts > 0 ? std::min(1.0, marked / acked_pkts) : 0.0;
  alpha_ = (1.0 - kG) * alpha_ + kG * f;

  if (f > 0) {
    // DCTCP's proportional backoff — gentler than Reno's halving.
    cwnd_ = std::max(cwnd_ * (1.0 - alpha_ / 2.0), 2.0 * mss_);
    ssthresh_ = cwnd_;
  } else if (cwnd_ < ssthresh_) {
    cwnd_ += std::min(acked, cwnd_);  // slow start
  } else {
    cwnd_ += acked * mss_ / cwnd_;    // standard CA growth
  }
  push_cwnd(flow);
}

void Dctcp::on_urgent(FlowControl& flow, ipc::UrgentKind kind, const Measurement&) {
  switch (kind) {
    case ipc::UrgentKind::Loss:
      if (reports_seen_ >= next_cut_allowed_) {
        next_cut_allowed_ = reports_seen_ + 2;
        ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
        cwnd_ = ssthresh_;
        flow.set_cwnd(cwnd_);  // immediate, then rebind
        push_cwnd(flow);
      }
      break;
    case ipc::UrgentKind::Timeout:
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
      cwnd_ = mss_;
      next_cut_allowed_ = reports_seen_ + 2;
      flow.set_cwnd(cwnd_);
      push_cwnd(flow);
      break;
    default:
      break;
  }
}

}  // namespace ccp::algorithms
