// A simplified BBR as a CCP algorithm — the paper's running example of a
// control program (§2.1): the ProbeBW gain cycle
//
//   Rate(1.25*r).WaitRtts(1.0).Report().
//   Rate(0.75*r).WaitRtts(1.0).Report().
//   Rate(r).WaitRtts(6.0).Report()
//
// runs *in the datapath*, so the rate pulses and the measurement windows
// stay aligned even though the agent only acts a few times per cycle.
//
// Simplifications vs. Cardwell et al. (documented in DESIGN.md): Startup
// and Drain are modeled; ProbeRTT is replaced by the 10-second windowed
// min-RTT filter the datapath keeps anyway.
#pragma once

#include "algorithms/common.hpp"

namespace ccp::algorithms {

class Bbr final : public Algorithm {
 public:
  explicit Bbr(const FlowInfo& info);

  std::string_view name() const override { return "bbr"; }
  AlgorithmTraits traits() const override {
    return {{"Sending Rate", "Receiving Rate", "RTT"}, {"Rate (pulses)", "CWND cap"}};
  }

  void init(FlowControl& flow) override;
  void on_measurement(FlowControl& flow, const Measurement& m) override;
  void on_urgent(FlowControl& flow, ipc::UrgentKind kind,
                 const Measurement& m) override;

  enum class State { Startup, Drain, ProbeBw };
  State state() const { return state_; }
  double bottleneck_rate_bps() const { return btl_bw_bps_; }
  double min_rtt_us() const { return min_rtt_us_; }

  static constexpr double kStartupGain = 2.89;  // 2/ln2
  static constexpr double kCwndGain = 2.0;      // cwnd cap = gain * BDP

 private:
  void enter_probe_bw(FlowControl& flow);
  void push_rate(FlowControl& flow);
  double bdp_bytes() const;

  double mss_;
  State state_ = State::Startup;
  double btl_bw_bps_ = 0;     // bottleneck bandwidth estimate, bytes/sec
  double min_rtt_us_ = 1e9;
  double pacing_rate_bps_;    // current base rate ($rate binding)
  int plateau_rounds_ = 0;    // startup exit detection
  double prev_btl_bw_bps_ = 0;
};

}  // namespace ccp::algorithms
