#include "algorithms/htcp.hpp"

#include <algorithm>
#include <limits>

namespace ccp::algorithms {

Htcp::Htcp(const FlowInfo& info)
    : mss_(info.mss),
      cwnd_(static_cast<double>(info.init_cwnd_bytes > 0 ? info.init_cwnd_bytes
                                                         : 10 * info.mss)),
      ssthresh_(std::numeric_limits<double>::max()) {}

double Htcp::alpha(double secs_since_loss) {
  const double delta = secs_since_loss - 1.0;  // Delta_L = 1 s
  if (delta <= 0) return 1.0;
  return 1.0 + 10.0 * delta + 0.25 * delta * delta;
}

void Htcp::init(FlowControl& flow) {
  flow.install_text(kWindowProgram, VarBindings{{"cwnd", cwnd_}});
}

void Htcp::push_cwnd(FlowControl& flow) {
  flow.update_fields(VarBindings{{"cwnd", cwnd_}});
}

void Htcp::on_measurement(FlowControl& flow, const Measurement& m) {
  ++reports_seen_;
  const double acked = m.get("acked");
  const double now_us = m.get("now");
  const double minrtt = m.get("minrtt");
  if (minrtt > 0 && minrtt < 1e9) min_rtt_us_ = std::min(min_rtt_us_, minrtt);
  const double rtt = m.get("rtt");
  if (rtt > 0) max_rtt_us_ = std::max(max_rtt_us_, rtt);
  if (acked <= 0) return;

  if (cwnd_ < ssthresh_) {
    cwnd_ += std::min(acked, cwnd_);  // slow start
    if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;
  } else {
    if (last_loss_us_ < 0) last_loss_us_ = now_us;
    const double since_loss = (now_us - last_loss_us_) / 1e6;
    // AIMD with the elapsed-time-scaled increase: alpha MSS per RTT.
    cwnd_ += alpha(since_loss) * acked * mss_ / cwnd_;
  }
  push_cwnd(flow);
}

void Htcp::cut(FlowControl& flow, double beta) {
  ssthresh_ = std::max(cwnd_ * beta, 2.0 * mss_);
  cwnd_ = ssthresh_;
  flow.set_cwnd(cwnd_);  // immediate, then rebind
  push_cwnd(flow);
}

void Htcp::on_urgent(FlowControl& flow, ipc::UrgentKind kind, const Measurement& m) {
  switch (kind) {
    case ipc::UrgentKind::Loss:
    case ipc::UrgentKind::Ecn: {
      if (reports_seen_ < next_cut_allowed_) return;
      next_cut_allowed_ = reports_seen_ + 2;
      // Adaptive backoff: beta = minRTT/maxRTT clamped to [0.5, 0.8] —
      // shallow queues (ratio near 1) back off gently.
      double beta = 0.5;
      if (min_rtt_us_ < 1e9 && max_rtt_us_ > 0) {
        beta = std::clamp(min_rtt_us_ / max_rtt_us_, 0.5, 0.8);
      }
      last_loss_us_ = m.get("now", last_loss_us_);
      // Forget stale RTT extremes; the next epoch re-measures.
      max_rtt_us_ = 0;
      cut(flow, beta);
      break;
    }
    case ipc::UrgentKind::Timeout:
      next_cut_allowed_ = reports_seen_ + 2;
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
      cwnd_ = mss_;
      last_loss_us_ = m.get("now", last_loss_us_);
      flow.set_cwnd(cwnd_);
      push_cwnd(flow);
      break;
    case ipc::UrgentKind::FoldUrgent:
      break;
  }
}

}  // namespace ccp::algorithms
