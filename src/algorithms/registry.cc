#include "algorithms/registry.hpp"

#include <functional>
#include <map>
#include <stdexcept>

#include "algorithms/bbr.hpp"
#include "algorithms/cubic.hpp"
#include "algorithms/dctcp.hpp"
#include "algorithms/htcp.hpp"
#include "algorithms/pcc.hpp"
#include "algorithms/reno.hpp"
#include "algorithms/sprout.hpp"
#include "algorithms/timely.hpp"
#include "algorithms/vegas.hpp"

namespace ccp::algorithms {
namespace {

using Factory = std::function<std::unique_ptr<agent::Algorithm>(const agent::FlowInfo&)>;

const std::map<std::string, Factory>& factories() {
  static const std::map<std::string, Factory> kFactories = {
      {"reno", [](const agent::FlowInfo& i) { return std::make_unique<Reno>(i); }},
      {"cubic", [](const agent::FlowInfo& i) { return std::make_unique<Cubic>(i); }},
      {"vegas", [](const agent::FlowInfo& i) { return std::make_unique<VegasFold>(i); }},
      {"vegas_vector",
       [](const agent::FlowInfo& i) { return std::make_unique<VegasVector>(i); }},
      {"bbr", [](const agent::FlowInfo& i) { return std::make_unique<Bbr>(i); }},
      {"dctcp", [](const agent::FlowInfo& i) { return std::make_unique<Dctcp>(i); }},
      {"htcp", [](const agent::FlowInfo& i) { return std::make_unique<Htcp>(i); }},
      {"timely", [](const agent::FlowInfo& i) { return std::make_unique<Timely>(i); }},
      {"pcc", [](const agent::FlowInfo& i) { return std::make_unique<Pcc>(i); }},
      {"sprout", [](const agent::FlowInfo& i) { return std::make_unique<Sprout>(i); }},
  };
  return kFactories;
}

}  // namespace

void register_builtin_algorithms(agent::CcpAgent& agent) {
  for (const auto& [name, factory] : factories()) {
    agent.register_algorithm(name, factory);
  }
}

std::vector<std::string> builtin_algorithm_names() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : factories()) names.push_back(name);
  return names;
}

std::unique_ptr<agent::Algorithm> make_algorithm(const std::string& name,
                                                 const agent::FlowInfo& info) {
  return factories().at(name)(info);
}

}  // namespace ccp::algorithms
