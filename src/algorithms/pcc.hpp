// PCC Allegro (Dong et al., NSDI 2015), simplified, as a CCP algorithm:
// utility-driven rate control via online micro-experiments (Table 1 row
// "PCC": measures loss + sending/receiving rates, controls Rate).
//
// Each monitor interval (one RTT, timed by the datapath control program)
// yields throughput and loss; the agent computes a utility and performs
// gradient-ascent-style rate probing: try rate*(1+eps) and rate*(1-eps)
// in alternating intervals, move toward the better one.
#pragma once

#include "algorithms/common.hpp"

namespace ccp::algorithms {

struct PccParams {
  double epsilon = 0.05;        // probe step
  double loss_penalty = 11.35;  // Allegro's sigmoid-ish penalty weight
  double min_rate_bps = 3000;   // 2 pkts / second floor
};

class Pcc final : public Algorithm {
 public:
  explicit Pcc(const FlowInfo& info, PccParams params = {});

  std::string_view name() const override { return "pcc"; }
  AlgorithmTraits traits() const override {
    return {{"Loss", "Sending Rate", "Receiving Rate"}, {"Rate"}};
  }

  void init(FlowControl& flow) override;
  void on_measurement(FlowControl& flow, const Measurement& m) override;
  void on_urgent(FlowControl& flow, ipc::UrgentKind kind,
                 const Measurement& m) override;

  double rate_bps() const { return base_rate_bps_; }

  /// Allegro-style utility of a monitor interval.
  static double utility(double throughput_bps, double loss_fraction,
                        double penalty_weight);

 private:
  enum class Phase { Up, Down };  // which probe this interval carries

  void push_rate(FlowControl& flow, double rate);

  PccParams params_;
  double mss_;
  double base_rate_bps_;
  Phase phase_ = Phase::Up;
  double up_utility_ = 0;
  bool have_up_ = false;
};

}  // namespace ccp::algorithms
