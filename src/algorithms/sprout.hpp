// A Sprout-flavored forecast controller (Winstein et al., NSDI 2013) —
// Table 1's row "Sprout: Sending Rate, Receiving Rate, RTT -> Rate".
//
// The paper cites Sprout as the motivating example for the control
// language's fixed-interval measurement: "Sprout models available
// network capacity using equally spaced rate measurements" (§2.1). This
// implementation uses exactly that: a `Wait($tick)` control program
// gives the agent delivery-rate samples on a fixed wall-clock grid
// (not per-RTT!), and the agent maintains a mean/variance model of the
// capacity and paces at a conservative lower quantile of its forecast —
// Sprout's cautious-forecast idea, simplified to a Gaussian model.
#pragma once

#include "algorithms/common.hpp"

namespace ccp::algorithms {

struct SproutParams {
  double tick_us = 20'000;        // forecast grid: 20 ms, as in Sprout
  double gain = 0.25;             // EWMA gain for mean/variance tracking
  double cushion_stddevs = 1.0;   // pace at mean - k*sigma (≈ 84th pct safe)
  double min_rate_bps = 2 * 1460 / 0.1;  // floor: 2 pkts / 100 ms
};

class Sprout final : public Algorithm {
 public:
  explicit Sprout(const FlowInfo& info, SproutParams params = {});

  std::string_view name() const override { return "sprout"; }
  AlgorithmTraits traits() const override {
    return {{"Sending Rate", "Receiving Rate", "RTT"}, {"Rate"}};
  }

  void init(FlowControl& flow) override;
  void on_measurement(FlowControl& flow, const Measurement& m) override;
  void on_urgent(FlowControl& flow, ipc::UrgentKind kind,
                 const Measurement& m) override;

  double rate_bps() const { return rate_bps_; }
  double forecast_mean_bps() const { return mean_bps_; }

 private:
  void push(FlowControl& flow);

  SproutParams params_;
  double mss_;
  double rate_bps_;
  double mean_bps_ = 0;
  double var_bps2_ = 0;
  bool have_sample_ = false;
};

}  // namespace ccp::algorithms
