// TIMELY (Mittal et al., SIGCOMM 2015) as a CCP algorithm: RTT-gradient
// rate control (Table 1 row "Timely": measures RTT, controls Rate).
#pragma once

#include "algorithms/common.hpp"

namespace ccp::algorithms {

struct TimelyParams {
  double t_low_us = 500;       // below: additive increase
  double t_high_us = 5000;     // above: multiplicative decrease
  double add_step_bps = 1.25e6 / 8 * 10;  // additive increment (bytes/s)
  double beta = 0.8;           // multiplicative decrease factor
  double ewma_alpha = 0.3;     // rtt-diff smoothing
};

class Timely final : public Algorithm {
 public:
  explicit Timely(const FlowInfo& info, TimelyParams params = {});

  std::string_view name() const override { return "timely"; }
  AlgorithmTraits traits() const override { return {{"RTT"}, {"Rate"}}; }

  void init(FlowControl& flow) override;
  void on_measurement(FlowControl& flow, const Measurement& m) override;
  void on_urgent(FlowControl& flow, ipc::UrgentKind kind,
                 const Measurement& m) override;

  double rate_bps() const { return rate_bps_; }

 private:
  TimelyParams params_;
  double mss_;
  double rate_bps_;
  double prev_rtt_us_ = 0;
  double rtt_diff_us_ = 0;
  double min_rtt_us_ = 1e9;
};

}  // namespace ccp::algorithms
