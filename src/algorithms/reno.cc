#include "algorithms/reno.hpp"

#include <algorithm>
#include <limits>

namespace ccp::algorithms {

Reno::Reno(const FlowInfo& info)
    : mss_(info.mss),
      cwnd_(static_cast<double>(info.init_cwnd_bytes > 0 ? info.init_cwnd_bytes
                                                         : 10 * info.mss)),
      ssthresh_(std::numeric_limits<double>::max()) {}

void Reno::init(FlowControl& flow) {
  flow.install_text(kWindowProgram, VarBindings{{"cwnd", cwnd_}});
}

void Reno::push_cwnd(FlowControl& flow) {
  flow.update_fields(VarBindings{{"cwnd", cwnd_}});
}

void Reno::cut_cwnd(FlowControl& flow) {
  // Loss reactions must not wait for the next control-loop pass: apply
  // the reduction through the direct CWND(c) path (Figure 1) *and*
  // rebind $cwnd so the program's next Cwnd() agrees.
  flow.set_cwnd(cwnd_);
  flow.update_fields(VarBindings{{"cwnd", cwnd_}});
}

void Reno::on_measurement(FlowControl& flow, const Measurement& m) {
  ++reports_seen_;
  const double acked = m.get("acked");
  if (acked <= 0) return;

  if (cwnd_ < ssthresh_) {
    // Slow start: one MSS per acked MSS => exponential growth. Cap the
    // per-report growth at a doubling, as per-batch accounting otherwise
    // overshoots when reports cover more than one RTT of ACKs.
    cwnd_ += std::min(acked, cwnd_);
    if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;
  } else {
    // Congestion avoidance: cwnd grows one MSS per window's worth of
    // acked bytes (cwnd += mss*mss/cwnd for each acked MSS).
    cwnd_ += acked * mss_ / cwnd_;
  }
  push_cwnd(flow);
}

void Reno::on_urgent(FlowControl& flow, ipc::UrgentKind kind, const Measurement&) {
  switch (kind) {
    case ipc::UrgentKind::Loss:
    case ipc::UrgentKind::Ecn:
      // One reduction per congestion episode: after cutting, wait two
      // report intervals (one for the cut to reach the datapath, one to
      // observe its effect) before reacting to further loss urgents.
      if (reports_seen_ >= next_cut_allowed_) {
        next_cut_allowed_ = reports_seen_ + 2;
        ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
        // Fast recovery: deflate to ssthresh (+3 dupack-inflated segments).
        cwnd_ = ssthresh_ + 3.0 * mss_;
        cut_cwnd(flow);
      }
      break;
    case ipc::UrgentKind::Timeout:
      // RTO: collapse to one segment and slow-start again (RFC 5681 §3.1).
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
      cwnd_ = 1.0 * mss_;
      next_cut_allowed_ = reports_seen_ + 2;
      cut_cwnd(flow);
      break;
    case ipc::UrgentKind::FoldUrgent:
      break;
  }
}

}  // namespace ccp::algorithms
