#include "algorithms/pcc.hpp"

#include <algorithm>
#include <cmath>

namespace ccp::algorithms {
namespace {

constexpr const char* kPccProgram = R"(
fold {
  volatile acked    := acked + Pkt.bytes_acked       init 0;
  volatile lost     := lost + Pkt.lost               init 0;
  volatile timeout  := max(timeout, Pkt.was_timeout) init 0 urgent;
  volatile interval := max(interval, Pkt.rtt)        init 0;
  rcv               := Pkt.rcv_rate                  init 0;
}
control {
  Rate($rate);
  Cwnd($cwnd_cap);
  WaitRtts(1.0);
  Report();
}
)";

/// Generous window ceiling so rate control, not the window, shapes the
/// send pattern (2x the rate-delay product, assuming RTTs up to 100 ms).
double cwnd_cap_for(double rate_bps, double mss) {
  return std::max(2.0 * rate_bps * 0.1, 10.0 * mss);
}

}  // namespace

Pcc::Pcc(const FlowInfo& info, PccParams params)
    : params_(params), mss_(info.mss), base_rate_bps_(10.0 * info.mss / 0.01) {}

double Pcc::utility(double throughput_bps, double loss_fraction,
                    double penalty_weight) {
  // u = T * (1 - 1/(1+exp(-100*(L-0.05)))) - penalty * T * L
  // (Allegro's sigmoid loss gate plus a linear loss term.)
  const double sigmoid = 1.0 / (1.0 + std::exp(-100.0 * (loss_fraction - 0.05)));
  return throughput_bps * (1.0 - sigmoid) - penalty_weight * throughput_bps * loss_fraction;
}

void Pcc::init(FlowControl& flow) {
  const double rate = base_rate_bps_ * (1.0 + params_.epsilon);
  flow.install_text(kPccProgram,
                    VarBindings{{"rate", rate},
                                {"cwnd_cap", cwnd_cap_for(rate, mss_)}});
}

void Pcc::push_rate(FlowControl& flow, double rate) {
  flow.update_fields(
      VarBindings{{"rate", rate}, {"cwnd_cap", cwnd_cap_for(rate, mss_)}});
}

void Pcc::on_measurement(FlowControl& flow, const Measurement& m) {
  const double acked = m.get("acked");
  const double lost_pkts = m.get("lost");
  const double rcv = m.get("rcv");
  if (acked <= 0 && lost_pkts <= 0) return;

  const double total_pkts = acked / mss_ + lost_pkts;
  const double loss_frac = total_pkts > 0 ? lost_pkts / total_pkts : 0.0;
  const double u = utility(rcv, loss_frac, params_.loss_penalty);

  if (phase_ == Phase::Up) {
    up_utility_ = u;
    have_up_ = true;
    phase_ = Phase::Down;
    push_rate(flow, base_rate_bps_ * (1.0 - params_.epsilon));
    return;
  }

  // Down phase completed: compare the two micro-experiments and move.
  if (have_up_) {
    if (up_utility_ > u) {
      base_rate_bps_ *= 1.0 + params_.epsilon;
    } else if (u > up_utility_) {
      base_rate_bps_ *= 1.0 - params_.epsilon;
    }
    base_rate_bps_ = std::max(base_rate_bps_, params_.min_rate_bps);
  }
  have_up_ = false;
  phase_ = Phase::Up;
  push_rate(flow, base_rate_bps_ * (1.0 + params_.epsilon));
}

void Pcc::on_urgent(FlowControl& flow, ipc::UrgentKind kind, const Measurement&) {
  if (kind == ipc::UrgentKind::Timeout) {
    base_rate_bps_ = std::max(base_rate_bps_ * 0.5, params_.min_rate_bps);
    phase_ = Phase::Up;
    have_up_ = false;
    push_rate(flow, base_rate_bps_);
  }
}

}  // namespace ccp::algorithms
