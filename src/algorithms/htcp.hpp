// H-TCP (Leith & Shorten, PFLDnet 2004) as a CCP algorithm — one of the
// "over a dozen" kernel algorithms the paper's introduction counts
// (citation [33]). AIMD where the additive increase grows with the time
// since the last congestion event (recovering high-BDP paths quickly)
// and the multiplicative decrease adapts to the observed RTT ratio
// (backing off less when the queue is short).
#pragma once

#include "algorithms/common.hpp"

namespace ccp::algorithms {

class Htcp final : public Algorithm {
 public:
  explicit Htcp(const FlowInfo& info);

  std::string_view name() const override { return "htcp"; }
  AlgorithmTraits traits() const override {
    return {{"ACKs", "Loss", "RTT"}, {"CWND"}};
  }

  void init(FlowControl& flow) override;
  void on_measurement(FlowControl& flow, const Measurement& m) override;
  void on_urgent(FlowControl& flow, ipc::UrgentKind kind,
                 const Measurement& m) override;

  double cwnd_bytes() const { return cwnd_; }

  /// H-TCP's increase factor: 1 for the first second after loss, then
  /// the polynomial 1 + 10(Δ-1) + 0.25(Δ-1)^2 (Δ in seconds).
  static double alpha(double secs_since_loss);

 private:
  void push_cwnd(FlowControl& flow);
  void cut(FlowControl& flow, double beta);

  double mss_;
  double cwnd_;
  double ssthresh_;
  double last_loss_us_ = -1;   // datapath time of the last reduction
  double min_rtt_us_ = 1e9;
  double max_rtt_us_ = 0;
  uint64_t reports_seen_ = 0;
  uint64_t next_cut_allowed_ = 0;
};

}  // namespace ccp::algorithms
