// TCP Cubic as a CCP algorithm — the paper's §2.2 showcase: the window
// update uses real floating-point cbrt/pow in user space instead of the
// kernel's 42-line fixed-point Newton-Raphson implementation.
//
// Follows Ha, Rhee & Xu (2008) and the Linux implementation: cubic window
// curve W(t) = C*(t-K)^3 + W_max, TCP-friendly region, fast convergence.
#pragma once

#include "algorithms/common.hpp"

namespace ccp::algorithms {

class Cubic final : public Algorithm {
 public:
  explicit Cubic(const FlowInfo& info);

  std::string_view name() const override { return "cubic"; }
  AlgorithmTraits traits() const override {
    return {{"Loss", "ACKs"}, {"CWND"}};
  }

  void init(FlowControl& flow) override;
  void on_measurement(FlowControl& flow, const Measurement& m) override;
  void on_urgent(FlowControl& flow, ipc::UrgentKind kind,
                 const Measurement& m) override;

  /// The cube-root window computation from the paper's §2.2 listing,
  /// exposed for the bench that compares it against the kernel's
  /// fixed-point version. `t` is seconds since the loss epoch started.
  /// Returns the target window in packets.
  static double cubic_window(double t, double w_last_max_pkts, double k);
  static double cubic_k(double w_last_max_pkts, double cwnd_pkts);

  double cwnd_bytes() const { return cwnd_pkts_ * mss_; }
  bool in_slow_start() const { return cwnd_pkts_ < ssthresh_pkts_; }

  static constexpr double kC = 0.4;     // cubic scaling constant
  static constexpr double kBeta = 0.7;  // multiplicative decrease factor

 private:
  void push_cwnd(FlowControl& flow);
  void cut_cwnd(FlowControl& flow);  // immediate (direct-control) reduction

  double mss_;
  double cwnd_pkts_;
  double ssthresh_pkts_;
  // Loss epoch state.
  double w_last_max_pkts_ = 0;
  double epoch_start_us_ = -1;  // <0: no epoch yet
  double k_ = 0;
  double w_est_pkts_ = 0;  // Reno-friendly estimate
  uint64_t reports_seen_ = 0;
  uint64_t next_cut_allowed_ = 0;
};

}  // namespace ccp::algorithms
