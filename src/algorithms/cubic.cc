#include "algorithms/cubic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ccp::algorithms {

Cubic::Cubic(const FlowInfo& info)
    : mss_(info.mss),
      cwnd_pkts_(static_cast<double>(info.init_cwnd_bytes > 0
                                         ? info.init_cwnd_bytes / info.mss
                                         : 10)),
      ssthresh_pkts_(std::numeric_limits<double>::max()) {}

double Cubic::cubic_k(double w_last_max_pkts, double cwnd_pkts) {
  // K = cbrt(W_max * (1-beta) / C): time to regain W_max. The paper's
  // listing writes this as pow(max(0, (WlastMax - cwnd)/0.4), 1/3).
  return std::cbrt(std::max(0.0, (w_last_max_pkts - cwnd_pkts) / kC));
}

double Cubic::cubic_window(double t, double w_last_max_pkts, double k) {
  // W(t) = C*(t-K)^3 + W_max  — the §2.2 user-space floating point win.
  return w_last_max_pkts + kC * std::pow(t - k, 3.0);
}

void Cubic::init(FlowControl& flow) {
  flow.install_text(kWindowProgram, VarBindings{{"cwnd", cwnd_pkts_ * mss_}});
}

void Cubic::push_cwnd(FlowControl& flow) {
  flow.update_fields(VarBindings{{"cwnd", cwnd_pkts_ * mss_}});
}

void Cubic::cut_cwnd(FlowControl& flow) {
  // Immediate reduction via the direct CWND(c) path (Figure 1), plus the
  // $cwnd rebind for the program's next pass.
  flow.set_cwnd(cwnd_pkts_ * mss_);
  flow.update_fields(VarBindings{{"cwnd", cwnd_pkts_ * mss_}});
}

void Cubic::on_measurement(FlowControl& flow, const Measurement& m) {
  ++reports_seen_;
  const double acked = m.get("acked");
  const double now_us = m.get("now");
  const double rtt_us = std::max(1.0, m.get("rtt"));
  (void)rtt_us;
  if (acked <= 0) return;

  if (cwnd_pkts_ < ssthresh_pkts_) {
    cwnd_pkts_ += std::min(acked / mss_, cwnd_pkts_);  // slow start
    push_cwnd(flow);
    return;
  }

  if (epoch_start_us_ < 0) {
    // First congestion-avoidance report of this epoch.
    epoch_start_us_ = now_us;
    if (w_last_max_pkts_ <= 0) w_last_max_pkts_ = cwnd_pkts_;
    k_ = cubic_k(w_last_max_pkts_, cwnd_pkts_);
    w_est_pkts_ = cwnd_pkts_;
  }

  // Target the cubic curve one RTT ahead, like the kernel does.
  const double t = (now_us - epoch_start_us_ + rtt_us) / 1e6;
  double target = cubic_window(t, w_last_max_pkts_, k_);

  // TCP-friendly region: track what Reno would have reached; Cubic must
  // not be slower than standard TCP at low BDP.
  const double acked_pkts = acked / mss_;
  w_est_pkts_ += 0.5 * 3.0 * (1.0 - kBeta) / (1.0 + kBeta) * acked_pkts / cwnd_pkts_;
  target = std::max(target, w_est_pkts_);

  if (target > cwnd_pkts_) {
    // Approach the target over roughly one RTT of ACKs, as Linux's
    // per-ACK cnt mechanism does: grow by (target-cwnd) scaled by the
    // fraction of a window this report acknowledges.
    const double step = (target - cwnd_pkts_) * std::min(1.0, acked_pkts / cwnd_pkts_);
    cwnd_pkts_ += step;
  } else {
    // Very slow growth when above the curve (Linux: cwnd + 1 per 100 ACKs).
    cwnd_pkts_ += 0.01 * acked_pkts / cwnd_pkts_;
  }
  push_cwnd(flow);
}

void Cubic::on_urgent(FlowControl& flow, ipc::UrgentKind kind, const Measurement&) {
  switch (kind) {
    case ipc::UrgentKind::Loss:
    case ipc::UrgentKind::Ecn: {
      // One reduction per episode; see Reno::on_urgent for the rationale.
      if (reports_seen_ < next_cut_allowed_) return;
      next_cut_allowed_ = reports_seen_ + 2;
      epoch_start_us_ = -1;
      // Fast convergence: if this W_max is below the previous one, the
      // flow is losing share; release more.
      if (cwnd_pkts_ < w_last_max_pkts_) {
        w_last_max_pkts_ = cwnd_pkts_ * (2.0 - kBeta) / 2.0;
      } else {
        w_last_max_pkts_ = cwnd_pkts_;
      }
      cwnd_pkts_ = std::max(cwnd_pkts_ * kBeta, 2.0);
      ssthresh_pkts_ = cwnd_pkts_;
      cut_cwnd(flow);
      break;
    }
    case ipc::UrgentKind::Timeout:
      ssthresh_pkts_ = std::max(cwnd_pkts_ * kBeta, 2.0);
      cwnd_pkts_ = 1.0;
      epoch_start_us_ = -1;
      w_last_max_pkts_ = 0;
      next_cut_allowed_ = reports_seen_ + 2;
      cut_cwnd(flow);
      break;
    case ipc::UrgentKind::FoldUrgent:
      break;
  }
}

}  // namespace ccp::algorithms
