#include "algorithms/sprout.hpp"

#include <algorithm>
#include <cmath>

namespace ccp::algorithms {
namespace {

/// Note Wait($tick), not WaitRtts: the measurement grid is equally
/// spaced in *time*, which is the property Sprout's capacity model needs
/// (§2.1). `delivered` over one tick / tick length = the capacity sample.
constexpr const char* kSproutProgram = R"(
fold {
  volatile delivered := delivered + Pkt.bytes_acked  init 0;
  volatile loss      := loss + Pkt.lost              init 0 urgent;
  volatile timeout   := max(timeout, Pkt.was_timeout) init 0 urgent;
  rtt                := ewma(rtt, Pkt.rtt, 0.25)     init 0;
  minrtt             := if(Pkt.rtt > 0, min(minrtt, Pkt.rtt), minrtt) init 0x7fffffff;
}
control {
  Rate($rate);
  Cwnd($cwnd_cap);
  Wait($tick);
  Report();
}
)";

}  // namespace

Sprout::Sprout(const FlowInfo& info, SproutParams params)
    : params_(params),
      mss_(info.mss),
      rate_bps_(10.0 * info.mss / 0.02) {}  // 10 packets per tick to start

void Sprout::push(FlowControl& flow) {
  // Generous window ceiling: pacing shapes the traffic, the window only
  // bounds the worst case (2x the rate over a 100 ms path).
  const double cap = std::max(2.0 * rate_bps_ * 0.1, 10.0 * mss_);
  flow.update_fields(VarBindings{{"rate", rate_bps_}, {"cwnd_cap", cap}});
}

void Sprout::init(FlowControl& flow) {
  const double cap = std::max(2.0 * rate_bps_ * 0.1, 10.0 * mss_);
  flow.install_text(kSproutProgram,
                    VarBindings{{"rate", rate_bps_},
                                {"cwnd_cap", cap},
                                {"tick", params_.tick_us}});
}

void Sprout::on_measurement(FlowControl& flow, const Measurement& m) {
  // One equally-spaced capacity sample: bytes delivered during the tick.
  const double sample_bps = m.get("delivered") / (params_.tick_us / 1e6);
  if (sample_bps <= 0 && !have_sample_) return;

  if (!have_sample_) {
    have_sample_ = true;
    mean_bps_ = sample_bps;
    var_bps2_ = 0;
  } else {
    const double err = sample_bps - mean_bps_;
    mean_bps_ += params_.gain * err;
    var_bps2_ += params_.gain * (err * err - var_bps2_);
  }

  // Cautious forecast: pace at a lower quantile of the modeled capacity.
  // The model alone is self-fulfilling (delivery can never exceed what
  // we send), so probing is gated on *delay*: while the smoothed RTT
  // stays near the path minimum the queue is empty and the capacity
  // estimate is a lower bound — push multiplicatively above it. Once
  // delay builds, fall back to the conservative forecast and drain.
  const double cushion = params_.cushion_stddevs * std::sqrt(var_bps2_);
  const double forecast = mean_bps_ - cushion;
  rate_bps_ = std::max({forecast, mean_bps_ * 0.5, params_.min_rate_bps});

  const double rtt = m.get("rtt");
  const double minrtt = m.get("minrtt");
  const bool low_delay =
      rtt > 0 && minrtt > 0 && minrtt < 1e9 && rtt < 1.25 * minrtt;
  if (low_delay) {
    const double probe =
        mean_bps_ * 1.25 + mss_ / (params_.tick_us / 1e6);  // MI + one pkt/tick
    rate_bps_ = std::max(rate_bps_, probe);
  }
  push(flow);
}

void Sprout::on_urgent(FlowControl& flow, ipc::UrgentKind kind, const Measurement&) {
  if (kind == ipc::UrgentKind::Timeout || kind == ipc::UrgentKind::Loss) {
    // Loss means the forecast overshot badly: damp the model, not just
    // the instantaneous rate.
    mean_bps_ *= 0.7;
    rate_bps_ = std::max(mean_bps_, params_.min_rate_bps);
    push(flow);
  }
}

}  // namespace ccp::algorithms
