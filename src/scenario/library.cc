#include "scenario/library.hpp"

#include <stdexcept>

namespace ccp::scenario {

namespace {

/// Inter-CCA coexistence, the buffer-depth story of Hock et al. and Ware
/// et al.: in a shallow buffer BBR's model-driven sending shrugs off the
/// drops that force Cubic to back off, so BBR takes well over its fair
/// share. The _deep variant below shows the published flip.
ScenarioSpec cubic_vs_bbr(bool deep) {
  ScenarioSpec spec;
  spec.name = deep ? "cubic_vs_bbr_deep" : "cubic_vs_bbr";
  spec.description =
      deep ? "Cubic vs BBR on a deep (4 BDP) buffer: Cubic wins the queue"
           : "Cubic vs BBR on a shallow (0.5 BDP) buffer: BBR gains share";
  spec.duration_secs = 24;
  LinkSpec link;
  link.rate_bps = 96e6;
  link.delay = Duration::from_millis(10);  // 20 ms base RTT
  link.buffer_bdp = deep ? 4.0 : 0.5;
  spec.links.push_back(link);
  FlowGroupSpec cubic;
  cubic.name = "cubic";
  cubic.alg = "cubic";
  cubic.count = 2;
  spec.groups.push_back(cubic);
  FlowGroupSpec bbr;
  bbr.name = "bbr";
  bbr.alg = "bbr";
  bbr.count = 2;
  spec.groups.push_back(bbr);
  return spec;
}

/// Parking lot: one long flow crosses all three hops; one cross flow per
/// hop. The long flow pays the multi-bottleneck toll and lands below the
/// per-hop fair share — the classic parking-lot unfairness.
ScenarioSpec parking_lot() {
  ScenarioSpec spec;
  spec.name = "parking_lot";
  spec.description = "3-hop parking lot: long flow vs per-hop cross traffic";
  spec.topology = Topology::kParkingLot;
  spec.duration_secs = 20;
  for (int i = 0; i < 3; ++i) {
    LinkSpec link;
    link.rate_bps = 48e6;
    link.delay = Duration::from_millis(5);
    link.buffer_bdp = 1.0;
    spec.links.push_back(link);
  }
  FlowGroupSpec long_flow;
  long_flow.name = "long";
  long_flow.alg = "cubic";
  long_flow.hop_first = 0;
  long_flow.hop_last = 2;
  spec.groups.push_back(long_flow);
  for (size_t hop = 0; hop < 3; ++hop) {
    FlowGroupSpec cross;
    cross.name = "cross" + std::to_string(hop);
    cross.alg = "cubic";
    cross.hop_first = cross.hop_last = hop;
    spec.groups.push_back(cross);
  }
  return spec;
}

/// "Wireless" link: 0.3% random loss and a rate dip to half bandwidth
/// mid-run. Loss-blind BBR should hold goodput where loss-as-congestion
/// Cubic collapses — the robustness axis measurement-based CCAs claim.
ScenarioSpec wireless_loss() {
  ScenarioSpec spec;
  spec.name = "wireless_loss";
  spec.description = "random-loss + variable-rate wireless bottleneck";
  spec.duration_secs = 20;
  LinkSpec link;
  link.rate_bps = 24e6;
  link.delay = Duration::from_millis(20);  // 40 ms base RTT
  link.buffer_bdp = 1.0;
  link.random_loss = 0.003;
  link.rate_schedule = {{Duration::from_secs(8), 12e6},
                        {Duration::from_secs(14), 24e6}};
  spec.links.push_back(link);
  FlowGroupSpec cubic;
  cubic.name = "cubic";
  cubic.alg = "cubic";
  spec.groups.push_back(cubic);
  FlowGroupSpec bbr;
  bbr.name = "bbr";
  bbr.alg = "bbr";
  spec.groups.push_back(bbr);
  return spec;
}

/// RTT unfairness: four Cubic flows with RTTs 10/30/50/70 ms sharing one
/// bottleneck. Short-RTT flows grow faster per unit time and win share.
ScenarioSpec rtt_unfairness() {
  ScenarioSpec spec;
  spec.name = "rtt_unfairness";
  spec.description = "RTT-unfairness sweep: 10..70 ms Cubic flows";
  spec.duration_secs = 30;
  LinkSpec link;
  link.rate_bps = 96e6;
  link.delay = Duration::from_millis(5);  // 10 ms base RTT
  link.buffer_bdp = 1.0;
  spec.links.push_back(link);
  FlowGroupSpec group;
  group.name = "cubic";
  group.alg = "cubic";
  group.count = 4;
  group.rtt_step = Duration::from_millis(20);
  spec.groups.push_back(group);
  return spec;
}

/// Shared-bottleneck multipath: a two-subflow EWTCP-coupled bundle vs a
/// regular flow. Coupled, the bundle's aggregate competes like one flow
/// (~50/50 vs the regular flow); uncoupled it would grab ~2/3.
ScenarioSpec multipath_coupled() {
  ScenarioSpec spec;
  spec.name = "multipath_coupled";
  spec.description = "two-subflow coupled bundle vs one regular flow";
  spec.duration_secs = 24;
  LinkSpec link;
  link.rate_bps = 48e6;
  link.delay = Duration::from_millis(10);  // 20 ms base RTT
  link.buffer_bdp = 1.0;
  spec.links.push_back(link);
  FlowGroupSpec mp;
  mp.name = "mp";
  mp.alg = "cubic";
  mp.count = 2;
  mp.coupled_subflows = 2;
  spec.groups.push_back(mp);
  FlowGroupSpec bg;
  bg.name = "bg";
  bg.alg = "cubic";
  spec.groups.push_back(bg);
  return spec;
}

}  // namespace

std::vector<std::string> builtin_scenario_names() {
  return {"cubic_vs_bbr", "cubic_vs_bbr_deep", "parking_lot", "wireless_loss",
          "rtt_unfairness", "multipath_coupled"};
}

ScenarioSpec builtin_scenario(const std::string& name) {
  if (name == "cubic_vs_bbr") return cubic_vs_bbr(/*deep=*/false);
  if (name == "cubic_vs_bbr_deep") return cubic_vs_bbr(/*deep=*/true);
  if (name == "parking_lot") return parking_lot();
  if (name == "wireless_loss") return wireless_loss();
  if (name == "rtt_unfairness") return rtt_unfairness();
  if (name == "multipath_coupled") return multipath_coupled();
  throw std::invalid_argument("unknown scenario: " + name +
                              " (see ccp_scenario --list)");
}

}  // namespace ccp::scenario
