// Scenario result: the fairness/latency/retransmit scorecard.
//
// One Scorecard per scenario run: per-flow rows (throughput, share,
// retransmits, RTT and queueing-delay percentiles, a throughput time
// series on the sample grid) plus aggregates (total throughput, Jain
// fairness, convergence time, per-hop link accounting). Emitters reuse
// the util/series.hpp schema: the time-series CSV is the canonical
// aligned-columns format, the summary CSV is the shared flow-summary
// schema, and json() nests series via series_json_value — so scorecards
// parse with the same tooling as every other series in the repo.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/series.hpp"

namespace ccp::scenario {

struct FlowScore {
  std::string group;       // flow-group name
  std::string alg;
  uint32_t flow = 0;       // global flow index within the scenario
  double start_secs = 0;
  double stop_secs = 0;    // end of active window (scenario end if no stop)
  double throughput_mbps = 0;  // goodput over the active window
  double share = 0;            // fraction of aggregate goodput
  uint64_t retransmits = 0;
  uint64_t timeouts = 0;
  double rtt_p50_ms = 0;
  double rtt_p95_ms = 0;
  double qdelay_p50_ms = 0;  // RTT percentile minus base RTT
  double qdelay_p95_ms = 0;
  std::vector<util::SeriesPoint> tput_mbps;  // per-sample-interval goodput
};

struct HopScore {
  size_t hop = 0;
  double utilization = 0;  // vs time-weighted mean rate (rate schedule aware)
  uint64_t delivered_pkts = 0;
  uint64_t tail_drops = 0;
  uint64_t random_drops = 0;
  uint64_t ecn_marks = 0;
  double max_queue_pkts = 0;
};

struct Scorecard {
  std::string scenario;
  uint64_t seed = 0;
  double duration_secs = 0;
  std::vector<FlowScore> flows;
  std::vector<HopScore> hops;
  double aggregate_mbps = 0;
  double jain = 0;               // over per-flow throughput shares
  double convergence_secs = -1;  // see runner.hpp for the definition
  uint64_t total_retransmits = 0;
  uint64_t total_timeouts = 0;

  /// Flow name used across all emitters: "<group>/<index>".
  static std::string flow_name(const FlowScore& f);

  /// Per-flow throughput time series in the shared aligned-columns CSV.
  void write_series_csv(std::FILE* out) const;

  /// Per-flow summary rows in the shared flow-summary CSV schema, plus
  /// trailing aggregate/hop comment lines.
  void write_summary_csv(std::FILE* out) const;

  /// The whole scorecard as one JSON object (a bench_json-style value).
  std::string json() const;

  /// Human-readable table for the CLI.
  void print(std::FILE* out) const;

  /// The shared flow-summary rows (what fig3/fig4 also emit).
  std::vector<util::FlowSummaryRow> summary_rows() const;
};

}  // namespace ccp::scenario
