#include "scenario/scorecard.hpp"

#include <map>

namespace ccp::scenario {

std::string Scorecard::flow_name(const FlowScore& f) {
  return f.group + "/" + std::to_string(f.flow);
}

void Scorecard::write_series_csv(std::FILE* out) const {
  std::map<std::string, std::vector<util::SeriesPoint>> columns;
  for (const FlowScore& f : flows) columns[flow_name(f)] = f.tput_mbps;
  util::write_series_csv(out, columns);
}

std::vector<util::FlowSummaryRow> Scorecard::summary_rows() const {
  std::vector<util::FlowSummaryRow> rows;
  rows.reserve(flows.size());
  for (const FlowScore& f : flows) {
    util::FlowSummaryRow row;
    row.name = flow_name(f);
    row.throughput_mbps = f.throughput_mbps;
    row.share = f.share;
    row.retransmits = static_cast<double>(f.retransmits);
    row.timeouts = static_cast<double>(f.timeouts);
    row.rtt_p50_ms = f.rtt_p50_ms;
    row.rtt_p95_ms = f.rtt_p95_ms;
    rows.push_back(std::move(row));
  }
  return rows;
}

void Scorecard::write_summary_csv(std::FILE* out) const {
  util::write_flow_summary_csv(out, summary_rows());
  std::fprintf(out,
               "# scenario=%s seed=%llu jain=%.4f aggregate_mbps=%.3f "
               "convergence_secs=%.1f retransmits=%llu timeouts=%llu\n",
               scenario.c_str(), static_cast<unsigned long long>(seed), jain,
               aggregate_mbps, convergence_secs,
               static_cast<unsigned long long>(total_retransmits),
               static_cast<unsigned long long>(total_timeouts));
  for (const HopScore& h : hops) {
    std::fprintf(out,
                 "# hop=%zu utilization=%.4f delivered=%llu tail_drops=%llu "
                 "random_drops=%llu ecn_marks=%llu max_queue_pkts=%.1f\n",
                 h.hop, h.utilization,
                 static_cast<unsigned long long>(h.delivered_pkts),
                 static_cast<unsigned long long>(h.tail_drops),
                 static_cast<unsigned long long>(h.random_drops),
                 static_cast<unsigned long long>(h.ecn_marks),
                 h.max_queue_pkts);
  }
}

std::string Scorecard::json() const {
  std::string out;
  char buf[512];
  auto emit = [&](const char* fmt, auto... args) {
    const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
    if (n > 0) out.append(buf, static_cast<size_t>(n));
  };
  emit("{\"scenario\":\"%s\",\"seed\":%llu,\"duration_secs\":%.6g,"
       "\"aggregate_mbps\":%.6g,\"jain\":%.6g,\"convergence_secs\":%.6g,"
       "\"retransmits\":%llu,\"timeouts\":%llu",
       scenario.c_str(), static_cast<unsigned long long>(seed), duration_secs,
       aggregate_mbps, jain, convergence_secs,
       static_cast<unsigned long long>(total_retransmits),
       static_cast<unsigned long long>(total_timeouts));
  out += ",\"flows\":[";
  for (size_t i = 0; i < flows.size(); ++i) {
    const FlowScore& f = flows[i];
    emit("%s{\"flow\":\"%s\",\"alg\":\"%s\",\"start_secs\":%.6g,"
         "\"stop_secs\":%.6g,\"throughput_mbps\":%.6g,\"share\":%.6g,"
         "\"retransmits\":%llu,\"timeouts\":%llu,\"rtt_p50_ms\":%.6g,"
         "\"rtt_p95_ms\":%.6g,\"qdelay_p50_ms\":%.6g,\"qdelay_p95_ms\":%.6g,"
         "\"tput_mbps\":",
         i ? "," : "", flow_name(f).c_str(), f.alg.c_str(), f.start_secs,
         f.stop_secs, f.throughput_mbps, f.share,
         static_cast<unsigned long long>(f.retransmits),
         static_cast<unsigned long long>(f.timeouts), f.rtt_p50_ms,
         f.rtt_p95_ms, f.qdelay_p50_ms, f.qdelay_p95_ms);
    out += util::series_json_value(f.tput_mbps);
    out += "}";
  }
  out += "],\"hops\":[";
  for (size_t i = 0; i < hops.size(); ++i) {
    const HopScore& h = hops[i];
    emit("%s{\"hop\":%zu,\"utilization\":%.6g,\"delivered_pkts\":%llu,"
         "\"tail_drops\":%llu,\"random_drops\":%llu,\"ecn_marks\":%llu,"
         "\"max_queue_pkts\":%.6g}",
         i ? "," : "", h.hop, h.utilization,
         static_cast<unsigned long long>(h.delivered_pkts),
         static_cast<unsigned long long>(h.tail_drops),
         static_cast<unsigned long long>(h.random_drops),
         static_cast<unsigned long long>(h.ecn_marks), h.max_queue_pkts);
  }
  out += "]}";
  return out;
}

void Scorecard::print(std::FILE* out) const {
  std::fprintf(out, "scenario %s (seed %llu, %.0f s)\n", scenario.c_str(),
               static_cast<unsigned long long>(seed), duration_secs);
  std::fprintf(out, "%-16s %-12s %10s %7s %8s %8s %10s %10s\n", "flow", "alg",
               "tput", "share", "rtt p50", "rtt p95", "qdly p95", "rexmits");
  for (const FlowScore& f : flows) {
    std::fprintf(out,
                 "%-16s %-12s %7.2f Mb %6.1f%% %6.2fms %6.2fms %8.2fms %10llu\n",
                 flow_name(f).c_str(), f.alg.c_str(), f.throughput_mbps,
                 f.share * 100.0, f.rtt_p50_ms, f.rtt_p95_ms, f.qdelay_p95_ms,
                 static_cast<unsigned long long>(f.retransmits));
  }
  std::fprintf(out,
               "aggregate %.2f Mbit/s, Jain %.3f, convergence %.1f s, "
               "%llu retransmits, %llu timeouts\n",
               aggregate_mbps, jain, convergence_secs,
               static_cast<unsigned long long>(total_retransmits),
               static_cast<unsigned long long>(total_timeouts));
  for (const HopScore& h : hops) {
    std::fprintf(out,
                 "hop %zu: utilization %.1f%%, %llu delivered, %llu tail-drop, "
                 "%llu random-drop, %llu marked, max queue %.1f pkts\n",
                 h.hop, h.utilization * 100.0,
                 static_cast<unsigned long long>(h.delivered_pkts),
                 static_cast<unsigned long long>(h.tail_drops),
                 static_cast<unsigned long long>(h.random_drops),
                 static_cast<unsigned long long>(h.ecn_marks),
                 h.max_queue_pkts);
  }
}

}  // namespace ccp::scenario
