// Built-in scenario library: the coverage matrix ROADMAP's "Scenario
// matrix" item calls for, each stressing a different fidelity axis that
// the single-dumbbell figure benches never exercise.
//
//   cubic_vs_bbr       inter-CCA coexistence, shallow buffer (BBR gains share)
//   cubic_vs_bbr_deep  same mix, 4 BDP buffer (the flip: Cubic wins the queue)
//   parking_lot        a 3-hop chain: one long flow vs per-hop cross traffic
//   wireless_loss      random loss + a variable-rate ("wireless") bottleneck
//   rtt_unfairness     same CCA, spread RTTs: who gets the bigger share
//   multipath_coupled  two-subflow coupled bundle vs a regular flow on a
//                      shared bottleneck (CCID5's experiment shape)
#pragma once

#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace ccp::scenario {

/// Names of all built-in scenarios, in matrix order.
std::vector<std::string> builtin_scenario_names();

/// Returns the named built-in spec. Throws std::invalid_argument on an
/// unknown name.
ScenarioSpec builtin_scenario(const std::string& name);

}  // namespace ccp::scenario
