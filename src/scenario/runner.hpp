// Executes a ScenarioSpec on the event-queue simulator with CCP hosts.
//
// One run builds the topology (scenario/topology.hpp), a SimCcpHost
// whose agent has the full algorithm registry, and the traffic mix: each
// flow group's algorithm is either a registered CCP algorithm (its
// control loop runs in the simulated agent, measurements cross the
// modeled IPC boundary — the paper's architecture) or a "native:<name>"
// in-datapath baseline. Flows start/stop on schedule, sample their
// goodput on the spec's grid, and the run distills into a Scorecard.
//
// Determinism: everything derives from spec.seed — the host's IPC-jitter
// RNG, every hop's loss RNG (forked per hop in topology order), and the
// event queue's tie-breaking. Same spec + same seed => byte-identical
// scorecard JSON.
//
// Convergence time: the first sample time at or after the last group
// start where the instantaneous Jain index across the flows active for
// that whole sample reaches 0.9 and holds for kConvergenceHold
// consecutive samples; -1 if it never does. (Heterogeneous-CCA mixes
// legitimately report -1.)
#pragma once

#include "scenario/scorecard.hpp"
#include "scenario/spec.hpp"

namespace ccp::scenario {

inline constexpr double kConvergenceJain = 0.9;
inline constexpr int kConvergenceHold = 3;

/// Runs the scenario to spec.duration_secs and scores it. Throws
/// std::invalid_argument on a spec that fails validate() or names an
/// unknown algorithm.
Scorecard run_scenario(const ScenarioSpec& spec);

}  // namespace ccp::scenario
