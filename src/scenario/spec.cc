#include "scenario/spec.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/units.hpp"

namespace ccp::scenario {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("scenario spec: " + what);
}

/// Splits "key=value" (value may be empty for flag-like tokens).
std::pair<std::string, std::string> split_kv(const std::string& token) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos) bad("expected key=value, got '" + token + "'");
  return {token.substr(0, eq), token.substr(eq + 1)};
}

double parse_num(const std::string& key, const std::string& value) {
  try {
    size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    bad("bad number for " + key + ": '" + value + "'");
  }
}

LinkSpec parse_link(std::istringstream& rest) {
  LinkSpec link;
  std::string token;
  while (rest >> token) {
    auto [key, value] = split_kv(token);
    if (key == "rate") {
      link.rate_bps = parse_bandwidth_bps(value);
    } else if (key == "delay") {
      link.delay = parse_duration(value);
    } else if (key == "buffer") {
      link.buffer_bdp = parse_num(key, value);
    } else if (key == "queue_bytes") {
      link.queue_bytes = static_cast<uint64_t>(parse_num(key, value));
    } else if (key == "ecn") {
      link.ecn_threshold_bdp = parse_num(key, value);
    } else if (key == "loss") {
      link.random_loss = parse_num(key, value);
    } else if (key.rfind("rate@", 0) == 0) {
      // rate@<time>=<bandwidth>: one variable-rate schedule entry.
      link.rate_schedule.push_back(
          {parse_duration(key.substr(5)), parse_bandwidth_bps(value)});
    } else {
      bad("unknown link key '" + key + "'");
    }
  }
  return link;
}

FlowGroupSpec parse_group(std::istringstream& rest) {
  FlowGroupSpec group;
  std::string token;
  while (rest >> token) {
    auto [key, value] = split_kv(token);
    if (key == "name") {
      group.name = value;
    } else if (key == "alg") {
      group.alg = value;
    } else if (key == "count") {
      group.count = static_cast<uint32_t>(parse_num(key, value));
    } else if (key == "start") {
      group.start_secs = parse_num(key, value);
    } else if (key == "stop") {
      group.stop_secs = parse_num(key, value);
    } else if (key == "stagger") {
      group.stagger_secs = parse_num(key, value);
    } else if (key == "extra_rtt") {
      group.extra_rtt = parse_duration(value);
    } else if (key == "rtt_step") {
      group.rtt_step = parse_duration(value);
    } else if (key == "hops") {
      // "a-b" or a single hop index.
      const size_t dash = value.find('-');
      if (dash == std::string::npos) {
        group.hop_first = group.hop_last =
            static_cast<size_t>(parse_num(key, value));
      } else {
        group.hop_first =
            static_cast<size_t>(parse_num(key, value.substr(0, dash)));
        group.hop_last =
            static_cast<size_t>(parse_num(key, value.substr(dash + 1)));
      }
    } else if (key == "coupled") {
      group.coupled_subflows = static_cast<uint32_t>(parse_num(key, value));
    } else if (key == "ecn") {
      group.ecn = parse_num(key, value) != 0;
    } else {
      bad("unknown group key '" + key + "'");
    }
  }
  if (group.name.empty()) group.name = group.alg;
  return group;
}

}  // namespace

void ScenarioSpec::validate() const {
  if (name.empty()) bad("missing name");
  if (links.empty()) bad("at least one link required");
  if (topology == Topology::kDumbbell && links.size() != 1) {
    bad("dumbbell topology takes exactly one link");
  }
  if (groups.empty()) bad("at least one flow group required");
  if (duration_secs <= 0) bad("duration must be positive");
  if (sample_interval_secs <= 0) bad("sample interval must be positive");
  for (const LinkSpec& link : links) {
    if (link.rate_bps <= 0) bad("link rate must be positive");
    if (link.random_loss < 0 || link.random_loss >= 1) {
      bad("link loss must be in [0, 1)");
    }
    for (size_t i = 1; i < link.rate_schedule.size(); ++i) {
      if (link.rate_schedule[i].at <= link.rate_schedule[i - 1].at) {
        bad("rate schedule must be ascending in time");
      }
    }
    for (const sim::RateChange& change : link.rate_schedule) {
      if (change.rate_bps <= 0) bad("scheduled rate must be positive");
    }
  }
  for (const FlowGroupSpec& group : groups) {
    if (group.count == 0) bad("group '" + group.name + "': count must be >= 1");
    if (group.alg.empty()) bad("group '" + group.name + "': missing alg");
    if (group.start_secs < 0) {
      bad("group '" + group.name + "': start must be >= 0");
    }
    if (group.stop_secs >= 0 && group.stop_secs <= group.start_secs) {
      bad("group '" + group.name + "': stop must be after start");
    }
    if (group.hop_first >= links.size()) {
      bad("group '" + group.name + "': hop_first beyond last hop");
    }
    if (group.hop_last < group.hop_first) {
      bad("group '" + group.name + "': hop_last before hop_first");
    }
    if (group.coupled_subflows < 1) {
      bad("group '" + group.name + "': coupled must be >= 1");
    }
    if (group.coupled_subflows > 1 && group.count % group.coupled_subflows) {
      bad("group '" + group.name + "': count must be a multiple of coupled");
    }
  }
}

ScenarioSpec parse_spec(const std::string& text) {
  ScenarioSpec spec;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (const size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream rest(line);
    std::string directive;
    if (!(rest >> directive)) continue;  // blank line
    if (directive == "scenario") {
      if (!(rest >> spec.name)) bad("scenario directive needs a name");
    } else if (directive == "describe") {
      std::string word, text_out;
      while (rest >> word) {
        if (!text_out.empty()) text_out += ' ';
        text_out += word;
      }
      spec.description = text_out;
    } else if (directive == "topology") {
      std::string kind;
      rest >> kind;
      if (kind == "dumbbell") {
        spec.topology = Topology::kDumbbell;
      } else if (kind == "parking_lot") {
        spec.topology = Topology::kParkingLot;
      } else {
        bad("unknown topology '" + kind + "'");
      }
    } else if (directive == "duration") {
      std::string value;
      rest >> value;
      spec.duration_secs = parse_num(directive, value);
    } else if (directive == "seed") {
      std::string value;
      rest >> value;
      spec.seed = static_cast<uint64_t>(parse_num(directive, value));
    } else if (directive == "ipc") {
      std::string value;
      rest >> value;
      spec.ipc_delay = parse_duration(value);
    } else if (directive == "sample_interval") {
      std::string value;
      rest >> value;
      spec.sample_interval_secs = parse_num(directive, value);
    } else if (directive == "link") {
      spec.links.push_back(parse_link(rest));
    } else if (directive == "group") {
      spec.groups.push_back(parse_group(rest));
    } else {
      bad("unknown directive '" + directive + "'");
    }
  }
  spec.validate();
  return spec;
}

std::string format_spec(const ScenarioSpec& spec) {
  std::string out;
  char buf[256];
  auto emit = [&](const char* fmt, auto... args) {
    const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
    if (n > 0) out.append(buf, static_cast<size_t>(n));
  };
  emit("scenario %s\n", spec.name.c_str());
  if (!spec.description.empty()) emit("describe %s\n", spec.description.c_str());
  emit("topology %s\n",
       spec.topology == Topology::kDumbbell ? "dumbbell" : "parking_lot");
  emit("duration %g\n", spec.duration_secs);
  emit("seed %llu\n", static_cast<unsigned long long>(spec.seed));
  emit("ipc %lldus\n", static_cast<long long>(spec.ipc_delay.micros()));
  emit("sample_interval %g\n", spec.sample_interval_secs);
  for (const LinkSpec& link : spec.links) {
    emit("link rate=%gbps delay=%lldus buffer=%g", link.rate_bps,
         static_cast<long long>(link.delay.micros()), link.buffer_bdp);
    if (link.queue_bytes > 0) {
      emit(" queue_bytes=%llu", static_cast<unsigned long long>(link.queue_bytes));
    }
    if (link.ecn_threshold_bdp >= 0) emit(" ecn=%g", link.ecn_threshold_bdp);
    if (link.random_loss > 0) emit(" loss=%g", link.random_loss);
    for (const sim::RateChange& change : link.rate_schedule) {
      emit(" rate@%lldus=%gbps", static_cast<long long>(change.at.micros()),
           change.rate_bps);
    }
    emit("\n");
  }
  for (const FlowGroupSpec& group : spec.groups) {
    emit("group name=%s alg=%s count=%u start=%g", group.name.c_str(),
         group.alg.c_str(), group.count, group.start_secs);
    if (group.stop_secs >= 0) emit(" stop=%g", group.stop_secs);
    if (group.stagger_secs > 0) emit(" stagger=%g", group.stagger_secs);
    if (group.extra_rtt > Duration::zero()) {
      emit(" extra_rtt=%lldus", static_cast<long long>(group.extra_rtt.micros()));
    }
    if (group.rtt_step > Duration::zero()) {
      emit(" rtt_step=%lldus", static_cast<long long>(group.rtt_step.micros()));
    }
    if (group.hop_first != 0 || group.hop_last != SIZE_MAX) {
      emit(" hops=%zu-%zu", group.hop_first,
           group.hop_last == SIZE_MAX ? spec.links.size() - 1 : group.hop_last);
    }
    if (group.coupled_subflows > 1) emit(" coupled=%u", group.coupled_subflows);
    if (group.ecn) emit(" ecn=1");
    emit("\n");
  }
  return out;
}

}  // namespace ccp::scenario
