#include "scenario/runner.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "algorithms/native/native_cubic.hpp"
#include "algorithms/native/native_dctcp.hpp"
#include "algorithms/native/native_reno.hpp"
#include "algorithms/native/native_vegas.hpp"
#include "scenario/coupled.hpp"
#include "scenario/topology.hpp"
#include "sim/ccp_host.hpp"

namespace ccp::scenario {

namespace {

constexpr uint32_t kMss = 1460;
constexpr uint64_t kInitCwnd = 10 * kMss;

std::unique_ptr<datapath::CcModule> make_native(const std::string& name) {
  if (name == "reno") {
    return std::make_unique<algorithms::native::NativeReno>(kMss, kInitCwnd);
  }
  if (name == "cubic") {
    return std::make_unique<algorithms::native::NativeCubic>(kMss, kInitCwnd);
  }
  if (name == "vegas") {
    return std::make_unique<algorithms::native::NativeVegas>(kMss, kInitCwnd);
  }
  if (name == "dctcp") {
    return std::make_unique<algorithms::native::NativeDctcp>(kMss, kInitCwnd);
  }
  throw std::invalid_argument("unknown native baseline: " + name);
}

struct FlowRecord {
  const FlowGroupSpec* group = nullptr;
  sim::TcpSender* sender = nullptr;
  double start_secs = 0;
  double stop_secs = 0;  // active-window end (scenario end if no stop)
  uint64_t last_sampled_bytes = 0;
  std::vector<util::SeriesPoint> tput_mbps;
};

/// Per-sample Jain over flows active across the whole sample ending at
/// `t`; flows outside their active window are excluded, not zero-scored.
double sample_jain(const std::vector<FlowRecord>& flows, double t,
                   double interval, size_t sample_idx) {
  std::vector<double> active;
  for (const FlowRecord& f : flows) {
    if (f.start_secs > t - interval + 1e-9 || f.stop_secs < t - 1e-9) continue;
    if (sample_idx < f.tput_mbps.size()) {
      active.push_back(f.tput_mbps[sample_idx].value);
    }
  }
  return active.size() < 2 ? 1.0 : util::jain_index(active);
}

}  // namespace

Scorecard run_scenario(const ScenarioSpec& spec) {
  spec.validate();

  sim::EventQueue events;
  // The network forks its per-hop loss streams from a seed decorrelated
  // from the host's IPC-jitter stream (both descend from spec.seed).
  Network net(events, spec, spec.seed ^ 0xda3e39cb94b95bdbULL);

  sim::CcpHostConfig host_cfg;
  host_cfg.ipc_delay = spec.ipc_delay;
  host_cfg.seed = spec.seed;
  sim::SimCcpHost host(events, host_cfg);

  const TimePoint end =
      TimePoint::epoch() + Duration::from_secs_f(spec.duration_secs);

  std::vector<std::unique_ptr<datapath::CcModule>> owned_ccs;
  std::vector<FlowRecord> flows;

  for (const FlowGroupSpec& group : spec.groups) {
    for (uint32_t i = 0; i < group.count; ++i) {
      datapath::CcModule* cc;
      if (group.alg.rfind("native:", 0) == 0) {
        owned_ccs.push_back(make_native(group.alg.substr(7)));
        cc = owned_ccs.back().get();
      } else {
        cc = &host.create_flow(datapath::FlowConfig{kMss, kInitCwnd}, group.alg);
      }
      if (group.coupled_subflows > 1) {
        owned_ccs.push_back(
            std::make_unique<CoupledCc>(cc, group.coupled_subflows, 2 * kMss));
        cc = owned_ccs.back().get();
      }

      const double start_secs = group.start_secs + i * group.stagger_secs;
      const double stop_secs =
          group.stop_secs >= 0 ? std::min(group.stop_secs, spec.duration_secs)
                               : spec.duration_secs;

      sim::TcpSenderConfig scfg;
      scfg.record_rtt_samples = true;
      scfg.ecn_enabled = group.ecn;

      Network::Path path;
      if (spec.topology == Topology::kParkingLot) {
        path.first = group.hop_first;
        path.last = group.hop_last;
      }
      path.extra_rtt = group.extra_rtt + group.rtt_step * static_cast<double>(i);

      sim::TcpSender& sender = net.add_flow(
          scfg, cc, TimePoint::epoch() + Duration::from_secs_f(start_secs),
          path);
      if (group.stop_secs >= 0 && stop_secs < spec.duration_secs) {
        events.schedule_at(
            TimePoint::epoch() + Duration::from_secs_f(stop_secs),
            [&sender] { sender.stop(); });
      }

      FlowRecord rec;
      rec.group = &group;
      rec.sender = &sender;
      rec.start_secs = start_secs;
      rec.stop_secs = stop_secs;
      flows.push_back(std::move(rec));
    }
  }

  // Goodput sampling on the scorecard grid.
  const Duration interval = Duration::from_secs_f(spec.sample_interval_secs);
  std::function<void()> sample = [&] {
    const double t = events.now().secs();
    for (FlowRecord& f : flows) {
      const uint64_t bytes = f.sender->delivered_bytes();
      const double mbps =
          (bytes - f.last_sampled_bytes) * 8.0 / spec.sample_interval_secs / 1e6;
      f.last_sampled_bytes = bytes;
      f.tput_mbps.push_back({t, mbps});
    }
    if (events.now() + interval <= end) events.schedule(interval, sample);
  };
  events.schedule(interval, sample);

  host.start(end);
  events.run_until(end);

  // ---- distill the scorecard ----
  Scorecard card;
  card.scenario = spec.name;
  card.seed = spec.seed;
  card.duration_secs = spec.duration_secs;

  double aggregate = 0;
  std::vector<double> tputs;
  for (size_t i = 0; i < flows.size(); ++i) {
    const FlowRecord& rec = flows[i];
    FlowScore score;
    score.group = rec.group->name;
    score.alg = rec.group->alg;
    score.flow = static_cast<uint32_t>(i);
    score.start_secs = rec.start_secs;
    score.stop_secs = rec.stop_secs;
    const double window = std::max(rec.stop_secs - rec.start_secs, 1e-9);
    score.throughput_mbps = rec.sender->delivered_bytes() * 8.0 / window / 1e6;
    score.retransmits = rec.sender->stats().retransmits;
    score.timeouts = rec.sender->stats().timeouts;
    const auto& rtts = rec.sender->rtt_samples();  // stored in microseconds
    if (!rtts.empty()) {
      const double base_ms = net.base_rtt(i).secs() * 1e3;
      score.rtt_p50_ms = rtts.quantile(0.5) / 1e3;
      score.rtt_p95_ms = rtts.quantile(0.95) / 1e3;
      // Queueing delay is RTT shifted by the path's fixed base RTT, so
      // its percentiles are the RTT percentiles minus the base.
      score.qdelay_p50_ms = std::max(0.0, score.rtt_p50_ms - base_ms);
      score.qdelay_p95_ms = std::max(0.0, score.rtt_p95_ms - base_ms);
    }
    score.tput_mbps = rec.tput_mbps;
    aggregate += score.throughput_mbps;
    tputs.push_back(score.throughput_mbps);
    card.total_retransmits += score.retransmits;
    card.total_timeouts += score.timeouts;
    card.flows.push_back(std::move(score));
  }
  card.aggregate_mbps = aggregate;
  for (FlowScore& f : card.flows) {
    f.share = aggregate > 0 ? f.throughput_mbps / aggregate : 0;
  }
  card.jain = util::jain_index(tputs);

  // Convergence: Jain >= threshold held for kConvergenceHold samples,
  // scanning from the last group start.
  double last_start = 0;
  for (const FlowRecord& f : flows) last_start = std::max(last_start, f.start_secs);
  const size_t num_samples = flows.empty() ? 0 : flows[0].tput_mbps.size();
  int held = 0;
  for (size_t s = 0; s < num_samples; ++s) {
    const double t = flows[0].tput_mbps[s].t_secs;
    if (t < last_start + spec.sample_interval_secs) continue;
    if (sample_jain(flows, t, spec.sample_interval_secs, s) >= kConvergenceJain) {
      if (++held == kConvergenceHold) {
        card.convergence_secs =
            flows[0].tput_mbps[s + 1 - kConvergenceHold].t_secs - last_start;
        break;
      }
    } else {
      held = 0;
    }
  }

  for (size_t i = 0; i < net.num_hops(); ++i) {
    const sim::LinkStats& stats = net.hop(i).stats();
    HopScore hop;
    hop.hop = i;
    const double mean_rate =
        net.hop(i).mean_rate_bps(Duration::from_secs_f(spec.duration_secs));
    hop.utilization =
        stats.delivered_bytes * 8.0 / (mean_rate * spec.duration_secs);
    hop.delivered_pkts = stats.delivered_pkts;
    hop.tail_drops = stats.dropped_pkts;
    hop.random_drops = stats.random_dropped_pkts;
    hop.ecn_marks = stats.marked_pkts;
    hop.max_queue_pkts = stats.max_queue_bytes / 1500.0;
    card.hops.push_back(hop);
  }
  return card;
}

}  // namespace ccp::scenario
