#include "scenario/topology.hpp"

#include "util/rng.hpp"

namespace ccp::scenario {

using sim::Packet;

Network::Network(sim::EventQueue& events, const ScenarioSpec& spec,
                 uint64_t seed)
    : events_(events) {
  // Per-hop loss streams fork off one master seed in hop order, so the
  // whole network's impairments replay from a single number.
  Rng master(seed);
  hops_.reserve(spec.links.size());
  for (size_t i = 0; i < spec.links.size(); ++i) {
    const LinkSpec& ls = spec.links[i];
    sim::LinkConfig cfg;
    cfg.rate_bps = ls.rate_bps;
    cfg.prop_delay = ls.delay;
    cfg.queue_capacity_bytes = ls.queue_capacity_bytes();
    if (ls.ecn_threshold_bdp >= 0) {
      const double bdp = ls.rate_bps / 8.0 * (2.0 * ls.delay.secs());
      cfg.ecn_threshold_bytes = static_cast<uint64_t>(bdp * ls.ecn_threshold_bdp);
    }
    cfg.random_loss = ls.random_loss;
    cfg.loss_seed = master.next_u64();
    cfg.rate_schedule = ls.rate_schedule;
    hop_delay_.push_back(ls.delay);
    hops_.push_back(std::make_unique<sim::Link>(
        events_, std::move(cfg),
        [this, i](Packet pkt) { route_from_hop(i, pkt); }));
  }
}

void Network::route_from_hop(size_t hop, Packet pkt) {
  const FlowState& flow = flows_[pkt.flow];
  if (hop < flow.path.last) {
    hops_[hop + 1]->enqueue(std::move(pkt));
  } else if (flow.receiver != nullptr) {
    flow.receiver->on_data(std::move(pkt));
  }
}

sim::TcpSender& Network::add_flow(const sim::TcpSenderConfig& scfg,
                                  datapath::CcModule* cc, TimePoint start,
                                  Path path, sim::TcpReceiverConfig rcfg) {
  const uint32_t flow_id = static_cast<uint32_t>(flows_.size());
  path.last = path.last < hops_.size() ? path.last : hops_.size() - 1;
  if (path.first > path.last) path.first = path.last;

  FlowState state;
  state.path = path;
  // Forward access pipe: half the extra RTT, then into the first hop.
  state.access = std::make_unique<sim::DelayPipe>(
      events_, path.extra_rtt / 2,
      [this, first = path.first](Packet pkt) { hops_[first]->enqueue(std::move(pkt)); });
  // Return pipe: the other half of the extra RTT plus the path's reverse
  // propagation (ACK path mirrors the forward propagation, no queueing).
  Duration reverse_delay = path.extra_rtt / 2;
  for (size_t i = path.first; i <= path.last; ++i) reverse_delay += hop_delay_[i];
  state.reverse = std::make_unique<sim::DelayPipe>(
      events_, reverse_delay, [this, flow_id](Packet pkt) {
        flows_[flow_id].sender->on_ack(std::move(pkt));
      });
  state.sender = std::make_unique<sim::TcpSender>(
      events_, flow_id, scfg, cc,
      [this, flow_id](Packet pkt) { flows_[flow_id].access->enqueue(std::move(pkt)); });
  state.receiver = std::make_unique<sim::TcpReceiver>(
      events_, flow_id, rcfg,
      [this, flow_id](Packet pkt) { flows_[flow_id].reverse->enqueue(std::move(pkt)); });

  flows_.push_back(std::move(state));
  sim::TcpSender& sender = *flows_.back().sender;
  events_.schedule_at(start < events_.now() ? events_.now() : start,
                      [&sender] { sender.start(); });
  return sender;
}

Duration Network::base_rtt(size_t flow) const {
  const Path& path = flows_[flow].path;
  Duration rtt = path.extra_rtt;
  for (size_t i = path.first; i <= path.last; ++i) {
    rtt += hop_delay_[i] * 2.0;
  }
  return rtt;
}

}  // namespace ccp::scenario
