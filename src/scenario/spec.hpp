// Declarative scenario description: topology + traffic mix + CCA mix.
//
// A ScenarioSpec is pure data — no behavior — describing one experiment
// the ScenarioRunner can execute: a topology (dumbbell, or a parking-lot
// chain of bottleneck hops) built from per-link rate/delay/queue/loss/
// rate-schedule settings, and a traffic mix of flow groups, each drawing
// its congestion-control algorithm from the agent's registry (or a
// native:<name> in-datapath baseline), with counts, staggered start/stop
// times, an RTT spread, a hop path, and optional multipath coupling.
//
// Specs come from three places: the built-in library (library.hpp), the
// `ccp_scenario` CLI, and the text format parsed by parse_spec() — see
// docs/SCENARIOS.md for the format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/link.hpp"
#include "util/time.hpp"

namespace ccp::scenario {

/// One bottleneck hop. `buffer_bdp` sizes the queue in BDP units of this
/// link (rate x 2 x delay) unless `queue_bytes` overrides it explicitly.
struct LinkSpec {
  double rate_bps = 96e6;
  Duration delay = Duration::from_millis(5);  // one-way propagation
  double buffer_bdp = 1.0;
  uint64_t queue_bytes = 0;        // 0 = derive from buffer_bdp
  double ecn_threshold_bdp = -1;   // <0 = ECN off
  double random_loss = 0;          // iid per-packet drop probability
  std::vector<sim::RateChange> rate_schedule;

  uint64_t queue_capacity_bytes() const {
    if (queue_bytes > 0) return queue_bytes;
    const double bdp = rate_bps / 8.0 * (2.0 * delay.secs());
    const double bytes = bdp * buffer_bdp;
    return bytes < 1500 ? 1500 : static_cast<uint64_t>(bytes);
  }
};

enum class Topology {
  kDumbbell,    // one bottleneck hop, every flow traverses it
  kParkingLot,  // a chain of hops; each flow traverses [hop_first, hop_last]
};

/// A group of identically configured flows.
struct FlowGroupSpec {
  std::string name;
  std::string alg = "cubic";  // registry name; "native:<x>" = in-datapath
  uint32_t count = 1;
  double start_secs = 0;
  double stop_secs = -1;      // <0 = run to scenario end
  double stagger_secs = 0;    // flow i starts at start_secs + i * stagger
  // RTT spread: flow i gets extra_rtt + i * rtt_step of additional
  // round-trip (split across the access paths, both directions).
  Duration extra_rtt = Duration::zero();
  Duration rtt_step = Duration::zero();
  // Hop path (parking-lot only; dumbbell flows always use hop 0).
  size_t hop_first = 0;
  size_t hop_last = SIZE_MAX;  // clamped to the last hop
  // Multipath: >1 groups the flows into bundles of this many subflows,
  // each bundle EWTCP-coupled — every subflow runs its own CCA instance
  // with its window scaled by 1/subflows, so a bundle competes for one
  // flow's fair share on a shared bottleneck.
  uint32_t coupled_subflows = 1;
  bool ecn = false;
};

struct ScenarioSpec {
  std::string name;
  std::string description;
  Topology topology = Topology::kDumbbell;
  std::vector<LinkSpec> links;        // >= 1; dumbbell uses exactly one
  std::vector<FlowGroupSpec> groups;  // >= 1
  double duration_secs = 20;
  uint64_t seed = 42;
  Duration ipc_delay = Duration::from_micros(15);
  double sample_interval_secs = 0.5;  // scorecard throughput grid

  /// Throws std::invalid_argument with a message naming the bad field.
  void validate() const;
};

/// Parses the declarative text format (docs/SCENARIOS.md):
///
///   scenario wireless
///   topology dumbbell
///   duration 20
///   seed 7
///   link rate=24Mbps delay=20ms buffer=1.0 loss=0.005 rate@8s=12Mbps
///   group name=cc alg=cubic count=2 start=0 rtt_step=10ms
///
/// One directive per line; '#' starts a comment. Throws
/// std::invalid_argument on malformed input. The result is validate()d.
ScenarioSpec parse_spec(const std::string& text);

/// Renders a spec back to the text format (parse_spec round-trips it).
std::string format_spec(const ScenarioSpec& spec);

}  // namespace ccp::scenario
