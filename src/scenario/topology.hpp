// Network construction for scenario topologies.
//
// Generalizes the dumbbell (sim/dumbbell.hpp) to a chain of bottleneck
// hops — the classic "parking lot": hop k connects router k to router
// k+1, each with its own rate/delay/queue/loss/rate-schedule. A flow
// traverses the contiguous hop range [first, last] of its path; cross
// traffic occupies a single hop while the "long" flow crosses them all.
// With one hop this is exactly the dumbbell.
//
// Per-flow access pipes add the RTT spread: flow-specific extra delay on
// the way into the first hop, and the whole return path is a per-flow
// delay pipe (ACK path, no queueing — the usual assumption) sized as the
// sum of the path's propagation delays plus the flow's extra RTT.
#pragma once

#include <memory>
#include <vector>

#include "datapath/cc_module.hpp"
#include "scenario/spec.hpp"
#include "sim/event_queue.hpp"
#include "sim/link.hpp"
#include "sim/tcp.hpp"

namespace ccp::scenario {

class Network {
 public:
  /// Per-flow routing: hops [first, last] plus extra round-trip delay
  /// split evenly between the forward access pipe and the return pipe.
  struct Path {
    size_t first = 0;
    size_t last = 0;
    Duration extra_rtt = Duration::zero();
  };

  /// Builds the hop chain. Per-hop loss RNG seeds derive from `seed`, so
  /// the whole network's drop sequences are a function of one seed.
  Network(sim::EventQueue& events, const ScenarioSpec& spec, uint64_t seed);

  /// Adds a flow with the given path; starts transmitting at `start`.
  sim::TcpSender& add_flow(const sim::TcpSenderConfig& scfg,
                           datapath::CcModule* cc, TimePoint start,
                           Path path,
                           sim::TcpReceiverConfig rcfg = sim::TcpReceiverConfig{});

  sim::Link& hop(size_t i) { return *hops_[i]; }
  size_t num_hops() const { return hops_.size(); }
  sim::TcpSender& sender(size_t i) { return *flows_[i].sender; }
  sim::TcpReceiver& receiver(size_t i) { return *flows_[i].receiver; }
  size_t num_flows() const { return flows_.size(); }

  /// The flow's base (unloaded) round-trip: serialization excluded, i.e.
  /// 2 x sum of path propagation delays + the flow's extra RTT.
  Duration base_rtt(size_t flow) const;

 private:
  struct FlowState {
    Path path;
    std::unique_ptr<sim::TcpSender> sender;
    std::unique_ptr<sim::TcpReceiver> receiver;
    std::unique_ptr<sim::DelayPipe> access;   // sender -> first hop
    std::unique_ptr<sim::DelayPipe> reverse;  // receiver -> sender (ACKs)
  };

  void route_from_hop(size_t hop, sim::Packet pkt);

  sim::EventQueue& events_;
  std::vector<std::unique_ptr<sim::Link>> hops_;
  std::vector<Duration> hop_delay_;
  std::vector<FlowState> flows_;
};

}  // namespace ccp::scenario
