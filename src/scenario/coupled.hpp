// EWTCP-style multipath coupling (Honda et al.; the weighted coupling
// family CCID5's multipath experiments draw on).
//
// Each subflow of an n-subflow bundle runs its own full CCA instance —
// for CCP flows that means its own agent control loop, which is the
// point: coupling composes at the datapath boundary without touching the
// algorithm. The coupler scales the subflow's enforced window (and
// pacing rate) by 1/n, so a bundle whose subflows share one bottleneck
// competes for roughly one flow's fair share instead of n.
#pragma once

#include <algorithm>
#include <cstdint>

#include "datapath/cc_module.hpp"

namespace ccp::scenario {

class CoupledCc : public datapath::CcModule {
 public:
  /// Wraps `inner` (not owned) as one of `subflows` coupled subflows.
  /// The window never drops below `floor_bytes` (2 MSS keeps ACK clock
  /// alive).
  CoupledCc(datapath::CcModule* inner, uint32_t subflows, uint64_t floor_bytes)
      : inner_(inner), subflows_(subflows), floor_bytes_(floor_bytes) {}

  void on_ack(const datapath::AckEvent& ev) override { inner_->on_ack(ev); }
  void on_loss(const datapath::LossEvent& ev) override { inner_->on_loss(ev); }
  void on_timeout(const datapath::TimeoutEvent& ev) override {
    inner_->on_timeout(ev);
  }
  void on_send(const datapath::SendEvent& ev) override { inner_->on_send(ev); }
  void tick(TimePoint now) override { inner_->tick(now); }

  uint64_t cwnd_bytes() const override {
    return std::max<uint64_t>(inner_->cwnd_bytes() / subflows_, floor_bytes_);
  }
  double pacing_rate_bps() const override {
    return inner_->pacing_rate_bps() / static_cast<double>(subflows_);
  }

 private:
  datapath::CcModule* inner_;
  uint32_t subflows_;
  uint64_t floor_bytes_;
};

}  // namespace ccp::scenario
