// TCP-like reliable transport for the simulator.
//
// Implements what congestion control needs from a transport: byte
// sequencing, cumulative ACKs with out-of-order buffering, SACK with an
// RFC 6675-style scoreboard and pipe-limited loss recovery, RTT sampling
// via timestamp echo (Karn's rule), RTO with exponential backoff, ECN
// echo, and pacing. Congestion control itself is fully delegated to a
// datapath::CcModule — either a native baseline or a CcpFlow (the point
// of the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "datapath/cc_module.hpp"
#include "sim/event_queue.hpp"
#include "sim/packet.hpp"
#include "util/quantiles.hpp"
#include "util/time.hpp"

namespace ccp::sim {

struct TcpSenderConfig {
  uint32_t mss = 1460;             // payload bytes per segment
  uint32_t header_bytes = 40;
  Duration min_rto = Duration::from_millis(200);
  Duration max_rto = Duration::from_secs(60);
  bool ecn_enabled = false;
  std::optional<uint64_t> bytes_to_send;  // nullopt = unlimited
  bool record_rtt_samples = false;        // collect into rtt_samples()
  uint32_t dupthresh = 3;                 // SACKed segments above a hole => lost
};

struct TcpSenderStats {
  uint64_t segments_sent = 0;
  uint64_t retransmits = 0;
  uint64_t fast_retransmits = 0;
  uint64_t timeouts = 0;
  uint64_t dupacks = 0;
  uint64_t loss_events = 0;  // distinct congestion episodes
  uint64_t tail_loss_probes = 0;
};

class TcpSender {
 public:
  using Egress = std::function<void(Packet)>;

  TcpSender(EventQueue& events, uint32_t flow_id, TcpSenderConfig config,
            datapath::CcModule* cc, Egress egress);

  /// Begins transmitting (call at the flow's start time).
  void start();

  /// Stops offering new data (call at the flow's stop time): the send
  /// window is frozen at snd_nxt, in-flight segments still complete and
  /// lost ones are still repaired. Idempotent.
  void stop();
  bool stopped() const { return stop_limit_ != UINT64_MAX; }

  /// Delivers an ACK from the network.
  void on_ack(const Packet& ack);

  /// Kicks the send loop (e.g. after an external cwnd change).
  void try_send();

  // --- introspection ---
  uint32_t flow_id() const { return flow_id_; }
  uint64_t delivered_bytes() const { return snd_una_; }
  uint64_t sent_bytes() const { return snd_nxt_; }
  /// Conservative in-network estimate (RFC 6675 "pipe"), bytes.
  uint64_t bytes_in_flight() const;
  bool done() const {
    return config_.bytes_to_send.has_value() && snd_una_ >= *config_.bytes_to_send;
  }
  Duration last_rtt() const { return last_rtt_; }
  Duration srtt() const { return srtt_; }
  const TcpSenderStats& stats() const { return stats_; }
  const SampleSet& rtt_samples() const { return rtt_samples_; }
  datapath::CcModule* cc() { return cc_; }

 private:
  // Scoreboard entry for one sent-but-not-cumulatively-acked segment.
  struct SegState {
    uint32_t len = 0;
    bool sacked = false;
    bool lost = false;
    bool rexmitted = false;     // retransmitted since marked lost
    TimePoint sent_time{};      // last (re)transmission time, for RACK
  };

  void send_segment(uint64_t seq, uint32_t len, bool retransmit);
  /// Returns bytes newly SACKed by this ACK.
  uint64_t process_sacks(const Packet& ack);
  /// Returns the number of segments newly marked lost.
  uint32_t detect_losses();
  void enter_recovery();
  void update_rtt(Duration sample);
  void arm_rto();
  void on_rto_fire(uint64_t generation);
  void arm_tlp();
  void on_tlp_fire(uint64_t generation);
  void schedule_pacing_kick(TimePoint at);
  bool pacing_allows(uint32_t len);
  uint64_t data_limit() const;

  EventQueue& events_;
  uint32_t flow_id_;
  TcpSenderConfig config_;
  datapath::CcModule* cc_;
  Egress egress_;

  // Sequence state.
  uint64_t snd_una_ = 0;
  uint64_t snd_nxt_ = 0;
  uint64_t stop_limit_ = UINT64_MAX;  // frozen snd_nxt after stop()
  uint64_t high_rexmit_ = 0;  // Karn: no RTT samples at or below this seq
  uint64_t high_sacked_ = 0;  // highest byte covered by any SACK

  // Scoreboard: seq -> state for every outstanding segment.
  std::map<uint64_t, SegState> scoreboard_;
  uint64_t sacked_bytes_ = 0;
  uint64_t lost_unrexmitted_bytes_ = 0;

  // RACK (RFC 8985-lite): send time of the most recently *sent* segment
  // known delivered; anything sent reo_wnd earlier and still unSACKed is
  // lost. Catches interleaved burst drops and lost retransmissions that
  // SACK-range counting cannot see.
  TimePoint rack_newest_delivered_{};

  // Recovery state.
  uint32_t dupacks_ = 0;
  bool in_recovery_ = false;
  uint64_t recovery_point_ = 0;

  // RTO state (RFC 6298).
  Duration srtt_ = Duration::zero();
  Duration rttvar_ = Duration::zero();
  Duration rto_ = Duration::from_secs(1);
  uint32_t rto_backoff_ = 1;
  uint64_t rto_generation_ = 0;
  bool rto_armed_ = false;

  // Tail loss probe (RFC 8985-lite): when ACK progress stalls for ~2
  // SRTT with data outstanding, retransmit the highest unSACKed segment
  // to elicit SACKs above tail holes, converting would-be RTOs into fast
  // recovery.
  uint64_t tlp_generation_ = 0;
  bool tlp_armed_ = false;

  // Pacing.
  TimePoint next_pace_time_{};
  bool pace_kick_scheduled_ = false;

  Duration last_rtt_ = Duration::zero();
  SampleSet rtt_samples_;
  uint64_t next_uid_ = 1;
  TcpSenderStats stats_;
  bool started_ = false;
};

struct TcpReceiverConfig {
  /// Delay ACKs: ack every second segment or after 1 ms. Off by default
  /// (both CCP and native runs use the same setting, so comparisons stay
  /// apples-to-apples either way).
  bool delayed_ack = false;
};

class TcpReceiver {
 public:
  using Egress = std::function<void(Packet)>;

  TcpReceiver(EventQueue& events, uint32_t flow_id, TcpReceiverConfig config,
              Egress egress);

  void on_data(const Packet& pkt);

  uint64_t cum_ack() const { return cum_ack_; }
  uint64_t received_bytes() const { return cum_ack_; }

 private:
  void send_ack(const Packet& trigger);
  void flush_delayed(const Packet& trigger);

  EventQueue& events_;
  uint32_t flow_id_;
  TcpReceiverConfig config_;
  Egress egress_;

  uint64_t cum_ack_ = 0;
  std::map<uint64_t, uint64_t> ooo_;  // start -> end of buffered ranges
  uint32_t unacked_segments_ = 0;
  uint64_t delayed_timer_gen_ = 0;
  uint64_t next_uid_ = 1;
};

}  // namespace ccp::sim
