#include "sim/dumbbell.hpp"

namespace ccp::sim {

DumbbellConfig DumbbellConfig::make(double rate_bps, Duration base_rtt,
                                    double buffer_bdp,
                                    uint64_t ecn_threshold_bytes) {
  DumbbellConfig cfg;
  cfg.bottleneck.rate_bps = rate_bps;
  cfg.bottleneck.prop_delay = base_rtt / 2;
  cfg.reverse_delay = base_rtt / 2;
  const double bdp_bytes = rate_bps / 8.0 * base_rtt.secs();
  cfg.bottleneck.queue_capacity_bytes =
      static_cast<uint64_t>(bdp_bytes * buffer_bdp);
  cfg.bottleneck.ecn_threshold_bytes = ecn_threshold_bytes;
  return cfg;
}

Dumbbell::Dumbbell(EventQueue& events, DumbbellConfig config)
    : events_(events), config_(config) {
  bottleneck_ = std::make_unique<Link>(events_, config_.bottleneck, [this](Packet pkt) {
    if (pkt.flow < receivers_.size() && receivers_[pkt.flow] != nullptr) {
      receivers_[pkt.flow]->on_data(pkt);
    }
  });
  reverse_ = std::make_unique<DelayPipe>(events_, config_.reverse_delay,
                                         [this](Packet pkt) {
                                           if (pkt.flow < senders_.size() &&
                                               senders_[pkt.flow] != nullptr) {
                                             senders_[pkt.flow]->on_ack(pkt);
                                           }
                                         });
}

TcpSender& Dumbbell::add_flow(const TcpSenderConfig& scfg, datapath::CcModule* cc,
                              TimePoint start, TcpReceiverConfig rcfg) {
  const uint32_t flow_id = static_cast<uint32_t>(senders_.size());
  senders_.push_back(std::make_unique<TcpSender>(
      events_, flow_id, scfg, cc, [this](Packet pkt) { bottleneck_->enqueue(pkt); }));
  receivers_.push_back(std::make_unique<TcpReceiver>(
      events_, flow_id, rcfg, [this](Packet pkt) { reverse_->enqueue(pkt); }));
  TcpSender& sender = *senders_.back();
  events_.schedule_at(start < events_.now() ? events_.now() : start,
                      [&sender] { sender.start(); });
  return sender;
}

void Dumbbell::mark_utilization_epoch() {
  epoch_delivered_bytes_ = bottleneck_->stats().delivered_bytes;
  epoch_start_ = events_.now();
}

double Dumbbell::utilization(TimePoint from, TimePoint to) const {
  (void)from;  // epoch marking defines the window start
  const uint64_t bytes =
      bottleneck_->stats().delivered_bytes - epoch_delivered_bytes_;
  const double secs = (to - epoch_start_).secs();
  if (secs <= 0) return 0.0;
  return bytes * 8.0 / (config_.bottleneck.rate_bps * secs);
}

}  // namespace ccp::sim
