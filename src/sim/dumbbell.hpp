// The canonical congestion-control topology: N senders share one
// bottleneck link toward their receivers; ACKs return over a delay-only
// reverse path. This is the setup of the paper's Figures 3 and 4
// (1 Gbit/s bottleneck, 10 ms RTT, 1 BDP of buffer).
#pragma once

#include <memory>
#include <vector>

#include "datapath/cc_module.hpp"
#include "sim/event_queue.hpp"
#include "sim/link.hpp"
#include "sim/tcp.hpp"

namespace ccp::sim {

struct DumbbellConfig {
  LinkConfig bottleneck;                          // forward path
  Duration reverse_delay = Duration::from_millis(5);  // ACK path, no queueing

  /// Convenience constructor: rate, base RTT (split evenly between the
  /// two directions), and buffer in bottleneck-BDP units.
  static DumbbellConfig make(double rate_bps, Duration base_rtt, double buffer_bdp,
                             uint64_t ecn_threshold_bytes = UINT64_MAX);
};

class Dumbbell {
 public:
  Dumbbell(EventQueue& events, DumbbellConfig config);

  /// Adds a flow driven by `cc` (not owned), starting at `start`.
  TcpSender& add_flow(const TcpSenderConfig& scfg, datapath::CcModule* cc,
                      TimePoint start,
                      TcpReceiverConfig rcfg = TcpReceiverConfig{});

  TcpSender& sender(size_t i) { return *senders_[i]; }
  TcpReceiver& receiver(size_t i) { return *receivers_[i]; }
  size_t num_flows() const { return senders_.size(); }
  Link& bottleneck() { return *bottleneck_; }

  /// Bottleneck utilization over [from, to]: delivered payload bits /
  /// (rate * time). Uses wire bytes, so it can slightly exceed payload
  /// goodput.
  double utilization(TimePoint from, TimePoint to) const;

  /// Call at measurement boundaries to snapshot delivered bytes.
  void mark_utilization_epoch();

 private:
  EventQueue& events_;
  DumbbellConfig config_;
  std::unique_ptr<Link> bottleneck_;
  std::unique_ptr<DelayPipe> reverse_;
  std::vector<std::unique_ptr<TcpSender>> senders_;
  std::vector<std::unique_ptr<TcpReceiver>> receivers_;
  uint64_t epoch_delivered_bytes_ = 0;
  TimePoint epoch_start_{};
};

}  // namespace ccp::sim
