#include "sim/tcp.hpp"

#include <algorithm>

namespace ccp::sim {

// ---------------------------------------------------------------- sender

TcpSender::TcpSender(EventQueue& events, uint32_t flow_id, TcpSenderConfig config,
                     datapath::CcModule* cc, Egress egress)
    : events_(events),
      flow_id_(flow_id),
      config_(config),
      cc_(cc),
      egress_(std::move(egress)) {}

void TcpSender::start() {
  started_ = true;
  try_send();
}

void TcpSender::stop() {
  stop_limit_ = std::min(stop_limit_, snd_nxt_);
}

uint64_t TcpSender::data_limit() const {
  return std::min(config_.bytes_to_send.value_or(UINT64_MAX), stop_limit_);
}

uint64_t TcpSender::bytes_in_flight() const {
  // RFC 6675 pipe: everything sent and not cum-acked, minus what the
  // receiver holds (SACKed) and what we believe the network dropped
  // (lost and not yet retransmitted).
  const uint64_t outstanding = snd_nxt_ - snd_una_;
  const uint64_t absent = sacked_bytes_ + lost_unrexmitted_bytes_;
  return outstanding > absent ? outstanding - absent : 0;
}

bool TcpSender::pacing_allows(uint32_t len) {
  const double rate = cc_->pacing_rate_bps();  // bytes per second
  if (rate <= 0) return true;
  const TimePoint now = events_.now();
  if (now < next_pace_time_) {
    schedule_pacing_kick(next_pace_time_);
    return false;
  }
  const Duration gap = Duration::from_nanos(
      static_cast<int64_t>((len + config_.header_bytes) / rate * 1e9));
  next_pace_time_ = (next_pace_time_ > now ? next_pace_time_ : now) + gap;
  return true;
}

void TcpSender::try_send() {
  if (!started_) return;
  const uint64_t cwnd = cc_->cwnd_bytes();

  for (;;) {
    // 1. Retransmissions of lost segments take priority (RFC 6675).
    if (lost_unrexmitted_bytes_ > 0 && bytes_in_flight() + config_.mss <= cwnd) {
      auto it = std::find_if(scoreboard_.begin(), scoreboard_.end(),
                             [](const auto& kv) {
                               return kv.second.lost && !kv.second.rexmitted;
                             });
      if (it != scoreboard_.end()) {
        if (!pacing_allows(it->second.len)) return;
        it->second.rexmitted = true;
        it->second.sent_time = events_.now();
        lost_unrexmitted_bytes_ -= it->second.len;
        send_segment(it->first, it->second.len, /*retransmit=*/true);
        continue;
      }
      lost_unrexmitted_bytes_ = 0;  // scoreboard says otherwise; resync
    }

    // 2. New data.
    if (snd_nxt_ >= data_limit()) return;
    const uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>(config_.mss, data_limit() - snd_nxt_));
    if (bytes_in_flight() + len > cwnd) return;
    if (!pacing_allows(len)) return;

    scoreboard_.emplace(snd_nxt_, SegState{len, false, false, false, events_.now()});
    send_segment(snd_nxt_, len, /*retransmit=*/false);
    snd_nxt_ += len;
  }
}

void TcpSender::schedule_pacing_kick(TimePoint at) {
  if (pace_kick_scheduled_) return;
  pace_kick_scheduled_ = true;
  events_.schedule_at(at < events_.now() ? events_.now() : at, [this] {
    pace_kick_scheduled_ = false;
    try_send();
  });
}

void TcpSender::send_segment(uint64_t seq, uint32_t len, bool retransmit) {
  Packet pkt;
  pkt.flow = flow_id_;
  pkt.uid = next_uid_++;
  pkt.seq = seq;
  pkt.len = len;
  pkt.retransmit = retransmit;
  pkt.ts_val = events_.now();
  pkt.ect = config_.ecn_enabled;
  pkt.header_bytes = config_.header_bytes;

  ++stats_.segments_sent;
  if (retransmit) {
    ++stats_.retransmits;
    high_rexmit_ = std::max(high_rexmit_, seq + len);
  }
  cc_->on_send(datapath::SendEvent{events_.now(), len});
  arm_rto();
  arm_tlp();
  egress_(pkt);
}

void TcpSender::arm_tlp() {
  if (tlp_armed_) return;
  tlp_armed_ = true;
  const uint64_t gen = ++tlp_generation_;
  const Duration pto =
      srtt_.is_zero() ? Duration::from_millis(50)
                      : std::max(srtt_ * 2.0, Duration::from_millis(10));
  events_.schedule(pto, [this, gen] { on_tlp_fire(gen); });
}

void TcpSender::on_tlp_fire(uint64_t generation) {
  if (generation != tlp_generation_ || !tlp_armed_) return;
  tlp_armed_ = false;
  if (snd_nxt_ == snd_una_) return;
  // Probe with the highest unSACKed outstanding segment. Any SACK it
  // elicits sits above every tail hole, unlocking SACK loss detection.
  for (auto it = scoreboard_.rbegin(); it != scoreboard_.rend(); ++it) {
    if (!it->second.sacked) {
      ++stats_.tail_loss_probes;
      it->second.sent_time = events_.now();
      send_segment(it->first, it->second.len, /*retransmit=*/true);
      return;
    }
  }
}

uint64_t TcpSender::process_sacks(const Packet& ack) {
  uint64_t newly_sacked = 0;
  for (uint8_t i = 0; i < ack.num_sacks; ++i) {
    const uint64_t start = ack.sack_start[i];
    const uint64_t end = ack.sack_end[i];
    high_sacked_ = std::max(high_sacked_, end);
    for (auto it = scoreboard_.lower_bound(start);
         it != scoreboard_.end() && it->first < end; ++it) {
      SegState& seg = it->second;
      if (!seg.sacked) {
        seg.sacked = true;
        sacked_bytes_ += seg.len;
        newly_sacked += seg.len;
        rack_newest_delivered_ =
            std::max(rack_newest_delivered_, seg.sent_time);
        if (seg.lost) {
          // Spuriously marked lost but actually delivered.
          seg.lost = false;
          if (!seg.rexmitted) lost_unrexmitted_bytes_ -= seg.len;
        }
      }
    }
  }
  return newly_sacked;
}

uint32_t TcpSender::detect_losses() {
  uint32_t newly_lost = 0;

  // RFC 6675 byte rule: a hole with >= dupthresh MSS of SACKed data
  // above it is lost.
  const uint64_t threshold_bytes =
      static_cast<uint64_t>(config_.dupthresh) * config_.mss;
  // RACK time rule: anything sent reo_wnd before the newest delivered
  // segment's transmit time is lost (including stale retransmissions).
  const Duration reo_wnd =
      srtt_.is_zero() ? Duration::from_millis(1) : srtt_ / 4;
  const bool have_rack = rack_newest_delivered_ != TimePoint{};

  for (auto& [seq, seg] : scoreboard_) {
    if (seg.sacked) continue;
    if (seg.lost) {
      // A retransmission can itself be lost: RACK re-marks it once newer
      // data is known delivered.
      if (seg.rexmitted && have_rack &&
          seg.sent_time + reo_wnd < rack_newest_delivered_) {
        seg.rexmitted = false;
        lost_unrexmitted_bytes_ += seg.len;
        ++newly_lost;
      }
      continue;
    }
    const bool byte_rule =
        high_sacked_ > 0 && seq + threshold_bytes < high_sacked_ && !seg.rexmitted;
    const bool rack_rule =
        have_rack && seg.sent_time + reo_wnd < rack_newest_delivered_;
    if (byte_rule || rack_rule) {
      seg.lost = true;
      seg.rexmitted = false;
      lost_unrexmitted_bytes_ += seg.len;
      ++newly_lost;
    }
  }
  if (newly_lost > 0 && !in_recovery_) enter_recovery();
  return newly_lost;
}

void TcpSender::enter_recovery() {
  in_recovery_ = true;
  recovery_point_ = snd_nxt_;
  ++stats_.loss_events;
  ++stats_.fast_retransmits;
  cc_->on_loss(datapath::LossEvent{events_.now(), 1, bytes_in_flight()});
  // Classic fast retransmit: the first repair goes out immediately, even
  // if the pipe is still above the (freshly reduced) window.
  auto it = std::find_if(
      scoreboard_.begin(), scoreboard_.end(),
      [](const auto& kv) { return kv.second.lost && !kv.second.rexmitted; });
  if (it != scoreboard_.end()) {
    it->second.rexmitted = true;
    it->second.sent_time = events_.now();
    lost_unrexmitted_bytes_ -= it->second.len;
    send_segment(it->first, it->second.len, /*retransmit=*/true);
  }
}

void TcpSender::update_rtt(Duration sample) {
  last_rtt_ = sample;
  if (config_.record_rtt_samples) {
    rtt_samples_.add(static_cast<double>(sample.micros()));
  }
  if (srtt_.is_zero()) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const Duration err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = Duration::from_nanos((3 * rttvar_.nanos() + err.nanos()) / 4);
    srtt_ = Duration::from_nanos((7 * srtt_.nanos() + sample.nanos()) / 8);
  }
  rto_ = srtt_ + rttvar_ * 4.0;
  rto_ = std::max(rto_, config_.min_rto);
  rto_ = std::min(rto_, config_.max_rto);
}

void TcpSender::on_ack(const Packet& ack) {
  const TimePoint now = events_.now();

  // Any ACK is forward progress for the tail-loss probe timer.
  tlp_armed_ = false;
  ++tlp_generation_;

  const uint64_t newly_sacked = process_sacks(ack);

  if (ack.ack_seq > snd_una_) {
    const uint64_t bytes_acked = ack.ack_seq - snd_una_;
    snd_una_ = ack.ack_seq;
    dupacks_ = 0;
    rto_backoff_ = 1;

    // Retire scoreboard entries below the new cumulative ACK, tracking
    // how many of those bytes were already counted delivered via SACK.
    uint64_t retired_sacked = 0;
    while (!scoreboard_.empty() && scoreboard_.begin()->first < snd_una_) {
      const SegState& seg = scoreboard_.begin()->second;
      if (seg.sacked) {
        sacked_bytes_ -= seg.len;
        retired_sacked += seg.len;
      }
      if (seg.lost && !seg.rexmitted) lost_unrexmitted_bytes_ -= seg.len;
      rack_newest_delivered_ = std::max(rack_newest_delivered_, seg.sent_time);
      scoreboard_.erase(scoreboard_.begin());
    }

    // Karn's rule: only sample RTT if no retransmitted data is covered.
    Duration rtt_sample = Duration::zero();
    if (snd_una_ > high_rexmit_) {
      rtt_sample = now - ack.ts_echo;
      update_rtt(rtt_sample);
    }

    if (in_recovery_ && snd_una_ >= recovery_point_) in_recovery_ = false;

    const uint32_t newly_lost = detect_losses();

    datapath::AckEvent ev;
    ev.now = now;
    ev.bytes_acked = bytes_acked;
    ev.bytes_delivered = bytes_acked - retired_sacked + newly_sacked;
    ev.packets_acked =
        static_cast<uint32_t>((bytes_acked + config_.mss - 1) / config_.mss);
    ev.rtt_sample = rtt_sample;
    ev.ecn = ack.ece;
    ev.newly_lost_packets = newly_lost;
    ev.bytes_in_flight = bytes_in_flight();
    ev.packets_in_flight =
        static_cast<uint32_t>(bytes_in_flight() / config_.mss);
    ev.bytes_pending = data_limit() == UINT64_MAX
                           ? UINT64_MAX
                           : data_limit() - std::min(data_limit(), snd_nxt_);
    cc_->on_ack(ev);

    if (snd_nxt_ == snd_una_) {
      rto_armed_ = false;  // nothing outstanding: quench the timer
    } else {
      rto_armed_ = false;  // restart on forward progress
      arm_rto();
      arm_tlp();
    }
  } else if (snd_nxt_ > snd_una_) {
    arm_tlp();
    // Duplicate ACK.
    ++dupacks_;
    ++stats_.dupacks;
    const uint32_t newly_lost = detect_losses();
    if (newly_sacked > 0 || newly_lost > 0) {
      // SACKed data is delivered data, and freshly marked losses are
      // congestion signals: surface both to the CC module so delivery
      // rates and loss accounting stay truthful through recovery.
      datapath::AckEvent ev;
      ev.now = now;
      ev.bytes_acked = 0;
      ev.bytes_delivered = newly_sacked;
      ev.newly_lost_packets = newly_lost;
      ev.ecn = ack.ece;
      ev.bytes_in_flight = bytes_in_flight();
      ev.packets_in_flight =
          static_cast<uint32_t>(bytes_in_flight() / config_.mss);
      cc_->on_ack(ev);
    }
    // Pure-dupack fallback (no SACK information, e.g. a reordered ACK
    // burst): classic triple-dupack entry.
    if (!in_recovery_ && ack.num_sacks == 0 && dupacks_ >= config_.dupthresh) {
      auto it = scoreboard_.find(snd_una_);
      if (it != scoreboard_.end() && !it->second.lost) {
        it->second.lost = true;
        it->second.rexmitted = false;
        lost_unrexmitted_bytes_ += it->second.len;
      }
      enter_recovery();
    }
  }

  try_send();
}

void TcpSender::arm_rto() {
  if (rto_armed_) return;
  rto_armed_ = true;
  const uint64_t gen = ++rto_generation_;
  events_.schedule(rto_ * static_cast<double>(rto_backoff_),
                   [this, gen] { on_rto_fire(gen); });
}

void TcpSender::on_rto_fire(uint64_t generation) {
  if (generation != rto_generation_ || !rto_armed_) return;  // stale timer
  rto_armed_ = false;
  if (snd_nxt_ == snd_una_) return;

  ++stats_.timeouts;
  ++stats_.loss_events;
  dupacks_ = 0;
  in_recovery_ = false;
  high_rexmit_ = snd_nxt_;  // Karn: distrust everything outstanding
  rto_backoff_ = std::min(rto_backoff_ * 2, 64u);

  // Everything unsacked and outstanding is presumed lost.
  lost_unrexmitted_bytes_ = 0;
  for (auto& [seq, seg] : scoreboard_) {
    if (!seg.sacked) {
      seg.lost = true;
      seg.rexmitted = false;
      lost_unrexmitted_bytes_ += seg.len;
    }
  }

  cc_->on_timeout(datapath::TimeoutEvent{events_.now()});
  arm_rto();
  try_send();
}

// -------------------------------------------------------------- receiver

TcpReceiver::TcpReceiver(EventQueue& events, uint32_t flow_id,
                         TcpReceiverConfig config, Egress egress)
    : events_(events), flow_id_(flow_id), config_(config), egress_(std::move(egress)) {}

void TcpReceiver::on_data(const Packet& pkt) {
  const uint64_t start = pkt.seq;
  const uint64_t end = pkt.seq + pkt.len;
  const bool in_order = start <= cum_ack_ && end > cum_ack_;

  if (end > cum_ack_) {
    if (in_order) {
      cum_ack_ = end;
      // Pull any buffered ranges now contiguous with the cumulative ACK.
      auto it = ooo_.begin();
      while (it != ooo_.end() && it->first <= cum_ack_) {
        cum_ack_ = std::max(cum_ack_, it->second);
        it = ooo_.erase(it);
      }
    } else {
      // Out of order: remember the range, merging with neighbors.
      auto [it, inserted] = ooo_.emplace(start, end);
      if (!inserted) it->second = std::max(it->second, end);
      // Merge forward.
      auto next = std::next(it);
      while (next != ooo_.end() && next->first <= it->second) {
        it->second = std::max(it->second, next->second);
        next = ooo_.erase(next);
      }
      // Merge backward.
      if (it != ooo_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= it->first) {
          prev->second = std::max(prev->second, it->second);
          ooo_.erase(it);
        }
      }
    }
  }

  if (config_.delayed_ack && in_order && ooo_.empty()) {
    ++unacked_segments_;
    if (unacked_segments_ >= 2) {
      flush_delayed(pkt);
    } else {
      const uint64_t gen = ++delayed_timer_gen_;
      Packet trigger = pkt;
      events_.schedule(Duration::from_millis(1), [this, gen, trigger] {
        if (gen == delayed_timer_gen_ && unacked_segments_ > 0) {
          flush_delayed(trigger);
        }
      });
    }
    return;
  }
  // Out-of-order data or duplicates: ACK immediately (loss recovery
  // depends on prompt dupacks/SACKs).
  flush_delayed(pkt);
}

void TcpReceiver::flush_delayed(const Packet& trigger) {
  unacked_segments_ = 0;
  ++delayed_timer_gen_;
  send_ack(trigger);
}

void TcpReceiver::send_ack(const Packet& trigger) {
  Packet ack;
  ack.flow = flow_id_;
  ack.uid = next_uid_++;
  ack.is_ack = true;
  ack.ack_seq = cum_ack_;
  ack.ts_echo = trigger.ts_val;
  ack.ece = trigger.ce;  // per-ACK echo of the congestion experience bit
  ack.header_bytes = trigger.header_bytes;
  // SACK blocks, RFC 2018 style: the block containing the most recently
  // received segment MUST come first. (Without this, a tail-loss probe's
  // delivery is never reported to the sender — its range sits beyond the
  // first few out-of-order ranges — and RACK cannot re-mark lost
  // retransmissions, deadlocking recovery until an RTO.)
  auto add_block = [&ack](uint64_t s, uint64_t e) {
    for (uint8_t i = 0; i < ack.num_sacks; ++i) {
      if (ack.sack_start[i] == s) return;  // already included
    }
    if (ack.num_sacks < Packet::kMaxSackBlocks) {
      ack.sack_start[ack.num_sacks] = s;
      ack.sack_end[ack.num_sacks] = e;
      ++ack.num_sacks;
    }
  };
  if (!ooo_.empty() && trigger.len > 0 && trigger.seq >= cum_ack_) {
    // Find the (merged) range holding the triggering segment.
    auto it = ooo_.upper_bound(trigger.seq);
    if (it != ooo_.begin()) {
      --it;
      if (trigger.seq >= it->first && trigger.seq < it->second) {
        add_block(it->first, it->second);
      }
    }
  }
  for (const auto& [s, e] : ooo_) add_block(s, e);
  egress_(ack);
}

}  // namespace ccp::sim
