// Runs the CCP agent and datapath inside the simulation.
//
// Both live in the sender host's process in real deployments; here both
// are driven by the event queue, with IPC frames delivered after a
// modeled delay. The default delay (15 us each way, 20% jitter) is the
// measured Unix-socket median from the Figure 2 experiment; experiments
// can sweep it (the "Could CCP work at low RTTs?" ablation of §5).
#pragma once

#include <memory>
#include <string>

#include "agent/agent.hpp"
#include "datapath/datapath.hpp"
#include "datapath/prototype_datapath.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace ccp::sim {

struct CcpHostConfig {
  Duration ipc_delay = Duration::from_micros(15);  // one-way, each direction
  double ipc_jitter_frac = 0.2;  // uniform +/- fraction of ipc_delay
  Duration datapath_tick = Duration::from_micros(100);
  datapath::DatapathConfig datapath;
  agent::AgentConfig agent;
  uint64_t seed = 42;
};

class SimCcpHost {
 public:
  SimCcpHost(EventQueue& events, CcpHostConfig config);

  datapath::CcpDatapath& datapath() { return *datapath_; }
  agent::CcpAgent& agent() { return *agent_; }

  /// Creates a CCP-controlled flow running `alg_name` in the agent.
  datapath::CcpFlow& create_flow(const datapath::FlowConfig& cfg,
                                 const std::string& alg_name);

  /// Starts the recurring datapath tick; call once, before run().
  void start(TimePoint until);

  uint64_t frames_dp_to_agent() const { return frames_dp_to_agent_; }
  uint64_t frames_agent_to_dp() const { return frames_agent_to_dp_; }

 private:
  Duration sample_ipc_delay();

  EventQueue& events_;
  CcpHostConfig config_;
  Rng rng_;
  std::unique_ptr<datapath::CcpDatapath> datapath_;
  std::unique_ptr<agent::CcpAgent> agent_;
  uint64_t frames_dp_to_agent_ = 0;
  uint64_t frames_agent_to_dp_ = 0;
};

/// Same wiring, but the host runs the paper's §3 *prototype* datapath
/// (fixed reports, direct control only, no programs). The agent and the
/// algorithms are identical — that is the point.
class SimPrototypeHost {
 public:
  SimPrototypeHost(EventQueue& events, CcpHostConfig config);

  datapath::PrototypeDatapath& datapath() { return *datapath_; }
  agent::CcpAgent& agent() { return *agent_; }

  datapath::PrototypeFlow& create_flow(const datapath::FlowConfig& cfg,
                                       const std::string& alg_name);
  void start(TimePoint until);

 private:
  Duration sample_ipc_delay();

  EventQueue& events_;
  CcpHostConfig config_;
  Rng rng_;
  std::unique_ptr<datapath::PrototypeDatapath> datapath_;
  std::unique_ptr<agent::CcpAgent> agent_;
};

}  // namespace ccp::sim
