// The simulator's packet: enough TCP semantics for congestion control
// research (sequencing, cumulative ACKs, timestamp echo for RTT, ECN).
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace ccp::sim {

struct Packet {
  uint32_t flow = 0;        // flow id, indexes the dumbbell's flow table
  uint64_t uid = 0;         // unique per packet, for tracing

  // Data direction.
  uint64_t seq = 0;         // first byte carried
  uint32_t len = 0;         // payload bytes (0 for pure ACK)
  bool retransmit = false;

  // ACK direction.
  bool is_ack = false;
  uint64_t ack_seq = 0;     // next byte expected (cumulative)

  // TCP timestamp option: data carries ts_val; the ACK echoes it.
  TimePoint ts_val{};
  TimePoint ts_echo{};

  // SACK option: up to kMaxSackBlocks [start, end) ranges received above
  // the cumulative ACK. Linux enables SACK by default; recovery fidelity
  // in Figures 3-4 depends on it (cumulative-only NewReno repairs one
  // hole per RTT, which is not what the paper's kernel baseline does).
  static constexpr size_t kMaxSackBlocks = 4;
  uint8_t num_sacks = 0;
  uint64_t sack_start[kMaxSackBlocks] = {};
  uint64_t sack_end[kMaxSackBlocks] = {};

  // ECN (RFC 3168): data sent ECT; queue may set CE; receiver echoes ECE.
  bool ect = false;
  bool ce = false;
  bool ece = false;

  uint32_t header_bytes = 40;  // IP + TCP headers for wire accounting

  uint32_t wire_bytes() const { return len + header_bytes; }
};

}  // namespace ccp::sim
