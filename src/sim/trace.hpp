// Time-series tracing for experiments: sample any probe on a fixed
// interval and retrieve (t, value) series afterwards — this is how the
// figure benches record cwnd evolution, queue depth, and throughput.
#pragma once

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/series.hpp"

namespace ccp::sim {

struct TracePoint {
  double t_secs;
  double value;
};

class Tracer {
 public:
  explicit Tracer(EventQueue& events) : events_(events) {}

  /// Samples `probe` every `interval` from now until `until`.
  void sample_every(const std::string& series, Duration interval, TimePoint until,
                    std::function<double()> probe) {
    schedule_sample(series, interval, until, std::move(probe));
  }

  /// Records a single point immediately.
  void record(const std::string& series, double value) {
    series_[series].push_back({events_.now().secs(), value});
  }

  const std::vector<TracePoint>& series(const std::string& name) const {
    static const std::vector<TracePoint> kEmpty;
    auto it = series_.find(name);
    return it == series_.end() ? kEmpty : it->second;
  }
  const std::map<std::string, std::vector<TracePoint>>& all() const {
    return series_;
  }

  /// Emits every series in the shared CSV schema (util/series.hpp) — the
  /// same format `ccp_sim --csv` and the figure benches produce.
  void write_csv(std::FILE* out) const { util::write_series_csv(out, series_); }

 private:
  void schedule_sample(const std::string& series, Duration interval, TimePoint until,
                       std::function<double()> probe) {
    if (events_.now() > until) return;
    series_[series].push_back({events_.now().secs(), probe()});
    events_.schedule(interval, [this, series, interval, until,
                                probe = std::move(probe)]() mutable {
      schedule_sample(series, interval, until, std::move(probe));
    });
  }

  EventQueue& events_;
  std::map<std::string, std::vector<TracePoint>> series_;
};

}  // namespace ccp::sim
