// Bottleneck link with a drop-tail queue and optional ECN marking.
//
// Models the standard dumbbell bottleneck: packets enter a FIFO byte
// queue; the link serves them at `rate_bps` and delivers each to the
// sink after `prop_delay`. When the queue is full the arriving packet is
// dropped (drop-tail). If an ECN threshold is set, packets that arrive
// to a standing queue above the threshold get their CE bit set instead
// of (not in addition to) being dropped — the DCTCP-style marking that
// Table 1's ECN-based algorithms consume.
//
// Two optional impairments model "wireless" links for the scenario
// harness:
//   - `random_loss`: each arriving packet is independently dropped with
//     this probability, from a private xoshiro stream seeded by
//     `loss_seed` — the same seed always yields the same drop sequence.
//   - `rate_schedule`: timed rate changes (sorted by time, applied
//     once). The packet being serialized keeps the rate it started
//     with; later packets see the new rate.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/packet.hpp"
#include "util/rng.hpp"

namespace ccp::sim {

/// One entry of a variable-rate schedule: at `at`, the link rate becomes
/// `rate_bps`.
struct RateChange {
  Duration at;
  double rate_bps;
};

struct LinkConfig {
  double rate_bps = 1e9;                       // bits per second
  Duration prop_delay = Duration::from_millis(5);
  uint64_t queue_capacity_bytes = 125'000;     // 1 BDP at 1 Gbit/s x 1 ms
  uint64_t ecn_threshold_bytes = std::numeric_limits<uint64_t>::max();
  double random_loss = 0.0;                    // iid drop probability per packet
  uint64_t loss_seed = 1;                      // seeds the private loss RNG
  std::vector<RateChange> rate_schedule;       // ascending by .at
};

struct LinkStats {
  uint64_t enqueued_pkts = 0;
  uint64_t delivered_pkts = 0;
  uint64_t dropped_pkts = 0;         // drop-tail (queue full)
  uint64_t random_dropped_pkts = 0;  // random_loss model, counted separately
  uint64_t marked_pkts = 0;
  uint64_t rate_changes_applied = 0;
  uint64_t delivered_bytes = 0;  // wire bytes through the link
  uint64_t max_queue_bytes = 0;
};

class Link {
 public:
  using Sink = std::function<void(Packet)>;

  Link(EventQueue& events, LinkConfig config, Sink sink);

  /// Offers a packet to the queue; may drop (random loss or drop-tail)
  /// or CE-mark it.
  void enqueue(Packet pkt);

  uint64_t queue_bytes() const { return queue_bytes_; }
  const LinkConfig& config() const { return config_; }
  const LinkStats& stats() const { return stats_; }

  /// Time-weighted mean rate over [epoch, until], accounting for the
  /// rate schedule. With no schedule this is just `rate_bps`. Used by
  /// scorecards to compute utilization on variable-rate links.
  double mean_rate_bps(Duration until) const;

  /// Serialization time of one packet at the current link rate.
  Duration serialization_delay(uint32_t wire_bytes) const {
    return Duration::from_nanos(
        static_cast<int64_t>(wire_bytes * 8.0 / config_.rate_bps * 1e9));
  }

 private:
  void service_next();

  EventQueue& events_;
  LinkConfig config_;
  Sink sink_;
  double initial_rate_bps_;  // config rate before any schedule applied
  Rng loss_rng_;
  std::deque<Packet> queue_;
  uint64_t queue_bytes_ = 0;
  bool busy_ = false;
  LinkStats stats_;
};

/// A delay-only pipe (used for the reverse/ACK path: plentiful bandwidth,
/// no queueing — the usual dumbbell assumption).
class DelayPipe {
 public:
  using Sink = std::function<void(Packet)>;

  DelayPipe(EventQueue& events, Duration delay, Sink sink)
      : events_(events), delay_(delay), sink_(std::move(sink)) {}

  void enqueue(Packet pkt) {
    events_.schedule(delay_, [this, pkt = std::move(pkt)]() mutable {
      sink_(std::move(pkt));
    });
  }

 private:
  EventQueue& events_;
  Duration delay_;
  Sink sink_;
};

}  // namespace ccp::sim
