// Bottleneck link with a drop-tail queue and optional ECN marking.
//
// Models the standard dumbbell bottleneck: packets enter a FIFO byte
// queue; the link serves them at `rate_bps` and delivers each to the
// sink after `prop_delay`. When the queue is full the arriving packet is
// dropped (drop-tail). If an ECN threshold is set, packets that arrive
// to a standing queue above the threshold get their CE bit set instead
// of (not in addition to) being dropped — the DCTCP-style marking that
// Table 1's ECN-based algorithms consume.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>

#include "sim/event_queue.hpp"
#include "sim/packet.hpp"

namespace ccp::sim {

struct LinkConfig {
  double rate_bps = 1e9;                       // bits per second
  Duration prop_delay = Duration::from_millis(5);
  uint64_t queue_capacity_bytes = 125'000;     // 1 BDP at 1 Gbit/s x 1 ms
  uint64_t ecn_threshold_bytes = std::numeric_limits<uint64_t>::max();
};

struct LinkStats {
  uint64_t enqueued_pkts = 0;
  uint64_t delivered_pkts = 0;
  uint64_t dropped_pkts = 0;
  uint64_t marked_pkts = 0;
  uint64_t delivered_bytes = 0;  // wire bytes through the link
  uint64_t max_queue_bytes = 0;
};

class Link {
 public:
  using Sink = std::function<void(Packet)>;

  Link(EventQueue& events, LinkConfig config, Sink sink);

  /// Offers a packet to the queue; may drop (drop-tail) or CE-mark it.
  void enqueue(Packet pkt);

  uint64_t queue_bytes() const { return queue_bytes_; }
  const LinkConfig& config() const { return config_; }
  const LinkStats& stats() const { return stats_; }

  /// Serialization time of one packet at the link rate.
  Duration serialization_delay(uint32_t wire_bytes) const {
    return Duration::from_nanos(
        static_cast<int64_t>(wire_bytes * 8.0 / config_.rate_bps * 1e9));
  }

 private:
  void service_next();

  EventQueue& events_;
  LinkConfig config_;
  Sink sink_;
  std::deque<Packet> queue_;
  uint64_t queue_bytes_ = 0;
  bool busy_ = false;
  LinkStats stats_;
};

/// A delay-only pipe (used for the reverse/ACK path: plentiful bandwidth,
/// no queueing — the usual dumbbell assumption).
class DelayPipe {
 public:
  using Sink = std::function<void(Packet)>;

  DelayPipe(EventQueue& events, Duration delay, Sink sink)
      : events_(events), delay_(delay), sink_(std::move(sink)) {}

  void enqueue(Packet pkt) {
    events_.schedule(delay_, [this, pkt = std::move(pkt)]() mutable {
      sink_(std::move(pkt));
    });
  }

 private:
  EventQueue& events_;
  Duration delay_;
  Sink sink_;
};

}  // namespace ccp::sim
