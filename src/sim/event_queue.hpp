// Deterministic discrete-event simulation core.
//
// Events at equal timestamps fire in scheduling order (a monotone
// sequence number breaks ties), which makes runs bit-for-bit reproducible
// regardless of platform.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace ccp::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  TimePoint now() const { return now_; }

  /// Schedules `action` to run at absolute time `at` (>= now).
  void schedule_at(TimePoint at, Action action);

  /// Schedules `action` to run `delay` from now.
  void schedule(Duration delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Runs events until the queue is empty or the horizon is reached.
  /// Returns the number of events executed.
  uint64_t run_until(TimePoint horizon);

  /// Runs until the queue drains completely.
  uint64_t run();

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    TimePoint at;
    uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = TimePoint::epoch();
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace ccp::sim
