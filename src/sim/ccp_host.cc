#include "sim/ccp_host.hpp"

#include "algorithms/registry.hpp"

namespace ccp::sim {

SimCcpHost::SimCcpHost(EventQueue& events, CcpHostConfig config)
    : events_(events), config_(config), rng_(config.seed) {
  datapath_ = std::make_unique<datapath::CcpDatapath>(
      config_.datapath, [this](std::span<const uint8_t> frame) {
        ++frames_dp_to_agent_;
        // Copy: the frame buffer is reused by the datapath after this call.
        events_.schedule(sample_ipc_delay(),
                         [this, frame = std::vector<uint8_t>(frame.begin(), frame.end())] {
                           agent_->handle_frame(frame);
                         });
      });
  agent_ = std::make_unique<agent::CcpAgent>(
      config_.agent, [this](std::span<const uint8_t> frame) {
        ++frames_agent_to_dp_;
        events_.schedule(sample_ipc_delay(),
                         [this, frame = std::vector<uint8_t>(frame.begin(), frame.end())] {
                           datapath_->handle_frame(frame, events_.now());
                         });
      });
  algorithms::register_builtin_algorithms(*agent_);
}

Duration SimCcpHost::sample_ipc_delay() {
  if (config_.ipc_jitter_frac <= 0) return config_.ipc_delay;
  const double factor =
      rng_.uniform(1.0 - config_.ipc_jitter_frac, 1.0 + config_.ipc_jitter_frac);
  return config_.ipc_delay * factor;
}

datapath::CcpFlow& SimCcpHost::create_flow(const datapath::FlowConfig& cfg,
                                           const std::string& alg_name) {
  return datapath_->create_flow(cfg, alg_name, events_.now());
}

void SimCcpHost::start(TimePoint until) {
  if (events_.now() > until) return;
  datapath_->tick(events_.now());
  events_.schedule(config_.datapath_tick, [this, until] { start(until); });
}

SimPrototypeHost::SimPrototypeHost(EventQueue& events, CcpHostConfig config)
    : events_(events), config_(config), rng_(config.seed) {
  datapath_ = std::make_unique<datapath::PrototypeDatapath>(
      config_.datapath, [this](std::span<const uint8_t> frame) {
        events_.schedule(sample_ipc_delay(),
                         [this, frame = std::vector<uint8_t>(frame.begin(), frame.end())] {
                           agent_->handle_frame(frame);
                         });
      });
  agent_ = std::make_unique<agent::CcpAgent>(
      config_.agent, [this](std::span<const uint8_t> frame) {
        events_.schedule(sample_ipc_delay(),
                         [this, frame = std::vector<uint8_t>(frame.begin(), frame.end())] {
                           datapath_->handle_frame(frame, events_.now());
                         });
      });
  algorithms::register_builtin_algorithms(*agent_);
}

Duration SimPrototypeHost::sample_ipc_delay() {
  if (config_.ipc_jitter_frac <= 0) return config_.ipc_delay;
  const double factor =
      rng_.uniform(1.0 - config_.ipc_jitter_frac, 1.0 + config_.ipc_jitter_frac);
  return config_.ipc_delay * factor;
}

datapath::PrototypeFlow& SimPrototypeHost::create_flow(
    const datapath::FlowConfig& cfg, const std::string& alg_name) {
  return datapath_->create_flow(cfg, alg_name, events_.now());
}

void SimPrototypeHost::start(TimePoint until) {
  if (events_.now() > until) return;
  datapath_->tick(events_.now());
  events_.schedule(config_.datapath_tick, [this, until] { start(until); });
}

}  // namespace ccp::sim
