#include "sim/event_queue.hpp"

#include <stdexcept>

namespace ccp::sim {

void EventQueue::schedule_at(TimePoint at, Action action) {
  if (at < now_) {
    throw std::logic_error("EventQueue: scheduling into the past");
  }
  heap_.push(Event{at, next_seq_++, std::move(action)});
}

uint64_t EventQueue::run_until(TimePoint horizon) {
  uint64_t executed = 0;
  while (!heap_.empty() && heap_.top().at <= horizon) {
    // Move out the action before popping so it can schedule new events.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.at;
    ev.action();
    ++executed;
  }
  if (now_ < horizon) now_ = horizon;
  return executed;
}

uint64_t EventQueue::run() { return run_until(TimePoint::max()); }

}  // namespace ccp::sim
