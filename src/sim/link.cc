#include "sim/link.hpp"

#include <algorithm>

namespace ccp::sim {

Link::Link(EventQueue& events, LinkConfig config, Sink sink)
    : events_(events), config_(config), sink_(std::move(sink)) {}

void Link::enqueue(Packet pkt) {
  // Drop-tail on the byte budget; an empty queue always admits one
  // packet (a real queue can hold at least one MTU regardless of its
  // configured byte limit).
  if (!queue_.empty() &&
      queue_bytes_ + pkt.wire_bytes() > config_.queue_capacity_bytes) {
    ++stats_.dropped_pkts;
    return;
  }
  if (pkt.ect && queue_bytes_ >= config_.ecn_threshold_bytes) {
    pkt.ce = true;
    ++stats_.marked_pkts;
  }
  queue_bytes_ += pkt.wire_bytes();
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queue_bytes_);
  ++stats_.enqueued_pkts;
  queue_.push_back(std::move(pkt));
  if (!busy_) service_next();
}

void Link::service_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Packet pkt = std::move(queue_.front());
  queue_.pop_front();
  queue_bytes_ -= pkt.wire_bytes();

  const Duration tx_time = serialization_delay(pkt.wire_bytes());
  // The next packet starts transmitting when this one finishes...
  events_.schedule(tx_time, [this] { service_next(); });
  // ...and this one arrives after transmission plus propagation.
  events_.schedule(tx_time + config_.prop_delay,
                   [this, pkt = std::move(pkt)]() mutable {
                     ++stats_.delivered_pkts;
                     stats_.delivered_bytes += pkt.wire_bytes();
                     sink_(std::move(pkt));
                   });
}

}  // namespace ccp::sim
