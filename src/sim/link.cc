#include "sim/link.hpp"

#include <algorithm>

namespace ccp::sim {

Link::Link(EventQueue& events, LinkConfig config, Sink sink)
    : events_(events),
      config_(std::move(config)),
      sink_(std::move(sink)),
      initial_rate_bps_(config_.rate_bps),
      loss_rng_(config_.loss_seed) {
  // Arm the variable-rate schedule. Each change fires once, at its
  // absolute time; the schedule is part of the config, so two links
  // built from the same config produce identical rate trajectories.
  for (const RateChange& change : config_.rate_schedule) {
    events_.schedule_at(TimePoint::epoch() + change.at,
                        [this, rate = change.rate_bps] {
                          config_.rate_bps = rate;
                          ++stats_.rate_changes_applied;
                        });
  }
}

void Link::enqueue(Packet pkt) {
  // Random ("wireless") loss acts before the queue: the packet never
  // occupied buffer space. Drawn per arriving packet so the drop
  // sequence is a pure function of (loss_seed, arrival order).
  if (config_.random_loss > 0 && loss_rng_.chance(config_.random_loss)) {
    ++stats_.random_dropped_pkts;
    return;
  }
  // Drop-tail on the byte budget; an empty queue always admits one
  // packet (a real queue can hold at least one MTU regardless of its
  // configured byte limit).
  if (!queue_.empty() &&
      queue_bytes_ + pkt.wire_bytes() > config_.queue_capacity_bytes) {
    ++stats_.dropped_pkts;
    return;
  }
  if (pkt.ect && queue_bytes_ >= config_.ecn_threshold_bytes) {
    pkt.ce = true;
    ++stats_.marked_pkts;
  }
  queue_bytes_ += pkt.wire_bytes();
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queue_bytes_);
  ++stats_.enqueued_pkts;
  queue_.push_back(std::move(pkt));
  if (!busy_) service_next();
}

void Link::service_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Packet pkt = std::move(queue_.front());
  queue_.pop_front();
  queue_bytes_ -= pkt.wire_bytes();

  const Duration tx_time = serialization_delay(pkt.wire_bytes());
  // The next packet starts transmitting when this one finishes...
  events_.schedule(tx_time, [this] { service_next(); });
  // ...and this one arrives after transmission plus propagation.
  events_.schedule(tx_time + config_.prop_delay,
                   [this, pkt = std::move(pkt)]() mutable {
                     ++stats_.delivered_pkts;
                     stats_.delivered_bytes += pkt.wire_bytes();
                     sink_(std::move(pkt));
                   });
}

double Link::mean_rate_bps(Duration until) const {
  if (config_.rate_schedule.empty() || until <= Duration::zero()) {
    return initial_rate_bps_;
  }
  // Integrate the configured schedule over [0, until]. The schedule is
  // ascending; the rate before its first entry is the construction-time
  // rate (config_.rate_bps mutates as changes apply, so it cannot be
  // read back for this).
  double integral = 0;
  Duration prev = Duration::zero();
  double rate = initial_rate_bps_;
  for (const RateChange& change : config_.rate_schedule) {
    const Duration at = change.at < until ? change.at : until;
    if (at > prev) {
      integral += rate * (at - prev).secs();
      prev = at;
    }
    if (change.at >= until) break;
    rate = change.rate_bps;
  }
  if (until > prev) integral += rate * (until - prev).secs();
  return integral / until.secs();
}

}  // namespace ccp::sim
