#include "resilience/supervisor.hpp"

#include <utility>

#include "ipc/message.hpp"
#include "ipc/wire.hpp"
#include "telemetry/telemetry.hpp"

namespace ccp::resilience {

AgentSupervisor::AgentSupervisor(Config config, ConnectFn connect,
                                 OnConnected on_connected, EventLog* log)
    : config_(config),
      connect_(std::move(connect)),
      on_connected_(std::move(on_connected)),
      log_(log),
      rng_(config.seed) {}

void AgentSupervisor::adopt(std::unique_ptr<ipc::Transport> transport) {
  transport_ = std::move(transport);
  ++generation_;
  failures_ = 0;
  current_backoff_ = Duration{};
  retry_scheduled_ = false;
}

bool AgentSupervisor::tick(TimePoint now) {
  if (transport_ != nullptr) {
    const ipc::TransportStatus st = transport_->status();
    if (st == ipc::TransportStatus::Ok) return true;
    handle_disconnect(st, now);
    // Fall through: the first reconnect attempt happens immediately —
    // backoff paces repeated *failures*, not the initial reaction.
  }
  if (retry_scheduled_ && now < next_attempt_at_) return false;
  return try_connect(now);
}

void AgentSupervisor::handle_disconnect(ipc::TransportStatus why,
                                        TimePoint now) {
  (void)now;
  transport_.reset();
  retry_scheduled_ = false;
  if (telemetry::enabled()) telemetry::metrics().sup_disconnects.inc();
  if (log_ != nullptr) {
    log_->append(ResilienceEvent::Kind::Disconnect, 0,
                 static_cast<uint64_t>(why));
  }
}

bool AgentSupervisor::try_connect(TimePoint now) {
  ++attempts_;
  if (telemetry::enabled()) telemetry::metrics().sup_reconnect_attempts.inc();
  if (log_ != nullptr) {
    log_->append(ResilienceEvent::Kind::ReconnectAttempt, attempts_);
  }
  auto fresh = connect_ ? connect_() : nullptr;
  if (fresh == nullptr) {
    ++failures_;
    schedule_retry(now);
    return false;
  }
  transport_ = std::move(fresh);
  ++generation_;
  failures_ = 0;
  current_backoff_ = Duration{};
  retry_scheduled_ = false;
  if (telemetry::enabled()) telemetry::metrics().sup_reconnects.inc();
  if (log_ != nullptr) {
    log_->append(ResilienceEvent::Kind::Reconnected, 0, generation_);
  }
  // Ask the datapath to replay its live-flow state, tagged with the new
  // generation so a frame from a previous incarnation can't satisfy it.
  const ipc::Message req = ipc::ResyncRequestMsg{generation_};
  transport_->send_frame(ipc::encode_frame(req));
  if (telemetry::enabled()) telemetry::metrics().sup_resyncs.inc();
  if (log_ != nullptr) {
    log_->append(ResilienceEvent::Kind::ResyncRequested, 0, generation_);
  }
  if (on_connected_) on_connected_(*transport_, generation_);
  return true;
}

void AgentSupervisor::schedule_retry(TimePoint now) {
  // floor * multiplier^(failures-1), capped. Iterative multiply (not
  // std::pow) keeps the schedule bit-identical across libm versions.
  double nanos = static_cast<double>(config_.backoff_floor.nanos());
  const double cap = static_cast<double>(config_.backoff_cap.nanos());
  for (uint64_t i = 1; i < failures_ && nanos < cap; ++i) {
    nanos *= config_.multiplier;
  }
  if (nanos > cap) nanos = cap;
  double scale = 1.0;
  if (config_.jitter_frac > 0) {
    scale = rng_.uniform(1.0 - config_.jitter_frac, 1.0 + config_.jitter_frac);
  }
  current_backoff_ =
      Duration::from_nanos(static_cast<int64_t>(nanos * scale));
  next_attempt_at_ = now + current_backoff_;
  retry_scheduled_ = true;
  if (log_ != nullptr) {
    log_->append(ResilienceEvent::Kind::Backoff, attempts_,
                 static_cast<uint64_t>(current_backoff_.micros()));
  }
}

}  // namespace ccp::resilience
