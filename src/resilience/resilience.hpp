// Umbrella header for the resilience subsystem.
//
// Three pieces, one failure story (docs/RESILIENCE.md):
//   - FaultInjector / FaultyTransport: deterministic seed-driven faults
//     at the IPC boundary (drop, corrupt, delay, forced ring-full, agent
//     stall, agent kill).
//   - Datapath watchdog: lives in CcpFlow (src/datapath/flow.cc) — flows
//     whose agent goes quiet for k RTTs fall back to an in-datapath
//     NewReno program and recover when the agent returns.
//   - AgentSupervisor: reconnect with capped exponential backoff plus
//     jitter, then a generation-tagged resync that replays live-flow
//     summaries into the restarted agent.
#pragma once

#include "resilience/event_log.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/supervisor.hpp"
