// Agent supervisor: reconnect with capped exponential backoff, then
// resync.
//
// The datapath (or a harness standing in for it) polls tick(). While the
// transport reports Ok the supervisor is pass-through. The moment
// status() goes PeerDisconnected/Error — agent crash, socket torn down —
// the supervisor drops the dead transport and starts the reconnect
// schedule: floor * multiplier^failures, capped, with seeded
// symmetric jitter so herds of datapaths don't reconnect in lockstep
// (and so tests are reproducible: same seed, same schedule).
//
// On success it bumps the generation counter, sends a ResyncRequest
// carrying the generation as token, and hands the fresh transport to the
// caller's on_connected callback. The receiving datapath replays
// FlowSummary messages for every active flow (see
// CcpDatapath::replay_flow_summaries); the restarted agent rebuilds its
// flow table from those and re-installs programs, which pulls flows out
// of in-datapath fallback. Because shard command queues are FIFO, any
// command published before the resync applies before the replay — a
// stale install can never overwrite resynced state (the PR-3 epoch
// guard).
//
// Everything is poll-driven with injected time: no threads, no real
// clock, fully deterministic under test.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "ipc/transport.hpp"
#include "resilience/event_log.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace ccp::resilience {

class AgentSupervisor {
 public:
  struct Config {
    Duration backoff_floor = Duration::from_millis(10);
    Duration backoff_cap = Duration::from_secs(1);
    double multiplier = 2.0;
    /// Backoff is scaled by uniform [1 - jitter_frac, 1 + jitter_frac).
    double jitter_frac = 0.2;
    uint64_t seed = 1;
  };

  /// Attempts one connection; nullptr means the attempt failed.
  using ConnectFn = std::function<std::unique_ptr<ipc::Transport>()>;
  /// Called after a successful (re)connect and resync request, with the
  /// live transport and the new generation. The caller rewires its
  /// agent/datapath onto the transport and (agent side) arms
  /// Agent::expect_resync(generation).
  using OnConnected = std::function<void(ipc::Transport&, uint64_t generation)>;

  AgentSupervisor(Config config, ConnectFn connect, OnConnected on_connected,
                  EventLog* log = nullptr);

  /// Adopts an already-live transport as generation 1 without a resync
  /// round trip (initial startup, where the datapath has no flows yet).
  void adopt(std::unique_ptr<ipc::Transport> transport);

  /// Advances the state machine. Returns true while a healthy transport
  /// is held. Call at any cadence; reconnect attempts are paced by the
  /// backoff schedule against `now`, not by call frequency.
  bool tick(TimePoint now);

  bool connected() const { return transport_ != nullptr; }
  ipc::Transport* transport() { return transport_.get(); }
  /// Monotonic connection generation; doubles as the resync token.
  uint64_t generation() const { return generation_; }
  uint64_t consecutive_failures() const { return failures_; }
  /// The delay that produced the currently scheduled attempt (zero when
  /// connected or before the first failure).
  Duration current_backoff() const { return current_backoff_; }

 private:
  void handle_disconnect(ipc::TransportStatus why, TimePoint now);
  bool try_connect(TimePoint now);
  void schedule_retry(TimePoint now);

  Config config_;
  ConnectFn connect_;
  OnConnected on_connected_;
  EventLog* log_;
  Rng rng_;

  std::unique_ptr<ipc::Transport> transport_;
  uint64_t generation_ = 0;
  uint64_t failures_ = 0;
  uint64_t attempts_ = 0;
  Duration current_backoff_{};
  TimePoint next_attempt_at_{};
  bool retry_scheduled_ = false;
};

}  // namespace ccp::resilience
