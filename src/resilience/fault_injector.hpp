// Deterministic, seed-driven fault injection at the IPC boundary.
//
// A FaultyTransport wraps any ipc::Transport (ipc::FilterTransport seam)
// and, per send, decides from a seeded Rng whether to drop the frame,
// flip bytes in it, hold it back for a while, or reject it as if the
// ring were full. The receive side can be stalled (models a wedged agent
// loop) and the whole channel can be killed (models an agent crash: the
// peer observes TransportStatus::PeerDisconnected). Every decision is
// appended to an EventLog, so a run's complete failure sequence is
// reproducible bit-for-bit from the seed — that is what makes the chaos
// tests assertable instead of flaky.
//
// Time is injected (NowFn) so the tests drive a virtual clock; nothing
// here reads a real clock on its own.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "ipc/transport.hpp"
#include "resilience/event_log.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace ccp::resilience {

/// Per-send fault probabilities. Checked in order: forced-full burst,
/// drop, corrupt, delay; at most one fault fires per frame.
struct FaultPlan {
  double drop_prob = 0;
  double corrupt_prob = 0;
  double delay_prob = 0;
  Duration delay = Duration::from_millis(1);  // hold time for delayed frames
};

class FaultyTransport final : public ipc::FilterTransport {
 public:
  using NowFn = std::function<TimePoint()>;

  FaultyTransport(std::unique_ptr<ipc::Transport> inner, FaultPlan plan,
                  Rng rng, NowFn now, EventLog* log);

  // --- Transport (fault-filtered) ---

  bool send_frame(std::span<const uint8_t> frame) override;
  std::optional<std::vector<uint8_t>> recv_frame(
      std::optional<Duration> timeout) override;
  std::optional<std::vector<uint8_t>> try_recv_frame() override;
  size_t drain_frames(const ipc::FrameSink& sink) override;
  bool closed() const override;
  ipc::TransportStatus status() const override;

  // --- fault controls ---

  /// Kills the channel: every later call behaves as if the peer vanished
  /// (send fails, recv drains nothing, status() = PeerDisconnected).
  void kill();
  bool killed() const { return killed_; }

  /// The next `n` sends fail as if the ring were full (caller-visible
  /// backpressure burst).
  void force_full(uint32_t n) { forced_full_remaining_ = n; }

  /// Stalls the receive side until `now + d`: drain/recv return nothing,
  /// modeling a wedged agent loop. Frames queue up in the inner
  /// transport meanwhile.
  void stall_for(Duration d);
  bool stalled() const;

  /// Delivers delayed frames whose release time has arrived. The test
  /// harness calls this as its virtual clock advances. Returns how many
  /// frames were released into the inner transport.
  size_t flush_due();

  /// Frames currently held back by delay faults.
  size_t delayed_pending() const { return delayed_.size(); }

  uint64_t frames_seen() const { return send_index_; }

 private:
  struct DelayedFrame {
    TimePoint release_at;
    std::vector<uint8_t> bytes;
  };

  void log(ResilienceEvent::Kind kind, uint64_t a = 0, uint64_t b = 0) {
    if (log_ != nullptr) log_->append(kind, a, b);
  }

  FaultPlan plan_;
  Rng rng_;
  NowFn now_;
  EventLog* log_;

  uint64_t send_index_ = 0;  // frames offered to send_frame, 1-based
  uint32_t forced_full_remaining_ = 0;
  bool killed_ = false;
  TimePoint stall_until_{};
  std::deque<DelayedFrame> delayed_;
  std::vector<uint8_t> corrupt_scratch_;
};

/// Factory tying a fleet of FaultyTransports to one master seed and one
/// shared event log: each wrap() splits an independent child stream, so
/// adding a transport never perturbs the fault sequence of the others.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed, EventLog* log = nullptr)
      : rng_(seed), log_(log) {}

  /// Wraps `inner`, returning the injectable transport. `now` feeds the
  /// delay/stall clocks; pass the harness's virtual clock.
  std::unique_ptr<FaultyTransport> wrap(std::unique_ptr<ipc::Transport> inner,
                                        FaultPlan plan,
                                        FaultyTransport::NowFn now);

  EventLog* log() { return log_; }

 private:
  Rng rng_;
  EventLog* log_;
};

}  // namespace ccp::resilience
