#include "resilience/fault_injector.hpp"

#include <utility>

#include "telemetry/telemetry.hpp"

namespace ccp::resilience {

FaultyTransport::FaultyTransport(std::unique_ptr<ipc::Transport> inner,
                                 FaultPlan plan, Rng rng, NowFn now,
                                 EventLog* log)
    : ipc::FilterTransport(std::move(inner)),
      plan_(plan),
      rng_(rng),
      now_(std::move(now)),
      log_(log) {
  if (!now_) now_ = [] { return monotonic_now(); };
}

bool FaultyTransport::send_frame(std::span<const uint8_t> frame) {
  if (killed_) return false;
  const uint64_t idx = ++send_index_;
  if (forced_full_remaining_ > 0) {
    --forced_full_remaining_;
    if (telemetry::enabled()) telemetry::metrics().fault_forced_full.inc();
    log(ResilienceEvent::Kind::ForcedFull, idx);
    return false;
  }
  if (plan_.drop_prob > 0 && rng_.chance(plan_.drop_prob)) {
    // A dropped frame "succeeds" from the sender's point of view — that
    // is what makes silent loss a distinct failure mode from
    // backpressure (the sender never learns).
    if (telemetry::enabled()) telemetry::metrics().fault_drops.inc();
    log(ResilienceEvent::Kind::Drop, idx);
    return true;
  }
  if (plan_.corrupt_prob > 0 && rng_.chance(plan_.corrupt_prob)) {
    // Deterministic corruption: flip one seeded byte position and XOR a
    // seeded mask, so the same seed mangles the same frame the same way.
    corrupt_scratch_.assign(frame.begin(), frame.end());
    if (!corrupt_scratch_.empty()) {
      const size_t pos = rng_.next_below(corrupt_scratch_.size());
      const uint8_t mask =
          static_cast<uint8_t>(1 + rng_.next_below(255));  // never a no-op
      corrupt_scratch_[pos] ^= mask;
    }
    if (telemetry::enabled()) telemetry::metrics().fault_corruptions.inc();
    log(ResilienceEvent::Kind::Corrupt, idx);
    return inner_->send_frame(corrupt_scratch_);
  }
  if (plan_.delay_prob > 0 && rng_.chance(plan_.delay_prob)) {
    delayed_.push_back(DelayedFrame{
        now_() + plan_.delay, std::vector<uint8_t>(frame.begin(), frame.end())});
    if (telemetry::enabled()) telemetry::metrics().fault_delays.inc();
    log(ResilienceEvent::Kind::Delay, idx,
        static_cast<uint64_t>(plan_.delay.micros()));
    return true;
  }
  // In-order delivery behind any still-held frames: a delayed frame must
  // not be overtaken by later sends, or the receiver would see reordering
  // the real SOCK_SEQPACKET channel never produces.
  if (!delayed_.empty()) {
    delayed_.push_back(
        DelayedFrame{delayed_.back().release_at,
                     std::vector<uint8_t>(frame.begin(), frame.end())});
    return true;
  }
  return inner_->send_frame(frame);
}

size_t FaultyTransport::flush_due() {
  if (killed_) {
    delayed_.clear();
    return 0;
  }
  const TimePoint now = now_();
  size_t released = 0;
  while (!delayed_.empty() && delayed_.front().release_at <= now) {
    inner_->send_frame(delayed_.front().bytes);
    delayed_.pop_front();
    ++released;
  }
  return released;
}

bool FaultyTransport::stalled() const {
  return !killed_ && now_() < stall_until_;
}

void FaultyTransport::stall_for(Duration d) {
  stall_until_ = now_() + d;
  if (telemetry::enabled()) telemetry::metrics().fault_stalls.inc();
  log(ResilienceEvent::Kind::StallBegin, 0,
      static_cast<uint64_t>(d.micros()));
}

void FaultyTransport::kill() {
  if (killed_) return;
  killed_ = true;
  delayed_.clear();
  if (telemetry::enabled()) telemetry::metrics().fault_kills.inc();
  log(ResilienceEvent::Kind::Kill);
}

std::optional<std::vector<uint8_t>> FaultyTransport::recv_frame(
    std::optional<Duration> timeout) {
  if (killed_ || stalled()) return std::nullopt;
  return inner_->recv_frame(timeout);
}

std::optional<std::vector<uint8_t>> FaultyTransport::try_recv_frame() {
  if (killed_ || stalled()) return std::nullopt;
  return inner_->try_recv_frame();
}

size_t FaultyTransport::drain_frames(const ipc::FrameSink& sink) {
  if (killed_ || stalled()) return 0;
  return inner_->drain_frames(sink);
}

bool FaultyTransport::closed() const { return killed_ || inner_->closed(); }

ipc::TransportStatus FaultyTransport::status() const {
  if (killed_) return ipc::TransportStatus::PeerDisconnected;
  return inner_->status();
}

std::unique_ptr<FaultyTransport> FaultInjector::wrap(
    std::unique_ptr<ipc::Transport> inner, FaultPlan plan,
    FaultyTransport::NowFn now) {
  return std::make_unique<FaultyTransport>(std::move(inner), plan, rng_.split(),
                                           std::move(now), log_);
}

}  // namespace ccp::resilience
