#include "resilience/event_log.hpp"

#include <cstdio>

namespace ccp::resilience {

const char* resilience_event_name(ResilienceEvent::Kind k) noexcept {
  switch (k) {
    case ResilienceEvent::Kind::Drop: return "drop";
    case ResilienceEvent::Kind::Corrupt: return "corrupt";
    case ResilienceEvent::Kind::Delay: return "delay";
    case ResilienceEvent::Kind::ForcedFull: return "forced_full";
    case ResilienceEvent::Kind::StallBegin: return "stall_begin";
    case ResilienceEvent::Kind::Kill: return "kill";
    case ResilienceEvent::Kind::Disconnect: return "disconnect";
    case ResilienceEvent::Kind::ReconnectAttempt: return "reconnect_attempt";
    case ResilienceEvent::Kind::Reconnected: return "reconnected";
    case ResilienceEvent::Kind::ResyncRequested: return "resync_requested";
    case ResilienceEvent::Kind::Backoff: return "backoff";
  }
  return "unknown";
}

std::string EventLog::to_string() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(events_.size() * 32);
  char line[96];
  for (const auto& ev : events_) {
    std::snprintf(line, sizeof(line), "%s a=%llu b=%llu\n",
                  resilience_event_name(ev.kind),
                  static_cast<unsigned long long>(ev.a),
                  static_cast<unsigned long long>(ev.b));
    out += line;
  }
  return out;
}

}  // namespace ccp::resilience
