// Deterministic resilience event log.
//
// Every fault the FaultInjector fires and every state transition the
// AgentSupervisor makes appends one typed event here. Because injector
// decisions come from a seeded Rng and supervisor scheduling is
// poll-driven virtual time, two runs with the same seed produce the
// exact same event sequence — to_string() equality is the reproducibility
// check the end-to-end fault tests assert on.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ccp::resilience {

struct ResilienceEvent {
  enum class Kind : uint8_t {
    Drop = 1,             // a = frame index on this transport
    Corrupt = 2,          // a = frame index
    Delay = 3,            // a = frame index, b = delay micros
    ForcedFull = 4,       // a = frame index
    StallBegin = 5,       // b = stall micros
    Kill = 6,             //
    Disconnect = 7,       // b = transport status
    ReconnectAttempt = 8, // a = attempt number (1-based)
    Reconnected = 9,      // b = new generation
    ResyncRequested = 10, // b = generation (== resync token)
    Backoff = 11,         // a = attempt number, b = backoff micros
  };

  Kind kind = Kind::Drop;
  uint64_t a = 0;
  uint64_t b = 0;
};

const char* resilience_event_name(ResilienceEvent::Kind k) noexcept;

/// Append-only, mutex-guarded (all writers are cold paths: faults,
/// reconnects — never the per-ACK path).
class EventLog {
 public:
  void append(ResilienceEvent::Kind kind, uint64_t a = 0, uint64_t b = 0) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(ResilienceEvent{kind, a, b});
  }

  std::vector<ResilienceEvent> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

  size_t count(ResilienceEvent::Kind kind) const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto& ev : events_) {
      if (ev.kind == kind) ++n;
    }
    return n;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
  }

  /// One "name a=<a> b=<b>" line per event; equal strings across two runs
  /// mean identical fault/recovery sequences.
  std::string to_string() const;

 private:
  mutable std::mutex mu_;
  std::vector<ResilienceEvent> events_;
};

}  // namespace ccp::resilience
