// Sampled per-stage cycle profiler for the per-ACK hot path.
//
// Attributes cycles to the stages of one ACK's journey through the
// datapath — frame decode, measurement update, fold execution (split by
// interpreter vs JIT), watchdog check, and control/report emit — using
// rdtsc timestamps on 1-in-N sampled ACKs. Accumulators are the sharded
// Counter cells from metrics.hpp (per-core cache lines, never allocate),
// exported as ccp_prof_<stage>_cycles_total / _samples_total pairs so
// `ccp_stats --profile` can show mean cycles per stage and each stage's
// share of the budget.
//
// Sampling: CCP_PROFILE_SAMPLE=<n> (or set_profile_sample(n)) turns the
// profiler on at one sample per n ACKs, n rounded up to a power of two
// so the per-ACK check is one relaxed load, one AND, and one compare
// against the flow's ACK counter. 0 (the default) disables it, leaving
// the same load + never-taken branch as every other telemetry gate.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace ccp::telemetry {

enum class ProfStage : uint8_t {
  Decode = 0,      // decode_frame_into on the agent->datapath direction
  Measure = 1,     // per-ACK measurement update + PktInfo fill
  FoldInterp = 2,  // fold_.on_packet, interpreter engine
  FoldJit = 3,     // fold_.on_packet, JIT-compiled engine
  Watchdog = 4,    // agent-staleness check
  ReportEmit = 5,  // control-program step + report/urgent emit
  FoldBatch = 6,   // grouped cross-flow batch execute (whole wave)
};

inline constexpr size_t kProfStages = 7;

const char* prof_stage_name(ProfStage s) noexcept;

namespace detail {
inline std::atomic<uint32_t> g_prof_mask{0};  // 0 = off, else n-1 (n pow2)
}  // namespace detail

/// The per-ACK sampling gate: 0 means off, otherwise an ACK whose
/// sequence number satisfies (seq & mask) == 0 is sampled.
inline uint32_t profile_sample_mask() noexcept {
  return detail::g_prof_mask.load(std::memory_order_relaxed);
}

/// Enables 1-in-n sampling (n rounded up to a power of two, min 2);
/// n == 0 disables. Safe to flip at runtime.
void set_profile_sample(uint32_t n) noexcept;

/// The effective n (power of two), or 0 when off. For display.
uint32_t profile_sample_n() noexcept;

/// Raw cycle counter. rdtsc on x86-64; elsewhere falls back to the
/// steady clock, so "cycles" read as nanoseconds — relative stage
/// shares, the thing the profiler exists for, stay meaningful.
inline uint64_t prof_cycles() noexcept {
#if defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Stage stamps for one sampled ACK, filled on the stack by the flow's
/// event path (zero-alloc) and committed in one cold call.
struct ProfSample {
  uint64_t entry = 0;     // on_ack entry
  uint64_t measure = 0;   // after measurement update + fill_pkt_info
  uint64_t watchdog = 0;  // after check_watchdog
  uint64_t fold = 0;      // after fold_.on_packet
  uint64_t done = 0;      // after control/report emit (fold_event exit)
};

/// Adds one sampled ACK's stage deltas to the accumulators. `jit`
/// selects FoldInterp vs FoldJit for the fold stage. Cold path — runs
/// once per n ACKs.
void prof_commit(const ProfSample& ps, bool jit) noexcept;

/// Adds one standalone stage observation (the decode stage, which runs
/// per frame rather than per ACK and is sampled by its own counter).
void prof_record(ProfStage stage, uint64_t cycles) noexcept;

}  // namespace ccp::telemetry
