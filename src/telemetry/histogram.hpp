// Fixed-bucket log-scale latency histogram.
//
// record() is allocation-free and wait-free: compute a bucket index with
// a count-leading-zeros and do one relaxed fetch_add. Buckets follow the
// HdrHistogram scheme — kSubBuckets linear sub-buckets per power of two —
// so relative error is bounded by 1/kSubBuckets (3.125%) across the whole
// 64-bit range, with exact counts below kSubBuckets. Quantiles
// interpolate within the resolved bucket (HistogramSample::quantile), so
// percentiles reflect where the mass sits instead of snapping to bucket
// upper bounds — the old 8-sub-bucket geometry made every report-latency
// p50 in the 61.4–65.5 us range read exactly 65.535 us. Values are
// unitless here; every histogram in this codebase records nanoseconds
// unless its name says otherwise (batch sizes record message/frame
// counts).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "telemetry/metrics.hpp"

namespace ccp::telemetry {

class Histogram {
 public:
  static constexpr int kSubBits = 5;                     // 32 sub-buckets per octave
  static constexpr uint64_t kSubBuckets = 1ull << kSubBits;
  static constexpr size_t kBuckets =
      (static_cast<size_t>(64 - kSubBits) << kSubBits) + kSubBuckets;  // 1920

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(uint64_t v) noexcept {
    counts_[index_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// Copies the non-empty buckets into `out` (name is left untouched).
  /// Concurrent record() calls may land between the per-bucket reads; the
  /// result is a consistent-enough view (each bucket individually exact).
  void collect(HistogramSample& out) const;

  /// Quantile straight off the live buckets (q in [0,1]).
  double quantile(double q) const;

  /// Test/bench helper; racy against concurrent record().
  void reset() noexcept;

  // --- bucket geometry (exposed for tests) ---

  static size_t index_of(uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<size_t>(v);
    const int exp = 63 - std::countl_zero(v);
    const int shift = exp - kSubBits;
    const uint64_t sub = (v >> shift) & (kSubBuckets - 1);
    return ((static_cast<size_t>(exp - kSubBits) + 1) << kSubBits) +
           static_cast<size_t>(sub);
  }

  static uint64_t bucket_lower(size_t idx) noexcept {
    if (idx < kSubBuckets) return idx;
    const size_t block = idx >> kSubBits;       // >= 1
    const uint64_t sub = idx & (kSubBuckets - 1);
    const int shift = static_cast<int>(block) - 1;
    return (kSubBuckets + sub) << shift;
  }

  /// Inclusive upper bound.
  static uint64_t bucket_upper(size_t idx) noexcept {
    if (idx < kSubBuckets) return idx;
    const size_t block = idx >> kSubBits;
    const int shift = static_cast<int>(block) - 1;
    return bucket_lower(idx) + ((1ull << shift) - 1);
  }

 private:
  std::atomic<uint64_t> counts_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace ccp::telemetry
