#include "telemetry/stats_server.hpp"

#include <utility>

#include "ipc/transport.hpp"
#include "ipc/wire.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"
#include "util/time.hpp"

namespace ccp::telemetry {

void encode_snapshot(ipc::Encoder& enc, const Snapshot& snap) {
  enc.u64(snap.wall_ns);
  enc.u32(static_cast<uint32_t>(snap.counters.size()));
  for (const CounterSample& c : snap.counters) {
    enc.str(c.name);
    enc.u64(c.value);
  }
  enc.u32(static_cast<uint32_t>(snap.gauges.size()));
  for (const GaugeSample& g : snap.gauges) {
    enc.str(g.name);
    enc.u64(static_cast<uint64_t>(g.value));  // sign round-trips via cast
  }
  enc.u32(static_cast<uint32_t>(snap.histograms.size()));
  for (const HistogramSample& h : snap.histograms) {
    enc.str(h.name);
    enc.u64(h.count);
    enc.u64(h.sum);
    enc.u32(static_cast<uint32_t>(h.buckets.size()));
    for (const HistogramBucket& b : h.buckets) {
      enc.u64(b.upper);
      enc.u64(b.count);
    }
  }
}

Snapshot decode_snapshot(ipc::Decoder& dec) {
  Snapshot snap;
  snap.wall_ns = dec.u64();
  const uint32_t nc = dec.u32();
  snap.counters.reserve(nc);
  for (uint32_t i = 0; i < nc; ++i) {
    CounterSample c;
    c.name = dec.str();
    c.value = dec.u64();
    snap.counters.push_back(std::move(c));
  }
  const uint32_t ng = dec.u32();
  snap.gauges.reserve(ng);
  for (uint32_t i = 0; i < ng; ++i) {
    GaugeSample g;
    g.name = dec.str();
    g.value = static_cast<int64_t>(dec.u64());
    snap.gauges.push_back(std::move(g));
  }
  const uint32_t nh = dec.u32();
  snap.histograms.reserve(nh);
  for (uint32_t i = 0; i < nh; ++i) {
    HistogramSample h;
    h.name = dec.str();
    h.count = dec.u64();
    h.sum = dec.u64();
    const uint32_t nb = dec.u32();
    h.buckets.reserve(nb);
    for (uint32_t b = 0; b < nb; ++b) {
      const uint64_t upper = dec.u64();
      const uint64_t count = dec.u64();
      h.buckets.push_back(HistogramBucket{upper, count});
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

namespace {

// Seqpacket datagrams are bounded by the socket buffer; chunk trace
// replies so one reply never exceeds ~100 KB.
constexpr size_t kTraceChunk = 4096;

void send_trace(ipc::Transport& conn, ipc::Encoder& enc) {
  std::vector<TraceEvent> events;
  if (TraceRing* ring = trace_ring()) events = ring->dump();
  size_t off = 0;
  while (off < events.size()) {
    const size_t n = std::min(kTraceChunk, events.size() - off);
    enc.clear();
    enc.u32(static_cast<uint32_t>(n));
    for (size_t i = 0; i < n; ++i) {
      const TraceEvent& ev = events[off + i];
      enc.u64(ev.t_ns);
      enc.f64(ev.value);
      enc.u32(ev.flow);
      enc.u16(static_cast<uint16_t>(ev.kind));
    }
    if (!conn.send_frame(enc.buffer())) return;
    off += n;
  }
  // Unconditional zero-count terminator so the client always knows when
  // the dump is complete (even an exactly-chunk-sized final batch).
  enc.clear();
  enc.u32(0);
  conn.send_frame(enc.buffer());
}

void send_spans(ipc::Transport& conn, ipc::Encoder& enc) {
  std::vector<CompletedSpan> spans;
  if (SpanRing* ring = span_ring()) spans = ring->dump();
  size_t off = 0;
  while (off < spans.size()) {
    const size_t n = std::min(kTraceChunk, spans.size() - off);
    enc.clear();
    enc.u32(static_cast<uint32_t>(n));
    for (size_t i = 0; i < n; ++i) {
      const CompletedSpan& sp = spans[off + i];
      enc.u64(sp.span_id);
      enc.u64(sp.emit_ns);
      enc.u64(sp.agent_recv_ns);
      enc.u64(sp.agent_send_ns);
      enc.u64(sp.enqueue_ns);
      enc.u64(sp.apply_ns);
      enc.u32(sp.flow);
      enc.u8(static_cast<uint8_t>(sp.command));
    }
    if (!conn.send_frame(enc.buffer())) return;
    off += n;
  }
  enc.clear();
  enc.u32(0);
  conn.send_frame(enc.buffer());
}

}  // namespace

class StatsServerImpl {
 public:
  explicit StatsServerImpl(const std::string& path) : listener_(path) {}
  ipc::UnixListener listener_;
};

StatsServer::StatsServer(std::string socket_path)
    : path_(std::move(socket_path)),
      impl_(std::make_unique<StatsServerImpl>(path_)) {
  thread_ = std::thread([this] { run(); });
}

StatsServer::~StatsServer() { stop(); }

void StatsServer::stop() {
  if (stop_.exchange(true)) return;
  impl_->listener_.close();
  if (thread_.joinable()) thread_.join();
}

void StatsServer::run() {
  ipc::Encoder enc;
  while (!stop_.load(std::memory_order_relaxed)) {
    auto conn = impl_->listener_.accept(Duration::from_millis(200));
    if (!conn) continue;
    // Serve this client until it disconnects; attaches are rare and
    // short-lived, so one-at-a-time is fine.
    while (!stop_.load(std::memory_order_relaxed)) {
      auto req = conn->recv_frame(Duration::from_millis(200));
      if (!req.has_value()) {
        if (conn->closed()) break;
        continue;
      }
      if (req->empty()) continue;
      const uint8_t kind = (*req)[0];
      if (kind == kStatsReqSnapshot) {
        enc.clear();
        encode_snapshot(enc, MetricsRegistry::global().snapshot());
        if (!conn->send_frame(enc.buffer())) break;
      } else if (kind == kStatsReqTrace) {
        send_trace(*conn, enc);
      } else if (kind == kStatsReqSpans) {
        send_spans(*conn, enc);
      } else {
        CCP_WARN("stats server: unknown request kind %u", unsigned{kind});
      }
    }
  }
}

class StatsClientImpl {
 public:
  explicit StatsClientImpl(std::unique_ptr<ipc::Transport> conn)
      : conn_(std::move(conn)) {}
  std::unique_ptr<ipc::Transport> conn_;
  ipc::Encoder enc_;
};

StatsClient::StatsClient(std::unique_ptr<StatsClientImpl> impl)
    : impl_(std::move(impl)) {}

StatsClient::~StatsClient() = default;

std::unique_ptr<StatsClient> StatsClient::connect(const std::string& socket_path) {
  auto conn = ipc::unix_connect(socket_path);
  if (!conn) return nullptr;
  return std::unique_ptr<StatsClient>(
      new StatsClient(std::make_unique<StatsClientImpl>(std::move(conn))));
}

std::optional<Snapshot> StatsClient::snapshot() {
  impl_->enc_.clear();
  impl_->enc_.u8(kStatsReqSnapshot);
  if (!impl_->conn_->send_frame(impl_->enc_.buffer())) return std::nullopt;
  auto reply = impl_->conn_->recv_frame(Duration::from_millis(2000));
  if (!reply.has_value()) return std::nullopt;
  try {
    ipc::Decoder dec(*reply);
    return decode_snapshot(dec);
  } catch (const ipc::WireError& e) {
    CCP_WARN("stats client: bad snapshot reply: %s", e.what());
    return std::nullopt;
  }
}

std::optional<std::vector<TraceEvent>> StatsClient::trace() {
  impl_->enc_.clear();
  impl_->enc_.u8(kStatsReqTrace);
  if (!impl_->conn_->send_frame(impl_->enc_.buffer())) return std::nullopt;
  std::vector<TraceEvent> out;
  for (;;) {
    auto reply = impl_->conn_->recv_frame(Duration::from_millis(2000));
    if (!reply.has_value()) return std::nullopt;
    try {
      ipc::Decoder dec(*reply);
      const uint32_t n = dec.u32();
      if (n == 0) return out;
      for (uint32_t i = 0; i < n; ++i) {
        TraceEvent ev;
        ev.t_ns = dec.u64();
        ev.value = dec.f64();
        ev.flow = dec.u32();
        ev.kind = static_cast<TraceKind>(dec.u16());
        out.push_back(ev);
      }
    } catch (const ipc::WireError& e) {
      CCP_WARN("stats client: bad trace reply: %s", e.what());
      return std::nullopt;
    }
  }
}

std::optional<std::vector<CompletedSpan>> StatsClient::spans() {
  impl_->enc_.clear();
  impl_->enc_.u8(kStatsReqSpans);
  if (!impl_->conn_->send_frame(impl_->enc_.buffer())) return std::nullopt;
  std::vector<CompletedSpan> out;
  for (;;) {
    auto reply = impl_->conn_->recv_frame(Duration::from_millis(2000));
    if (!reply.has_value()) return std::nullopt;
    try {
      ipc::Decoder dec(*reply);
      const uint32_t n = dec.u32();
      if (n == 0) return out;
      for (uint32_t i = 0; i < n; ++i) {
        CompletedSpan sp;
        sp.span_id = dec.u64();
        sp.emit_ns = dec.u64();
        sp.agent_recv_ns = dec.u64();
        sp.agent_send_ns = dec.u64();
        sp.enqueue_ns = dec.u64();
        sp.apply_ns = dec.u64();
        sp.flow = dec.u32();
        sp.command = static_cast<SpanCommand>(dec.u8());
        out.push_back(sp);
      }
    } catch (const ipc::WireError& e) {
      CCP_WARN("stats client: bad spans reply: %s", e.what());
      return std::nullopt;
    }
  }
}

}  // namespace ccp::telemetry
