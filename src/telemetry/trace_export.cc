#include "telemetry/trace_export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace ccp::telemetry {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<size_t>(static_cast<size_t>(n), sizeof(buf) - 1));
}

// Microsecond timestamps, the unit the Trace Event Format expects.
double us(uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

// JSON numbers must be finite; clamp anything else (a corrupt ring slot
// read mid-overwrite can hold any bit pattern).
double finite(double v) { return std::isfinite(v) ? v : 0.0; }

void append_complete_event(std::string& out, bool& first, const char* name,
                           uint32_t tid, uint64_t from_ns, uint64_t to_ns,
                           uint64_t span_id) {
  if (from_ns == 0 || to_ns < from_ns) return;  // hop never stamped
  if (!first) out += ",\n";
  first = false;
  appendf(out,
          "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
          "\"pid\":1,\"tid\":%u,\"args\":{\"span_id\":%" PRIu64 "}}",
          name, us(from_ns), us(to_ns - from_ns), tid, span_id);
}

}  // namespace

std::string trace_events_json(const std::vector<TraceEvent>& events,
                              const std::vector<CompletedSpan>& spans) {
  std::string out;
  out.reserve(256 + events.size() * 128 + spans.size() * 640);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;

  // Metadata: one process, flows as threads (tracks).
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"ccp\"}}";
  first = false;

  for (const CompletedSpan& sp : spans) {
    char total_name[64];
    snprintf(total_name, sizeof(total_name), "loop/%s",
             span_command_name(sp.command));
    // Parent first: viewers stack same-track "X" events by containment.
    append_complete_event(out, first, total_name, sp.flow, sp.emit_ns,
                          sp.apply_ns, sp.span_id);
    append_complete_event(out, first, "emit_to_agent", sp.flow, sp.emit_ns,
                          sp.agent_recv_ns, sp.span_id);
    append_complete_event(out, first, "agent_handler", sp.flow,
                          sp.agent_recv_ns, sp.agent_send_ns, sp.span_id);
    append_complete_event(out, first, "agent_to_enqueue", sp.flow,
                          sp.agent_send_ns, sp.enqueue_ns, sp.span_id);
    append_complete_event(out, first, "enqueue_to_apply", sp.flow,
                          sp.enqueue_ns, sp.apply_ns, sp.span_id);
  }

  for (const TraceEvent& ev : events) {
    if (!first) out += ",\n";
    first = false;
    appendf(out,
            "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,"
            "\"tid\":%u,\"s\":\"t\",\"args\":{\"value\":%.6g}}",
            trace_kind_name(ev.kind), us(ev.t_ns), ev.flow, finite(ev.value));
  }

  out += "\n]}\n";
  return out;
}

namespace {

constexpr uint32_t kDumpMagic = 0x54504343;  // "CCPT" little-endian
constexpr uint32_t kDumpVersion = 1;
// Caps a corrupt header's allocation request, mirroring the wire codec's
// kMaxVecLen discipline.
constexpr uint64_t kMaxDumpEntries = 1ull << 24;

void put_u32(std::vector<uint8_t>& b, uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<uint8_t>& b, uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void put_f64(std::vector<uint8_t>& b, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(b, bits);
}

struct Reader {
  const uint8_t* p;
  const uint8_t* end;
  bool ok = true;

  bool need(size_t n) {
    if (static_cast<size_t>(end - p) < n) ok = false;
    return ok;
  }
  uint32_t u32() {
    if (!need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
    p += 4;
    return v;
  }
  uint64_t u64() {
    if (!need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
    p += 8;
    return v;
  }
  double f64() {
    const uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
};

}  // namespace

bool write_trace_dump(const std::string& path,
                      const std::vector<TraceEvent>& events,
                      const std::vector<CompletedSpan>& spans) {
  std::vector<uint8_t> buf;
  buf.reserve(24 + events.size() * 24 + spans.size() * 56);
  put_u32(buf, kDumpMagic);
  put_u32(buf, kDumpVersion);
  put_u64(buf, events.size());
  put_u64(buf, spans.size());
  for (const TraceEvent& ev : events) {
    put_u64(buf, ev.t_ns);
    put_f64(buf, ev.value);
    put_u32(buf, ev.flow);
    put_u32(buf, static_cast<uint32_t>(ev.kind));
  }
  for (const CompletedSpan& sp : spans) {
    put_u64(buf, sp.span_id);
    put_u64(buf, sp.emit_ns);
    put_u64(buf, sp.agent_recv_ns);
    put_u64(buf, sp.agent_send_ns);
    put_u64(buf, sp.enqueue_ns);
    put_u64(buf, sp.apply_ns);
    put_u32(buf, sp.flow);
    put_u32(buf, static_cast<uint32_t>(sp.command));
  }
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = fwrite(buf.data(), 1, buf.size(), f) == buf.size();
  return fclose(f) == 0 && ok;
}

bool read_trace_dump(const std::string& path, std::vector<TraceEvent>& events,
                     std::vector<CompletedSpan>& spans) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::vector<uint8_t> buf;
  uint8_t chunk[4096];
  size_t n;
  while ((n = fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + n);
  }
  fclose(f);

  Reader r{buf.data(), buf.data() + buf.size()};
  if (r.u32() != kDumpMagic || r.u32() != kDumpVersion) return false;
  const uint64_t n_events = r.u64();
  const uint64_t n_spans = r.u64();
  if (!r.ok || n_events > kMaxDumpEntries || n_spans > kMaxDumpEntries) {
    return false;
  }
  events.clear();
  events.reserve(n_events);
  for (uint64_t i = 0; i < n_events && r.ok; ++i) {
    TraceEvent ev;
    ev.t_ns = r.u64();
    ev.value = r.f64();
    ev.flow = r.u32();
    ev.kind = static_cast<TraceKind>(r.u32());
    if (r.ok) events.push_back(ev);
  }
  spans.clear();
  spans.reserve(n_spans);
  for (uint64_t i = 0; i < n_spans && r.ok; ++i) {
    CompletedSpan sp;
    sp.span_id = r.u64();
    sp.emit_ns = r.u64();
    sp.agent_recv_ns = r.u64();
    sp.agent_send_ns = r.u64();
    sp.enqueue_ns = r.u64();
    sp.apply_ns = r.u64();
    sp.flow = r.u32();
    sp.command = static_cast<SpanCommand>(r.u32());
    if (r.ok) spans.push_back(sp);
  }
  return r.ok;
}

bool write_current_trace_dump(const std::string& path) {
  std::vector<TraceEvent> events;
  std::vector<CompletedSpan> spans;
  if (const TraceRing* ring = trace_ring()) events = ring->dump();
  if (const SpanRing* ring = span_ring()) spans = ring->dump();
  return write_trace_dump(path, events, spans);
}

}  // namespace ccp::telemetry
