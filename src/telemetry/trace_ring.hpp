// Lock-free control-loop event trace.
//
// A fixed-capacity ring of timestamped events, written from any thread
// with one fetch_add plus four plain stores — no locks, no allocation.
// Enabled by telemetry::init_from_env() when CCP_TRACE_BUF=<capacity> is
// set, or programmatically via enable_trace(). Readers (dump(), the
// stats server) get a best-effort consistent copy: each slot carries a
// sequence word written around the payload so a reader can detect and
// skip slots torn by a concurrent writer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ccp::telemetry {

enum class TraceKind : uint16_t {
  FlowCreate = 1,
  FlowClose = 2,
  InstallSent = 3,
  InstallApplied = 4,
  Report = 5,
  Urgent = 6,
  SetCwnd = 7,
  SetRate = 8,
  Fallback = 9,
  Measurement = 10,
  FallbackExit = 11,  // flow recovered from safe mode (value = cwnd bytes)
  Resync = 12,        // flow summary replayed to a restarted agent
  JitCompile = 13,    // fold program JIT-compiled (value = compile ns,
                      // flow field = generated code size in bytes)
};

const char* trace_kind_name(TraceKind k) noexcept;

struct TraceEvent {
  uint64_t t_ns = 0;   // monotonic timestamp
  double value = 0.0;  // kind-specific payload (cwnd bytes, rate, seq, ...)
  uint32_t flow = 0;
  TraceKind kind = TraceKind::FlowCreate;
};

class TraceRing {
 public:
  /// Capacity is rounded up to a power of two (min 64).
  explicit TraceRing(size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void record(TraceKind kind, uint32_t flow, double value, uint64_t t_ns) noexcept {
    const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[ticket & mask_];
    // Seqlock-lite: mark the slot invalid, write the payload, then
    // publish ticket+1 (odd-free scheme: 0 means "being written"). A
    // lapped writer racing another writer on the same slot can still
    // mix fields; the reader's double-check catches that case. The
    // payload fields are relaxed atomics — identical codegen to plain
    // stores on x86/ARM, but the concurrent reader is well-defined (and
    // TSan-clean) even mid-overwrite.
    s.seq.store(0, std::memory_order_relaxed);
    s.t_ns.store(t_ns, std::memory_order_relaxed);
    s.value.store(value, std::memory_order_relaxed);
    s.flow.store(flow, std::memory_order_relaxed);
    s.kind.store(static_cast<uint16_t>(kind), std::memory_order_relaxed);
    s.seq.store(ticket + 1, std::memory_order_release);
  }

  /// Copies valid events, oldest first. Events overwritten or mid-write
  /// during the scan are skipped.
  std::vector<TraceEvent> dump() const;

  size_t capacity() const noexcept { return mask_ + 1; }
  /// Total events ever recorded (may exceed capacity).
  uint64_t recorded() const noexcept { return head_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = empty/being-written, else ticket+1
    std::atomic<uint64_t> t_ns{0};
    std::atomic<double> value{0.0};
    std::atomic<uint32_t> flow{0};
    std::atomic<uint16_t> kind{0};
  };

  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};
};

/// Global ring, or nullptr when tracing is off. The pointer itself is a
/// relaxed atomic load, so the disabled cost is one load + branch.
TraceRing* trace_ring() noexcept;

/// Installs a global ring of the given capacity (replacing any previous
/// one). Not safe to call while writers are mid-record; intended for
/// startup / test setup.
void enable_trace(size_t capacity);
void disable_trace();

}  // namespace ccp::telemetry
