// Snapshot serializers: one-object JSON and Prometheus text exposition.
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "telemetry/metrics.hpp"

namespace ccp::telemetry {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<size_t>(n) < sizeof(buf) ? static_cast<size_t>(n) : sizeof(buf) - 1);
}

}  // namespace

std::string Snapshot::to_json() const {
  std::string out;
  out.reserve(4096);
  appendf(out, "{\"wall_ns\":%" PRIu64 ",\"counters\":{", wall_ns);
  for (size_t i = 0; i < counters.size(); ++i) {
    appendf(out, "%s\"%s\":%" PRIu64, i ? "," : "", counters[i].name.c_str(),
            counters[i].value);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    appendf(out, "%s\"%s\":%" PRId64, i ? "," : "", gauges[i].name.c_str(),
            gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSample& h = histograms[i];
    appendf(out, "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                 ",\"p50\":%.1f,\"p90\":%.1f,\"p99\":%.1f,\"p999\":%.1f,"
                 "\"max\":%.1f,\"buckets\":[",
            i ? "," : "", h.name.c_str(), h.count, h.sum, h.quantile(0.5),
            h.quantile(0.9), h.quantile(0.99), h.quantile(0.999), h.max());
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      appendf(out, "%s[%" PRIu64 ",%" PRIu64 "]", b ? "," : "",
              h.buckets[b].upper, h.buckets[b].count);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string Snapshot::to_prometheus() const {
  std::string out;
  out.reserve(4096);
  for (const CounterSample& c : counters) {
    appendf(out, "# TYPE %s counter\n%s %" PRIu64 "\n", c.name.c_str(),
            c.name.c_str(), c.value);
  }
  for (const GaugeSample& g : gauges) {
    appendf(out, "# TYPE %s gauge\n%s %" PRId64 "\n", g.name.c_str(),
            g.name.c_str(), g.value);
  }
  for (const HistogramSample& h : histograms) {
    appendf(out, "# TYPE %s histogram\n", h.name.c_str());
    uint64_t cum = 0;
    for (const HistogramBucket& b : h.buckets) {
      cum += b.count;
      appendf(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
              h.name.c_str(), b.upper, cum);
    }
    appendf(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", h.name.c_str(), h.count);
    appendf(out, "%s_sum %" PRIu64 "\n", h.name.c_str(), h.sum);
    appendf(out, "%s_count %" PRIu64 "\n", h.name.c_str(), h.count);
  }
  return out;
}

}  // namespace ccp::telemetry
