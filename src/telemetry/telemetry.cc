#include "telemetry/telemetry.hpp"

#include <cstdlib>
#include <cstring>

namespace ccp::telemetry {

Metrics::Metrics() {
  MetricsRegistry& r = MetricsRegistry::global();
  r.add("ccp_dp_acks_total", &dp_acks);
  r.add("ccp_dp_report_batches_total", &dp_report_batches);
  r.add("ccp_dp_loss_events_total", &dp_loss_events);
  r.add("ccp_dp_timeouts_total", &dp_timeouts);
  r.add("ccp_dp_reports_total", &dp_reports);
  r.add("ccp_dp_urgents_total", &dp_urgents);
  r.add("ccp_dp_installs_total", &dp_installs);
  r.add("ccp_dp_install_errors_total", &dp_install_errors);
  r.add("ccp_dp_decode_errors_total", &dp_decode_errors);
  r.add("ccp_dp_frames_sent_total", &dp_frames_sent);
  r.add("ccp_dp_frames_received_total", &dp_frames_received);
  r.add("ccp_dp_fallbacks_total", &dp_fallbacks);
  r.add("ccp_dp_fallback_recoveries_total", &dp_fallback_recoveries);
  r.add("ccp_dp_resync_flows_total", &dp_resync_flows);
  r.add("ccp_flows_created_total", &flows_created);
  r.add("ccp_flows_closed_total", &flows_closed);
  r.add("ccp_dp_flow_creates_total", &dp_flow_creates);
  r.add("ccp_dp_flow_closes_total", &dp_flow_closes);
  r.add("ccp_dp_flow_rehash_steps_total", &dp_flow_rehash_steps);

  r.add("ccp_dp_batch_lanes_sum", &dp_batch_lanes_sum);
  r.add("ccp_dp_batch_lanes_total", &dp_batch_waves);
  r.add("ccp_dp_batch_simd_lanes_total", &dp_batch_simd_lanes);
  r.add("ccp_dp_batch_scalar_lanes_total", &dp_batch_scalar_lanes);

  r.add("ccp_ipc_ring_full_total", &ipc_ring_full);
  r.add("ccp_ipc_send_failures_total", &ipc_send_failures);

  r.add("ccp_fault_drops_total", &fault_drops);
  r.add("ccp_fault_corruptions_total", &fault_corruptions);
  r.add("ccp_fault_delays_total", &fault_delays);
  r.add("ccp_fault_stalls_total", &fault_stalls);
  r.add("ccp_fault_kills_total", &fault_kills);
  r.add("ccp_fault_forced_full_total", &fault_forced_full);

  r.add("ccp_sup_disconnects_total", &sup_disconnects);
  r.add("ccp_sup_reconnect_attempts_total", &sup_reconnect_attempts);
  r.add("ccp_sup_reconnects_total", &sup_reconnects);
  r.add("ccp_sup_resyncs_total", &sup_resyncs);

  r.add("ccp_agent_measurements_total", &agent_measurements);
  r.add("ccp_agent_urgents_total", &agent_urgents);
  r.add("ccp_agent_installs_total", &agent_installs);
  r.add("ccp_agent_decode_errors_total", &agent_decode_errors);
  r.add("ccp_agent_unknown_flow_total", &agent_unknown_flow);
  r.add("ccp_agent_flows_resynced_total", &agent_flows_resynced);

  r.add("ccp_jit_compiles_total", &jit_compiles);
  r.add("ccp_jit_fallbacks_total", &jit_fallbacks);
  r.add("ccp_jit_verify_mismatches_total", &jit_verify_mismatches);
  r.add("ccp_lang_cache_evictions_total", &lang_cache_evictions);

  r.add("ccp_active_flows", &active_flows);
  r.add("ccp_dp_flows", &dp_flows);
  r.add("ccp_dp_table_load_factor", &dp_table_load_factor);
  r.add("ccp_ipc_ring_used_bytes", &ipc_ring_used_bytes);
  r.add("ccp_flows_in_fallback", &flows_in_fallback);
  r.add("ccp_jit_code_bytes", &jit_code_bytes);
  r.add("ccp_lang_cache_programs", &lang_cache_programs);

  for (size_t i = 0; i < kMaxShards; ++i) {
    const std::string prefix = "ccp_shard" + std::to_string(i) + "_";
    r.add(prefix + "acks_total", &shard[i].acks);
    r.add(prefix + "reports_total", &shard[i].reports);
    r.add(prefix + "urgents_total", &shard[i].urgents);
    r.add(prefix + "ring_full_total", &shard[i].ring_full);
    r.add(prefix + "commands_total", &shard[i].commands);
    r.add(prefix + "flows", &shard[i].flows);
  }

  r.add("ccp_report_latency_ns", &report_latency_ns);
  r.add("ccp_urgent_latency_ns", &urgent_latency_ns);
  r.add("ccp_install_rtt_ns", &install_rtt_ns);
  r.add("ccp_install_apply_ns", &install_apply_ns);
  r.add("ccp_agent_measurement_handler_ns", &agent_measurement_handler_ns);
  r.add("ccp_agent_urgent_handler_ns", &agent_urgent_handler_ns);
  r.add("ccp_vm_exec_ns", &vm_exec_ns);
  r.add("ccp_jit_compile_ns", &jit_compile_ns);
  r.add("ccp_jit_exec_ns", &jit_exec_ns);
  r.add("ccp_ipc_drain_batch", &ipc_drain_batch);
  r.add("ccp_dp_flush_batch", &dp_flush_batch);
  r.add("ccp_fallback_recovery_ns", &fallback_recovery_ns);

  r.add("ccp_loop_emit_to_agent_ns", &loop_emit_to_agent_ns);
  r.add("ccp_loop_agent_handler_ns", &loop_agent_handler_ns);
  r.add("ccp_loop_agent_to_enqueue_ns", &loop_agent_to_enqueue_ns);
  r.add("ccp_loop_enqueue_to_apply_ns", &loop_enqueue_to_apply_ns);
  r.add("ccp_loop_total_ns", &loop_total_ns);

  for (size_t i = 0; i < kProfStages; ++i) {
    const std::string stage = prof_stage_name(static_cast<ProfStage>(i));
    r.add("ccp_prof_" + stage + "_cycles_total", &prof_cycles[i]);
    r.add("ccp_prof_" + stage + "_samples_total", &prof_samples[i]);
  }
}

Metrics::~Metrics() = default;

Metrics& metrics() {
  // Leaked on purpose: metrics outlive every thread that might still be
  // incrementing them during shutdown.
  static Metrics* m = new Metrics();
  return *m;
}

void init_from_env() {
  if (const char* v = std::getenv("CCP_TELEMETRY")) {
    if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
        std::strcmp(v, "false") == 0) {
      set_enabled(false);
    } else {
      set_enabled(true);
    }
  }
  if (const char* v = std::getenv("CCP_TRACE_BUF")) {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) enable_trace(static_cast<size_t>(n));
  }
  if (const char* v = std::getenv("CCP_SPAN_BUF")) {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) enable_spans(static_cast<size_t>(n));
  }
  if (const char* v = std::getenv("CCP_PROFILE_SAMPLE")) {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) set_profile_sample(static_cast<uint32_t>(n));
  }
  // Touch the registry so exporters see every metric even before the
  // first event fires.
  (void)metrics();
}

}  // namespace ccp::telemetry
