// Trace Event Format export: turns the trace ring and completed
// control-loop spans into JSON that Perfetto and chrome://tracing load
// directly (the Chromium "Trace Event Format", a {"traceEvents": [...]}
// object of "X"/"i"/"M" events with microsecond timestamps).
//
// Two consumption paths share this code:
//   - tools/ccp_trace_export --socket <path>: pulls the live rings from
//     a running process via the stats server.
//   - ccp_sim --trace-dump <file> writes a small binary dump at exit;
//     ccp_trace_export <file> converts it offline. The dump makes CI
//     smoke runs deterministic — no racing a live socket.
#pragma once

#include <string>
#include <vector>

#include "telemetry/spans.hpp"
#include "telemetry/trace_ring.hpp"

namespace ccp::telemetry {

/// Renders trace events + completed spans as a Trace Event Format JSON
/// document. Span stages become nested "X" (complete) events on a
/// per-flow track; trace-ring events become "i" (instant) events.
/// Always returns a valid JSON object, even for empty inputs.
std::string trace_events_json(const std::vector<TraceEvent>& events,
                              const std::vector<CompletedSpan>& spans);

/// Binary dump I/O (little-endian, magic "CCPT", versioned). Returns
/// false on I/O failure; read_trace_dump also fails on a bad header.
bool write_trace_dump(const std::string& path,
                      const std::vector<TraceEvent>& events,
                      const std::vector<CompletedSpan>& spans);
bool read_trace_dump(const std::string& path, std::vector<TraceEvent>& events,
                     std::vector<CompletedSpan>& spans);

/// Dumps whatever the global trace/span rings currently hold (either may
/// be disabled; the dump then carries an empty section).
bool write_current_trace_dump(const std::string& path);

}  // namespace ccp::telemetry
