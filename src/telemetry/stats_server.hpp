// Out-of-process stats access: a tiny request/response server that any
// CCP process (agent, datapath, ccp_sim, examples) can run on a unix
// seqpacket socket, and the matching client used by tools/ccp_stats.
//
// Protocol (binary, via ipc::Encoder/Decoder; one request datagram, one
// or more reply datagrams):
//   request  := u8 kind            (1 = snapshot, 2 = trace dump,
//                                   3 = completed-span dump)
//   snapshot reply := u64 wall_ns
//                     u32 n_counters  (name:str u64 value)*
//                     u32 n_gauges    (name:str u64 value-as-bits)*
//                     u32 n_hists     (name:str u64 count u64 sum
//                                      u32 n_buckets (u64 upper u64 count)*)*
//   trace reply    := u32 n_events (u64 t_ns f64 value u32 flow u16 kind)*
//                     ... repeated, terminated by a reply with n_events=0.
//                     Chunked so each datagram stays well under seqpacket
//                     message-size limits.
//   spans reply    := u32 n_spans (u64 span_id u64 emit u64 agent_recv
//                     u64 agent_send u64 enqueue u64 apply u32 flow
//                     u8 command)* ... chunked + zero-terminated like the
//                     trace reply.
//
// The server thread owns its listener and polls with a short timeout so
// stop() is prompt. It serves whatever MetricsRegistry::global() and the
// global trace ring currently hold — no coupling to datapath internals.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/spans.hpp"
#include "telemetry/trace_ring.hpp"

namespace ccp::ipc {
class Encoder;
class Decoder;
}  // namespace ccp::ipc

namespace ccp::telemetry {

inline constexpr uint8_t kStatsReqSnapshot = 1;
inline constexpr uint8_t kStatsReqTrace = 2;
inline constexpr uint8_t kStatsReqSpans = 3;

/// Serializes `snap` into `enc` (reply payload only).
void encode_snapshot(ipc::Encoder& enc, const Snapshot& snap);
/// Parses a snapshot reply produced by encode_snapshot().
Snapshot decode_snapshot(ipc::Decoder& dec);

class StatsServer {
 public:
  /// Binds `socket_path` and starts the serving thread. Throws
  /// std::runtime_error if the socket cannot be bound.
  explicit StatsServer(std::string socket_path);
  ~StatsServer();
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  const std::string& path() const { return path_; }
  void stop();

 private:
  void run();

  std::string path_;
  std::atomic<bool> stop_{false};
  std::unique_ptr<class StatsServerImpl> impl_;
  std::thread thread_;
};

/// Blocking client for the protocol above (used by tools/ccp_stats and
/// tests). Connects once; each call is one request/response exchange.
class StatsClient {
 public:
  /// Returns nullptr if nobody is listening at `socket_path`.
  static std::unique_ptr<StatsClient> connect(const std::string& socket_path);
  ~StatsClient();

  /// One snapshot round-trip; nullopt on timeout/disconnect.
  std::optional<Snapshot> snapshot();
  /// Full trace-ring dump; nullopt on timeout/disconnect (an enabled but
  /// empty ring yields an empty vector).
  std::optional<std::vector<TraceEvent>> trace();
  /// Full completed-span dump; same contract as trace().
  std::optional<std::vector<CompletedSpan>> spans();

 private:
  explicit StatsClient(std::unique_ptr<class StatsClientImpl> impl);
  std::unique_ptr<class StatsClientImpl> impl_;
};

}  // namespace ccp::telemetry
