#include "telemetry/spans.hpp"

#include <algorithm>
#include <bit>

#include "telemetry/telemetry.hpp"

namespace ccp::telemetry {

namespace {
std::atomic<uint64_t> g_next_span_id{1};
std::atomic<SpanRing*> g_spans{nullptr};
std::unique_ptr<SpanRing> g_spans_storage;

// Stage recording guards against missing stamps (a hop that never ran)
// and clock oddities; a span with holes contributes only the stages it
// actually measured. A genuine zero-length stage still records.
inline void record_stage(Histogram& h, uint64_t from, uint64_t to) noexcept {
  if (from != 0 && to >= from) h.record(to - from);
}
}  // namespace

uint64_t next_span_id() noexcept {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

const char* span_command_name(SpanCommand c) noexcept {
  switch (c) {
    case SpanCommand::Install: return "install";
    case SpanCommand::UpdateFields: return "update_fields";
    case SpanCommand::DirectControl: return "direct_control";
  }
  return "unknown";
}

SpanRing::SpanRing(size_t capacity) {
  size_t cap = std::max<size_t>(capacity, 64);
  cap = std::bit_ceil(cap);
  mask_ = cap - 1;
  slots_ = std::make_unique<Slot[]>(cap);
}

std::vector<CompletedSpan> SpanRing::dump() const {
  const size_t cap = capacity();
  std::vector<CompletedSpan> out;
  out.reserve(cap);
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t first = head > cap ? head - cap : 0;
  for (uint64_t t = first; t < head; ++t) {
    const Slot& s = slots_[t & mask_];
    const uint64_t seq_before = s.seq.load(std::memory_order_acquire);
    if (seq_before != t + 1) continue;  // overwritten or mid-write
    CompletedSpan sp;
    sp.span_id = s.span_id.load(std::memory_order_relaxed);
    sp.emit_ns = s.emit_ns.load(std::memory_order_relaxed);
    sp.agent_recv_ns = s.agent_recv_ns.load(std::memory_order_relaxed);
    sp.agent_send_ns = s.agent_send_ns.load(std::memory_order_relaxed);
    sp.enqueue_ns = s.enqueue_ns.load(std::memory_order_relaxed);
    sp.apply_ns = s.apply_ns.load(std::memory_order_relaxed);
    sp.flow = s.flow.load(std::memory_order_relaxed);
    sp.command = static_cast<SpanCommand>(s.command.load(std::memory_order_relaxed));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != t + 1) continue;  // torn
    out.push_back(sp);
  }
  return out;
}

SpanRing* span_ring() noexcept {
  return g_spans.load(std::memory_order_relaxed);
}

void enable_spans(size_t capacity) {
  g_spans.store(nullptr, std::memory_order_release);
  g_spans_storage = std::make_unique<SpanRing>(capacity);
  g_spans.store(g_spans_storage.get(), std::memory_order_release);
}

void disable_spans() {
  g_spans.store(nullptr, std::memory_order_release);
  g_spans_storage.reset();
}

void close_span(const SpanStamp& stamp, uint64_t enqueue_ns, uint64_t apply_ns,
                uint32_t flow, SpanCommand cmd) noexcept {
  if (stamp.span_id == 0) return;
  Metrics& m = metrics();
  // The stages telescope out of five clock reads along the loop, so
  // total == sum(stages) exactly whenever every hop stamped.
  record_stage(m.loop_emit_to_agent_ns, stamp.emit_ns, stamp.agent_recv_ns);
  record_stage(m.loop_agent_handler_ns, stamp.agent_recv_ns, stamp.agent_send_ns);
  record_stage(m.loop_agent_to_enqueue_ns, stamp.agent_send_ns, enqueue_ns);
  record_stage(m.loop_enqueue_to_apply_ns, enqueue_ns, apply_ns);
  record_stage(m.loop_total_ns, stamp.emit_ns, apply_ns);
  if (SpanRing* ring = span_ring()) {
    CompletedSpan sp;
    sp.span_id = stamp.span_id;
    sp.emit_ns = stamp.emit_ns;
    sp.agent_recv_ns = stamp.agent_recv_ns;
    sp.agent_send_ns = stamp.agent_send_ns;
    sp.enqueue_ns = enqueue_ns;
    sp.apply_ns = apply_ns;
    sp.flow = flow;
    sp.command = cmd;
    ring->record(sp);
  }
}

}  // namespace ccp::telemetry
