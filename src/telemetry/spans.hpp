// Control-loop span tracing: the full report -> decide -> install ->
// apply round trip as one causally-linked span.
//
// The datapath stamps each measurement report with a monotonically
// sequenced span id; the id (plus the timestamps accumulated so far)
// rides the IPC wire format through the agent handler and onto any
// resulting Install/UpdateFields/DirectControl command, and the span
// closes where that command takes effect — synchronously in the
// single-core datapath, or at the shard's quiescent-point apply in the
// sharded one. Closing a span feeds the five ccp_loop_*_ns stage
// histograms and (when enabled) appends a CompletedSpan to a lock-free
// ring that tools/ccp_trace_export turns into Perfetto-loadable JSON.
//
// Cost model: span ids are allocated per *report* (per-RTT cadence, not
// per ACK), the stamp travels by value inside messages that already
// exist, and close_span() runs at command-apply time — all of it off
// the per-ACK hot path. Ids are only allocated while span recording is
// active (spans_active()): with recording off every stamp stays zero
// and the whole layer — id allocation, hop stamping, the close-time
// loop-stage histograms, the ring — is a no-op, so span tracing bills
// to the flight-recorder tier it belongs to, not to baseline telemetry.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ccp::telemetry {

/// The span context carried on the wire. A zero span_id means "no span
/// attached" (telemetry off, or a sender predating the field — decoders
/// default it to zero). Timestamps are telemetry::now_ns() values; each
/// hop fills in its own and forwards the rest untouched.
struct SpanStamp {
  uint64_t span_id = 0;        // 0 = no span
  uint64_t emit_ns = 0;        // datapath: report/urgent emitted
  uint64_t agent_recv_ns = 0;  // agent: handler entry
  uint64_t agent_send_ns = 0;  // agent: command handed to the transport
};

/// Allocates the next span id (process-global, starts at 1, one relaxed
/// fetch_add). Called once per emitted report when telemetry is on.
uint64_t next_span_id() noexcept;

/// Which command closed the span (exporter track naming).
enum class SpanCommand : uint8_t { Install = 1, UpdateFields = 2, DirectControl = 3 };

const char* span_command_name(SpanCommand c) noexcept;

/// One closed control-loop round trip.
struct CompletedSpan {
  uint64_t span_id = 0;
  uint64_t emit_ns = 0;
  uint64_t agent_recv_ns = 0;
  uint64_t agent_send_ns = 0;
  uint64_t enqueue_ns = 0;  // datapath decoded the command / control plane
                            // pushed it onto the shard's queue
  uint64_t apply_ns = 0;    // command took effect on the flow
  uint32_t flow = 0;
  SpanCommand command = SpanCommand::DirectControl;
};

/// Lock-free ring of completed spans, same seqlock-lite scheme as
/// TraceRing (trace_ring.hpp): one fetch_add ticket, payload as relaxed
/// atomics, seq published last so readers can detect torn slots.
class SpanRing {
 public:
  /// Capacity is rounded up to a power of two (min 64).
  explicit SpanRing(size_t capacity);

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  void record(const CompletedSpan& sp) noexcept {
    const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[ticket & mask_];
    s.seq.store(0, std::memory_order_relaxed);
    s.span_id.store(sp.span_id, std::memory_order_relaxed);
    s.emit_ns.store(sp.emit_ns, std::memory_order_relaxed);
    s.agent_recv_ns.store(sp.agent_recv_ns, std::memory_order_relaxed);
    s.agent_send_ns.store(sp.agent_send_ns, std::memory_order_relaxed);
    s.enqueue_ns.store(sp.enqueue_ns, std::memory_order_relaxed);
    s.apply_ns.store(sp.apply_ns, std::memory_order_relaxed);
    s.flow.store(sp.flow, std::memory_order_relaxed);
    s.command.store(static_cast<uint8_t>(sp.command), std::memory_order_relaxed);
    s.seq.store(ticket + 1, std::memory_order_release);
  }

  /// Copies valid spans, oldest first; slots overwritten or mid-write
  /// during the scan are skipped (same contract as TraceRing::dump).
  std::vector<CompletedSpan> dump() const;

  size_t capacity() const noexcept { return mask_ + 1; }
  uint64_t recorded() const noexcept { return head_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = empty/being-written, else ticket+1
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> emit_ns{0};
    std::atomic<uint64_t> agent_recv_ns{0};
    std::atomic<uint64_t> agent_send_ns{0};
    std::atomic<uint64_t> enqueue_ns{0};
    std::atomic<uint64_t> apply_ns{0};
    std::atomic<uint32_t> flow{0};
    std::atomic<uint8_t> command{0};
  };

  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};
};

/// Global span ring, or nullptr when off (one relaxed load).
SpanRing* span_ring() noexcept;

/// True while span recording is enabled. Span-id allocation keys off
/// this: emitters attach ids (and hops pay their clock reads) only
/// while someone is actually recording the loop.
inline bool spans_active() noexcept { return span_ring() != nullptr; }

/// Installs / removes the global ring. Startup / test setup only, like
/// enable_trace(); CCP_SPAN_BUF=<n> does it from init_from_env().
void enable_spans(size_t capacity);
void disable_spans();

/// Closes a span: records the five ccp_loop_*_ns stage histograms and
/// appends to the span ring when one is enabled. A zero span_id is a
/// cheap no-op, so call sites don't need their own guard. Stages whose
/// endpoints are missing (a hop didn't stamp) are skipped rather than
/// recorded as garbage.
void close_span(const SpanStamp& stamp, uint64_t enqueue_ns, uint64_t apply_ns,
                uint32_t flow, SpanCommand cmd) noexcept;

}  // namespace ccp::telemetry
