#include "telemetry/metrics.hpp"

#include <algorithm>

#include "telemetry/histogram.hpp"
#include "telemetry/telemetry.hpp"

namespace ccp::telemetry {

namespace detail {

ThreadSlot thread_slot() noexcept {
  static std::atomic<uint32_t> next{0};
  // Slots are never recycled: a thread that exits retires its cell (the
  // residual count stays, which is exactly what a monotonic counter
  // wants). Once kCounterShards threads have claimed cells, later
  // threads share the overflow cell with an atomic RMW.
  thread_local const ThreadSlot slot = [] {
    const uint32_t n = next.fetch_add(1, std::memory_order_relaxed);
    if (n < kCounterShards) return ThreadSlot{n, /*exclusive=*/true};
    return ThreadSlot{static_cast<uint32_t>(kCounterShards), /*exclusive=*/false};
  }();
  return slot;
}

}  // namespace detail

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // leaked: outlives all threads
  return *reg;
}

void MetricsRegistry::add(std::string name, const Counter* c) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.emplace_back(std::move(name), c);
}

void MetricsRegistry::add(std::string name, const Gauge* g) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_.emplace_back(std::move(name), g);
}

void MetricsRegistry::add(std::string name, const Histogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_.emplace_back(std::move(name), h);
}

void MetricsRegistry::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto drop = [&name](auto& vec) {
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [&name](const auto& p) { return p.first == name; }),
              vec.end());
  };
  drop(counters_);
  drop(gauges_);
  drop(histograms_);
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  snap.wall_ns = now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back(CounterSample{name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back(GaugeSample{name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    h->collect(s);
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

const CounterSample* Snapshot::counter(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSample* Snapshot::gauge(const std::string& name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSample* Snapshot::histogram(const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

}  // namespace ccp::telemetry
