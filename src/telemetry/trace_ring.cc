#include "telemetry/trace_ring.hpp"

#include <algorithm>
#include <bit>

namespace ccp::telemetry {

const char* trace_kind_name(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::FlowCreate: return "flow_create";
    case TraceKind::FlowClose: return "flow_close";
    case TraceKind::InstallSent: return "install_sent";
    case TraceKind::InstallApplied: return "install_applied";
    case TraceKind::Report: return "report";
    case TraceKind::Urgent: return "urgent";
    case TraceKind::SetCwnd: return "set_cwnd";
    case TraceKind::SetRate: return "set_rate";
    case TraceKind::Fallback: return "fallback";
    case TraceKind::Measurement: return "measurement";
    case TraceKind::FallbackExit: return "fallback_exit";
    case TraceKind::Resync: return "resync";
    case TraceKind::JitCompile: return "jit_compile";
  }
  return "unknown";
}

TraceRing::TraceRing(size_t capacity) {
  size_t cap = std::max<size_t>(capacity, 64);
  cap = std::bit_ceil(cap);
  mask_ = cap - 1;
  slots_ = std::make_unique<Slot[]>(cap);
}

std::vector<TraceEvent> TraceRing::dump() const {
  const size_t cap = capacity();
  std::vector<TraceEvent> out;
  out.reserve(cap);
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t first = head > cap ? head - cap : 0;
  for (uint64_t t = first; t < head; ++t) {
    const Slot& s = slots_[t & mask_];
    const uint64_t seq_before = s.seq.load(std::memory_order_acquire);
    if (seq_before != t + 1) continue;  // overwritten or mid-write
    TraceEvent ev;
    ev.t_ns = s.t_ns.load(std::memory_order_relaxed);
    ev.value = s.value.load(std::memory_order_relaxed);
    ev.flow = s.flow.load(std::memory_order_relaxed);
    ev.kind = static_cast<TraceKind>(s.kind.load(std::memory_order_relaxed));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != t + 1) continue;  // torn
    out.push_back(ev);
  }
  return out;
}

namespace {
std::atomic<TraceRing*> g_trace{nullptr};
std::unique_ptr<TraceRing> g_trace_storage;
}  // namespace

TraceRing* trace_ring() noexcept {
  return g_trace.load(std::memory_order_relaxed);
}

void enable_trace(size_t capacity) {
  g_trace.store(nullptr, std::memory_order_release);
  g_trace_storage = std::make_unique<TraceRing>(capacity);
  g_trace.store(g_trace_storage.get(), std::memory_order_release);
}

void disable_trace() {
  g_trace.store(nullptr, std::memory_order_release);
  g_trace_storage.reset();
}

}  // namespace ccp::telemetry
