#include "telemetry/profiler.hpp"

#include <bit>

#include "telemetry/telemetry.hpp"

namespace ccp::telemetry {

const char* prof_stage_name(ProfStage s) noexcept {
  switch (s) {
    case ProfStage::Decode: return "decode";
    case ProfStage::Measure: return "measure";
    case ProfStage::FoldInterp: return "fold_interp";
    case ProfStage::FoldJit: return "fold_jit";
    case ProfStage::Watchdog: return "watchdog";
    case ProfStage::ReportEmit: return "report_emit";
    case ProfStage::FoldBatch: return "fold_batch";
  }
  return "unknown";
}

void set_profile_sample(uint32_t n) noexcept {
  if (n == 0) {
    detail::g_prof_mask.store(0, std::memory_order_relaxed);
    return;
  }
  const uint32_t pow2 = std::bit_ceil(n < 2 ? 2u : n);
  detail::g_prof_mask.store(pow2 - 1, std::memory_order_relaxed);
}

uint32_t profile_sample_n() noexcept {
  const uint32_t mask = profile_sample_mask();
  return mask == 0 ? 0 : mask + 1;
}

void prof_record(ProfStage stage, uint64_t cycles) noexcept {
  Metrics& m = metrics();
  const size_t i = static_cast<size_t>(stage);
  m.prof_cycles[i].inc(cycles);
  m.prof_samples[i].inc();
}

void prof_commit(const ProfSample& ps, bool jit) noexcept {
  // Deltas, guarded against a stamp that never happened (stays 0) so a
  // partially-filled sample can't poison the accumulators with a
  // wrapped subtraction.
  if (ps.measure >= ps.entry && ps.entry != 0)
    prof_record(ProfStage::Measure, ps.measure - ps.entry);
  if (ps.watchdog >= ps.measure && ps.measure != 0)
    prof_record(ProfStage::Watchdog, ps.watchdog - ps.measure);
  if (ps.fold >= ps.watchdog && ps.watchdog != 0)
    prof_record(jit ? ProfStage::FoldJit : ProfStage::FoldInterp,
                ps.fold - ps.watchdog);
  if (ps.done >= ps.fold && ps.fold != 0)
    prof_record(ProfStage::ReportEmit, ps.done - ps.fold);
}

}  // namespace ccp::telemetry
