// Zero-allocation runtime counters and gauges, and the global registry
// that exports them.
//
// Counters are sharded across cache-line-padded cells so concurrent
// writers (datapath thread, agent thread, transport pump) never bounce a
// line between cores. The first kCounterShards threads each get a cell of
// their own and update it with a plain relaxed load+store (single-writer,
// ~1 ns); later threads share an overflow cell via fetch_add. Reads sum
// all cells, so value() is monotonic and exact.
//
// Everything here is compiled in unconditionally; the hot-path call
// sites gate on telemetry::enabled() (one relaxed load + a predictable
// branch). Recording never allocates — the contract
// tests/hotpath_alloc_test.cc enforces with telemetry switched on.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ccp::telemetry {

inline constexpr size_t kCounterShards = 16;

namespace detail {

struct ThreadSlot {
  uint32_t index;    // cell index in [0, kCounterShards]
  bool exclusive;    // true: this thread owns the cell (load+store is safe)
};

/// Assigns each thread a shard on first use. The assignment is global
/// (one slot per thread, shared by every Counter), so a Counter needs no
/// per-thread bookkeeping of its own.
ThreadSlot thread_slot() noexcept;

}  // namespace detail

/// Monotonic event counter. inc() is wait-free and allocation-free.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(uint64_t n = 1) noexcept {
    const detail::ThreadSlot slot = detail::thread_slot();
    std::atomic<uint64_t>& cell = cells_[slot.index].v;
    if (slot.exclusive) {
      // Single writer for this cell: a relaxed load+store beats the
      // locked RMW by an order of magnitude and loses no updates.
      cell.store(cell.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
    } else {
      cell.fetch_add(n, std::memory_order_relaxed);
    }
  }

  uint64_t value() const noexcept {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  /// Test/bench helper; not safe against concurrent inc() from exclusive
  /// owners (their next store may resurrect a pre-reset value).
  void reset() noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kCounterShards + 1];  // last cell: shared overflow (fetch_add)
};

/// Signed instantaneous value (e.g. active flow count).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(int64_t d) noexcept { v_.fetch_sub(d, std::memory_order_relaxed); }
  int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<int64_t> v_{0};
};

class Histogram;  // histogram.hpp

// --- snapshot types (produced by MetricsRegistry::snapshot()) ---

struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  int64_t value = 0;
};

struct HistogramBucket {
  uint64_t upper = 0;  // inclusive upper bound of the bucket, in record units
  uint64_t count = 0;
};

struct HistogramSample {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;                       // sum of recorded values
  std::vector<HistogramBucket> buckets;   // non-empty buckets, ascending

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Quantile estimate (q in [0,1]); resolves to a bucket and
  /// interpolates within it, so the error is bounded by the bucket width
  /// (<= 1/Histogram::kSubBuckets, i.e. 3.125%).
  double quantile(double q) const;
  double max() const { return buckets.empty() ? 0.0 : static_cast<double>(buckets.back().upper); }
};

/// A point-in-time copy of every registered metric. Safe to serialize,
/// diff, or ship across a socket while recording continues.
struct Snapshot {
  uint64_t wall_ns = 0;  // monotonic clock at snapshot time
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* counter(const std::string& name) const;
  const GaugeSample* gauge(const std::string& name) const;
  const HistogramSample* histogram(const std::string& name) const;

  /// One JSON object: {"wall_ns":..,"counters":{..},"gauges":{..},
  /// "histograms":{name:{count,sum,p50,p90,p99,max,buckets:[[upper,n]..]}}}.
  std::string to_json() const;
  /// Prometheus text exposition format (counters, gauges, and full
  /// cumulative-bucket histograms).
  std::string to_prometheus() const;
};

/// Name -> metric pointer table. Metrics register at construction of the
/// global Metrics struct (telemetry.hpp); tests may build private
/// registries. Registration is mutex-protected (cold path); snapshot()
/// reads live metrics with relaxed loads only.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  void add(std::string name, const Counter* c);
  void add(std::string name, const Gauge* g);
  void add(std::string name, const Histogram* h);
  /// Removes a metric by name (for tests registering stack-local metrics).
  void remove(const std::string& name);

  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, const Counter*>> counters_;
  std::vector<std::pair<std::string, const Gauge*>> gauges_;
  std::vector<std::pair<std::string, const Histogram*>> histograms_;
};

}  // namespace ccp::telemetry
