#include "telemetry/histogram.hpp"

namespace ccp::telemetry {

void Histogram::collect(HistogramSample& out) const {
  out.count = count();
  out.sum = sum();
  out.buckets.clear();
  for (size_t i = 0; i < kBuckets; ++i) {
    const uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n != 0) out.buckets.push_back(HistogramBucket{bucket_upper(i), n});
  }
}

double Histogram::quantile(double q) const {
  HistogramSample s;
  collect(s);
  return s.quantile(q);
}

void Histogram::reset() noexcept {
  for (size_t i = 0; i < kBuckets; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

double HistogramSample::quantile(double q) const {
  if (buckets.empty() || count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Target rank among `count` samples; resolve to the first bucket whose
  // cumulative count covers it.
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (const HistogramBucket& b : buckets) {
    seen += b.count;
    if (seen > target) return static_cast<double>(b.upper);
  }
  return static_cast<double>(buckets.back().upper);
}

}  // namespace ccp::telemetry
