#include "telemetry/histogram.hpp"

#include <algorithm>

namespace ccp::telemetry {

void Histogram::collect(HistogramSample& out) const {
  out.count = count();
  out.sum = sum();
  out.buckets.clear();
  for (size_t i = 0; i < kBuckets; ++i) {
    const uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n != 0) out.buckets.push_back(HistogramBucket{bucket_upper(i), n});
  }
}

double Histogram::quantile(double q) const {
  HistogramSample s;
  collect(s);
  return s.quantile(q);
}

void Histogram::reset() noexcept {
  for (size_t i = 0; i < kBuckets; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

double HistogramSample::quantile(double q) const {
  if (buckets.empty() || count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Target rank among `count` samples; resolve to the first bucket whose
  // cumulative count covers it, then interpolate within the bucket
  // assuming its samples are uniformly spread. Without the interpolation
  // every quantile landing in a bucket snaps to the bucket's inclusive
  // upper bound — which is how report-latency percentiles used to read
  // exactly 65.535 us (the upper of the [61440, 65535] ns bucket).
  const double target = q * static_cast<double>(count - 1);
  uint64_t seen = 0;
  for (const HistogramBucket& b : buckets) {
    if (static_cast<double>(seen + b.count) > target) {
      const uint64_t lower = Histogram::bucket_lower(Histogram::index_of(b.upper));
      const double width = static_cast<double>(b.upper - lower) + 1.0;
      const double frac =
          (target - static_cast<double>(seen) + 1.0) / static_cast<double>(b.count);
      const double v = static_cast<double>(lower) + width * frac;
      // Clamp into the bucket: q=1.0 resolves to exactly the upper bound,
      // and exact (width-1) buckets return their exact value.
      return std::min(v, static_cast<double>(b.upper));
    }
    seen += b.count;
  }
  return static_cast<double>(buckets.back().upper);
}

}  // namespace ccp::telemetry
