// Umbrella header for the runtime telemetry layer.
//
// Call sites do:
//
//   if (telemetry::enabled()) telemetry::metrics().dp_reports.inc();
//
// enabled() is one relaxed atomic load; with telemetry off the whole
// thing is a predictable not-taken branch. Recording never allocates
// (see metrics.hpp / histogram.hpp / trace_ring.hpp), which keeps the
// PR-1 zero-alloc hot-path guarantee intact — tests/hotpath_alloc_test.cc
// runs with telemetry switched on to prove it.
//
// Environment knobs (read by init_from_env):
//   CCP_TELEMETRY=off|0|false   disable recording (default: on)
//   CCP_TRACE_BUF=<n>           enable the control-loop trace ring with
//                               capacity n events (default: off)
//   CCP_SPAN_BUF=<n>            enable the completed-span ring with
//                               capacity n spans (default: off)
//   CCP_PROFILE_SAMPLE=<n>      enable the per-stage cycle profiler at
//                               1-in-n ACK sampling, n rounded up to a
//                               power of two (default: off)
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "telemetry/histogram.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/spans.hpp"
#include "telemetry/trace_ring.hpp"

namespace ccp::telemetry {

namespace detail {
inline std::atomic<bool> g_enabled{true};
}  // namespace detail

inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Reads CCP_TELEMETRY / CCP_TRACE_BUF. Call once near startup (tools and
/// examples do); library code never reads the environment itself.
void init_from_env();

/// Monotonic nanoseconds; the single clock every histogram and trace
/// event in this subsystem uses.
inline uint64_t now_ns() noexcept {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Upper bound on datapath shards with dedicated counter sets. Shards
/// beyond this share the last set (modulo), so nothing breaks — the
/// per-shard breakdown just aliases.
inline constexpr size_t kMaxShards = 16;

/// Per-shard datapath counters, registered as ccp_shard<i>_<name>_total.
/// Each shard's worker thread is the only writer of its set on the hot
/// path (lane ring-full drops are counted by the lane wiring, which also
/// runs on the owning worker), so these are effectively single-writer —
/// the sharded Counter cells make cross-thread reads safe regardless.
struct ShardStats {
  Counter acks;       // ACKs folded on this shard (per report, by delta)
  Counter reports;    // measurement reports emitted by this shard
  Counter urgents;    // urgent events emitted by this shard
  Counter ring_full;  // frames dropped: this shard's IPC lane was full
  Counter commands;   // agent commands applied at quiescent points
  Gauge flows;        // live flows resident in this shard's FlowTable
};

/// Every runtime metric, one member each, registered by name in
/// MetricsRegistry::global() at construction. Access via metrics().
struct Metrics {
  // -- datapath --
  Counter dp_acks;             // ACKs measured (exact; per-flow counted,
                               // drained at report/tick/close)
  Counter dp_report_batches;   // report batches emitted (one per report msg)
  Counter dp_loss_events;      // loss notifications into the fold machine
  Counter dp_timeouts;         // timeout events
  Counter dp_reports;          // measurement reports emitted
  Counter dp_urgents;          // urgent events emitted
  Counter dp_installs;         // programs installed (compile + swap)
  Counter dp_install_errors;   // installs rejected (compile/validate failure)
  Counter dp_decode_errors;    // malformed frames from the agent
  Counter dp_frames_sent;      // frames handed to the transport
  Counter dp_frames_received;  // frames drained from the transport
  Counter dp_fallbacks;        // watchdog fallback-program activations
  Counter dp_fallback_recoveries;  // flows that left fallback (agent back)
  Counter dp_resync_flows;     // flow summaries replayed on agent resync
  Counter flows_created;
  Counter flows_closed;

  // -- flow table (datapath/flow_table.hpp) --
  Counter dp_flow_creates;       // FlowTable creates (fresh + recycled slots)
  Counter dp_flow_closes;        // FlowTable closes (slots parked)
  Counter dp_flow_rehash_steps;  // bounded incremental-rehash migration steps

  // -- cross-flow batch execution (datapath/ack_batch.cc) --
  // Occupancy = lanes_sum / lanes_total waves. simd/scalar split how each
  // lane's fold actually executed: packed batch kernel vs any scalar-lane
  // form (batch-interpreter lane, per-lane fold, peeled full-scalar ACK).
  Counter dp_batch_lanes_sum;     // lanes summed over all batch waves
  Counter dp_batch_waves;         // batch waves executed
  Counter dp_batch_simd_lanes;    // lanes folded by a packed SIMD kernel
  Counter dp_batch_scalar_lanes;  // lanes folded scalar (incl. peeled)

  // -- ipc / transports --
  Counter ipc_ring_full;       // shm ring rejected a frame (backpressure)
  Counter ipc_send_failures;   // socket/inproc send failures

  // -- resilience: fault injection (test/chaos harness activity) --
  Counter fault_drops;         // frames silently dropped by the injector
  Counter fault_corruptions;   // frames bit-flipped by the injector
  Counter fault_delays;        // frames held back by the injector
  Counter fault_stalls;        // receive-side stalls begun
  Counter fault_kills;         // forced transport kills
  Counter fault_forced_full;   // sends rejected by forced ring-full bursts

  // -- resilience: agent supervisor --
  Counter sup_disconnects;     // peer-loss events observed
  Counter sup_reconnect_attempts;  // connect attempts (incl. failures)
  Counter sup_reconnects;      // successful reconnections
  Counter sup_resyncs;         // resync requests issued after reconnect

  // -- agent --
  Counter agent_measurements;  // OnMeasurement invocations
  Counter agent_urgents;       // OnUrgent invocations
  Counter agent_installs;      // Install requests issued
  Counter agent_decode_errors; // malformed frames from the datapath
  Counter agent_unknown_flow;  // messages for flows the agent doesn't know
  Counter agent_flows_resynced;  // flows rebuilt from replayed summaries

  // -- fold-program JIT (src/lang/jit/) --
  Counter jit_compiles;           // fold programs lowered to native code
  Counter jit_fallbacks;          // programs latched onto the interpreter
  Counter jit_verify_mismatches;  // Verify-mode engine divergences (should be 0)

  // -- program cache (lang::compile_text_shared) --
  Counter lang_cache_evictions;   // LRU evictions under algorithm churn

  Gauge active_flows;          // datapath-side live flow count
  Gauge dp_flows;              // flows resident across every FlowTable
  Gauge dp_table_load_factor;  // flow-index load factor, basis points
                               // (live/buckets * 10000; per-process max
                               // across tables when sharded)
  Gauge ipc_ring_used_bytes;   // shm ring occupancy at last send
  Gauge flows_in_fallback;     // flows currently on the safe-mode program
  Gauge jit_code_bytes;        // live JIT code cache size, bytes
  Gauge lang_cache_programs;   // programs resident in the compile cache

  Histogram report_latency_ns;           // report emit -> OnMeasurement
  Histogram urgent_latency_ns;           // urgent emit -> OnUrgent
  Histogram install_rtt_ns;              // Install sent -> first report under it
  Histogram install_apply_ns;            // datapath compile+swap duration
  Histogram agent_measurement_handler_ns;
  Histogram agent_urgent_handler_ns;
  Histogram vm_exec_ns;                  // sampled 1/1024 eval_block duration
  Histogram jit_compile_ns;              // bytecode -> native lowering duration
  Histogram jit_exec_ns;                 // sampled 1/1024 native fold duration
  Histogram ipc_drain_batch;             // frames per transport drain
  Histogram dp_flush_batch;              // messages per datapath batch flush
  Histogram fallback_recovery_ns;        // fallback entry -> agent recovery

  // -- control-loop spans (spans.hpp): one record per closed span; the
  //    stages telescope, so loop_total == sum of the four stages --
  Histogram loop_emit_to_agent_ns;     // report emit -> agent handler entry
  Histogram loop_agent_handler_ns;     // handler entry -> command sent
  Histogram loop_agent_to_enqueue_ns;  // command sent -> datapath enqueue
  Histogram loop_enqueue_to_apply_ns;  // enqueue -> quiescent-point apply
  Histogram loop_total_ns;             // report emit -> command applied

  // -- per-stage cycle profiler (profiler.hpp); indexed by ProfStage --
  Counter prof_cycles[kProfStages];   // cycles attributed to the stage
  Counter prof_samples[kProfStages];  // sampled observations of the stage

  // -- sharded datapath (per-shard breakdown; aggregate counters above
  //    keep counting too) --
  ShardStats shard[kMaxShards];

  Metrics();
  ~Metrics();
};

/// The global metric set (function-local static; first call registers).
Metrics& metrics();

/// The counter set for shard `index` (modulo kMaxShards).
inline ShardStats& shard_stats(size_t index) {
  return metrics().shard[index % kMaxShards];
}

/// Records a control-loop trace event iff the trace ring is enabled.
inline void trace(TraceKind kind, uint32_t flow, double value) noexcept {
  if (TraceRing* ring = trace_ring()) {
    ring->record(kind, flow, value, now_ns());
  }
}

/// Closes `stamp`'s span with apply time = now. The guard lives here so
/// command-apply sites don't pay the clock read when no span is
/// attached (span ids are only allocated while spans_active()).
inline void close_span_now(const SpanStamp& stamp, uint64_t enqueue_ns,
                           uint32_t flow, SpanCommand cmd) noexcept {
  if (stamp.span_id != 0) close_span(stamp, enqueue_ns, now_ns(), flow, cmd);
}

}  // namespace ccp::telemetry
