// Register-machine bytecode that the datapath VM executes per ACK.
//
// The compiler lowers each expression tree to a linear sequence of
// three-address instructions over a scratch slot file. This mirrors what
// a real constrained datapath (kernel module, SmartNIC firmware) would
// run: straight-line code, no allocation, no branches except Select.
#pragma once

#include <cstdint>
#include <vector>

#include "lang/ast.hpp"
#include "lang/pkt_fields.hpp"

namespace ccp::lang {

enum class OpCode : uint8_t {
  LoadConst,  // slot[dst] = consts[a]
  LoadFold,   // slot[dst] = fold_state[a]
  LoadPkt,    // slot[dst] = pkt.get(PktField(a))
  LoadVar,    // slot[dst] = vars[a]
  Neg, Not, Sqrt, Abs, Log, Exp, Cbrt,  // slot[dst] = op(slot[a])
  Add, Sub, Mul, Div, Pow, Min, Max,    // slot[dst] = slot[a] op slot[b]
  Lt, Le, Gt, Ge, Eq, Ne, And, Or,      // boolean ops produce 0.0 / 1.0
  Select,     // slot[dst] = slot[a] != 0 ? slot[b] : slot[c]
  Ewma,       // slot[dst] = (1-slot[c])*slot[a] + slot[c]*slot[b]
  StoreFold,  // fold_state[a] = slot[b]

  // --- superinstructions ---
  // Emitted only by the install-time optimizer (optimize_block in
  // compiler.cc), never by BlockBuilder. Const-operand forms fold the
  // ubiquitous LoadConst feeding a binary op into one instruction:
  // `slot[dst] = slot[a] op consts[b]`. This roughly halves the dynamic
  // instruction count of typical fold bodies (every `x + 1`, `win * 0.5`,
  // `rtt > 0` pattern) — the per-ACK interpreter loop is the datapath's
  // hottest code (§2.3).
  AddC, SubC, MulC, DivC, MinC, MaxC,
  LtC, LeC, GtC, GeC, EqC, NeC,
  EwmaC,    // slot[dst] = (1-consts[c])*slot[a] + consts[c]*slot[b]
  SelGtz,   // slot[dst] = slot[a] > 0 ? slot[b] : slot[c]  (fused compare+Select)
};

struct Instr {
  OpCode op;
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  uint16_t c = 0;
};

/// Lane count of the cross-flow batch execution engines (vm.cc's
/// eval_block_batch and the JIT's compile_block_batch). Both address
/// struct-of-arrays matrices where row `r` of a register file occupies
/// doubles [r*kBatchLanes, (r+1)*kBatchLanes): a fixed stride keeps every
/// column offset a compile-time constant in the batch kernels, and 16
/// lanes x 8 bytes = one 128-byte row = two cache lines per register.
inline constexpr size_t kBatchLanes = 16;

/// A compiled expression (or block of expressions): straight-line code
/// plus its constant pool and the slot holding the final value.
struct CodeBlock {
  std::vector<Instr> code;
  std::vector<double> consts;
  uint16_t n_slots = 0;
  uint16_t result_slot = 0;  // meaningful for single-expression blocks
};

}  // namespace ccp::lang
