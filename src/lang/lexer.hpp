// Tokenizer for the datapath program text syntax.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ccp::lang {

enum class TokKind : uint8_t {
  Ident,      // foo, min, fold, control, ... (keywords resolved by parser)
  Number,     // 1, 0.4, 1e6, 0x7fffffff
  Dollar,     // $r  (text carries the name without '$')
  LBrace, RBrace, LParen, RParen,
  Semi, Comma, Dot,
  Assign,     // :=
  Plus, Minus, Star, Slash,
  Lt, Le, Gt, Ge, EqEq, Ne,
  AndAnd, OrOr, Bang,
  End,
};

struct Token {
  TokKind kind;
  std::string text;   // identifier / raw number text
  double number = 0;  // valid when kind == Number
  int line = 1;
  int col = 1;
};

/// Tokenizes the whole input. `//`-comments run to end of line.
/// Throws ProgramError on an unrecognized character or malformed number.
std::vector<Token> tokenize(std::string_view src);

}  // namespace ccp::lang
