#include "lang/parser.hpp"

#include <optional>
#include <unordered_map>

#include "lang/error.hpp"
#include "lang/lexer.hpp"

namespace ccp::lang {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : toks_(tokenize(src)) {}

  Program parse() {
    // Pre-scan fold declarations so expressions anywhere (including the
    // control block and forward references within the fold block) can
    // resolve register names.
    prescan_fold_names();

    bool saw_fold = false;
    bool saw_control = false;
    while (!at(TokKind::End)) {
      const Token& t = expect(TokKind::Ident, "'fold' or 'control'");
      if (t.text == "fold") {
        if (saw_fold) fail(t, "duplicate fold block");
        saw_fold = true;
        parse_fold_block();
      } else if (t.text == "control") {
        if (saw_control) fail(t, "duplicate control block");
        saw_control = true;
        parse_control_block();
      } else {
        fail(t, "expected 'fold' or 'control', got '" + t.text + "'");
      }
    }
    return std::move(prog_);
  }

 private:
  [[noreturn]] void fail(const Token& t, std::string msg) const {
    throw ProgramError(std::move(msg), t.line, t.col);
  }

  const Token& peek() const { return toks_[pos_]; }
  const Token& next() { return toks_[pos_++]; }
  bool at(TokKind k) const { return peek().kind == k; }
  bool at_ident(std::string_view s) const {
    return at(TokKind::Ident) && peek().text == s;
  }
  const Token& expect(TokKind k, const char* what) {
    if (!at(k)) fail(peek(), std::string("expected ") + what);
    return next();
  }

  void prescan_fold_names() {
    // Walk the token stream without consuming it: find the fold block and
    // register every declared name.
    size_t i = 0;
    while (toks_[i].kind != TokKind::End) {
      if (toks_[i].kind == TokKind::Ident && toks_[i].text == "fold" &&
          toks_[i + 1].kind == TokKind::LBrace) {
        size_t j = i + 2;
        while (toks_[j].kind != TokKind::RBrace && toks_[j].kind != TokKind::End) {
          // decl := ['volatile'] NAME ':=' ... ';'
          size_t name_at = j;
          if (toks_[j].kind == TokKind::Ident && toks_[j].text == "volatile") {
            name_at = j + 1;
          }
          if (toks_[name_at].kind == TokKind::Ident &&
              toks_[name_at + 1].kind == TokKind::Assign) {
            const std::string& name = toks_[name_at].text;
            if (fold_names_.count(name) != 0) {
              fail(toks_[name_at], "duplicate fold register '" + name + "'");
            }
            const uint32_t idx = static_cast<uint32_t>(prog_.folds.size());
            fold_names_.emplace(name, idx);
            prog_.folds.push_back(FoldRegister{name, kInvalidExpr, kInvalidExpr,
                                               /*is_volatile=*/false, /*urgent=*/false});
          }
          // Skip to the ';' terminating this declaration.
          while (toks_[j].kind != TokKind::Semi && toks_[j].kind != TokKind::RBrace &&
                 toks_[j].kind != TokKind::End) {
            ++j;
          }
          if (toks_[j].kind == TokKind::Semi) ++j;
        }
        return;  // at most one fold block; parse_fold_block enforces the rest
      }
      ++i;
    }
  }

  void parse_fold_block() {
    expect(TokKind::LBrace, "'{'");
    while (!at(TokKind::RBrace)) {
      bool is_volatile = false;
      if (at_ident("volatile")) {
        next();
        is_volatile = true;
      }
      const Token& name_tok = expect(TokKind::Ident, "register name");
      auto it = fold_names_.find(name_tok.text);
      if (it == fold_names_.end()) {
        fail(name_tok, "internal: fold register not prescanned");
      }
      FoldRegister& reg = prog_.folds[it->second];
      reg.is_volatile = is_volatile;
      expect(TokKind::Assign, "':='");
      reg.update = parse_expr();
      if (!at_ident("init")) fail(peek(), "expected 'init' clause");
      next();
      reg.init = parse_expr();
      if (at_ident("urgent")) {
        next();
        reg.urgent = true;
      }
      expect(TokKind::Semi, "';'");
    }
    next();  // consume '}'
  }

  void parse_control_block() {
    expect(TokKind::LBrace, "'{'");
    while (!at(TokKind::RBrace)) {
      const Token& t = expect(TokKind::Ident, "control primitive");
      ControlInstr instr{};
      if (t.text == "Rate") {
        instr.op = ControlInstr::Op::SetRate;
      } else if (t.text == "Cwnd") {
        instr.op = ControlInstr::Op::SetCwnd;
      } else if (t.text == "Wait") {
        instr.op = ControlInstr::Op::Wait;
      } else if (t.text == "WaitRtts") {
        instr.op = ControlInstr::Op::WaitRtts;
      } else if (t.text == "Report") {
        instr.op = ControlInstr::Op::Report;
      } else {
        fail(t, "unknown control primitive '" + t.text +
                    "' (expected Rate, Cwnd, Wait, WaitRtts, or Report)");
      }
      expect(TokKind::LParen, "'('");
      if (instr.op != ControlInstr::Op::Report) {
        instr.arg = parse_expr();
      }
      expect(TokKind::RParen, "')'");
      expect(TokKind::Semi, "';'");
      prog_.control.push_back(instr);
    }
    next();  // consume '}'
  }

  // --- expressions, precedence climbing ---

  ExprId parse_expr() { return parse_or(); }

  ExprId parse_or() {
    ExprId lhs = parse_and();
    while (at(TokKind::OrOr)) {
      next();
      lhs = prog_.arena.add_binary(BinaryOp::Or, lhs, parse_and());
    }
    return lhs;
  }

  ExprId parse_and() {
    ExprId lhs = parse_cmp();
    while (at(TokKind::AndAnd)) {
      next();
      lhs = prog_.arena.add_binary(BinaryOp::And, lhs, parse_cmp());
    }
    return lhs;
  }

  ExprId parse_cmp() {
    ExprId lhs = parse_add();
    std::optional<BinaryOp> op;
    switch (peek().kind) {
      case TokKind::Lt: op = BinaryOp::Lt; break;
      case TokKind::Le: op = BinaryOp::Le; break;
      case TokKind::Gt: op = BinaryOp::Gt; break;
      case TokKind::Ge: op = BinaryOp::Ge; break;
      case TokKind::EqEq: op = BinaryOp::Eq; break;
      case TokKind::Ne: op = BinaryOp::Ne; break;
      default: break;
    }
    if (!op) return lhs;
    next();
    return prog_.arena.add_binary(*op, lhs, parse_add());
  }

  ExprId parse_add() {
    ExprId lhs = parse_mul();
    for (;;) {
      if (at(TokKind::Plus)) {
        next();
        lhs = prog_.arena.add_binary(BinaryOp::Add, lhs, parse_mul());
      } else if (at(TokKind::Minus)) {
        next();
        lhs = prog_.arena.add_binary(BinaryOp::Sub, lhs, parse_mul());
      } else {
        return lhs;
      }
    }
  }

  ExprId parse_mul() {
    ExprId lhs = parse_unary();
    for (;;) {
      if (at(TokKind::Star)) {
        next();
        lhs = prog_.arena.add_binary(BinaryOp::Mul, lhs, parse_unary());
      } else if (at(TokKind::Slash)) {
        next();
        lhs = prog_.arena.add_binary(BinaryOp::Div, lhs, parse_unary());
      } else {
        return lhs;
      }
    }
  }

  ExprId parse_unary() {
    if (at(TokKind::Minus)) {
      next();
      return prog_.arena.add_unary(UnaryOp::Neg, parse_unary());
    }
    if (at(TokKind::Bang)) {
      next();
      return prog_.arena.add_unary(UnaryOp::Not, parse_unary());
    }
    return parse_primary();
  }

  ExprId parse_primary() {
    if (at(TokKind::Number)) {
      return prog_.arena.add_const(next().number);
    }
    if (at(TokKind::Dollar)) {
      return prog_.arena.add_var_ref(prog_.var_index(next().text));
    }
    if (at(TokKind::LParen)) {
      next();
      ExprId inner = parse_expr();
      expect(TokKind::RParen, "')'");
      return inner;
    }
    const Token& t = expect(TokKind::Ident, "expression");
    if (t.text == "Pkt") {
      expect(TokKind::Dot, "'.' after Pkt");
      const Token& f = expect(TokKind::Ident, "packet field name");
      auto field = pkt_field_from_name(f.text);
      if (!field) fail(f, "unknown packet field 'Pkt." + f.text + "'");
      return prog_.arena.add_pkt_ref(*field);
    }
    if (at(TokKind::LParen)) {
      return parse_call(t);
    }
    auto it = fold_names_.find(t.text);
    if (it == fold_names_.end()) {
      fail(t, "unknown name '" + t.text +
                  "' (fold registers must be declared; install-time variables "
                  "are written $" + t.text + ")");
    }
    return prog_.arena.add_fold_ref(it->second);
  }

  ExprId parse_call(const Token& name) {
    expect(TokKind::LParen, "'('");
    std::vector<ExprId> args;
    if (!at(TokKind::RParen)) {
      args.push_back(parse_expr());
      while (at(TokKind::Comma)) {
        next();
        args.push_back(parse_expr());
      }
    }
    expect(TokKind::RParen, "')'");

    auto need = [&](size_t n) {
      if (args.size() != n) {
        fail(name, name.text + " expects " + std::to_string(n) + " argument(s), got " +
                       std::to_string(args.size()));
      }
    };
    const std::string& fn = name.text;
    if (fn == "min") { need(2); return prog_.arena.add_binary(BinaryOp::Min, args[0], args[1]); }
    if (fn == "max") { need(2); return prog_.arena.add_binary(BinaryOp::Max, args[0], args[1]); }
    if (fn == "pow") { need(2); return prog_.arena.add_binary(BinaryOp::Pow, args[0], args[1]); }
    if (fn == "abs") { need(1); return prog_.arena.add_unary(UnaryOp::Abs, args[0]); }
    if (fn == "sqrt") { need(1); return prog_.arena.add_unary(UnaryOp::Sqrt, args[0]); }
    if (fn == "cbrt") { need(1); return prog_.arena.add_unary(UnaryOp::Cbrt, args[0]); }
    if (fn == "log") { need(1); return prog_.arena.add_unary(UnaryOp::Log, args[0]); }
    if (fn == "exp") { need(1); return prog_.arena.add_unary(UnaryOp::Exp, args[0]); }
    if (fn == "ewma") {
      need(3);
      return prog_.arena.add_ternary(TernaryOp::Ewma, args[0], args[1], args[2]);
    }
    if (fn == "if") {
      need(3);
      return prog_.arena.add_ternary(TernaryOp::If, args[0], args[1], args[2]);
    }
    fail(name, "unknown function '" + fn + "'");
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  Program prog_;
  std::unordered_map<std::string, uint32_t> fold_names_;
};

}  // namespace

Program parse_program(std::string_view src) { return Parser(src).parse(); }

}  // namespace ccp::lang
