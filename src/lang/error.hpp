// Error type for program compilation. Programs are compiled in the agent
// (control plane), never on the datapath fast path, so exceptions are the
// right tool: a malformed program must never be installed.
#pragma once

#include <stdexcept>
#include <string>

namespace ccp::lang {

class ProgramError : public std::runtime_error {
 public:
  ProgramError(std::string message, int line, int col)
      : std::runtime_error("program error at " + std::to_string(line) + ":" +
                           std::to_string(col) + ": " + message),
        line_(line),
        col_(col) {}

  explicit ProgramError(std::string message)
      : std::runtime_error("program error: " + message), line_(0), col_(0) {}

  int line() const { return line_; }
  int col() const { return col_; }

 private:
  int line_;
  int col_;
};

}  // namespace ccp::lang
