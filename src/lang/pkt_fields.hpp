// Per-ACK measurement fields the datapath exposes to fold functions.
//
// This is the paper's primitive (3): "statistics on packet-level round
// trip times, packet delivery rates, and packet loss, and functions
// specified over them" (§2.1), plus the congestion signals of Table 1.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace ccp::lang {

enum class PktField : uint8_t {
  RttUs,             // most recent packet-level RTT sample, microseconds
  BytesAcked,        // bytes newly cumulatively acked by this ACK
  PacketsAcked,      // packets newly acked
  LostPackets,       // packets newly declared lost (dupack or RTO)
  Ecn,               // 1 if this ACK echoed an ECN congestion mark
  WasTimeout,        // 1 if this event is a retransmission timeout
  SndRateBps,        // measured sending rate, bytes/sec
  RcvRateBps,        // measured delivery rate, bytes/sec
  BytesInFlight,     // bytes outstanding after this ACK
  PacketsInFlight,   // packets outstanding after this ACK
  BytesPending,      // bytes the application has queued but not yet sent
  NowUs,             // datapath clock, microseconds
  Mss,               // maximum segment size, bytes
  Cwnd,              // current congestion window, bytes (read-back)
  RateBps,           // current pacing rate, bytes/sec (read-back)
};

inline constexpr uint8_t kNumPktFields = 15;

/// Field name as written in programs: "Pkt.rtt", "Pkt.bytes_acked", ...
std::string_view pkt_field_name(PktField f);

/// Inverse of pkt_field_name (without the "Pkt." prefix).
std::optional<PktField> pkt_field_from_name(std::string_view name);

/// The measurements carried by one ACK (or loss/timeout event) into the
/// fold VM. All values as doubles: the datapath language is
/// floating-point end to end (§2.2 argues this is a feature of moving
/// congestion control to user space; our datapath is software, so it can
/// afford the same representation).
struct PktInfo {
  double rtt_us = 0;
  double bytes_acked = 0;
  double packets_acked = 0;
  double lost_packets = 0;
  double ecn = 0;
  double was_timeout = 0;
  double snd_rate_bps = 0;
  double rcv_rate_bps = 0;
  double bytes_in_flight = 0;
  double packets_in_flight = 0;
  double bytes_pending = 0;
  double now_us = 0;
  double mss = 1500;
  double cwnd = 0;
  double rate_bps = 0;

  double get(PktField f) const {
    switch (f) {
      case PktField::RttUs: return rtt_us;
      case PktField::BytesAcked: return bytes_acked;
      case PktField::PacketsAcked: return packets_acked;
      case PktField::LostPackets: return lost_packets;
      case PktField::Ecn: return ecn;
      case PktField::WasTimeout: return was_timeout;
      case PktField::SndRateBps: return snd_rate_bps;
      case PktField::RcvRateBps: return rcv_rate_bps;
      case PktField::BytesInFlight: return bytes_in_flight;
      case PktField::PacketsInFlight: return packets_in_flight;
      case PktField::BytesPending: return bytes_pending;
      case PktField::NowUs: return now_us;
      case PktField::Mss: return mss;
      case PktField::Cwnd: return cwnd;
      case PktField::RateBps: return rate_bps;
    }
    return 0;
  }
};

}  // namespace ccp::lang
