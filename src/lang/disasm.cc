#include "lang/disasm.hpp"

#include <cstdio>

namespace ccp::lang {
namespace {

struct OpInfo {
  const char* name;
  int operands;  // -1: special form
};

OpInfo op_info(OpCode op) {
  switch (op) {
    case OpCode::LoadConst: return {"const", -1};
    case OpCode::LoadFold: return {"fold", -1};
    case OpCode::LoadPkt: return {"pkt", -1};
    case OpCode::LoadVar: return {"var", -1};
    case OpCode::Neg: return {"neg", 1};
    case OpCode::Not: return {"not", 1};
    case OpCode::Sqrt: return {"sqrt", 1};
    case OpCode::Abs: return {"abs", 1};
    case OpCode::Log: return {"log", 1};
    case OpCode::Exp: return {"exp", 1};
    case OpCode::Cbrt: return {"cbrt", 1};
    case OpCode::Add: return {"add", 2};
    case OpCode::Sub: return {"sub", 2};
    case OpCode::Mul: return {"mul", 2};
    case OpCode::Div: return {"div", 2};
    case OpCode::Pow: return {"pow", 2};
    case OpCode::Min: return {"min", 2};
    case OpCode::Max: return {"max", 2};
    case OpCode::Lt: return {"lt", 2};
    case OpCode::Le: return {"le", 2};
    case OpCode::Gt: return {"gt", 2};
    case OpCode::Ge: return {"ge", 2};
    case OpCode::Eq: return {"eq", 2};
    case OpCode::Ne: return {"ne", 2};
    case OpCode::And: return {"and", 2};
    case OpCode::Or: return {"or", 2};
    case OpCode::Select: return {"select", 3};
    case OpCode::Ewma: return {"ewma", 3};
    case OpCode::StoreFold: return {"store", -1};
    // Superinstructions (operand count -1: const operand rendered inline).
    case OpCode::AddC: return {"addc", -1};
    case OpCode::SubC: return {"subc", -1};
    case OpCode::MulC: return {"mulc", -1};
    case OpCode::DivC: return {"divc", -1};
    case OpCode::MinC: return {"minc", -1};
    case OpCode::MaxC: return {"maxc", -1};
    case OpCode::LtC: return {"ltc", -1};
    case OpCode::LeC: return {"lec", -1};
    case OpCode::GtC: return {"gtc", -1};
    case OpCode::GeC: return {"gec", -1};
    case OpCode::EqC: return {"eqc", -1};
    case OpCode::NeC: return {"nec", -1};
    case OpCode::EwmaC: return {"ewmac", -1};
    case OpCode::SelGtz: return {"selgtz", 3};
  }
  return {"?", 0};
}

bool is_binary_const_op(OpCode op) {
  switch (op) {
    case OpCode::AddC: case OpCode::SubC: case OpCode::MulC: case OpCode::DivC:
    case OpCode::MinC: case OpCode::MaxC: case OpCode::LtC: case OpCode::LeC:
    case OpCode::GtC: case OpCode::GeC: case OpCode::EqC: case OpCode::NeC:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string disassemble_instr(const CodeBlock& block, const Instr& instr) {
  char buf[128];
  const OpInfo info = op_info(instr.op);
  switch (instr.op) {
    case OpCode::LoadConst:
      std::snprintf(buf, sizeof(buf), "  %%%u = const %g", instr.dst,
                    block.consts[instr.a]);
      break;
    case OpCode::LoadFold:
      std::snprintf(buf, sizeof(buf), "  %%%u = fold[%u]", instr.dst, instr.a);
      break;
    case OpCode::LoadPkt:
      std::snprintf(buf, sizeof(buf), "  %%%u = Pkt.%s", instr.dst,
                    std::string(pkt_field_name(static_cast<PktField>(instr.a))).c_str());
      break;
    case OpCode::LoadVar:
      std::snprintf(buf, sizeof(buf), "  %%%u = $var[%u]", instr.dst, instr.a);
      break;
    case OpCode::StoreFold:
      std::snprintf(buf, sizeof(buf), "  fold[%u] <- %%%u", instr.a, instr.b);
      break;
    case OpCode::EwmaC:
      std::snprintf(buf, sizeof(buf), "  %%%u = ewmac %%%u, %%%u, %g", instr.dst,
                    instr.a, instr.b, block.consts[instr.c]);
      break;
    default:
      if (is_binary_const_op(instr.op)) {
        std::snprintf(buf, sizeof(buf), "  %%%u = %s %%%u, %g", instr.dst,
                      info.name, instr.a, block.consts[instr.b]);
        break;
      }
      if (info.operands == 1) {
        std::snprintf(buf, sizeof(buf), "  %%%u = %s %%%u", instr.dst, info.name,
                      instr.a);
      } else if (info.operands == 2) {
        std::snprintf(buf, sizeof(buf), "  %%%u = %s %%%u, %%%u", instr.dst,
                      info.name, instr.a, instr.b);
      } else {
        std::snprintf(buf, sizeof(buf), "  %%%u = %s %%%u, %%%u, %%%u", instr.dst,
                      info.name, instr.a, instr.b, instr.c);
      }
      break;
  }
  return buf;
}

std::string disassemble_block(const std::string& title, const CodeBlock& block) {
  std::string out = title + " (" + std::to_string(block.code.size()) +
                    " instrs, " + std::to_string(block.n_slots) + " slots):\n";
  for (const Instr& instr : block.code) {
    out += disassemble_instr(block, instr);
    out += "\n";
  }
  return out;
}

std::string disassemble(const CompiledProgram& prog) {
  std::string out = disassemble_block("init", prog.init_block);
  out += disassemble_block("fold (per ACK)", prog.fold_block);
  for (size_t i = 0; i < prog.control_ops.size(); ++i) {
    const char* op_name = nullptr;
    switch (prog.control_ops[i]) {
      case ControlInstr::Op::SetRate: op_name = "Rate"; break;
      case ControlInstr::Op::SetCwnd: op_name = "Cwnd"; break;
      case ControlInstr::Op::Wait: op_name = "Wait"; break;
      case ControlInstr::Op::WaitRtts: op_name = "WaitRtts"; break;
      case ControlInstr::Op::Report: op_name = "Report"; break;
    }
    if (prog.control_args[i].code.empty()) {
      out += "control[" + std::to_string(i) + "] " + op_name + "\n";
    } else {
      out += disassemble_block(
          "control[" + std::to_string(i) + "] " + op_name + " arg",
          prog.control_args[i]);
    }
  }
  return out;
}

}  // namespace ccp::lang
