// Human-readable listings of compiled datapath bytecode — for the
// ccp_lang_check tool, debugging, and documentation ("what does the
// datapath actually execute for this program?").
#pragma once

#include <string>

#include "lang/bytecode.hpp"
#include "lang/compiler.hpp"

namespace ccp::lang {

/// One instruction, e.g. "  %3 = min %1, %2" or "  fold[0] <- %3".
std::string disassemble_instr(const CodeBlock& block, const Instr& instr);

/// A whole block with a header line.
std::string disassemble_block(const std::string& title, const CodeBlock& block);

/// Every block of a compiled program (init, fold, control args).
std::string disassemble(const CompiledProgram& prog);

}  // namespace ccp::lang
