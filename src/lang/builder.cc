#include "lang/builder.hpp"

#include <unordered_map>

#include "lang/error.hpp"

namespace ccp::lang {

/// Builder-side expression node: a tiny immutable tree that build()
/// lowers into the arena. Kept separate from ExprNode because builder
/// references registers/vars by *name* (indices are assigned at build).
class Expr::Node {
 public:
  ExprKind kind;
  double constant = 0;
  PktField field{};
  std::string name;  // fold / var reference
  UnaryOp unary_op{};
  BinaryOp binary_op{};
  TernaryOp ternary_op{};
  std::shared_ptr<const Node> child[3];
};

Expr::Expr(double value) : node(nullptr) { *this = Expr::c(value); }
Expr::Expr(int value) : node(nullptr) { *this = Expr::c(value); }

Expr Expr::c(double value) {
  auto n = std::make_shared<Node>();
  n->kind = ExprKind::Const;
  n->constant = value;
  return Expr(std::move(n));
}

Expr Expr::pkt(PktField field) {
  auto n = std::make_shared<Node>();
  n->kind = ExprKind::PktRef;
  n->field = field;
  return Expr(std::move(n));
}

Expr Expr::var(std::string name) {
  auto n = std::make_shared<Node>();
  n->kind = ExprKind::VarRef;
  n->name = std::move(name);
  return Expr(std::move(n));
}

Expr Expr::fold(std::string name) {
  auto n = std::make_shared<Node>();
  n->kind = ExprKind::FoldRef;
  n->name = std::move(name);
  return Expr(std::move(n));
}

namespace {

Expr unary(UnaryOp op, const Expr& a) {
  auto n = std::make_shared<Expr::Node>();
  n->kind = ExprKind::Unary;
  n->unary_op = op;
  n->child[0] = a.node;
  // `node` is a public handle, so helpers can rebind it directly.
  Expr e = Expr::c(0);
  e.node = std::move(n);
  return e;
}

Expr binary(BinaryOp op, const Expr& a, const Expr& b) {
  auto n = std::make_shared<Expr::Node>();
  n->kind = ExprKind::Binary;
  n->binary_op = op;
  n->child[0] = a.node;
  n->child[1] = b.node;
  Expr e = Expr::c(0);
  e.node = std::move(n);
  return e;
}

Expr ternary(TernaryOp op, const Expr& a, const Expr& b, const Expr& c) {
  auto n = std::make_shared<Expr::Node>();
  n->kind = ExprKind::Ternary;
  n->ternary_op = op;
  n->child[0] = a.node;
  n->child[1] = b.node;
  n->child[2] = c.node;
  Expr e = Expr::c(0);
  e.node = std::move(n);
  return e;
}

}  // namespace

Expr operator+(Expr a, Expr b) { return binary(BinaryOp::Add, a, b); }
Expr operator-(Expr a, Expr b) { return binary(BinaryOp::Sub, a, b); }
Expr operator*(Expr a, Expr b) { return binary(BinaryOp::Mul, a, b); }
Expr operator/(Expr a, Expr b) { return binary(BinaryOp::Div, a, b); }
Expr operator-(Expr a) { return unary(UnaryOp::Neg, a); }
Expr operator<(Expr a, Expr b) { return binary(BinaryOp::Lt, a, b); }
Expr operator<=(Expr a, Expr b) { return binary(BinaryOp::Le, a, b); }
Expr operator>(Expr a, Expr b) { return binary(BinaryOp::Gt, a, b); }
Expr operator>=(Expr a, Expr b) { return binary(BinaryOp::Ge, a, b); }
Expr operator==(Expr a, Expr b) { return binary(BinaryOp::Eq, a, b); }
Expr operator!=(Expr a, Expr b) { return binary(BinaryOp::Ne, a, b); }
Expr operator&&(Expr a, Expr b) { return binary(BinaryOp::And, a, b); }
Expr operator||(Expr a, Expr b) { return binary(BinaryOp::Or, a, b); }

Expr min(Expr a, Expr b) { return binary(BinaryOp::Min, a, b); }
Expr max(Expr a, Expr b) { return binary(BinaryOp::Max, a, b); }
Expr pow(Expr a, Expr b) { return binary(BinaryOp::Pow, a, b); }
Expr abs(Expr a) { return unary(UnaryOp::Abs, a); }
Expr sqrt(Expr a) { return unary(UnaryOp::Sqrt, a); }
Expr cbrt(Expr a) { return unary(UnaryOp::Cbrt, a); }
Expr log(Expr a) { return unary(UnaryOp::Log, a); }
Expr exp(Expr a) { return unary(UnaryOp::Exp, a); }
Expr ewma(Expr old_value, Expr sample, Expr gain) {
  return ternary(TernaryOp::Ewma, old_value, sample, gain);
}
Expr if_(Expr cond, Expr then_val, Expr else_val) {
  return ternary(TernaryOp::If, cond, then_val, else_val);
}

ProgramBuilder& ProgramBuilder::def(std::string name, Expr init, Expr update,
                                    DefOpts opts) {
  defs_.push_back(Def{std::move(name), std::move(init), std::move(update), opts});
  return *this;
}

ProgramBuilder& ProgramBuilder::def(std::string name, Expr init, Expr update) {
  return def(std::move(name), std::move(init), std::move(update), DefOpts{});
}

ProgramBuilder& ProgramBuilder::def_counter(std::string name, Expr update,
                                            bool urgent) {
  return def(std::move(name), Expr::c(0), std::move(update),
             DefOpts{/*is_volatile=*/true, urgent});
}

ProgramBuilder& ProgramBuilder::rate(Expr bytes_per_sec) {
  steps_.push_back({ControlInstr::Op::SetRate, bytes_per_sec.node});
  return *this;
}
ProgramBuilder& ProgramBuilder::cwnd(Expr bytes) {
  steps_.push_back({ControlInstr::Op::SetCwnd, bytes.node});
  return *this;
}
ProgramBuilder& ProgramBuilder::wait(Expr microseconds) {
  steps_.push_back({ControlInstr::Op::Wait, microseconds.node});
  return *this;
}
ProgramBuilder& ProgramBuilder::wait_rtts(Expr rtts) {
  steps_.push_back({ControlInstr::Op::WaitRtts, rtts.node});
  return *this;
}
ProgramBuilder& ProgramBuilder::report() {
  steps_.push_back({ControlInstr::Op::Report, nullptr});
  return *this;
}

namespace {

ExprId lower(const Expr::Node& n, Program& prog,
             const std::unordered_map<std::string, uint32_t>& folds) {
  switch (n.kind) {
    case ExprKind::Const:
      return prog.arena.add_const(n.constant);
    case ExprKind::PktRef:
      return prog.arena.add_pkt_ref(n.field);
    case ExprKind::VarRef:
      return prog.arena.add_var_ref(prog.var_index(n.name));
    case ExprKind::FoldRef: {
      auto it = folds.find(n.name);
      if (it == folds.end()) {
        throw ProgramError("builder: unknown fold register '" + n.name + "'");
      }
      return prog.arena.add_fold_ref(it->second);
    }
    case ExprKind::Unary:
      return prog.arena.add_unary(n.unary_op, lower(*n.child[0], prog, folds));
    case ExprKind::Binary:
      return prog.arena.add_binary(n.binary_op, lower(*n.child[0], prog, folds),
                                   lower(*n.child[1], prog, folds));
    case ExprKind::Ternary:
      return prog.arena.add_ternary(n.ternary_op, lower(*n.child[0], prog, folds),
                                    lower(*n.child[1], prog, folds),
                                    lower(*n.child[2], prog, folds));
  }
  throw ProgramError("builder: unknown node kind");
}

}  // namespace

Program ProgramBuilder::build() const {
  Program prog;
  std::unordered_map<std::string, uint32_t> folds;
  for (const auto& d : defs_) {
    if (folds.count(d.name) != 0) {
      throw ProgramError("builder: duplicate fold register '" + d.name + "'");
    }
    folds.emplace(d.name, static_cast<uint32_t>(prog.folds.size()));
    prog.folds.push_back(FoldRegister{d.name, kInvalidExpr, kInvalidExpr,
                                      d.opts.is_volatile, d.opts.urgent});
  }
  for (size_t i = 0; i < defs_.size(); ++i) {
    prog.folds[i].init = lower(*defs_[i].init.node, prog, folds);
    prog.folds[i].update = lower(*defs_[i].update.node, prog, folds);
  }
  for (const auto& s : steps_) {
    ControlInstr instr{s.op, kInvalidExpr};
    if (s.arg != nullptr) instr.arg = lower(*s.arg, prog, folds);
    prog.control.push_back(instr);
  }
  return prog;
}

}  // namespace ccp::lang
