#include "lang/vm.hpp"

#include <cmath>
#include <stdexcept>

namespace ccp::lang {
namespace {

inline double safe_div(double a, double b) { return b == 0.0 ? 0.0 : a / b; }
inline double safe_sqrt(double a) { return a <= 0.0 ? 0.0 : std::sqrt(a); }
inline double safe_log(double a) { return a <= 0.0 ? 0.0 : std::log(a); }
inline double safe_pow(double a, double b) {
  // pow of a negative base with fractional exponent is NaN; clamp to 0
  // (total arithmetic — see vm.hpp).
  const double v = std::pow(a, b);
  return std::isfinite(v) ? v : 0.0;
}

}  // namespace

double eval_block(const CodeBlock& block, std::span<double> fold_state,
                  const PktInfo& pkt, std::span<const double> vars,
                  std::vector<double>& scratch) {
  if (scratch.size() < block.n_slots) scratch.resize(block.n_slots);
  double* s = scratch.data();

  for (const Instr& in : block.code) {
    switch (in.op) {
      case OpCode::LoadConst: s[in.dst] = block.consts[in.a]; break;
      case OpCode::LoadFold: s[in.dst] = fold_state[in.a]; break;
      case OpCode::LoadPkt: s[in.dst] = pkt.get(static_cast<PktField>(in.a)); break;
      case OpCode::LoadVar: s[in.dst] = vars[in.a]; break;
      case OpCode::Neg: s[in.dst] = -s[in.a]; break;
      case OpCode::Not: s[in.dst] = s[in.a] == 0.0 ? 1.0 : 0.0; break;
      case OpCode::Sqrt: s[in.dst] = safe_sqrt(s[in.a]); break;
      case OpCode::Abs: s[in.dst] = std::fabs(s[in.a]); break;
      case OpCode::Log: s[in.dst] = safe_log(s[in.a]); break;
      case OpCode::Exp: s[in.dst] = std::exp(s[in.a]); break;
      case OpCode::Cbrt: s[in.dst] = std::cbrt(s[in.a]); break;
      case OpCode::Add: s[in.dst] = s[in.a] + s[in.b]; break;
      case OpCode::Sub: s[in.dst] = s[in.a] - s[in.b]; break;
      case OpCode::Mul: s[in.dst] = s[in.a] * s[in.b]; break;
      case OpCode::Div: s[in.dst] = safe_div(s[in.a], s[in.b]); break;
      case OpCode::Pow: s[in.dst] = safe_pow(s[in.a], s[in.b]); break;
      case OpCode::Min: s[in.dst] = s[in.a] < s[in.b] ? s[in.a] : s[in.b]; break;
      case OpCode::Max: s[in.dst] = s[in.a] > s[in.b] ? s[in.a] : s[in.b]; break;
      case OpCode::Lt: s[in.dst] = s[in.a] < s[in.b] ? 1.0 : 0.0; break;
      case OpCode::Le: s[in.dst] = s[in.a] <= s[in.b] ? 1.0 : 0.0; break;
      case OpCode::Gt: s[in.dst] = s[in.a] > s[in.b] ? 1.0 : 0.0; break;
      case OpCode::Ge: s[in.dst] = s[in.a] >= s[in.b] ? 1.0 : 0.0; break;
      case OpCode::Eq: s[in.dst] = s[in.a] == s[in.b] ? 1.0 : 0.0; break;
      case OpCode::Ne: s[in.dst] = s[in.a] != s[in.b] ? 1.0 : 0.0; break;
      case OpCode::And:
        s[in.dst] = (s[in.a] != 0.0 && s[in.b] != 0.0) ? 1.0 : 0.0;
        break;
      case OpCode::Or:
        s[in.dst] = (s[in.a] != 0.0 || s[in.b] != 0.0) ? 1.0 : 0.0;
        break;
      case OpCode::Select: s[in.dst] = s[in.a] != 0.0 ? s[in.b] : s[in.c]; break;
      case OpCode::Ewma:
        s[in.dst] = (1.0 - s[in.c]) * s[in.a] + s[in.c] * s[in.b];
        break;
      case OpCode::StoreFold: fold_state[in.a] = s[in.b]; break;
    }
  }
  return block.code.empty() ? 0.0 : s[block.result_slot];
}

void FoldMachine::install(const CompiledProgram* prog, std::vector<double> vars) {
  if (prog == nullptr) throw std::invalid_argument("FoldMachine: null program");
  if (vars.size() != prog->num_vars()) {
    throw std::invalid_argument("FoldMachine: program expects " +
                                std::to_string(prog->num_vars()) + " vars, got " +
                                std::to_string(vars.size()));
  }
  prog_ = prog;
  vars_ = std::move(vars);
  state_.assign(prog->num_folds(), 0.0);
  const PktInfo zero_pkt{};
  eval_block(prog->init_block, state_, zero_pkt, vars_, scratch_);
  init_snapshot_ = state_;
}

void FoldMachine::update_vars(std::vector<double> vars) {
  if (prog_ == nullptr) throw std::logic_error("FoldMachine: no program installed");
  if (vars.size() != prog_->num_vars()) {
    throw std::invalid_argument("FoldMachine: var count mismatch");
  }
  vars_ = std::move(vars);
}

bool FoldMachine::on_packet(const PktInfo& pkt) {
  if (prog_ == nullptr) return false;
  bool urgent_changed = false;
  if (prog_->has_urgent()) {
    // Snapshot state so we can detect urgent-register changes. `before_`
    // is a member so the per-ACK path stays allocation-free after warmup.
    before_ = state_;
    eval_block(prog_->fold_block, state_, pkt, vars_, scratch_);
    for (size_t i = 0; i < state_.size(); ++i) {
      if (prog_->urgent_regs[i] && state_[i] != before_[i]) {
        urgent_changed = true;
        break;
      }
    }
  } else {
    eval_block(prog_->fold_block, state_, pkt, vars_, scratch_);
  }
  return urgent_changed;
}

double FoldMachine::eval_control_arg(size_t idx, const PktInfo& pkt) {
  if (prog_ == nullptr) throw std::logic_error("FoldMachine: no program installed");
  return eval_block(prog_->control_args[idx], state_, pkt, vars_, scratch_);
}

void FoldMachine::reset_volatile() {
  if (prog_ == nullptr) return;
  for (size_t i = 0; i < state_.size(); ++i) {
    if (prog_->volatile_regs[i]) state_[i] = init_snapshot_[i];
  }
}

}  // namespace ccp::lang
